(* Fault injection: what a lossy, flapping, crash-prone channel does to the
   padded stream — and why it is NOT a countermeasure.

   The degradation sweep runs the full padded system under increasing fault
   intensity and scores four adversaries.  Watch the naive mean/variance/
   entropy classifiers sink toward the 0.5 coin-flip floor as τ-scale holes
   drown the µs-scale jitter leak, while the gap-aware adversary — which
   folds every hole back out of the trace — keeps detecting.  The QoS
   columns show what the faults cost the defender at the same time.

     dune exec examples/fault_injection.exe *)

let fmt = Format.std_formatter

let () =
  Format.fprintf fmt
    "=== Graceful degradation under channel faults (reduced scale) ===@.";
  let points = Scenarios.Degradation.run ~scale:0.35 ~seed:47_000 fmt in
  (* A single fault family in isolation: bursty Gilbert-Elliott loss. *)
  Format.fprintf fmt "@.=== Bursty loss only (Gilbert-Elliott) ===@.";
  let bursty =
    {
      Scenarios.Degradation.fault_free with
      Scenarios.Degradation.loss =
        Faults.Lossy.Gilbert_elliott
          {
            p_good_to_bad = 0.01;
            p_bad_to_good = 0.3;
            loss_good = 0.001;
            loss_bad = 0.5;
          };
    }
  in
  let p =
    Scenarios.Degradation.evaluate ~piats:3_000 ~sample_size:150 ~seed:47_100
      ~profile:bursty ~intensity:0.0 ()
  in
  Format.fprintf fmt
    "expected loss %.4f  observed gap fraction %.4f@.naive variance adversary \
     %.3f  gap-aware adversary %.3f@."
    (Faults.Lossy.expected_loss_rate bursty.Scenarios.Degradation.loss)
    p.Scenarios.Degradation.gap_fraction p.Scenarios.Degradation.v_variance
    p.Scenarios.Degradation.v_gap;
  match points with
  | [] -> ()
  | p0 :: _ ->
      Format.fprintf fmt
        "@.fault-free reference: variance adversary %.3f, gap-aware %.3f@."
        p0.Scenarios.Degradation.v_variance p0.Scenarios.Degradation.v_gap
