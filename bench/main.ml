(* Benchmark harness: regenerates every table/figure of the paper's
   evaluation section (Figures 4-8, the multi-rate extension, and the
   design-choice ablations), then runs Bechamel micro-benchmarks of the
   hot kernels.

     dune exec bench/main.exe                 # full fidelity (~minutes)
     dune exec bench/main.exe -- --scale 0.2  # quick pass
     dune exec bench/main.exe -- --only fig4b,fig6
     dune exec bench/main.exe -- --jobs 8     # parallel sweeps, same output
     dune exec bench/main.exe -- --no-micro --json bench.json *)

let fmt = Format.std_formatter

let scale = ref 1.0
let seed = ref 42_000
let only = ref "all"
let csv_dir = ref ""
let run_micro = ref true
let jobs = ref 0 (* 0 = auto: EXEC_JOBS or available cores *)
let json_path = ref ""
let trace_path = ref ""
let check_trace = ref false
let intensities : float list option ref = ref None
let checkpoint = ref ""
let retries = ref (-1) (* -1 = library default *)
let strict = ref false
let inject = ref ""
let event_budget = ref 0 (* 0 = disarmed *)
let half_width : float option ref = ref None

let known_figures =
  [
    "fig4a"; "fig4b"; "fig5a"; "fig5b"; "fig6"; "fig8a"; "fig8b"; "multirate";
    "faults"; "fleet"; "ablations";
  ]

let args =
  [
    ("--scale", Arg.Set_float scale, "FACTOR workload scale (default 1.0)");
    ("--seed", Arg.Set_int seed, "SEED root seed (default 42000)");
    ( "--only",
      Arg.Set_string only,
      "LIST comma-separated figure ids (" ^ String.concat "," known_figures
      ^ "); default all" );
    ("--csv", Arg.Set_string csv_dir, "DIR write CSV copies of the tables");
    ("--no-micro", Arg.Clear run_micro, " skip Bechamel micro-benchmarks");
    ( "--no-kernel",
      Arg.Unit (fun () -> Scenarios.Fastpath.set_enabled false),
      " force every System.run onto the event loop (disable the fused \
       gateway kernels; output is bit-identical either way)" );
    ( "--jobs",
      Arg.Int
        (fun n ->
          if n < 1 then raise (Arg.Bad "--jobs must be >= 1");
          jobs := n),
      "N worker domains for the scenario sweeps (default: EXEC_JOBS or \
       available cores; output is bit-identical at any N)" );
    ( "--json",
      Arg.Set_string json_path,
      "FILE write the ta-bench/3 report (stages, spans, metrics, table \
       digests, micro) as JSON" );
    ( "--trace",
      Arg.Set_string trace_path,
      "FILE write a ta-trace/1 JSONL event trace of every simulation run" );
    ( "--check-trace",
      Arg.Set check_trace,
      " after the run, validate the --trace file against ta-trace/1 (exit \
       1 on violation)" );
    ( "--intensities",
      Arg.String
        (fun s ->
          let parse_one tok =
            match float_of_string_opt tok with
            | Some x when Float.is_finite x && x >= 0.0 && x <= 1.0 -> x
            | Some _ | None ->
                raise
                  (Arg.Bad
                     (Printf.sprintf "intensity %S outside [0, 1]" tok))
          in
          intensities := Some (List.map parse_one (String.split_on_char ',' s))),
      "LIST comma-separated fault intensities in [0,1] for the faults \
       stage (default 0,0.02,0.05,0.1,0.2,0.4)" );
    ( "--checkpoint",
      Arg.Set_string checkpoint,
      "DIR journal completed sweep points to DIR (ta-ckpt/1) and resume \
       from it on rerun; resumed output is byte-identical at any --jobs" );
    ( "--retries",
      Arg.Int
        (fun n ->
          if n < 0 then raise (Arg.Bad "--retries must be >= 0");
          retries := n),
      "N re-attempts before a failing sweep point is quarantined (default 2)" );
    ( "--strict",
      Arg.Set strict,
      " disable failure containment: the first failing sweep point aborts \
       the run (tap starvation keeps its historical exit 3)" );
    ( "--inject-fail",
      Arg.Set_string inject,
      "SPEC fault injection: comma-separated SWEEP:INDEX or SWEEP:INDEX@K \
       (fails attempts < K)" );
    ( "--event-budget",
      Arg.Int
        (fun n ->
          if n < 1 then raise (Arg.Bad "--event-budget must be >= 1");
          event_budget := n),
      "N per-point simulator event budget (watchdog against runaway points)" );
    ( "--half-width",
      Arg.Float
        (fun h ->
          if not (h > 0.0 && h < 0.5) then
            raise (Arg.Bad "--half-width must be in (0, 0.5)");
          half_width := Some h),
      "H stop windowed collection (fig6/fig8) once every feature's 95% \
       Wilson CI half-width is <= H (deterministic; default: collect to \
       the scaled window cap)" );
  ]

let wanted id =
  !only = "all" || List.mem id (String.split_on_char ',' !only)

(* Per-stage wall-clock seconds, in completion order, for --json. *)
let stage_times : (string * float) list ref = ref []

let timed id f =
  if wanted id then begin
    let t0 = Unix.gettimeofday () in
    Obs.span id f;
    let dt = Unix.gettimeofday () -. t0 in
    stage_times := (id, dt) :: !stage_times;
    Format.fprintf fmt "[%s done in %.1f s]@." id dt
  end

let csv () = if !csv_dir = "" then None else Some !csv_dir

(* Fleet mux throughput at fixed fleet sizes — deliberately NOT scaled by
   --scale so the flows/s numbers are comparable across runs.  Durations
   shrink as fleets grow to hold each case at ~500k arrivals; every shard
   simulation runs under an explicit event budget so a runaway 1M-flow
   case dies with Event_budget_exceeded instead of hanging the bench.
   Reported to the ta-bench/3 "micro" list as ns/flow (lower is better);
   the stdout lines end in "done in X s]" like the stage markers, so CI's
   jobs-invariance diff filters them alongside the other wall-clock
   lines. *)
let fleet_micro : (string * float * float) list ref = ref []

let fleet_throughput () =
  List.iter
    (fun (flows, duration) ->
      let cfg =
        { Fleet.Mux.default_config with flows; duration; seed = !seed + 31 }
      in
      let env_for _gateway =
        let sim = Desim.Sim.create () in
        Desim.Sim.set_event_budget sim ~max_events:4_000_000;
        { Fleet.Mux.sim; gw_buffers = None }
      in
      let t0 = Unix.gettimeofday () in
      let r = Fleet.Mux.run ~env_for cfg in
      let dt = Unix.gettimeofday () -. t0 in
      Format.fprintf fmt
        "[fleet.mux %d flows: %.3e flows/s, %.3e ev/s, done in %.2f s]@."
        flows
        (float_of_int flows /. dt)
        (float_of_int r.Fleet.Mux.events_processed /. dt)
        dt;
      fleet_micro :=
        ( Printf.sprintf "fleet.mux_ns_per_flow_%dk" (flows / 1000),
          dt *. 1e9 /. float_of_int flows,
          Float.nan )
        :: !fleet_micro)
    [ (10_000, 2.0); (100_000, 0.2); (1_000_000, 0.02) ]

let run_figures () =
  let scale = !scale and s = !seed in
  Scenarios.Calibration.print_setup fmt;
  timed "fig4a" (fun () ->
      ignore (Scenarios.Fig4a.run ~scale ~seed:(s + 1) ?csv_dir:(csv ()) fmt));
  timed "fig4b" (fun () ->
      ignore (Scenarios.Fig4b.run ~scale ~seed:(s + 2) ?csv_dir:(csv ()) fmt));
  timed "fig5a" (fun () ->
      ignore (Scenarios.Fig5a.run ~scale ~seed:(s + 3) ?csv_dir:(csv ()) fmt));
  timed "fig5b" (fun () ->
      ignore (Scenarios.Fig5b.run ~seed:(s + 4) ?csv_dir:(csv ()) fmt));
  timed "fig6" (fun () ->
      ignore
        (Scenarios.Fig6.run ~scale ~seed:(s + 5) ?half_width:!half_width
           ?csv_dir:(csv ()) fmt));
  timed "fig8a" (fun () ->
      ignore
        (Scenarios.Fig8.run ~scale ~seed:(s + 6) ?half_width:!half_width
           ~kind:Scenarios.Fig8.Campus ?csv_dir:(csv ()) fmt));
  timed "fig8b" (fun () ->
      ignore
        (Scenarios.Fig8.run ~scale ~seed:(s + 7) ?half_width:!half_width
           ~kind:Scenarios.Fig8.Wan ?csv_dir:(csv ()) fmt));
  timed "multirate" (fun () ->
      ignore (Scenarios.Multirate.run ~scale ~seed:(s + 8) ?csv_dir:(csv ()) fmt));
  timed "faults" (fun () ->
      ignore
        (Scenarios.Degradation.run ~scale ~seed:(s + 20)
           ?intensities:!intensities ?csv_dir:(csv ()) fmt));
  timed "fleet" (fun () ->
      ignore (Scenarios.Fleet.run ~scale ~seed:(s + 21) ?csv_dir:(csv ()) fmt);
      fleet_throughput ());
  timed "ablations" (fun () ->
      ignore (Scenarios.Ablations.run_jitter_models ~scale ~seed:(s + 9) fmt);
      ignore (Scenarios.Ablations.run_vit_laws ~scale ~seed:(s + 10) fmt);
      ignore (Scenarios.Ablations.run_entropy_bins ~scale ~seed:(s + 11) fmt);
      ignore (Scenarios.Ablations.run_tap_positions ~scale ~seed:(s + 12) fmt);
      ignore (Scenarios.Ablations.run_oracle_vs_kde ~scale ~seed:(s + 13) fmt);
      ignore (Scenarios.Ablations.run_adaptive_vs_cit ~scale ~seed:(s + 14) fmt);
      ignore (Scenarios.Ablations_ext.run_classifier_backends ~scale ~seed:(s + 15) fmt);
      ignore (Scenarios.Ablations_ext.run_mix_vs_padding ~scale ~seed:(s + 16) fmt);
      ignore (Scenarios.Ablations_ext.run_size_padding ~seed:(s + 18) fmt);
      ignore (Scenarios.Ablations_ext.run_roc ~scale ~seed:(s + 19) fmt);
      Scenarios.Ablations_ext.run_bounds_table fmt;
      ignore (Scenarios.Ablations_ext.run_qos_table ~seed:(s + 17) fmt))

(* --- Bechamel micro-benchmarks of the hot kernels --- *)

(* Fused-kernel path vs the event loop on the same ~1e6-event run (8k pps
   payload through a 10k fires/s gateway for ~330k PIATs).  Both paths
   produce bit-identical results; the kernel/eventloop ns ratio is the
   fused-dispatch speedup. *)
(* Jitter.none, not the default mechanistic model: at 8k pps the IRQ
   blocking sum costs ~800 exponential draws per fire on BOTH paths and
   would swamp the dispatch difference this micro isolates.  The 5-hop
   uncongested chain raises the event density per tap observation
   (arrival + fire + emission + 5 transmit-finishes + 5 deliveries
   ≈ 13 events per PIAT), so the measurement weighs per-event dispatch,
   not the per-observation recording work both paths share. *)
(* Arrival-heavy single-gateway workload: Poisson payload at 4x the fire
   rate keeps every event time on a continuous distribution (no exact-tie
   fallbacks, unlike CIT hop chains whose constant service/propagation
   delays put all times on a shared lattice) and weights the mix toward
   arrival events, the cheapest path through the fused kernel. *)
let kernel_micro_cfg timer =
  {
    Scenarios.System.default_config with
    timer;
    jitter = Padding.Jitter.none;
    payload_rate_pps = 40_000.0;
    warmup_piats = 10;
  }

let cit_1e6_cfg = kernel_micro_cfg (Padding.Timer.Constant 1e-4)
let vit_1e6_cfg = kernel_micro_cfg (Padding.Timer.Exponential { mean = 1e-4 })

let run_1e6 cfg ~kernel =
  let was = Scenarios.Fastpath.enabled () in
  Scenarios.Fastpath.set_enabled kernel;
  Fun.protect
    ~finally:(fun () -> Scenarios.Fastpath.set_enabled was)
    (fun () ->
      ignore (Scenarios.System.run cfg ~piats:167_000 : Scenarios.System.result))

let micro_tests () =
  let open Bechamel in
  let rng = Prng.Rng.create ~seed:1 in
  let sample_1k =
    Array.init 1000 (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma:3e-6)
  in
  let kde_points =
    Array.init 200 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0)
  in
  let kde = Stats.Kde.fit kde_points in
  let clf =
    Adversary.Classifier.train
      ~classes:
        [|
          ("lo", Array.init 100 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0));
          ("hi", Array.init 100 (fun _ -> Prng.Sampler.normal rng ~mu:2.0 ~sigma:1.0));
        |]
      ()
  in
  let entropy_kind =
    Adversary.Feature.Sample_entropy
      { bin_width = Adversary.Feature.default_entropy_bin_width }
  in
  [
    Test.make ~name:"event_queue.push_pop_1k"
      (Staged.stage (fun () ->
           let q = Desim.Event_queue.create () in
           for i = 0 to 999 do
             Desim.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) ()
           done;
           while not (Desim.Event_queue.is_empty q) do
             ignore (Desim.Event_queue.pop q)
           done));
    (* Steady-state variant: reused queue, allocation-free pop primitives —
       the exact loop shape Sim.run_until uses. *)
    (let q = Desim.Event_queue.create () in
     Test.make ~name:"event_queue.reuse_pop_exn_1k"
       (Staged.stage (fun () ->
            Desim.Event_queue.clear q;
            for i = 0 to 999 do
              Desim.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) ()
            done;
            while not (Desim.Event_queue.is_empty q) do
              ignore (Desim.Event_queue.min_time q : float);
              ignore (Desim.Event_queue.pop_exn q)
            done)));
    (* A periodic timer train on a recycled simulator: one Sim.every event
       record re-armed 1000 times. *)
    (let sim = Desim.Sim.create () in
     Test.make ~name:"sim.timer_train_1k"
       (Staged.stage (fun () ->
            Desim.Sim.reset sim;
            let n = ref 0 in
            let h =
              Desim.Sim.every sim ~interval:(fun () -> 0.001) (fun () -> incr n)
            in
            Desim.Sim.run_until sim ~time:1.0;
            Desim.Sim.cancel h;
            (* Accumulated fp drift can push the 1000th tick just past 1.0. *)
            assert (abs (!n - 1000) <= 1))));
    Test.make ~name:"kernel.cit_1e6"
      (Staged.stage (fun () -> run_1e6 cit_1e6_cfg ~kernel:true));
    Test.make ~name:"eventloop.cit_1e6"
      (Staged.stage (fun () -> run_1e6 cit_1e6_cfg ~kernel:false));
    Test.make ~name:"kernel.vit_1e6"
      (Staged.stage (fun () -> run_1e6 vit_1e6_cfg ~kernel:true));
    Test.make ~name:"eventloop.vit_1e6"
      (Staged.stage (fun () -> run_1e6 vit_1e6_cfg ~kernel:false));
    Test.make ~name:"system.run_tiny"
      (Staged.stage (fun () ->
           ignore
             (Scenarios.System.run
                { Scenarios.System.default_config with warmup_piats = 10 }
                ~piats:50
               : Scenarios.System.result)));
    Test.make ~name:"gateway.simulate_1s_padded"
      (Staged.stage (fun () ->
           let sim = Desim.Sim.create () in
           let rng = Prng.Rng.create ~seed:2 in
           let gw =
             Padding.Gateway.create sim ~rng:(Prng.Rng.split rng)
               ~timer:(Padding.Timer.Constant 0.01)
               ~jitter:(Padding.Jitter.mechanistic ())
               ~dest:(fun _ -> ())
               ()
           in
           let src =
             Netsim.Traffic_gen.poisson sim ~rng:(Prng.Rng.split rng)
               ~rate_pps:40.0 ~size_bytes:500 ~kind:Netsim.Packet.Payload
               ~dest:(Padding.Gateway.input gw) ()
           in
           Desim.Sim.run_until sim ~time:1.0;
           Netsim.Traffic_gen.stop src;
           Padding.Gateway.stop gw));
    Test.make ~name:"router.cross_1k_packets"
      (Staged.stage (fun () ->
           let sim = Desim.Sim.create () in
           let router =
             Netsim.Router.create sim ~bandwidth_bps:622e6 ~dest:(fun _ -> ()) ()
           in
           for _ = 0 to 999 do
             Netsim.Router.port router
               (Netsim.Packet.make ~kind:Netsim.Packet.Cross ~size_bytes:500
                  ~created:(Desim.Sim.now sim))
           done;
           Desim.Sim.run_until sim ~time:1.0));
    Test.make ~name:"stats.stream_mean_var_1k"
      (Staged.stage (fun () ->
           let m = Stats.Stream.Moments.create () in
           Array.iter (Stats.Stream.Moments.add m) sample_1k;
           ignore (Stats.Stream.Moments.mean m : float);
           ignore (Stats.Stream.Moments.variance m : float)));
    (* The figure runners' inner loop: slide a 100-sample window down 1000
       PIATs, reading the three features at every position. *)
    (let w =
       Stats.Stream.Window.create ~capacity:100
         ~bin_width:Adversary.Feature.default_entropy_bin_width
         ~reference:0.01 ()
     in
     Test.make ~name:"stats.window_slide_1k"
       (Staged.stage (fun () ->
            Stats.Stream.Window.clear w;
            Array.iter
              (fun x ->
                Stats.Stream.Window.push w x;
                if Stats.Stream.Window.is_full w then begin
                  ignore (Stats.Stream.Window.mean w : float);
                  ignore (Stats.Stream.Window.variance w : float);
                  ignore (Stats.Stream.Window.entropy w : float)
                end)
              sample_1k)));
    (* Shard-merge overhead and scaling: the same 200-PIAT collection cut
       into 4 shards, sequential vs. 4 worker domains. *)
    Test.make ~name:"system.run_sharded_tiny_j1"
      (Staged.stage (fun () ->
           Exec.Pool.with_jobs 1 (fun () ->
               ignore
                 (Scenarios.System.run_sharded ~shards:4
                    { Scenarios.System.default_config with warmup_piats = 10 }
                    ~piats:200
                   : Scenarios.System.result))));
    Test.make ~name:"system.run_sharded_tiny_j4"
      (Staged.stage (fun () ->
           Exec.Pool.with_jobs 4 (fun () ->
               ignore
                 (Scenarios.System.run_sharded ~shards:4
                    { Scenarios.System.default_config with warmup_piats = 10 }
                    ~piats:200
                   : Scenarios.System.result))));
    Test.make ~name:"feature.variance_n1000"
      (Staged.stage (fun () ->
           ignore
             (Adversary.Feature.extract Adversary.Feature.Sample_variance
                ~reference:0.01 sample_1k)));
    Test.make ~name:"feature.entropy_n1000"
      (Staged.stage (fun () ->
           ignore
             (Adversary.Feature.extract entropy_kind ~reference:0.01 sample_1k)));
    Test.make ~name:"kde.fit_200"
      (Staged.stage (fun () -> ignore (Stats.Kde.fit kde_points)));
    Test.make ~name:"kde.log_pdf_200pts"
      (Staged.stage (fun () -> ignore (Stats.Kde.log_pdf kde 0.3)));
    Test.make ~name:"classifier.classify"
      (Staged.stage (fun () -> ignore (Adversary.Classifier.classify clf 1.0)));
    Test.make ~name:"theorems.closed_forms"
      (Staged.stage (fun () ->
           ignore (Analytical.Theorems.v_mean ~r:1.8);
           ignore (Analytical.Theorems.v_variance ~r:1.8 ~n:1000);
           ignore (Analytical.Theorems.v_entropy ~r:1.8 ~n:1000)));
    Test.make ~name:"bayes.sample_variance_exact"
      (Staged.stage (fun () ->
           ignore
             (Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0
                ~sigma2_h:1.9 ~n:1000)));
  ]

let run_micro_benchmarks () =
  let open Bechamel in
  Format.fprintf fmt "@.Micro-benchmarks (Bechamel, monotonic clock)@.";
  Format.fprintf fmt "%-32s  %14s  %10s@." "kernel" "ns/run" "r^2";
  Format.fprintf fmt "%s@." (String.make 62 '-');
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      List.map
        (fun elt ->
          let raw = Benchmark.run cfg [ Toolkit.Instance.monotonic_clock ] elt in
          let est = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ x ] -> x
            | Some (x :: _) -> x
            | _ -> Float.nan
          in
          let r2 = Option.value (Analyze.OLS.r_square est) ~default:Float.nan in
          Format.fprintf fmt "%-32s  %14.1f  %10.4f@." (Test.Elt.name elt) ns r2;
          (Test.Elt.name elt, ns, r2))
        (Test.elements test))
    (micro_tests ())

(* --- hand-rolled JSON (no dependency): one flat object per run --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  (* JSON has no NaN/inf literals; a failed OLS estimate becomes null. *)
  if Float.is_finite x then Printf.sprintf "%.6g" x else "null"

let add_spans buf =
  Buffer.add_string buf "  \"spans\": [";
  List.iteri
    (fun i (s : Obs.Span.stat) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"count\": %d, \"total_s\": %s, \
            \"self_s\": %s}"
           (json_escape s.Obs.Span.name)
           s.count (json_float s.total_s) (json_float s.self_s)))
    (Obs.Span.snapshot ());
  Buffer.add_string buf "\n  ],\n"

let add_metrics buf ~metrics =
  Buffer.add_string buf "  \"metrics\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf (Printf.sprintf "\n    \"%s\": " (json_escape name));
      match v with
      | Obs.Metrics.Snapshot.Counter n ->
          Buffer.add_string buf (string_of_int n)
      | Obs.Metrics.Snapshot.Gauge g -> Buffer.add_string buf (json_float g)
      | Obs.Metrics.Snapshot.Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf
               "{\"count\": %d, \"mean\": %s, \"p50\": %s, \"p90\": %s, \
                \"p99\": %s, \"max\": %s}"
               h.Obs.Metrics.Snapshot.count (json_float h.mean)
               (json_float h.p50) (json_float h.p90) (json_float h.p99)
               (json_float h.max)))
    metrics;
  Buffer.add_string buf "\n  },\n"

let add_tables buf =
  Buffer.add_string buf "  \"tables\": [";
  List.iteri
    (fun i (title, digest) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"title\": \"%s\", \"digest\": \"%s\"}"
           (json_escape title) (json_escape digest)))
    (Scenarios.Table.printed_digests ());
  Buffer.add_string buf "\n  ],\n"

let write_json path ~resolved_jobs ~total ~metrics ~micro =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  (* v3 = v2 plus the "tables" key (content digests of every printed
     table); v2 = v1 plus "spans" and "metrics".  Every earlier key keeps
     its meaning, so consumers only need to bump the accepted schema
     string. *)
  Buffer.add_string buf "  \"schema\": \"ta-bench/3\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"scale\": %s,\n" (json_float !scale));
  Buffer.add_string buf (Printf.sprintf "  \"seed\": %d,\n" !seed);
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" resolved_jobs);
  Buffer.add_string buf
    (Printf.sprintf "  \"only\": \"%s\",\n" (json_escape !only));
  Buffer.add_string buf
    (Printf.sprintf "  \"total_s\": %s,\n" (json_float total));
  Buffer.add_string buf "  \"stages\": [";
  List.iteri
    (fun i (id, dt) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"id\": \"%s\", \"wall_s\": %s}"
           (json_escape id) (json_float dt)))
    (List.rev !stage_times);
  Buffer.add_string buf "\n  ],\n";
  add_spans buf;
  add_metrics buf ~metrics;
  add_tables buf;
  Buffer.add_string buf "  \"micro\": [";
  List.iteri
    (fun i (name, ns, r2) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_square\": %s}"
           (json_escape name) (json_float ns) (json_float r2)))
    micro;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf))

let () =
  Arg.parse args
    (fun anon -> raise (Arg.Bad ("unexpected argument: " ^ anon)))
    "bench/main.exe -- regenerate the paper's figures and micro-benchmarks";
  (* Catch bad numbers here rather than as an Invalid_argument (or a
     nonsense run) deep inside the simulator. *)
  if not (!scale > 0.0 && Float.is_finite !scale) then begin
    prerr_endline "bench: --scale must be a positive finite number";
    exit 2
  end;
  if !seed < 0 then begin
    prerr_endline "bench: --seed must be non-negative";
    exit 2
  end;
  (* A typo'd figure id used to run nothing and still exit 0; fail fast
     with the valid set instead. *)
  if !only <> "all" then begin
    let ids = String.split_on_char ',' !only in
    let bad = List.filter (fun id -> not (List.mem id known_figures)) ids in
    if ids = [] || bad <> [] then begin
      Printf.eprintf "bench: unknown figure id%s %s; valid ids: %s\n"
        (if List.length bad > 1 then "s" else "")
        (String.concat "," bad)
        (String.concat "," known_figures);
      exit 2
    end
  end;
  if !check_trace && !trace_path = "" then begin
    prerr_endline "bench: --check-trace requires --trace FILE";
    exit 2
  end;
  if !inject <> "" then begin
    match Scenarios.Sweep.parse_injection !inject with
    | Ok injections -> Scenarios.Sweep.set_injections injections
    | Error msg ->
        Printf.eprintf "bench: %s\n" msg;
        exit 2
  end;
  if !checkpoint <> "" then Scenarios.Sweep.set_checkpoint_dir (Some !checkpoint);
  if !retries >= 0 then Scenarios.Sweep.set_retries !retries;
  Scenarios.Sweep.set_strict !strict;
  if !event_budget > 0 then Scenarios.Sweep.set_event_budget (Some !event_budget);
  if !jobs > 0 then Exec.Pool.set_default_jobs !jobs;
  let resolved_jobs = Exec.Pool.default_jobs () in
  Format.fprintf fmt "[exec: %d worker domain%s]@." resolved_jobs
    (if resolved_jobs = 1 then "" else "s");
  if !trace_path <> "" then Obs.Trace.enable ~path:!trace_path;
  let t0 = Unix.gettimeofday () in
  (* Same contract as ta_lab: a starved tap is a diagnosed failure, not a
     backtrace — commit the partial trace, print the report, exit 3.
     Supervised sweeps contain these and exit 4 instead; this handler
     covers --strict and unsupervised code paths. *)
  (try run_figures () with
  | Scenarios.Starvation.Tap_starved _ as e ->
      Obs.Trace.flush ();
      Format.eprintf "bench: ";
      ignore (Scenarios.Starvation.pp_starved Format.err_formatter e : bool);
      exit 3
  | Desim.Sim.Event_budget_exceeded { max_events } ->
      Obs.Trace.flush ();
      Printf.eprintf "bench: simulation exceeded the --event-budget (%d events)\n"
        max_events;
      exit 3);
  Obs.Trace.flush ();
  (* Snapshot before the micro-benchmarks: their adaptive iteration counts
     run real simulations, and folding those into the counters would make
     the report's "metrics" section non-reproducible.  Snapshotted here it
     is a pure function of (scale, seed, --only) — the structural
     invariant tabench_diff --structural binds on. *)
  let metrics = Obs.Metrics.snapshot () in
  let micro =
    (if !run_micro then run_micro_benchmarks () else [])
    @ List.rev !fleet_micro
  in
  let total = Unix.gettimeofday () -. t0 in
  if !json_path <> "" then
    write_json !json_path ~resolved_jobs ~total ~metrics ~micro;
  Format.fprintf fmt "@.[bench total %.1f s, scale %.2f, seed %d, jobs %d]@."
    total !scale !seed resolved_jobs;
  (if !check_trace then
     match Obs.Trace.validate_file !trace_path with
     | Ok { Obs.Trace.events; runs } ->
         Format.fprintf fmt "[trace OK: %d events across %d runs]@." events runs
     | Error msg ->
         Printf.eprintf "bench: trace %s violates ta-trace/1: %s\n" !trace_path
           msg;
         exit 1);
  (* Partial results: the tables (with annotated rows), trace and JSON
     report are all on disk by now — record the ta-fail/1 manifest and
     exit 4 so CI can tell "complete" from "degraded". *)
  if Scenarios.Sweep.partial () then begin
    Format.pp_print_flush fmt ();
    let dir = if !checkpoint <> "" then !checkpoint else !csv_dir in
    if dir <> "" then begin
      let path = Filename.concat dir "failures.json" in
      Scenarios.Sweep.write_manifest ~path;
      Printf.eprintf "bench: failure manifest written to %s\n" path
    end;
    prerr_endline "bench: partial results:";
    Scenarios.Sweep.pp_failures Format.err_formatter;
    Format.pp_print_flush Format.err_formatter ();
    exit 4
  end
