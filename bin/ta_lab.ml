(* ta_lab — command-line driver for the traffic-analysis countermeasure
   laboratory: reproduce any figure of Fu et al. (ICPP 2003), query the
   closed-form theory, or evaluate a custom padding configuration. *)

open Cmdliner

let fmt = Format.std_formatter

(* Reject bad numbers at the Cmdliner level: a non-positive scale used to
   propagate until Sim.every raised Invalid_argument deep inside a run. *)
let pos_float_conv ~what =
  let parse s =
    match float_of_string_opt s with
    | Some f when f > 0.0 && Float.is_finite f -> Ok f
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be a positive finite number, got %s" what s))
    | None -> Error (`Msg (Printf.sprintf "invalid %s %S (expected a number)" what s))
  in
  Arg.conv (parse, fun ppf f -> Format.fprintf ppf "%g" f)

let pos_int_conv ~what =
  let parse s =
    match int_of_string_opt s with
    | Some i when i >= 1 -> Ok i
    | Some i -> Error (`Msg (Printf.sprintf "%s must be >= 1, got %d" what i))
    | None ->
        Error
          (`Msg (Printf.sprintf "invalid %s %S (expected an integer)" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let seed_conv =
  let parse s =
    match int_of_string_opt s with
    | Some i when i >= 0 -> Ok i
    | Some _ -> Error (`Msg (Printf.sprintf "seed must be non-negative, got %s" s))
    | None -> Error (`Msg (Printf.sprintf "invalid seed %S (expected an integer)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let scale_arg =
  let doc = "Workload scale factor (1.0 = paper fidelity; smaller = faster)." in
  Arg.(value & opt (pos_float_conv ~what:"scale") 1.0
       & info [ "scale" ] ~docv:"FACTOR" ~doc)

let seed_arg =
  let doc = "Root random seed (every run is deterministic in it)." in
  Arg.(value & opt (some seed_conv) None & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some i when i >= 1 -> Ok i
    | Some _ -> Error (`Msg (Printf.sprintf "jobs must be >= 1, got %s" s))
    | None -> Error (`Msg (Printf.sprintf "invalid jobs %S (expected an integer)" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sweeps (default: EXEC_JOBS or the \
     available cores, capped).  Results are bit-identical at any value."
  in
  Arg.(value & opt (some jobs_conv) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let apply_jobs jobs = Option.iter Exec.Pool.set_default_jobs jobs

let csv_arg =
  let doc =
    "Directory to drop CSV copies of the printed tables into (created, \
     mkdir -p style, if missing)."
  in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Write a ta-trace/1 JSONL event trace of every simulation run to \
     $(docv).  Byte-identical at any --jobs value."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "After the run, print the merged metrics registry and the per-stage \
     span profile.  Only exec.* and span timings depend on --jobs / wall \
     clock."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let apply_trace trace = Option.iter (fun path -> Obs.Trace.enable ~path) trace

(* Resilient-execution knobs, shared by every sweep-running command. *)

type resilience = {
  checkpoint : string option;
  retries : int option;
  strict : bool;
  inject : string option;
  event_budget : int option;
  no_kernel : bool;
}

let checkpoint_arg =
  let doc =
    "Checkpoint directory: journal every completed sweep point to \
     $(docv) (ta-ckpt/1, one file per sweep) and replay journaled points \
     on a rerun — a killed run resumes where it stopped with \
     byte-identical tables, at any --jobs."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let retries_arg =
  let doc =
    "Re-attempts (fresh derived seed each) before a failing sweep point \
     is quarantined (default 2)."
  in
  Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)

let strict_arg =
  let doc =
    "Disable failure containment: the first failing sweep point aborts \
     the run with its original exception (tap starvation keeps its \
     historical exit 3)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let inject_arg =
  let doc =
    "Fault injection for testing the supervisor: comma-separated \
     SWEEP:INDEX (always fails) or SWEEP:INDEX\\@K (fails attempts < K), \
     e.g. 'fig6:2\\@1'."
  in
  Arg.(value & opt (some string) None & info [ "inject-fail" ] ~docv:"SPEC" ~doc)

let event_budget_arg =
  let doc =
    "Per-point simulator event budget: a sweep point whose simulation \
     processes more than $(docv) events is declared failed (watchdog \
     against runaway points)."
  in
  Arg.(value & opt (some int) None & info [ "event-budget" ] ~docv:"N" ~doc)

let no_kernel_arg =
  let doc =
    "Force every simulation onto the event loop instead of the fused \
     gateway kernels (same as TA_FORCE_EVENT_LOOP=1).  Output is \
     bit-identical either way; only the desim.kernel.* counters and \
     wall-clock time differ."
  in
  Arg.(value & flag & info [ "no-kernel" ] ~doc)

let resilience_term =
  let make checkpoint retries strict inject event_budget no_kernel =
    { checkpoint; retries; strict; inject; event_budget; no_kernel }
  in
  Term.(
    const make $ checkpoint_arg $ retries_arg $ strict_arg $ inject_arg
    $ event_budget_arg $ no_kernel_arg)

let apply_resilience r =
  match Option.map Scenarios.Sweep.parse_injection r.inject with
  | Some (Error msg) -> `Error (false, msg)
  | None | Some (Ok _) -> (
      match r.retries with
      | Some n when n < 0 ->
          `Error (false, Printf.sprintf "retries must be >= 0, got %d" n)
      | _ -> (
          match r.event_budget with
          | Some n when n < 1 ->
              `Error (false, Printf.sprintf "event budget must be >= 1, got %d" n)
          | _ ->
              if r.no_kernel then Scenarios.Fastpath.set_enabled false;
              Scenarios.Sweep.set_checkpoint_dir r.checkpoint;
              Option.iter Scenarios.Sweep.set_retries r.retries;
              Scenarios.Sweep.set_strict r.strict;
              Scenarios.Sweep.set_event_budget r.event_budget;
              (match Option.map Scenarios.Sweep.parse_injection r.inject with
              | Some (Ok injections) ->
                  Scenarios.Sweep.set_injections injections
              | None | Some (Error _) -> Scenarios.Sweep.clear_injections ());
              `Ok ()))

(* Partial results: annotated tables were already printed; record the
   machine-readable manifest next to the journal (or the CSVs) and exit 4
   so scripts can tell "complete" from "degraded". *)
let finish_partial ~resilience ~csv_dir =
  if Scenarios.Sweep.partial () then begin
    Format.pp_print_flush fmt ();
    let dir =
      match (resilience.checkpoint, csv_dir) with
      | Some d, _ -> Some d
      | None, Some d -> Some d
      | None, None -> None
    in
    (match dir with
    | Some d ->
        let path = Filename.concat d "failures.json" in
        Scenarios.Sweep.write_manifest ~path;
        Format.eprintf "ta_lab: failure manifest written to %s@." path
    | None -> ());
    Format.eprintf "ta_lab: partial results:@.";
    Scenarios.Sweep.pp_failures Format.err_formatter;
    Format.pp_print_flush Format.err_formatter ();
    exit 4
  end

let print_metrics () =
  Format.fprintf fmt "@.== metrics ==@.%a" Obs.Metrics.Snapshot.pp
    (Obs.Metrics.snapshot ());
  match Obs.Span.snapshot () with
  | [] -> ()
  | spans ->
      Format.fprintf fmt "== spans ==@.";
      List.iter
        (fun (s : Obs.Span.stat) ->
          Format.fprintf fmt "span      %-44s count=%d total=%.3fs self=%.3fs@."
            s.Obs.Span.name s.count s.total_s s.self_s)
        spans

let finish_obs metrics =
  Obs.Trace.flush ();
  if metrics then print_metrics ()

let run_figure name f =
  let run scale seed csv_dir jobs trace metrics resilience =
    match apply_resilience resilience with
    | `Error _ as e -> e
    | `Ok () ->
        apply_jobs jobs;
        apply_trace trace;
        Scenarios.Calibration.print_setup fmt;
        f ~scale ?seed ?csv_dir ();
        finish_obs metrics;
        finish_partial ~resilience ~csv_dir;
        `Ok ()
  in
  let term =
    Term.(
      ret
        (const run $ scale_arg $ seed_arg $ csv_arg $ jobs_arg $ trace_arg
       $ metrics_arg $ resilience_term))
  in
  let info = Cmd.info name ~doc:(Printf.sprintf "Reproduce %s." name) in
  Cmd.v info term

let fig4a_cmd =
  run_figure "fig4a" (fun ~scale ?seed ?csv_dir () ->
      ignore (Scenarios.Fig4a.run ~scale ?seed ?csv_dir fmt))

let fig4b_cmd =
  run_figure "fig4b" (fun ~scale ?seed ?csv_dir () ->
      ignore (Scenarios.Fig4b.run ~scale ?seed ?csv_dir fmt))

let fig5a_cmd =
  run_figure "fig5a" (fun ~scale ?seed ?csv_dir () ->
      ignore (Scenarios.Fig5a.run ~scale ?seed ?csv_dir fmt))

let fig5b_cmd =
  run_figure "fig5b" (fun ~scale:_ ?seed ?csv_dir () ->
      ignore (Scenarios.Fig5b.run ?seed ?csv_dir fmt))

let fig6_cmd =
  run_figure "fig6" (fun ~scale ?seed ?csv_dir () ->
      ignore (Scenarios.Fig6.run ~scale ?seed ?csv_dir fmt))

let fig8a_cmd =
  run_figure "fig8a" (fun ~scale ?seed ?csv_dir () ->
      ignore (Scenarios.Fig8.run ~scale ?seed ~kind:Scenarios.Fig8.Campus ?csv_dir fmt))

let fig8b_cmd =
  run_figure "fig8b" (fun ~scale ?seed ?csv_dir () ->
      ignore (Scenarios.Fig8.run ~scale ?seed ~kind:Scenarios.Fig8.Wan ?csv_dir fmt))

let multirate_cmd =
  run_figure "multirate" (fun ~scale ?seed ?csv_dir () ->
      ignore (Scenarios.Multirate.run ~scale ?seed ?csv_dir fmt))

let faults_cmd =
  let intensities_arg =
    let doc =
      "Comma-separated fault intensities in [0,1] to sweep (default \
       0,0.02,0.05,0.1,0.2,0.4)."
    in
    Arg.(value & opt (some (list float)) None
         & info [ "intensities" ] ~docv:"LIST" ~doc)
  in
  let run scale seed csv_dir intensities jobs trace metrics resilience =
    match
      Option.bind intensities (fun xs ->
          List.find_opt (fun x -> Float.is_nan x || x < 0.0 || x > 1.0) xs)
    with
    | Some bad ->
        `Error
          ( false,
            Printf.sprintf "intensity %g outside the valid range [0, 1]" bad )
    | None when intensities = Some [] ->
        `Error
          ( false,
            "at least one fault intensity in the valid range [0, 1] is \
             required" )
    | None -> (
        match apply_resilience resilience with
        | `Error _ as e -> e
        | `Ok () ->
            apply_jobs jobs;
            apply_trace trace;
            Scenarios.Calibration.print_setup fmt;
            ignore
              (Scenarios.Degradation.run ~scale ?seed ?csv_dir:csv_dir
                 ?intensities fmt);
            finish_obs metrics;
            finish_partial ~resilience ~csv_dir;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Sweep channel-fault intensity; report detection (incl. the \
          gap-aware adversary) and QoS degradation side by side.")
    Term.(
      ret
        (const run $ scale_arg $ seed_arg $ csv_arg $ intensities_arg
       $ jobs_arg $ trace_arg $ metrics_arg $ resilience_term))

let fleet_cmd =
  let flows_arg =
    let doc =
      "Comma-separated fleet sizes (concurrent flows, each >= 1) to sweep \
       (default 1000,10000,100000; scaled by --scale)."
    in
    Arg.(value
         & opt (some (list (pos_int_conv ~what:"flow count"))) None
         & info [ "flows" ] ~docv:"LIST" ~doc)
  in
  let gateways_arg =
    let doc =
      "Padded gateways sharing the fleet (>= 1; capped at the flow count \
       per point)."
    in
    Arg.(value
         & opt (pos_int_conv ~what:"gateways") 8
         & info [ "gateways" ] ~docv:"N" ~doc)
  in
  let probes_arg =
    let doc =
      "Probe flows per point for the detection-rate distribution (>= 1)."
    in
    Arg.(value
         & opt (pos_int_conv ~what:"probes") 12
         & info [ "probes" ] ~docv:"N" ~doc)
  in
  let duration_arg =
    let doc = "Simulated mux duration per point, seconds (> 0)." in
    Arg.(value
         & opt (pos_float_conv ~what:"duration") 2.0
         & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let load_arg =
    let doc = "Aggregate-load shape: $(b,flat) or $(b,diurnal)." in
    Arg.(value
         & opt
             (enum
                [
                  ("flat", Scenarios.Fleet.Flat);
                  ("diurnal", Scenarios.Fleet.Diurnal);
                ])
             Scenarios.Fleet.Flat
         & info [ "load" ] ~docv:"SHAPE" ~doc)
  in
  let run scale seed csv_dir flows gateways probes duration load jobs trace
      metrics resilience =
    match flows with
    | Some [] ->
        `Error
          (false, "at least one flow count in the valid range >= 1 is required")
    | _ -> (
        match apply_resilience resilience with
        | `Error _ as e -> e
        | `Ok () ->
            apply_jobs jobs;
            apply_trace trace;
            Scenarios.Calibration.print_setup fmt;
            ignore
              (Scenarios.Fleet.run ~scale ?seed ?csv_dir ?flow_counts:flows
                 ~gateways ~probes ~duration ~load fmt);
            finish_obs metrics;
            finish_partial ~resilience ~csv_dir;
            `Ok ())
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Sweep fleet size: mux many concurrent flows behind a padded \
          gateway fleet and report the per-flow detection-rate distribution.")
    Term.(
      ret
        (const run $ scale_arg $ seed_arg $ csv_arg $ flows_arg $ gateways_arg
       $ probes_arg $ duration_arg $ load_arg $ jobs_arg $ trace_arg
       $ metrics_arg $ resilience_term))

let ablations_cmd =
  let run scale seed jobs trace metrics resilience =
    match apply_resilience resilience with
    | `Error _ as e -> e
    | `Ok () ->
    apply_jobs jobs;
    apply_trace trace;
    let seed = Option.value seed ~default:51_000 in
    ignore (Scenarios.Ablations.run_jitter_models ~scale ~seed fmt);
    ignore (Scenarios.Ablations.run_vit_laws ~scale ~seed:(seed + 1) fmt);
    ignore (Scenarios.Ablations.run_entropy_bins ~scale ~seed:(seed + 2) fmt);
    ignore (Scenarios.Ablations.run_tap_positions ~scale ~seed:(seed + 3) fmt);
    ignore (Scenarios.Ablations.run_oracle_vs_kde ~scale ~seed:(seed + 4) fmt);
    ignore (Scenarios.Ablations.run_adaptive_vs_cit ~scale ~seed:(seed + 5) fmt);
    ignore (Scenarios.Ablations_ext.run_classifier_backends ~scale ~seed:(seed + 6) fmt);
    ignore (Scenarios.Ablations_ext.run_mix_vs_padding ~scale ~seed:(seed + 7) fmt);
    ignore (Scenarios.Ablations_ext.run_size_padding ~seed:(seed + 9) fmt);
    ignore (Scenarios.Ablations_ext.run_roc ~scale ~seed:(seed + 10) fmt);
    Scenarios.Ablations_ext.run_bounds_table fmt;
    ignore (Scenarios.Ablations_ext.run_qos_table ~seed:(seed + 8) fmt);
    finish_obs metrics;
    finish_partial ~resilience ~csv_dir:None;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Run all design-choice ablations.")
    Term.(
      ret (const run $ scale_arg $ seed_arg $ jobs_arg $ trace_arg
         $ metrics_arg $ resilience_term))

let theory_cmd =
  let r_arg =
    Arg.(required & opt (some float) None & info [ "r"; "ratio" ] ~docv:"RATIO"
           ~doc:"Variance ratio r >= 1.")
  in
  let n_arg =
    Arg.(value & opt int 1000 & info [ "n"; "samples" ] ~docv:"N" ~doc:"Sample size.")
  in
  let run r n =
    if r < 1.0 then `Error (false, "r must be >= 1")
    else begin
      Format.fprintf fmt "r = %.6f, n = %d@." r n;
      Format.fprintf fmt "  v_mean     = %.4f (independent of n)@."
        (Analytical.Theorems.v_mean ~r);
      Format.fprintf fmt "  v_variance = %.4f  (C_Y = %.4g)@."
        (Analytical.Theorems.v_variance ~r ~n)
        (Analytical.Theorems.c_variance ~r);
      Format.fprintf fmt "  v_entropy  = %.4f  (C_H = %.4g)@."
        (Analytical.Theorems.v_entropy ~r ~n)
        (Analytical.Theorems.c_entropy ~r);
      Format.fprintf fmt "  n for 99%% detection: variance %.3e, entropy %.3e@."
        (Analytical.Theorems.n_for_detection_variance ~r ~p:0.99)
        (Analytical.Theorems.n_for_detection_entropy ~r ~p:0.99);
      let exact =
        Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0
          ~sigma2_h:r ~n
      in
      let bracket =
        Analytical.Bounds.sample_variance_bracket ~sigma2_l:1.0 ~sigma2_h:r ~n
      in
      Format.fprintf fmt
        "  sample-variance exact rate %.4f; Bhattacharyya bracket [%.4f, \
         %.4f]@."
        exact bracket.Analytical.Bounds.lower bracket.Analytical.Bounds.upper;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "theory" ~doc:"Evaluate the closed-form detection rates.")
    Term.(ret (const run $ r_arg $ n_arg))

let design_cmd =
  let vmax_arg =
    Arg.(value & opt float 0.55 & info [ "vmax" ] ~docv:"RATE"
           ~doc:"Tolerated detection rate in (0.5, 1).")
  in
  let nmax_arg =
    Arg.(value & opt int 1_000_000 & info [ "nmax" ] ~docv:"N"
           ~doc:"Adversary's sample-size budget.")
  in
  let run vmax nmax seed =
    let seed = Option.value seed ~default:4242 in
    let sigma_t = Linkpad.recommend_sigma_t ~seed ~v_max:vmax ~n_max:nmax () in
    Format.fprintf fmt
      "Recommended VIT sigma_T = %.3f us (target detection <= %.3f against \
       n <= %d)@."
      (sigma_t *. 1e6) vmax nmax;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "design" ~doc:"Recommend a VIT sigma_T for a security budget.")
    Term.(ret (const run $ vmax_arg $ nmax_arg $ seed_arg))

let evaluate_cmd =
  let padding_arg =
    let doc = "Padding scheme: 'cit' or 'vit:SIGMA_US'." in
    Arg.(value & opt string "cit" & info [ "padding" ] ~docv:"SCHEME" ~doc)
  in
  let where_arg =
    let doc = "Observation point: 'gw' or 'router:UTIL'." in
    Arg.(value & opt string "gw" & info [ "where" ] ~docv:"WHERE" ~doc)
  in
  let n_arg =
    Arg.(value & opt int 1000 & info [ "n"; "samples" ] ~docv:"N" ~doc:"Sample size.")
  in
  let parse_padding s =
    match String.split_on_char ':' s with
    | [ "cit" ] -> Ok Linkpad.Cit
    | [ "vit"; us ] -> (
        match float_of_string_opt us with
        | Some v when v > 0.0 -> Ok (Linkpad.Vit { sigma_t = v *. 1e-6 })
        | _ -> Error "vit sigma must be a positive number of microseconds")
    | _ -> Error "padding must be 'cit' or 'vit:SIGMA_US'"
  in
  let parse_where s =
    match String.split_on_char ':' s with
    | [ "gw" ] -> Ok Linkpad.At_sender_gateway
    | [ "router"; u ] -> (
        match float_of_string_opt u with
        | Some u when u >= 0.0 && u < 1.0 ->
            Ok (Linkpad.Behind_lab_router { utilization = u })
        | _ -> Error "router utilization must be in [0, 1)")
    | _ -> Error "where must be 'gw' or 'router:UTIL'"
  in
  let run padding where n seed =
    match (parse_padding padding, parse_where where) with
    | Error e, _ | _, Error e -> `Error (false, e)
    | Ok padding, Ok observation ->
        let spec =
          {
            Linkpad.default_spec with
            Linkpad.padding;
            observation;
            sample_size = n;
            seed = Option.value seed ~default:42;
          }
        in
        let report = Linkpad.evaluate spec in
        Linkpad.pp_report fmt report;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Evaluate a custom padding configuration.")
    Term.(ret (const run $ padding_arg $ where_arg $ n_arg $ seed_arg))

let setup_cmd =
  let run () =
    Scenarios.Calibration.print_setup fmt;
    let cal = Scenarios.Calibration.measure_gateway_sigmas () in
    Format.fprintf fmt
      "Calibrated gateway PIAT sigma: low %.3f us, high %.3f us (r = %.4f)@."
      (cal.Scenarios.Calibration.sigma_low *. 1e6)
      (cal.Scenarios.Calibration.sigma_high *. 1e6)
      cal.Scenarios.Calibration.r_hat;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "setup" ~doc:"Print the experiment setup and calibration.")
    Term.(ret (const run $ const ()))

let all_cmd =
  let run scale seed csv_dir jobs trace metrics resilience =
    match apply_resilience resilience with
    | `Error _ as e -> e
    | `Ok () ->
    apply_jobs jobs;
    apply_trace trace;
    Scenarios.Calibration.print_setup fmt;
    let s = Option.value seed ~default:42_000 in
    ignore (Scenarios.Fig4a.run ~scale ~seed:(s + 1) ?csv_dir fmt);
    ignore (Scenarios.Fig4b.run ~scale ~seed:(s + 2) ?csv_dir fmt);
    ignore (Scenarios.Fig5a.run ~scale ~seed:(s + 3) ?csv_dir fmt);
    ignore (Scenarios.Fig5b.run ~seed:(s + 4) ?csv_dir fmt);
    ignore (Scenarios.Fig6.run ~scale ~seed:(s + 5) ?csv_dir fmt);
    ignore (Scenarios.Fig8.run ~scale ~seed:(s + 6) ~kind:Scenarios.Fig8.Campus ?csv_dir fmt);
    ignore (Scenarios.Fig8.run ~scale ~seed:(s + 7) ~kind:Scenarios.Fig8.Wan ?csv_dir fmt);
    ignore (Scenarios.Multirate.run ~scale ~seed:(s + 8) ?csv_dir fmt);
    finish_obs metrics;
    finish_partial ~resilience ~csv_dir;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Reproduce every figure in sequence.")
    Term.(
      ret
        (const run $ scale_arg $ seed_arg $ csv_arg $ jobs_arg $ trace_arg
       $ metrics_arg $ resilience_term))

let main_cmd =
  let doc = "traffic-analysis countermeasure laboratory (Fu et al., ICPP 2003)" in
  Cmd.group
    (Cmd.info "ta_lab" ~version:"1.0.0" ~doc)
    [
      setup_cmd; fig4a_cmd; fig4b_cmd; fig5a_cmd; fig5b_cmd; fig6_cmd;
      fig8a_cmd; fig8b_cmd; multirate_cmd; faults_cmd; fleet_cmd;
      ablations_cmd; theory_cmd; design_cmd; evaluate_cmd; all_cmd;
    ]

let () =
  (* Runtime I/O failures (unwritable --csv target, etc.) carry an
     actionable message already — print it like a CLI error instead of an
     uncaught-exception backtrace. *)
  match Cmd.eval_value ~catch:false main_cmd with
  | exception Sys_error msg ->
      Printf.eprintf "ta_lab: %s\n" msg;
      exit 125
  | exception (Scenarios.Starvation.Tap_starved _ as e) ->
      (* Commit whatever trace the dying run buffered — a partial trace is
         the post-mortem — then report with the metrics snapshot instead
         of an uncaught-exception backtrace.  Only reachable in --strict
         (or from unsupervised code paths): supervised sweeps contain the
         failure and exit 4 instead. *)
      Obs.Trace.flush ();
      Format.eprintf "ta_lab: ";
      ignore (Scenarios.Starvation.pp_starved Format.err_formatter e : bool);
      exit 3
  | exception Desim.Sim.Event_budget_exceeded { max_events } ->
      (* The strict-mode face of the event-budget watchdog: same
         deterministic-failure contract as starvation. *)
      Obs.Trace.flush ();
      Format.eprintf "ta_lab: simulation exceeded the --event-budget (%d events)@."
        max_events;
      exit 3
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  (* Invalid CLI exits 2 across the repo (bench, talint, Arg-based
     tools); Cmdliner's default 124 would break that contract. *)
  | Error `Parse -> exit 2
  | Error `Term -> exit 2
  | Error `Exn -> exit Cmd.Exit.internal_error
