(* Compare two ta-bench/2|3 JSON reports and fail on regression.

   Usage: tabench_diff [options] BASELINE.json CURRENT.json

   Default (timing) mode: stages (end-to-end figure wall-clock) and
   micro-benchmarks (ns/run) are matched by name; entries present in only
   one file are reported but never fail the diff.

   --structural mode compares what must NOT drift between runs at the
   same scale/seed regardless of hardware, --jobs, or wall-clock noise:
   the stage id set, every non-exec. metric (simulation-domain counters
   and gauges are deterministic), and the table content digests
   (ta-bench/3).  Any mismatch — including entries present on one side
   only — fails the diff, which is why CI can make this mode binding
   while the timing mode stays advisory.

   Exit codes: 0 = within tolerance / invariants hold, 1 = at least one
   regression or mismatch, 2 = usage or parse error. *)

let usage =
  "tabench_diff [--tolerance F] [--stage-tolerance F] [--structural] \
   [--format text|json] BASELINE.json CURRENT.json"

let tolerance = ref 0.25
let stage_tolerance = ref 0.50
let structural = ref false
let format = ref "text"
let files = ref []

let args =
  [
    ( "--tolerance",
      Arg.Set_float tolerance,
      "FRAC allowed fractional slowdown per micro-benchmark (default 0.25)" );
    ( "--stage-tolerance",
      Arg.Set_float stage_tolerance,
      "FRAC allowed fractional slowdown per stage wall-clock (default 0.50; \
       stages are noisier than micros)" );
    ( "--structural",
      Arg.Set structural,
      " compare structural invariants (stage id set, non-exec. metrics, \
       table digests) instead of timings; every mismatch is binding" );
    ( "--format",
      Arg.Set_string format,
      "FMT output format: text (default) or json" );
  ]

let die msg =
  prerr_endline ("tabench_diff: " ^ msg);
  exit 2

let load path =
  let contents =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error e -> die e
  in
  match Obs.Json.of_string contents with
  | Error e -> die (Printf.sprintf "%s: %s" path e)
  | Ok json ->
      (match Obs.Json.member "schema" json with
      | Some (Obs.Json.Str ("ta-bench/2" | "ta-bench/3")) -> ()
      | Some (Obs.Json.Str s) ->
          die
            (Printf.sprintf "%s: unsupported schema %S (want ta-bench/2 or /3)"
               path s)
      | _ -> die (Printf.sprintf "%s: missing \"schema\" key" path));
      json

let num_member key json =
  match Obs.Json.member key json with
  | Some (Obs.Json.Num f) -> Some f
  | _ -> None

let str_member key json =
  match Obs.Json.member key json with
  | Some (Obs.Json.Str s) -> Some s
  | _ -> None

(* Pull a [(name, value)] list out of an array-of-objects member. *)
let series ~list_key ~name_key ~value_key json =
  match Obs.Json.member list_key json with
  | Some (Obs.Json.Arr items) ->
      List.filter_map
        (fun item ->
          match (str_member name_key item, num_member value_key item) with
          | Some name, Some v -> Some (name, v)
          | _ -> None)
        items
  | _ -> []

type row = {
  section : string;
  name : string;
  base : float;
  cur : float;
  ratio : float;
  regressed : bool;
}

let compare_series ~section ~tol base cur =
  List.filter_map
    (fun (name, b) ->
      match List.assoc_opt name cur with
      | None -> None
      | Some c ->
          (* A zero baseline carries no signal (sub-resolution stage). *)
          let ratio = if b > 0.0 then c /. b else 1.0 in
          Some
            { section; name; base = b; cur = c; ratio; regressed = ratio > 1.0 +. tol })
    base

let pct ratio = (ratio -. 1.0) *. 100.0

(* --- structural mode ------------------------------------------------- *)

let stage_ids json =
  match Obs.Json.member "stages" json with
  | Some (Obs.Json.Arr items) ->
      List.filter_map (fun item -> str_member "id" item) items
  | _ -> []

let table_digests json =
  match Obs.Json.member "tables" json with
  | Some (Obs.Json.Arr items) ->
      Some
        (List.filter_map
           (fun item ->
             match (str_member "title" item, str_member "digest" item) with
             | Some t, Some d -> Some (t, d)
             | _ -> None)
           items)
  | _ -> None

let nonexec_metrics json =
  match Obs.Json.member "metrics" json with
  | Some (Obs.Json.Obj fields) ->
      List.filter
        (fun (name, _) -> not (String.starts_with ~prefix:"exec." name))
        fields
  | _ -> []

let rec render_value = function
  | Obs.Json.Null -> "null"
  | Obs.Json.Bool b -> string_of_bool b
  | Obs.Json.Num f -> Printf.sprintf "%.6g" f
  | Obs.Json.Str s -> Printf.sprintf "%S" s
  | Obs.Json.Arr items ->
      "[" ^ String.concat ", " (List.map render_value items) ^ "]"
  | Obs.Json.Obj fields ->
      "{"
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k (render_value v))
             fields)
      ^ "}"

(* Compare two [(name, value)] association lists in both directions;
   every absence or value difference is one mismatch line. *)
let diff_assoc ~what ~eq ~show base cur =
  let missing =
    List.filter_map
      (fun (name, b) ->
        match List.assoc_opt name cur with
        | None -> Some (Printf.sprintf "%s %S missing from current" what name)
        | Some c when not (eq b c) ->
            Some
              (Printf.sprintf "%s %S differs: baseline %s vs current %s" what
                 name (show b) (show c))
        | Some _ -> None)
      base
  in
  let extra =
    List.filter_map
      (fun (name, _) ->
        if List.mem_assoc name base then None
        else Some (Printf.sprintf "%s %S absent from baseline" what name))
      cur
  in
  missing @ extra

let structural_mismatches base cur =
  let stage_diff =
    let bs = stage_ids base and cs = stage_ids cur in
    List.filter_map
      (fun id ->
        if List.mem id cs then None
        else Some (Printf.sprintf "stage %S missing from current" id))
      bs
    @ List.filter_map
        (fun id ->
          if List.mem id bs then None
          else Some (Printf.sprintf "stage %S absent from baseline" id))
        cs
  in
  let metric_diff =
    diff_assoc ~what:"metric" ~eq:( = ) ~show:render_value
      (nonexec_metrics base) (nonexec_metrics cur)
  in
  let table_diff, table_warnings =
    match (table_digests base, table_digests cur) with
    | Some bt, Some ct ->
        ( diff_assoc ~what:"table" ~eq:String.equal
            ~show:(fun d -> d)
            bt ct,
          [] )
    | None, _ ->
        ([], [ "baseline predates ta-bench/3: table digests not checked" ])
    | _, None ->
        ([], [ "current predates ta-bench/3: table digests not checked" ])
  in
  (stage_diff @ metric_diff @ table_diff, table_warnings)

let print_structural_text ~meta_warnings ~counts mismatches =
  List.iter (fun w -> Printf.printf "warning: %s\n" w) meta_warnings;
  List.iter (fun m -> Printf.printf "MISMATCH: %s\n" m) mismatches;
  let stages, metrics, tables = counts in
  if mismatches = [] then
    Printf.printf
      "OK: structural invariants hold (%d stages, %d metrics, %d tables)\n"
      stages metrics tables
  else Printf.printf "FAIL: %d structural mismatch(es)\n" (List.length mismatches)

let print_structural_json ~meta_warnings ~counts mismatches =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"tabench-diff/1\",\n";
  Buffer.add_string buf "  \"mode\": \"structural\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"ok\": %b,\n" (mismatches = []));
  let stages, metrics, tables = counts in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"compared\": {\"stages\": %d, \"metrics\": %d, \"tables\": %d},\n"
       stages metrics tables);
  let string_list key items =
    Buffer.add_string buf (Printf.sprintf "  \"%s\": [" key);
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "\"%s\"" (Obs.Json.escape s)))
      items;
    Buffer.add_string buf "]"
  in
  string_list "warnings" meta_warnings;
  Buffer.add_string buf ",\n";
  string_list "mismatches" mismatches;
  Buffer.add_string buf "\n}\n";
  print_string (Buffer.contents buf)

let print_text ~meta_warnings rows =
  List.iter (fun w -> Printf.printf "warning: %s\n" w) meta_warnings;
  Printf.printf "%-7s %-34s %14s %14s %9s\n" "section" "name" "baseline" "current"
    "delta";
  List.iter
    (fun r ->
      Printf.printf "%-7s %-34s %14.1f %14.1f %+8.1f%%%s\n" r.section r.name
        r.base r.cur (pct r.ratio)
        (if r.regressed then "  REGRESSION" else ""))
    rows;
  let n_reg = List.length (List.filter (fun r -> r.regressed) rows) in
  if n_reg = 0 then
    Printf.printf "OK: %d comparisons within tolerance\n" (List.length rows)
  else Printf.printf "FAIL: %d regression(s) in %d comparisons\n" n_reg (List.length rows)

let print_json ~meta_warnings rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"tabench-diff/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"ok\": %b,\n"
       (not (List.exists (fun r -> r.regressed) rows)));
  Buffer.add_string buf "  \"warnings\": [";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "\"%s\"" (Obs.Json.escape w)))
    meta_warnings;
  Buffer.add_string buf "],\n  \"comparisons\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"section\": \"%s\", \"name\": \"%s\", \"baseline\": %.6g, \
            \"current\": %.6g, \"ratio\": %.6g, \"regressed\": %b}"
           (Obs.Json.escape r.section) (Obs.Json.escape r.name) r.base r.cur
           r.ratio r.regressed))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  print_string (Buffer.contents buf)

let () =
  Arg.parse args (fun f -> files := f :: !files) usage;
  if !format <> "text" && !format <> "json" then
    die "--format must be text or json";
  if not (Float.is_finite !tolerance) || !tolerance < 0.0 then
    die "--tolerance must be non-negative";
  if not (Float.is_finite !stage_tolerance) || !stage_tolerance < 0.0 then
    die "--stage-tolerance must be non-negative";
  let base_path, cur_path =
    match List.rev !files with
    | [ b; c ] -> (b, c)
    | _ -> die ("expected exactly two files\nusage: " ^ usage)
  in
  let base = load base_path and cur = load cur_path in
  (* Reports taken at different scales/seeds measure different work;
     comparing them is usually a pinning mistake worth flagging. *)
  let meta_warnings =
    List.filter_map
      (fun key ->
        match (num_member key base, num_member key cur) with
        | Some b, Some c when b <> c ->
            Some (Printf.sprintf "%s differs: baseline %g vs current %g" key b c)
        | _ -> None)
      [ "scale"; "seed"; "jobs" ]
  in
  if !structural then begin
    let mismatches, table_warnings = structural_mismatches base cur in
    let meta_warnings = meta_warnings @ table_warnings in
    let counts =
      ( List.length (stage_ids base),
        List.length (nonexec_metrics base),
        match table_digests base with None -> 0 | Some t -> List.length t )
    in
    (match !format with
    | "json" -> print_structural_json ~meta_warnings ~counts mismatches
    | _ -> print_structural_text ~meta_warnings ~counts mismatches);
    if mismatches <> [] then exit 1
  end
  else begin
    let stages j =
      series ~list_key:"stages" ~name_key:"id" ~value_key:"wall_s" j
    in
    let micros j =
      series ~list_key:"micro" ~name_key:"name" ~value_key:"ns_per_run" j
    in
    let rows =
      compare_series ~section:"stage" ~tol:!stage_tolerance (stages base)
        (stages cur)
      @ compare_series ~section:"micro" ~tol:!tolerance (micros base)
          (micros cur)
    in
    if rows = [] then die "no common stages or micro-benchmarks to compare";
    (match !format with
    | "json" -> print_json ~meta_warnings rows
    | _ -> print_text ~meta_warnings rows);
    if List.exists (fun r -> r.regressed) rows then exit 1
  end
