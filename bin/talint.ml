(* talint — the repo's determinism & domain-safety lint pass, now
   whole-program: per-file rules plus the cross-module call-graph passes
   (E001 exception escape, T001 transitive determinism, A001 zero-alloc
   hot paths) and the lint/BASELINE.json waiver workflow.

     dune build @lint                            # the usual gate
     dune exec bin/talint.exe -- --format json   # talint/2 report
     dune exec bin/talint.exe -- --cache /tmp/talint-cache.json
                                                 # warm runs skip parsing
     dune exec bin/talint.exe -- --rules         # list rule ids

   Exit codes: 0 clean (baselined findings do not count), 1 live
   findings, 2 bad CLI / unusable root. *)

let root = ref ""
let format = ref "text"
let list_rules = ref false
let cache = ref ""

let args =
  [
    ( "--root",
      Arg.Set_string root,
      "DIR project root to lint (default: auto-detect from dune-project)" );
    ( "--format",
      Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
      " report format (json = schema talint/2)" );
    ( "--cache",
      Arg.Set_string cache,
      "PATH incremental summary cache (talint-cache/1); created if absent" );
    ("--rules", Arg.Set list_rules, " list rule ids and exit");
  ]

let rules_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"talint-rules/1\",\n  \"rules\": [";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    {\"id\": \"%s\", \"summary\": \"%s\"}"
           (Obs.Json.escape r.Lint.Rules.id)
           (Obs.Json.escape r.Lint.Rules.summary)))
    Lint.Rules.all_rules;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let () =
  Arg.parse args
    (fun anon -> raise (Arg.Bad ("unexpected argument: " ^ anon)))
    "talint -- determinism & domain-safety lint over lib/, bin/ and bench/";
  if !list_rules then begin
    (match !format with
    | "json" -> print_string (rules_json ())
    | _ ->
        List.iter
          (fun r ->
            Printf.printf "%s  %s\n" r.Lint.Rules.id r.Lint.Rules.summary)
          Lint.Rules.all_rules);
    exit 0
  end;
  let root =
    if !root <> "" then !root
    else
      match Lint.Driver.find_root () with
      | Some r -> r
      | None ->
          prerr_endline
            "talint: cannot locate the project root (no dune-project found \
             above the current directory); pass --root DIR";
          exit 2
  in
  let cache_path = if !cache = "" then None else Some !cache in
  match Lint.Driver.run ?cache_path ~root () with
  | exception Lint.Driver.Error msg ->
      Printf.eprintf "talint: %s\n" msg;
      exit 2
  | report ->
      (match !format with
      | "json" -> print_string (Lint.Driver.to_json report)
      | _ -> Format.printf "%a" Lint.Driver.pp_text report);
      exit (if report.Lint.Driver.findings = [] then 0 else 1)
