(* talint — the repo's determinism & domain-safety lint pass.

     dune build @lint                    # the usual gate
     dune exec bin/talint.exe -- --format json
     dune exec bin/talint.exe -- --rules # list rule ids

   Exit codes: 0 clean, 1 findings, 2 bad CLI / unusable root. *)

let root = ref ""
let format = ref "text"
let list_rules = ref false

let args =
  [
    ( "--root",
      Arg.Set_string root,
      "DIR project root to lint (default: auto-detect from dune-project)" );
    ( "--format",
      Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
      " report format (json = schema talint/1)" );
    ("--rules", Arg.Set list_rules, " list rule ids and exit");
  ]

let () =
  Arg.parse args
    (fun anon -> raise (Arg.Bad ("unexpected argument: " ^ anon)))
    "talint -- determinism & domain-safety lint over lib/, bin/ and bench/";
  if !list_rules then begin
    List.iter
      (fun r -> Printf.printf "%s  %s\n" r.Lint.Rules.id r.Lint.Rules.summary)
      Lint.Rules.all_rules;
    exit 0
  end;
  let root =
    if !root <> "" then !root
    else
      match Lint.Driver.find_root () with
      | Some r -> r
      | None ->
          prerr_endline
            "talint: cannot locate the project root (no dune-project found \
             above the current directory); pass --root DIR";
          exit 2
  in
  match Lint.Driver.run ~root with
  | exception Lint.Driver.Error msg ->
      Printf.eprintf "talint: %s\n" msg;
      exit 2
  | report ->
      (match !format with
      | "json" -> print_string (Lint.Driver.to_json report)
      | _ -> Format.printf "%a" Lint.Driver.pp_text report);
      exit (if report.Lint.Driver.findings = [] then 0 else 1)
