(** Figure 8: detection rate over a 24-hour day on (a) a campus network and
    (b) a wide-area path (the paper's OSU → TAMU Internet route, 15
    routers), CIT padding, tap in front of the receiver gateway.

    Expected shape: on the campus path variance/entropy detection stays
    high essentially all day; on the WAN it is much lower overall but
    still exceeds ~0.65 in the small hours (≈2–4 AM), the paper's warning
    that CIT is unsafe even behind many noisy routers. *)

type kind = Campus | Wan

type point = {
  hour : float;
  utilization : float;       (** per-congested-hop utilization at that hour *)
  r_hat : float;
  scores : Workload.scored list;
}

type t = { kind : kind; sample_size : int; points : point list }

val hops_for : kind -> hour:float -> Netsim.Topology.hop_spec array
(** Campus: 4 hops at the campus diurnal utilization.  WAN: 15 hops — 6
    congested at the WAN diurnal utilization plus 9 well-provisioned at
    1/6 of it (the paper's path crosses a few loaded exchange points and
    many quiet backbone hops). *)

val default_hours : float list
(** 0, 2, …, 22 — every two hours across the day. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?sample_size:int ->
  ?hours:float list ->
  ?half_width:float ->
  kind:kind ->
  ?csv_dir:string ->
  Format.formatter ->
  t
(** Default sample size 1000 (paper); up to 16 sliding windows per class
    per time point (scaled, floor 6), collected by
    {!Workload.collect_windowed} (overlapping, default stride
    [sample_size/16]) — the long WAN path is simulated once per
    (hour, class) shard instead of once per window, which is what makes
    panel (b) tractable.  [half_width] enables Wilson-CI early stopping.
    Each time point is simulated quasi-statically at that hour's
    utilization.  Raises [Sweep.Sweep_internal_error] if the sweep
    journal layer misbehaves. *)
