(** Shared plumbing for the figure runners: collect a low-rate/high-rate
    trace pair from one system configuration and score the adversary's
    features on it. *)

type traces = {
  low : System.result;
  high : System.result;
  var_low : float;         (** full-trace PIAT variance under ω_l *)
  var_high : float;
  r_hat : float;           (** max(var_high/var_low, 1): the adversary's
                               offline estimate of the variance ratio *)
}

val collect_pair : base:System.config -> piats:int -> traces
(** Run [base] at the calibration low and high payload rates (distinct
    derived seeds) until each yields [piats] inter-arrival times.  The two
    collections run concurrently when {!Exec.Pool} has a free worker;
    parallelism is transparent — the result is bit-identical to the
    sequential computation. *)

val classes : traces -> (string * float array) array
(** Labeled PIAT traces in (low, high) order, for {!Adversary.Detection}. *)

type scored = {
  feature : Adversary.Feature.kind;
  sample_size : int;
  empirical : float;        (** KDE-Bayes detection rate, held-out *)
  theory : float;           (** paper theorem at the measured r̂ *)
  n_test : int;             (** held-out trials behind [empirical] *)
  successes : int;          (** exact correct-classification count among
                                [n_test] (no rate-rounding involved) *)
}

val wilson95 : scored -> Stats.Confidence.interval
(** 95% Wilson interval on [successes]/[n_test] — the exact held-out
    counts carried through {!Adversary.Detection.result}, not a
    reconstruction from the prior-weighted rate (which is lossy when
    per-class test counts differ). *)

val pp_ci : scored -> string
(** "[lo, hi]" rendering of {!wilson95} for table cells. *)

val score :
  traces ->
  features:Adversary.Feature.kind list ->
  sample_size:int ->
  scored list
(** Empirical detection via {!Adversary.Detection.estimate_features}
    (reference = the calibration timer mean) paired with the matching
    closed-form value at [r_hat]. *)

val theory_of : feature:Adversary.Feature.kind -> r:float -> n:int -> float
(** Theorem 1/2/3 dispatch. *)

(** {2 Streaming windowed collection}

    The figure runners' fast path: instead of simulating
    [sample_size × windows] PIATs per class and slicing them into disjoint
    windows, simulate one long trace per shard and slide a
    [sample_size]-window along it by [stride] — the same number of sample
    windows for roughly [stride/sample_size] of the simulation cost.
    Collection grows by whole shards (independent simulations with
    index-derived seeds, fanned out on {!Exec.Pool}) and can stop early
    once every feature's 95% Wilson interval is tighter than a target
    half-width. *)

type window_plan = {
  sample_size : int;
  stride : int;             (** window start spacing, in PIATs *)
  windows_per_shard : int;  (** windows contributed by one shard *)
  min_windows : int;        (** windows accumulated before first scoring *)
  max_windows : int;        (** hard cap per class *)
  half_width : float option;
      (** 95% Wilson half-width target for early stop; [None] = collect
          straight to [max_windows] *)
}

val window_plan :
  ?stride:int ->
  ?windows_per_shard:int ->
  ?min_windows:int ->
  ?half_width:float ->
  sample_size:int ->
  max_windows:int ->
  unit ->
  window_plan
(** Validated constructor.  Defaults: [stride = max 1 (sample_size / 16)],
    [windows_per_shard = 8] (clamped to [max_windows]), [min_windows = 6],
    no early stop.  Collection grows by whole shards, so the realized
    window count is a multiple of [windows_per_shard]: the last shard may
    carry the total past [max_windows] when the cap is not a shard
    multiple.  Raises [Invalid_argument] on a stride outside
    [1, sample_size], [min_windows < 4] (scoring needs 2 train + 2 test
    windows per class), [max_windows < min_windows], or a half-width
    outside (0, 0.5). *)

val shard_piats : window_plan -> int
(** PIATs one shard simulates per class:
    [sample_size + (windows_per_shard - 1) * stride].  Windows never span
    shard boundaries, so sharding changes no window's contents. *)

type windowed_pair = {
  low_windows : Adversary.Dataset.windowed;
  high_windows : Adversary.Dataset.windowed;
  piat_var_low : float;   (** PIAT variance under ω_l, all shards merged *)
  piat_var_high : float;
  ratio_hat : float;      (** max(piat_var_high/piat_var_low, 1) *)
  shards_run : int;       (** shards simulated per class *)
  piats_per_class : int;  (** post-warmup PIATs simulated per class *)
  stopped_early : bool;   (** the half-width target fired before
                              [max_windows] *)
}

val collect_windowed :
  base:System.config ->
  plan:window_plan ->
  features:Adversary.Feature.kind list ->
  windowed_pair * scored list
(** Run the calibration low/high pair under [plan] and return the
    accumulated window features together with the final scoring (so
    callers never re-train the classifier).  Each (shard, class) task
    seeds its simulation with [Rng.mix_seed class_seed shard] (class
    seeds as in {!collect_pair}) and extracts features in-task; shard
    results are merged in index order.  Both the collected data and the
    early-stopping decision are functions of [(base.seed, plan)] only —
    bit-identical at any [--jobs].  PIAT variances come from merged
    streaming moments ({!Stats.Stream.Moments.merge}), not a concatenated
    trace.  Raises [Starvation.Tap_starved] /
    [Desim.Sim.Event_budget_exceeded] as {!System.run} does. *)
