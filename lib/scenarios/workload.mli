(** Shared plumbing for the figure runners: collect a low-rate/high-rate
    trace pair from one system configuration and score the adversary's
    features on it. *)

type traces = {
  low : System.result;
  high : System.result;
  var_low : float;         (** full-trace PIAT variance under ω_l *)
  var_high : float;
  r_hat : float;           (** max(var_high/var_low, 1): the adversary's
                               offline estimate of the variance ratio *)
}

val collect_pair : base:System.config -> piats:int -> traces
(** Run [base] at the calibration low and high payload rates (distinct
    derived seeds) until each yields [piats] inter-arrival times.  The two
    collections run concurrently when {!Exec.Pool} has a free worker;
    parallelism is transparent — the result is bit-identical to the
    sequential computation. *)

val classes : traces -> (string * float array) array
(** Labeled PIAT traces in (low, high) order, for {!Adversary.Detection}. *)

type scored = {
  feature : Adversary.Feature.kind;
  sample_size : int;
  empirical : float;        (** KDE-Bayes detection rate, held-out *)
  theory : float;           (** paper theorem at the measured r̂ *)
  n_test : int;             (** held-out trials behind [empirical] *)
  successes : int;          (** exact correct-classification count among
                                [n_test] (no rate-rounding involved) *)
}

val wilson95 : scored -> Stats.Confidence.interval
(** 95% Wilson interval on [successes]/[n_test] — the exact held-out
    counts carried through {!Adversary.Detection.result}, not a
    reconstruction from the prior-weighted rate (which is lossy when
    per-class test counts differ). *)

val pp_ci : scored -> string
(** "[lo, hi]" rendering of {!wilson95} for table cells. *)

val score :
  traces ->
  features:Adversary.Feature.kind list ->
  sample_size:int ->
  scored list
(** Empirical detection via {!Adversary.Detection.estimate_features}
    (reference = the calibration timer mean) paired with the matching
    closed-form value at [r_hat]. *)

val theory_of : feature:Adversary.Feature.kind -> r:float -> n:int -> float
(** Theorem 1/2/3 dispatch. *)
