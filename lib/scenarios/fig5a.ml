type point = {
  sigma_t : float;
  r_hat : float;
  r_predicted : float;
  scores : Workload.scored list;
}

type t = {
  sample_size : int;
  calibration : Calibration.gateway_sigmas;
  points : point list;
}

let default_sigma_ts = [ 0.0; 1e-6; 2e-6; 5e-6; 10e-6; 20e-6; 50e-6; 100e-6 ]

let default_law ~sigma_t =
  if sigma_t = 0.0 then Padding.Timer.Constant Calibration.timer_mean
  else Padding.Timer.Normal { mean = Calibration.timer_mean; sigma = sigma_t }

let run ?(scale = 1.0) ?(seed = 42_003) ?(sample_size = 2000)
    ?(sigma_ts = default_sigma_ts) ?(law = default_law) ?csv_dir fmt =
  if sample_size < 2 then invalid_arg "Fig5a.run: sample_size < 2";
  let windows = Stdlib.max 6 (int_of_float (24.0 *. scale)) in
  let calibration = Calibration.measure_gateway_sigmas ~seed:(seed + 13) () in
  let predicted sigma_t =
    Analytical.Ratio.r
      (Analytical.Ratio.make ~sigma_t
         ~sigma_gw_low:calibration.Calibration.sigma_low
         ~sigma_gw_high:calibration.Calibration.sigma_high ())
  in
  let features = Adversary.Feature.standard_set in
  (* The journal key fingerprints every input that determines point
     values, including the (possibly caller-supplied) interval law. *)
  let law_tag sigma_t =
    let l = law ~sigma_t in
    let tag =
      match l with
      | Padding.Timer.Constant _ -> "c"
      | Normal _ -> "n"
      | Uniform _ -> "u"
      | Exponential _ -> "e"
    in
    Printf.sprintf "%s:%h:%h" tag (Padding.Timer.mean l) (Padding.Timer.sigma l)
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "fig5a|seed=%d|n=%d|w=%d|points=%s" seed sample_size
         windows
         (String.concat ","
            (List.map (fun s -> Printf.sprintf "%h=%s" s (law_tag s)) sigma_ts)))
  in
  (* Sweep points are seeded by index, hence independent: fan them out. *)
  let cells =
    Sweep.mapi ~sweep:"fig5a" ~digest ~seed
      ~task:(fun ~attempt i sigma_t ->
        let base =
          {
            System.default_config with
            System.seed =
              Sweep.attempt_seed ~seed:(seed + (100 * i)) ~attempt;
            timer = law ~sigma_t;
          }
        in
        let traces =
          Workload.collect_pair ~base ~piats:(sample_size * windows)
        in
        {
          sigma_t;
          r_hat = traces.Workload.r_hat;
          r_predicted = predicted sigma_t;
          scores = Workload.score traces ~features ~sample_size;
        })
      sigma_ts
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 5(a): VIT padding, detection rate vs sigma_T (sample size \
            %d)"
           sample_size)
      ~columns:
        [ "sigma_T(us)"; "r_hat"; "r_pred"; "feature"; "empirical"; "95% CI"; "theory" ]
  in
  List.iter2
    (fun sigma_t (c : _ Sweep.cell) ->
      match c.Sweep.value with
      | Some p ->
          List.iter
            (fun (s : Workload.scored) ->
              Table.add_row table
                [
                  Printf.sprintf "%.1f" (p.sigma_t *. 1e6);
                  Printf.sprintf "%.4f" p.r_hat;
                  Printf.sprintf "%.4f" p.r_predicted;
                  Adversary.Feature.name s.feature;
                  Printf.sprintf "%.3f" s.empirical;
                  Workload.pp_ci s;
                  Printf.sprintf "%.3f" s.theory;
                ])
            p.scores
      | None ->
          Table.add_row ~status:(Sweep.row_status c) table
            [ Printf.sprintf "%.1f" (sigma_t *. 1e6); "-"; "-"; "-"; "-"; "-"; "-" ])
    sigma_ts cells;
  Table.print table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "fig5a.csv")
  | None -> ());
  { sample_size; calibration; points = Sweep.ok_values cells }
