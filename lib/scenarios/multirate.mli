(** §6 extension: classification among m > 2 payload rates.

    The paper notes the two-rate analysis "can be easily extended to
    multiple ones by performing more off-line training"; this scenario
    does exactly that — one KDE per rate, m-ary Bayes classification, and
    a confusion matrix.  Detection degrades gracefully with m because
    neighbouring rates' variance signatures overlap. *)

type t = {
  rates : float list;
  sample_size : int;
  results : (Adversary.Feature.kind * float) list;
      (** prior-weighted m-ary detection rate per feature *)
  confusion : int array array;
      (** [confusion.(truth).(decision)] for the variance feature *)
}

val run :
  ?scale:float ->
  ?seed:int ->
  ?rates:float list ->
  ?sample_size:int ->
  ?csv_dir:string ->
  Format.formatter ->
  t
(** Defaults: rates 10/20/30/40 pps, sample size 1000, CIT at the gateway,
    30 windows per class (scaled, floor 6).  Raises
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves. *)
