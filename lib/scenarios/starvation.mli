(** Tap-starvation detection shared by the scenario drivers.

    A scenario advances its simulation in chunks until the tap has
    observed a target number of padded packets.  Under extreme fault
    profiles (a permanent outage, a gateway that never restarts) the tap
    stops filling and the chunk loop would otherwise spin to its budget
    and abort with a bare [Failure].  Instead the loop watches for
    progress and raises {!Tap_starved} carrying the full metrics
    snapshot, so the caller (and the operator reading the CLI error) can
    see {e which} stage of the pipeline ate the traffic. *)

exception
  Tap_starved of {
    scenario : string;  (** driver name, e.g. ["degradation.run"] *)
    target : int;  (** padded packets the driver needed *)
    observed : int;  (** padded packets the tap actually saw *)
    sim_time : float;  (** simulated seconds at the point of giving up *)
    metrics : Obs.Metrics.Snapshot.t;
        (** registry snapshot taken at the point of giving up *)
  }

val drive :
  scenario:string ->
  ?slack:float ->
  ?min_chunk:float ->
  now:(unit -> float) ->
  count:(unit -> int) ->
  advance:(float -> unit) ->
  on_starve:(unit -> unit) ->
  target:int ->
  expected_rate:float ->
  unit ->
  unit
(** The chunk loop behind {!run_until_tap_count}, abstracted over how
    time is read ([now]), how progress is measured ([count]), and how the
    simulation advances to a chunk boundary ([advance]).  The fused
    scenario kernels drive their batch loops through this so the
    data-dependent chunk boundaries — and therefore the starvation
    decision and its simulated timestamp — are computed by the very same
    arithmetic as the event-loop path.  [on_starve] runs (e.g. to flush
    pending metric tallies) just before {!Tap_starved} is raised, so the
    snapshot in the exception reflects the flushed state. *)

val run_until_tap_count :
  scenario:string ->
  ?slack:float ->
  ?min_chunk:float ->
  Desim.Sim.t ->
  tap:Netsim.Tap.t ->
  target:int ->
  expected_rate:float ->
  unit
(** Advance [sim] in chunks sized [missing / expected_rate * slack]
    (at least [min_chunk] seconds) until the tap holds [target]
    timestamps.  Raises {!Tap_starved} when the chunk budget runs out or
    the tap makes no progress for many consecutive chunks; raises
    [Desim.Sim.Event_budget_exceeded] when a supervisor-armed event
    budget trips first. *)

val pp_starved : Format.formatter -> exn -> bool
(** Render a {!Tap_starved} exception as an operator-facing report
    (headline plus the non-[exec.] metrics snapshot); [false] when the
    exception is anything else. *)
