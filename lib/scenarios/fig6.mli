(** Figure 6: CIT padding with cross traffic in the laboratory — empirical
    detection rate vs. the shared link's utilization.

    The padded stream and a cross-traffic source share one router output
    link (the Marconi ESR-5000 of the paper); the adversary taps just
    behind that router.  Expected shape: variance/entropy detection decays
    from ≈1.0 toward the floor as utilization grows (σ_net up, r down),
    entropy staying above variance (variance is outlier-sensitive), mean
    flat near 0.5. *)

type point = {
  utilization : float;   (** requested cross load as a fraction of link rate *)
  measured_utilization : float;  (** achieved on the shared link *)
  sigma_low : float;     (** tapped PIAT σ under ω_l, showing σ_net growth *)
  r_hat : float;
  scores : Workload.scored list;
}

type t = { sample_size : int; points : point list }

val default_utilizations : float list
(** 0.05 … 0.50 in steps of 0.05. *)

val hop_for_utilization :
  utilization:float -> burst:[ `Poisson | `On_off of float * float * float option ] ->
  Netsim.Topology.hop_spec
(** The lab hop: {!Calibration.lab_bandwidth_bps} output link with a cross
    source at [utilization] of it.  Exposed for the ablations and Fig. 8. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?sample_size:int ->
  ?utilizations:float list ->
  ?burst:[ `Poisson | `On_off of float * float * float option ] ->
  ?half_width:float ->
  ?csv_dir:string ->
  Format.formatter ->
  t
(** Default sample size 1000 (paper), up to 40 sliding windows per class
    per point (scaled, floor 6), Poisson cross traffic.  Windows are
    collected by {!Workload.collect_windowed} (overlapping, default
    stride [sample_size/16]); [half_width] enables Wilson-CI early
    stopping.  The sweep digest folds the full window plan, so changing
    any knob invalidates checkpoints instead of replaying stale cells.
    Raises [Sweep.Sweep_internal_error] if the sweep journal layer
    misbehaves. *)
