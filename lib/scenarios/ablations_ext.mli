(** Second ablation group: adversary strength and countermeasure baselines
    beyond the paper's core matrix. *)

val run_classifier_backends :
  ?scale:float -> ?seed:int -> Format.formatter -> (string * float) list
(** How much adversary sophistication buys, on identical CIT traces at
    n = 1000: KDE-Bayes per feature, plain-Gaussian per feature, the joint
    (variance, entropy) naive-Bayes, and the two spectral features.
    Returns (adversary label, detection rate).  Raises
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves. *)

val run_mix_vs_padding :
  ?scale:float -> ?seed:int -> Format.formatter -> (string * float * float) list
(** Chaum threshold mix vs CIT vs VIT as rate-hiding mechanisms:
    (scheme, worst-feature detection at n = 200, dummy overhead).  The mix
    hides message correspondence but its flush epochs track the rate, so
    detection stays ≈ 1.0 — the motivation for link padding (paper §2).
    Raises [Sweep.Sweep_internal_error] if the sweep journal layer
    misbehaves. *)

val run_bounds_table : Format.formatter -> unit
(** Pure analytics: for a grid of variance ratios and sample sizes, print
    the paper's Theorem-2 value, the exact gamma-law detection rate, and
    the Bhattacharyya bracket — showing where the paper's linear-in-1/n
    approximation sits relative to rigorous bounds. *)

val run_size_padding :
  ?seed:int -> Format.formatter -> (string * string * float) list
(** The size channel (paper §3.2 remark 3 / ref [7]): two application
    classes with different packet-size mixes but identical timing are
    told apart by per-window mean size and size entropy at ≈100% — until
    packets are padded to a constant 1500 B, which drops both to the 0.5
    floor.  Returns (configuration, feature, detection rate).  Raises
    [Desim.Sim.Event_budget_exceeded] if a class simulation exhausts its
    event budget. *)

val run_roc :
  ?scale:float -> ?seed:int -> Format.formatter -> (int * string * float * float) list
(** Threshold-free view of the CIT leak: per feature and sample size, the
    ROC AUC and the best achievable (equal-prior) accuracy along the
    curve: (n, feature, AUC, best accuracy).  AUC isolates the feature's
    intrinsic separability from the KDE classifier's threshold choice. *)

val run_qos_table :
  ?seed:int -> Format.formatter -> (float * float * float) list
(** Defender-side costs: for a sweep of timer rates, the analytic M/D/1
    mean payload delay vs the simulated receiver latency, plus overhead:
    (timer_rate_pps, analytic_delay, simulated_delay).  Raises
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves. *)
