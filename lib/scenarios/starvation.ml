exception
  Tap_starved of {
    scenario : string;
    target : int;
    observed : int;
    sim_time : float;
    metrics : Obs.Metrics.Snapshot.t;
  }

(* A run is starved when a window worth of [stall_packets] expected
   packets passes without a single new tap observation.  Every caller's
   [expected_rate] is a deliberate under-estimate of the real wire rate,
   so for an alive run the probability of an empty window is about
   exp(-50) — while a blackout is detected after ~50 expected packet
   spacings of simulated time instead of spinning to a chunk budget. *)
let stall_packets = 50.0
let max_chunks = 1_000_000

(* One chunk-loop implementation serves both the event-loop drivers and
   the fused kernels.  The chunk boundaries are data-dependent (each [dt]
   depends on the current tap count), so sharing the arithmetic is what
   guarantees both paths starve at the identical simulated time with the
   identical exception payload. *)
let drive ~scenario ?(slack = 1.1) ?(min_chunk = 0.1) ~now ~count ~advance
    ~on_starve ~target ~expected_rate () =
  let starve observed =
    on_starve ();
    raise
      (Tap_starved
         {
           scenario;
           target;
           observed;
           sim_time = now ();
           metrics = Obs.Metrics.snapshot ();
         })
  in
  let stall_window =
    Float.max (stall_packets /. expected_rate *. slack) (4.0 *. min_chunk)
  in
  let rec go ~chunks ~last_count ~last_progress_t =
    let c = count () in
    let last_progress_t = if c > last_count then now () else last_progress_t in
    if c < target then
      if chunks >= max_chunks || now () -. last_progress_t >= stall_window then
        starve c
      else begin
        let missing = target - c in
        let dt =
          Float.max (float_of_int missing /. expected_rate *. slack) min_chunk
        in
        (* Cap the chunk so a stalled run reaches the window after a
           handful of chunks rather than overshooting it a thousandfold. *)
        let dt = Float.min dt (stall_window /. 4.0) in
        advance (now () +. dt);
        go ~chunks:(chunks + 1) ~last_count:c ~last_progress_t
      end
  in
  go ~chunks:0 ~last_count:(-1) ~last_progress_t:(now ())

let run_until_tap_count ~scenario ?slack ?min_chunk sim ~tap ~target
    ~expected_rate =
  drive ~scenario ?slack ?min_chunk
    ~now:(fun () -> Desim.Sim.now sim)
    ~count:(fun () -> Netsim.Tap.count tap)
    ~advance:(fun time -> Desim.Sim.run_until sim ~time)
    ~on_starve:(fun () -> Desim.Sim.publish_metrics sim)
    ~target ~expected_rate ()

let pp_starved ppf = function
  | Tap_starved { scenario; target; observed; sim_time; metrics } ->
      Format.fprintf ppf
        "error: tap starved in %s: observed %d of %d padded packets after \
         %.1f simulated seconds.@.The padding stream is not reaching the \
         tap; metrics at the point of giving up:@.%a@."
        scenario observed target sim_time Obs.Metrics.Snapshot.pp
        (Obs.Metrics.Snapshot.drop_prefix "exec." metrics);
      true
  | _ -> false
