(** Graceful-degradation sweep: security and QoS cost of channel faults.

    The paper's channel is fault-free; this scenario injects the faults a
    deployment actually sees — wire loss (Bernoulli or bursty
    Gilbert–Elliott), duplication, bounded reordering, link flapping,
    gateway clock drift / missed fires, and gateway crash–restart — and
    reports, side by side at each fault intensity:

    - the {e security} cost: empirical detection rates of the paper's
      mean/variance/entropy classifiers {e and} of a gap-aware adversary
      ({!Adversary.Gaps}) that folds the fault-induced holes out of the
      trace.  The headline result: faults degrade the naive classifiers
      toward 0.5 (the stream looks "more random") while the gap-aware
      adversary keeps detecting — faults are not a countermeasure;
    - the {e QoS} cost: payload latency, delivery fraction, drop/loss
      counts by cause, dummy overhead, crash downtime. *)

type profile = {
  loss : Faults.Lossy.loss_model;
  dup_prob : float;
  reorder_prob : float;
  reorder_delay : float;
  clock : Faults.Clock.spec;
  flap : (float * float) option;  (** (mean_up, mean_down) seconds *)
  mtbf : float;                   (** gateway mean time between failures;
                                      [infinity] = never crashes *)
  restart_delay : float;
}

val fault_free : profile
(** All injectors at zero — the regression baseline. *)

val profile_of_intensity : float -> profile
(** The sweep knob [x] in \[0, 1\]: Bernoulli loss [x], duplication and
    reordering [x/10], timer miss probability [x/2] (coalescing), clock
    drift [0.2% · x], flapping and crashes at rates growing with [x].
    [profile_of_intensity 0.] = {!fault_free}. *)

type config = {
  seed : int;
  timer : Padding.Timer.law;
  jitter : Padding.Jitter.t;
  payload_rate_pps : float;
  packet_size : int;
  warmup_piats : int;
  profile : profile;
}

val default_config : config
(** Calibration CIT/jitter at ω_l, 200-PIAT warm-up, {!fault_free}. *)

type run_result = {
  piats : float array;        (** tap PIATs, post warm-up *)
  overhead : float;
  payload_offered : int;
  payload_delivered : int;
  payload_dropped_gw : int;   (** gateway queue overflow *)
  lost_wire : int;            (** lossy-wire drops (padded stream) *)
  lost_outage : int;          (** dropped while the link was down *)
  lost_crash : int;           (** queue wiped at crashes + arrivals while down *)
  crashes : int;
  gw_downtime : float;
  mean_payload_latency : float;
  sim_time : float;
}

val run_faulty : config -> piats:int -> run_result
(** One faulty end-to-end run: source → crash-wrapped gateway (faulty
    clock) → lossy wire → outage → tap → receiver.  Deterministic in
    [config.seed]; [piats >= 1].  Raises [Starvation.Tap_starved] /
    [Desim.Sim.Event_budget_exceeded] as [System.run] does (heavy
    outages can starve the tap). *)

type point = {
  intensity : float;
  v_mean : float;
  v_variance : float;
  v_entropy : float;
  v_gap : float;              (** gap-aware adversary: {!Adversary.Gaps.fold}
                                  the trace, then the best of the standard
                                  features on the cleaned material *)
  gap_fraction : float;       (** observed at the tap, high-rate class *)
  overhead : float;
  mean_latency : float;
  delivered_frac : float;
  dropped_gw : int;
  lost_wire : int;
  lost_down : int;            (** outage + crash losses *)
  crashes : int;
  downtime : float;
}

val evaluate :
  ?piats:int ->
  ?sample_size:int ->
  ?timer:Padding.Timer.law ->
  seed:int ->
  profile:profile ->
  intensity:float ->
  unit ->
  point
(** Run the low/high payload-rate pair under [profile] and score all four
    adversaries at [sample_size] (default 400; [piats] defaults to
    20 × sample_size per class).  QoS numbers aggregate both classes. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?csv_dir:string ->
  ?intensities:float list ->
  Format.formatter ->
  point list
(** The degradation table: one {!evaluate} per intensity (default sweep
    0, 0.02, 0.05, 0.1, 0.2, 0.4), printed like the figure tables and
    optionally saved as [degradation.csv].  Raises
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves
    (ordinary point failures are classified, not raised). *)
