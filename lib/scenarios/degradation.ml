type profile = {
  loss : Faults.Lossy.loss_model;
  dup_prob : float;
  reorder_prob : float;
  reorder_delay : float;
  clock : Faults.Clock.spec;
  flap : (float * float) option;
  mtbf : float;
  restart_delay : float;
}

let fault_free =
  {
    loss = Faults.Lossy.No_loss;
    dup_prob = 0.0;
    reorder_prob = 0.0;
    reorder_delay = 0.005;
    clock = Faults.Clock.ideal;
    flap = None;
    mtbf = infinity;
    restart_delay = 1.0;
  }

let profile_of_intensity x =
  if x < 0.0 || x > 1.0 || Float.is_nan x then
    invalid_arg "Degradation.profile_of_intensity: intensity outside [0, 1]";
  if x = 0.0 then fault_free
  else
    {
      loss = Faults.Lossy.Bernoulli (Float.min 0.9 x);
      dup_prob = x /. 10.0;
      reorder_prob = x /. 10.0;
      reorder_delay = 0.005;
      clock =
        {
          Faults.Clock.drift = 0.002 *. x;
          miss_prob = x /. 2.0;
          coalesce = true;
          max_consecutive_misses = 4;
        };
      (* Flap/crash rates chosen so a 0.1-intensity run of a few simulated
         minutes sees a handful of each.  Full intensity is a permanent
         blackout: the wire goes down within the first second and never
         comes back, so the run must end in [Starvation.Tap_starved]. *)
      flap = (if x >= 1.0 then Some (0.5, 1e18) else Some (10.0 /. x, 0.3));
      mtbf = 60.0 /. x;
      restart_delay = 1.0;
    }

type config = {
  seed : int;
  timer : Padding.Timer.law;
  jitter : Padding.Jitter.t;
  payload_rate_pps : float;
  packet_size : int;
  warmup_piats : int;
  profile : profile;
}

let default_config =
  {
    seed = 42;
    timer = Padding.Timer.Constant Calibration.timer_mean;
    jitter = Calibration.default_jitter;
    payload_rate_pps = Calibration.rate_low_pps;
    packet_size = Calibration.packet_size;
    warmup_piats = 200;
    profile = fault_free;
  }

type run_result = {
  piats : float array;
  overhead : float;
  payload_offered : int;
  payload_delivered : int;
  payload_dropped_gw : int;
  lost_wire : int;
  lost_outage : int;
  lost_crash : int;
  crashes : int;
  gw_downtime : float;
  mean_payload_latency : float;
  sim_time : float;
}

let validate cfg =
  Padding.Timer.validate cfg.timer;
  Faults.Lossy.validate_loss cfg.profile.loss;
  Faults.Clock.validate cfg.profile.clock;
  if cfg.payload_rate_pps <= 0.0 then
    invalid_arg "Degradation: payload_rate <= 0";
  if cfg.packet_size <= 0 then invalid_arg "Degradation: packet_size <= 0";
  if cfg.warmup_piats < 0 then invalid_arg "Degradation: warmup_piats < 0"

(* Advance until the tap holds [target] timestamps.  The chunk estimate
   uses the *surviving* packet rate so heavy-fault runs do not starve the
   chunking loop; a run that truly stops making progress raises
   [Starvation.Tap_starved] with the metrics snapshot. *)
let run_until_tap_count sim ~tap ~target ~expected_rate =
  Starvation.run_until_tap_count ~scenario:"degradation.run" ~slack:1.2
    ~min_chunk:0.2 sim ~tap ~target ~expected_rate

let run_faulty cfg ~piats =
  validate cfg;
  if piats < 1 then invalid_arg "Degradation.run_faulty: piats < 1";
  Obs.Trace.with_run
    (Printf.sprintf "degradation.run seed=%d pps=%g" cfg.seed
       cfg.payload_rate_pps)
  @@ fun () ->
  let p = cfg.profile in
  let sim = Desim.Sim.create () in
  System.arm_event_budget sim;
  let root = Prng.Rng.create ~seed:cfg.seed in
  let rng_payload = Prng.Rng.split root in
  let rng_gateway = Prng.Rng.split root in
  let rng_wire = Prng.Rng.split root in
  let rng_clock = Prng.Rng.split root in
  let rng_failure = Prng.Rng.split root in
  let rng_flap = Prng.Rng.split root in
  let receiver = Padding.Receiver.create sim () in
  let tap = Netsim.Tap.create sim ~dest:(Padding.Receiver.port receiver) () in
  let outage = Faults.Outage.create sim ~dest:(Netsim.Tap.port tap) () in
  let lossy =
    Faults.Lossy.create sim ~rng:rng_wire ~loss:p.loss ~dup_prob:p.dup_prob
      ~reorder_prob:p.reorder_prob ~reorder_delay:p.reorder_delay
      ~dest:(Faults.Outage.port outage) ()
  in
  let interval =
    if p.clock = Faults.Clock.ideal then None
    else Some (Faults.Clock.intervals ~sim p.clock ~law:cfg.timer ~rng:rng_clock)
  in
  let crash =
    Faults.Crash.create sim ~rng:rng_gateway ~failure_rng:rng_failure
      ~timer:cfg.timer ~jitter:cfg.jitter ~packet_size:cfg.packet_size
      ?interval ~mtbf:p.mtbf ~restart_delay:p.restart_delay
      ~dest:(Faults.Lossy.port lossy) ()
  in
  (match p.flap with
  | Some (mean_up, mean_down) ->
      Faults.Outage.flap outage ~rng:rng_flap ~mean_up ~mean_down
  | None -> ());
  let source =
    Netsim.Traffic_gen.poisson sim ~rng:rng_payload
      ~rate_pps:cfg.payload_rate_pps ~size_bytes:cfg.packet_size
      ~kind:Netsim.Packet.Payload ~dest:(Faults.Crash.input crash) ()
  in
  let target = piats + cfg.warmup_piats + 2 in
  let fire_rate = 1.0 /. Padding.Timer.mean cfg.timer in
  let survive =
    (1.0 -. Faults.Lossy.expected_loss_rate p.loss)
    *. (1.0 -. p.clock.Faults.Clock.miss_prob)
  in
  let expected_rate = Float.max (fire_rate *. survive *. 0.5) 1.0 in
  run_until_tap_count sim ~tap ~target ~expected_rate;
  Netsim.Traffic_gen.stop source;
  Faults.Crash.stop crash;
  Faults.Outage.stop_flapping outage;
  Desim.Sim.publish_metrics sim;
  let timestamps = Netsim.Tap.timestamps tap in
  let drop = cfg.warmup_piats + 1 in
  let n = Array.length timestamps in
  let timestamps =
    if n <= drop then [||] else Array.sub timestamps drop (n - drop)
  in
  let all_piats =
    let n = Array.length timestamps in
    if n < 2 then [||]
    else Array.init (n - 1) (fun i -> timestamps.(i + 1) -. timestamps.(i))
  in
  let piats_arr =
    if Array.length all_piats > piats then Array.sub all_piats 0 piats
    else all_piats
  in
  {
    piats = piats_arr;
    overhead = Faults.Crash.overhead crash;
    payload_offered = Netsim.Traffic_gen.generated source;
    payload_delivered = Padding.Receiver.payload_received receiver;
    payload_dropped_gw = Faults.Crash.payload_dropped crash;
    lost_wire = Faults.Lossy.lost lossy;
    lost_outage = Faults.Outage.dropped outage;
    lost_crash = Faults.Crash.payload_lost crash;
    crashes = Faults.Crash.crashes crash;
    gw_downtime = Faults.Crash.downtime crash;
    mean_payload_latency = Padding.Receiver.mean_payload_latency receiver;
    sim_time = Desim.Sim.now sim;
  }

type point = {
  intensity : float;
  v_mean : float;
  v_variance : float;
  v_entropy : float;
  v_gap : float;
  gap_fraction : float;
  overhead : float;
  mean_latency : float;
  delivered_frac : float;
  dropped_gw : int;
  lost_wire : int;
  lost_down : int;
  crashes : int;
  downtime : float;
}

let rate_of_result results feature =
  match
    List.find_opt
      (fun r -> r.Adversary.Detection.feature = feature)
      results
  with
  | Some r -> r.Adversary.Detection.detection_rate
  | None -> Float.nan

let evaluate ?piats ?(sample_size = 400) ?timer ~seed ~profile ~intensity () =
  let piats = Option.value piats ~default:(20 * sample_size) in
  let tau = Calibration.timer_mean in
  let base =
    {
      default_config with
      seed;
      profile;
      timer = Option.value timer ~default:default_config.timer;
    }
  in
  (* Disjoint derived seeds: the two classes are independent simulations
     and can run concurrently (bit-identical either way). *)
  let low, high =
    Exec.Pool.both
      (fun () -> run_faulty { base with seed = (seed * 2) + 1 } ~piats)
      (fun () ->
        run_faulty
          {
            base with
            seed = (seed * 2) + 2;
            payload_rate_pps = Calibration.rate_high_pps;
          }
          ~piats)
  in
  let classes =
    [|
      (Calibration.label_low, low.piats); (Calibration.label_high, high.piats);
    |]
  in
  let standard =
    Adversary.Detection.estimate_features
      ~features:Adversary.Feature.standard_set ~reference:tau ~sample_size
      ~classes ()
  in
  (* The gap-aware adversary folds the holes out of the whole trace, then
     runs the same classifier bank on the cleaned material and keeps its
     best feature — an adaptive adversary is not obliged to classify on
     the defender's preferred statistic. *)
  let folded_classes =
    Array.map
      (fun (name, trace) -> (name, Adversary.Gaps.fold ~tau trace))
      classes
  in
  let folded =
    Adversary.Detection.estimate_features
      ~features:Adversary.Feature.standard_set ~reference:tau ~sample_size
      ~classes:folded_classes ()
  in
  let v_gap =
    List.fold_left
      (fun acc r -> Float.max acc r.Adversary.Detection.detection_rate)
      0.0 folded
  in
  let entropy_kind =
    Adversary.Feature.Sample_entropy
      { bin_width = Adversary.Feature.default_entropy_bin_width }
  in
  let offered = low.payload_offered + high.payload_offered in
  let delivered = low.payload_delivered + high.payload_delivered in
  {
    intensity;
    v_mean = rate_of_result standard Adversary.Feature.Sample_mean;
    v_variance = rate_of_result standard Adversary.Feature.Sample_variance;
    v_entropy = rate_of_result standard entropy_kind;
    v_gap;
    gap_fraction = Adversary.Gaps.gap_fraction ~tau high.piats;
    overhead = (low.overhead +. high.overhead) /. 2.0;
    mean_latency =
      (low.mean_payload_latency +. high.mean_payload_latency) /. 2.0;
    delivered_frac =
      (if offered = 0 then 0.0
       else float_of_int delivered /. float_of_int offered);
    dropped_gw = low.payload_dropped_gw + high.payload_dropped_gw;
    lost_wire = low.lost_wire + high.lost_wire;
    lost_down =
      low.lost_outage + high.lost_outage + low.lost_crash + high.lost_crash;
    crashes = low.crashes + high.crashes;
    downtime = low.gw_downtime +. high.gw_downtime;
  }

let default_intensities = [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.4 ]

let run ?(scale = 1.0) ?(seed = 47_000) ?csv_dir
    ?(intensities = default_intensities) fmt =
  let sample_size = Stdlib.max 100 (int_of_float (400.0 *. scale)) in
  let piats = 20 * sample_size in
  let table =
    Table.create
      ~title:
        "Degradation: detection and QoS vs fault intensity (gap-aware \
         adversary folds the holes back out)"
      ~columns:
        [
          "intensity"; "v_mean"; "v_var"; "v_entropy"; "v_gap"; "gap_frac";
          "overhead"; "latency(ms)"; "delivered"; "drops(gw)"; "lost(wire)";
          "lost(down)"; "crashes";
        ]
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "degradation|seed=%d|n=%d|piats=%d|points=%s" seed
         sample_size piats
         (String.concat "," (List.map (Printf.sprintf "%h") intensities)))
  in
  (* Intensities are seeded by index, hence independent: evaluate them in
     parallel, then fill the table in sweep order.  Intensity 1.0 is a
     designed blackout — under supervision it lands as a [failed] row
     (tap starved) instead of aborting the whole sweep. *)
  let cells =
    Sweep.mapi ~sweep:"degradation" ~digest ~seed
      ~task:(fun ~attempt i x ->
        evaluate ~piats ~sample_size
          ~seed:(Sweep.attempt_seed ~seed:(seed + i) ~attempt)
          ~profile:(profile_of_intensity x) ~intensity:x ())
      intensities
  in
  List.iter2
    (fun x (c : _ Sweep.cell) ->
      match c.Sweep.value with
      | Some p ->
          Table.add_row table
            [
              Printf.sprintf "%.2f" p.intensity;
              Table.fcell p.v_mean;
              Table.fcell p.v_variance;
              Table.fcell p.v_entropy;
              Table.fcell p.v_gap;
              Table.fcell p.gap_fraction;
              Table.fcell p.overhead;
              Printf.sprintf "%.3f" (p.mean_latency *. 1e3);
              Table.fcell p.delivered_frac;
              string_of_int p.dropped_gw;
              string_of_int p.lost_wire;
              string_of_int p.lost_down;
              string_of_int p.crashes;
            ]
      | None ->
          Table.add_row ~status:(Sweep.row_status c) table
            (Printf.sprintf "%.2f" x :: List.init 12 (fun _ -> "-")))
    intensities cells;
  Table.print table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "degradation.csv")
  | None -> ());
  Sweep.ok_values cells
