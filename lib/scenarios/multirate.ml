type t = {
  rates : float list;
  sample_size : int;
  results : (Adversary.Feature.kind * float) list;
  confusion : int array array;
}

let run ?(scale = 1.0) ?(seed = 42_007) ?(rates = [ 10.0; 20.0; 30.0; 40.0 ])
    ?(sample_size = 1000) ?csv_dir fmt =
  if List.length rates < 2 then invalid_arg "Multirate.run: need >= 2 rates";
  if sample_size < 2 then invalid_arg "Multirate.run: sample_size < 2";
  let windows = Stdlib.max 6 (int_of_float (30.0 *. scale)) in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "multirate|seed=%d|n=%d|w=%d|points=%s" seed sample_size
         windows
         (String.concat "," (List.map (Printf.sprintf "%h") rates)))
  in
  (* One independent (seeded-by-index) trace collection per rate. *)
  let cells =
    Sweep.mapi ~sweep:"multirate" ~digest ~seed
      ~task:(fun ~attempt i rate ->
        let cfg =
          {
            System.default_config with
            System.seed =
              Sweep.attempt_seed ~seed:(seed + (100 * i)) ~attempt;
            payload_rate_pps = rate;
          }
        in
        let res = System.run cfg ~piats:(sample_size * windows) in
        (Printf.sprintf "%.0fpps" rate, res.System.piats))
      rates
  in
  (* m-ary detection degrades gracefully: failed rate classes become
     annotated rows and the classifier runs on the surviving classes
     (needs at least two). *)
  let classes = Array.of_list (Sweep.ok_values cells) in
  let m = Array.length classes in
  let results =
    if m < 2 then []
    else
      List.map
        (fun feature ->
          let r =
            Adversary.Detection.estimate ~feature
              ~reference:Calibration.timer_mean ~sample_size ~classes ()
          in
          (feature, r.Adversary.Detection.detection_rate))
        Adversary.Feature.standard_set
  in
  (* Confusion matrix for the variance feature. *)
  let confusion =
    if m < 2 then [||]
    else begin
      let feature = Adversary.Feature.Sample_variance in
      let featurized =
        Array.map
          (fun (name, trace) ->
            ( name,
              Adversary.Dataset.features_of_trace feature
                ~reference:Calibration.timer_mean ~sample_size trace ))
          classes
      in
      let split =
        Array.map (fun (_, fs) -> Adversary.Dataset.split_alternating fs) featurized
      in
      let clf =
        Adversary.Classifier.train
          ~classes:(Array.map2 (fun (n, _) (tr, _) -> (n, tr)) featurized split)
          ()
      in
      let confusion = Array.make_matrix m m 0 in
      Array.iteri
        (fun truth (_, test) ->
          Array.iter
            (fun x ->
              let d = Adversary.Classifier.classify clf x in
              confusion.(truth).(d) <- confusion.(truth).(d) + 1)
            test)
        split;
      confusion
    end
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Multi-rate extension: %d-ary detection (n=%d)"
           (List.length rates) sample_size)
      ~columns:[ "feature"; "detection rate"; "floor (1/m)" ]
  in
  List.iter
    (fun (feature, v) ->
      Table.add_row table
        [
          Adversary.Feature.name feature;
          Printf.sprintf "%.3f" v;
          Printf.sprintf "%.3f" (1.0 /. float_of_int m);
        ])
    results;
  (* Analytic m-ary oracle for the variance feature: exact Bayes rate from
     the measured per-class PIAT variances (defined when they are strictly
     increasing with the rate, which the jitter mechanism guarantees up to
     sampling noise). *)
  (if m >= 2 then
     let sigma2s =
       Array.map (fun (_, trace) -> Stats.Descriptive.variance trace) classes
     in
     let increasing =
       Array.for_all Fun.id
         (Array.init (m - 1) (fun i -> sigma2s.(i + 1) > sigma2s.(i)))
     in
     if increasing then
       Table.add_row table
         [
           "variance (exact m-ary oracle)";
           Printf.sprintf "%.3f"
             (Analytical.Multirate.mary_variance_exact ~sigma2s ~n:sample_size);
           Printf.sprintf "%.3f" (1.0 /. float_of_int m);
         ]);
  List.iter2
    (fun rate (c : _ Sweep.cell) ->
      if c.Sweep.status <> Sweep.Point_ok then
        Table.add_row ~status:(Sweep.row_status c) table
          [ Printf.sprintf "class %.0fpps" rate; "-"; "-" ])
    rates cells;
  Table.print table fmt;
  (if m >= 2 then begin
     let ctable =
       Table.create ~title:"Confusion matrix (variance feature, rows = truth)"
         ~columns:
           ("truth\\decision" :: List.map (fun (n, _) -> n) (Array.to_list classes))
     in
     Array.iteri
       (fun i row ->
         let name, _ = classes.(i) in
         Table.add_row ctable
           (name :: Array.to_list (Array.map string_of_int row)))
       confusion;
     Table.print ctable fmt
   end);
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "multirate.csv")
  | None -> ());
  { rates; sample_size; results; confusion }
