(** Experiment-wide constants and the offline calibration run.

    The constants mirror the paper's §5 setup where it specifies one
    (τ = 10 ms, rates 10/40 pps, equal priors) and substitute calibrated
    magnitudes where it depends on the physical testbed (gateway jitter
    scale, link speeds) — see DESIGN.md §2 for the mapping. *)

val timer_mean : float
(** 10 ms — E\[T\] for both CIT and VIT (paper §5). *)

val rate_low_pps : float
(** ω_l = 10 packets/s. *)

val rate_high_pps : float
(** ω_h = 40 packets/s. *)

val packet_size : int
(** 500 bytes, constant for the padded stream (paper §3.2 assumption 3). *)

val cross_packet_size : int
(** 500 bytes for cross traffic too, so "link utilization" converts to a
    packet rate directly. *)

val lab_bandwidth_bps : float
(** 622 Mb/s (OC-12) shared output link in the lab/fig6 topology: ~6.4 µs
    service time per 500 B packet, which places the ρ = 0.05…0.5 queueing
    jitter in the same decade as the calibrated gateway jitter — the
    regime the paper's Fig. 6 explores (detection decaying from ~1.0
    toward the 0.5 floor across that sweep rather than collapsing at the
    first step). *)

val default_jitter : Padding.Jitter.t
(** The mechanistic gateway model at its calibrated defaults. *)

val label_low : string
val label_high : string

type gateway_sigmas = {
  sigma_low : float;   (** PIAT std-dev under ω_l, tap at gateway, CIT *)
  sigma_high : float;  (** ... under ω_h *)
  r_hat : float;       (** variance ratio estimate σ_h²/σ_l² *)
}

val measure_gateway_sigmas :
  ?seed:int -> ?piats:int -> ?jitter:Padding.Jitter.t -> unit -> gateway_sigmas
(** The adversary's (and designer's) offline reconstruction: run the
    gateway alone (CIT, no cross traffic, tap at position 0) at both rates
    and measure the PIAT sigmas.  Default 40 000 PIATs per rate.
    Raises [Starvation.Tap_starved] / [Desim.Sim.Event_budget_exceeded]
    as {!System.run} does. *)

val print_setup : Format.formatter -> unit
(** The §5 configuration table. *)
