(* Fleet-scale sweep: per-flow detection-rate distributions over a
   mux'd gateway fleet.

   Each sweep point simulates a fleet of [flows] users behind [gateways]
   padded gateways (the unwrapped fleet library's [Mux]; this module is
   the Scenarios.Fleet driver on top of it), then estimates the
   adversary's detection rate per probe flow and reports the
   DISTRIBUTION across flows — quantiles plus a pooled Wilson interval —
   instead of the single v every single-flow figure prints.  A fleet
   operator cares about the tail ("how exposed is my worst-protected
   flow"), not the average.

   Probe flows are a deterministic evenly-spaced sample of the flow-id
   space (covering every rate class proportionally); each probe runs the
   standard windowed two-class estimate at the calibration parameters
   with a flow-derived seed, so probe results are independent of
   sharding, of --jobs and of every other probe. *)

type load = Flat | Diurnal
(* [Diurnal] modulates the fleet's aggregate load with the canonical
   activity curve (min 4 AM, max 16:00), one 24 h day compressed into
   the mux duration. *)

let load_label = function Flat -> "flat" | Diurnal -> "diurnal"

let modulation_of_load ~duration = function
  | Flat -> None
  | Diurnal ->
      Some (fun t -> Diurnal.activity ~hour:(24.0 *. t /. duration))

let calibration_mix =
  (* talint: allow R001 — read-only calibration mixture, never written *)
  [|
    {
      Mux.label = Calibration.label_low;
      rate_pps = Calibration.rate_low_pps;
      fraction = 0.5;
    };
    {
      Mux.label = Calibration.label_high;
      rate_pps = Calibration.rate_high_pps;
      fraction = 0.5;
    };
  |]

type point = {
  flows : int;
  gateways : int;
  probes : int;
  arrivals : int;
  active_flows : int;
  overhead : float;
  delivered_frac : float;
  mean_latency : float;
  events_processed : int;
  vs : float array;  (** per-probe detection rates, probe order *)
  v_mean : float;
  v_p10 : float;
  v_p25 : float;
  v_p50 : float;
  v_p75 : float;
  v_p90 : float;
  successes : int;
  trials : int;
  wilson : Stats.Confidence.interval;
}

(* Evenly spaced probe flow ids (range midpoints), covering each
   contiguous class range proportionally to its fraction. *)
let probe_flows ~flows ~probes =
  let probes = Stdlib.min probes flows in
  Array.init probes (fun i -> ((2 * i) + 1) * flows / (2 * probes))

let evaluate ?(sample_size = 100) ?(max_windows = 16) ?(load = Flat)
    ?(mix = calibration_mix) ~seed ~flows ~gateways ~probes ~duration () =
  if probes < 1 then invalid_arg "Fleet.evaluate: probes < 1";
  let cfg =
    {
      Mux.seed;
      flows;
      gateways;
      classes = mix;
      timer = Padding.Timer.Constant Calibration.timer_mean;
      jitter = Calibration.default_jitter;
      packet_size = Calibration.packet_size;
      duration;
      modulation = modulation_of_load ~duration load;
    }
  in
  Mux.validate cfg;
  let mux =
    Mux.run
      ~env_for:(fun _g ->
        let a = Arena.get ~fresh:false in
        { Mux.sim = a.Arena.sim; gw_buffers = Some a.Arena.gw })
      cfg
  in
  (* Per-flow detection at matched single-flow parameters: each probe is
     the standard windowed low/high estimate under a flow-derived seed.
     The probe-seed root is displaced from the raw sweep seed so probe
     streams never collide with the mux's shard streams. *)
  let probe_root = Prng.Rng.mix_seed seed 999_983 in
  let plan = Workload.window_plan ~sample_size ~max_windows () in
  let probe_ids = probe_flows ~flows ~probes in
  let scoreds =
    Exec.Pool.parallel_map
      (fun flow ->
        let base =
          { System.default_config with
            seed = Prng.Rng.mix_seed probe_root flow }
        in
        let _pair, scored =
          Workload.collect_windowed ~base ~plan
            ~features:[ Adversary.Feature.Sample_variance ]
        in
        match scored with
        | s :: _ -> s
        | [] -> raise (Sweep.Sweep_internal_error "fleet: no scored feature"))
      (Array.to_list probe_ids)
  in
  let vs =
    Array.of_list (List.map (fun s -> s.Workload.empirical) scoreds)
  in
  let successes =
    List.fold_left (fun a s -> a + s.Workload.successes) 0 scoreds
  in
  let trials = List.fold_left (fun a s -> a + s.Workload.n_test) 0 scoreds in
  let q p = Stats.Descriptive.quantile vs p in
  let mean =
    Array.fold_left ( +. ) 0.0 vs /. float_of_int (Array.length vs)
  in
  {
    flows;
    gateways;
    probes = Array.length probe_ids;
    arrivals = mux.Mux.arrivals;
    active_flows = Flow_table.active mux.Mux.table ~since:0.0;
    overhead = mux.Mux.overhead;
    delivered_frac =
      (if mux.Mux.arrivals = 0 then 0.0
       else
         float_of_int mux.Mux.payload_delivered
         /. float_of_int mux.Mux.arrivals);
    mean_latency = mux.Mux.mean_payload_latency;
    events_processed = mux.Mux.events_processed;
    vs;
    v_mean = mean;
    v_p10 = q 0.10;
    v_p25 = q 0.25;
    v_p50 = q 0.50;
    v_p75 = q 0.75;
    v_p90 = q 0.90;
    successes;
    trials;
    wilson = Stats.Confidence.wilson ~successes ~trials ~confidence:0.95;
  }

let default_flow_counts = [ 1_000; 10_000; 100_000 ]

let run ?(scale = 1.0) ?(seed = 48_000) ?csv_dir
    ?(flow_counts = default_flow_counts) ?(gateways = 8) ?(probes = 12)
    ?(duration = 2.0) ?(load = Flat) fmt =
  if gateways < 1 then invalid_arg "Fleet.run: gateways < 1";
  if probes < 1 then invalid_arg "Fleet.run: probes < 1";
  List.iter
    (fun n -> if n < 1 then invalid_arg "Fleet.run: flow count < 1")
    flow_counts;
  let flow_counts =
    List.map
      (fun n -> Stdlib.max 1 (int_of_float (float_of_int n *. scale)))
      flow_counts
  in
  let sample_size = Stdlib.max 25 (int_of_float (200.0 *. scale)) in
  let max_windows = 16 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fleet: per-flow detection distribution vs fleet size (%s load, \
            %d probes, n=%d)"
           (load_label load) probes sample_size)
      ~columns:
        [
          "flows"; "gateways"; "arrivals"; "active"; "overhead"; "delivered";
          "latency(ms)"; "v_mean"; "v_p10"; "v_p25"; "v_p50"; "v_p75";
          "v_p90"; "wilson95";
        ]
  in
  let mix_tag =
    String.concat ","
      (Array.to_list
         (Array.map
            (fun c ->
              Printf.sprintf "%s:%h:%h" c.Mux.label c.Mux.rate_pps
                c.Mux.fraction)
            calibration_mix))
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf
         "fleet|seed=%d|n=%d|windows=%d|gateways=%d|probes=%d|duration=%h|load=%s|mix=%s|points=%s"
         seed sample_size max_windows gateways probes duration
         (load_label load) mix_tag
         (String.concat "," (List.map string_of_int flow_counts)))
  in
  let cells =
    Sweep.mapi ~sweep:"fleet" ~digest ~seed
      ~task:(fun ~attempt i flows ->
        evaluate ~sample_size ~max_windows ~load
          ~seed:(Sweep.attempt_seed ~seed:(seed + i) ~attempt)
          ~flows
          ~gateways:(Stdlib.min gateways flows)
          ~probes ~duration ())
      flow_counts
  in
  List.iter2
    (fun flows (c : _ Sweep.cell) ->
      match c.Sweep.value with
      | Some p ->
          Table.add_row table
            [
              string_of_int p.flows;
              string_of_int p.gateways;
              string_of_int p.arrivals;
              string_of_int p.active_flows;
              Table.fcell p.overhead;
              Table.fcell p.delivered_frac;
              Printf.sprintf "%.3f" (p.mean_latency *. 1e3);
              Table.fcell p.v_mean;
              Table.fcell p.v_p10;
              Table.fcell p.v_p25;
              Table.fcell p.v_p50;
              Table.fcell p.v_p75;
              Table.fcell p.v_p90;
              Printf.sprintf "[%.3f, %.3f]" p.wilson.Stats.Confidence.lo
                p.wilson.Stats.Confidence.hi;
            ]
      | None ->
          Table.add_row ~status:(Sweep.row_status c) table
            (string_of_int flows :: List.init 13 (fun _ -> "-")))
    flow_counts cells;
  Table.print table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "fleet.csv")
  | None -> ());
  Sweep.ok_values cells
