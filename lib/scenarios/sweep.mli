(** Checkpointed, supervised sweep execution — the substrate every figure
    sweep routes through.

    A sweep is a list of independent points, each a pure function of its
    index and the root seed.  {!mapi} fans the points out on [Exec.Pool]
    under [Exec.Supervise] containment and returns one tri-state
    {!cell} per point:

    - with a checkpoint directory set ({!set_checkpoint_dir}, the CLI's
      [--checkpoint]), every completed point is journaled to a
      [ta-ckpt/1] file and a rerun replays journaled points instead of
      recomputing them — a SIGKILLed sweep resumes where it stopped and
      its tables are byte-identical to an uninterrupted run, at any
      [--jobs];
    - a point that raises a declared deterministic failure
      ([Starvation.Tap_starved], [Sim.Event_budget_exceeded]) becomes a
      [Point_failed] cell with no retry;
    - any other exception is retried up to {!retries} times with a fresh
      attempt-derived seed ({!attempt_seed}); exhausted points become
      [Point_quarantined];
    - failed/quarantined cells land in a process-wide registry that
      drives the partial-results exit code (4) and the [ta-fail/1]
      manifest.

    In strict mode ({!set_strict}) containment is disabled: the first
    failing point escapes with its original exception (preserving the
    historical exit-3 starvation contract). *)

type status = Exec.Journal.status =
  | Point_ok
  | Point_failed
  | Point_quarantined

type 'a cell = {
  index : int;  (** position in the input list *)
  status : status;
  attempts : int;  (** attempts consumed (1 for a clean first run) *)
  resumed : bool;  (** replayed from the checkpoint journal *)
  value : 'a option;  (** [Some] iff [status = Point_ok] *)
  error : string;  (** deterministic diagnostic; [""] for ok *)
}

type failure = {
  sweep : string;
  index : int;
  f_status : status;
  attempts : int;
  error : string;
}

exception Sweep_internal_error of string
(** Declared replacement for bare [assert false] aborts in sweep drivers,
    so supervision can classify (and retry) broken-invariant paths. *)

(** {1 Process-wide execution knobs} (set from the CLI before sweeps run) *)

val set_checkpoint_dir : string option -> unit
val checkpoint_dir : unit -> string option

val set_retries : int -> unit
(** Re-attempts after the first try (default 2).  Raises
    [Invalid_argument] when negative. *)

val retries : unit -> int

val set_strict : bool -> unit
(** Disable containment: failures escape as raw exceptions. *)

val strict : unit -> bool

val set_event_budget : int option -> unit
(** Per-point simulator event budget (watchdog against runaway points);
    [None] (default) disarms it.  Raises [Invalid_argument] on a
    non-positive budget. *)

val event_budget : unit -> int option

type injection = { inj_sweep : string; inj_index : int; first_ok : int option }
(** Fault-injection spec: point [inj_index] of sweep [inj_sweep] raises
    [Exec.Supervise.Injected_failure] on attempts [< k] when
    [first_ok = Some k], on every attempt when [None]. *)

val parse_injection : string -> (injection list, string) result
(** Parse a comma-separated [SWEEP:INDEX] / [SWEEP:INDEX\@ATTEMPTS] spec
    (the CLI's [--inject-fail]). *)

val set_injections : injection list -> unit
val clear_injections : unit -> unit

(** {1 Running a sweep} *)

val digest_of_string : string -> string
(** MD5 hex of a sweep's full configuration description — the journal
    key.  Callers must fold {e every} input that determines point values
    (scale, seed, point list, sample sizes...) into the string. *)

val attempt_seed : seed:int -> attempt:int -> int
(** [Exec.Supervise.attempt_seed]: identity at attempt 0, fresh
    [Rng.mix_seed] stream per retry. *)

val mapi :
  sweep:string ->
  digest:string ->
  seed:int ->
  ?prepare:(unit -> unit) ->
  task:(attempt:int -> int -> 'a -> 'b) ->
  'a list ->
  'b cell list
(** Run one point per list element, in input order.  [sweep] names the
    journal file and the failure-registry entries; [digest] keys the
    journal (see {!digest_of_string}; supervision settings are folded in
    automatically); [seed] is recorded in journal entries.  [prepare]
    (shared setup such as a one-off trace collection) runs once, and only
    if at least one point is missing from the journal; if it fails, all
    missing points are marked failed with its diagnostic.  [task] receives
    the attempt number (0 on the first try — derive retry seeds with
    {!attempt_seed}), the point index and the element.

    Raises {!Sweep_internal_error} if the journal layer itself
    misbehaves (rows lost or duplicated across a checkpoint cycle) —
    never for ordinary task failures, which are classified into
    {!failures} cells instead. *)

val ok_values : 'b cell list -> 'b list
(** Values of the [Point_ok] cells, in point order. *)

(** {1 Partial-result reporting} *)

val failures : unit -> failure list
(** Every failed/quarantined point registered so far, sorted by
    (sweep, point). *)

val partial : unit -> bool
(** True once any sweep registered a failure. *)

val clear_failures : unit -> unit

val manifest_schema : string
(** ["ta-fail/1"]. *)

val manifest_json : unit -> string
(** The machine-readable failure manifest. *)

val write_manifest : path:string -> unit
(** Write {!manifest_json} to [path] (mkdir -p on its directory). *)

val pp_failures : Format.formatter -> unit
(** One human-readable line per failure. *)

val row_status : 'a cell -> Table.row_status
(** Map a cell's outcome onto the table-row annotation. *)
