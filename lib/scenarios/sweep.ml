(* The checkpointed, supervised sweep runner every figure routes through.

   A sweep is a list of independent points, each a pure function of its
   index and the root seed.  [mapi] fans the missing points out on
   [Exec.Pool] under [Exec.Supervise] containment, journals every
   completed point to the [ta-ckpt/1] checkpoint (when --checkpoint is
   set), and returns one tri-state cell per point.  Because failures are
   deterministic and terminal statuses replay as-is, a killed-and-resumed
   sweep produces byte-identical tables to an uninterrupted one, at any
   --jobs value. *)

type status = Exec.Journal.status =
  | Point_ok
  | Point_failed
  | Point_quarantined

type 'a cell = {
  index : int;
  status : status;
  attempts : int;
  resumed : bool;
  value : 'a option;
  error : string;
}

type failure = {
  sweep : string;
  index : int;
  f_status : status;
  attempts : int;
  error : string;
}

(* --- process-wide knobs, set once by the CLI before any sweep runs ---
   Atomics, not refs: sanctioned shared state under talint R001. *)

let checkpoint_cfg : string option Atomic.t = Atomic.make None
let retries_cfg = Atomic.make 2
let strict_cfg = Atomic.make false
let budget_cfg : int option Atomic.t = Atomic.make None

type injection = { inj_sweep : string; inj_index : int; first_ok : int option }
(* [first_ok = Some k]: attempts 0..k-1 fail, attempt k succeeds (retry
   path); [None]: every attempt fails (quarantine path). *)

let injections_cfg : injection list Atomic.t = Atomic.make []
let failures_reg : failure list Atomic.t = Atomic.make []

let set_checkpoint_dir dir = Atomic.set checkpoint_cfg dir
let checkpoint_dir () = Atomic.get checkpoint_cfg

let set_retries n =
  if n < 0 then invalid_arg "Sweep.set_retries: retries < 0";
  Atomic.set retries_cfg n

let retries () = Atomic.get retries_cfg
let set_strict b = Atomic.set strict_cfg b
let strict () = Atomic.get strict_cfg

let set_event_budget b =
  (match b with
  | Some n when n < 1 -> invalid_arg "Sweep.set_event_budget: budget < 1"
  | _ -> ());
  Atomic.set budget_cfg b

let event_budget () = Atomic.get budget_cfg

let parse_injection spec =
  let parse_one tok =
    let fail () =
      Error
        (Printf.sprintf
           "bad injection %S (expected SWEEP:INDEX or SWEEP:INDEX@ATTEMPTS)"
           tok)
    in
    match String.split_on_char ':' tok with
    | [ sweep; rest ] when sweep <> "" -> (
        match String.split_on_char '@' rest with
        | [ idx ] -> (
            match int_of_string_opt idx with
            | Some i when i >= 0 ->
                Ok { inj_sweep = sweep; inj_index = i; first_ok = None }
            | _ -> fail ())
        | [ idx; k ] -> (
            match (int_of_string_opt idx, int_of_string_opt k) with
            | Some i, Some k when i >= 0 && k >= 1 ->
                Ok { inj_sweep = sweep; inj_index = i; first_ok = Some k }
            | _ -> fail ())
        | _ -> fail ())
    | _ -> fail ()
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match parse_one tok with
        | Ok inj -> go (inj :: acc) rest
        | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' spec |> List.filter (fun s -> s <> ""))

let set_injections injs = Atomic.set injections_cfg injs
let clear_injections () = Atomic.set injections_cfg []

let should_inject ~sweep ~index ~attempt =
  List.exists
    (fun { inj_sweep; inj_index; first_ok } ->
      inj_sweep = sweep && inj_index = index
      && match first_ok with None -> true | Some k -> attempt < k)
    (Atomic.get injections_cfg)

(* --- failure registry (drives exit 4 + the ta-fail/1 manifest) --- *)

let rec register f =
  let old = Atomic.get failures_reg in
  if not (Atomic.compare_and_set failures_reg old (f :: old)) then register f

let failures () =
  List.sort
    (fun a b ->
      match compare a.sweep b.sweep with 0 -> compare a.index b.index | c -> c)
    (Atomic.get failures_reg)

let partial () = Atomic.get failures_reg <> []
let clear_failures () = Atomic.set failures_reg []

let manifest_schema = "ta-fail/1"

let manifest_json () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": \"%s\",\n  \"failures\": [" manifest_schema);
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"sweep\": \"%s\", \"point\": %d, \"status\": \"%s\", \
            \"attempts\": %d, \"error\": \"%s\"}"
           (Obs.Json.escape f.sweep) f.index
           (Exec.Journal.status_to_string f.f_status)
           f.attempts (Obs.Json.escape f.error)))
    (failures ());
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let write_manifest ~path =
  mkdir_p (Filename.dirname path);
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (manifest_json ()))

let pp_failures fmt =
  List.iter
    (fun f ->
      Format.fprintf fmt "  %s point %d: %s after %d attempt%s — %s@."
        f.sweep f.index
        (Exec.Journal.status_to_string f.f_status)
        f.attempts
        (if f.attempts = 1 then "" else "s")
        f.error)
    (failures ())

(* --- supervision policy --- *)

exception Sweep_internal_error of string
(* Declared replacement for the bare [assert false] aborts that used to
   live in sweep drivers: supervision classifies it (retryable — it marks
   a broken invariant, not a diagnosed simulation outcome). *)

let classify = function
  | Starvation.Tap_starved _ -> `Fail_fast
  | Desim.Sim.Event_budget_exceeded _ -> `Fail_fast
  | _ -> `Retry

let describe = function
  | Starvation.Tap_starved { scenario; target; observed; sim_time; _ } ->
      (* Deliberately omits the metrics snapshot: the description is
         journaled and must be byte-stable across resumes and --jobs. *)
      Printf.sprintf "tap starved in %s (%d of %d after %.3f sim-s)" scenario
        observed target sim_time
  | Desim.Sim.Event_budget_exceeded { max_events } ->
      Printf.sprintf "event budget exceeded (> %d events)" max_events
  | Sweep_internal_error msg -> "internal error: " ^ msg
  | e -> Printexc.to_string e

let attempt_seed = Exec.Supervise.attempt_seed

let digest_of_string s = Digest.to_hex (Digest.string s)

let m_resumed = Obs.Metrics.counter "exec.task.resumed"

(* --- the runner --- *)

let cell_of_entry (e : Exec.Journal.entry) =
  match e.status with
  | Point_ok -> (
      match Exec.Journal.decode e.payload with
      | Some v ->
          Some
            {
              index = e.index;
              status = Point_ok;
              attempts = e.attempts;
              resumed = true;
              value = Some v;
              error = "";
            }
      | None -> None (* undecodable payload: recompute the point *))
  | (Point_failed | Point_quarantined) as status ->
      Some
        {
          index = e.index;
          status;
          attempts = e.attempts;
          resumed = true;
          value = None;
          error = e.error;
        }

let entry_of_cell ~seed (c : _ cell) : Exec.Journal.entry =
  {
    index = c.index;
    seed;
    attempts = c.attempts;
    status = c.status;
    payload =
      (match (c.status, c.value) with
      | Point_ok, Some v -> Exec.Journal.encode v
      | _ -> "");
    error = c.error;
  }

let mapi ~sweep ~digest ~seed ?prepare ~task xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let retries = retries () in
  let strict = strict () in
  let budget = event_budget () in
  let journal =
    match checkpoint_dir () with
    | None -> None
    | Some dir ->
        (* Retries and the event budget shape which points fail and how
           many attempts they record, so they are part of the journal
           key: resuming under different supervision starts fresh. *)
        let digest =
          digest_of_string
            (Printf.sprintf "v1|%s|seed=%d|retries=%d|budget=%s" digest seed
               retries
               (match budget with None -> "none" | Some b -> string_of_int b))
        in
        Some (Exec.Journal.open_ ~dir ~sweep ~digest)
  in
  let cells = Array.make n None in
  (match journal with
  | Some j ->
      for i = 0 to n - 1 do
        match Exec.Journal.find j i with
        | Some e -> (
            match cell_of_entry e with
            | Some c ->
                cells.(i) <- Some c;
                Obs.Metrics.incr m_resumed
            | None -> ())
        | None -> ()
      done
  | None -> ());
  let missing =
    List.filter (fun i -> cells.(i) = None) (List.init n Fun.id)
  in
  let mark_failed_cell i status attempts error =
    let c =
      { index = i; status; attempts; resumed = false; value = None; error }
    in
    cells.(i) <- Some c;
    Option.iter (fun j -> Exec.Journal.append j (entry_of_cell ~seed c)) journal
  in
  (* Close the journal even when strict mode lets an exception escape:
     everything appended before the raise is already flushed, so the next
     --checkpoint invocation resumes from it. *)
  Fun.protect
    ~finally:(fun () -> Option.iter Exec.Journal.close journal)
  @@ fun () ->
  let prepared =
    (* Shared setup (e.g. fig4b's one-off trace collection) runs only when
       some point actually needs computing — a fully journaled sweep
       resumes without simulating anything. *)
    match prepare with
    | None -> true
    | Some _ when missing = [] -> true
    | Some f ->
        if strict then begin
          f ();
          true
        end
        else begin
          match
            Exec.Supervise.run ~retries ~classify ~describe
              ~task:(fun ~attempt:_ -> f ())
              ()
          with
          | Exec.Supervise.Completed _ -> true
          | Exec.Supervise.Failed { attempts; error } ->
              List.iter
                (fun i ->
                  mark_failed_cell i Point_failed attempts
                    ("prepare: " ^ error))
                missing;
              false
          | Exec.Supervise.Quarantined { attempts; error } ->
              List.iter
                (fun i ->
                  mark_failed_cell i Point_quarantined attempts
                    ("prepare: " ^ error))
                missing;
              false
        end
  in
  if prepared && missing <> [] then begin
    let compute i =
      let x = xs.(i) in
      if strict then begin
        (* Strict mode: no containment — a failing point escapes with its
           original exception (preserving the exit-3 starvation path).
           Points journaled before the raise still count for resume. *)
        let v =
          Exec.Supervise.with_event_budget budget (fun () ->
              task ~attempt:0 i x)
        in
        {
          index = i;
          status = Point_ok;
          attempts = 1;
          resumed = false;
          value = Some v;
          error = "";
        }
      end
      else
        match
          Exec.Supervise.run ~retries ~classify ~describe
            ~task:(fun ~attempt ->
              if should_inject ~sweep ~index:i ~attempt then
                raise
                  (Exec.Supervise.Injected_failure
                     { sweep; index = i; attempt });
              Exec.Supervise.with_event_budget budget (fun () ->
                  task ~attempt i x))
            ()
        with
        | Exec.Supervise.Completed { value; attempts } ->
            {
              index = i;
              status = Point_ok;
              attempts;
              resumed = false;
              value = Some value;
              error = "";
            }
        | Exec.Supervise.Failed { attempts; error } ->
            {
              index = i;
              status = Point_failed;
              attempts;
              resumed = false;
              value = None;
              error;
            }
        | Exec.Supervise.Quarantined { attempts; error } ->
            {
              index = i;
              status = Point_quarantined;
              attempts;
              resumed = false;
              value = None;
              error;
            }
    in
    let computed =
      Exec.Pool.parallel_map
        (fun i ->
          let c = compute i in
          (* Journal from the worker, as soon as the point completes: a
             kill one point later still finds this one on resume. *)
          Option.iter
            (fun j -> Exec.Journal.append j (entry_of_cell ~seed c))
            journal;
          c)
        missing
    in
    List.iter (fun (c : _ cell) -> cells.(c.index) <- Some c) computed
  end;
  let out =
    Array.to_list cells
    |> List.map (function
         | Some c -> c
         | None -> raise (Sweep_internal_error "Sweep.mapi: unfilled cell"))
  in
  (* Register failures in point order (post-barrier, single domain) so the
     manifest and exit code are deterministic. *)
  List.iter
    (fun (c : _ cell) ->
      if c.status <> Point_ok then
        register
          {
            sweep;
            index = c.index;
            f_status = c.status;
            attempts = c.attempts;
            error = c.error;
          })
    out;
  out

let ok_values cells =
  List.filter_map (fun (c : _ cell) -> c.value) cells

let row_status (c : _ cell) =
  match c.status with
  | Point_ok -> Table.Row_ok
  | Point_failed -> Table.Row_failed c.error
  | Point_quarantined -> Table.Row_quarantined c.error
