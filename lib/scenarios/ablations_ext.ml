let run_classifier_backends ?(scale = 1.0) ?(seed = 52_001) fmt =
  let n = 1000 in
  let windows = Stdlib.max 10 (int_of_float (40.0 *. scale)) in
  (* One shared trace collection (skipped when every backend replays from
     the journal); every backend then scores the same immutable traces
     independently.  Each point payload carries [r_hat] so the table
     title survives a full replay. *)
  let traces_ref = ref None in
  let prepare () =
    traces_ref :=
      Some
        (Workload.collect_pair ~base:{ System.default_config with System.seed }
           ~piats:(n * windows))
  in
  let get_traces () =
    match !traces_ref with
    | Some t -> t
    | None ->
        raise
          (Sweep.Sweep_internal_error
             "classifier-backends: prepare did not collect traces")
  in
  let single backend feature =
    let classes = Workload.classes (get_traces ()) in
    let named_features =
      Array.map
        (fun (name, trace) ->
          ( name,
            Adversary.Dataset.features_of_trace feature
              ~reference:Calibration.timer_mean ~sample_size:n trace ))
        classes
    in
    (Adversary.Detection.estimate_on_features ~backend ~feature ~sample_size:n
       ~named_features ())
      .Adversary.Detection.detection_rate
  in
  let entropy =
    Adversary.Feature.Sample_entropy
      { bin_width = Adversary.Feature.default_entropy_bin_width }
  in
  let spectral kind =
    (Adversary.Spectral.estimate ~kind ~sample_size:n
       ~classes:(Workload.classes (get_traces ())) ())
      .Adversary.Detection.detection_rate
  in
  let backends =
    [
      ("kde/variance", fun () -> single `Kde Adversary.Feature.Sample_variance);
      ("kde/entropy", fun () -> single `Kde entropy);
      ( "gaussian/variance",
        fun () -> single `Gaussian Adversary.Feature.Sample_variance );
      ("gaussian/entropy", fun () -> single `Gaussian entropy);
      ( "joint kde (var+entropy)",
        fun () ->
          Adversary.Joint.estimate
            ~features:[ Adversary.Feature.Sample_variance; entropy ]
            ~reference:Calibration.timer_mean ~sample_size:n
            ~classes:(Workload.classes (get_traces ())) () );
      ("spectral entropy", fun () -> spectral Adversary.Spectral.Spectral_entropy);
      ("spectral power", fun () -> spectral Adversary.Spectral.Spectral_power);
    ]
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.backends|seed=%d|n=%d|w=%d|points=%s" seed n
         windows
         (String.concat "," (List.map fst backends)))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.backends" ~digest ~seed ~prepare
      ~task:(fun ~attempt:_ _i (name, score) ->
        (name, score (), (get_traces ()).Workload.r_hat))
      backends
  in
  let r_hat =
    match Sweep.ok_values cells with (_, _, r) :: _ -> r | [] -> Float.nan
  in
  let rows = List.map (fun (name, v, _) -> (name, v)) (Sweep.ok_values cells) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: adversary backends on the same CIT traces (n=%d, \
            r_hat=%.3f)"
           n r_hat)
      ~columns:[ "adversary"; "detection rate" ]
  in
  List.iter
    (fun (name, v) -> Table.add_row table [ name; Printf.sprintf "%.3f" v ])
    rows;
  List.iter2
    (fun (name, _) (c : _ Sweep.cell) ->
      if c.Sweep.status <> Sweep.Point_ok then
        Table.add_row ~status:(Sweep.row_status c) table [ name; "-" ])
    backends cells;
  Table.print table fmt;
  rows

let run_mix_vs_padding ?(scale = 1.0) ?(seed = 52_002) fmt =
  let n = 200 in
  let windows = Stdlib.max 10 (int_of_float (30.0 *. scale)) in
  let piats = n * windows in
  let schemes =
    [
      ("CIT", `Cit);
      ("VIT(20us)", `Vit 20e-6);
      ("mix(K=8,500ms)", `Mix);
    ]
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.mix|seed=%d|n=%d|piats=%d|points=%s" seed n
         piats
         (String.concat "," (List.map fst schemes)))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.mix" ~digest ~seed
      ~task:(fun ~attempt i (name, scheme) ->
        let root = Sweep.attempt_seed ~seed:(seed + (100 * i)) ~attempt in
        let run rate seed =
          let cfg =
            {
              System.default_config with
              System.seed = seed;
              payload_rate_pps = rate;
            }
          in
          match scheme with
          | `Cit -> System.run cfg ~piats
          | `Vit sigma ->
              System.run
                {
                  cfg with
                  System.timer =
                    Padding.Timer.Normal
                      { mean = Calibration.timer_mean; sigma };
                }
                ~piats
          | `Mix -> System.run_mix cfg ~piats
        in
        let low, high =
          Exec.Pool.both
            (fun () -> run Calibration.rate_low_pps root)
            (fun () -> run Calibration.rate_high_pps (root + 7919))
        in
        let classes =
          [|
            (Calibration.label_low, low.System.piats);
            (Calibration.label_high, high.System.piats);
          |]
        in
        let results =
          Adversary.Detection.estimate_features
            ~features:Adversary.Feature.standard_set
            ~reference:Calibration.timer_mean ~sample_size:n ~classes ()
        in
        let worst =
          List.fold_left
            (fun acc (r : Adversary.Detection.result) ->
              Float.max acc r.Adversary.Detection.detection_rate)
            0.5 results
        in
        (name, worst, 0.5 *. (low.System.overhead +. high.System.overhead)))
      schemes
  in
  let rows = Sweep.ok_values cells in
  let table =
    Table.create
      ~title:"Ablation: mixing vs padding as rate-hiding (n=200)"
      ~columns:[ "scheme"; "worst-feature detection"; "dummy overhead" ]
  in
  List.iter
    (fun (name, worst, overhead) ->
      Table.add_row table
        [ name; Printf.sprintf "%.3f" worst; Printf.sprintf "%.3f" overhead ])
    rows;
  List.iter2
    (fun (name, _) (c : _ Sweep.cell) ->
      if c.Sweep.status <> Sweep.Point_ok then
        Table.add_row ~status:(Sweep.row_status c) table [ name; "-"; "-" ])
    schemes cells;
  Table.print table fmt;
  rows

let run_bounds_table fmt =
  let table =
    Table.create
      ~title:
        "Analytics: Theorem 2 vs exact gamma law vs Bhattacharyya bracket \
         (sample variance)"
      ~columns:
        [ "r"; "n"; "theorem 2"; "exact"; "bracket lo"; "bracket hi" ]
  in
  List.iter
    (fun r ->
      List.iter
        (fun n ->
          let theorem = Analytical.Theorems.v_variance ~r ~n in
          let exact =
            Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0
              ~sigma2_h:r ~n
          in
          let bracket =
            Analytical.Bounds.sample_variance_bracket ~sigma2_l:1.0 ~sigma2_h:r
              ~n
          in
          Table.add_row table
            [
              Printf.sprintf "%.2f" r;
              string_of_int n;
              Printf.sprintf "%.4f" theorem;
              Printf.sprintf "%.4f" exact;
              Printf.sprintf "%.4f" bracket.Analytical.Bounds.lower;
              Printf.sprintf "%.4f" bracket.Analytical.Bounds.upper;
            ])
        [ 30; 100; 300; 1000 ])
    [ 1.2; 1.5; 2.0; 3.0 ];
  Table.print table fmt

let run_roc ?(scale = 1.0) ?(seed = 52_005) fmt =
  let windows = Stdlib.max 20 (int_of_float (60.0 *. scale)) in
  let max_n = 400 in
  let traces =
    Workload.collect_pair ~base:{ System.default_config with System.seed }
      ~piats:(max_n * windows)
  in
  let classes = Workload.classes traces in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun feature ->
            let features_of (_, trace) =
              Adversary.Dataset.features_of_trace feature
                ~reference:Calibration.timer_mean ~sample_size:n trace
            in
            let negatives = features_of classes.(0) in
            let positives = features_of classes.(1) in
            let auc = Adversary.Roc.auc ~negatives ~positives in
            let _, best = Adversary.Roc.best_accuracy ~negatives ~positives in
            (n, Adversary.Feature.name feature, auc, best))
          Adversary.Feature.standard_set)
      [ 50; 400 ]
  in
  let table =
    Table.create
      ~title:"Ablation: ROC view of the CIT leak (AUC is threshold-free)"
      ~columns:[ "n"; "feature"; "AUC"; "best accuracy" ]
  in
  List.iter
    (fun (n, name, auc, best) ->
      Table.add_row table
        [
          string_of_int n; name;
          Printf.sprintf "%.3f" auc;
          Printf.sprintf "%.3f" best;
        ])
    rows;
  Table.print table fmt;
  rows

let run_size_padding ?(seed = 52_004) fmt =
  let packets = 4_000 in
  (* Two application mixes with the same Poisson timing: "interactive"
     (small, narrow) vs "bulk" (bimodal with MTU-sized segments). *)
  let interactive rng = 80 + Prng.Rng.int rng ~bound:120 in
  let bulk rng =
    if Prng.Sampler.bernoulli rng ~p:0.5 then 1460
    else 200 + Prng.Rng.int rng ~bound:100
  in
  let capture ~size_of ~padded ~seed =
    let sim = Desim.Sim.create () in
    let rng = Prng.Rng.create ~seed in
    let tap = Netsim.Tap.create sim ~dest:(fun _ -> ()) () in
    let entry =
      if padded then
        Padding.Size_padding.pad_port ~target:1500 ~dest:(Netsim.Tap.port tap)
      else Netsim.Tap.port tap
    in
    let src =
      Netsim.Traffic_gen.poisson_sized sim ~rng:(Prng.Rng.split rng)
        ~rate_pps:100.0 ~size_of ~kind:Netsim.Packet.Payload ~dest:entry ()
    in
    Desim.Sim.run_until sim ~time:(float_of_int packets /. 100.0 *. 1.1);
    Netsim.Traffic_gen.stop src;
    Netsim.Tap.sizes tap
  in
  let rows =
    List.concat_map
      (fun padded ->
        let label = if padded then "padded to 1500B" else "unpadded sizes" in
        (* The two application mixes have disjoint seeds — capture both
           concurrently. *)
        let interactive_trace, bulk_trace =
          Exec.Pool.both
            (fun () -> capture ~size_of:interactive ~padded ~seed)
            (fun () -> capture ~size_of:bulk ~padded ~seed:(seed + 1))
        in
        let classes =
          [| ("interactive", interactive_trace); ("bulk", bulk_trace) |]
        in
        List.map
          (fun kind ->
            let res =
              Adversary.Sizes.estimate ~kind ~window:50 ~classes ()
            in
            ( label,
              Adversary.Sizes.name kind,
              res.Adversary.Detection.detection_rate ))
          [ Adversary.Sizes.Mean_size; Adversary.Sizes.Size_entropy ])
      [ false; true ]
  in
  let table =
    Table.create
      ~title:
        "Ablation: the packet-size channel, with and without size padding \
         (window = 50 packets)"
      ~columns:[ "configuration"; "feature"; "detection rate" ]
  in
  List.iter
    (fun (config, feature, v) ->
      Table.add_row table [ config; feature; Printf.sprintf "%.3f" v ])
    rows;
  Table.print table fmt;
  rows

let run_qos_table ?(seed = 52_003) fmt =
  let payload_rate = Calibration.rate_high_pps in
  let timer_rates = [ 50.0; 80.0; 100.0; 200.0; 400.0 ] in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.qos|seed=%d|pps=%h|points=%s" seed payload_rate
         (String.concat "," (List.map (Printf.sprintf "%h") timer_rates)))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.qos" ~digest ~seed
      ~task:(fun ~attempt i timer_rate ->
        let timer_mean = 1.0 /. timer_rate in
        let analytic =
          Padding.Qos.mean_delay ~payload_rate_pps:payload_rate ~timer_mean
        in
        let res =
          System.run
            {
              System.default_config with
              System.seed = Sweep.attempt_seed ~seed:(seed + i) ~attempt;
              payload_rate_pps = payload_rate;
              timer = Padding.Timer.Constant timer_mean;
            }
            ~piats:20_000
        in
        (timer_rate, analytic, res.System.mean_payload_latency))
      timer_rates
  in
  let rows = Sweep.ok_values cells in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "QoS: payload delay vs timer rate (Poisson payload %.0f pps), \
            analytic M/D/1 vs simulation"
           payload_rate)
      ~columns:
        [ "timer (pps)"; "util"; "analytic delay (ms)"; "simulated (ms)";
          "overhead" ]
  in
  List.iter
    (fun (rate, analytic, simulated) ->
      Table.add_row table
        [
          Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.2f"
            (Padding.Qos.utilization ~payload_rate_pps:payload_rate
               ~timer_mean:(1.0 /. rate));
          Printf.sprintf "%.2f" (analytic *. 1e3);
          Printf.sprintf "%.2f" (simulated *. 1e3);
          Printf.sprintf "%.2f"
            (Padding.Qos.overhead ~payload_rate_pps:payload_rate
               ~timer_mean:(1.0 /. rate));
        ])
    rows;
  List.iter2
    (fun rate (c : _ Sweep.cell) ->
      if c.Sweep.status <> Sweep.Point_ok then
        Table.add_row ~status:(Sweep.row_status c) table
          [ Printf.sprintf "%.0f" rate; "-"; "-"; "-"; "-" ])
    timer_rates cells;
  Table.print table fmt;
  rows
