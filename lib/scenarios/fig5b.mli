(** Figure 5(b): theoretical sample size needed for a 99% detection rate
    as a function of the VIT timer σ_T.

    The paper's headline: at σ_T = 1 ms the adversary needs more than 10¹¹
    PIATs — virtually impossible to collect while the payload holds one
    rate.  Pure closed-form (Theorems 2 and 3) evaluated at the variance
    ratio implied by the calibrated gateway jitter. *)

type point = {
  sigma_t : float;
  r : float;
  n_variance : float;   (** samples needed using sample variance *)
  n_entropy : float;
}

type t = {
  target : float;  (** the detection-rate target, 0.99 *)
  calibration : Calibration.gateway_sigmas;
  points : point list;
}

val default_sigma_ts : float list
(** 1 µs … 1 ms, log-spaced. *)

val run :
  ?seed:int ->
  ?target:float ->
  ?sigma_ts:float list ->
  ?calibration:Calibration.gateway_sigmas ->
  ?csv_dir:string ->
  Format.formatter ->
  t
(** [calibration] defaults to a fresh measurement run (pass one in to
    reuse across figures) — that run simulates, so it raises
    [Starvation.Tap_starved] / [Desim.Sim.Event_budget_exceeded] as
    [System.run] does. *)
