(** Assembly and execution of one complete padded system: payload source →
    sender gateway → unprotected hop chain (with adversary tap) → receiver
    gateway.  One [run] simulates one payload-rate class and returns the
    adversary's PIAT trace plus the defender-side accounting. *)

type payload_model =
  | Poisson_payload  (** memoryless payload arrivals (default) *)
  | Cbr_payload      (** perfectly periodic payload *)

type config = {
  seed : int;
  timer : Padding.Timer.law;
  jitter : Padding.Jitter.t;
  payload_rate_pps : float;
  payload_model : payload_model;
  packet_size : int;
  hops : Netsim.Topology.hop_spec array;
  tap_position : int;
  warmup_piats : int;  (** discarded from the front of the trace *)
}

val default_config : config
(** CIT 10 ms, mechanistic jitter, 10 pps Poisson payload, no hops, tap at
    the gateway output, 200-PIAT warm-up, seed 42. *)

type result = {
  piats : float array;          (** the adversary's sample material *)
  timestamps : float array;     (** absolute tap arrival times (post warmup) *)
  overhead : float;             (** dummy fraction of emitted packets *)
  payload_offered : int;        (** payload packets the source produced *)
  payload_delivered : int;      (** payload packets through the receiver *)
  payload_dropped_gw : int;     (** payload lost to gateway queue overflow *)
  mean_payload_latency : float;
  sim_time : float;             (** simulated seconds consumed *)
}

val arm_event_budget : Desim.Sim.t -> unit
(** Install the per-task event budget published by the nearest enclosing
    [Exec.Supervise.with_event_budget] (if any) on a simulator — the hook
    through which {!Sweep}'s watchdog reaches every [run*] entry point,
    including {!Degradation}'s fault-injected driver.  No-op when no
    budget is installed. *)

val run : ?fresh_arena:bool -> config -> piats:int -> result
(** Simulate until the tap has recorded [piats] inter-arrival times beyond
    the warm-up, then stop.  Raises [Desim.Sim.Event_budget_exceeded] if
    a supervising sweep armed an event budget and the run overran it, and
    [Starvation.Tap_starved] if the tap stops making progress before the
    budget is met.  Deterministic in [config.seed].
    [piats >= 1].  By default the run recycles the calling domain's
    {!Arena} (simulator, tap vectors, gateway buffers) — observably
    identical to a fresh simulator but without re-growing storage on every
    run of a sweep; [fresh_arena:true] forces brand-new state.

    Eligible configurations (Poisson payload, cross traffic absent or
    Poisson — the no-fault common case) execute on the fused
    {!Fastpath} kernels instead of per-event dispatch.  The two paths
    are bit-identical — same RNG draws, tap timestamps, trace stream and
    metric totals — so which one ran is visible only through the
    [desim.kernel.runs] / [desim.kernel.fallbacks{reason}] counters.
    Set [TA_FORCE_EVENT_LOOP=1] or {!Fastpath.set_enabled}[ false] to
    force the event loop. *)

val run_sharded :
  ?fresh_arena:bool -> ?jobs:int -> ?shards:int -> config -> piats:int -> result
(** [run_sharded ~shards cfg ~piats] collects the same PIAT budget as
    {!run} but split across [shards] independent simulations, fanned out
    on {!Exec.Pool} and merged in shard order.  Shard [i] runs with seed
    [Prng.Rng.mix_seed cfg.seed i], so the decomposition — and therefore
    the merged result — depends only on [(cfg.seed, shards, piats)]:
    byte-identical at any [--jobs], which only changes how many shards
    run concurrently.  [shards = 1] (the default) is exactly [run].

    Merge semantics: [piats] are concatenated in shard order; payload
    counters are summed; [overhead] is weighted by per-shard [sim_time]
    and [mean_payload_latency] by per-shard [payload_delivered];
    [sim_time] sums.  Because per-shard clocks restart at zero, the
    merged [timestamps] is empty — sharded collection serves PIAT
    statistics, not absolute-time series.  Note each shard pays its own
    [warmup_piats], so prefer few large shards over many small ones.

    Raises [Invalid_argument] if [shards < 1] or [piats < shards]; like
    {!run}, raises [Starvation.Tap_starved] or
    [Desim.Sim.Event_budget_exceeded] when a shard starves or overruns
    an armed event budget. *)

val run_unpadded : ?fresh_arena:bool -> config -> packets:int -> result
(** Baseline without any gateway: the payload stream crosses the same hop
    chain in the clear ([timer]/[jitter] ignored, [piats] are payload
    inter-arrivals).  Used by the packet-counting attack example.
    Raises [Starvation.Tap_starved] / [Desim.Sim.Event_budget_exceeded]
    as {!run} does. *)

val run_mix :
  ?fresh_arena:bool ->
  ?threshold:int ->
  ?timeout:float ->
  config ->
  piats:int ->
  result
(** Same assembly but with a Chaum-style threshold {!Padding.Mix} instead
    of a timer gateway ([config.timer]/[jitter] ignored).  The batch-flush
    epochs leak the payload rate; used by the mix-vs-padding baseline.
    Raises [Starvation.Tap_starved] / [Desim.Sim.Event_budget_exceeded]
    as {!run} does. *)

val run_adaptive :
  ?fresh_arena:bool ->
  ?min_period:float ->
  ?max_period:float ->
  config ->
  piats:int ->
  result
(** Same assembly but with the Timmerman-style {!Padding.Adaptive} gateway
    instead of the fixed-rate one ([config.timer] is ignored; [jitter]
    still applies).  Periods default to 10 ms / 40 ms.
    Raises [Starvation.Tap_starved] / [Desim.Sim.Event_budget_exceeded]
    as {!run} does. *)
