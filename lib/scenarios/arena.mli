(** Per-domain reusable simulation state.

    Sweep harnesses ({!System}, the degradation and ablation drivers) run
    thousands of short simulations; allocating a simulator, tap recording
    vectors and gateway buffers for each one dominated their allocation
    profile.  An arena owns one of each per domain (via [Domain.DLS], so
    {!Exec.Pool} workers never share) and {!get} re-issues them reset, with
    already-grown storage intact.

    Reuse is observably identical to fresh allocation: {!Desim.Sim.reset}
    restores the event queue's push counter (the (time, seq) tie-break
    order), buffers are cleared by their consumers, and all randomness
    comes from caller-created RNGs — so a reused-arena run produces
    bit-identical tables to a fresh-simulator run at any [--jobs]. *)

type t = {
  sim : Desim.Sim.t;
  tap_times : Netsim.Fvec.t;
  tap_sizes : Netsim.Fvec.t;
  gw : Padding.Gateway.Buffers.t;
  kernel_gw : Padding.Kernel.t;
      (** fused-gateway scratch for the {!Fastpath} kernel *)
  mutable kernel_hops : Netsim.Linkstage.t array;
      (** per-hop fused-link scratch; grown on demand via {!kernel_hops} *)
  kernel_tap_trace : Netsim.Tracebuf.t;
      (** deferred [tap.observe] records for the kernel's inline tap *)
}

val get : fresh:bool -> t
(** [get ~fresh:false] returns the calling domain's arena, reset and ready
    to drive a run.  [get ~fresh:true] builds a brand-new arena instead
    (used by determinism tests to compare the two paths, and by callers
    that need two concurrent simulations on one domain). *)

val tap_buffers : t -> Netsim.Fvec.t * Netsim.Fvec.t
(** The [(times, sizes)] pair for {!Netsim.Topology.chain}'s
    [tap_buffers]. *)

val kernel_hops : t -> int -> Netsim.Linkstage.t array
(** [kernel_hops t n] returns the per-hop kernel scratch array grown to
    at least [n] stages, reusing already-grown stages so buffer capacity
    survives across runs of different chain lengths. *)
