type t = {
  sim : Desim.Sim.t;
  tap_times : Netsim.Fvec.t;
  tap_sizes : Netsim.Fvec.t;
  gw : Padding.Gateway.Buffers.t;
}

let fresh () =
  {
    sim = Desim.Sim.create ();
    tap_times = Netsim.Fvec.create ~capacity:1024 ();
    tap_sizes = Netsim.Fvec.create ~capacity:1024 ();
    gw = Padding.Gateway.Buffers.create ();
  }

(* One arena per domain: Exec.Pool workers never share a simulator, and a
   single-domain sweep reuses the same arena run after run.  The key's
   initializer runs lazily on first use in each domain. *)
let key = Domain.DLS.new_key fresh

let tap_buffers t = (t.tap_times, t.tap_sizes)

let get ~fresh:want_fresh =
  let t = if want_fresh then fresh () else Domain.DLS.get key in
  (* Reset up front — not at run end — so state left by an aborted or
     starved run can never leak into the next one.  [Sim.reset] restores
     the event queue's push counter, making a reused arena's (time, seq)
     schedule bit-identical to a fresh simulator's. *)
  Desim.Sim.reset t.sim;
  t
