type t = {
  sim : Desim.Sim.t;
  tap_times : Netsim.Fvec.t;
  tap_sizes : Netsim.Fvec.t;
  gw : Padding.Gateway.Buffers.t;
  kernel_gw : Padding.Kernel.t;
  mutable kernel_hops : Netsim.Linkstage.t array;
  kernel_tap_trace : Netsim.Tracebuf.t;
}

let fresh () =
  {
    sim = Desim.Sim.create ();
    tap_times = Netsim.Fvec.create ~capacity:1024 ();
    tap_sizes = Netsim.Fvec.create ~capacity:1024 ();
    gw = Padding.Gateway.Buffers.create ();
    kernel_gw = Padding.Kernel.create ();
    kernel_hops = [||];
    kernel_tap_trace = Netsim.Tracebuf.create ();
  }

(* One arena per domain: Exec.Pool workers never share a simulator, and a
   single-domain sweep reuses the same arena run after run.  The key's
   initializer runs lazily on first use in each domain. *)
let key = Domain.DLS.new_key fresh

let tap_buffers t = (t.tap_times, t.tap_sizes)

(* Grow (never shrink) the per-hop kernel scratch array, keeping the
   already-grown stages so their ring/buffer capacity survives across
   runs of different chain lengths. *)
let kernel_hops t n =
  let len = Array.length t.kernel_hops in
  if len < n then
    t.kernel_hops <-
      Array.init n (fun i ->
          if i < len then t.kernel_hops.(i) else Netsim.Linkstage.create ());
  t.kernel_hops

let get ~fresh:want_fresh =
  let t = if want_fresh then fresh () else Domain.DLS.get key in
  (* Reset up front — not at run end — so state left by an aborted or
     starved run can never leak into the next one.  [Sim.reset] restores
     the event queue's push counter, making a reused arena's (time, seq)
     schedule bit-identical to a fresh simulator's. *)
  Desim.Sim.reset t.sim;
  t
