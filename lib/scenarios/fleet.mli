(** Fleet-scale sweep: per-flow detection-rate distributions.

    Each point simulates [flows] users mux'd behind a padded gateway
    fleet (the fleet library's [Mux]) and reports the adversary's
    detection rate as a distribution across probe flows — quantiles and
    a pooled Wilson interval — rather than the single v of the
    single-flow figures.  Routed through {!Sweep.mapi}, so it inherits
    checkpoint/resume, supervision and byte-identical tables at any
    [--jobs]. *)

type load = Flat | Diurnal
(** Aggregate-load shape: flat, or the {!Diurnal.activity} curve with
    one 24 h day compressed into the mux duration. *)

val load_label : load -> string

val modulation_of_load : duration:float -> load -> (float -> float) option

val calibration_mix : Mux.rate_class array
(** Half the fleet at {!Calibration.rate_low_pps}, half at
    {!Calibration.rate_high_pps}. *)

type point = {
  flows : int;
  gateways : int;
  probes : int;  (** probes actually run (min probes flows) *)
  arrivals : int;
  active_flows : int;  (** flows that saw at least one payload packet *)
  overhead : float;
  delivered_frac : float;
  mean_latency : float;
  events_processed : int;
  vs : float array;  (** per-probe detection rates, probe order *)
  v_mean : float;
  v_p10 : float;
  v_p25 : float;
  v_p50 : float;
  v_p75 : float;
  v_p90 : float;
  successes : int;  (** pooled held-out correct count across probes *)
  trials : int;
  wilson : Stats.Confidence.interval;  (** 95% on successes/trials *)
}

val probe_flows : flows:int -> probes:int -> int array
(** Deterministic evenly-spaced probe sample of the flow-id space
    (range midpoints) — covers contiguous class ranges proportionally. *)

val evaluate :
  ?sample_size:int ->
  ?max_windows:int ->
  ?load:load ->
  ?mix:Mux.rate_class array ->
  seed:int ->
  flows:int ->
  gateways:int ->
  probes:int ->
  duration:float ->
  unit ->
  point
(** One fleet point: run the mux (gateway shards fan out on the pool,
    arena-backed), then the per-probe windowed two-class estimates at
    the calibration parameters with flow-derived seeds
    ([mix_seed (mix_seed seed 999983) flow]).  Raises [Invalid_argument]
    on out-of-range parameters (via [Mux.validate]). *)

val default_flow_counts : int list

val run :
  ?scale:float ->
  ?seed:int ->
  ?csv_dir:string ->
  ?flow_counts:int list ->
  ?gateways:int ->
  ?probes:int ->
  ?duration:float ->
  ?load:load ->
  Format.formatter ->
  point list
(** The fleet sweep table ([fleet.csv] under [csv_dir]).  Flow counts
    are scaled by [scale]; the sweep digest folds every input that
    determines point values.  Raises [Invalid_argument] on non-positive
    flow counts, gateways or probes, and [Sweep.Sweep_internal_error] if
    the sweep journal layer misbehaves. *)
