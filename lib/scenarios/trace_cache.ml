type key = System.config * int

(* [System.config] is pure (immutable) data — variants, floats, ints and
   arrays thereof, no closures — so polymorphic equality/hashing are both
   safe and exactly the sharing relation we want. *)
(* The cache is deliberately shared across Exec.Pool domains — that is
   its whole point (a worker must hit on a config another worker already
   simulated).  It is sharded by key hash so concurrent workers sweeping
   different configs do not serialize on a single lock; every access to a
   shard's state goes through that shard's mutex. *)

type shard = {
  mutex : Mutex.t;
  table : (key, System.result) Hashtbl.t;
  order : key Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
}

let shard_count = 8

let shards =
  (* talint: allow R001 — mutex-guarded sharded memo table, shared across domains by design *)
  Array.init shard_count (fun _ ->
      {
        mutex = Mutex.create ();
        table = Hashtbl.create 8;
        order = Queue.create ();
        hits = 0;
        misses = 0;
      })

let shard_of key = shards.(Hashtbl.hash key mod shard_count)

(* Global capacity knob; each shard holds its proportional share.  Atomic
   so [run] can read it without taking any lock. *)
let capacity = Atomic.make 32

let per_shard_cap () =
  let c = Atomic.get capacity in
  if c = 0 then 0 else Stdlib.max 1 ((c + shard_count - 1) / shard_count)

let trim_locked s cap =
  while Hashtbl.length s.table > cap do
    Hashtbl.remove s.table (Queue.pop s.order)
  done

let set_capacity n =
  if n < 0 then invalid_arg "Trace_cache.set_capacity: negative capacity";
  Atomic.set capacity n;
  let cap = per_shard_cap () in
  Array.iter (fun s -> Mutex.protect s.mutex (fun () -> trim_locked s cap)) shards

let clear () =
  Array.iter
    (fun s ->
      Mutex.protect s.mutex (fun () ->
          Hashtbl.reset s.table;
          Queue.clear s.order;
          s.hits <- 0;
          s.misses <- 0))
    shards

type stats = { hits : int; misses : int }

let stats () =
  Array.fold_left
    (fun acc s ->
      Mutex.protect s.mutex (fun () ->
          { hits = acc.hits + s.hits; misses = acc.misses + s.misses }))
    { hits = 0; misses = 0 }
    shards

(* Hit/miss counts can depend on worker interleaving (two workers may
   both miss a key that would hit sequentially), so like exec.* these are
   excluded from jobs-determinism comparisons. *)
let m_hits = Obs.Metrics.counter "scenarios.trace_cache.hits"
let m_misses = Obs.Metrics.counter "scenarios.trace_cache.misses"

let run cfg ~piats =
  let key = (cfg, piats) in
  let s = shard_of key in
  let cached =
    Mutex.protect s.mutex (fun () ->
        match Hashtbl.find_opt s.table key with
        | Some r ->
            s.hits <- s.hits + 1;
            Obs.Metrics.incr m_hits;
            Some r
        | None ->
            s.misses <- s.misses + 1;
            Obs.Metrics.incr m_misses;
            None)
  in
  match cached with
  | Some r -> r
  | None ->
      let r = System.run cfg ~piats in
      let cap = per_shard_cap () in
      Mutex.protect s.mutex (fun () ->
          if cap > 0 && not (Hashtbl.mem s.table key) then begin
            Hashtbl.replace s.table key r;
            Queue.push key s.order;
            trim_locked s cap
          end);
      r
