type key = System.config * int

(* [System.config] is pure (immutable) data — variants, floats, ints and
   arrays thereof, no closures — so polymorphic equality/hashing are both
   safe and exactly the sharing relation we want. *)
(* The cache is deliberately shared across Exec.Pool domains — that is
   its whole point (a worker must hit on a config another worker already
   simulated).  Every access below goes through [mutex]. *)
let table : (key, System.result) Hashtbl.t = Hashtbl.create 64 (* talint: allow R001 — mutex-guarded shared memo table *)
let order : key Queue.t = Queue.create () (* talint: allow R001 — mutex-guarded FIFO eviction order *)
let capacity = ref 32 (* talint: allow R001 — mutex-guarded knob *)
let hits = ref 0 (* talint: allow R001 — mutex-guarded tally *)
let misses = ref 0 (* talint: allow R001 — mutex-guarded tally *)
let mutex = Mutex.create ()

let set_capacity n =
  if n < 0 then invalid_arg "Trace_cache.set_capacity: negative capacity";
  Mutex.protect mutex (fun () ->
      capacity := n;
      while Hashtbl.length table > !capacity do
        Hashtbl.remove table (Queue.pop order)
      done)

let clear () =
  Mutex.protect mutex (fun () ->
      Hashtbl.reset table;
      Queue.clear order;
      hits := 0;
      misses := 0)

type stats = { hits : int; misses : int }

let stats () =
  Mutex.protect mutex (fun () -> { hits = !hits; misses = !misses })

(* Hit/miss counts can depend on worker interleaving (two workers may
   both miss a key that would hit sequentially), so like exec.* these are
   excluded from jobs-determinism comparisons. *)
let m_hits = Obs.Metrics.counter "scenarios.trace_cache.hits"
let m_misses = Obs.Metrics.counter "scenarios.trace_cache.misses"

let run cfg ~piats =
  let key = (cfg, piats) in
  let cached =
    Mutex.protect mutex (fun () ->
        match Hashtbl.find_opt table key with
        | Some r ->
            incr hits;
            Obs.Metrics.incr m_hits;
            Some r
        | None ->
            incr misses;
            Obs.Metrics.incr m_misses;
            None)
  in
  match cached with
  | Some r -> r
  | None ->
      let r = System.run cfg ~piats in
      Mutex.protect mutex (fun () ->
          if !capacity > 0 && not (Hashtbl.mem table key) then begin
            Hashtbl.replace table key r;
            Queue.push key order;
            while Hashtbl.length table > !capacity do
              Hashtbl.remove table (Queue.pop order)
            done
          end);
      r
