type kind = Campus | Wan

type point = {
  hour : float;
  utilization : float;
  r_hat : float;
  scores : Workload.scored list;
}

type t = { kind : kind; sample_size : int; points : point list }

let kind_name = function Campus -> "campus" | Wan -> "wan"

let hop ~utilization =
  Fig6.hop_for_utilization ~utilization ~burst:`Poisson

let hops_for kind ~hour =
  match kind with
  | Campus ->
      let u = Diurnal.campus_utilization ~hour in
      Array.init 4 (fun _ -> hop ~utilization:u)
  | Wan ->
      let congested = Diurnal.wan_congested_utilization ~hour in
      let light = Diurnal.wan_light_utilization ~hour in
      let congested_positions = [ 2; 4; 7; 9; 11; 13 ] in
      Array.init 15 (fun i ->
          (* Six loaded exchange/edge hops spread along the 15-router path. *)
          if List.mem i congested_positions then hop ~utilization:congested
          else hop ~utilization:light)

let default_hours = [ 0.; 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18.; 20.; 22. ]

let run ?(scale = 1.0) ?(seed = 42_006) ?(sample_size = 1000)
    ?(hours = default_hours) ?half_width ~kind ?csv_dir fmt =
  if sample_size < 2 then invalid_arg "Fig8.run: sample_size < 2";
  let windows = Stdlib.max 6 (int_of_float (16.0 *. scale)) in
  let features = Adversary.Feature.standard_set in
  let plan =
    Workload.window_plan ~sample_size ~max_windows:windows ?half_width ()
  in
  let sweep = Printf.sprintf "fig8.%s" (kind_name kind) in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "%s|seed=%d|n=%d|w=%d|stride=%d|wps=%d|minw=%d|hw=%s|points=%s"
         sweep seed sample_size windows plan.Workload.stride
         plan.Workload.windows_per_shard plan.Workload.min_windows
         (match plan.Workload.half_width with
         | None -> "-"
         | Some h -> Printf.sprintf "%h" h)
         (String.concat "," (List.map (Printf.sprintf "%h") hours)))
  in
  (* Hours are seeded by index, hence independent: fan them out. *)
  let cells =
    Sweep.mapi ~sweep ~digest ~seed
      ~task:(fun ~attempt i hour ->
        let hops = hops_for kind ~hour in
        let base =
          {
            System.default_config with
            System.seed =
              Sweep.attempt_seed ~seed:(seed + (100 * i)) ~attempt;
            hops;
            tap_position = Array.length hops;  (* front of receiver gateway *)
          }
        in
        let pair, scores = Workload.collect_windowed ~base ~plan ~features in
        let utilization =
          match kind with
          | Campus -> Diurnal.campus_utilization ~hour
          | Wan -> Diurnal.wan_congested_utilization ~hour
        in
        { hour; utilization; r_hat = pair.Workload.ratio_hat; scores })
      hours
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 8(%s): detection rate over the day (%s path, sample size %d)"
           (match kind with Campus -> "a" | Wan -> "b")
           (kind_name kind) sample_size)
      ~columns:[ "hour"; "util"; "r_hat"; "feature"; "empirical"; "95% CI"; "theory" ]
  in
  List.iter2
    (fun hour (c : _ Sweep.cell) ->
      match c.Sweep.value with
      | Some p ->
          List.iter
            (fun (s : Workload.scored) ->
              Table.add_row table
                [
                  Printf.sprintf "%02.0f:00" p.hour;
                  Printf.sprintf "%.3f" p.utilization;
                  Printf.sprintf "%.4f" p.r_hat;
                  Adversary.Feature.name s.feature;
                  Printf.sprintf "%.3f" s.empirical;
                  Workload.pp_ci s;
                  Printf.sprintf "%.3f" s.theory;
                ])
            p.scores
      | None ->
          Table.add_row ~status:(Sweep.row_status c) table
            [ Printf.sprintf "%02.0f:00" hour; "-"; "-"; "-"; "-"; "-"; "-" ])
    hours cells;
  Table.print table fmt;
  (match csv_dir with
  | Some dir ->
      Table.save_csv table
        ~path:(Filename.concat dir (Printf.sprintf "fig8_%s.csv" (kind_name kind)))
  | None -> ());
  { kind; sample_size; points = Sweep.ok_values cells }
