(** Plain-text tables and CSV output for the figure reproductions. *)

type t

type row_status =
  | Row_ok
  | Row_failed of string  (** declared deterministic failure + diagnostic *)
  | Row_quarantined of string  (** retries exhausted + diagnostic *)

val create : title:string -> columns:string list -> t

val add_row : ?status:row_status -> t -> string list -> unit
(** Add a row (default status {!Row_ok}).  Raises [Invalid_argument] if
    the row width differs from the header.  When at least one row is not
    ok, {!print} and {!to_csv} append a trailing [status] column carrying
    the per-row annotation — tables of fully successful runs render
    byte-identically to tables that never heard of statuses. *)

val has_failures : t -> bool
(** True when some row carries a non-ok status. *)

val fcell : float -> string
(** Default float formatting ("%.4g"); scientific when warranted. *)

val print : t -> Format.formatter -> unit
(** Render with column alignment, a title line, and a rule.  Also records
    [(title, digest)] in the process-global registry read by
    {!printed_digests} — the bench harness serializes that registry so
    the regression differ can bind on table content. *)

val digest : t -> string
(** Hex MD5 of the title plus the {!to_csv} rendering — one stable
    fingerprint per table; any cell, status annotation, or column change
    changes it. *)

val printed_digests : unit -> (string * string) list
(** [(title, digest)] of every table printed so far, in print order. *)

val reset_digests : unit -> unit
(** Clear the registry (tests). *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val save_csv : t -> path:string -> unit
(** Write {!to_csv} to [path], creating missing parent directories
    (mkdir -p semantics).  Failures surface as [Sys_error] with an
    actionable message naming the offending path instead of the raw
    [open_out] error. *)
