(** Plain-text tables and CSV output for the figure reproductions. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val fcell : float -> string
(** Default float formatting ("%.4g"); scientific when warranted. *)

val print : t -> Format.formatter -> unit
(** Render with column alignment, a title line, and a rule. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines). *)

val save_csv : t -> path:string -> unit
(** Write {!to_csv} to [path], creating missing parent directories
    (mkdir -p semantics).  Failures surface as [Sys_error] with an
    actionable message naming the offending path instead of the raw
    [open_out] error. *)
