(* Fused-kernel fast path for [System.run].

   Eligible runs — Poisson payload, chain topology whose cross traffic
   is absent or Poisson, no fault injectors (faulted scenarios use their
   own drivers) — execute as a staged batch pipeline instead of
   discrete-event simulation: [Padding.Kernel] plays the gateway,
   one [Netsim.Linkstage] per hop plays link+router+cross source, and
   this module plays topology glue, tap, receiver and chunk loop.  The
   chunk boundaries come from [Starvation.drive], the very same
   arithmetic the event loop runs, so both paths starve, stop and
   budget-trip at identical simulated times.

   Everything observable is buffered stage-locally during the run and
   flushed transactionally: registry counters as batched adds, the
   ta-trace/1 stream as a key-ordered merge of per-stage deferred
   buffers.  If any stage (or the trace merge) hits an exact time tie it
   cannot order, nothing has been published yet — [try_run] returns
   [None] and the caller reruns the config on the event loop, whose
   (time, seq) queue order resolves the tie authoritatively. *)

exception Tie

let enabled_flag = Atomic.make true

(* Read once per process: CI flips the whole process to the event loop
   with TA_FORCE_EVENT_LOOP=1 to regenerate reference outputs. *)
let env_forced =
  match Sys.getenv_opt "TA_FORCE_EVENT_LOOP" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let enabled () = Atomic.get enabled_flag && not env_forced
let set_enabled b = Atomic.set enabled_flag b

let m_runs = Obs.Metrics.counter "desim.kernel.runs"

let m_fb_disabled =
  Obs.Metrics.counter_labeled "desim.kernel.fallbacks"
    ~label:("reason", "disabled")

let m_fb_cbr =
  Obs.Metrics.counter_labeled "desim.kernel.fallbacks"
    ~label:("reason", "cbr_payload")

let m_fb_onoff =
  Obs.Metrics.counter_labeled "desim.kernel.fallbacks"
    ~label:("reason", "onoff_cross")

let m_fb_tie =
  Obs.Metrics.counter_labeled "desim.kernel.fallbacks" ~label:("reason", "tie")

let note_fallback ~reason =
  Obs.Metrics.incr
    (match reason with
    | "disabled" -> m_fb_disabled
    | "cbr_payload" -> m_fb_cbr
    | "onoff_cross" -> m_fb_onoff
    | "tie" -> m_fb_tie
    | r -> invalid_arg ("Fastpath.note_fallback: unknown reason " ^ r))

let eligible_hops hops =
  Array.for_all
    (fun (h : Netsim.Topology.hop_spec) ->
      match h.Netsim.Topology.cross with
      | None -> true
      | Some c -> c.Netsim.Topology.burst = `Poisson)
    hops

(* Registry handles for the batched flush; registration is idempotent,
   these are the same metrics the event-loop components update. *)
let m_gw_fires = Obs.Metrics.counter "padding.gateway.fires"
let m_gw_payload = Obs.Metrics.counter "padding.gateway.payload_sent"
let m_gw_dummy = Obs.Metrics.counter "padding.gateway.dummy_sent"
let h_gw_occupancy = Obs.Metrics.histogram "padding.gateway.queue_occupancy"
let m_link_enqueued = Obs.Metrics.counter "netsim.link.enqueued"
let m_link_dropped = Obs.Metrics.counter "netsim.link.dropped"
let g_link_hwm = Obs.Metrics.gauge "netsim.link.queue_hwm"
let h_utilization = Obs.Metrics.histogram "netsim.link.utilization"

type outcome = {
  timestamps : float array;
  overhead : float;
  payload_offered : int;
  payload_delivered : int;
  mean_payload_latency : float;
  sim_time : float;
}

(* K-way merge of the per-stage deferred trace buffers by insertion-time
   key, replayed through the live trace sink.  Keys are monotone within
   a buffer (stable insertion order); an exact key shared by two
   different buffers is a cross-stage insertion-order tie the event
   queue would break by seq — bail out before emitting anything. *)
let merge_pass bufs ~emit =
  let k = Array.length bufs in
  let idx = Array.make k 0 in
  let remaining = ref 0 in
  Array.iter (fun b -> remaining := !remaining + Netsim.Tracebuf.length b) bufs;
  while !remaining > 0 do
    let best = ref (-1) in
    let best_key = ref infinity in
    for j = 0 to k - 1 do
      if idx.(j) < Netsim.Tracebuf.length bufs.(j) then begin
        let key = Netsim.Tracebuf.key bufs.(j) idx.(j) in
        if !best < 0 || key < !best_key then begin
          best := j;
          best_key := key
        end
        else if key = !best_key then raise Tie
      end
    done;
    if emit then Netsim.Tracebuf.emit bufs.(!best) idx.(!best);
    idx.(!best) <- idx.(!best) + 1;
    remaining := !remaining - 1
  done

let merge_traces bufs =
  (* Two passes: the dry run proves the whole merge is tie-free BEFORE
     the first event reaches the sink — a tie detected mid-emission
     would leave a partial stream behind that the event-loop rerun then
     duplicates. *)
  merge_pass bufs ~emit:false;
  merge_pass bufs ~emit:true

let arm_event_budget sim =
  match Exec.Supervise.current_event_budget () with
  | Some max_events -> Desim.Sim.set_event_budget sim ~max_events
  | None -> ()

let try_run ~fresh_arena ~scenario ~seed ~timer ~jitter ~payload_rate_pps
    ~packet_size ~hops ~tap_position ~target ~expected_rate =
  let n = Array.length hops in
  if tap_position < 0 || tap_position > n then
    invalid_arg "Topology.chain: tap_position out of range";
  Array.iter
    (fun (h : Netsim.Topology.hop_spec) ->
      if h.Netsim.Topology.bandwidth_bps <= 0.0 then
        invalid_arg "Link.create: bandwidth <= 0";
      if h.Netsim.Topology.propagation < 0.0 then
        invalid_arg "Link.create: propagation < 0";
      (match h.Netsim.Topology.queue_limit with
      | Some l when l < 1 -> invalid_arg "Link.create: queue_limit < 1"
      | _ -> ());
      match h.Netsim.Topology.cross with
      | Some c when c.Netsim.Topology.rate_pps <= 0.0 ->
          invalid_arg "Traffic_gen.poisson: rate <= 0"
      | _ -> ())
    hops;
  let arena = Arena.get ~fresh:fresh_arena in
  let sim = arena.Arena.sim in
  arm_event_budget sim;
  (* Same stream derivation as the event-loop path: three splits off the
     root in payload/gateway/cross order, then one child per hop with
     cross traffic, split in the chain builder's back-to-front order. *)
  let root = Prng.Rng.create ~seed in
  let rng_payload = Prng.Rng.split root in
  let rng_gateway = Prng.Rng.split root in
  let rng_cross = Prng.Rng.split root in
  let children = Array.make (Stdlib.max n 1) None in
  for i = n - 1 downto 0 do
    match hops.(i).Netsim.Topology.cross with
    | None -> ()
    | Some _ -> children.(i) <- Some (Prng.Rng.split rng_cross)
  done;
  let kgw = arena.Arena.kernel_gw in
  Padding.Kernel.configure kgw ~rng_payload ~rng_gateway ~timer ~jitter
    ~packet_size ~payload_rate:payload_rate_pps;
  let stages = Arena.kernel_hops arena n in
  let in_t = ref (Padding.Kernel.out_times kgw) in
  let in_tag = ref (Padding.Kernel.out_tags kgw) in
  for i = 0 to n - 1 do
    let h = hops.(i) in
    let cross =
      match (h.Netsim.Topology.cross, children.(i)) with
      | Some c, Some rng ->
          Some (rng, c.Netsim.Topology.rate_pps, c.Netsim.Topology.size_bytes)
      | _ -> None
    in
    Netsim.Linkstage.configure stages.(i)
      ~bandwidth_bps:h.Netsim.Topology.bandwidth_bps
      ~propagation:h.Netsim.Topology.propagation
      ~queue_limit:h.Netsim.Topology.queue_limit ~packet_size ~cross
      ~in_t:!in_t ~in_tag:!in_tag;
    in_t := Netsim.Linkstage.out_times stages.(i);
    in_tag := Netsim.Linkstage.out_tags stages.(i)
  done;
  (* Inline tap and receiver state. *)
  Netsim.Fvec.clear arena.Arena.tap_times;
  Netsim.Fvec.clear arena.Arena.tap_sizes;
  Netsim.Tracebuf.clear arena.Arena.kernel_tap_trace;
  let tap_payload = ref 0 and tap_dummy = ref 0 in
  let payload_received = ref 0 and dummy_received = ref 0 in
  let latency_acc = Stats.Descriptive.Acc.create () in
  let size_f = float_of_int packet_size in
  let absorb_tap times tags =
    let len = Netsim.Fvec.length times in
    for i = 0 to len - 1 do
      let t = Netsim.Fvec.unsafe_get times i in
      let tag = Netsim.Fvec.unsafe_get tags i in
      let dummy = Float.is_nan tag in
      if dummy then incr tap_dummy else incr tap_payload;
      if Obs.Trace.enabled () then
        Netsim.Tracebuf.push arena.Arena.kernel_tap_trace ~key:t
          ~code:
            (if dummy then Netsim.Tracebuf.observe_dummy
             else Netsim.Tracebuf.observe_payload)
          ~x:size_f ~y:0.0;
      Netsim.Fvec.push arena.Arena.tap_times t;
      Netsim.Fvec.push arena.Arena.tap_sizes size_f
    done
  in
  let absorb_receiver times tags =
    let len = Netsim.Fvec.length times in
    for i = 0 to len - 1 do
      let t = Netsim.Fvec.unsafe_get times i in
      let tag = Netsim.Fvec.unsafe_get tags i in
      if Float.is_nan tag then incr dummy_received
      else begin
        incr payload_received;
        (* Receiver.port: latency observed at the delivery event. *)
        Stats.Descriptive.Acc.add latency_acc (t -. tag)
      end
    done
  in
  (* Event-queue-depth surrogate for the desim.queue_hwm gauge: the two
     periodic source records plus one per cross source, plus the pending
     emission / in-flight transmission high-water marks.  Deterministic
     per config (jobs-invariant) but NOT the event loop's exact
     interleaved depth; excluded from the differential contract. *)
  let n_cross =
    Array.fold_left
      (fun acc (h : Netsim.Topology.hop_spec) ->
        if h.Netsim.Topology.cross = None then acc else acc + 1)
      0 hops
  in
  let queue_hwm_surrogate () =
    let acc = ref (2 + n_cross + Padding.Kernel.max_pending kgw) in
    for i = 0 to n - 1 do
      acc := !acc + Netsim.Linkstage.max_pending stages.(i)
    done;
    !acc
  in
  let flush ~with_utilization ~publish ~now =
    if Obs.Trace.enabled () then begin
      let bufs =
        Array.init (n + 2) (fun i ->
            if i = 0 then Padding.Kernel.trace kgw
            else if i = 1 then arena.Arena.kernel_tap_trace
            else Netsim.Linkstage.trace stages.(i - 2))
      in
      merge_traces bufs
    end;
    Obs.Metrics.add m_gw_fires (Padding.Kernel.fires kgw);
    Obs.Metrics.add m_gw_payload (Padding.Kernel.payload_sent kgw);
    Obs.Metrics.add m_gw_dummy (Padding.Kernel.dummy_sent kgw);
    let occ = Padding.Kernel.occupancy kgw in
    for i = 0 to Netsim.Fvec.length occ - 1 do
      Obs.Metrics.observe h_gw_occupancy (Netsim.Fvec.unsafe_get occ i)
    done;
    for i = 0 to n - 1 do
      let st = stages.(i) in
      Obs.Metrics.add m_link_enqueued (Netsim.Linkstage.enqueued st);
      Obs.Metrics.add m_link_dropped (Netsim.Linkstage.dropped st);
      let hwm = Netsim.Linkstage.queue_hwm st in
      if hwm > 0 then Obs.Metrics.observe_hwm g_link_hwm (float_of_int hwm)
    done;
    if with_utilization then
      (* Topology.stop_cross observes every router, in chain order. *)
      for i = 0 to n - 1 do
        Obs.Metrics.observe h_utilization
          (Netsim.Linkstage.utilization stages.(i) ~now)
      done;
    Netsim.Tap.note_batch
      ~observed:(!tap_payload + !tap_dummy)
      ~payload:!tap_payload ~dummy:!tap_dummy;
    if publish then Desim.Sim.publish_metrics sim
  in
  let advance until =
    Padding.Kernel.advance kgw ~until;
    let events = ref (Padding.Kernel.chunk_events kgw) in
    if tap_position = 0 then
      absorb_tap (Padding.Kernel.out_times kgw) (Padding.Kernel.out_tags kgw);
    for i = 0 to n - 1 do
      Netsim.Linkstage.advance stages.(i) ~until;
      events := !events + Netsim.Linkstage.chunk_events stages.(i);
      if tap_position = i + 1 then
        absorb_tap
          (Netsim.Linkstage.out_times stages.(i))
          (Netsim.Linkstage.out_tags stages.(i))
    done;
    (if n = 0 then
       absorb_receiver (Padding.Kernel.out_times kgw)
         (Padding.Kernel.out_tags kgw)
     else
       absorb_receiver
         (Netsim.Linkstage.out_times stages.(n - 1))
         (Netsim.Linkstage.out_tags stages.(n - 1)));
    Desim.Sim.account_external sim ~events:!events
      ~queue_hwm:(queue_hwm_surrogate ());
    (* Advances the clock to the chunk boundary and enforces the event
       budget with the event loop's chunk granularity and totals.  On a
       budget trip, flush what the event loop would already have
       published incrementally (no [publish_metrics] — the event loop
       does not publish on this path either), then re-raise. *)
    try Desim.Sim.run_until sim ~time:until
    with Desim.Sim.Event_budget_exceeded _ as e ->
      flush ~with_utilization:false ~publish:false ~now:(Desim.Sim.now sim);
      raise e
  in
  try
    Starvation.drive ~scenario ~slack:1.1 ~min_chunk:0.1
      ~now:(fun () -> Desim.Sim.now sim)
      ~count:(fun () -> Netsim.Fvec.length arena.Arena.tap_times)
      ~advance
      ~on_starve:(fun () ->
        (* The event loop's starve path never reaches stop_cross, so no
           utilization observations — flush everything else. *)
        flush ~with_utilization:false ~publish:true ~now:(Desim.Sim.now sim))
      ~target ~expected_rate ();
    let now = Desim.Sim.now sim in
    flush ~with_utilization:true ~publish:true ~now;
    Obs.Metrics.incr m_runs;
    Some
      {
        timestamps = Netsim.Fvec.to_array arena.Arena.tap_times;
        overhead = Padding.Kernel.overhead kgw;
        payload_offered = Padding.Kernel.generated kgw;
        payload_delivered = !payload_received;
        mean_payload_latency = Stats.Descriptive.Acc.mean latency_acc;
        sim_time = now;
      }
  with Padding.Kernel.Tie | Netsim.Linkstage.Tie | Tie ->
    (* Nothing was published before the tie was detected; the caller
       reruns the config on the event loop. *)
    None
