(** Figure 5(a): VIT padding — empirical detection rate vs. the timer
    standard deviation σ_T at a fixed (large) sample size.

    Expected shape: as σ_T grows past the gateway-jitter scale the variance
    ratio r collapses to 1 and every feature's detection rate drops to the
    0.5 floor — the paper's core design recommendation. *)

type point = {
  sigma_t : float;          (** seconds *)
  r_hat : float;
  r_predicted : float;      (** from calibration σ_gw and this σ_T *)
  scores : Workload.scored list;
}

type t = {
  sample_size : int;
  calibration : Calibration.gateway_sigmas;
  points : point list;
}

val default_sigma_ts : float list
(** 0 (CIT baseline), 1, 2, 5, 10, 20, 50, 100 µs. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?sample_size:int ->
  ?sigma_ts:float list ->
  ?law:(sigma_t:float -> Padding.Timer.law) ->
  ?csv_dir:string ->
  Format.formatter ->
  t
(** Default sample size 2000 (paper's Fig. 5(a)); 24 windows per class per
    point (scaled, floor 6).  [law] maps a σ_T to the interval law
    (default: truncated normal around the calibration mean) — the
    uniform/exponential ablation passes a different constructor.
    Raises [Starvation.Tap_starved] / [Desim.Sim.Event_budget_exceeded]
    from the calibration run (as [System.run] does) and
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves. *)
