type point = {
  utilization : float;
  measured_utilization : float;
  sigma_low : float;
  r_hat : float;
  scores : Workload.scored list;
}

type t = { sample_size : int; points : point list }

let default_utilizations =
  [ 0.05; 0.10; 0.15; 0.20; 0.25; 0.30; 0.35; 0.40; 0.45; 0.50 ]

let hop_for_utilization ~utilization ~burst =
  if utilization < 0.0 || utilization >= 1.0 then
    invalid_arg "Fig6.hop_for_utilization: utilization out of [0,1)";
  let cross =
    if utilization = 0.0 then None
    else
      Some
        {
          Netsim.Topology.rate_pps =
            utilization *. Calibration.lab_bandwidth_bps
            /. (8.0 *. float_of_int Calibration.cross_packet_size);
          size_bytes = Calibration.cross_packet_size;
          burst;
        }
  in
  {
    Netsim.Topology.bandwidth_bps = Calibration.lab_bandwidth_bps;
    propagation = 0.0;
    queue_limit = None;
    cross;
  }

let run ?(scale = 1.0) ?(seed = 42_005) ?(sample_size = 1000)
    ?(utilizations = default_utilizations) ?(burst = `Poisson) ?half_width
    ?csv_dir fmt =
  if sample_size < 2 then invalid_arg "Fig6.run: sample_size < 2";
  let windows = Stdlib.max 6 (int_of_float (40.0 *. scale)) in
  let features = Adversary.Feature.standard_set in
  let plan =
    Workload.window_plan ~sample_size ~max_windows:windows ?half_width ()
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf
         "fig6|seed=%d|n=%d|w=%d|stride=%d|wps=%d|minw=%d|hw=%s|burst=%s|points=%s"
         seed sample_size windows plan.Workload.stride
         plan.Workload.windows_per_shard plan.Workload.min_windows
         (match plan.Workload.half_width with
         | None -> "-"
         | Some h -> Printf.sprintf "%h" h)
         (match burst with
         | `Poisson -> "poisson"
         | `On_off (a, b, c) ->
             Printf.sprintf "onoff:%h:%h:%s" a b
               (match c with None -> "-" | Some x -> Printf.sprintf "%h" x))
         (String.concat "," (List.map (Printf.sprintf "%h") utilizations)))
  in
  (* Sweep points are seeded by index, hence independent: fan them out. *)
  let cells =
    Sweep.mapi ~sweep:"fig6" ~digest ~seed
      ~task:(fun ~attempt i utilization ->
        let hop = hop_for_utilization ~utilization ~burst in
        let base =
          {
            System.default_config with
            System.seed =
              Sweep.attempt_seed ~seed:(seed + (100 * i)) ~attempt;
            hops = [| hop |];
            tap_position = 1;
          }
        in
        let pair, scores = Workload.collect_windowed ~base ~plan ~features in
        (* The padded stream itself adds ~0.1% at these speeds; measured
           utilization reports the cross share actually offered. *)
        let measured_utilization =
          match hop.Netsim.Topology.cross with
          | None -> 0.0
          | Some c ->
              c.Netsim.Topology.rate_pps
              *. (8.0 *. float_of_int c.Netsim.Topology.size_bytes)
              /. Calibration.lab_bandwidth_bps
        in
        {
          utilization;
          measured_utilization;
          sigma_low = sqrt pair.Workload.piat_var_low;
          r_hat = pair.Workload.ratio_hat;
          scores;
        })
      utilizations
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 6: CIT + cross traffic (lab), detection vs link utilization \
            (sample size %d)"
           sample_size)
      ~columns:
        [ "util"; "sigma_l(us)"; "r_hat"; "feature"; "empirical"; "95% CI"; "theory" ]
  in
  List.iter2
    (fun utilization (c : _ Sweep.cell) ->
      match c.Sweep.value with
      | Some p ->
          List.iter
            (fun (s : Workload.scored) ->
              Table.add_row table
                [
                  Printf.sprintf "%.2f" p.utilization;
                  Printf.sprintf "%.2f" (p.sigma_low *. 1e6);
                  Printf.sprintf "%.4f" p.r_hat;
                  Adversary.Feature.name s.feature;
                  Printf.sprintf "%.3f" s.empirical;
                  Workload.pp_ci s;
                  Printf.sprintf "%.3f" s.theory;
                ])
            p.scores
      | None ->
          Table.add_row ~status:(Sweep.row_status c) table
            [ Printf.sprintf "%.2f" utilization; "-"; "-"; "-"; "-"; "-"; "-" ])
    utilizations cells;
  Table.print table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "fig6.csv")
  | None -> ());
  { sample_size; points = Sweep.ok_values cells }
