type t = { r_hat : float; rows : Workload.scored list }

let default_sample_sizes = [ 10; 20; 50; 100; 200; 400; 700; 1000 ]

let run ?(scale = 1.0) ?(seed = 42_002) ?(sample_sizes = default_sample_sizes)
    ?jitter ?csv_dir fmt =
  let sample_sizes = List.sort_uniq compare sample_sizes in
  let max_n =
    match List.rev sample_sizes with
    | n :: _ -> n
    | [] -> invalid_arg "Fig4b.run: empty sample_sizes"
  in
  let windows = Stdlib.max 8 (int_of_float (60.0 *. scale)) in
  let base =
    match jitter with
    | None -> { System.default_config with System.seed }
    | Some jitter -> { System.default_config with System.seed; jitter }
  in
  let traces =
    Obs.span "fig4b.collect" (fun () ->
        Workload.collect_pair ~base ~piats:(max_n * windows))
  in
  (* Scoring is pure (no RNG): each sample size can be scored in parallel
     without affecting the result. *)
  let rows =
    Obs.span "fig4b.score" (fun () ->
        List.concat
          (Exec.Pool.parallel_map
             (fun n ->
               Workload.score traces ~features:Adversary.Feature.standard_set
                 ~sample_size:n)
             sample_sizes))
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 4(b): detection rate vs sample size (CIT, no cross traffic, \
            r_hat=%.3f)"
           traces.Workload.r_hat)
      ~columns:[ "n"; "feature"; "empirical"; "95% CI"; "theory" ]
  in
  List.iter
    (fun (s : Workload.scored) ->
      Table.add_row table
        [
          string_of_int s.sample_size;
          Adversary.Feature.name s.feature;
          Printf.sprintf "%.3f" s.empirical;
          Workload.pp_ci s;
          Printf.sprintf "%.3f" s.theory;
        ])
    rows;
  Table.print table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "fig4b.csv")
  | None -> ());
  { r_hat = traces.Workload.r_hat; rows }
