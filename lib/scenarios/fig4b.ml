type t = { r_hat : float; rows : Workload.scored list }

let default_sample_sizes = [ 10; 20; 50; 100; 200; 400; 700; 1000 ]

let run ?(scale = 1.0) ?(seed = 42_002) ?(sample_sizes = default_sample_sizes)
    ?jitter ?csv_dir fmt =
  let sample_sizes = List.sort_uniq compare sample_sizes in
  let max_n =
    match List.rev sample_sizes with
    | n :: _ -> n
    | [] -> invalid_arg "Fig4b.run: empty sample_sizes"
  in
  let windows = Stdlib.max 8 (int_of_float (60.0 *. scale)) in
  let base =
    match jitter with
    | None -> { System.default_config with System.seed }
    | Some jitter -> { System.default_config with System.seed; jitter }
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "fig4b|seed=%d|w=%d|jitter=%s|points=%s" seed windows
         (* [Jitter.t] is abstract; callers wiring a custom jitter into a
            checkpointed run must use a distinct checkpoint directory. *)
         (match jitter with None -> "default" | Some _ -> "custom")
         (String.concat "," (List.map string_of_int sample_sizes)))
  in
  (* The trace pair is shared by every sample size: collect it once in
     [prepare], which the runner skips when all points replay from the
     journal.  Scoring is pure (no RNG): each sample size can be scored
     in parallel without affecting the result.  Each point's payload
     carries [r_hat] so the table title survives a full replay. *)
  let traces_ref = ref None in
  let prepare () =
    traces_ref :=
      Some
        (Obs.span "fig4b.collect" (fun () ->
             Workload.collect_pair ~base ~piats:(max_n * windows)))
  in
  let cells =
    Obs.span "fig4b.score" (fun () ->
        Sweep.mapi ~sweep:"fig4b" ~digest ~seed ~prepare
          ~task:(fun ~attempt:_ _i n ->
            match !traces_ref with
            | None ->
                raise
                  (Sweep.Sweep_internal_error
                     "fig4b: prepare did not collect traces")
            | Some traces ->
                ( traces.Workload.r_hat,
                  Workload.score traces
                    ~features:Adversary.Feature.standard_set ~sample_size:n ))
          sample_sizes)
  in
  let r_hat =
    match Sweep.ok_values cells with (r, _) :: _ -> r | [] -> Float.nan
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fig 4(b): detection rate vs sample size (CIT, no cross traffic, \
            r_hat=%.3f)"
           r_hat)
      ~columns:[ "n"; "feature"; "empirical"; "95% CI"; "theory" ]
  in
  List.iter2
    (fun n (c : _ Sweep.cell) ->
      match c.Sweep.value with
      | Some (_, scores) ->
          List.iter
            (fun (s : Workload.scored) ->
              Table.add_row table
                [
                  string_of_int s.sample_size;
                  Adversary.Feature.name s.feature;
                  Printf.sprintf "%.3f" s.empirical;
                  Workload.pp_ci s;
                  Printf.sprintf "%.3f" s.theory;
                ])
            scores
      | None ->
          Table.add_row ~status:(Sweep.row_status c) table
            [ string_of_int n; "-"; "-"; "-"; "-" ])
    sample_sizes cells;
  Table.print table fmt;
  (match csv_dir with
  | Some dir -> Table.save_csv table ~path:(Filename.concat dir "fig4b.csv")
  | None -> ());
  { r_hat; rows = List.concat_map snd (Sweep.ok_values cells) }
