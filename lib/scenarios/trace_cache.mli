(** Process-wide memo cache for {!System.run} trace collections.

    Figures that re-collect a trace for an identical (full
    {!System.config}, [piats]) pair — same seed, timer, jitter, topology,
    everything — share one simulation instead of re-running it.  The
    config is pure data, and {!System.run} is a deterministic function of
    it, so memoization cannot change any published number; it only
    removes duplicate work.

    The cache is thread-safe (used concurrently by {!Exec.Pool} workers)
    and sharded by key hash, so workers sweeping different configs do not
    serialize on one lock.  It is bounded: least-recently-inserted entries
    are evicted beyond {!set_capacity} (the bound is distributed across
    shards, so the count held can exceed a very small capacity by a few
    entries).  Cached results are shared structurally — callers
    must treat {!System.result} as immutable (every current caller
    does). *)

val run : System.config -> piats:int -> System.result
(** Memoized {!System.run}.  Concurrent misses on the same key may both
    simulate (deterministically equal results); one wins the slot. *)

val set_capacity : int -> unit
(** Target maximum number of cached results (default 32), split across
    shards (each shard keeps at least one entry).  [0] disables caching;
    raises [Invalid_argument] on negative values. *)

val clear : unit -> unit
(** Drop every cached entry and reset the hit/miss counters. *)

type stats = { hits : int; misses : int }

val stats : unit -> stats
(** Cumulative counters since start or the last {!clear}. *)
