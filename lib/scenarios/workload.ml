type traces = {
  low : System.result;
  high : System.result;
  var_low : float;
  var_high : float;
  r_hat : float;
}

let collect_pair ~base ~piats =
  (* The two classes have disjoint derived seeds, so they are independent
     simulations; run them concurrently when a pool worker is free. *)
  let low_cfg = { base with System.payload_rate_pps = Calibration.rate_low_pps } in
  let high_cfg =
    {
      base with
      System.payload_rate_pps = Calibration.rate_high_pps;
      seed = base.System.seed + 7919;
    }
  in
  let low, high =
    Exec.Pool.both
      (fun () -> System.run low_cfg ~piats)
      (fun () -> System.run high_cfg ~piats)
  in
  let var_low = Stats.Descriptive.variance low.System.piats in
  let var_high = Stats.Descriptive.variance high.System.piats in
  let r_hat = Float.max (var_high /. var_low) 1.0 in
  { low; high; var_low; var_high; r_hat }

let classes t =
  [|
    (Calibration.label_low, t.low.System.piats);
    (Calibration.label_high, t.high.System.piats);
  |]

type scored = {
  feature : Adversary.Feature.kind;
  sample_size : int;
  empirical : float;
  theory : float;
  n_test : int;
  successes : int;
}

let wilson95 s =
  let trials = Stdlib.max s.n_test 1 in
  let successes = Stdlib.max 0 (Stdlib.min trials s.successes) in
  Stats.Confidence.wilson ~successes ~trials ~confidence:0.95

let pp_ci s =
  let iv = wilson95 s in
  Printf.sprintf "[%.2f,%.2f]" iv.Stats.Confidence.lo iv.Stats.Confidence.hi

let theory_of ~feature ~r ~n =
  match feature with
  | Adversary.Feature.Sample_mean -> Analytical.Theorems.v_mean ~r
  | Adversary.Feature.Sample_variance -> Analytical.Theorems.v_variance ~r ~n
  | Adversary.Feature.Sample_entropy _ -> Analytical.Theorems.v_entropy ~r ~n

let scored_of_results ~features ~sample_size ~r results =
  List.map2
    (fun feature (res : Adversary.Detection.result) ->
      {
        feature;
        sample_size;
        empirical = res.Adversary.Detection.detection_rate;
        theory = theory_of ~feature ~r ~n:sample_size;
        n_test =
          Array.fold_left ( + ) 0 res.Adversary.Detection.n_test_per_class;
        successes =
          Array.fold_left ( + ) 0 res.Adversary.Detection.n_correct_per_class;
      })
    features results

let score t ~features ~sample_size =
  let results =
    Adversary.Detection.estimate_features ~features
      ~reference:Calibration.timer_mean ~sample_size ~classes:(classes t) ()
  in
  scored_of_results ~features ~sample_size ~r:t.r_hat results

(* -- Streaming windowed collection ------------------------------------- *)

type window_plan = {
  sample_size : int;
  stride : int;
  windows_per_shard : int;
  min_windows : int;
  max_windows : int;
  half_width : float option;
}

let window_plan ?stride ?(windows_per_shard = 8) ?(min_windows = 6) ?half_width
    ~sample_size ~max_windows () =
  if sample_size < 2 then invalid_arg "Workload.window_plan: sample_size < 2";
  let stride =
    match stride with
    | Some s -> s
    | None -> Stdlib.max 1 (sample_size / 16)
  in
  if stride < 1 || stride > sample_size then
    invalid_arg "Workload.window_plan: stride out of [1, sample_size]";
  if windows_per_shard < 1 then
    invalid_arg "Workload.window_plan: windows_per_shard < 1";
  if min_windows < 4 then
    (* estimate_windowed needs >= 2 train + 2 test windows per class *)
    invalid_arg "Workload.window_plan: min_windows < 4";
  if max_windows < min_windows then
    invalid_arg "Workload.window_plan: max_windows < min_windows";
  (match half_width with
  | Some h when not (h > 0.0 && h < 0.5) ->
      invalid_arg "Workload.window_plan: half_width out of (0, 0.5)"
  | Some _ | None -> ());
  (* A shard never needs to carry more windows than the cap asks for. *)
  let windows_per_shard = Stdlib.min windows_per_shard max_windows in
  { sample_size; stride; windows_per_shard; min_windows; max_windows;
    half_width }

let shard_piats plan =
  plan.sample_size + ((plan.windows_per_shard - 1) * plan.stride)

type windowed_pair = {
  low_windows : Adversary.Dataset.windowed;
  high_windows : Adversary.Dataset.windowed;
  piat_var_low : float;
  piat_var_high : float;
  ratio_hat : float;
  shards_run : int;
  piats_per_class : int;
  stopped_early : bool;
}

let collect_windowed ~base ~plan ~features =
  let entropy_bin_widths = Adversary.Detection.entropy_bin_widths features in
  let reference = Calibration.timer_mean in
  let wps = plan.windows_per_shard in
  let per_shard_piats = shard_piats plan in
  let max_shards = (plan.max_windows + wps - 1) / wps in
  let min_shards = Stdlib.max 1 ((plan.min_windows + wps - 1) / wps) in
  let low_cfg =
    { base with System.payload_rate_pps = Calibration.rate_low_pps }
  in
  let high_cfg =
    {
      base with
      System.payload_rate_pps = Calibration.rate_high_pps;
      seed = base.System.seed + 7919;
    }
  in
  (* One task per (shard, class).  The shard seed is derived from the
     class seed and the shard index, so the work plan — and with it every
     byte of the result — is a function of (base.seed, plan) alone; the
     pool's worker count only decides how many shards run concurrently. *)
  let run_shard cfg shard =
    let cfg =
      { cfg with System.seed = Prng.Rng.mix_seed cfg.System.seed shard }
    in
    let r = System.run cfg ~piats:per_shard_piats in
    let w =
      Adversary.Dataset.sliding_features ~reference
        ~sample_size:plan.sample_size ~stride:plan.stride ~entropy_bin_widths
        r.System.piats
    in
    let m = Stats.Stream.Moments.create () in
    Array.iter (Stats.Stream.Moments.add m) r.System.piats;
    (w, m)
  in
  let acc_low =
    ref (Adversary.Dataset.empty_windowed ~entropy_bin_widths)
  in
  let acc_high =
    ref (Adversary.Dataset.empty_windowed ~entropy_bin_widths)
  in
  let mom_low = ref (Stats.Stream.Moments.create ()) in
  let mom_high = ref (Stats.Stream.Moments.create ()) in
  let ratio_now () =
    Float.max
      (Stats.Stream.Moments.variance !mom_high
      /. Stats.Stream.Moments.variance !mom_low)
      1.0
  in
  let score_now () =
    let named_windows =
      [|
        (Calibration.label_low, !acc_low);
        (Calibration.label_high, !acc_high);
      |]
    in
    let results =
      Adversary.Detection.estimate_windowed ~features
        ~sample_size:plan.sample_size ~named_windows ()
    in
    scored_of_results ~features ~sample_size:plan.sample_size ~r:(ratio_now ())
      results
  in
  let tight scores =
    match plan.half_width with
    | None -> false
    | Some hw ->
        List.for_all
          (fun s ->
            let iv = wilson95 s in
            (iv.Stats.Confidence.hi -. iv.Stats.Confidence.lo) /. 2.0 <= hw)
          scores
  in
  (* Rounds grow the accumulation by whole shards; after each round the
     accumulated windows are scored and the Wilson half-width checked.
     The stopping decision reads only accumulated data, so it is as
     deterministic as the shards themselves.  Without a half-width target
     the first round jumps straight to [max_shards]. *)
  let rec rounds done_shards =
    let target =
      if done_shards = 0 then
        if plan.half_width = None then max_shards else min_shards
      else done_shards + 1
    in
    let fresh = target - done_shards in
    let results =
      Exec.Pool.parallel_init (2 * fresh) (fun t ->
          let shard = done_shards + (t / 2) in
          let cfg = if t mod 2 = 0 then low_cfg else high_cfg in
          run_shard cfg shard)
    in
    (* Merge strictly in shard order, independent of completion order. *)
    for k = 0 to fresh - 1 do
      let wl, ml = results.(2 * k) and wh, mh = results.((2 * k) + 1) in
      acc_low := Adversary.Dataset.append_windowed !acc_low wl;
      acc_high := Adversary.Dataset.append_windowed !acc_high wh;
      mom_low := Stats.Stream.Moments.merge !mom_low ml;
      mom_high := Stats.Stream.Moments.merge !mom_high mh
    done;
    let scores = score_now () in
    if target >= max_shards || tight scores then (target, scores)
    else rounds target
  in
  let shards_run, scores = rounds 0 in
  let pair =
    {
      low_windows = !acc_low;
      high_windows = !acc_high;
      piat_var_low = Stats.Stream.Moments.variance !mom_low;
      piat_var_high = Stats.Stream.Moments.variance !mom_high;
      ratio_hat = ratio_now ();
      shards_run;
      piats_per_class = shards_run * per_shard_piats;
      stopped_early = shards_run < max_shards;
    }
  in
  (pair, scores)
