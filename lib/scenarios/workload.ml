type traces = {
  low : System.result;
  high : System.result;
  var_low : float;
  var_high : float;
  r_hat : float;
}

let collect_pair ~base ~piats =
  (* The two classes have disjoint derived seeds, so they are independent
     simulations; run them concurrently when a pool worker is free. *)
  let low_cfg = { base with System.payload_rate_pps = Calibration.rate_low_pps } in
  let high_cfg =
    {
      base with
      System.payload_rate_pps = Calibration.rate_high_pps;
      seed = base.System.seed + 7919;
    }
  in
  let low, high =
    Exec.Pool.both
      (fun () -> System.run low_cfg ~piats)
      (fun () -> System.run high_cfg ~piats)
  in
  let var_low = Stats.Descriptive.variance low.System.piats in
  let var_high = Stats.Descriptive.variance high.System.piats in
  let r_hat = Float.max (var_high /. var_low) 1.0 in
  { low; high; var_low; var_high; r_hat }

let classes t =
  [|
    (Calibration.label_low, t.low.System.piats);
    (Calibration.label_high, t.high.System.piats);
  |]

type scored = {
  feature : Adversary.Feature.kind;
  sample_size : int;
  empirical : float;
  theory : float;
  n_test : int;
  successes : int;
}

let wilson95 s =
  let trials = Stdlib.max s.n_test 1 in
  let successes = Stdlib.max 0 (Stdlib.min trials s.successes) in
  Stats.Confidence.wilson ~successes ~trials ~confidence:0.95

let pp_ci s =
  let iv = wilson95 s in
  Printf.sprintf "[%.2f,%.2f]" iv.Stats.Confidence.lo iv.Stats.Confidence.hi

let theory_of ~feature ~r ~n =
  match feature with
  | Adversary.Feature.Sample_mean -> Analytical.Theorems.v_mean ~r
  | Adversary.Feature.Sample_variance -> Analytical.Theorems.v_variance ~r ~n
  | Adversary.Feature.Sample_entropy _ -> Analytical.Theorems.v_entropy ~r ~n

let score t ~features ~sample_size =
  let results =
    Adversary.Detection.estimate_features ~features
      ~reference:Calibration.timer_mean ~sample_size ~classes:(classes t) ()
  in
  List.map2
    (fun feature (res : Adversary.Detection.result) ->
      {
        feature;
        sample_size;
        empirical = res.Adversary.Detection.detection_rate;
        theory = theory_of ~feature ~r:t.r_hat ~n:sample_size;
        n_test =
          Array.fold_left ( + ) 0 res.Adversary.Detection.n_test_per_class;
        successes =
          Array.fold_left ( + ) 0 res.Adversary.Detection.n_correct_per_class;
      })
    features results
