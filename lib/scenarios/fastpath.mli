(** Fused-kernel fast path for {!System.run}.

    Batch-executes the dominant no-fault configuration — Poisson payload,
    chain topology, cross traffic absent or Poisson — through
    {!Padding.Kernel} and {!Netsim.Linkstage} instead of the discrete
    event loop.  The contract is exact equivalence: same RNG draws in the
    same order, bit-identical tap observations, trace stream, QoS fields
    and metric totals as the event loop at any [--jobs].  Runs the kernel
    cannot order exactly (cross-stream time ties) publish nothing and
    fall back to the event loop.

    Set [TA_FORCE_EVENT_LOOP=1] (or call {!set_enabled}[ false]) to
    force every run onto the event loop — used by the differential CI
    job and the [--no-kernel] bench flag. *)

val enabled : unit -> bool
(** Whether eligible runs may take the kernel path.  [false] when
    {!set_enabled}[ false] was called or the [TA_FORCE_EVENT_LOOP]
    environment variable was set ([1]/[true]/[yes]) at startup. *)

val set_enabled : bool -> unit
(** Process-wide toggle ANDed with the environment override. *)

val note_fallback : reason:string -> unit
(** Bump [desim.kernel.fallbacks{reason=...}].  Reasons:
    ["disabled"], ["cbr_payload"], ["onoff_cross"], ["tie"]. *)

val eligible_hops : Netsim.Topology.hop_spec array -> bool
(** Every hop's cross traffic is absent or [`Poisson] (the kernel has no
    on/off burst model). *)

type outcome = {
  timestamps : float array;  (** tap observation times, in order *)
  overhead : float;  (** {!Padding.Gateway.overhead} *)
  payload_offered : int;  (** payload packets generated at the source *)
  payload_delivered : int;  (** payload packets absorbed by the receiver *)
  mean_payload_latency : float;  (** creation-to-delivery mean, 0 if none *)
  sim_time : float;  (** simulated clock at run end *)
}

val try_run :
  fresh_arena:bool ->
  scenario:string ->
  seed:int ->
  timer:Padding.Timer.law ->
  jitter:Padding.Jitter.t ->
  payload_rate_pps:float ->
  packet_size:int ->
  hops:Netsim.Topology.hop_spec array ->
  tap_position:int ->
  target:int ->
  expected_rate:float ->
  outcome option
(** Run the fused pipeline until the tap has recorded [target]
    observations, chunked by the same {!Starvation.drive} arithmetic the
    event loop uses (slack 1.1, min chunk 0.1).  Returns [None] if a
    cross-stream time tie makes exact event ordering unreproducible —
    nothing has been published in that case and the caller must rerun
    the configuration on the event loop (and count the ["tie"]
    fallback).  Raises the same exceptions as the event-loop path:
    setup [Invalid_argument]s, {!Exec.Supervise} event-budget trips
    (after flushing incrementally-published state) and
    [Starvation.Tap_starved]. *)
