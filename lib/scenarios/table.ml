type row_status = Row_ok | Row_failed of string | Row_quarantined of string

type t = {
  title : string;
  columns : string list;
  mutable rows : (string list * row_status) list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row ?(status = Row_ok) t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: width mismatch";
  t.rows <- (row, status) :: t.rows

let fcell x =
  if Float.is_integer x && Float.abs x < 1e7 then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 1e6 || (Float.abs x < 1e-3 && x <> 0.0) then
    Printf.sprintf "%.3e" x
  else Printf.sprintf "%.4f" x

let status_cell = function
  | Row_ok -> "ok"
  | Row_failed msg -> if msg = "" then "failed" else "failed: " ^ msg
  | Row_quarantined msg ->
      if msg = "" then "quarantined" else "quarantined: " ^ msg

let has_failures t =
  List.exists (fun (_, status) -> status <> Row_ok) t.rows

(* The status column materializes only when some row is not ok, so clean
   runs render/serialize exactly as they did before tables learned about
   partial results. *)
let effective t =
  if has_failures t then
    ( t.columns @ [ "status" ],
      List.rev_map (fun (row, status) -> row @ [ status_cell status ]) t.rows )
  else (t.columns, List.rev_map fst t.rows)

let quote_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let columns, rows = effective t in
  let line cells = String.concat "," (List.map quote_cell cells) in
  String.concat "\n" (line columns :: List.map line rows) ^ "\n"

let digest t =
  Digest.to_hex (Digest.string (t.title ^ "\n" ^ to_csv t))

(* Registry of printed tables, in print order.  The bench report embeds
   it so the regression differ can compare table *content* (digests)
   across runs, not just wall-clock.  CAS loop: figure stages run
   sequentially today, but nothing in this module should be the thing
   that breaks if one ever prints from a worker domain. *)
let registry : (string * string) list Atomic.t = Atomic.make []

let rec register_digest entry =
  let cur = Atomic.get registry in
  if not (Atomic.compare_and_set registry cur (entry :: cur)) then
    register_digest entry

let printed_digests () = List.rev (Atomic.get registry)
let reset_digests () = Atomic.set registry []

let print t fmt =
  register_digest (t.title, digest t);
  let columns, rows = effective t in
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length col) rows)
      columns
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row cells =
    String.concat "  " (List.map2 pad cells widths)
  in
  Format.fprintf fmt "@.%s@." t.title;
  let header = render_row columns in
  Format.fprintf fmt "%s@." header;
  Format.fprintf fmt "%s@." (String.make (String.length header) '-');
  List.iter (fun row -> Format.fprintf fmt "%s@." (render_row row)) rows

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir -> ()
    (* lost the race to a concurrent mkdir: fine *)
  end

let save_csv t ~path =
  let dir = Filename.dirname path in
  (try mkdir_p dir
   with Sys_error msg ->
     raise
       (Sys_error
          (Printf.sprintf
             "Table.save_csv: cannot create directory %s for %s (%s) — pass \
              a writable --csv directory"
             dir path msg)));
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    raise
      (Sys_error
         (Printf.sprintf
            "Table.save_csv: %s exists but is not a directory — pass a \
             directory path for CSV output"
            dir));
  match open_out path with
  | exception Sys_error msg ->
      raise (Sys_error (Printf.sprintf "Table.save_csv: cannot write %s: %s" path msg))
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (to_csv t))
