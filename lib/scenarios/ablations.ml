let features = Adversary.Feature.standard_set

let collect ~seed ~timer ~jitter ~hops ~tap_position ~piats =
  let base =
    {
      System.default_config with
      System.seed = seed;
      timer;
      jitter;
      hops;
      tap_position;
    }
  in
  Workload.collect_pair ~base ~piats

let print_scored_table fmt ~title ~key_col ?(placeholders = []) rows =
  let table =
    Table.create ~title
      ~columns:[ key_col; "r_hat"; "feature"; "empirical"; "theory" ]
  in
  List.iter
    (fun (key, r_hat, scores) ->
      List.iter
        (fun (s : Workload.scored) ->
          Table.add_row table
            [
              key;
              Printf.sprintf "%.4f" r_hat;
              Adversary.Feature.name s.feature;
              Printf.sprintf "%.3f" s.empirical;
              Printf.sprintf "%.3f" s.theory;
            ])
        scores)
    rows;
  List.iter
    (fun (key, status) -> Table.add_row ~status table [ key; "-"; "-"; "-"; "-" ])
    placeholders;
  Table.print table fmt

(* Annotated placeholder entries for the non-ok cells of a sweep, keyed
   like the ok rows so degraded tables stay readable. *)
let placeholders_of keys cells =
  List.filter_map
    (fun (key, (c : _ Sweep.cell)) ->
      if c.Sweep.status = Sweep.Point_ok then None
      else Some (key, Sweep.row_status c))
    (List.combine keys cells)

let run_jitter_models ?(scale = 1.0) ?(seed = 51_001) fmt =
  let n = 1000 in
  let windows = Stdlib.max 8 (int_of_float (40.0 *. scale)) in
  let piats = n * windows in
  let cal = Calibration.measure_gateway_sigmas ~seed:(seed + 1) () in
  (* Match the parametric per-send jitter so the *PIAT* sigma matches the
     mechanistic measurement: PIAT variance = 2 x per-send variance. *)
  let models =
    [
      ("mechanistic", fun (_ : float) -> Calibration.default_jitter);
      ( "parametric",
        fun rate ->
          let sigma_piat =
            if rate <= Calibration.rate_low_pps then
              cal.Calibration.sigma_low
            else cal.Calibration.sigma_high
          in
          Padding.Jitter.parametric ~mu:3e-6 ~sigma:(sigma_piat /. sqrt 2.0) );
    ]
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.jitter|seed=%d|n=%d|piats=%d|points=%s" seed n
         piats
         (String.concat "," (List.map fst models)))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.jitter" ~digest ~seed
      ~task:(fun ~attempt _i (name, jitter_of_rate) ->
        let root = Sweep.attempt_seed ~seed ~attempt in
        (* Parametric jitter depends on the class, so run the two classes
           with their own jitter instances. *)
        let base rate seed =
          {
            System.default_config with
            System.seed = seed;
            payload_rate_pps = rate;
            jitter = jitter_of_rate rate;
          }
        in
        let low, high =
          Exec.Pool.both
            (fun () -> System.run (base Calibration.rate_low_pps root) ~piats)
            (fun () ->
              System.run (base Calibration.rate_high_pps (root + 7919)) ~piats)
        in
        let var_low = Stats.Descriptive.variance low.System.piats in
        let var_high = Stats.Descriptive.variance high.System.piats in
        let traces =
          {
            Workload.low;
            high;
            var_low;
            var_high;
            r_hat = Float.max (var_high /. var_low) 1.0;
          }
        in
        (name, traces.Workload.r_hat, Workload.score traces ~features ~sample_size:n))
      models
  in
  let rows = Sweep.ok_values cells in
  print_scored_table fmt
    ~title:"Ablation: mechanistic vs parametric gateway jitter (n=1000)"
    ~key_col:"model"
    ~placeholders:(placeholders_of (List.map fst models) cells)
    rows;
  rows

let run_vit_laws ?(scale = 1.0) ?(seed = 51_002) fmt =
  let n = 2000 in
  let sigma_t = 10e-6 in
  let windows = Stdlib.max 6 (int_of_float (24.0 *. scale)) in
  let tau = Calibration.timer_mean in
  let laws =
    [
      ("normal", Padding.Timer.Normal { mean = tau; sigma = sigma_t });
      ( "uniform",
        Padding.Timer.Uniform { mean = tau; half_width = sigma_t *. sqrt 3.0 } );
      (* An exponential with mean = sigma_t rides on a constant offset to
         keep E[T] = tau: approximate with Normal? No — model it as the
         shifted-exponential via Uniform fallback is wrong; instead use an
         exponential *perturbation* implemented as a normal of matched
         sigma is cheating.  We use the plain exponential law with mean
         tau (sigma_T = tau) as the extreme-shape point. *)
      ("exp(mean=tau)", Padding.Timer.Exponential { mean = tau });
    ]
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.vit_laws|seed=%d|n=%d|w=%d|sigma=%h|points=%s"
         seed n windows sigma_t
         (String.concat "," (List.map fst laws)))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.vit_laws" ~digest ~seed
      ~task:(fun ~attempt i (name, timer) ->
        let traces =
          collect
            ~seed:(Sweep.attempt_seed ~seed:(seed + (100 * i)) ~attempt)
            ~timer ~jitter:Calibration.default_jitter ~hops:[||]
            ~tap_position:0 ~piats:(n * windows)
        in
        (name, traces.Workload.r_hat, Workload.score traces ~features ~sample_size:n))
      laws
  in
  let rows = Sweep.ok_values cells in
  print_scored_table fmt
    ~title:
      (Printf.sprintf
         "Ablation: VIT interval law shape (sigma_T=%.0fus for normal/uniform; n=%d)"
         (sigma_t *. 1e6) n)
    ~key_col:"law"
    ~placeholders:(placeholders_of (List.map fst laws) cells)
    rows;
  rows

let run_entropy_bins ?(scale = 1.0) ?(seed = 51_003) fmt =
  let n = 1000 in
  let windows = Stdlib.max 8 (int_of_float (40.0 *. scale)) in
  let widths = [ 0.25e-6; 0.5e-6; 1e-6; 2e-6; 4e-6 ] in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.entropy_bins|seed=%d|n=%d|w=%d|points=%s" seed
         n windows
         (String.concat "," (List.map (Printf.sprintf "%h") widths)))
  in
  (* One shared trace collection (skipped on a full journal replay);
     scoring is pure — the widths can be evaluated concurrently. *)
  let traces_ref = ref None in
  let prepare () =
    traces_ref :=
      Some
        (collect ~seed ~timer:(Padding.Timer.Constant Calibration.timer_mean)
           ~jitter:Calibration.default_jitter ~hops:[||] ~tap_position:0
           ~piats:(n * windows))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.entropy_bins" ~digest ~seed ~prepare
      ~task:(fun ~attempt:_ _i bin_width ->
        let traces =
          match !traces_ref with
          | Some t -> t
          | None ->
              raise
                (Sweep.Sweep_internal_error
                   "entropy-bins: prepare did not collect traces")
        in
        let scores =
          Workload.score traces
            ~features:[ Adversary.Feature.Sample_entropy { bin_width } ]
            ~sample_size:n
        in
        match scores with
        | [ s ] -> (bin_width, s.Workload.empirical)
        | _ ->
            raise
              (Sweep.Sweep_internal_error
                 "entropy-bins: expected exactly one score per width"))
      widths
  in
  let rows = Sweep.ok_values cells in
  let table =
    Table.create ~title:"Ablation: entropy-estimator bin width (CIT, n=1000)"
      ~columns:[ "bin width (us)"; "empirical detection" ]
  in
  List.iter
    (fun (w, v) ->
      Table.add_row table
        [ Printf.sprintf "%.2f" (w *. 1e6); Printf.sprintf "%.3f" v ])
    rows;
  List.iter2
    (fun w (c : _ Sweep.cell) ->
      if c.Sweep.status <> Sweep.Point_ok then
        Table.add_row ~status:(Sweep.row_status c) table
          [ Printf.sprintf "%.2f" (w *. 1e6); "-" ])
    widths cells;
  Table.print table fmt;
  rows

let run_tap_positions ?(scale = 1.0) ?(seed = 51_004) fmt =
  let n = 1000 in
  let windows = Stdlib.max 6 (int_of_float (24.0 *. scale)) in
  let utilization = 0.2 in
  let hops =
    Array.init 3 (fun _ ->
        Fig6.hop_for_utilization ~utilization ~burst:`Poisson)
  in
  let positions = [ 0; 1; 2; 3 ] in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.tap_positions|seed=%d|n=%d|w=%d|util=%h|points=%s"
         seed n windows utilization
         (String.concat "," (List.map string_of_int positions)))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.tap_positions" ~digest ~seed
      ~task:(fun ~attempt _i tap_position ->
        let traces =
          collect
            ~seed:
              (Sweep.attempt_seed ~seed:(seed + (100 * tap_position)) ~attempt)
            ~timer:(Padding.Timer.Constant Calibration.timer_mean)
            ~jitter:Calibration.default_jitter ~hops ~tap_position
            ~piats:(n * windows)
        in
        ( tap_position,
          traces.Workload.r_hat,
          Workload.score traces ~features ~sample_size:n ))
      positions
  in
  let rows = Sweep.ok_values cells in
  print_scored_table fmt
    ~title:
      (Printf.sprintf
         "Ablation: adversary position along a 3-router path (util %.2f, n=%d)"
         utilization n)
    ~key_col:"tap hop"
    ~placeholders:(placeholders_of (List.map string_of_int positions) cells)
    (List.map (fun (p, r, s) -> (string_of_int p, r, s)) rows);
  rows

let run_oracle_vs_kde ?(scale = 1.0) ?(seed = 51_005) fmt =
  let n = 200 in
  let windows = Stdlib.max 12 (int_of_float (80.0 *. scale)) in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.oracle_vs_kde|seed=%d|n=%d|w=%d" seed n windows)
  in
  (* A single (but expensive) point: routing it through the sweep runner
     gives it the same checkpoint/containment story as the fan-outs. *)
  let cells =
    Sweep.mapi ~sweep:"ablations.oracle_vs_kde" ~digest ~seed
      ~task:(fun ~attempt _i () ->
        let traces =
          collect
            ~seed:(Sweep.attempt_seed ~seed ~attempt)
            ~timer:(Padding.Timer.Constant Calibration.timer_mean)
            ~jitter:Calibration.default_jitter ~hops:[||] ~tap_position:0
            ~piats:(n * windows)
        in
        let sigma2_l = traces.Workload.var_low
        and sigma2_h = traces.Workload.var_high in
        let scores = Workload.score traces ~features ~sample_size:n in
        let oracle = function
          | Adversary.Feature.Sample_mean ->
              Analytical.Bayes_numeric.sample_mean_exact
                ~sigma_l:(sqrt sigma2_l) ~sigma_h:(sqrt sigma2_h)
          | Adversary.Feature.Sample_variance ->
              Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l
                ~sigma2_h ~n
          | Adversary.Feature.Sample_entropy _ ->
              Analytical.Bayes_numeric.sample_entropy_normal_approx ~sigma2_l
                ~sigma2_h ~n
        in
        List.map
          (fun (s : Workload.scored) ->
            (Adversary.Feature.name s.feature, s.empirical, oracle s.feature))
          scores)
      [ () ]
  in
  let rows = List.concat (Sweep.ok_values cells) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation: KDE-Bayes adversary vs exact distributional oracle (n=%d)"
           n)
      ~columns:[ "feature"; "empirical (KDE)"; "oracle (exact law)" ]
  in
  List.iter
    (fun (name, emp, orc) ->
      Table.add_row table
        [ name; Printf.sprintf "%.3f" emp; Printf.sprintf "%.3f" orc ])
    rows;
  List.iter
    (fun (c : _ Sweep.cell) ->
      if c.Sweep.status <> Sweep.Point_ok then
        Table.add_row ~status:(Sweep.row_status c) table
          [ "all features"; "-"; "-" ])
    cells;
  Table.print table fmt;
  rows

let run_adaptive_vs_cit ?(scale = 1.0) ?(seed = 51_006) fmt =
  let n = 500 in
  let windows = Stdlib.max 8 (int_of_float (24.0 *. scale)) in
  let piats = n * windows in
  let schemes =
    [
      ("CIT", `Timer (Padding.Timer.Constant Calibration.timer_mean));
      ( "VIT(20us)",
        `Timer
          (Padding.Timer.Normal
             { mean = Calibration.timer_mean; sigma = 20e-6 }) );
      ("adaptive", `Adaptive);
    ]
  in
  let digest =
    Sweep.digest_of_string
      (Printf.sprintf "ablations.adaptive|seed=%d|n=%d|piats=%d|points=%s" seed
         n piats
         (String.concat "," (List.map fst schemes)))
  in
  let cells =
    Sweep.mapi ~sweep:"ablations.adaptive" ~digest ~seed
      ~task:(fun ~attempt i (name, scheme) ->
        let root = Sweep.attempt_seed ~seed:(seed + (100 * i)) ~attempt in
        let run_scheme rate seed =
          let cfg =
            {
              System.default_config with
              System.seed = seed;
              payload_rate_pps = rate;
            }
          in
          match scheme with
          | `Timer timer -> System.run { cfg with System.timer } ~piats
          | `Adaptive -> System.run_adaptive cfg ~piats
        in
        let low, high =
          Exec.Pool.both
            (fun () -> run_scheme Calibration.rate_low_pps root)
            (fun () -> run_scheme Calibration.rate_high_pps (root + 7919))
        in
        ignore (low.System.sim_time, high.System.sim_time);
        let classes =
          [|
            (Calibration.label_low, low.System.piats);
            (Calibration.label_high, high.System.piats);
          |]
        in
        let results =
          Adversary.Detection.estimate_features ~features
            ~reference:Calibration.timer_mean ~sample_size:n ~classes ()
        in
        let worst =
          List.fold_left
            (fun acc (r : Adversary.Detection.result) ->
              Float.max acc r.Adversary.Detection.detection_rate)
            0.5 results
        in
        let overhead =
          0.5 *. (low.System.overhead +. high.System.overhead)
        in
        (name, worst, overhead))
      schemes
  in
  let rows = Sweep.ok_values cells in
  let table =
    Table.create
      ~title:"Ablation: padding scheme vs detectability and bandwidth cost (n=500)"
      ~columns:[ "scheme"; "worst-feature detection"; "dummy overhead" ]
  in
  List.iter
    (fun (name, worst, overhead) ->
      Table.add_row table
        [ name; Printf.sprintf "%.3f" worst; Printf.sprintf "%.3f" overhead ])
    rows;
  List.iter2
    (fun (name, _) (c : _ Sweep.cell) ->
      if c.Sweep.status <> Sweep.Point_ok then
        Table.add_row ~status:(Sweep.row_status c) table [ name; "-"; "-" ])
    schemes cells;
  Table.print table fmt;
  rows
