(** Figure 4(b): detection rate vs. sample size for CIT padding without
    cross traffic (the adversary's best case), empirical KDE-Bayes
    classification vs. the closed-form theorems, for all three features.

    Expected shape: sample-mean flat near the 0.5 floor and independent of
    n; sample-variance and sample-entropy climbing to ≈1.0 by n = 1000. *)

type t = {
  r_hat : float;
  rows : Workload.scored list;   (** one row per (sample size, feature) *)
}

val default_sample_sizes : int list
(** 10, 20, 50, 100, 200, 400, 700, 1000 — the paper's log-ish sweep. *)

val run :
  ?scale:float ->
  ?seed:int ->
  ?sample_sizes:int list ->
  ?jitter:Padding.Jitter.t ->
  ?csv_dir:string ->
  Format.formatter ->
  t
(** Workload: 60 windows of the largest sample size per class (scaled,
    floor 8 windows).  [jitter] overrides the gateway model (used by the
    mechanistic-vs-parametric ablation).  Raises
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves. *)
