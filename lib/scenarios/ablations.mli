(** Ablation benches for the design choices DESIGN.md calls out.  Each
    [run_*] prints a table and returns the data it printed. *)

val run_jitter_models :
  ?scale:float -> ?seed:int -> Format.formatter -> (string * float * Workload.scored list) list
(** Mechanistic gateway model vs. the parametric N(0,σ) model the theory
    assumes, σ matched to the mechanistic calibration.  Returns
    (model name, r_hat, scores at n = 1000).  Shows the closed forms track
    both, i.e. the theorems only need the variance ratio.  Raises
    [Starvation.Tap_starved] / [Desim.Sim.Event_budget_exceeded] from the
    embedded calibration run and [Sweep.Sweep_internal_error] if the
    sweep journal layer misbehaves. *)

val run_vit_laws :
  ?scale:float -> ?seed:int -> Format.formatter -> (string * float * Workload.scored list) list
(** VIT interval law shape (normal / uniform / exponential) at matched σ_T:
    only σ_T matters, not the law's shape — supports the paper's reduction
    of VIT design to choosing σ_T.  Raises [Sweep.Sweep_internal_error]
    if the sweep journal layer misbehaves. *)

val run_entropy_bins :
  ?scale:float -> ?seed:int -> Format.formatter -> (float * float) list
(** Entropy-estimator bin-width sensitivity at n = 1000 under CIT:
    (bin width, empirical detection).  The feature works across a decade
    of bin widths — the robustness the paper claims for eq. (25).
    Raises [Sweep.Sweep_internal_error] if the sweep journal layer
    misbehaves. *)

val run_tap_positions :
  ?scale:float -> ?seed:int -> Format.formatter -> (int * float * Workload.scored list) list
(** Adversary position along a 3-router lab path at fixed utilization:
    detection decays with distance from the sender gateway (σ_net
    accumulates per hop) — the paper's location-matters observation.
    Raises [Sweep.Sweep_internal_error] if the sweep journal layer
    misbehaves. *)

val run_oracle_vs_kde :
  ?scale:float -> ?seed:int -> Format.formatter -> (string * float * float) list
(** Empirical KDE-Bayes detection vs. the exact distributional oracles
    ({!Analytical.Bayes_numeric}) at the measured sigmas, n = 200:
    (feature, empirical, oracle).  Quantifies how close the practical
    adversary gets to the information-theoretic bound.  Raises
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves. *)

val run_adaptive_vs_cit :
  ?scale:float -> ?seed:int -> Format.formatter -> (string * float * float) list
(** Timmerman-style adaptive masking vs. CIT vs. VIT: (scheme, worst
    empirical detection at n = 500, dummy overhead).  Adaptive masking
    saves bandwidth but is detectable even by the sample mean.  Raises
    [Sweep.Sweep_internal_error] if the sweep journal layer misbehaves. *)
