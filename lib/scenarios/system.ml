type payload_model = Poisson_payload | Cbr_payload

type config = {
  seed : int;
  timer : Padding.Timer.law;
  jitter : Padding.Jitter.t;
  payload_rate_pps : float;
  payload_model : payload_model;
  packet_size : int;
  hops : Netsim.Topology.hop_spec array;
  tap_position : int;
  warmup_piats : int;
}

let default_config =
  {
    seed = 42;
    timer = Padding.Timer.Constant 0.010;
    jitter = Padding.Jitter.mechanistic ();
    payload_rate_pps = 10.0;
    payload_model = Poisson_payload;
    packet_size = 500;
    hops = [||];
    tap_position = 0;
    warmup_piats = 200;
  }

type result = {
  piats : float array;
  timestamps : float array;
  overhead : float;
  payload_offered : int;
  payload_delivered : int;
  payload_dropped_gw : int;
  mean_payload_latency : float;
  sim_time : float;
}

let validate cfg =
  Padding.Timer.validate cfg.timer;
  if cfg.payload_rate_pps <= 0.0 then invalid_arg "System: payload_rate <= 0";
  if cfg.packet_size <= 0 then invalid_arg "System: packet_size <= 0";
  if cfg.warmup_piats < 0 then invalid_arg "System: warmup_piats < 0"

let start_payload_source sim ~model ~rng ~rate_pps ~size_bytes ~dest =
  match model with
  | Poisson_payload ->
      Netsim.Traffic_gen.poisson sim ~rng ~rate_pps ~size_bytes
        ~kind:Netsim.Packet.Payload ~dest ()
  | Cbr_payload ->
      Netsim.Traffic_gen.cbr sim ~rate_pps ~size_bytes
        ~kind:Netsim.Packet.Payload ~dest ()

(* Advance the simulation until the tap holds [target] timestamps; chunked
   so we stop close to (not far past) the goal.  Raises
   [Starvation.Tap_starved] when padded traffic stops reaching the tap. *)
let run_until_tap_count ~scenario sim ~tap ~target ~expected_rate =
  Starvation.run_until_tap_count ~scenario ~slack:1.1 ~min_chunk:0.1 sim ~tap
    ~target ~expected_rate

let trim_warmup cfg timestamps =
  (* Dropping the first (warmup+1) timestamps drops the first warmup PIATs. *)
  let drop = cfg.warmup_piats + 1 in
  let n = Array.length timestamps in
  if n <= drop then [||] else Array.sub timestamps drop (n - drop)

let piats_of_timestamps ts =
  let n = Array.length ts in
  if n < 2 then [||] else Array.init (n - 1) (fun i -> ts.(i + 1) -. ts.(i))

(* Supervision hook: when a sweep runner installed a per-task event
   budget (Exec.Supervise.with_event_budget), arm the simulator's
   watchdog so a pathological run raises Sim.Event_budget_exceeded
   instead of spinning.  Arena reuse resets the budget on acquire. *)
let arm_event_budget sim =
  match Exec.Supervise.current_event_budget () with
  | Some max_events -> Desim.Sim.set_event_budget sim ~max_events
  | None -> ()

let truncate_piats all_piats ~piats =
  if Array.length all_piats > piats then Array.sub all_piats 0 piats
  else all_piats

(* The classic event-driven path: wire up source -> gateway -> chain ->
   receiver as simulator records and dispatch events one at a time.
   Always correct; the fused-kernel path below must match it bit for
   bit.  Runs inside the caller's [Obs.Trace.with_run]. *)
let run_event_loop ~fresh_arena cfg ~piats ~target ~expected_rate =
  let arena = Arena.get ~fresh:fresh_arena in
  let sim = arena.Arena.sim in
  arm_event_budget sim;
  let root = Prng.Rng.create ~seed:cfg.seed in
  let rng_payload = Prng.Rng.split root in
  let rng_gateway = Prng.Rng.split root in
  let rng_cross = Prng.Rng.split root in
  let receiver = Padding.Receiver.create sim () in
  let topo =
    Netsim.Topology.chain sim ~rng:rng_cross ~hops:cfg.hops
      ~tap_position:cfg.tap_position
      ~tap_buffers:(Arena.tap_buffers arena)
      ~dest:(Padding.Receiver.port receiver)
      ()
  in
  let gateway =
    Padding.Gateway.create sim ~rng:rng_gateway ~timer:cfg.timer
      ~jitter:cfg.jitter ~packet_size:cfg.packet_size ~buffers:arena.Arena.gw
      ~dest:topo.Netsim.Topology.entry ()
  in
  let source =
    start_payload_source sim ~model:cfg.payload_model ~rng:rng_payload
      ~rate_pps:cfg.payload_rate_pps ~size_bytes:cfg.packet_size
      ~dest:(Padding.Gateway.input gateway)
  in
  run_until_tap_count ~scenario:"system.run" sim ~tap:topo.Netsim.Topology.tap
    ~target ~expected_rate;
  Netsim.Traffic_gen.stop source;
  Padding.Gateway.stop gateway;
  Netsim.Topology.stop_cross topo;
  Desim.Sim.publish_metrics sim;
  let timestamps = trim_warmup cfg (Netsim.Tap.timestamps topo.Netsim.Topology.tap) in
  {
    piats = truncate_piats (piats_of_timestamps timestamps) ~piats;
    timestamps;
    overhead = Padding.Gateway.overhead gateway;
    payload_offered = Netsim.Traffic_gen.generated source;
    payload_delivered = Padding.Receiver.payload_received receiver;
    payload_dropped_gw = Padding.Gateway.payload_dropped gateway;
    mean_payload_latency = Padding.Receiver.mean_payload_latency receiver;
    sim_time = Desim.Sim.now sim;
  }

(* Why a run is not kernel-eligible, or [None] when it is.  The fused
   kernels model Poisson payload and Poisson/absent cross traffic only;
   anything else (and a process-wide disable) takes the event loop. *)
let kernel_reason cfg =
  if not (Fastpath.enabled ()) then Some "disabled"
  else if cfg.payload_model <> Poisson_payload then Some "cbr_payload"
  else if not (Fastpath.eligible_hops cfg.hops) then Some "onoff_cross"
  else None

let run ?(fresh_arena = false) cfg ~piats =
  validate cfg;
  if piats < 1 then invalid_arg "System.run: piats < 1";
  Obs.Trace.with_run
    (Printf.sprintf "system.run seed=%d pps=%g" cfg.seed cfg.payload_rate_pps)
  @@ fun () ->
  (* [piats] gaps need piats + 1 timestamps after the trim drops
     warmup + 1 of them; chunked running may stop exactly on target. *)
  let target = piats + cfg.warmup_piats + 2 in
  let expected_rate = 1.0 /. Padding.Timer.mean cfg.timer in
  let event_loop () =
    run_event_loop ~fresh_arena cfg ~piats ~target ~expected_rate
  in
  match kernel_reason cfg with
  | Some reason ->
      Fastpath.note_fallback ~reason;
      event_loop ()
  | None -> (
      match
        Fastpath.try_run ~fresh_arena ~scenario:"system.run" ~seed:cfg.seed
          ~timer:cfg.timer ~jitter:cfg.jitter
          ~payload_rate_pps:cfg.payload_rate_pps ~packet_size:cfg.packet_size
          ~hops:cfg.hops ~tap_position:cfg.tap_position ~target ~expected_rate
      with
      | None ->
          (* A cross-stream time tie the kernel cannot order; nothing was
             published, so the event loop reruns the config cleanly. *)
          Fastpath.note_fallback ~reason:"tie";
          event_loop ()
      | Some o ->
          let timestamps = trim_warmup cfg o.Fastpath.timestamps in
          {
            piats = truncate_piats (piats_of_timestamps timestamps) ~piats;
            timestamps;
            overhead = o.Fastpath.overhead;
            payload_offered = o.Fastpath.payload_offered;
            payload_delivered = o.Fastpath.payload_delivered;
            (* [run] never sets a gateway queue limit, so the event loop
               cannot drop at the gateway either. *)
            payload_dropped_gw = 0;
            mean_payload_latency = o.Fastpath.mean_payload_latency;
            sim_time = o.Fastpath.sim_time;
          })

(* Intra-run domain sharding: one logical PIAT collection split into
   [shards] independent simulations with index-derived seeds, fanned out
   on [Exec.Pool] and merged in shard order.  The decomposition is a
   property of the run (the shard count and per-shard seeds never depend
   on the worker count), so the merged result is byte-identical at any
   [--jobs] — workers only change who executes which shard, never what a
   shard computes. *)
let run_sharded ?(fresh_arena = false) ?jobs ?(shards = 1) cfg ~piats =
  if shards < 1 then invalid_arg "System.run_sharded: shards < 1";
  if piats < shards then invalid_arg "System.run_sharded: piats < shards";
  if shards = 1 then run ~fresh_arena cfg ~piats
  else begin
    let chunk = (piats + shards - 1) / shards in
    let results =
      Exec.Pool.parallel_init ?jobs shards (fun i ->
          let piats_i = Stdlib.min chunk (piats - (i * chunk)) in
          run ~fresh_arena
            { cfg with seed = Prng.Rng.mix_seed cfg.seed i }
            ~piats:piats_i)
    in
    let total_piats =
      Array.fold_left (fun acc r -> acc + Array.length r.piats) 0 results
    in
    let piats_arr = Array.make total_piats 0.0 in
    let pos = ref 0 in
    Array.iter
      (fun r ->
        Array.blit r.piats 0 piats_arr !pos (Array.length r.piats);
        pos := !pos + Array.length r.piats)
      results;
    let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
    let sim_time = Array.fold_left (fun acc r -> acc +. r.sim_time) 0.0 results in
    (* Ratio metrics merge weighted: overhead by each shard's simulated
       time, latency by the payload packets actually delivered. *)
    let weighted num den =
      let d = Array.fold_left (fun acc r -> acc +. den r) 0.0 results in
      if d = 0.0 then 0.0
      else Array.fold_left (fun acc r -> acc +. (num r *. den r)) 0.0 results /. d
    in
    {
      piats = piats_arr;
      (* Per-shard clocks restart at 0; a concatenated timestamp series
         would be non-monotonic and meaningless, so the merged result
         carries none. *)
      timestamps = [||];
      overhead = weighted (fun r -> r.overhead) (fun r -> r.sim_time);
      payload_offered = sum (fun r -> r.payload_offered);
      payload_delivered = sum (fun r -> r.payload_delivered);
      payload_dropped_gw = sum (fun r -> r.payload_dropped_gw);
      mean_payload_latency =
        weighted
          (fun r -> r.mean_payload_latency)
          (fun r -> float_of_int r.payload_delivered);
      sim_time;
    }
  end

let run_mix ?(fresh_arena = false) ?(threshold = 8) ?(timeout = 0.5) cfg
    ~piats =
  validate cfg;
  if piats < 1 then invalid_arg "System.run_mix: piats < 1";
  Obs.Trace.with_run
    (Printf.sprintf "system.mix seed=%d pps=%g" cfg.seed cfg.payload_rate_pps)
  @@ fun () ->
  let arena = Arena.get ~fresh:fresh_arena in
  let sim = arena.Arena.sim in
  arm_event_budget sim;
  let root = Prng.Rng.create ~seed:cfg.seed in
  let rng_payload = Prng.Rng.split root in
  let rng_gateway = Prng.Rng.split root in
  let rng_cross = Prng.Rng.split root in
  let receiver = Padding.Receiver.create sim () in
  let topo =
    Netsim.Topology.chain sim ~rng:rng_cross ~hops:cfg.hops
      ~tap_position:cfg.tap_position
      ~tap_buffers:(Arena.tap_buffers arena)
      ~dest:(Padding.Receiver.port receiver)
      ()
  in
  let mix =
    Padding.Mix.create sim ~rng:rng_gateway ~threshold ~timeout
      ~packet_size:cfg.packet_size ~dest:topo.Netsim.Topology.entry ()
  in
  let source =
    start_payload_source sim ~model:cfg.payload_model ~rng:rng_payload
      ~rate_pps:cfg.payload_rate_pps ~size_bytes:cfg.packet_size
      ~dest:(Padding.Mix.input mix)
  in
  let target = piats + cfg.warmup_piats + 2 in
  (* Each timeout flush emits [threshold] packets, so the slowest possible
     wire rate is threshold/timeout. *)
  run_until_tap_count ~scenario:"system.mix" sim ~tap:topo.Netsim.Topology.tap
    ~target ~expected_rate:(float_of_int threshold /. timeout);
  Netsim.Traffic_gen.stop source;
  Padding.Mix.stop mix;
  Netsim.Topology.stop_cross topo;
  Desim.Sim.publish_metrics sim;
  let timestamps = trim_warmup cfg (Netsim.Tap.timestamps topo.Netsim.Topology.tap) in
  let all_piats = piats_of_timestamps timestamps in
  let piats_arr =
    if Array.length all_piats > piats then Array.sub all_piats 0 piats
    else all_piats
  in
  {
    piats = piats_arr;
    timestamps;
    overhead = Padding.Mix.overhead mix;
    payload_offered = Netsim.Traffic_gen.generated source;
    payload_delivered = Padding.Receiver.payload_received receiver;
    payload_dropped_gw = 0;
    mean_payload_latency = Padding.Receiver.mean_payload_latency receiver;
    sim_time = Desim.Sim.now sim;
  }

let run_adaptive ?(fresh_arena = false) ?(min_period = 0.010)
    ?(max_period = 0.040) cfg ~piats =
  validate cfg;
  if piats < 1 then invalid_arg "System.run_adaptive: piats < 1";
  Obs.Trace.with_run
    (Printf.sprintf "system.adaptive seed=%d pps=%g" cfg.seed
       cfg.payload_rate_pps)
  @@ fun () ->
  let arena = Arena.get ~fresh:fresh_arena in
  let sim = arena.Arena.sim in
  arm_event_budget sim;
  let root = Prng.Rng.create ~seed:cfg.seed in
  let rng_payload = Prng.Rng.split root in
  let rng_gateway = Prng.Rng.split root in
  let rng_cross = Prng.Rng.split root in
  let receiver = Padding.Receiver.create sim () in
  let topo =
    Netsim.Topology.chain sim ~rng:rng_cross ~hops:cfg.hops
      ~tap_position:cfg.tap_position
      ~tap_buffers:(Arena.tap_buffers arena)
      ~dest:(Padding.Receiver.port receiver)
      ()
  in
  let gateway =
    Padding.Adaptive.create sim ~rng:rng_gateway ~min_period ~max_period
      ~jitter:cfg.jitter ~packet_size:cfg.packet_size ~buffers:arena.Arena.gw
      ~dest:topo.Netsim.Topology.entry ()
  in
  let source =
    start_payload_source sim ~model:cfg.payload_model ~rng:rng_payload
      ~rate_pps:cfg.payload_rate_pps ~size_bytes:cfg.packet_size
      ~dest:(Padding.Adaptive.input gateway)
  in
  let target = piats + cfg.warmup_piats + 2 in
  (* Worst case the adaptive gateway idles at max_period. *)
  run_until_tap_count ~scenario:"system.adaptive" sim
    ~tap:topo.Netsim.Topology.tap ~target ~expected_rate:(1.0 /. max_period);
  Netsim.Traffic_gen.stop source;
  Padding.Adaptive.stop gateway;
  Netsim.Topology.stop_cross topo;
  Desim.Sim.publish_metrics sim;
  let timestamps = trim_warmup cfg (Netsim.Tap.timestamps topo.Netsim.Topology.tap) in
  let all_piats = piats_of_timestamps timestamps in
  let piats_arr =
    if Array.length all_piats > piats then Array.sub all_piats 0 piats
    else all_piats
  in
  {
    piats = piats_arr;
    timestamps;
    overhead = Padding.Adaptive.overhead gateway;
    payload_offered = Netsim.Traffic_gen.generated source;
    payload_delivered = Padding.Receiver.payload_received receiver;
    payload_dropped_gw = 0;
    mean_payload_latency = Padding.Receiver.mean_payload_latency receiver;
    sim_time = Desim.Sim.now sim;
  }

let run_unpadded ?(fresh_arena = false) cfg ~packets =
  validate cfg;
  if packets < 1 then invalid_arg "System.run_unpadded: packets < 1";
  Obs.Trace.with_run
    (Printf.sprintf "system.unpadded seed=%d pps=%g" cfg.seed
       cfg.payload_rate_pps)
  @@ fun () ->
  let arena = Arena.get ~fresh:fresh_arena in
  let sim = arena.Arena.sim in
  arm_event_budget sim;
  let root = Prng.Rng.create ~seed:cfg.seed in
  let rng_payload = Prng.Rng.split root in
  let _rng_gateway = Prng.Rng.split root in
  let rng_cross = Prng.Rng.split root in
  let receiver = Padding.Receiver.create sim () in
  let topo =
    Netsim.Topology.chain sim ~rng:rng_cross ~hops:cfg.hops
      ~tap_position:cfg.tap_position
      ~tap_buffers:(Arena.tap_buffers arena)
      ~dest:(Padding.Receiver.port receiver)
      ()
  in
  let source =
    start_payload_source sim ~model:cfg.payload_model ~rng:rng_payload
      ~rate_pps:cfg.payload_rate_pps ~size_bytes:cfg.packet_size
      ~dest:topo.Netsim.Topology.entry
  in
  let target = packets + cfg.warmup_piats + 2 in
  run_until_tap_count ~scenario:"system.unpadded" sim
    ~tap:topo.Netsim.Topology.tap ~target ~expected_rate:cfg.payload_rate_pps;
  Netsim.Traffic_gen.stop source;
  Netsim.Topology.stop_cross topo;
  Desim.Sim.publish_metrics sim;
  let timestamps = trim_warmup cfg (Netsim.Tap.timestamps topo.Netsim.Topology.tap) in
  {
    piats = piats_of_timestamps timestamps;
    timestamps;
    overhead = 0.0;
    payload_offered = Netsim.Traffic_gen.generated source;
    payload_delivered = Padding.Receiver.payload_received receiver;
    payload_dropped_gw = 0;
    mean_payload_latency = Padding.Receiver.mean_payload_latency receiver;
    sim_time = Desim.Sim.now sim;
  }
