(** Capture-file I/O — the simulated analogue of saving an analyzer dump.

    The adversary's workflow in the paper is offline: dump the padded
    traffic with a line analyzer, then analyze the timestamps later.
    These functions persist a tap's timestamp series to a small text
    format (one float per line, '#' comments, a header with metadata)
    so experiments can be split into capture and analysis phases, and
    traces can be diffed across runs. *)

type meta = {
  label : string;        (** free-form, e.g. the payload-rate class *)
  created_unix : float;  (** wall-clock stamp for provenance; 0 if unknown *)
}

val save : path:string -> meta:meta -> float array -> unit
(** Write timestamps (seconds, full precision) with a metadata header.
    Overwrites an existing file. *)

exception Parse_error of { path : string; line : int; msg : string }
(** Malformed capture content; carries the offending line number. *)

val load : path:string -> meta * float array
(** Parse a file produced by {!save}.  Raises {!Parse_error} on malformed
    content (with the offending line number), [Sys_error] on I/O. *)

val piats : float array -> float array
(** Consecutive differences; mirrors {!Tap.piats} for loaded traces. *)
