type cross_spec = {
  rate_pps : float;
  size_bytes : int;
  burst : [ `Poisson | `On_off of float * float * float option ];
}

type hop_spec = {
  bandwidth_bps : float;
  propagation : float;
  queue_limit : int option;
  cross : cross_spec option;
}

let default_hop ~bandwidth_bps =
  { bandwidth_bps; propagation = 0.0; queue_limit = None; cross = None }

type t = {
  entry : Link.port;
  tap : Tap.t;
  routers : Router.t array;
  cross_sources : Traffic_gen.t list;
  sink_count : unit -> int;
}

let start_cross sim ~rng ~spec ~dest =
  match spec.burst with
  | `Poisson ->
      Traffic_gen.poisson sim ~rng ~rate_pps:spec.rate_pps
        ~size_bytes:spec.size_bytes ~kind:Packet.Cross ~dest ()
  | `On_off (mean_on, mean_off, pareto_shape) ->
      (* rate_on is scaled up so the long-run average matches rate_pps. *)
      let duty = mean_on /. (mean_on +. mean_off) in
      Traffic_gen.on_off sim ~rng ~rate_on_pps:(spec.rate_pps /. duty) ~mean_on
        ~mean_off ?pareto_shape ~size_bytes:spec.size_bytes ~kind:Packet.Cross
        ~dest ()

let chain sim ~rng ~hops ~tap_position ?tap_buffers ?dest () =
  let n = Array.length hops in
  if tap_position < 0 || tap_position > n then
    invalid_arg "Topology.chain: tap_position out of range";
  let make_tap dest = Tap.create sim ?buffers:tap_buffers ~dest () in
  let received = ref 0 in
  let sink pkt =
    if Packet.is_padded pkt then incr received;
    match dest with Some d -> d pkt | None -> ()
  in
  (* Build back to front so each hop knows its downstream port. *)
  let routers = Array.make n None in
  let cross_sources = ref [] in
  let tap = ref None in
  let downstream = ref sink in
  for i = n - 1 downto 0 do
    (* Tap in front of hop i+1 (i.e. after hop i) is installed when we are
       at position i+1 in the walk; handle the "after last hop" spot first. *)
    if tap_position = i + 1 then begin
      let t = make_tap !downstream in
      tap := Some t;
      downstream := Tap.port t
    end;
    let spec = hops.(i) in
    let router =
      Router.create sim ~bandwidth_bps:spec.bandwidth_bps
        ~propagation:spec.propagation ?queue_limit:spec.queue_limit
        ~dest:!downstream ()
    in
    routers.(i) <- Some router;
    (match spec.cross with
    | None -> ()
    | Some cross ->
        let child = Prng.Rng.split rng in
        cross_sources :=
          start_cross sim ~rng:child ~spec:cross ~dest:(Router.port router)
          :: !cross_sources);
    downstream := Router.port router
  done;
  if tap_position = 0 then begin
    let t = make_tap !downstream in
    tap := Some t;
    downstream := Tap.port t
  end;
  let tap =
    match !tap with
    | Some t -> t
    | None ->
        (* Unreachable: every valid position installs a tap. *)
        assert false
  in
  {
    entry = !downstream;
    tap;
    routers = Array.map Option.get routers;
    cross_sources = !cross_sources;
    sink_count = (fun () -> !received);
  }

let h_utilization = Obs.Metrics.histogram "netsim.link.utilization"

let stop_cross t =
  (* End-of-run hook for every scenario: fold each hop's lifetime
     utilization into the registry while the links are still in scope. *)
  Array.iter
    (fun r -> Obs.Metrics.observe h_utilization (Link.utilization (Router.link r)))
    t.routers;
  List.iter Traffic_gen.stop t.cross_sources
