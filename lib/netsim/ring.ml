type 'a t = {
  mutable data : 'a array; (* empty until the first push *)
  mutable head : int;
  mutable len : int;
}

let create () = { data = [||]; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Called with the value being pushed so the storage can be seeded
   without a dummy; also handles the initial empty-array state. *)
let grow t seed =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  let data = Array.make new_cap seed in
  let first = Stdlib.min t.len (cap - t.head) in
  Array.blit t.data t.head data 0 first;
  Array.blit t.data 0 data first (t.len - first);
  t.data <- data;
  t.head <- 0

let push t x =
  if t.len = Array.length t.data then grow t x;
  let cap = Array.length t.data in
  let i = t.head + t.len in
  let i = if i >= cap then i - cap else i in
  t.data.(i) <- x;
  t.len <- t.len + 1

let peek t =
  if t.len = 0 then invalid_arg "Ring.peek: empty";
  t.data.(t.head)

let pop t =
  if t.len = 0 then invalid_arg "Ring.pop: empty";
  let x = t.data.(t.head) in
  let head = t.head + 1 in
  t.head <- (if head = Array.length t.data then 0 else head);
  t.len <- t.len - 1;
  x

let clear t =
  t.head <- 0;
  t.len <- 0
