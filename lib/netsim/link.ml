type port = Packet.t -> unit

type t = {
  sim : Desim.Sim.t;
  bandwidth_bps : float;
  propagation : float;
  queue_limit : int option;
  dest : port;
  created_at : float;
  mutable busy_until : float;
  mutable queue_depth : int;
  mutable queue_hwm : int;
  mutable sent : int;
  mutable dropped : int;
  mutable busy_time : float;
}

let m_enqueued = Obs.Metrics.counter "netsim.link.enqueued"
let m_dropped = Obs.Metrics.counter "netsim.link.dropped"
let g_queue_hwm = Obs.Metrics.gauge "netsim.link.queue_hwm"

let create sim ~bandwidth_bps ?(propagation = 0.0) ?queue_limit ~dest () =
  if bandwidth_bps <= 0.0 then invalid_arg "Link.create: bandwidth <= 0";
  if propagation < 0.0 then invalid_arg "Link.create: propagation < 0";
  (match queue_limit with
  | Some l when l < 1 -> invalid_arg "Link.create: queue_limit < 1"
  | _ -> ());
  {
    sim;
    bandwidth_bps;
    propagation;
    queue_limit;
    dest;
    created_at = Desim.Sim.now sim;
    busy_until = Desim.Sim.now sim;
    queue_depth = 0;
    queue_hwm = 0;
    sent = 0;
    dropped = 0;
    busy_time = 0.0;
  }

let send t pkt =
  let now = Desim.Sim.now t.sim in
  let over_limit =
    match t.queue_limit with Some l -> t.queue_depth >= l | None -> false
  in
  if over_limit then begin
    t.dropped <- t.dropped + 1;
    Obs.Metrics.incr m_dropped;
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"packet.dropped" ~t:now
        [
          ("cause", Obs.Trace.S "link_queue");
          ("kind", Obs.Trace.S (Packet.kind_to_string pkt.Packet.kind));
        ]
  end
  else begin
    let start = Float.max now t.busy_until in
    let tx = float_of_int pkt.Packet.size_bytes *. 8.0 /. t.bandwidth_bps in
    let finish = start +. tx in
    t.busy_until <- finish;
    t.busy_time <- t.busy_time +. tx;
    t.queue_depth <- t.queue_depth + 1;
    Obs.Metrics.incr m_enqueued;
    if t.queue_depth > t.queue_hwm then begin
      t.queue_hwm <- t.queue_depth;
      Obs.Metrics.observe_hwm g_queue_hwm (float_of_int t.queue_depth)
    end;
    (* The packet leaves the transmitter (and the queue) at [finish]; it
       reaches the far end one propagation delay later.  Fuse the two
       events when there is no propagation delay — that halves the event
       count on the hot zero-delay hops. *)
    if t.propagation = 0.0 then
      ignore
        (Desim.Sim.at t.sim ~time:finish (fun () ->
             t.queue_depth <- t.queue_depth - 1;
             t.sent <- t.sent + 1;
             t.dest pkt)
          : Desim.Sim.handle)
    else begin
      ignore
        (Desim.Sim.at t.sim ~time:finish (fun () ->
             t.queue_depth <- t.queue_depth - 1;
             t.sent <- t.sent + 1)
          : Desim.Sim.handle);
      let arrival = finish +. t.propagation in
      ignore
        (Desim.Sim.at t.sim ~time:arrival (fun () -> t.dest pkt)
          : Desim.Sim.handle)
    end
  end

let port t = send t
let sent t = t.sent
let dropped t = t.dropped
let queue_depth t = t.queue_depth
let busy_until t = t.busy_until

let utilization t =
  let elapsed = Desim.Sim.now t.sim -. t.created_at in
  if elapsed <= 0.0 then 0.0
  else
    (* busy_time counts scheduled transmissions, possibly beyond now;
       clip to the elapsed window. *)
    let future = Float.max 0.0 (t.busy_until -. Desim.Sim.now t.sim) in
    Float.min 1.0 ((t.busy_time -. future) /. elapsed)
