(** Fused chain-hop kernel: one hop's {!Link} + {!Router} + Poisson
    cross source executed as a batch loop instead of discrete events.

    Per chunk the stage merges the padded sends handed down by the
    upstream stage with the hop's own pre-generated cross arrivals and
    the pending transmit-finish / propagation-delivery trains, replaying
    {!Link.send}'s float arithmetic exactly — same busy-interval
    accumulation, same drop decisions, same counters.  Packets are
    (time, tag) float pairs: payload tag = creation time, dummy = NaN,
    cross = -inf; cross packets are diverted at the link exit exactly as
    the router does.  Scratch is reusable across runs and the
    steady-state loop performs no allocation. *)

exception Tie
(** An exact time tie between two distinct pending streams — ordered by
    queue sequence in the event loop, not reproducible here.  The
    orchestrator catches this and falls back to the event loop. *)

type t

val create : unit -> t
(** Allocate reusable scratch storage.  One per hop slot in the arena;
    reconfigured per run. *)

val configure :
  t ->
  bandwidth_bps:float ->
  propagation:float ->
  queue_limit:int option ->
  packet_size:int ->
  cross:(Prng.Rng.t * float * int) option ->
  in_t:Fvec.t ->
  in_tag:Fvec.t ->
  unit
(** Reset for a new run at simulated time 0.  [cross] is
    [(rng, rate_pps, size_bytes)] for a Poisson cross source whose
    [rng] must be the same split-off child the event-loop topology would
    hand it (chain order: hops with cross traffic, back to front); the
    first block of inter-arrival draws is pre-filled here.  [in_t] /
    [in_tag] are the upstream stage's chunk-output buffers, consumed in
    full on every {!advance}. *)

val advance : t -> until:float -> unit
(** Process every input send, cross arrival, transmit finish and far-end
    delivery with timestamp <= [until], in time order.  Padded
    deliveries of the chunk are appended to {!out_times} / {!out_tags}
    (cleared on entry).  Raises {!Tie} on any exact cross-stream time
    tie. *)

val out_times : t -> Fvec.t
val out_tags : t -> Fvec.t
(** This chunk's padded deliveries to the next stage, time-ordered. *)

val trace : t -> Tracebuf.t
(** Whole-run deferred [packet.dropped] records. *)

val chunk_events : t -> int
(** Events the event loop would have dispatched for the last {!advance}
    chunk (cross arrivals + finishes + deliveries; input sends happen
    inside the upstream stage's events and are counted there). *)

val sent : t -> int
val dropped : t -> int
val enqueued : t -> int

val queue_hwm : t -> int
(** Exact link-queue depth high-water mark (the
    [netsim.link.queue_hwm] gauge observation). *)

val diverted : t -> int

val max_pending : t -> int
(** High-water mark of pending finish + delivery trains (run scope),
    an input to the orchestrator's event-queue-depth surrogate. *)

val utilization : t -> now:float -> float
(** {!Link.utilization} evaluated with identical float expressions at
    simulated time [now]. *)
