(** Growable float vector — timestamp traces can run to millions of entries,
    so boxing-free storage matters. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> float -> unit
val get : t -> int -> float
(** Raises on out-of-range index. *)

val unsafe_get : t -> int -> float
(** Unchecked read for hot loops that already bound the index by
    {!length} — the fused kernels' stream-consumption path. *)

val to_array : t -> float array
val last : t -> float option
val clear : t -> unit
