(** Deferred ta-trace/1 events for the fused scenario kernels.

    Kernel stages must not write to the live trace buffer while they run:
    a mid-run ordering tie forces a fallback to the event loop, and any
    events already emitted would then be duplicated by the rerun.  Stages
    instead record would-be events here — float-encoded, allocation-free —
    and the orchestrator replays the merged buffers through
    {!Obs.Trace.event} exactly once, transactionally, at flush time.

    Every entry carries a [key]: the simulated time of the event-loop
    event during which the record would have been inserted (insertion
    order, not display order — a gateway fire inserts its [packet.sent]
    record, stamped with the later emit time, at fire time).  Within one
    buffer, entries are pushed in processing order and keys are
    monotone; merging buffers by key reproduces the event loop's
    insertion order whenever no two buffers share an exact key. *)

type t

val create : unit -> t
val clear : t -> unit
val length : t -> int

val push : t -> key:float -> code:float -> x:float -> y:float -> unit
(** Append one deferred event.  [code] is one of the constants below;
    [x]/[y] are per-code payload fields (see {!emit}). *)

val key : t -> int -> float
(** Insertion-time key of entry [i] (unchecked; [i < length t]). *)

val emit : t -> int -> unit
(** Replay entry [i] through {!Obs.Trace.event}. *)

(** Entry codes (floats so buffers stay unboxed). *)

val timer_fire : float
(** [x] = gateway queue length after the pop; displayed at [key]. *)

val sent_payload : float
val sent_dummy : float
(** [x] = size in bytes, [y] = emit time (the displayed timestamp). *)

val observe_payload : float
val observe_dummy : float
(** [x] = size in bytes; displayed at [key]. *)

val drop_payload : float
val drop_dummy : float
val drop_cross : float
(** Link-queue drop of the given kind; displayed at [key]. *)
