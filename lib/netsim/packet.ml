type kind = Payload | Dummy | Cross

type t = { id : int; kind : kind; size_bytes : int; created : float }

(* Ids must be race-free when simulations run on Exec.Pool domains;
   Atomic is the sanctioned shared cell.  Ids are process-unique, never
   published in tables or traces, so the allocation order across domains
   cannot leak into any output. *)
let counter = Atomic.make 0

let make ~kind ~size_bytes ~created =
  if size_bytes <= 0 then invalid_arg "Packet.make: size_bytes <= 0";
  { id = Atomic.fetch_and_add counter 1 + 1; kind; size_bytes; created }

let kind_to_string = function
  | Payload -> "payload"
  | Dummy -> "dummy"
  | Cross -> "cross"

let is_padded t = match t.kind with Payload | Dummy -> true | Cross -> false
