type kind = Payload | Dummy | Cross

type t = { id : int; kind : kind; size_bytes : int; created : float }

(* Ids must be race-free when simulations run on Exec.Pool domains;
   Atomic is the sanctioned shared cell.  Ids are process-unique, never
   published in tables or traces, so the allocation order across domains
   cannot leak into any output. *)
let counter = Atomic.make 0

let make ~kind ~size_bytes ~created =
  if size_bytes <= 0 then invalid_arg "Packet.make: size_bytes <= 0";
  { id = Atomic.fetch_and_add counter 1 + 1; kind; size_bytes; created }

(* Per-source id generator: grabs [block]-sized ranges from the shared
   counter so the per-packet cost is a local bump instead of a contended
   fetch_and_add — under domain-pool fan-out every worker hammers the
   packet path at once.  Ranges are disjoint, so ids stay process-unique;
   within one generator they stay creation-ordered. *)
module Id_gen = struct
  type gen = { mutable next : int; mutable limit : int }

  let block = 256

  let create () = { next = 0; limit = 0 }

  let next g =
    if g.next >= g.limit then begin
      let base = Atomic.fetch_and_add counter block in
      g.next <- base;
      g.limit <- base + block
    end;
    let id = g.next + 1 in
    g.next <- id;
    id
end

let make_gen g ~kind ~size_bytes ~created =
  if size_bytes <= 0 then invalid_arg "Packet.make_gen: size_bytes <= 0";
  { id = Id_gen.next g; kind; size_bytes; created }

let kind_to_string = function
  | Payload -> "payload"
  | Dummy -> "dummy"
  | Cross -> "cross"

let is_padded t = match t.kind with Payload | Dummy -> true | Cross -> false
