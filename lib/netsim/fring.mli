(** Unboxed float FIFO ring buffer.

    Replaces [float Queue.t] on per-packet paths: a [Queue] allocates a
    cell plus a boxed float per push, while the ring's steady state
    performs none — the backing [floatarray] only reallocates on
    geometric growth and is kept across {!clear} for arena reuse. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> float -> unit
(** Append at the back; grows the backing store when full. *)

val peek : t -> float
(** Front element.  Raises [Invalid_argument] when empty. *)

val pop : t -> float
(** Remove and return the front element.  Raises [Invalid_argument] when
    empty. *)

val clear : t -> unit
(** Empty the ring, keeping its capacity. *)
