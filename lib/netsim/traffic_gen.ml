type t = {
  mutable stopped : bool;
  mutable generated : int;
  mutable handle : Desim.Sim.handle option;
  gen : Packet.Id_gen.gen;
}

let stop t =
  t.stopped <- true;
  match t.handle with
  | Some h ->
      Desim.Sim.cancel h;
      t.handle <- None
  | None -> ()

let generated t = t.generated

let emit sim t ~size_bytes ~kind ~dest =
  t.generated <- t.generated + 1;
  dest (Packet.make_gen t.gen ~kind ~size_bytes ~created:(Desim.Sim.now sim))

let source () =
  { stopped = false; generated = 0; handle = None; gen = Packet.Id_gen.create () }

let cbr sim ~rate_pps ~size_bytes ~kind ~dest () =
  if rate_pps <= 0.0 then invalid_arg "Traffic_gen.cbr: rate <= 0";
  let t = source () in
  let period = 1.0 /. rate_pps in
  t.handle <-
    Some
      (Desim.Sim.every sim
         ~interval:(fun () -> period)
         (fun () -> emit sim t ~size_bytes ~kind ~dest));
  t

let poisson sim ~rng ~rate_pps ~size_bytes ~kind ~dest () =
  if rate_pps <= 0.0 then invalid_arg "Traffic_gen.poisson: rate <= 0";
  let t = source () in
  t.handle <-
    Some
      (Desim.Sim.every sim
         ~interval:(fun () -> Prng.Sampler.exponential rng ~rate:rate_pps)
         (fun () -> emit sim t ~size_bytes ~kind ~dest));
  t

let poisson_sized sim ~rng ~rate_pps ~size_of ~kind ~dest () =
  if rate_pps <= 0.0 then invalid_arg "Traffic_gen.poisson_sized: rate <= 0";
  let t = source () in
  t.handle <-
    Some
      (Desim.Sim.every sim
         ~interval:(fun () -> Prng.Sampler.exponential rng ~rate:rate_pps)
         (fun () -> emit sim t ~size_bytes:(size_of rng) ~kind ~dest));
  t

let on_off sim ~rng ~rate_on_pps ~mean_on ~mean_off ?pareto_shape ~size_bytes
    ~kind ~dest () =
  if rate_on_pps <= 0.0 then invalid_arg "Traffic_gen.on_off: rate <= 0";
  if mean_on <= 0.0 || mean_off <= 0.0 then
    invalid_arg "Traffic_gen.on_off: period means must be positive";
  let draw_period mean =
    match pareto_shape with
    | None -> Prng.Sampler.exponential rng ~rate:(1.0 /. mean)
    | Some shape ->
        if shape <= 1.0 then invalid_arg "Traffic_gen.on_off: pareto_shape <= 1";
        (* Pareto scale chosen so the mean equals [mean]. *)
        let scale = mean *. (shape -. 1.0) /. shape in
        Prng.Sampler.pareto rng ~shape ~scale
  in
  let t = source () in
  (* Alternate phases; within ON, Poisson emission until the phase budget
     is exhausted. *)
  let rec start_on () =
    if not t.stopped then begin
      let phase_end = Desim.Sim.now sim +. draw_period mean_on in
      let rec burst () =
        if not t.stopped then begin
          if Desim.Sim.now sim < phase_end then begin
            emit sim t ~size_bytes ~kind ~dest;
            ignore
              (Desim.Sim.after sim
                 ~delay:(Prng.Sampler.exponential rng ~rate:rate_on_pps)
                 burst
                : Desim.Sim.handle)
          end
          else start_off ()
        end
      in
      ignore
        (Desim.Sim.after sim
           ~delay:(Prng.Sampler.exponential rng ~rate:rate_on_pps)
           burst
          : Desim.Sim.handle)
    end
  and start_off () =
    if not t.stopped then
      ignore
        (Desim.Sim.after sim ~delay:(draw_period mean_off) start_on
          : Desim.Sim.handle)
  in
  start_on ();
  t

(* Lewis–Shedler thinning: candidate events at rate_max, accepted with
   probability rate_fn(now)/rate_max.  One reusable event record drives
   the candidate train; acceptance happens in the body.  The draw order
   (interval, then acceptance, from one rng) is part of the reproducible
   stream and shared by both modulated sources below. *)
let thinned sim ~rng ~rate_fn ~rate_max ~name ~accept =
  Desim.Sim.every sim
    ~interval:(fun () -> Prng.Sampler.exponential rng ~rate:rate_max)
    (fun () ->
      let now = Desim.Sim.now sim in
      let rate = rate_fn now in
      if rate < 0.0 || rate > rate_max then
        invalid_arg (name ^ ": rate_fn out of [0, rate_max]");
      if Prng.Rng.float rng < rate /. rate_max then accept now)

let modulated_poisson sim ~rng ~rate_fn ~rate_max ~size_bytes ~kind ~dest () =
  if rate_max <= 0.0 then invalid_arg "Traffic_gen.modulated_poisson: rate_max <= 0";
  let t = source () in
  t.handle <-
    Some
      (thinned sim ~rng ~rate_fn ~rate_max
         ~name:"Traffic_gen.modulated_poisson"
         ~accept:(fun _now -> emit sim t ~size_bytes ~kind ~dest));
  t

let modulated_arrivals sim ~rng ~rate_fn ~rate_max ~f () =
  if rate_max <= 0.0 then
    invalid_arg "Traffic_gen.modulated_arrivals: rate_max <= 0";
  let t = source () in
  t.handle <-
    Some
      (thinned sim ~rng ~rate_fn ~rate_max
         ~name:"Traffic_gen.modulated_arrivals"
         ~accept:(fun now ->
           t.generated <- t.generated + 1;
           f now));
  t
