(* Deferred ta-trace/1 events for the fused kernels.

   The event loop appends trace events to the per-run buffer in event
   *processing* order, which is not sorted by the displayed timestamp
   (a gateway fire inserts its packet.sent record — stamped with the
   later emit time — at fire-processing time).  A kernel stage therefore
   records, for every would-be trace event, the simulated time of the
   loop event during which the record would have been inserted ([key])
   alongside the displayed payload; the orchestrator merges the stage
   buffers by key at flush time and falls back to the event loop on any
   cross-stage key collision it cannot order. *)

let timer_fire = 0.0
let sent_payload = 1.0
let sent_dummy = 2.0
let observe_payload = 3.0
let observe_dummy = 4.0
let drop_payload = 5.0
let drop_dummy = 6.0
let drop_cross = 7.0

type t = { keys : Fvec.t; codes : Fvec.t; xs : Fvec.t; ys : Fvec.t }

let create () =
  {
    keys = Fvec.create ~capacity:64 ();
    codes = Fvec.create ~capacity:64 ();
    xs = Fvec.create ~capacity:64 ();
    ys = Fvec.create ~capacity:64 ();
  }

let clear t =
  Fvec.clear t.keys;
  Fvec.clear t.codes;
  Fvec.clear t.xs;
  Fvec.clear t.ys

let length t = Fvec.length t.keys

let push t ~key ~code ~x ~y =
  Fvec.push t.keys key;
  Fvec.push t.codes code;
  Fvec.push t.xs x;
  Fvec.push t.ys y

let key t i = Fvec.unsafe_get t.keys i

(* Replay entry [i] through the live trace sink.  Field layout per code:
   timer_fire      x = queue length after the pop, y unused (displayed at key)
   sent_*          x = size_bytes,                 y = emit time (displayed)
   observe_*       x = size_bytes                  (displayed at key)
   drop_*          (displayed at key) *)
let emit t i =
  let key = Fvec.get t.keys i in
  let code = Fvec.get t.codes i in
  let x = Fvec.get t.xs i in
  let y = Fvec.get t.ys i in
  if code = timer_fire then
    Obs.Trace.event ~name:"timer.fire" ~t:key
      [ ("q", Obs.Trace.I (int_of_float x)) ]
  else if code = sent_payload || code = sent_dummy then
    Obs.Trace.event ~name:"packet.sent" ~t:y
      [
        ( "kind",
          Obs.Trace.S (if code = sent_payload then "payload" else "dummy") );
        ("size", Obs.Trace.I (int_of_float x));
      ]
  else if code = observe_payload || code = observe_dummy then
    Obs.Trace.event ~name:"tap.observe" ~t:key
      [
        ( "kind",
          Obs.Trace.S (if code = observe_payload then "payload" else "dummy") );
        ("size", Obs.Trace.I (int_of_float x));
      ]
  else
    Obs.Trace.event ~name:"packet.dropped" ~t:key
      [
        ("cause", Obs.Trace.S "link_queue");
        ( "kind",
          Obs.Trace.S
            (if code = drop_payload then "payload"
             else if code = drop_dummy then "dummy"
             else "cross") );
      ]
