type t = {
  sim : Desim.Sim.t;
  accept : Packet.t -> bool;
  dest : Link.port;
  times : Fvec.t;
  sizes : Fvec.t;
}

(* [buffers] lets a sweep harness hand the tap already-grown Fvecs from a
   previous run (cleared here), so repeated runs stop re-growing the
   recording arrays from scratch. *)
let create sim ?(accept = Packet.is_padded) ?buffers ~dest () =
  let times, sizes =
    match buffers with
    | Some (times, sizes) ->
        Fvec.clear times;
        Fvec.clear sizes;
        (times, sizes)
    | None -> (Fvec.create ~capacity:1024 (), Fvec.create ~capacity:1024 ())
  in
  { sim; accept; dest; times; sizes }

let m_observed = Obs.Metrics.counter "netsim.tap.observed"
let m_payload = Obs.Metrics.counter "netsim.tap.payload"
let m_dummy = Obs.Metrics.counter "netsim.tap.dummy"

let port t pkt =
  if t.accept pkt then begin
    Obs.Metrics.incr m_observed;
    (match pkt.Packet.kind with
    | Packet.Payload -> Obs.Metrics.incr m_payload
    | Packet.Dummy -> Obs.Metrics.incr m_dummy
    | Packet.Cross -> ());
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"tap.observe" ~t:(Desim.Sim.now t.sim)
        [
          ("kind", Obs.Trace.S (Packet.kind_to_string pkt.Packet.kind));
          ("size", Obs.Trace.I pkt.Packet.size_bytes);
        ];
    Fvec.push t.times (Desim.Sim.now t.sim);
    Fvec.push t.sizes (float_of_int pkt.Packet.size_bytes)
  end;
  t.dest pkt

(* Batched counter flush for the fused kernels: they record observation
   timestamps straight into arena Fvecs and fold the per-packet counter
   increments into one transactional add per run. *)
let note_batch ~observed ~payload ~dummy =
  if observed < 0 || payload < 0 || dummy < 0 then
    invalid_arg "Tap.note_batch: negative count";
  Obs.Metrics.add m_observed observed;
  Obs.Metrics.add m_payload payload;
  Obs.Metrics.add m_dummy dummy

let count t = Fvec.length t.times
let timestamps t = Fvec.to_array t.times
let sizes t = Array.map int_of_float (Fvec.to_array t.sizes)

let piats t =
  let n = Fvec.length t.times in
  if n < 2 then [||]
  else
    Array.init (n - 1) (fun i -> Fvec.get t.times (i + 1) -. Fvec.get t.times i)

let clear t =
  Fvec.clear t.times;
  Fvec.clear t.sizes
