(** Network packets.

    The padded stream consists of [Payload] and [Dummy] packets of one
    constant size (paper §3.2 assumption (3)); [Cross] packets model the
    competing traffic that creates δ_net.  Contents are "encrypted": no
    component downstream of the sender gateway — in particular the
    adversary's tap — may branch on [kind] of a padded packet; the type is
    carried only for accounting and for tests. *)

type kind = Payload | Dummy | Cross

type t = {
  id : int;            (** process-unique; creation-ordered per source *)
  kind : kind;
  size_bytes : int;
  created : float;     (** simulation time of creation *)
}

val make : kind:kind -> size_bytes:int -> created:float -> t
(** Allocates a fresh id from the shared counter.  [size_bytes > 0]. *)

module Id_gen : sig
  type gen
  (** A per-source id allocator: reserves disjoint blocks of ids from the
      shared counter so hot paths pay one atomic operation per block
      instead of per packet.  Not thread-safe — one generator per
      source, sources live on one domain. *)

  val create : unit -> gen
end

val make_gen : Id_gen.gen -> kind:kind -> size_bytes:int -> created:float -> t
(** Like {!make} but draws the id from a per-source generator; the fast
    path for traffic sources that emit millions of packets. *)

val kind_to_string : kind -> string
val is_padded : t -> bool
(** True for [Payload] and [Dummy] — the stream the adversary observes. *)
