type t = { mutable data : float array; mutable len : int }

let create ?(capacity = 64) () =
  { data = Array.make (Stdlib.max capacity 1) 0.0; len = 0 }

let length t = t.len

let push t x =
  if t.len = Array.length t.data then begin
    let data = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Fvec.get: index out of range";
  t.data.(i)

let unsafe_get t i = Array.unsafe_get t.data i

let to_array t = Array.sub t.data 0 t.len
let last t = if t.len = 0 then None else Some t.data.(t.len - 1)
let clear t = t.len <- 0
