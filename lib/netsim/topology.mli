(** Assembly of multi-hop paths: sender gateway → router chain → receiver.

    Each hop is a {!Router} with an optional cross-traffic source feeding
    the same output link; the adversary's tap can be spliced in front of
    any hop (position 0 = right at the sender gateway output, the paper's
    "best case for the adversary") or after the last hop (in front of the
    receiver gateway, the campus/WAN placement). *)

type cross_spec = {
  rate_pps : float;        (** average cross packet rate into this hop *)
  size_bytes : int;
  burst : [ `Poisson | `On_off of float * float * float option ]
      (** [`On_off (mean_on, mean_off, pareto_shape)] *)
}

type hop_spec = {
  bandwidth_bps : float;
  propagation : float;
  queue_limit : int option;
  cross : cross_spec option;
}

val default_hop : bandwidth_bps:float -> hop_spec
(** No cross traffic, zero propagation, unbounded queue. *)

type t = {
  entry : Link.port;        (** where the sender gateway pushes packets *)
  tap : Tap.t;              (** the adversary's observation point *)
  routers : Router.t array;
  cross_sources : Traffic_gen.t list;
  sink_count : unit -> int; (** padded packets that reached the far end *)
}

val chain :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  hops:hop_spec array ->
  tap_position:int ->
  ?tap_buffers:Fvec.t * Fvec.t ->
  ?dest:Link.port ->
  unit ->
  t
(** [chain sim ~rng ~hops ~tap_position ()] builds the path.  The tap sits
    in front of hop [tap_position] (so 0 observes the traffic exactly as it
    leaves the sender gateway); [tap_position = Array.length hops] places it
    after the final hop.  Raises [Invalid_argument] on an out-of-range
    position.  Cross sources are driven by children split from [rng].
    Packets surviving the last hop go to [dest] (default: a counting-only
    sink); [sink_count] counts padded packets reaching the far end either
    way.  [tap_buffers] is handed to {!Tap.create} for recording-storage
    reuse across runs. *)

val stop_cross : t -> unit
(** Stop all cross-traffic sources (used between experiment phases). *)
