type t = {
  mutable data : floatarray;
  mutable head : int; (* index of the front element *)
  mutable len : int;
}

let create ?(capacity = 16) () =
  { data = Float.Array.create (Stdlib.max capacity 1); head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Float.Array.length t.data in
  let data = Float.Array.create (2 * cap) in
  (* Unroll the wrap-around into a flat prefix. *)
  let first = Stdlib.min t.len (cap - t.head) in
  Float.Array.blit t.data t.head data 0 first;
  Float.Array.blit t.data 0 data first (t.len - first);
  t.data <- data;
  t.head <- 0

let push t x =
  if t.len = Float.Array.length t.data then grow t;
  let cap = Float.Array.length t.data in
  let i = t.head + t.len in
  let i = if i >= cap then i - cap else i in
  Float.Array.set t.data i x;
  t.len <- t.len + 1

let peek t =
  if t.len = 0 then invalid_arg "Fring.peek: empty";
  Float.Array.get t.data t.head

let pop t =
  if t.len = 0 then invalid_arg "Fring.pop: empty";
  let x = Float.Array.get t.data t.head in
  let head = t.head + 1 in
  t.head <- (if head = Float.Array.length t.data then 0 else head);
  t.len <- t.len - 1;
  x

let clear t =
  t.head <- 0;
  t.len <- 0
