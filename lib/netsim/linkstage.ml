(* Fused per-hop stage: one chain hop's {Link + Router + cross source}
   executed as a batch loop instead of discrete events.

   Per chunk the stage merges four time-ordered streams — padded sends
   handed down by the upstream stage, this hop's own Poisson cross
   arrivals (pre-generated in blocks from the hop's split-off RNG), and
   the pending transmit-finish / propagation-delivery trains — and
   replays exactly the float arithmetic of [Link.send] and its scheduled
   callbacks.  Packets are (time, tag) float pairs: a payload's tag is
   its creation time (finite, >= 0), a dummy's is NaN, cross traffic's is
   -inf; nothing else about a packet is observable downstream of the
   gateway.

   Exactness over speed: any exact time tie between two pending streams
   could be ordered either way by the event loop's (time, seq) tie-break,
   so the stage raises {!Tie} and the orchestrator falls back to the
   event loop for the whole run.  With continuous arrival and service
   processes such ties essentially never occur. *)

exception Tie

type t = {
  (* reusable storage, kept across runs via the scenario arena *)
  regs : floatarray; (* 0 busy_until, 1 busy_time, 2 next_cross *)
  cross_buf : floatarray; (* pre-generated cross inter-arrival block *)
  fin_t : Fring.t; (* pending transmit-finish times *)
  fin_tag : Fring.t;
  del_t : Fring.t; (* pending far-end deliveries (propagation > 0) *)
  del_tag : Fring.t;
  out_t : Fvec.t; (* this chunk's deliveries to the next stage *)
  out_tag : Fvec.t;
  trace : Tracebuf.t;
  (* per-run configuration, set by [configure] *)
  mutable in_t : Fvec.t; (* upstream stage's chunk output *)
  mutable in_tag : Fvec.t;
  mutable rng_cross : Prng.Rng.t option;
  mutable cross_rate : float;
  mutable cross_idx : int;
  mutable propagation : float;
  mutable tx_padded : float;
  mutable tx_cross : float;
  mutable qlimit : int; (* max_int = unlimited *)
  mutable created_at : float;
  (* run counters, flushed transactionally by the orchestrator *)
  mutable in_idx : int;
  mutable depth : int;
  mutable hwm : int;
  mutable sent : int;
  mutable dropped : int;
  mutable enqueued : int;
  mutable diverted : int;
  mutable max_pend : int;
  mutable events : int; (* events this chunk *)
}

let cross_block = 4096

let create () =
  let empty = Fvec.create ~capacity:1 () in
  {
    regs = Float.Array.make 3 0.0;
    cross_buf = Float.Array.create cross_block;
    fin_t = Fring.create ~capacity:64 ();
    fin_tag = Fring.create ~capacity:64 ();
    del_t = Fring.create ~capacity:64 ();
    del_tag = Fring.create ~capacity:64 ();
    out_t = Fvec.create ~capacity:1024 ();
    out_tag = Fvec.create ~capacity:1024 ();
    trace = Tracebuf.create ();
    in_t = empty;
    in_tag = empty;
    rng_cross = None;
    cross_rate = 0.0;
    cross_idx = 0;
    propagation = 0.0;
    tx_padded = 0.0;
    tx_cross = 0.0;
    qlimit = max_int;
    created_at = 0.0;
    in_idx = 0;
    depth = 0;
    hwm = 0;
    sent = 0;
    dropped = 0;
    enqueued = 0;
    diverted = 0;
    max_pend = 0;
    events = 0;
  }

let refill t rng =
  Prng.Sampler.exponential_fill rng ~rate:t.cross_rate t.cross_buf
    ~n:cross_block;
  t.cross_idx <- 0

(* Advance the cross arrival train by one draw: next = prev +. dt, the
   same accumulation [Sim.every] performs (clock +. interval ()). *)
let cross_next t rng =
  if t.cross_idx >= cross_block then refill t rng;
  Float.Array.set t.regs 2
    (Float.Array.get t.regs 2 +. Float.Array.unsafe_get t.cross_buf t.cross_idx);
  t.cross_idx <- t.cross_idx + 1

let configure t ~bandwidth_bps ~propagation ~queue_limit ~packet_size
    ~cross ~in_t ~in_tag =
  Float.Array.set t.regs 0 0.0;
  Float.Array.set t.regs 1 0.0;
  Float.Array.set t.regs 2 0.0;
  Fring.clear t.fin_t;
  Fring.clear t.fin_tag;
  Fring.clear t.del_t;
  Fring.clear t.del_tag;
  Fvec.clear t.out_t;
  Fvec.clear t.out_tag;
  Tracebuf.clear t.trace;
  t.in_t <- in_t;
  t.in_tag <- in_tag;
  t.propagation <- propagation;
  (* Same expression as [Link.send]'s per-packet tx, computed once per
     size class: identical operands, identical bits. *)
  t.tx_padded <- float_of_int packet_size *. 8.0 /. bandwidth_bps;
  t.qlimit <- (match queue_limit with Some l -> l | None -> max_int);
  t.created_at <- 0.0;
  t.in_idx <- 0;
  t.depth <- 0;
  t.hwm <- 0;
  t.sent <- 0;
  t.dropped <- 0;
  t.enqueued <- 0;
  t.diverted <- 0;
  t.max_pend <- 0;
  t.events <- 0;
  match cross with
  | None ->
      t.rng_cross <- None;
      t.cross_rate <- 0.0;
      t.tx_cross <- 0.0
  | Some (rng, rate_pps, size_bytes) ->
      t.rng_cross <- Some rng;
      t.cross_rate <- rate_pps;
      t.tx_cross <- float_of_int size_bytes *. 8.0 /. bandwidth_bps;
      refill t rng;
      (* First arrival: clock (0.0) +. first draw, as Sim.every schedules
         it at source creation. *)
      cross_next t rng

let note_pend t =
  let pend = Fring.length t.fin_t + Fring.length t.del_t in
  if pend > t.max_pend then t.max_pend <- pend

let deliver t ~time ~tag =
  if tag = neg_infinity then t.diverted <- t.diverted + 1
  else begin
    Fvec.push t.out_t time;
    Fvec.push t.out_tag tag
  end

(* Replays [Link.send] at [now] for a packet with transmit time [tx]. *)
let send t ~now ~tag ~tx =
  if t.depth >= t.qlimit then begin
    t.dropped <- t.dropped + 1;
    if Obs.Trace.enabled () then
      Tracebuf.push t.trace ~key:now
        ~code:
          (if tag = neg_infinity then Tracebuf.drop_cross
           else if Float.is_nan tag then Tracebuf.drop_dummy
           else Tracebuf.drop_payload)
        ~x:0.0 ~y:0.0
  end
  else begin
    let start = Float.max now (Float.Array.get t.regs 0) in
    let finish = start +. tx in
    Float.Array.set t.regs 0 finish;
    Float.Array.set t.regs 1 (Float.Array.get t.regs 1 +. tx);
    t.depth <- t.depth + 1;
    t.enqueued <- t.enqueued + 1;
    if t.depth > t.hwm then t.hwm <- t.depth;
    Fring.push t.fin_t finish;
    Fring.push t.fin_tag tag;
    if t.propagation > 0.0 then begin
      Fring.push t.del_t (finish +. t.propagation);
      Fring.push t.del_tag tag
    end;
    note_pend t
  end

let advance t ~until =
  t.events <- 0;
  Fvec.clear t.out_t;
  Fvec.clear t.out_tag;
  t.in_idx <- 0;
  let n_in = Fvec.length t.in_t in
  let continue = ref true in
  while !continue do
    let tin =
      if t.in_idx < n_in then Fvec.unsafe_get t.in_t t.in_idx else infinity
    in
    let tc =
      match t.rng_cross with
      | Some _ -> Float.Array.get t.regs 2
      | None -> infinity
    in
    let tf = if Fring.is_empty t.fin_t then infinity else Fring.peek t.fin_t in
    let td = if Fring.is_empty t.del_t then infinity else Fring.peek t.del_t in
    let m = Float.min (Float.min tin tc) (Float.min tf td) in
    if m > until then continue := false
    else begin
      (* Any exact tie between two distinct streams is ordered by queue
         seq in the event loop; bail out rather than guess. *)
      if
        (tin = m && (tc = m || tf = m || td = m))
        || (tc = m && (tf = m || td = m))
        || (tf = m && td = m)
      then raise Tie;
      if tf = m then begin
        (* transmit-finish event *)
        ignore (Fring.pop t.fin_t : float);
        let tag = Fring.pop t.fin_tag in
        t.depth <- t.depth - 1;
        t.sent <- t.sent + 1;
        t.events <- t.events + 1;
        if t.propagation = 0.0 then deliver t ~time:m ~tag
      end
      else if td = m then begin
        (* far-end delivery event (propagation > 0) *)
        ignore (Fring.pop t.del_t : float);
        let tag = Fring.pop t.del_tag in
        t.events <- t.events + 1;
        deliver t ~time:m ~tag
      end
      else if tc = m then begin
        (* cross source tick: one event, even when the send is dropped *)
        t.events <- t.events + 1;
        send t ~now:m ~tag:neg_infinity ~tx:t.tx_cross;
        match t.rng_cross with
        | Some rng -> cross_next t rng
        | None -> assert false
      end
      else begin
        (* padded send handed down within the upstream stage's event *)
        let tag = Fvec.unsafe_get t.in_tag t.in_idx in
        t.in_idx <- t.in_idx + 1;
        send t ~now:m ~tag ~tx:t.tx_padded
      end
    end
  done

let out_times t = t.out_t
let out_tags t = t.out_tag
let trace t = t.trace
let chunk_events t = t.events
let sent t = t.sent
let dropped t = t.dropped
let enqueued t = t.enqueued
let queue_hwm t = t.hwm
let diverted t = t.diverted
let max_pending t = t.max_pend

(* Same float expressions as [Link.utilization] at simulated time [now]. *)
let utilization t ~now =
  let elapsed = now -. t.created_at in
  if elapsed <= 0.0 then 0.0
  else
    let busy_until = Float.Array.get t.regs 0 in
    let busy_time = Float.Array.get t.regs 1 in
    let future = Float.max 0.0 (busy_until -. now) in
    Float.min 1.0 ((busy_time -. future) /. elapsed)
