(** Passive observation point — the simulated equivalent of the paper's
    Agilent J6841A line analyzer.

    A tap is spliced between two components; it timestamps packets matching
    a predicate and forwards everything untouched.  The default predicate
    records only the padded stream (payload + dummy): the adversary cannot
    tell those two apart (contents are encrypted) but can distinguish them
    from unrelated cross traffic by address, as the paper's adversary
    does when tapping the gateway-to-gateway flow. *)

type t

val create :
  Desim.Sim.t ->
  ?accept:(Packet.t -> bool) ->
  ?buffers:Fvec.t * Fvec.t ->
  dest:Link.port ->
  unit ->
  t
(** [accept] defaults to {!Packet.is_padded}.  [buffers] optionally
    supplies recycled [(times, sizes)] recording vectors (they are
    cleared on create); sweep harnesses pass arena-owned Fvecs so
    repeated runs reuse already-grown storage instead of re-allocating
    and re-growing from scratch. *)

val port : t -> Link.port
val count : t -> int
(** Number of recorded packets. *)

val note_batch : observed:int -> payload:int -> dummy:int -> unit
(** Fold a batch of observations into the tap's registry counters
    ([netsim.tap.observed] / [.payload] / [.dummy]) in one transactional
    add — the flush half of the fused kernels' inline tap, which records
    timestamps directly into arena buffers instead of going through
    {!port} packet by packet.  Raises [Invalid_argument] on negative
    counts. *)

val timestamps : t -> float array
(** Arrival times of recorded packets, in order. *)

val sizes : t -> int array
(** Sizes (bytes) of recorded packets, in order — the other observable the
    paper's §3.2 remark (3) assumes away by making packets constant-size;
    exposed so the size-padding extension can mount size-based attacks. *)

val piats : t -> float array
(** Packet inter-arrival times: consecutive differences of {!timestamps}
    (length = count - 1, empty when fewer than 2 packets). *)

val clear : t -> unit
(** Forget recorded timestamps (the tap keeps forwarding). *)
