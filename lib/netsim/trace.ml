type meta = { label : string; created_unix : float }

exception Parse_error of { path : string; line : int; msg : string }

let save ~path ~meta timestamps =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# linkpad-trace v1\n";
      Printf.fprintf oc "# label: %s\n" meta.label;
      Printf.fprintf oc "# created_unix: %.3f\n" meta.created_unix;
      Printf.fprintf oc "# count: %d\n" (Array.length timestamps);
      Array.iter (fun t -> Printf.fprintf oc "%.17g\n" t) timestamps)

let strip s = String.trim s

let parse_header_field line prefix =
  let p = "# " ^ prefix ^ ":" in
  if String.length line >= String.length p && String.sub line 0 (String.length p) = p
  then Some (strip (String.sub line (String.length p) (String.length line - String.length p)))
  else None

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let label = ref "" in
      let created = ref 0.0 in
      let values = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = strip (input_line ic) in
           if line = "" then ()
           else if String.length line > 0 && line.[0] = '#' then begin
             (match parse_header_field line "label" with
             | Some v -> label := v
             | None -> ());
             match parse_header_field line "created_unix" with
             | Some v -> (
                 match float_of_string_opt v with
                 | Some f -> created := f
                 | None ->
                     raise
                       (Parse_error
                          { path; line = !lineno; msg = "bad header (created_unix is not a float)" }))
             | None -> ()
           end
           else
             match float_of_string_opt line with
             | Some v -> values := v :: !values
             | None ->
                 raise
                   (Parse_error
                      { path; line = !lineno; msg = "bad value (expected a float timestamp)" })
         done
       with End_of_file -> ());
      ( { label = !label; created_unix = !created },
        Array.of_list (List.rev !values) ))

let piats timestamps =
  let n = Array.length timestamps in
  if n < 2 then [||]
  else Array.init (n - 1) (fun i -> timestamps.(i + 1) -. timestamps.(i))
