(** Traffic sources.

    All sources push freshly-created packets into a destination port and
    run until stopped.  Interarrival randomness comes from a caller-supplied
    {!Prng.Rng.t} so every workload is reproducible. *)

type t
(** A running source; {!stop} halts it permanently. *)

val stop : t -> unit
val generated : t -> int
(** Packets emitted so far. *)

val cbr :
  Desim.Sim.t ->
  rate_pps:float ->
  size_bytes:int ->
  kind:Packet.kind ->
  dest:Link.port ->
  unit ->
  t
(** Constant bit rate: one packet every [1/rate_pps] seconds, first at one
    full period.  [rate_pps > 0]. *)

val poisson :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  rate_pps:float ->
  size_bytes:int ->
  kind:Packet.kind ->
  dest:Link.port ->
  unit ->
  t
(** Poisson arrivals (exponential interarrivals) at [rate_pps > 0]. *)

val poisson_sized :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  rate_pps:float ->
  size_of:(Prng.Rng.t -> int) ->
  kind:Packet.kind ->
  dest:Link.port ->
  unit ->
  t
(** Poisson arrivals with a per-packet size drawn from [size_of] (must
    return positive sizes) — variable-size payload for the size-padding
    extension. *)

val on_off :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  rate_on_pps:float ->
  mean_on:float ->
  mean_off:float ->
  ?pareto_shape:float ->
  size_bytes:int ->
  kind:Packet.kind ->
  dest:Link.port ->
  unit ->
  t
(** Bursty on/off source: during ON periods, Poisson at [rate_on_pps];
    OFF periods silent.  Period lengths are exponential with the given
    means, or Pareto with [pareto_shape] (> 1) and matching means for the
    self-similar cross traffic of campus/WAN scenarios.  Long-run average
    rate = rate_on_pps * mean_on / (mean_on + mean_off). *)

val modulated_poisson :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  rate_fn:(float -> float) ->
  rate_max:float ->
  size_bytes:int ->
  kind:Packet.kind ->
  dest:Link.port ->
  unit ->
  t
(** Non-homogeneous Poisson by Lewis–Shedler thinning: instantaneous rate
    [rate_fn now] (must lie in [0, rate_max], [rate_max > 0]).  Used for
    the diurnal utilization profiles of the campus/WAN experiments. *)

val modulated_arrivals :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  rate_fn:(float -> float) ->
  rate_max:float ->
  f:(float -> unit) ->
  unit ->
  t
(** The arrival-instant train of {!modulated_poisson} without the packet:
    [f now] runs at each accepted arrival and decides what it means.
    The fleet mux uses this to demultiplex one superposed arrival
    process onto many flows — picking the flow, counting it, and
    building the packet itself — at O(1) per arrival instead of one
    event source per flow.  [generated] counts accepted arrivals. *)
