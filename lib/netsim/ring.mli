(** Generic FIFO ring buffer.

    Replaces ['a Queue.t] on per-packet paths: a [Queue] allocates a
    cons cell per push, the ring none in steady state.  Storage is
    seeded lazily from the first pushed value, so no dummy element (and
    no [Obj.magic]) is ever needed.  Popped slots keep their old value
    until overwritten; the retention is bounded by the ring's capacity.
    {!clear} keeps the capacity for arena reuse. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the back; grows the backing store when full. *)

val peek : 'a t -> 'a
(** Front element.  Raises [Invalid_argument] when empty. *)

val pop : 'a t -> 'a
(** Remove and return the front element.  Raises [Invalid_argument] when
    empty. *)

val clear : 'a t -> unit
(** Empty the ring, keeping its capacity. *)
