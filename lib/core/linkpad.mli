(** Linkpad — information-assurance evaluation of link-padding
    countermeasures to traffic-analysis attacks.

    This is the top-level API of the reproduction of Fu, Graham, Bettati,
    Zhao & Xuan, "Analytical and Empirical Analysis of Countermeasures to
    Traffic Analysis Attacks" (ICPP 2003).  One call simulates a padded
    system end to end, mounts the paper's KDE-Bayes adversary on the tap,
    and reports the empirical detection rate next to the closed-form
    prediction, plus the defender-side costs.

    For lower-level control use the constituent libraries directly:
    [Padding] (gateways/timers/jitter), [Netsim] (topology), [Adversary]
    (features/classifier), [Analytical] (theorems), [Scenarios] (the
    paper's figures). *)

type padding_scheme =
  | Cit
      (** constant interval timer at the 10 ms calibration period *)
  | Vit of { sigma_t : float }
      (** variable interval timer: N(10 ms, σ_T²), truncated positive *)

type observation_point =
  | At_sender_gateway
      (** tap on the first unprotected link — adversary's best case *)
  | Behind_lab_router of { utilization : float }
      (** tap behind one shared router carrying cross traffic at the given
          link utilization in [0, 1) *)
  | Across_path of { hops : Netsim.Topology.hop_spec array }
      (** tap in front of the receiver after an arbitrary hop chain *)

type spec = {
  padding : padding_scheme;
  observation : observation_point;
  sample_size : int;       (** PIATs per adversary classification attempt *)
  windows_per_class : int; (** feature samples per rate for train+test *)
  seed : int;
}

val default_spec : spec
(** CIT, tap at the gateway, sample size 1000, 40 windows, seed 42. *)

type feature_report = {
  feature : Adversary.Feature.kind;
  empirical_detection : float;
  theoretical_detection : float;
}

type report = {
  spec : spec;
  r_hat : float;              (** measured variance ratio at the tap *)
  sigma_low : float;          (** tapped PIAT σ under ω_l (seconds) *)
  sigma_high : float;
  features : feature_report list;
  worst_detection : float;    (** max empirical detection over features *)
  overhead : float;           (** dummy fraction of transmitted packets *)
  mean_payload_latency : float;  (** seconds, defender-side QoS cost *)
}

val evaluate : spec -> report
(** Run the full pipeline.  Deterministic in [spec.seed]. *)

val pp_report : Format.formatter -> report -> unit

val recommend_sigma_t :
  ?seed:int -> v_max:float -> n_max:int -> unit -> float
(** Design guideline (paper §6): calibrate the gateway offline, then return
    the smallest VIT σ_T keeping every feature's theoretical detection rate
    at or below [v_max] against an adversary limited to [n_max] PIATs per
    observation.  [v_max] in (0.5, 1), [n_max >= 2].  The calibration
    runs simulate: they raise [Scenarios.Starvation.Tap_starved] /
    [Desim.Sim.Event_budget_exceeded] as [Scenarios.System.run] does. *)
