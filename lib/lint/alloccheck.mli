(** A001 — zero-allocation hot paths.

    [run g ~manifest] resolves the [lint/hot_paths.txt] entries
    ([[lib/]Module.fn], trailing [*] globs the function name) against
    the call graph, takes the transitive-callee closure, and flags every
    allocation site in it: closures, non-empty list/array literals,
    record literals, float-boxing polymorphic compares, and partial
    applications of resolved callees.  Allocations inside
    [raise]/[invalid_arg]/[failwith] arguments are exempt (cold error
    paths).  Malformed or unmatched manifest entries are findings
    against [lint/hot_paths.txt] itself. *)

val run : Callgraph.t -> manifest:string -> Finding.t list
