(* Link per-file [Symtab] summaries into the whole-program call graph.

   Resolution mirrors OCaml scoping, conservatively, against the dune
   library layout (wrapped libraries expose [Alias.Module.fn]; the
   unwrapped [lib/fleet] exposes its modules globally):

     1. same-file: the callee path relative to the caller's submodule
        path, walking outward, then absolute within the file;
     2. same-library sibling: [Module.fn] where [Module] is another file
        of the caller's library (wrapped libraries see siblings bare);
     3. wrap alias: [Alias.Module.fn] (or [Alias.fn] for a library's
        main module) where [Alias] is a library name capitalised — note
        the library NAME, not the directory (lib/core -> [Linkpad]);
     4. unwrapped global: [Module.fn] where [Module] belongs to an
        unwrapped library.

   Anything else (function values, functors, stdlib) stays unresolved.
   Unresolved calls whose head looks like a project module are counted
   in {!stats} so a resolution regression is visible in the report. *)

type node = {
  n_id : int;
  n_summary : Symtab.t;
  n_fn : Symtab.fn;
  n_qual : string;  (* "Module.sub.fn" display name *)
}

type stats = {
  cg_modules : int;
  cg_functions : int;
  cg_edges : int;
  cg_unresolved : int;
}

type t = {
  nodes : node array;
  succ : (int * Symtab.call) list array;  (* resolved outgoing edges *)
  stats : stats;
  by_file : (string, Symtab.t) Hashtbl.t;
  exceptions : (string, string) Hashtbl.t;  (* exc name -> declaring file *)
  suppress_cache : (string, Suppress.t) Hashtbl.t;
}

let nodes t = t.nodes
let succ t i = t.succ.(i)
let stats t = t.stats
let summary_of_file t file = Hashtbl.find_opt t.by_file file

let suppress_for t file =
  match Hashtbl.find_opt t.suppress_cache file with
  | Some s -> s
  | None ->
      let s =
        match Hashtbl.find_opt t.by_file file with
        | Some sum -> Symtab.suppress sum
        | None -> Suppress.of_entries []
      in
      Hashtbl.add t.suppress_cache file s;
      s

let is_project_exception t name = Hashtbl.mem t.exceptions name

let project_exceptions t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.exceptions []
  |> List.sort_uniq String.compare

let qual (s : Symtab.t) (f : Symtab.fn) =
  String.concat "." ((s.s_module :: f.fn_path) @ [ f.fn_name ])

let alias_of_lib lib = String.capitalize_ascii lib

let build (summaries : Symtab.t list) =
  let summaries = List.filter (fun (s : Symtab.t) -> s.s_parsed) summaries in
  let nodes =
    List.concat_map
      (fun (s : Symtab.t) ->
        List.map (fun f -> (s, f)) s.s_funcs)
      summaries
    |> Array.of_list
    |> Array.mapi (fun i (s, f) ->
           { n_id = i; n_summary = s; n_fn = f; n_qual = qual s f })
  in
  (* (file, dotted path within file) -> node id *)
  let defs = Hashtbl.create 512 in
  Array.iter
    (fun n ->
      let key =
        String.concat "." (n.n_fn.Symtab.fn_path @ [ n.n_fn.Symtab.fn_name ])
      in
      (* first binding wins on shadowing: close enough for linking *)
      if not (Hashtbl.mem defs (n.n_summary.Symtab.s_file, key)) then
        Hashtbl.add defs (n.n_summary.Symtab.s_file, key) n.n_id)
    nodes;
  (* library name -> module name -> summary; plus alias and global maps *)
  let lib_modules : (string, (string, Symtab.t) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let alias_to_lib = Hashtbl.create 16 in
  let global_modules = Hashtbl.create 16 in
  let by_file = Hashtbl.create 64 in
  let exceptions = Hashtbl.create 16 in
  List.iter
    (fun (s : Symtab.t) ->
      Hashtbl.replace by_file s.s_file s;
      List.iter
        (fun e ->
          if not (Hashtbl.mem exceptions e) then
            Hashtbl.add exceptions e s.s_file)
        s.s_exceptions;
      if s.s_lib <> "" then begin
        let mods =
          match Hashtbl.find_opt lib_modules s.s_lib with
          | Some h -> h
          | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.add lib_modules s.s_lib h;
              Hashtbl.add alias_to_lib (alias_of_lib s.s_lib) s.s_lib;
              h
        in
        Hashtbl.replace mods s.s_module s;
        if not s.s_wrapped then Hashtbl.replace global_modules s.s_module s
      end)
    summaries;
  let lookup_in file path = Hashtbl.find_opt defs (file, String.concat "." path) in
  (* resolve [path] as a top-level definition of library [lib]:
     [Module.sub.fn] or, for the main module, [fn] directly *)
  let resolve_in_lib lib path =
    match Hashtbl.find_opt lib_modules lib with
    | None -> None
    | Some mods -> (
        match path with
        | m :: (_ :: _ as rest) when Hashtbl.mem mods m ->
            lookup_in (Hashtbl.find mods m).Symtab.s_file rest
        | [ _ ] -> (
            (* [Alias.fn]: the library's main module re-exports it *)
            match Hashtbl.find_opt mods (alias_of_lib lib) with
            | Some s -> lookup_in s.Symtab.s_file path
            | None -> None)
        | _ -> None)
  in
  let resolve (caller : node) (c : Symtab.call) =
    let file = caller.n_summary.Symtab.s_file in
    let cpath = caller.n_fn.Symtab.fn_path in
    (* 1. caller-submodule-relative, walking outward to file scope *)
    let rec relative prefix =
      match lookup_in file (prefix @ c.callee) with
      | Some id -> Some id
      | None -> (
          match prefix with
          | [] -> None
          | _ -> relative (List.filteri (fun i _ -> i < List.length prefix - 1) prefix))
    in
    match relative cpath with
    | Some id -> Some id
    | None -> (
        let lib = caller.n_summary.Symtab.s_lib in
        match c.callee with
        | m :: (_ :: _ as rest) -> (
            (* 2. same-library sibling module *)
            let sibling =
              if lib = "" then None
              else
                match Hashtbl.find_opt lib_modules lib with
                | None -> None
                | Some mods -> (
                    match Hashtbl.find_opt mods m with
                    | Some s -> lookup_in s.Symtab.s_file rest
                    | None -> None)
            in
            match sibling with
            | Some id -> Some id
            | None -> (
                (* 3. wrap alias *)
                match Hashtbl.find_opt alias_to_lib m with
                | Some lib' -> resolve_in_lib lib' rest
                | None -> (
                    (* 4. unwrapped global module *)
                    match Hashtbl.find_opt global_modules m with
                    | Some s -> lookup_in s.Symtab.s_file rest
                    | None -> None)))
        | _ -> None)
  in
  let known_head = function
    | m :: _ :: _ ->
        Hashtbl.mem alias_to_lib m
        || Hashtbl.mem global_modules m
        || Hashtbl.fold
             (fun _ mods acc -> acc || Hashtbl.mem mods m)
             lib_modules false
    | _ -> false
  in
  let succ = Array.make (Array.length nodes) [] in
  let n_edges = ref 0 and unresolved = ref 0 in
  Array.iter
    (fun n ->
      let edges =
        List.filter_map
          (fun (c : Symtab.call) ->
            match resolve n c with
            | Some id ->
                incr n_edges;
                Some (id, c)
            | None ->
                if known_head c.callee then incr unresolved;
                None)
          n.n_fn.Symtab.calls
      in
      succ.(n.n_id) <- edges)
    nodes;
  {
    nodes;
    succ;
    stats =
      {
        cg_modules = List.length summaries;
        cg_functions = Array.length nodes;
        cg_edges = !n_edges;
        cg_unresolved = !unresolved;
      };
    by_file;
    exceptions;
    suppress_cache = Hashtbl.create 16;
  }

(* Shared reachability helper: breadth-first closure from [roots]
   following resolved edges, with a per-target veto.  Returns, for every
   reached node, the id it was first reached from (for chain
   reconstruction); roots map to themselves. *)
let reach t ~roots ~enter =
  let parent = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if not (Hashtbl.mem parent r) then begin
        Hashtbl.add parent r r;
        Queue.add r q
      end)
    roots;
  while not (Queue.is_empty q) do
    let i = Queue.take q in
    List.iter
      (fun (j, _) ->
        if (not (Hashtbl.mem parent j)) && enter t.nodes.(j) then begin
          Hashtbl.add parent j i;
          Queue.add j q
        end)
      t.succ.(i)
  done;
  parent

let chain t parent i =
  let rec go i acc =
    let p = Hashtbl.find parent i in
    if p = i then t.nodes.(i).n_qual :: acc
    else go p (t.nodes.(i).n_qual :: acc)
  in
  go i []
