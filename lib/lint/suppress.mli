(** [(* talint: allow RULE... — reason *)] suppression comments.

    A directive lists one or more rule ids and suppresses matching
    findings on its own line or the line directly below it.  File-scope
    rules (S001) accept a directive anywhere in the file. *)

type t

val scan : string -> t
(** Collect every directive in a source file (given as a string). *)

val allows : t -> line:int -> rule:string -> bool
(** Is a finding of [rule] at [line] suppressed (directive on the same
    or the preceding line)? *)

val allows_anywhere : t -> rule:string -> bool
(** Is [rule] suppressed anywhere in the file (for file-scope rules)? *)

val is_rule_id : string -> bool
(** ["D001"]-shaped: one capital letter then three digits. *)

val entries : t -> (int * string) list
(** Every [(line, rule)] directive pair, sorted — the serialisable form
    used by the incremental summary cache. *)

val of_entries : (int * string) list -> t
(** Rebuild a table from {!entries} output (cache warm path: the source
    is not re-read). *)
