(** T001 — transitive determinism of parallel task bodies.

    Walks the call graph from every call site that resolves to
    [Scenarios.Sweep.mapi] or an [Exec.Pool] fan-out entry point and
    flags any reachable ambient-randomness use, wall-clock read, or
    module-state mutation.  [lib/prng] and [lib/obs] are sanctioned
    boundaries (never traversed); Atomic/Mutex state never registers as
    a sink.  Findings report at the root call site with the offending
    call chain; suppressible with [talint: allow T001] at either the
    root line or the sink line. *)

val run : Callgraph.t -> Finding.t list
