(** The talint rule pass: one parsed walk over a single [.ml] file.

    Rules (suppressible with [(* talint: allow RULE — reason *)]):
    - [D001] no [Stdlib.Random] in [lib/] (except [lib/prng]);
      [Random.self_init] banned everywhere.
    - [D002] no wall-clock reads ([Unix.gettimeofday], [Unix.time],
      [Sys.time]) outside [lib/obs] and [bench/].
    - [D003] no stdout printing from [lib/].
    - [R001] no module-level mutable state in [lib/] outside [lib/obs]
      (races under [Exec.Pool] domain fan-outs).
    - [S001] every [lib/] module has an [.mli].
    - [S002] no [failwith] in [lib/]; declared exceptions only.
    - [E000] internal: the file failed to parse. *)

type role =
  | Lib of string  (** subdirectory under [lib/], e.g. [Lib "desim"] *)
  | Bin
  | Bench

val role_to_string : role -> string

type input = {
  role : role;
  file : string;      (** path used in reports *)
  source : string;    (** file contents *)
  mli_exists : bool;  (** does [file]'s sibling [.mli] exist? (S001) *)
}

type rule_info = { id : string; summary : string }

val all_rules : rule_info list
(** Rule ids with one-line summaries, for [--help]-style listings. *)

val check : input -> Finding.t list
(** All unsuppressed findings for one file, sorted by position. *)
