(** The talint rule pass: one parsed walk over a single [.ml] file.

    Rules (suppressible with [(* talint: allow RULE — reason *)]):
    - [D001] no [Stdlib.Random] in [lib/] (except [lib/prng]);
      [Random.self_init] banned everywhere.
    - [D002] no wall-clock reads ([Unix.gettimeofday], [Unix.time],
      [Sys.time]) outside [lib/obs] and [bench/].
    - [D003] no stdout printing from [lib/].
    - [R001] no module-level mutable state in [lib/] outside [lib/obs]
      (races under [Exec.Pool] domain fan-outs).
    - [D004] no polymorphic compare on float expressions in [lib/stats]
      and [lib/adversary] (floatarray accessor operands box).
    - [S001] every [lib/] module has an [.mli].
    - [S002] no [failwith] in [lib/]; declared exceptions only.
    - [E000] internal: the file failed to parse.

    The whole-program pass ids ([E001] exception escape, [T001]
    transitive determinism, [A001] zero-alloc hot paths, [B001] baseline
    hygiene) are listed in {!all_rules} but implemented in
    {!Escape}/{!Taint}/{!Alloccheck}/{!Baseline} over the
    {!Callgraph}. *)

type role =
  | Lib of string  (** subdirectory under [lib/], e.g. [Lib "desim"] *)
  | Bin
  | Bench

val role_to_string : role -> string

type input = {
  role : role;
  file : string;      (** path used in reports *)
  source : string;    (** file contents *)
  mli_exists : bool;  (** does [file]'s sibling [.mli] exist? (S001) *)
}

type rule_info = { id : string; summary : string }

val all_rules : rule_info list
(** Rule ids with one-line summaries, for [--help]-style listings. *)

val check : input -> Finding.t list
(** All unsuppressed findings for one file, sorted by position. *)

(** {2 Shared syntactic helpers} (used by {!Symtab} so the per-file and
    whole-program passes agree on what counts as a violation) *)

val normalize : Longident.t -> string list
(** Flatten a [Longident] path, dropping a leading [Stdlib.]. *)

val dotted : string list -> string

val time_idents : string list list
(** The ambient wall-clock readers D002 bans. *)

val float_polycmp : Parsetree.expression -> string option
(** [Some op] when the expression is a polymorphic comparison whose
    operands are syntactically float (D004 / A001 float-boxing). *)

val d001_applies : role -> bool
val d002_applies : role -> bool
val d004_applies : role -> bool
val r001_applies : role -> bool
