(* The rule pass proper: parse one .ml file with compiler-libs and walk
   it with [Ast_iterator].  Everything here is syntactic — no typing
   environment — which is exactly enough for the determinism and
   domain-safety properties the repo cares about, and keeps the pass
   dependency-free and fast. *)

type role = Lib of string | Bin | Bench

let role_to_string = function
  | Lib "" -> "lib"
  | Lib sub -> "lib/" ^ sub
  | Bin -> "bin"
  | Bench -> "bench"

type input = { role : role; file : string; source : string; mli_exists : bool }

(* --- rule metadata (documentation + JSON report) --- *)

type rule_info = { id : string; summary : string }

let all_rules =
  [
    { id = "D001";
      summary =
        "no Stdlib.Random in lib/ (randomness flows through lib/prng; \
         Random.self_init is banned everywhere)" };
    { id = "D002";
      summary =
        "no ambient wall-clock time (Unix.gettimeofday/Unix.time/Sys.time) \
         outside lib/obs and bench/" };
    { id = "D003";
      summary =
        "no stdout printing from lib/ (print_*, Printf.printf, \
         Format.printf, Format.std_formatter); stdout belongs to bin/" };
    { id = "R001";
      summary =
        "no module-level mutable state (ref/Hashtbl/Queue/Buffer/array \
         literals...) in lib/ outside lib/obs: it races under Exec.Pool" };
    { id = "P001";
      summary =
        "no Marshal outside lib/exec: checkpoint payloads are only safe \
         behind Exec.Journal's digest-keyed framing" };
    { id = "D004";
      summary =
        "no polymorphic compare/=/min/max on float expressions in lib/stats \
         and lib/adversary (floatarray accessor operands box; use \
         Float.compare / Float.equal)" };
    { id = "S001"; summary = "every lib/ module has a corresponding .mli" };
    { id = "S002";
      summary =
        "no failwith in lib/; raise a declared exception (cf. Tap_starved)" };
    { id = "E001";
      summary =
        "whole-program: a project-declared exception must not escape an \
         exported value without being named in its .mli doc contract" };
    { id = "T001";
      summary =
        "whole-program: no Scenarios.Sweep.mapi / Exec.Pool task may \
         transitively reach ambient randomness, wall-clock reads or \
         unsanctioned module-state mutation (sanctioned sinks: lib/prng, \
         lib/obs, Atomic/mutex-guarded state)" };
    { id = "A001";
      summary =
        "whole-program: hot-path functions from lint/hot_paths.txt and \
         their transitive callees are allocation-free (no closures, \
         list/array/record literals, partial applications or float-boxing \
         polymorphic compares)" };
    { id = "B001";
      summary =
        "baseline hygiene: lint/BASELINE.json entry is malformed or \
         matches no current finding (stale waiver)" };
    { id = "E000"; summary = "file failed to parse (internal)" };
  ]

(* --- rule applicability by role --- *)

let d001_applies = function Lib sub -> sub <> "prng" | Bin | Bench -> false
let d002_applies = function Lib sub -> sub <> "obs" | Bin -> true | Bench -> false
let d004_applies = function
  | Lib ("stats" | "adversary") -> true
  | Lib _ | Bin | Bench -> false
let d003_applies = function Lib _ -> true | Bin | Bench -> false
let r001_applies = function Lib sub -> sub <> "obs" | Bin | Bench -> false
let p001_applies = function Lib sub -> sub <> "exec" | Bin | Bench -> true
let s001_applies = function Lib _ -> true | Bin | Bench -> false
let s002_applies = function Lib _ -> true | Bin | Bench -> false

(* --- identifier tables --- *)

let time_idents =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

let print_idents =
  [
    [ "print_string" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "print_char" ]; [ "print_int" ]; [ "print_float" ]; [ "print_bytes" ];
    [ "Printf"; "printf" ]; [ "Format"; "printf" ];
    [ "Format"; "print_string" ]; [ "Format"; "print_newline" ];
    [ "Format"; "std_formatter" ];
  ]

(* Functions whose result is fresh mutable state: calling one of these in
   module-initialisation position creates a global shared across every
   domain [Exec.Pool] spawns.  [Atomic.make] and [Mutex.create] are
   deliberately absent — they are the race-safe way to share. *)
let alloc_idents =
  [
    [ "ref" ]; [ "Hashtbl"; "create" ]; [ "Queue"; "create" ];
    [ "Stack"; "create" ]; [ "Buffer"; "create" ]; [ "Array"; "make" ];
    [ "Array"; "init" ]; [ "Array"; "create_float" ];
    [ "Array"; "make_matrix" ]; [ "Bytes"; "create" ]; [ "Bytes"; "make" ];
    [ "Weak"; "create" ];
  ]

let rec flatten acc = function
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flatten (s :: acc) l
  | Longident.Lapply _ -> []

(* [Stdlib.Random.int] and [Random.int] are the same thing. *)
let normalize lid =
  match flatten [] lid with "Stdlib" :: (_ :: _ as rest) -> rest | p -> p

let dotted = String.concat "."

(* --- float polymorphic-compare heuristic (D004 / A001) ---

   Purely syntactic float-ness: an operand is "surely float" when it is a
   floatarray accessor application ([Float.Array.get]/[unsafe_get] — the
   result boxes the moment it meets a polymorphic primitive), and
   "probably float" when it is a float literal or float arithmetic.  The
   ordered operators only fire on the sure form (compares against float
   literals are idiomatic and compile to specialised code once the other
   operand's type is known); [compare]/[min]/[max] also fire on the
   probable form, because those remain polymorphic calls. *)

let cmp_ops = [ "="; "<>"; "<"; "<="; ">"; ">="; "compare"; "min"; "max" ]

let rec unparen e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constraint (e, _) -> unparen e
  | _ -> e

let floatarray_accessor e =
  match (unparen e).Parsetree.pexp_desc with
  | Parsetree.Pexp_apply
      ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _) -> (
      match normalize txt with
      | [ "Float"; "Array"; ("get" | "unsafe_get") ] -> true
      | _ -> false)
  | _ -> false

let float_arith_ops =
  [ "+."; "-."; "*."; "/."; "**"; "sqrt"; "exp"; "log"; "float_of_int" ]

let floatish e =
  let e = unparen e in
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_float _) -> true
  | Parsetree.Pexp_apply
      ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _) -> (
      match normalize txt with
      | [ op ] when List.mem op float_arith_ops -> true
      | [ "Float"; "of_int" ] -> true
      | _ -> false)
  | _ -> false

let float_polycmp e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_apply
      ( { pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ },
        (_, a) :: (_, b) :: _ ) -> (
      match normalize txt with
      | [ op ] when List.mem op cmp_ops ->
          if floatarray_accessor a || floatarray_accessor b then Some op
          else if
            List.mem op [ "compare"; "min"; "max" ]
            && (floatish a || floatish b)
          then Some op
          else None
      | _ -> None)
  | _ -> None

(* --- the pass --- *)

let check input =
  let findings = ref [] in
  let add ~rule ~loc message =
    let p = loc.Location.loc_start in
    findings :=
      (* [Location.in_file] carries cnum = -1; clamp for file-scope rules. *)
      Finding.v ~rule ~file:input.file ~line:p.Lexing.pos_lnum
        ~col:(max 0 (p.Lexing.pos_cnum - p.Lexing.pos_bol))
        message
      :: !findings
  in
  (* 0 = module-initialisation position; >0 = inside a function body,
     where mutable allocation is local and fine (R001). *)
  let fn_depth = ref 0 in
  let check_path ~loc path =
    (match path with
    | "Random" :: "self_init" :: _ ->
        add ~rule:"D001" ~loc
          "Random.self_init makes runs unreproducible; seeds must be \
           explicit (Exec.Seed / Rng.mix_seed)"
    | "Random" :: _ when d001_applies input.role ->
        add ~rule:"D001" ~loc
          (Printf.sprintf
             "%s: ambient randomness in %s; use lib/prng (Rng.mix_seed) so \
              results are deterministic in the root seed"
             (dotted path)
             (role_to_string input.role))
    | _ -> ());
    if d002_applies input.role && List.mem path time_idents then
      add ~rule:"D002" ~loc
        (Printf.sprintf
           "%s: wall-clock reads belong to lib/obs and bench/ only; \
            simulation logic must use Sim.now"
           (dotted path));
    if d003_applies input.role && List.mem path print_idents then
      add ~rule:"D003" ~loc
        (Printf.sprintf
           "%s: libraries must not write to stdout; take a formatter or \
            emit through Obs"
           (dotted path));
    (match path with
    | "Marshal" :: _ when p001_applies input.role ->
        add ~rule:"P001" ~loc
          (Printf.sprintf
             "%s: Marshal is not type-safe; checkpoint payloads go through \
              Exec.Journal.encode/decode, whose journal header digest keys \
              the payload layout to the sweep that wrote it"
             (dotted path))
    | _ -> ());
    if s002_applies input.role && path = [ "failwith" ] then
      add ~rule:"S002" ~loc
        "failwith in library code: raise a declared exception callers can \
         match (cf. Scenarios.Starvation.Tap_starved)"
  in
  let default = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> check_path ~loc (normalize txt)
    | Parsetree.Pexp_apply
        ({ pexp_desc = Parsetree.Pexp_ident { txt; loc }; _ }, _)
      when !fn_depth = 0
           && r001_applies input.role
           && List.mem (normalize txt) alloc_idents ->
        add ~rule:"R001" ~loc
          (Printf.sprintf
             "%s at module level creates mutable state shared across \
              Exec.Pool domains; allocate inside the run, shard through \
              Obs, or justify with an allow comment"
             (dotted (normalize txt)))
    | Parsetree.Pexp_array (_ :: _) when !fn_depth = 0 && r001_applies input.role
      ->
        add ~rule:"R001" ~loc:e.Parsetree.pexp_loc
          "non-empty array literal at module level is mutable state shared \
           across Exec.Pool domains"
    | _ -> ());
    (match float_polycmp e with
    | Some op when d004_applies input.role ->
        add ~rule:"D004" ~loc:e.Parsetree.pexp_loc
          (Printf.sprintf
             "polymorphic %s on a float expression boxes the operand and \
              takes the NaN-unsafe structural path; use Float.compare / \
              Float.equal (cf. the PR 5 sort fixes)"
             op)
    | _ -> ());
    match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
        incr fn_depth;
        default.Ast_iterator.expr it e;
        decr fn_depth
    | _ -> default.Ast_iterator.expr it e
  in
  let module_expr it (m : Parsetree.module_expr) =
    (match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident { txt; loc } -> (
        match normalize txt with
        | "Random" :: _ when d001_applies input.role ->
            add ~rule:"D001" ~loc
              "module Random: ambient randomness; use lib/prng instead"
        | _ -> ())
    | _ -> ());
    default.Ast_iterator.module_expr it m
  in
  let iter = { default with Ast_iterator.expr; module_expr } in
  (match
     let lexbuf = Lexing.from_string input.source in
     Location.init lexbuf input.file;
     Parse.implementation lexbuf
   with
  | ast -> iter.Ast_iterator.structure iter ast
  | exception exn ->
      let loc =
        match exn with
        | Syntaxerr.Error e -> Syntaxerr.location_of_error e
        | _ -> Location.in_file input.file
      in
      add ~rule:"E000" ~loc
        (Printf.sprintf "parse error: %s" (Printexc.to_string exn)));
  if s001_applies input.role && not input.mli_exists then
    add ~rule:"S001" ~loc:(Location.in_file input.file)
      "library module without an .mli: every lib/ module must declare its \
       interface";
  let sup = Suppress.scan input.source in
  !findings
  |> List.filter (fun (f : Finding.t) ->
         if f.Finding.rule = "S001" then
           not (Suppress.allows_anywhere sup ~rule:"S001")
         else not (Suppress.allows sup ~line:f.Finding.line ~rule:f.Finding.rule))
  |> List.sort Finding.compare
