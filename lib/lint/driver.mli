(** Source-tree walker, incremental summary cache and report rendering
    for talint.

    The driver walks [lib/], [bin/] and [bench/] under a project root,
    summarises every [.ml] file ({!Symtab}), links the whole-program
    call graph ({!Callgraph}) and runs the per-file rules plus the
    interprocedural passes ({!Escape} E001, {!Taint} T001, {!Alloccheck}
    A001), then applies the [lint/BASELINE.json] waivers ({!Baseline}).
    With [?cache_path], per-file summaries are round-tripped through a
    [talint-cache/1] JSON file keyed on source+mli MD5, so a warm run on
    an unchanged tree re-parses nothing.  It never writes to any
    channel itself. *)

exception Error of string
(** Unusable root or unreadable file. *)

val find_root : ?from:string -> unit -> string option
(** Walk up from [from] (default: the current directory) to the first
    directory containing both [dune-project] and a [lib/] directory. *)

type summary = {
  root : string;
  files : int;  (** .ml files scanned *)
  cache_hits : int;   (** summaries reused from the cache *)
  cache_misses : int; (** files parsed this run *)
  cg : Callgraph.stats;
  pass_counts : (string * int) list;
      (** live findings per source: ["file"] (lexical rules), then
          ["E001"], ["T001"], ["A001"], ["B001"] *)
  findings : Finding.t list;
      (** live (unbaselined) findings, sorted by file, line, col, rule *)
  baselined : Finding.t list;  (** waived by [lint/BASELINE.json] *)
}

val hot_paths_file : string
(** ["lint/hot_paths.txt"], relative to the project root. *)

val run : ?cache_path:string -> root:string -> unit -> summary
(** Lint the whole tree under [root].  @raise Error on an unusable root
    or unreadable source file.  An unreadable or stale-schema cache is
    ignored (cold run); an unwritable one is skipped silently. *)

val to_json : summary -> string
(** The [talint/2] report: [{"schema": "talint/2", "root",
    "files_scanned", "cache": {hits, misses}, "callgraph": {modules,
    functions, edges, unresolved}, "passes": [{id, count}], "count",
    "baselined", "findings": [{rule, file, line, col, baselined,
    message}]}].  [count] is live findings only; baselined ones are
    listed with ["baselined": true]. *)

val pp_text : Format.formatter -> summary -> unit
(** One ["file:line:col: [RULE] message"] line per finding (baselined
    ones marked), a summary line, and a call-graph/cache stats line. *)
