(** Source-tree walker and report rendering for talint.

    The driver walks [lib/], [bin/] and [bench/] under a project root,
    runs {!Rules.check} on every [.ml] file, and renders the merged
    report.  It never writes to any channel itself. *)

exception Error of string
(** Unusable root or unreadable file. *)

val find_root : ?from:string -> unit -> string option
(** Walk up from [from] (default: the current directory) to the first
    directory containing both [dune-project] and a [lib/] directory. *)

type summary = {
  root : string;
  files : int;              (** .ml files scanned *)
  findings : Finding.t list;  (** sorted by file, line, col, rule *)
}

val run : root:string -> summary
(** Lint the whole tree under [root].  @raise Error on an unusable root
    or unreadable file. *)

val to_json : summary -> string
(** The [talint/1] report: [{"schema": "talint/1", "root",
    "files_scanned", "count", "findings": [{rule, file, line, col,
    message}]}]. *)

val pp_text : Format.formatter -> summary -> unit
(** One ["file:line:col: [RULE] message"] line per finding plus a
    summary line. *)
