(* Suppression directives are plain comments so they survive formatting:

     (* talint: allow R001 — mutex-protected cross-domain cache *)

   One directive may list several rule ids.  A directive suppresses
   findings of the listed rules on its own line and on the line directly
   below it (the "comment above the offender" idiom).  File-scope rules
   (S001) honour a directive anywhere in the file. *)

type t = {
  per_line : (int * string, unit) Hashtbl.t;
  anywhere : (string, unit) Hashtbl.t;
}

let is_rule_id s =
  String.length s = 4
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 3)

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some i
    else go (i + 1)
  in
  go 0

let marker = "talint:"

let scan source =
  let per_line = Hashtbl.create 16 in
  let anywhere = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      match find_sub line marker with
      | None -> ()
      | Some j ->
          let after = j + String.length marker in
          let rest =
            String.trim (String.sub line after (String.length line - after))
          in
          if String.starts_with ~prefix:"allow" rest then begin
            let rest = String.sub rest 5 (String.length rest - 5) in
            let tokens =
              String.map (fun c -> if c = ',' || c = '\t' then ' ' else c) rest
              |> String.split_on_char ' '
            in
            (* Rule ids come first; anything else ends the list and starts
               the free-form justification. *)
            let rec take = function
              | "" :: tl -> take tl
              | tok :: tl when is_rule_id tok ->
                  Hashtbl.replace per_line (lineno, tok) ();
                  Hashtbl.replace anywhere tok ();
                  take tl
              | _ -> ()
            in
            take tokens
          end)
    (String.split_on_char '\n' source);
  { per_line; anywhere }

let allows t ~line ~rule =
  Hashtbl.mem t.per_line (line, rule)
  || (line > 1 && Hashtbl.mem t.per_line (line - 1, rule))

let allows_anywhere t ~rule = Hashtbl.mem t.anywhere rule

let entries t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.per_line []
  |> List.sort compare

let of_entries pairs =
  let per_line = Hashtbl.create 16 in
  let anywhere = Hashtbl.create 8 in
  List.iter
    (fun ((_, rule) as k) ->
      Hashtbl.replace per_line k ();
      Hashtbl.replace anywhere rule ())
    pairs;
  { per_line; anywhere }
