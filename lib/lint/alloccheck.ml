(* A001: zero-allocation hot paths.

   [lint/hot_paths.txt] names the functions the per-event simulator
   budget depends on (heap pop, drain loop, flow-table recording, the
   mux arrival handler).  Those functions and everything they reach
   through resolved call edges must not allocate: a closure, a
   list/array/record literal, a partial application or a float-boxing
   polymorphic compare inside the per-event path turns into minor-GC
   pressure multiplied by millions of events.

   Manifest grammar, one entry per line ('#' comments, blanks ignored):

     Event_queue.pop_exn          # module + function
     Flow_table.record*           # trailing * globs the function name
     desim/Sim.run_until          # optional lib-name prefix

   Allocation sites inside [raise]/[invalid_arg]/[failwith] arguments
   were already dropped at summary time — error paths are cold by
   definition.  Sites are suppressible with [talint: allow A001] on the
   offending line; a manifest entry that matches no linked function is
   itself a finding (the manifest rots otherwise). *)

type entry = {
  e_line : int;
  e_lib : string option;
  e_module : string;
  e_fn : string;  (* may end in '*' *)
}

let parse_manifest text =
  let entries = ref [] and bad = ref [] in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let s = String.trim s in
      if s <> "" then
        let lib, rest =
          match String.index_opt s '/' with
          | Some j ->
              ( Some (String.sub s 0 j),
                String.sub s (j + 1) (String.length s - j - 1) )
          | None -> (None, s)
        in
        match String.split_on_char '.' rest with
        | [ m; fn ]
          when m <> "" && fn <> ""
               && m.[0] >= 'A'
               && m.[0] <= 'Z' ->
            entries := { e_line = line; e_lib = lib; e_module = m; e_fn = fn }
                       :: !entries
        | _ -> bad := (line, s) :: !bad)
    (String.split_on_char '\n' text);
  (List.rev !entries, List.rev !bad)

let glob_matches pat name =
  if String.length pat > 0 && pat.[String.length pat - 1] = '*' then
    let prefix = String.sub pat 0 (String.length pat - 1) in
    String.starts_with ~prefix name
  else pat = name

let matches entry (nd : Callgraph.node) =
  let s = nd.n_summary in
  nd.n_fn.Symtab.fn_path = []
  && glob_matches entry.e_fn nd.n_fn.Symtab.fn_name
  && s.Symtab.s_module = entry.e_module
  && (match entry.e_lib with
     | None -> true
     | Some lib -> s.Symtab.s_lib = lib)

let run (g : Callgraph.t) ~manifest =
  let entries, bad = parse_manifest manifest in
  let nodes = Callgraph.nodes g in
  let findings = ref [] in
  List.iter
    (fun (line, s) ->
      findings :=
        Finding.v ~rule:"A001" ~file:"lint/hot_paths.txt" ~line ~col:0
          (Printf.sprintf
             "malformed hot-path entry %S (expected [lib/]Module.fn with an \
              optional trailing *)"
             s)
        :: !findings)
    bad;
  (* resolve entries to root nodes *)
  let roots = ref [] in
  List.iter
    (fun e ->
      let ids = ref [] in
      Array.iter
        (fun nd -> if matches e nd then ids := nd.Callgraph.n_id :: !ids)
        nodes;
      match !ids with
      | [] ->
          findings :=
            Finding.v ~rule:"A001" ~file:"lint/hot_paths.txt" ~line:e.e_line
              ~col:0
              (Printf.sprintf
                 "hot-path entry %s.%s matches no linked function; fix or \
                  remove it"
                 e.e_module e.e_fn)
            :: !findings
      | ids -> roots := ids @ !roots)
    entries;
  let parent = Callgraph.reach g ~roots:!roots ~enter:(fun _ -> true) in
  (* root names per reached node, for the message *)
  let root_of j =
    let rec go j = let p = Hashtbl.find parent j in if p = j then j else go p in
    nodes.(go j).Callgraph.n_qual
  in
  Hashtbl.iter
    (fun j _ ->
      let nd = nodes.(j) in
      let s = nd.Callgraph.n_summary in
      let sup = Callgraph.suppress_for g s.Symtab.s_file in
      let in_hot =
        if Hashtbl.find parent j = j then "hot-path function"
        else
          Printf.sprintf "(reached from hot path %s)" (root_of j)
      in
      let where =
        if Hashtbl.find parent j = j then
          Printf.sprintf "%s %s" in_hot nd.Callgraph.n_qual
        else Printf.sprintf "%s %s" nd.Callgraph.n_qual in_hot
      in
      List.iter
        (fun (a : Symtab.alloc) ->
          if not (Suppress.allows sup ~line:a.Symtab.a_line ~rule:"A001") then
            findings :=
              Finding.v ~rule:"A001" ~file:s.Symtab.s_file ~line:a.Symtab.a_line
                ~col:a.Symtab.a_col
                (Printf.sprintf "%s allocates in %s: %s"
                   (Symtab.alloc_kind_to_string a.Symtab.a_kind)
                   where a.Symtab.a_what)
              :: !findings)
        nd.Callgraph.n_fn.Symtab.allocs;
      (* partial applications: a call that supplies fewer arguments than
         the resolved callee's required arity allocates a closure *)
      List.iter
        (fun (k, (c : Symtab.call)) ->
          let callee = nodes.(k).Callgraph.n_fn in
          let required = callee.Symtab.fn_arity - callee.Symtab.fn_opt in
          if c.Symtab.args > 0 && c.Symtab.args < required then
            if
              not
                (Suppress.allows sup ~line:c.Symtab.c_line ~rule:"A001")
            then
              findings :=
                Finding.v ~rule:"A001" ~file:s.Symtab.s_file
                  ~line:c.Symtab.c_line ~col:c.Symtab.c_col
                  (Printf.sprintf
                     "partial application of %s (%d of %d args) allocates in \
                      %s"
                     nodes.(k).Callgraph.n_qual c.Symtab.args required where)
                :: !findings)
        (Callgraph.succ g j))
    parent;
  !findings
