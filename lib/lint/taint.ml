(* T001: transitive determinism of parallel task bodies.

   A sweep cell must be reproducible from (sweep digest, seed) alone —
   that is the whole premise of the checkpoint/resume journal and of
   cross-run comparability in the paper's tables.  D001/D002 already ban
   ambient randomness and wall-clock reads lexically, per file; this
   pass closes the interprocedural gap: a task body that calls a helper
   which calls [Unix.gettimeofday] is just as broken as one that reads
   the clock inline.

   Roots: every call site that resolves to [Scenarios.Sweep.mapi] or to
   an [Exec.Pool] fan-out entry point.  The enclosing function is
   tainted (its nested task closure is summarised into it) and the walk
   follows resolved edges, EXCEPT into [lib/prng] and [lib/obs] — the
   sanctioned boundaries: seeded streams and the metrics/trace layer are
   allowed to do what they do.  Sinks at a reached node:

     - a D001-class primitive use (where D001 applies to that file),
     - a D002-class wall-clock read (where D002 applies),
     - a write to module-level mutable state (the shared-state race
       R001 exists to prevent; Atomic/Mutex state never registers as a
       sink because [Rules.alloc_idents] excludes them).

   One finding per (root call site, sink site), reported at the root so
   the reader sees which sweep is at risk; the message carries the call
   chain.  Suppressible at either end ([talint: allow T001] on the root
   call line or on the sink line). *)

let is_target (nd : Callgraph.node) =
  let base = Filename.basename nd.n_summary.Symtab.s_file in
  let fn = nd.n_fn.Symtab.fn_name in
  (base = "sweep.ml" && fn = "mapi")
  || base = "pool.ml"
     && List.mem fn
          [ "parallel_map"; "parallel_mapi"; "parallel_init"; "both";
            "with_jobs" ]

let sanctioned (nd : Callgraph.node) =
  match nd.n_summary.Symtab.s_role with
  | Rules.Lib ("prng" | "obs") -> true
  | _ -> false

type sink = { sk_file : string; sk_site : Symtab.site; sk_desc : string }

let sinks_of (nd : Callgraph.node) =
  let s = nd.n_summary in
  let role = s.Symtab.s_role in
  let f = nd.n_fn in
  List.filter_map
    (fun x -> x)
    [
      (match f.Symtab.rand_use with
      | Some site when Rules.d001_applies role ->
          Some
            {
              sk_file = s.Symtab.s_file;
              sk_site = site;
              sk_desc = "ambient randomness (" ^ site.Symtab.s_what ^ ")";
            }
      | _ -> None);
      (match f.Symtab.clock_use with
      | Some site when Rules.d002_applies role ->
          Some
            {
              sk_file = s.Symtab.s_file;
              sk_site = site;
              sk_desc = "a wall-clock read (" ^ site.Symtab.s_what ^ ")";
            }
      | _ -> None);
      (match f.Symtab.mutates with
      | Some site ->
          Some
            {
              sk_file = s.Symtab.s_file;
              sk_site = site;
              sk_desc =
                "unsanctioned module-state mutation (" ^ site.Symtab.s_what
                ^ ")";
            }
      | _ -> None);
    ]

let run (g : Callgraph.t) =
  let nodes = Callgraph.nodes g in
  (* root call sites: (caller node, call record) resolving to a target *)
  let roots = ref [] in
  Array.iteri
    (fun i (_ : Callgraph.node) ->
      List.iter
        (fun (j, (c : Symtab.call)) ->
          if is_target nodes.(j) then roots := (i, c) :: !roots)
        (Callgraph.succ g i))
    nodes;
  let findings = ref [] in
  List.iter
    (fun (root, (call : Symtab.call)) ->
      let root_nd = nodes.(root) in
      let root_file = root_nd.Callgraph.n_summary.Symtab.s_file in
      let root_sup = Callgraph.suppress_for g root_file in
      if
        not
          (Suppress.allows root_sup ~line:call.Symtab.c_line ~rule:"T001")
      then begin
        let parent =
          Callgraph.reach g ~roots:[ root ]
            ~enter:(fun nd -> not (sanctioned nd))
        in
        let hits = ref [] in
        Hashtbl.iter
          (fun j _ ->
            List.iter
              (fun sk ->
                let sup = Callgraph.suppress_for g sk.sk_file in
                if
                  not
                    (Suppress.allows sup ~line:sk.sk_site.Symtab.s_line
                       ~rule:"T001")
                then hits := (j, sk) :: !hits)
              (sinks_of nodes.(j)))
          parent;
        (* deterministic order: by sink position *)
        let hits =
          List.sort
            (fun (_, a) (_, b) ->
              compare
                (a.sk_file, a.sk_site.Symtab.s_line, a.sk_site.Symtab.s_col)
                (b.sk_file, b.sk_site.Symtab.s_line, b.sk_site.Symtab.s_col))
            !hits
        in
        List.iter
          (fun (j, sk) ->
            let via = Callgraph.chain g parent j in
            findings :=
              Finding.v ~rule:"T001" ~file:root_file ~line:call.Symtab.c_line
                ~col:call.Symtab.c_col
                (Printf.sprintf
                   "parallel task %s reaches %s at %s:%d (call chain: %s); \
                    route it through lib/prng / lib/obs or seed it from the \
                    task input"
                   (Rules.dotted call.Symtab.callee)
                   sk.sk_desc sk.sk_file sk.sk_site.Symtab.s_line
                   (String.concat " -> " via))
              :: !findings)
          hits
      end)
    !roots;
  !findings
