(* Tree walker + report rendering.  The driver never prints by itself
   (that would trip D003); bin/talint.ml owns stdout. *)

exception Error of string

let find_root ?from () =
  let start = match from with Some d -> d | None -> Sys.getcwd () in
  let looks_like_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && (let lib = Filename.concat dir "lib" in
        Sys.file_exists lib && Sys.is_directory lib)
  in
  let rec up dir depth =
    if depth > 16 then None
    else if looks_like_root dir then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up start 0

(* Walk one top-level subtree ([lib], [bin] or [bench]), returning
   root-relative paths of the .ml files, skipping dot- and
   underscore-prefixed entries (_build, .git, editor droppings). *)
let list_ml_files root sub =
  let rec go acc rel =
    let abs = Filename.concat root rel in
    if not (Sys.file_exists abs && Sys.is_directory abs) then acc
    else begin
      let entries = Sys.readdir abs in
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then
            acc
          else
            let rel' = rel ^ "/" ^ entry in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then go acc rel'
            else if Filename.check_suffix entry ".ml" then rel' :: acc
            else acc)
        acc entries
    end
  in
  go [] sub

let role_of_rel rel =
  match String.split_on_char '/' rel with
  | "lib" :: sub :: _ :: _ -> Some (Rules.Lib sub)
  | "lib" :: _ -> Some (Rules.Lib "")
  | "bin" :: _ -> Some Rules.Bin
  | "bench" :: _ -> Some Rules.Bench
  | _ -> None

let read_file abs =
  match In_channel.with_open_bin abs In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> raise (Error msg)

type summary = { root : string; files : int; findings : Finding.t list }

let run ~root =
  if not (Sys.file_exists root && Sys.is_directory root) then
    raise (Error (Printf.sprintf "root %S is not a directory" root));
  let files =
    List.concat_map (list_ml_files root) [ "lib"; "bin"; "bench" ]
    |> List.sort String.compare
  in
  let findings =
    List.concat_map
      (fun rel ->
        match role_of_rel rel with
        | None -> []
        | Some role ->
            let abs = Filename.concat root rel in
            let mli_exists =
              Sys.file_exists (Filename.chop_suffix abs ".ml" ^ ".mli")
            in
            Rules.check
              { Rules.role; file = rel; source = read_file abs; mli_exists })
      files
  in
  { root; files = List.length files; findings = List.sort Finding.compare findings }

(* --- rendering --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"schema\": \"talint/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"root\": \"%s\",\n" (json_escape t.root));
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" t.files);
  Buffer.add_string buf
    (Printf.sprintf "  \"count\": %d,\n" (List.length t.findings));
  Buffer.add_string buf "  \"findings\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"col\": %d, \"message\": \"%s\"}"
           (json_escape f.Finding.rule)
           (json_escape f.Finding.file)
           f.Finding.line f.Finding.col
           (json_escape f.Finding.message)))
    t.findings;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let pp_text ppf t =
  List.iter
    (fun f -> Format.fprintf ppf "%s@." (Finding.to_string f))
    t.findings;
  let n = List.length t.findings in
  Format.fprintf ppf "talint: %d file%s scanned, %d finding%s@." t.files
    (if t.files = 1 then "" else "s")
    n
    (if n = 1 then "" else "s")
