(* Tree walker, incremental summary cache, whole-program pipeline and
   report rendering.  The driver never prints by itself (that would trip
   D003); bin/talint.ml owns stdout.

   Pipeline: list .ml files -> load the summary cache (if any) -> parse
   and summarise only the files whose MD5 key changed -> rewrite the
   cache -> link the call graph -> run the whole-program passes (E001 /
   T001 / A001) -> apply lint/BASELINE.json waivers -> sort.  A warm run
   on an unchanged tree does no parsing at all. *)

exception Error of string

let find_root ?from () =
  let start = match from with Some d -> d | None -> Sys.getcwd () in
  let looks_like_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && (let lib = Filename.concat dir "lib" in
        Sys.file_exists lib && Sys.is_directory lib)
  in
  let rec up dir depth =
    if depth > 16 then None
    else if looks_like_root dir then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent (depth + 1)
  in
  up start 0

(* Walk one top-level subtree ([lib], [bin] or [bench]), returning
   root-relative paths of the .ml files, skipping dot- and
   underscore-prefixed entries (_build, .git, editor droppings). *)
let list_ml_files root sub =
  let rec go acc rel =
    let abs = Filename.concat root rel in
    if not (Sys.file_exists abs && Sys.is_directory abs) then acc
    else begin
      let entries = Sys.readdir abs in
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          if String.length entry = 0 || entry.[0] = '.' || entry.[0] = '_' then
            acc
          else
            let rel' = rel ^ "/" ^ entry in
            let abs' = Filename.concat root rel' in
            if Sys.is_directory abs' then go acc rel'
            else if Filename.check_suffix entry ".ml" then rel' :: acc
            else acc)
        acc entries
    end
  in
  go [] sub

let role_of_rel rel =
  match String.split_on_char '/' rel with
  | "lib" :: sub :: _ :: _ -> Some (Rules.Lib sub)
  | "lib" :: _ -> Some (Rules.Lib "")
  | "bin" :: _ -> Some Rules.Bin
  | "bench" :: _ -> Some Rules.Bench
  | _ -> None

let read_file abs =
  match In_channel.with_open_bin abs In_channel.input_all with
  | s -> s
  | exception Sys_error msg -> raise (Error msg)

let read_file_opt abs =
  if Sys.file_exists abs then Some (read_file abs) else None

(* --- dune library layout ---

   A naive scan of each [lib/<dir>/dune] for [(name X)] and
   [(wrapped false)].  The library NAME is what callers alias
   (lib/core's library is [linkpad], so call paths say [Linkpad.]);
   unwrapped libraries expose their modules globally. *)

type lib_info = { li_name : string; li_wrapped : bool }

let scan_dune_libs root =
  let infos = Hashtbl.create 16 in
  let lib_dir = Filename.concat root "lib" in
  if Sys.file_exists lib_dir && Sys.is_directory lib_dir then
    Array.iter
      (fun sub ->
        let dune = Filename.concat (Filename.concat lib_dir sub) "dune" in
        if Sys.file_exists dune then begin
          let text = read_file dune in
          let find_field field =
            (* match "(field" then take the next token up to ')' or ws *)
            let pat = "(" ^ field in
            let n = String.length text and m = String.length pat in
            let rec go i =
              if i + m > n then None
              else if String.sub text i m = pat then begin
                let j = ref (i + m) in
                while
                  !j < n && (text.[!j] = ' ' || text.[!j] = '\n'
                             || text.[!j] = '\t')
                do
                  incr j
                done;
                let k = ref !j in
                while
                  !k < n && text.[!k] <> ')' && text.[!k] <> ' '
                  && text.[!k] <> '\n' && text.[!k] <> '\t'
                do
                  incr k
                done;
                if !k > !j then Some (String.sub text !j (!k - !j)) else None
              end
              else go (i + 1)
            in
            go 0
          in
          let name =
            match find_field "name" with Some n -> n | None -> sub
          in
          let wrapped =
            match find_field "wrapped" with
            | Some "false" -> false
            | _ -> true
          in
          Hashtbl.replace infos sub { li_name = name; li_wrapped = wrapped }
        end)
      (Sys.readdir lib_dir);
  infos

(* --- summary cache --- *)

let load_cache path =
  let table = Hashtbl.create 64 in
  (match read_file_opt path with
  | None -> ()
  | Some text -> (
      match Obs.Json.of_string text with
      | Error _ -> ()
      | Ok j -> (
          match (Obs.Json.member "schema" j, Obs.Json.member "entries" j) with
          | Some (Obs.Json.Str s), Some (Obs.Json.Arr entries)
            when s = Symtab.cache_schema -> (
              try
                List.iter
                  (fun ej ->
                    let sum = Symtab.of_json ej in
                    Hashtbl.replace table sum.Symtab.s_file sum)
                  entries
              with Symtab.Bad_cache -> Hashtbl.reset table)
          | _ -> ())))
  ;
  table

let write_cache path (summaries : Symtab.t list) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":%S,\"entries\":[" Symtab.cache_schema);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Symtab.to_json_buf buf s)
    summaries;
  Buffer.add_string buf "]}\n";
  try
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Buffer.contents buf))
  with Sys_error _ -> ()  (* an unwritable cache is a slow run, not an error *)

(* --- the pipeline --- *)

type summary = {
  root : string;
  files : int;
  cache_hits : int;
  cache_misses : int;
  cg : Callgraph.stats;
  pass_counts : (string * int) list;  (** live findings per source *)
  findings : Finding.t list;          (** live (unbaselined), sorted *)
  baselined : Finding.t list;         (** waived by lint/BASELINE.json *)
}

let hot_paths_file = "lint/hot_paths.txt"

let run ?cache_path ~root () =
  if not (Sys.file_exists root && Sys.is_directory root) then
    raise (Error (Printf.sprintf "root %S is not a directory" root));
  let files =
    List.concat_map (list_ml_files root) [ "lib"; "bin"; "bench" ]
    |> List.sort String.compare
  in
  let libs = scan_dune_libs root in
  let cache =
    match cache_path with
    | Some p -> load_cache p
    | None -> Hashtbl.create 1
  in
  let hits = ref 0 and misses = ref 0 in
  let summaries =
    List.filter_map
      (fun rel ->
        match role_of_rel rel with
        | None -> None
        | Some role ->
            let abs = Filename.concat root rel in
            let source = read_file abs in
            let mli_source =
              read_file_opt (Filename.chop_suffix abs ".ml" ^ ".mli")
            in
            let key = Symtab.key ~source ~mli_source in
            (match Hashtbl.find_opt cache rel with
            | Some cached when cached.Symtab.s_key = key ->
                incr hits;
                Some cached
            | _ ->
                incr misses;
                let lib, wrapped =
                  match role with
                  | Rules.Lib sub -> (
                      match Hashtbl.find_opt libs sub with
                      | Some { li_name; li_wrapped } -> (li_name, li_wrapped)
                      | None -> (sub, true))
                  | Rules.Bin | Rules.Bench -> ("", true)
                in
                Some
                  (Symtab.summarize ~role ~lib ~wrapped ~file:rel ~source
                     ~mli_source)))
      files
  in
  (match cache_path with
  | Some p -> write_cache p summaries
  | None -> ());
  let graph = Callgraph.build summaries in
  let per_file =
    List.concat_map (fun s -> s.Symtab.s_findings) summaries
  in
  let manifest =
    Option.value
      (read_file_opt (Filename.concat root hot_paths_file))
      ~default:""
  in
  let e001 = Escape.run graph in
  let t001 = Taint.run graph in
  let a001 = Alloccheck.run graph ~manifest in
  let baseline_text =
    read_file_opt (Filename.concat root Baseline.file_name)
  in
  let live, baselined =
    Baseline.apply ~text:baseline_text (per_file @ e001 @ t001 @ a001)
  in
  let live = List.sort Finding.compare live in
  let baselined = List.sort Finding.compare baselined in
  let count_rule prefix =
    List.length (List.filter (fun f -> f.Finding.rule = prefix) live)
  in
  let pass_counts =
    [
      ( "file",
        List.length
          (List.filter
             (fun (f : Finding.t) ->
               not (List.mem f.Finding.rule [ "E001"; "T001"; "A001"; "B001" ]))
             live) );
      ("E001", count_rule "E001");
      ("T001", count_rule "T001");
      ("A001", count_rule "A001");
      ("B001", count_rule "B001");
    ]
  in
  {
    root;
    files = List.length files;
    cache_hits = !hits;
    cache_misses = !misses;
    cg = Callgraph.stats graph;
    pass_counts;
    findings = live;
    baselined;
  }

(* --- rendering --- *)

let json_escape = Obs.Json.escape

let finding_json buf ~baselined (f : Finding.t) =
  Buffer.add_string buf
    (Printf.sprintf
       "\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \"col\": \
        %d, \"baselined\": %b, \"message\": \"%s\"}"
       (json_escape f.Finding.rule)
       (json_escape f.Finding.file)
       f.Finding.line f.Finding.col baselined
       (json_escape f.Finding.message))

let to_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema\": \"talint/2\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"root\": \"%s\",\n" (json_escape t.root));
  Buffer.add_string buf (Printf.sprintf "  \"files_scanned\": %d,\n" t.files);
  Buffer.add_string buf
    (Printf.sprintf "  \"cache\": {\"hits\": %d, \"misses\": %d},\n"
       t.cache_hits t.cache_misses);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"callgraph\": {\"modules\": %d, \"functions\": %d, \"edges\": %d, \
        \"unresolved\": %d},\n"
       t.cg.Callgraph.cg_modules t.cg.Callgraph.cg_functions
       t.cg.Callgraph.cg_edges t.cg.Callgraph.cg_unresolved);
  Buffer.add_string buf "  \"passes\": [";
  List.iteri
    (fun i (p, n) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "{\"id\": \"%s\", \"count\": %d}" p n))
    t.pass_counts;
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"count\": %d,\n" (List.length t.findings));
  Buffer.add_string buf
    (Printf.sprintf "  \"baselined\": %d,\n" (List.length t.baselined));
  Buffer.add_string buf "  \"findings\": [";
  let first = ref true in
  List.iter
    (fun f ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      finding_json buf ~baselined:false f)
    t.findings;
  List.iter
    (fun f ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      finding_json buf ~baselined:true f)
    t.baselined;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let pp_text ppf t =
  List.iter
    (fun f -> Format.fprintf ppf "%s@." (Finding.to_string f))
    t.findings;
  List.iter
    (fun f -> Format.fprintf ppf "%s (baselined)@." (Finding.to_string f))
    t.baselined;
  let n = List.length t.findings in
  Format.fprintf ppf
    "talint: %d file%s scanned, %d finding%s (%d baselined)@." t.files
    (if t.files = 1 then "" else "s")
    n
    (if n = 1 then "" else "s")
    (List.length t.baselined);
  Format.fprintf ppf
    "callgraph: %d modules, %d functions, %d edges (%d unresolved); cache: \
     %d hit%s, %d miss%s@."
    t.cg.Callgraph.cg_modules t.cg.Callgraph.cg_functions
    t.cg.Callgraph.cg_edges t.cg.Callgraph.cg_unresolved t.cache_hits
    (if t.cache_hits = 1 then "" else "s")
    t.cache_misses
    (if t.cache_misses = 1 then "" else "es")
