type t = { rule : string; file : string; line : int; col : int; message : string }

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | d -> d)
          | d -> d)
      | d -> d)
  | d -> d

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message
