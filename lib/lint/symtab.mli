(** Per-file interprocedural summaries: the cacheable unit of the
    whole-program passes.

    [summarize] parses one [.ml] file and records, for every
    module-level binding, its outgoing calls (with argument counts),
    directly-raised and caught exceptions, allocation sites, and
    D001/D002 primitive uses.  Summaries are purely file-local, so the
    incremental driver can key each one on the MD5 of the file pair
    (source + [.mli]) and round-trip it through the [talint-cache/1]
    JSON cache; {!Callgraph} links them across files afterwards. *)

type site = { s_line : int; s_col : int; s_what : string }

type call = {
  callee : string list;  (** normalised dotted path as written *)
  args : int;  (** 0 = bare reference (escaping value, never "partial") *)
  c_line : int;
  c_col : int;
  c_defer : bool;
      (** the call sits inside a closure passed to the supervision
          machinery ([Sweep.mapi] / [Supervise.run] / [Exec.Pool]
          fan-outs), which catches and classifies task exceptions: the
          escape pass skips such edges, taint/alloc still follow them *)
}

type alloc_kind = Closure | List_lit | Array_lit | Record_lit | Float_box

val alloc_kind_to_string : alloc_kind -> string

type alloc = { a_kind : alloc_kind; a_line : int; a_col : int; a_what : string }

type fn = {
  fn_path : string list;  (** submodule path within the file *)
  fn_name : string;  (** ["(init)"] for [let () = ...] blocks *)
  fn_arity : int;
  fn_opt : int;  (** optional parameters among [fn_arity] *)
  fn_line : int;
  fn_col : int;
  calls : call list;
  raises : string list;  (** dotted constructor paths raised directly *)
  catches : string list;  (** exception names caught; ["*"] = catch-all *)
  allocs : alloc list;
  rand_use : site option;
  clock_use : site option;
  mutates : site option;
}

type t = {
  s_file : string;
  s_key : string;
  s_role : Rules.role;
  s_lib : string;  (** dune library name; [""] for bin/bench *)
  s_wrapped : bool;
  s_module : string;
  s_has_mli : bool;
  s_funcs : fn list;
  s_exceptions : string list;
  s_mli_vals : (string * string) list;  (** exported val -> doc comment *)
  s_suppress : (int * string) list;
  s_findings : Finding.t list;  (** per-file lexical findings *)
  s_parsed : bool;  (** [false]: E000; whole-program passes skip it *)
}

val key : source:string -> mli_source:string option -> string
(** The cache key: MD5 over both members of the file pair, so editing
    only the [.mli] (e.g. a doc contract) still invalidates. *)

val module_name_of_file : string -> string

val summarize :
  role:Rules.role ->
  lib:string ->
  wrapped:bool ->
  file:string ->
  source:string ->
  mli_source:string option ->
  t
(** Parse and summarise one file.  Never raises: unparsable sources get
    [s_parsed = false] and carry only the E000 finding from
    {!Rules.check}. *)

val suppress : t -> Suppress.t
(** Rebuild the suppression table from the cached entries. *)

val cache_schema : string
(** ["talint-cache/1"]. *)

val to_json_buf : Buffer.t -> t -> unit
(** Append the summary as one JSON object (cache write path). *)

exception Bad_cache

val of_json : Obs.Json.t -> t
(** Parse a {!to_json_buf} object back.  Raises {!Bad_cache} on any
    shape mismatch — the driver treats that as a cold cache. *)
