(** A single lint report: rule id, span-accurate position, message. *)

type t = {
  rule : string;  (** "D001", "R001", ... *)
  file : string;  (** path relative to the linted root *)
  line : int;     (** 1-based *)
  col : int;      (** 0-based, as compilers print them *)
  message : string;
}

val v : rule:string -> file:string -> line:int -> col:int -> string -> t

val compare : t -> t -> int
(** Orders by file, line, col, rule, message — the report order. *)

val to_string : t -> string
(** ["file:line:col: [RULE] message"], clickable in editors and CI logs. *)
