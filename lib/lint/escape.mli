(** E001 — transitive exception escape.

    Computes, per call-graph node, the set of project-declared
    exceptions that can escape it (direct raises plus callee escapes,
    minus handled ones; a catch-all absorbs callee contributions), then
    flags every exported library value whose escape set contains an
    exception not named in its [.mli] doc comment.

    Standard-library exceptions are deliberately out of scope; findings
    are suppressible with [talint: allow E001] at the definition. *)

val run : Callgraph.t -> Finding.t list

val doc_mentions : string -> string -> bool
(** Does the doc text mention the exception name (substring match)?
    Exposed for the test suite. *)
