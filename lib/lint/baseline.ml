(* lint/BASELINE.json — the committed waiver file ([talint-baseline/1]):

     { "schema": "talint-baseline/1",
       "waivers": [
         { "rule": "A001",
           "file": "lib/netsim/packet.ml",
           "contains": "record allocates",
           "reason": "packet identity requires one record per arrival; \
                      revisit if the arrival loop moves to a pool" } ] }

   A waiver matches a finding when the rule and file are equal and the
   message contains the [contains] substring.  Matching findings are
   demoted to "baselined" (reported, exit-code-neutral).  A waiver that
   matches nothing is itself a B001 finding — stale entries must be
   deleted, not accumulated — as is a malformed one.  [reason] is
   mandatory: a waiver without a justification is not a waiver. *)

type waiver = {
  w_index : int;  (* 1-based position in the waivers array *)
  w_rule : string;
  w_file : string;
  w_contains : string;
  w_reason : string;
}

let schema = "talint-baseline/1"
let file_name = "lint/BASELINE.json"

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go k = k + m <= n && (String.sub hay k m = needle || go (k + 1)) in
  m = 0 || go 0

(* Returns the parsed waivers plus B001 findings for malformed input.
   B001 positions index into the waivers array (line = entry position),
   since a hand-rolled parser has no source locations. *)
let parse text =
  let bad index msg =
    Finding.v ~rule:"B001" ~file:file_name ~line:index ~col:0 msg
  in
  match Obs.Json.of_string text with
  | Error e -> ([], [ bad 0 ("baseline file is not valid JSON: " ^ e) ])
  | Ok j -> (
      match Obs.Json.member "schema" j with
      | Some (Obs.Json.Str s) when s = schema -> (
          match Obs.Json.member "waivers" j with
          | Some (Obs.Json.Arr ws) ->
              let waivers = ref [] and findings = ref [] in
              List.iteri
                (fun i w ->
                  let index = i + 1 in
                  let str k =
                    match Obs.Json.member k w with
                    | Some (Obs.Json.Str s) when s <> "" -> Some s
                    | _ -> None
                  in
                  match (str "rule", str "file", str "contains", str "reason")
                  with
                  | Some rule, Some file, Some c, Some reason ->
                      waivers :=
                        {
                          w_index = index;
                          w_rule = rule;
                          w_file = file;
                          w_contains = c;
                          w_reason = reason;
                        }
                        :: !waivers
                  | _ ->
                      findings :=
                        bad index
                          (Printf.sprintf
                             "waiver %d is malformed: rule, file, contains \
                              and a non-empty reason are all required"
                             index)
                        :: !findings)
                ws;
              (List.rev !waivers, List.rev !findings)
          | _ -> ([], [ bad 0 "baseline file has no \"waivers\" array" ]))
      | _ ->
          ([], [ bad 0 ("baseline file schema is not " ^ schema) ]))

let matches w (f : Finding.t) =
  w.w_rule = f.Finding.rule
  && w.w_file = f.Finding.file
  && contains f.Finding.message w.w_contains

(* Split findings into (live, baselined) and append B001 findings for
   malformed and stale waivers to the live set. *)
let apply ~text findings =
  match text with
  | None -> (findings, [])
  | Some text ->
      let waivers, malformed = parse text in
      let used = Hashtbl.create 8 in
      let live, baselined =
        List.partition
          (fun f ->
            match List.find_opt (fun w -> matches w f) waivers with
            | Some w ->
                Hashtbl.replace used w.w_index ();
                false
            | None -> true)
          findings
      in
      let stale =
        List.filter_map
          (fun w ->
            if Hashtbl.mem used w.w_index then None
            else
              Some
                (Finding.v ~rule:"B001" ~file:file_name ~line:w.w_index ~col:0
                   (Printf.sprintf
                      "stale waiver %d (%s in %s, contains %S) matches no \
                       current finding; delete it"
                      w.w_index w.w_rule w.w_file w.w_contains)))
          waivers
      in
      (live @ malformed @ stale, baselined)
