(** [lint/BASELINE.json] — committed waivers ([talint-baseline/1]).

    Each waiver ([{rule, file, contains, reason}]) demotes matching
    findings (same rule and file, message contains the substring) to
    "baselined": still reported, but exit-code-neutral.  Malformed and
    stale waivers (matching no current finding) surface as live B001
    findings whose line number is the waiver's 1-based position in the
    array, so the file cannot silently rot. *)

val schema : string
(** ["talint-baseline/1"]. *)

val file_name : string
(** ["lint/BASELINE.json"], relative to the project root. *)

val apply :
  text:string option -> Finding.t list -> Finding.t list * Finding.t list
(** [apply ~text findings] is [(live, baselined)].  [text = None] (no
    baseline file) leaves every finding live. *)
