(* E001: transitive exception escape vs. the .mli doc contract.

   Fixpoint over the call graph: the escape set of a function is its
   directly-raised project exceptions plus the escape sets of its
   resolved callees, minus what it catches ([try]/[match exception]).
   A catch-all handler ("*") absorbs callee contributions but keeps the
   function's own raises (the common shape is [try work () with _ ->],
   wrapping the call, not the raise).

   Only project-declared exceptions are tracked — [Invalid_argument]
   from a bounds check is part of the stdlib vocabulary, but letting
   [Tap_starved] sail through an exported API undocumented is a contract
   bug.  A finding fires when an exported value of an [.mli]-carrying
   library module can raise a project exception whose name does not
   appear in that value's doc comment. *)

module S = Set.Make (String)

let last path =
  match List.rev (String.split_on_char '.' path) with
  | x :: _ -> x
  | [] -> path

let escape_sets (g : Callgraph.t) =
  let nodes = Callgraph.nodes g in
  let n = Array.length nodes in
  let direct = Array.make n S.empty in
  let catch_all = Array.make n false in
  let catches = Array.make n S.empty in
  Array.iteri
    (fun i (nd : Callgraph.node) ->
      direct.(i) <-
        S.of_list
          (List.filter
             (Callgraph.is_project_exception g)
             (List.map last nd.n_fn.Symtab.raises));
      catch_all.(i) <- List.mem "*" nd.n_fn.Symtab.catches;
      catches.(i) <- S.of_list nd.n_fn.Symtab.catches)
    nodes;
  let esc = Array.map (fun _ -> S.empty) nodes in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun i _ ->
        let from_callees =
          if catch_all.(i) then S.empty
          else
            List.fold_left
              (fun acc (j, (c : Symtab.call)) ->
                (* deferred calls run under the supervision machinery's
                   catch-all classification: not this function's escape *)
                if c.Symtab.c_defer then acc else S.union acc esc.(j))
              S.empty (Callgraph.succ g i)
        in
        let next = S.diff (S.union direct.(i) from_callees) catches.(i) in
        if not (S.equal next esc.(i)) then begin
          esc.(i) <- next;
          changed := true
        end)
      nodes
  done;
  esc

(* Witness chain: walk edges from [i] to the nearest node that raises
   [exc] directly, for the finding message. *)
let witness (g : Callgraph.t) esc i exc =
  let nodes = Callgraph.nodes g in
  let direct_raises j =
    List.exists
      (fun r -> last r = exc)
      nodes.(j).Callgraph.n_fn.Symtab.raises
  in
  let parent =
    Callgraph.reach g ~roots:[ i ] ~enter:(fun nd -> S.mem exc esc.(nd.Callgraph.n_id))
  in
  let best = ref None in
  Hashtbl.iter
    (fun j _ ->
      if direct_raises j then
        let c = Callgraph.chain g parent j in
        match !best with
        | Some c' when List.length c' <= List.length c -> ()
        | _ -> best := Some c)
    parent;
  !best

let doc_mentions doc exc =
  (* substring match is enough: "Raises [Tap_starved] when ..." *)
  let n = String.length doc and m = String.length exc in
  let rec go k =
    k + m <= n && (String.sub doc k m = exc || go (k + 1))
  in
  m > 0 && go 0

let run (g : Callgraph.t) =
  let esc = escape_sets g in
  let nodes = Callgraph.nodes g in
  let findings = ref [] in
  Array.iteri
    (fun i (nd : Callgraph.node) ->
      let s = nd.n_summary in
      match s.Symtab.s_role with
      | Rules.Bin | Rules.Bench -> ()
      | Rules.Lib _ ->
          if
            s.Symtab.s_has_mli
            && nd.n_fn.Symtab.fn_path = []
            && (not (S.is_empty esc.(i)))
          then begin
            match List.assoc_opt nd.n_fn.Symtab.fn_name s.Symtab.s_mli_vals with
            | None -> ()  (* not exported *)
            | Some doc ->
                S.iter
                  (fun exc ->
                    if not (doc_mentions doc exc) then
                      let sup = Callgraph.suppress_for g s.Symtab.s_file in
                      let line = nd.n_fn.Symtab.fn_line in
                      if not (Suppress.allows sup ~line ~rule:"E001") then
                        let via =
                          match witness g esc i exc with
                          | Some (_ :: _ :: _ as c) ->
                              " (via " ^ String.concat " -> " c ^ ")"
                          | _ -> ""
                        in
                        findings :=
                          Finding.v ~rule:"E001" ~file:s.Symtab.s_file ~line
                            ~col:nd.n_fn.Symtab.fn_col
                            (Printf.sprintf
                               "exported %s may raise %s%s but its .mli doc \
                                contract does not declare it; add \"Raises \
                                [%s] ...\" to the doc comment or catch it"
                               nd.n_qual exc via exc)
                          :: !findings)
                  esc.(i)
          end)
    nodes;
  !findings
