(** The whole-program call graph: {!Symtab} summaries linked across
    files by resolving dotted call paths against the dune library layout
    (wrapped-library aliases, same-library siblings, the unwrapped
    [lib/fleet] globals).  Conservative: calls through function values,
    functors or the stdlib stay unresolved and are simply absent as
    edges. *)

type node = {
  n_id : int;
  n_summary : Symtab.t;
  n_fn : Symtab.fn;
  n_qual : string;  (** ["Module.sub.fn"] display name *)
}

type stats = {
  cg_modules : int;     (** parsed file summaries linked *)
  cg_functions : int;   (** graph nodes *)
  cg_edges : int;       (** resolved call edges *)
  cg_unresolved : int;  (** project-module-headed calls left unresolved *)
}

type t

val build : Symtab.t list -> t
(** Link the summaries.  Unparsable files (E000) are dropped first. *)

val nodes : t -> node array

val succ : t -> int -> (int * Symtab.call) list
(** Resolved outgoing edges of a node, with the originating call site. *)

val stats : t -> stats
val summary_of_file : t -> string -> Symtab.t option

val suppress_for : t -> string -> Suppress.t
(** Memoised suppression table of a linked file (empty for unknown
    files), so whole-program passes can honour [talint: allow]
    directives at finding sites. *)

val is_project_exception : t -> string -> bool
(** Is this exception name declared by any linked file?  (E001 only
    audits project exceptions, never [Invalid_argument] and friends.) *)

val project_exceptions : t -> string list

val reach :
  t -> roots:int list -> enter:(node -> bool) -> (int, int) Hashtbl.t
(** Breadth-first closure from [roots] over resolved edges; [enter]
    vetoes traversal into a node (sanctioned boundaries).  The result
    maps each reached node to its BFS parent (roots to themselves). *)

val chain : t -> (int, int) Hashtbl.t -> int -> string list
(** Reconstruct the qualified-name path from a root to a reached node
    using a {!reach} parent table. *)
