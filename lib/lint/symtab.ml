(* Per-file interprocedural summaries.

   [summarize] parses one .ml file with compiler-libs and extracts, for
   every module-level binding: the calls it makes (with argument counts,
   for partial-application detection), the exceptions it raises and
   catches, the allocation sites A001 cares about, and the D001/D002
   primitive uses the taint pass treats as sinks.  The result is
   file-local — no cross-file resolution happens here — which is what
   makes it cacheable: the incremental driver keys a summary on the MD5
   of (source + mli) and reuses it verbatim on warm runs.  [Callgraph]
   later links summaries into the whole-program view.

   Everything is syntactic (same compiler-libs-only footing as [Rules]):
   conservative in the non-flagging direction — calls through function
   values, record fields or functors are simply unresolved edges. *)

type site = { s_line : int; s_col : int; s_what : string }

type call = {
  callee : string list;
  args : int;
  c_line : int;
  c_col : int;
  c_defer : bool;
}
(* [args = 0]: a bare reference (the function escapes as a value; treated
   as a possible call by the reachability passes, never as a partial
   application).  [c_defer]: the call sits inside a closure passed to the
   supervision machinery (Sweep.mapi / Supervise.run / Pool fan-outs) —
   it runs under that machinery's catch-all classification, so the
   escape pass must not propagate its exceptions to the enclosing
   function; taint and alloc reachability still follow it (the task body
   is exactly what they audit). *)

type alloc_kind = Closure | List_lit | Array_lit | Record_lit | Float_box

let alloc_kind_to_string = function
  | Closure -> "closure"
  | List_lit -> "list literal"
  | Array_lit -> "array literal"
  | Record_lit -> "record literal"
  | Float_box -> "float-boxing polymorphic compare"

type alloc = { a_kind : alloc_kind; a_line : int; a_col : int; a_what : string }

type fn = {
  fn_path : string list;  (* submodule path within the file *)
  fn_name : string;       (* "(init)" for [let () = ...] blocks *)
  fn_arity : int;
  fn_opt : int;           (* optional parameters among [fn_arity] *)
  fn_line : int;
  fn_col : int;
  calls : call list;
  raises : string list;   (* dotted constructor paths raised directly *)
  catches : string list;  (* exception names caught; "*" = catch-all *)
  allocs : alloc list;
  rand_use : site option;   (* first D001-class primitive in the body *)
  clock_use : site option;  (* first D002-class primitive in the body *)
  mutates : site option;    (* first write to module-level mutable state *)
}

type t = {
  s_file : string;
  s_key : string;  (* MD5 of source + mli: the cache key *)
  s_role : Rules.role;
  s_lib : string;      (* dune library name; "" for bin/bench *)
  s_wrapped : bool;
  s_module : string;   (* capitalised module name of the file *)
  s_has_mli : bool;
  s_funcs : fn list;
  s_exceptions : string list;         (* exceptions declared in this .ml *)
  s_mli_vals : (string * string) list;  (* exported val -> attached doc *)
  s_suppress : (int * string) list;
  s_findings : Finding.t list;  (* per-file lexical findings, pre-filtered *)
  s_parsed : bool;  (* false: E000 — whole-program passes skip the file *)
}

let key ~source ~mli_source =
  Digest.to_hex
    (Digest.string
       (source ^ "\x00" ^ Option.value mli_source ~default:"\x01none"))

let module_name_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

(* --- mutation heads: writes to a first-argument mutable container --- *)

let mutator = function
  | [ ":=" ] | [ "incr" ] | [ "decr" ] -> true
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear") ] -> true
  | [ "Queue"; ("push" | "add" | "pop" | "take" | "clear" | "transfer") ] ->
      true
  | [ "Stack"; ("push" | "pop" | "clear") ] -> true
  | [ "Buffer"; w ] ->
      String.length w >= 4 && String.sub w 0 4 = "add_"
      || w = "clear" || w = "reset" || w = "truncate"
  | [ ("Array" | "Bytes"); ("set" | "unsafe_set" | "fill" | "blit") ] -> true
  | [ "Float"; "Array"; ("set" | "unsafe_set" | "fill" | "blit") ] -> true
  | _ -> false

(* --- doc attributes on .mli items --- *)

let doc_of_attributes attrs =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "ocaml.doc" | "doc" -> (
          match a.attr_payload with
          | Parsetree.PStr
              [ {
                  pstr_desc =
                    Pstr_eval
                      ( {
                          pexp_desc =
                            Pexp_constant (Pconst_string (s, _, _));
                          _;
                        },
                        _ );
                  _;
                } ] ->
              Some s
          | _ -> None)
      | _ -> None)
    attrs
  |> String.concat "\n"

let mli_vals mli_source file =
  match mli_source with
  | None -> []
  | Some src -> (
      let lexbuf = Lexing.from_string src in
      Location.init lexbuf (file ^ "i");
      match Parse.interface lexbuf with
      | exception _ -> []
      | items ->
          List.filter_map
            (fun (item : Parsetree.signature_item) ->
              match item.psig_desc with
              | Psig_value vd ->
                  Some
                    (vd.pval_name.txt, doc_of_attributes vd.pval_attributes)
              | _ -> None)
            items)

(* --- the structure walk --- *)

let pos_of loc =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, max 0 (p.Lexing.pos_cnum - p.Lexing.pos_bol))

let exception_name (ext : Parsetree.extension_constructor) = ext.pext_name.txt

(* Collect the module-level mutable binding names first, so the body walk
   can recognise writes to them. *)
let toplevel_mutables structure =
  let names = ref [] in
  let is_state_alloc (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match Rules.normalize txt with
        | [ "ref" ]
        | [ ("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Weak"); "create" ]
        | [ "Array"; ("make" | "init" | "create_float" | "make_matrix") ]
        | [ "Bytes"; ("create" | "make") ] ->
            true
        | _ -> false)
    | Pexp_array (_ :: _) -> true
    | _ -> false
  in
  let rec go items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
                | Ppat_var { txt; _ }, _ when is_state_alloc vb.pvb_expr ->
                    names := txt :: !names
                | _ -> ())
              bindings
        | Pstr_module
            { pmb_expr = { pmod_desc = Pmod_structure items'; _ }; _ } ->
            go items'
        | _ -> ())
      items
  in
  go structure;
  !names

type collector = {
  mutable calls : call list;
  mutable raises : string list;
  mutable catches : string list;
  mutable allocs : alloc list;
  mutable rand : site option;
  mutable clock : site option;
  mutable mut : site option;
}

let collect ~mutables body_exprs =
  let c =
    {
      calls = [];
      raises = [];
      catches = [];
      allocs = [];
      rand = None;
      clock = None;
      mut = None;
    }
  in
  let in_raise = ref false in
  let in_list = ref false in
  (* Inside the argument list of a supervision-machinery call / inside a
     closure within such an argument list: see [c_defer]. *)
  let in_supervised = ref false in
  let deferred = ref false in
  let site loc what =
    let l, col = pos_of loc in
    { s_line = l; s_col = col; s_what = what }
  in
  let add_alloc kind loc what =
    if not !in_raise then
      let l, col = pos_of loc in
      c.allocs <- { a_kind = kind; a_line = l; a_col = col; a_what = what }
                  :: c.allocs
  in
  let prim path loc =
    (match path with
    | "Random" :: _ when c.rand = None ->
        c.rand <- Some (site loc (Rules.dotted path))
    | _ -> ());
    if c.clock = None && List.mem path Rules.time_idents then
      c.clock <- Some (site loc (Rules.dotted path))
  in
  let record_call path n loc =
    let l, col = pos_of loc in
    c.calls <-
      { callee = path; args = n; c_line = l; c_col = col; c_defer = !deferred }
      :: c.calls
  in
  (* The entry points whose contract is "task exceptions are caught and
     classified, never re-raised raw": closures handed to them defer. *)
  let supervised path =
    match List.rev path with
    | "mapi" :: "Sweep" :: _ -> true
    | ("run" | "with_event_budget") :: "Supervise" :: _ -> true
    | ( "parallel_map" | "parallel_mapi" | "parallel_init" | "both"
      | "with_jobs" )
      :: "Pool" :: _ ->
        true
    | _ -> false
  in
  let catch_of_pattern (p : Parsetree.pattern) =
    let rec go (p : Parsetree.pattern) acc =
      match p.ppat_desc with
      | Ppat_construct ({ txt; _ }, _) -> (
          match Rules.normalize txt with
          | [] -> acc
          | path -> List.nth path (List.length path - 1) :: acc)
      | Ppat_or (a, b) -> go a (go b acc)
      | Ppat_alias (p, _) -> go p acc
      | Ppat_any | Ppat_var _ -> "*" :: acc
      | _ -> acc
    in
    go p []
  in
  let default = Ast_iterator.default_iterator in
  let rec expr it (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        let path = Rules.normalize txt in
        prim path loc;
        record_call path 0 loc
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) -> (
        let path = Rules.normalize txt in
        prim path loc;
        (match Rules.float_polycmp e with
        | Some op ->
            add_alloc Float_box e.pexp_loc
              (Printf.sprintf "polymorphic %s on float operands" op)
        | None -> ());
        match path with
        | [ ("raise" | "raise_notrace") ] ->
            (match args with
            | (_, { Parsetree.pexp_desc = Pexp_construct ({ txt; _ }, _); _ })
              :: _
              when not !deferred ->
                c.raises <- Rules.dotted (Rules.normalize txt) :: c.raises
            | _ -> ());
            let saved = !in_raise in
            in_raise := true;
            List.iter (fun (_, a) -> expr it a) args;
            in_raise := saved
        | [ "invalid_arg" ] | [ "failwith" ] ->
            if not !deferred then
              c.raises <-
                (if path = [ "invalid_arg" ] then "Invalid_argument"
                 else "Failure")
                :: c.raises;
            let saved = !in_raise in
            in_raise := true;
            List.iter (fun (_, a) -> expr it a) args;
            in_raise := saved
        | _ ->
            record_call path (List.length args) loc;
            (match (path, args) with
            | mpath, (_, { Parsetree.pexp_desc = Pexp_ident { txt = Lident v; _ }; _ }) :: _
              when mutator mpath && List.mem v mutables && c.mut = None ->
                c.mut <-
                  Some
                    (site loc
                       (Printf.sprintf "%s on module-level %s"
                          (Rules.dotted mpath) v))
            | _ -> ());
            let saved = !in_supervised in
            if supervised path then in_supervised := true;
            List.iter (fun (_, a) -> expr it a) args;
            in_supervised := saved)
    | Pexp_setfield
        (({ pexp_desc = Pexp_ident { txt = Lident v; loc }; _ } as r), _, v')
      ->
        if List.mem v mutables && c.mut = None then
          c.mut <- Some (site loc ("field write on module-level " ^ v));
        expr it r;
        expr it v'
    | Pexp_fun (_, default_arg, _, body) ->
        add_alloc Closure e.pexp_loc "anonymous function";
        let saved = !deferred in
        if !in_supervised then deferred := true;
        Option.iter (expr it) default_arg;
        expr it body;
        deferred := saved
    | Pexp_function cases ->
        add_alloc Closure e.pexp_loc "anonymous function";
        let saved = !deferred in
        if !in_supervised then deferred := true;
        List.iter (case it) cases;
        deferred := saved
    | Pexp_construct ({ txt = Lident "::"; _ }, arg) ->
        if not !in_list then
          add_alloc List_lit e.pexp_loc "non-empty list";
        let saved = !in_list in
        in_list := true;
        Option.iter (expr it) arg;
        in_list := saved
    | Pexp_array (_ :: _ as els) ->
        add_alloc Array_lit e.pexp_loc
          (Printf.sprintf "%d-element array" (List.length els));
        List.iter (expr it) els
    | Pexp_record (fields, base) ->
        add_alloc Record_lit e.pexp_loc "record";
        List.iter (fun (_, v) -> expr it v) fields;
        Option.iter (expr it) base
    | Pexp_try (body, cases) ->
        c.catches <-
          List.concat_map (fun (cs : Parsetree.case) -> catch_of_pattern cs.pc_lhs) cases
          @ c.catches;
        expr it body;
        List.iter (case it) cases
    | Pexp_match (scrut, cases) ->
        List.iter
          (fun (cs : Parsetree.case) ->
            match cs.pc_lhs.ppat_desc with
            | Ppat_exception p -> c.catches <- catch_of_pattern p @ c.catches
            | _ -> ())
          cases;
        expr it scrut;
        List.iter (case it) cases
    | _ -> default.Ast_iterator.expr it e
  and case it (cs : Parsetree.case) =
    Option.iter (expr it) cs.pc_guard;
    expr it cs.pc_rhs
  in
  let iter = { default with Ast_iterator.expr } in
  List.iter (fun e -> iter.Ast_iterator.expr iter e) body_exprs;
  c

(* Strip the leading curried parameters off a binding: returns arity,
   optional-parameter count, and the body expressions to walk (several
   when the final parameter is a [function] match or a parameter carries
   a default). *)
let strip_params e =
  let rec go (e : Parsetree.expression) arity opt extras =
    match e.pexp_desc with
    | Pexp_fun (label, default, _, body) ->
        let opt =
          match label with Asttypes.Optional _ -> opt + 1 | _ -> opt
        in
        let extras =
          match default with Some d -> d :: extras | None -> extras
        in
        go body (arity + 1) opt extras
    | Pexp_newtype (_, body) -> go body arity opt extras
    | Pexp_function cases ->
        ( arity + 1,
          opt,
          List.rev_append extras
            (List.concat_map
               (fun (cs : Parsetree.case) ->
                 (match cs.pc_guard with Some g -> [ g ] | None -> [])
                 @ [ cs.pc_rhs ])
               cases) )
    | _ -> (arity, opt, List.rev (e :: extras))
  in
  go e 0 0 []

let summarize ~role ~lib ~wrapped ~file ~source ~mli_source =
  let findings =
    Rules.check
      { Rules.role; file; source; mli_exists = mli_source <> None }
  in
  let sup = Suppress.scan source in
  let parsed, structure =
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf file;
    match Parse.implementation lexbuf with
    | ast -> (true, ast)
    | exception _ -> (false, [])
  in
  let mutables = toplevel_mutables structure in
  let funcs = ref [] in
  let exceptions = ref [] in
  let add_fn path name loc expr_ =
    let arity, opt, bodies = strip_params expr_ in
    let line, col = pos_of loc in
    let c = collect ~mutables bodies in
    funcs :=
      {
        fn_path = path;
        fn_name = name;
        fn_arity = arity;
        fn_opt = opt;
        fn_line = line;
        fn_col = col;
        calls = List.rev c.calls;
        raises = List.sort_uniq String.compare c.raises;
        catches = List.sort_uniq String.compare c.catches;
        allocs = List.rev c.allocs;
        rand_use = c.rand;
        clock_use = c.clock;
        mutates = c.mut;
      }
      :: !funcs
  in
  let rec walk_structure path items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, bindings) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                let rec name_of (p : Parsetree.pattern) =
                  match p.ppat_desc with
                  | Ppat_var { txt; _ } -> Some txt
                  | Ppat_constraint (p, _) -> name_of p
                  | Ppat_construct ({ txt = Lident "()"; _ }, None)
                  | Ppat_any ->
                      Some "(init)"
                  | _ -> None
                in
                match name_of vb.pvb_pat with
                | Some name -> add_fn path name vb.pvb_loc vb.pvb_expr
                | None -> ())
              bindings
        | Pstr_eval (e, _) -> add_fn path "(init)" item.pstr_loc e
        | Pstr_module
            {
              pmb_name = { txt = Some m; _ };
              pmb_expr = { pmod_desc = Pmod_structure items'; _ };
              _;
            } ->
            walk_structure (path @ [ m ]) items'
        | Pstr_exception te ->
            exceptions :=
              exception_name te.ptyexn_constructor :: !exceptions
        | _ -> ())
      items
  in
  walk_structure [] structure;
  {
    s_file = file;
    s_key = key ~source ~mli_source;
    s_role = role;
    s_lib = lib;
    s_wrapped = wrapped;
    s_module = module_name_of_file file;
    s_has_mli = mli_source <> None;
    s_funcs = List.rev !funcs;
    s_exceptions = List.sort_uniq String.compare !exceptions;
    s_mli_vals = mli_vals mli_source file;
    s_suppress = Suppress.entries sup;
    s_findings = findings;
    s_parsed = parsed;
  }

let suppress t = Suppress.of_entries t.s_suppress

(* --- cache (de)serialisation: talint-cache/1 --- *)

let cache_schema = "talint-cache/1"

let jstr s = "\"" ^ Obs.Json.escape s ^ "\""

let site_json buf = function
  | None -> Buffer.add_string buf "null"
  | Some s ->
      Buffer.add_string buf
        (Printf.sprintf "{\"l\":%d,\"c\":%d,\"w\":%s}" s.s_line s.s_col
           (jstr s.s_what))

let fn_json buf f =
  Buffer.add_string buf
    (Printf.sprintf "{\"path\":%s,\"name\":%s,\"arity\":%d,\"opt\":%d,\"l\":%d,\"c\":%d"
       (jstr (String.concat "." f.fn_path))
       (jstr f.fn_name) f.fn_arity f.fn_opt f.fn_line f.fn_col);
  Buffer.add_string buf ",\"calls\":[";
  List.iteri
    (fun i cl ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"p\":%s,\"a\":%d,\"l\":%d,\"c\":%d,\"d\":%b}"
           (jstr (String.concat "." cl.callee))
           cl.args cl.c_line cl.c_col cl.c_defer))
    f.calls;
  Buffer.add_string buf "],\"raises\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (jstr r))
    f.raises;
  Buffer.add_string buf "],\"catches\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (jstr r))
    f.catches;
  Buffer.add_string buf "],\"allocs\":[";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char buf ',';
      let k =
        match a.a_kind with
        | Closure -> "closure"
        | List_lit -> "list"
        | Array_lit -> "array"
        | Record_lit -> "record"
        | Float_box -> "floatbox"
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"k\":%s,\"l\":%d,\"c\":%d,\"w\":%s}" (jstr k)
           a.a_line a.a_col (jstr a.a_what)))
    f.allocs;
  Buffer.add_string buf "],\"rand\":";
  site_json buf f.rand_use;
  Buffer.add_string buf ",\"clock\":";
  site_json buf f.clock_use;
  Buffer.add_string buf ",\"mut\":";
  site_json buf f.mutates;
  Buffer.add_char buf '}'

let to_json_buf buf t =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"file\":%s,\"key\":%s,\"role\":%s,\"lib\":%s,\"wrapped\":%b,\"module\":%s,\"has_mli\":%b,\"parsed\":%b"
       (jstr t.s_file) (jstr t.s_key)
       (jstr (Rules.role_to_string t.s_role))
       (jstr t.s_lib) t.s_wrapped (jstr t.s_module) t.s_has_mli t.s_parsed);
  Buffer.add_string buf ",\"exceptions\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (jstr e))
    t.s_exceptions;
  Buffer.add_string buf "],\"mli_vals\":[";
  List.iteri
    (fun i (n, d) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%s,%s]" (jstr n) (jstr d)))
    t.s_mli_vals;
  Buffer.add_string buf "],\"suppress\":[";
  List.iteri
    (fun i (l, r) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "[%d,%s]" l (jstr r)))
    t.s_suppress;
  Buffer.add_string buf "],\"findings\":[";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"rule\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"message\":%s}"
           (jstr f.rule) (jstr f.file) f.line f.col (jstr f.message)))
    t.s_findings;
  Buffer.add_string buf "],\"funcs\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      fn_json buf f)
    t.s_funcs;
  Buffer.add_string buf "]}"

(* --- parsing back --- *)

exception Bad_cache

let jget k j = match Obs.Json.member k j with Some v -> v | None -> raise Bad_cache
let jstr_of = function Obs.Json.Str s -> s | _ -> raise Bad_cache
let jnum_of = function Obs.Json.Num n -> int_of_float n | _ -> raise Bad_cache
let jbool_of = function Obs.Json.Bool b -> b | _ -> raise Bad_cache
let jarr_of = function Obs.Json.Arr l -> l | _ -> raise Bad_cache

let role_of_string = function
  | "bin" -> Rules.Bin
  | "bench" -> Rules.Bench
  | s ->
      if s = "lib" then Rules.Lib ""
      else if String.length s > 4 && String.sub s 0 4 = "lib/" then
        Rules.Lib (String.sub s 4 (String.length s - 4))
      else raise Bad_cache

let site_of_json = function
  | Obs.Json.Null -> None
  | j ->
      Some
        {
          s_line = jnum_of (jget "l" j);
          s_col = jnum_of (jget "c" j);
          s_what = jstr_of (jget "w" j);
        }

let fn_of_json j =
  let split_path s = if s = "" then [] else String.split_on_char '.' s in
  {
    fn_path = split_path (jstr_of (jget "path" j));
    fn_name = jstr_of (jget "name" j);
    fn_arity = jnum_of (jget "arity" j);
    fn_opt = jnum_of (jget "opt" j);
    fn_line = jnum_of (jget "l" j);
    fn_col = jnum_of (jget "c" j);
    calls =
      List.map
        (fun cj ->
          {
            callee = split_path (jstr_of (jget "p" cj));
            args = jnum_of (jget "a" cj);
            c_line = jnum_of (jget "l" cj);
            c_col = jnum_of (jget "c" cj);
            c_defer = jbool_of (jget "d" cj);
          })
        (jarr_of (jget "calls" j));
    raises = List.map jstr_of (jarr_of (jget "raises" j));
    catches = List.map jstr_of (jarr_of (jget "catches" j));
    allocs =
      List.map
        (fun aj ->
          let kind =
            match jstr_of (jget "k" aj) with
            | "closure" -> Closure
            | "list" -> List_lit
            | "array" -> Array_lit
            | "record" -> Record_lit
            | "floatbox" -> Float_box
            | _ -> raise Bad_cache
          in
          {
            a_kind = kind;
            a_line = jnum_of (jget "l" aj);
            a_col = jnum_of (jget "c" aj);
            a_what = jstr_of (jget "w" aj);
          })
        (jarr_of (jget "allocs" j));
    rand_use = site_of_json (jget "rand" j);
    clock_use = site_of_json (jget "clock" j);
    mutates = site_of_json (jget "mut" j);
  }

let of_json j =
  {
    s_file = jstr_of (jget "file" j);
    s_key = jstr_of (jget "key" j);
    s_role = role_of_string (jstr_of (jget "role" j));
    s_lib = jstr_of (jget "lib" j);
    s_wrapped = jbool_of (jget "wrapped" j);
    s_module = jstr_of (jget "module" j);
    s_has_mli = jbool_of (jget "has_mli" j);
    s_parsed = jbool_of (jget "parsed" j);
    s_funcs = List.map fn_of_json (jarr_of (jget "funcs" j));
    s_exceptions = List.map jstr_of (jarr_of (jget "exceptions" j));
    s_mli_vals =
      List.map
        (function
          | Obs.Json.Arr [ n; d ] -> (jstr_of n, jstr_of d)
          | _ -> raise Bad_cache)
        (jarr_of (jget "mli_vals" j));
    s_suppress =
      List.map
        (function
          | Obs.Json.Arr [ l; r ] -> (jnum_of l, jstr_of r)
          | _ -> raise Bad_cache)
        (jarr_of (jget "suppress" j));
    s_findings =
      List.map
        (fun fj ->
          Finding.v
            ~rule:(jstr_of (jget "rule" fj))
            ~file:(jstr_of (jget "file" fj))
            ~line:(jnum_of (jget "line" fj))
            ~col:(jnum_of (jget "col" fj))
            (jstr_of (jget "message" fj)))
        (jarr_of (jget "findings" j));
  }
