(* ta-ckpt/1 checkpoint journal: one JSONL file per sweep, one record per
   completed sweep point.  Each line carries its own CRC-32 as the last
   field, so a SIGKILL mid-append leaves at most one torn tail line which
   [open_] detects, truncates and recovers from.  Appends are mutex-
   guarded and flushed per record: the file always holds a valid prefix. *)

let schema = "ta-ckpt/1"

type status = Point_ok | Point_failed | Point_quarantined

let status_to_string = function
  | Point_ok -> "ok"
  | Point_failed -> "failed"
  | Point_quarantined -> "quarantined"

let status_of_string = function
  | "ok" -> Some Point_ok
  | "failed" -> Some Point_failed
  | "quarantined" -> Some Point_quarantined
  | _ -> None

type entry = {
  index : int;
  seed : int;
  attempts : int;
  status : status;
  payload : string;  (* raw Marshal bytes for ok points, "" otherwise *)
  error : string;  (* diagnostic for failed/quarantined points, "" for ok *)
}

type recovery = { replayed : int; dropped : int; reset : bool }

type t = {
  path : string;
  mutable oc : out_channel option;
  mutex : Mutex.t;
  entries : (int, entry) Hashtbl.t;
  recovery : recovery;
}

let m_appended = Obs.Metrics.counter "exec.journal.appended"
let m_replayed = Obs.Metrics.counter "exec.journal.replayed"
let m_dropped = Obs.Metrics.counter "exec.journal.dropped"
let m_reset = Obs.Metrics.counter "exec.journal.reset"

(* --- line framing: <partial>,"crc":"<8 hex of partial>"} --- *)

let crc_marker = {|,"crc":"|}

let seal partial = partial ^ crc_marker ^ Crc.hex_of_string partial ^ {|"}|}

(* Split a sealed line back into its CRC-covered prefix; [None] when the
   framing or the checksum is wrong (torn tail, bit flip, stray text). *)
let unseal line =
  let n = String.length line in
  let tail = String.length crc_marker + 8 + 2 in
  if n < tail + 1 then None
  else
    let partial = String.sub line 0 (n - tail) in
    let marker = String.sub line (n - tail) (String.length crc_marker) in
    let hex = String.sub line (n - 10) 8 in
    if
      marker = crc_marker
      && String.sub line (n - 2) 2 = {|"}|}
      && Crc.hex_of_string partial = hex
    then Some partial
    else None

(* --- payload hex (Marshal bytes are not JSON-safe) --- *)

let hex_encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else
    let out = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      match (hex_digit s.[2 * i], hex_digit s.[(2 * i) + 1]) with
      | Some hi, Some lo -> Bytes.set out i (Char.chr ((hi lsl 4) lor lo))
      | _ -> ok := false
    done;
    if !ok then Some (Bytes.to_string out) else None

(* --- serialization --- *)

let header_line ~sweep ~digest =
  seal
    (Printf.sprintf {|{"schema":"%s","sweep":"%s","digest":"%s"|} schema
       (Obs.Json.escape sweep) (Obs.Json.escape digest))

let entry_line e =
  (* Seeds are 62-bit (Rng.mix_seed) and JSON numbers are floats: carry
     the seed as a decimal string so it round-trips exactly. *)
  let common =
    Printf.sprintf {|{"point":%d,"seed":"%d","attempts":%d,"status":"%s"|}
      e.index e.seed e.attempts
      (status_to_string e.status)
  in
  let body =
    match e.status with
    | Point_ok ->
        Printf.sprintf {|%s,"payload":"%s"|} common (hex_encode e.payload)
    | Point_failed | Point_quarantined ->
        Printf.sprintf {|%s,"error":"%s"|} common (Obs.Json.escape e.error)
  in
  seal body

let json_str j key =
  match Obs.Json.member key j with Some (Obs.Json.Str s) -> Some s | _ -> None

let json_int j key =
  match Obs.Json.member key j with
  | Some (Obs.Json.Num f) when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

(* Parse one sealed record line; [None] on any framing/CRC/schema
   violation — the caller treats that as the start of the corrupt tail. *)
let entry_of_line line =
  match unseal line with
  | None -> None
  | Some partial -> (
      (* The sealed prefix is the line minus its closing brace: re-close it
         for the JSON parser. *)
      match Obs.Json.of_string (partial ^ "}") with
      | Error _ -> None
      | Ok j -> (
          match
            ( json_int j "point",
              json_str j "seed",
              json_int j "attempts",
              Option.bind (json_str j "status") status_of_string )
          with
          | Some index, Some seed_s, Some attempts, Some status -> (
              match (int_of_string_opt seed_s, status) with
              | None, _ -> None
              | Some seed, Point_ok -> (
                  match Option.bind (json_str j "payload") hex_decode with
                  | Some payload ->
                      Some { index; seed; attempts; status; payload; error = "" }
                  | None -> None)
              | Some seed, (Point_failed | Point_quarantined) -> (
                  match json_str j "error" with
                  | Some error ->
                      Some { index; seed; attempts; status; payload = ""; error }
                  | None -> None))
          | _ -> None))

let header_matches ~sweep ~digest line =
  match unseal line with
  | None -> false
  | Some partial -> (
      match Obs.Json.of_string (partial ^ "}") with
      | Error _ -> false
      | Ok j ->
          json_str j "schema" = Some schema
          && json_str j "sweep" = Some sweep
          && json_str j "digest" = Some digest)

(* --- filesystem plumbing --- *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let sanitize sweep =
  String.map (fun c -> if c = '/' || c = '\\' then '_' else c) sweep

let path_of ~dir ~sweep = Filename.concat dir (sanitize sweep ^ ".ckpt")

let read_lines path =
  let content = In_channel.with_open_bin path In_channel.input_all in
  (* A torn final line has no '\n'; keep it so the CRC check rejects it
     explicitly rather than silently ignoring it. *)
  String.split_on_char '\n' content |> List.filter (fun l -> l <> "")

let open_ ~dir ~sweep ~digest =
  Obs.span "exec.journal.open" @@ fun () ->
  mkdir_p dir;
  let path = path_of ~dir ~sweep in
  let entries = Hashtbl.create 64 in
  let fresh_recovery ~reset =
    if reset then Obs.Metrics.incr m_reset;
    { replayed = 0; dropped = 0; reset }
  in
  let recovery, kept_lines =
    if not (Sys.file_exists path) then (fresh_recovery ~reset:false, [])
    else
      match read_lines path with
      | [] -> (fresh_recovery ~reset:false, [])
      | header :: records ->
          if not (header_matches ~sweep ~digest header) then
            (* Different config digest (or schema, or stray file): the
               journaled points answer a different question — start over. *)
            (fresh_recovery ~reset:true, [])
          else begin
            let kept = ref [] and replayed = ref 0 and dropped = ref 0 in
            let rec go = function
              | [] -> ()
              | line :: rest -> (
                  match entry_of_line line with
                  | Some e ->
                      if not (Hashtbl.mem entries e.index) then begin
                        Hashtbl.replace entries e.index e;
                        incr replayed;
                        kept := line :: !kept
                      end;
                      go rest
                  | None ->
                      (* Corrupt line: everything from here on is the
                         untrusted tail.  Truncate rather than guess. *)
                      dropped := List.length (line :: rest))
            in
            go records;
            Obs.Metrics.add m_replayed !replayed;
            Obs.Metrics.add m_dropped !dropped;
            ( { replayed = !replayed; dropped = !dropped; reset = false },
              List.rev !kept )
          end
  in
  (* Rewrite the validated prefix, then leave the channel open for
     appends.  For a clean journal this writes back exactly the bytes that
     were read. *)
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
  output_string oc (header_line ~sweep ~digest);
  output_char oc '\n';
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    kept_lines;
  flush oc;
  { path; oc = Some oc; mutex = Mutex.create (); entries; recovery }

let recovery t = t.recovery
let path t = t.path
let find t index = Hashtbl.find_opt t.entries index
let count t = Hashtbl.length t.entries

let append t e =
  let line = entry_line e in
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> invalid_arg "Journal.append: journal is closed"
      | Some oc ->
          output_string oc line;
          output_char oc '\n';
          (* Flush per record: a kill between points costs nothing; a kill
             mid-append costs exactly the torn line. *)
          flush oc;
          Hashtbl.replace t.entries e.index e;
          Obs.Metrics.incr m_appended)

let close t =
  Mutex.protect t.mutex (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          close_out oc;
          t.oc <- None)

(* --- payload codec --- *)

let encode v = Marshal.to_string v []

let decode s =
  (* Marshal is not self-describing: type safety rests on the config
     digest in the journal header, which keys the payload layout to the
     exact sweep that wrote it.  Structural corruption is caught here;
     the CRC on every line makes it unreachable in practice. *)
  match Marshal.from_string s 0 with v -> Some v | exception _ -> None
