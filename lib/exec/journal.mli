(** [ta-ckpt/1] checkpoint journal: crash-tolerant record of completed
    sweep points.

    One JSONL file per sweep.  The first line is a header binding the
    journal to a sweep name and a config digest; every further line is
    one completed sweep point.  Each line carries a CRC-32 of its own
    content as the last field, and appends are flushed per record, so at
    any instant — including the instant a SIGKILL lands — the file is a
    checksummed prefix of the run plus at most one torn line.

    {!open_} validates the whole file: a header that does not match the
    requested sweep/digest discards the journal (the recorded points
    answer a different question); a corrupt record line truncates the
    tail from that point on.  What remains is replayed into memory and
    the validated prefix is rewritten, after which the journal accepts
    new appends.

    Line format (one JSON object per line; [crc] is always the last
    field and covers every byte of the line before its own marker):
    {v
    {"schema":"ta-ckpt/1","sweep":NAME,"digest":MD5HEX,"crc":CRC32HEX}
    {"point":I,"seed":"S","attempts":N,"status":"ok","payload":HEX,"crc":...}
    {"point":I,"seed":"S","attempts":N,"status":"failed","error":MSG,"crc":...}
    v}
    Seeds are decimal strings because they are 62-bit integers and JSON
    numbers are floats.  [payload] is the hex of the Marshal bytes of the
    point's result; [failed] (deterministic declared failure) and
    [quarantined] (retries exhausted) points carry an [error] string
    instead.  Terminal statuses replay as-is on resume: failures are
    deterministic, so a resumed table is byte-identical to an
    uninterrupted one. *)

val schema : string
(** ["ta-ckpt/1"]. *)

type status = Point_ok | Point_failed | Point_quarantined

val status_to_string : status -> string
(** ["ok"], ["failed"], ["quarantined"]. *)

type entry = {
  index : int;  (** sweep-point index, [0 <= index] *)
  seed : int;  (** root seed the sweep ran under *)
  attempts : int;  (** attempts consumed, >= 1 *)
  status : status;
  payload : string;  (** {!encode}d result for [Point_ok]; [""] otherwise *)
  error : string;  (** diagnostic for failed/quarantined; [""] for ok *)
}

type recovery = {
  replayed : int;  (** valid records loaded from the existing journal *)
  dropped : int;  (** corrupt-tail lines truncated away *)
  reset : bool;  (** existing journal discarded (header mismatch) *)
}

type t

val open_ : dir:string -> sweep:string -> digest:string -> t
(** Open (creating [dir] mkdir-p style if needed) the journal for [sweep]
    under [dir], validating any existing file as described above.
    Raises [Sys_error] on filesystem failure. *)

val recovery : t -> recovery
(** What {!open_} found. *)

val path : t -> string

val find : t -> int -> entry option
(** Completed entry for a point index, if journaled. *)

val count : t -> int

val append : t -> entry -> unit
(** Durably record one completed point (mutex-guarded, flushed before
    returning — safe to call concurrently from pool workers). *)

val close : t -> unit
(** Idempotent. *)

val encode : 'a -> string
(** Marshal a point result for {!entry.payload}.  The value must be pure
    data (no closures/custom blocks) — all sweep point records are. *)

val decode : string -> 'a option
(** Recover an {!encode}d value; [None] on structurally invalid bytes.
    Type safety rests on the journal header's config digest — the digest
    keys the payload layout to the sweep that wrote it, which is why
    Marshal use is confined to this module (enforced by talint P001). *)
