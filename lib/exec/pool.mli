(** Deterministic domain-pool parallelism for embarrassingly parallel
    workloads (independent Monte-Carlo trace collections, sweep points,
    trial batches).

    Design contract: every task must be a pure function of its index (and
    of data captured at fan-out time) — in particular, any randomness must
    come from an RNG the task creates itself from a seed derived from its
    index (see {!Seed.derive} and {!Prng.Rng.mix_seed}).  Under that
    contract the combinators here return results that are {b bit-identical
    to the sequential run at any worker count}: results are stored by task
    index, so neither domain scheduling nor completion order can leak into
    the output.

    Worker accounting is global: the pool holds [jobs - 1] spare worker
    tokens (the calling domain is always the [jobs]-th worker).  A nested
    parallel call simply finds no spare tokens and runs inline, so the
    total number of live domains never exceeds the configured [jobs] no
    matter how combinators are nested, and [jobs = 1] degenerates to the
    plain sequential loop with no domain spawns at all. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]: what the runtime believes the
    hardware supports. *)

val default_jobs : unit -> int
(** Resolved worker count: the last {!set_default_jobs} value if any,
    otherwise a positive integer parsed from the [EXEC_JOBS] environment
    variable, otherwise {!available_cores} capped at 16. *)

val set_default_jobs : int -> unit
(** Set the global worker count (e.g. from a [--jobs] flag).  Values are
    clamped to at most 512.  Raises [Invalid_argument] if [jobs < 1].
    Must not be called while parallel combinators are running. *)

val spare_tokens : unit -> int
(** Number of spare worker tokens currently available (introspection for
    tests: equals [default_jobs () - 1] when the pool is idle). *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs n f] runs [f] with the global worker count set to [n],
    restoring the previous count afterwards (also on raise).  For
    benches and tests that compare scheduling behaviours; like
    {!set_default_jobs} it must not be called while parallel combinators
    are running.  Results of the combinators are bit-identical either
    way — only concurrency changes. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] computed by up to [jobs]
    domains (default {!default_jobs}, further limited by the free global
    tokens).  Order of the result follows [xs].  If one or more tasks
    raise, every remaining task still runs, the domains are joined, and
    the exception of the {e lowest-indexed} failing task is re-raised —
    deterministic regardless of scheduling. *)

val parallel_mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** [List.mapi], parallelized as {!parallel_map}. *)

val parallel_init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [Array.init], parallelized as {!parallel_map}. *)

val both : ?jobs:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** [both f g] runs the two thunks concurrently when a spare worker is
    available, sequentially ([f] first) otherwise.  If both raise, [f]'s
    exception wins (it is the lower-indexed task). *)
