let derive ~root ~index =
  if index < 0 then invalid_arg "Exec.Seed.derive: index < 0";
  Prng.Rng.mix_seed root index
