let default_cap = 16
let hard_cap = 512

let available_cores () = Domain.recommended_domain_count ()

let env_jobs () =
  match Sys.getenv_opt "EXEC_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some (Stdlib.min n hard_cap)
      | Some _ | None -> None)

(* [default] holds the resolved worker count (0 = not yet resolved);
   [tokens] holds the spare-worker tokens (-1 = not yet resolved).  Both
   are resolved together, exactly once, on first use — or eagerly by
   [set_default_jobs]. *)
let default = Atomic.make 0
let tokens = Atomic.make (-1)

let resolve () =
  match env_jobs () with
  | Some n -> n
  | None -> Stdlib.max 1 (Stdlib.min (available_cores ()) default_cap)

let rec default_jobs () =
  match Atomic.get default with
  | 0 ->
      let d = resolve () in
      if Atomic.compare_and_set default 0 d then begin
        ignore (Atomic.compare_and_set tokens (-1) (d - 1));
        d
      end
      else default_jobs ()
  | d -> d

let set_default_jobs n =
  if n < 1 then invalid_arg "Exec.Pool.set_default_jobs: jobs < 1";
  let n = Stdlib.min n hard_cap in
  Atomic.set default n;
  Atomic.set tokens (n - 1)

let spare_tokens () =
  ignore (default_jobs ());
  Stdlib.max 0 (Atomic.get tokens)

let with_jobs n f =
  if n < 1 then invalid_arg "Exec.Pool.with_jobs: jobs < 1";
  let prev = default_jobs () in
  set_default_jobs n;
  Fun.protect ~finally:(fun () -> set_default_jobs prev) f

(* Take up to [k] spare-worker tokens; returns how many were obtained. *)
let acquire k =
  ignore (default_jobs ());
  let rec go taken =
    if taken >= k then taken
    else
      let cur = Atomic.get tokens in
      if cur <= 0 then taken
      else if Atomic.compare_and_set tokens cur (cur - 1) then go (taken + 1)
      else go taken
  in
  go 0

let release k = if k > 0 then ignore (Atomic.fetch_and_add tokens k)

(* All exec.* metrics are wall-clock / scheduling facts, so they vary with
   the worker count by design; determinism checks must filter the [exec.]
   prefix out (Obs.Metrics.Snapshot.filter_prefix makes that cheap). *)
let m_fanouts = Obs.Metrics.counter "exec.pool.fanouts"
let m_sequential = Obs.Metrics.counter "exec.pool.sequential"
let m_tasks = Obs.Metrics.counter "exec.pool.tasks"
let m_domains = Obs.Metrics.counter "exec.pool.domains_spawned"

(* Shared-counter work queue: each worker (the [extra] spawned domains
   plus the calling domain) repeatedly claims the next unclaimed index.
   [body] must not raise — task exceptions are captured per slot. *)
let run_tasks ~extra n body =
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      body i;
      worker ()
    end
  in
  let domains = List.init extra (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join domains

let finish results =
  let n = Array.length results in
  let rec first_error i =
    if i < n then
      match results.(i) with
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Ok _) | None -> first_error (i + 1)
  in
  first_error 0;
  Array.map
    (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
    results

(* Core combinator: tabulate [g] over 0..n-1 with up to [jobs] workers. *)
let run_indexed ?jobs n g =
  if n < 0 then invalid_arg "Exec.Pool: negative task count";
  let requested =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Exec.Pool: jobs < 1"
    | Some j -> Stdlib.min j hard_cap
    | None -> default_jobs ()
  in
  Obs.Metrics.add m_tasks n;
  let wanted = Stdlib.min (requested - 1) (n - 1) in
  if wanted <= 0 then begin
    Obs.Metrics.incr m_sequential;
    Array.init n g
  end
  else begin
    let extra = acquire wanted in
    if extra = 0 then begin
      Obs.Metrics.incr m_sequential;
      Array.init n g
    end
    else begin
      Obs.Metrics.incr m_fanouts;
      Obs.Metrics.add m_domains extra;
      let results = Array.make n None in
      let body i =
        results.(i) <-
          Some
            (match g i with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      in
      Fun.protect
        ~finally:(fun () -> release extra)
        (fun () -> run_tasks ~extra n body);
      finish results
    end
  end

let parallel_init ?jobs n g = run_indexed ?jobs n g

let parallel_map ?jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (run_indexed ?jobs (Array.length arr) (fun i -> f arr.(i)))

let parallel_mapi ?jobs f xs =
  let arr = Array.of_list xs in
  Array.to_list (run_indexed ?jobs (Array.length arr) (fun i -> f i arr.(i)))

let both ?jobs f g =
  match run_indexed ?jobs 2 (fun i -> if i = 0 then `A (f ()) else `B (g ())) with
  | [| `A a; `B b |] -> (a, b)
  | _ -> assert false
