(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320): the checksum
   guarding ta-ckpt/1 journal lines.  Table-driven, one byte per step —
   journals are a few KB per sweep, so simplicity beats throughput. *)

let poly = 0xEDB88320

let table =
  (* talint: allow R001 — CRC lookup table, written once at init, read-only after *)
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc s =
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let string s = update 0 s

let to_hex crc = Printf.sprintf "%08x" (crc land 0xFFFFFFFF)

let hex_of_string s = to_hex (string s)
