(* Per-task supervision for sweep points: exception containment, bounded
   deterministic retry, and a per-task event-budget handoff to the
   simulator.  Everything here is count-based — no wall-clock, no
   timeouts — so a supervised run is a pure function of its seeds and the
   outcome sequence is identical at any --jobs value. *)

exception Injected_failure of { sweep : string; index : int; attempt : int }

let () =
  Printexc.register_printer (function
    | Injected_failure { sweep; index; attempt } ->
        Some
          (Printf.sprintf "injected failure (%s point %d, attempt %d)" sweep
             index attempt)
    | _ -> None)

type 'a outcome =
  | Completed of { value : 'a; attempts : int }
  | Failed of { attempts : int; error : string }
  | Quarantined of { attempts : int; error : string }

let m_retried = Obs.Metrics.counter "exec.task.retried"
let m_failed = Obs.Metrics.counter "exec.task.failed"
let m_quarantined = Obs.Metrics.counter "exec.task.quarantined"

let attempt_seed ~seed ~attempt =
  (* Attempt 0 must reproduce the unsupervised sweep exactly, so the
     baseline tables are unchanged; retries re-derive a fresh, equally
     deterministic stream from the attempt index. *)
  if attempt < 0 then invalid_arg "Supervise.attempt_seed: attempt < 0";
  if attempt = 0 then seed else Prng.Rng.mix_seed seed attempt

let run ?(retries = 2) ~classify ~describe ~task () =
  if retries < 0 then invalid_arg "Supervise.run: retries < 0";
  let rec go attempt =
    match task ~attempt with
    | v -> Completed { value = v; attempts = attempt + 1 }
    | exception e -> (
        match classify e with
        | `Fail_fast ->
            (* A declared, deterministic failure (starved tap, blown event
               budget): retrying would reproduce it bit for bit. *)
            Obs.Metrics.incr m_failed;
            Failed { attempts = attempt + 1; error = describe e }
        | `Retry ->
            if attempt >= retries then begin
              Obs.Metrics.incr m_quarantined;
              Quarantined { attempts = attempt + 1; error = describe e }
            end
            else begin
              Obs.Metrics.incr m_retried;
              go (attempt + 1)
            end)
  in
  go 0

(* --- per-task event budget, handed to System.run* via domain-local
   storage so the sweep runner does not thread it through every config
   record --- *)

let budget_key = Domain.DLS.new_key (fun () -> None)

let current_event_budget () = Domain.DLS.get budget_key

let with_event_budget budget f =
  let prev = Domain.DLS.get budget_key in
  Domain.DLS.set budget_key budget;
  Fun.protect ~finally:(fun () -> Domain.DLS.set budget_key prev) f
