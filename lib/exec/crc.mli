(** CRC-32 (IEEE 802.3) checksums for the [ta-ckpt/1] checkpoint journal.

    A torn or bit-flipped journal line must be detectable so that
    {!Journal} can truncate the corrupt tail and recover; CRC-32 is cheap,
    dependency-free and more than strong enough for a local append-only
    file. *)

val string : string -> int
(** CRC-32 of the whole string, in [0, 0xFFFFFFFF]. *)

val update : int -> string -> int
(** Incremental form: [update (string a) b = string (a ^ b)]. *)

val to_hex : int -> string
(** Fixed-width lowercase hex ("%08x"). *)

val hex_of_string : string -> string
(** [to_hex (string s)]. *)
