(** Deterministic per-task supervision: exception containment, bounded
    count-based retry, and the per-task event-budget handoff.

    The supervisor never consults the wall clock: retry is bounded by
    attempt count, fresh attempt seeds come from {!attempt_seed}
    (pure in the root seed and attempt index), and classification is a
    pure function of the raised exception.  A supervised sweep therefore
    remains bit-identical at any [--jobs] value, including the outcome
    (retried / quarantined / failed) of every point. *)

exception Injected_failure of { sweep : string; index : int; attempt : int }
(** Raised by the fault-injection hook (see {!Scenarios.Sweep}) to make
    retry and quarantine paths testable end to end from the CLI. *)

type 'a outcome =
  | Completed of { value : 'a; attempts : int }
  | Failed of { attempts : int; error : string }
      (** A declared deterministic failure ([`Fail_fast]): retrying would
          reproduce it exactly, so it is recorded after one attempt. *)
  | Quarantined of { attempts : int; error : string }
      (** Retries exhausted: the point is poison and is isolated from the
          rest of the sweep. *)

val attempt_seed : seed:int -> attempt:int -> int
(** Seed for a retry attempt.  [attempt_seed ~seed ~attempt:0 = seed]
    (the unsupervised baseline is unchanged); later attempts derive a
    fresh stream via [Prng.Rng.mix_seed seed attempt].  Raises
    [Invalid_argument] on a negative attempt. *)

val run :
  ?retries:int ->
  classify:(exn -> [ `Fail_fast | `Retry ]) ->
  describe:(exn -> string) ->
  task:(attempt:int -> 'a) ->
  unit ->
  'a outcome
(** Run [task] under containment.  [retries] (default 2) is the number of
    {e re}-attempts after the first, so a point is tried at most
    [retries + 1] times before quarantine.  [classify] decides whether an
    exception is a deterministic declared failure ([`Fail_fast] — no
    retry) or potentially transient ([`Retry]); [describe] renders the
    exception for journals and manifests (keep it deterministic: it is
    part of the byte-identity contract for resumed tables).  Updates the
    [exec.task.retried/failed/quarantined] counters.  Raises
    [Invalid_argument] if [retries < 0]. *)

val with_event_budget : int option -> (unit -> 'a) -> 'a
(** Run [f] with a per-task simulator event budget installed in
    domain-local storage (restored afterwards).  [System.run*] consults
    it via {!current_event_budget} and arms [Sim.set_event_budget], so a
    pathological sweep point raises [Sim.Event_budget_exceeded] instead
    of spinning forever. *)

val current_event_budget : unit -> int option
(** The budget installed by the nearest enclosing {!with_event_budget}
    on this domain, if any. *)
