(** Deterministic per-task seed derivation for parallel fan-out.

    Each task of a {!Pool} combinator that needs randomness should build
    its own generator as
    [Prng.Rng.create ~seed:(Seed.derive ~root ~index)].  The derivation
    is a pure function of [(root, index)] — independent of worker count,
    scheduling, and of which other tasks ran — so the whole fan-out is
    reproducible from [root] alone. *)

val derive : root:int -> index:int -> int
(** Per-task seed via the SplitMix64 mix in {!Prng.Rng.mix_seed}.
    Raises [Invalid_argument] if [index < 0]. *)
