(* Namespace module: the library is unwrapped (so the scenarios layer's
   Scenarios.Fleet sweep can coexist with it), and this alias module
   restores the Fleet.Flow_table / Fleet.Mux spelling for everyone
   else. *)

module Flow_table = Flow_table
module Mux = Mux
