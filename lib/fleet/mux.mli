(** Flow-indexed multiplexing over the padded link.

    A gateway fleet carries [flows] concurrent user flows, split into
    [gateways] contiguous balanced shards.  Each shard runs one
    independent simulation: a single superposed arrival process at the
    shard's aggregate rate (the superposition theorem makes this
    statistically identical to per-flow Poisson sources at O(1) event
    cost per arrival), demultiplexed per arrival onto a {!Flow_table}
    row and fed through one shared padded {!Padding.Gateway} to a
    receiver.  Heterogeneity comes from a configurable mixture of rate
    classes over contiguous flow-id ranges, optionally modulated by a
    diurnal load curve via Lewis–Shedler thinning.

    Determinism: shard [g] seeds its generators with
    [Rng.mix_seed seed g], shard decomposition and class ranges are pure
    functions of the config, and per-shard results merge by shard index
    ({!Flow_table.merge} is order-independent anyway) — {!run} is
    bit-identical at any [--jobs]. *)

type rate_class = {
  label : string;  (** metrics/table label, e.g. "10pps" *)
  rate_pps : float;  (** per-flow Poisson payload rate; > 0 *)
  fraction : float;  (** share of the fleet in this class; >= 0 *)
}

type config = {
  seed : int;
  flows : int;  (** total flows across the fleet; >= 1 *)
  gateways : int;  (** shard count; in [1, flows] *)
  classes : rate_class array;  (** fractions must sum to 1 *)
  timer : Padding.Timer.law;
  jitter : Padding.Jitter.t;
  packet_size : int;
  duration : float;  (** simulated seconds per shard; > 0 *)
  modulation : (float -> float) option;
      (** sim-time -> load multiplier in [0, 1] (e.g. a
          [Scenarios.Diurnal] activity curve on a compressed clock);
          [None] = flat load *)
}

val default_classes : rate_class array
(** Half the fleet at the calibration low rate (10 pps), half at the
    high rate (40 pps). *)

val default_config : config
(** 10^4 flows over 8 gateways, calibration mix, CIT timer at the
    calibration period, 2 simulated seconds, flat load. *)

val validate : config -> unit
(** Raises [Invalid_argument] on any out-of-range field. *)

val class_bounds : config -> int array
(** Cumulative class boundaries over global flow ids: class [c] covers
    [\[bounds.(c), bounds.(c + 1))].  Length = classes + 1; a pure
    function of the config, so a flow's class never depends on
    sharding. *)

val class_of_flow : config -> int -> int
(** Class index of a global flow id. *)

val shard_range : config -> gateway:int -> int * int
(** [(lo, hi)] of the shard's flow-id slice: [flows*g/G, flows*(g+1)/G) —
    balanced, contiguous, never empty. *)

type env = {
  sim : Desim.Sim.t;  (** must be idle (fresh or reset) *)
  gw_buffers : Padding.Gateway.Buffers.t option;
}
(** Recycled simulation state for one shard run — how sweep harnesses
    plug in their per-domain [Scenarios.Arena] pools without this
    library depending on the scenarios layer. *)

type shard_result = {
  table : Flow_table.t;  (** covers exactly the shard's flow window *)
  arrivals : int;  (** accepted payload arrivals = table packet total *)
  payload_sent : int;
  dummy_sent : int;
  payload_dropped : int;
  payload_delivered : int;
  mean_payload_latency : float;
  events_processed : int;
  sim_time : float;
}

val run_shard : ?env:env -> config -> gateway:int -> shard_result
(** Simulate one shard for [duration] simulated seconds.  Every accepted
    arrival lands in exactly one flow of the shard's window (so
    [Flow_table.total_packets table = float arrivals] exactly); the
    shared gateway's dummies are amortized across the shard's flows with
    {!Flow_table.spread_dummies}.  Honours the sweep supervisor's
    per-point event budget when one is armed (raising
    [Desim.Sim.Event_budget_exceeded] on overrun).  Records
    [fleet.mux.arrivals], [fleet.mux.dummies], per-class
    [fleet.mux.class_arrivals{class=...}] counters and the
    [fleet.mux.flows] high-water gauge. *)

type result = {
  table : Flow_table.t;  (** merged: covers [0, flows) *)
  arrivals : int;
  payload_sent : int;
  dummy_sent : int;
  payload_dropped : int;
  payload_delivered : int;
  mean_payload_latency : float;  (** delivered-weighted across shards *)
  overhead : float;  (** dummy fraction of emitted packets *)
  events_processed : int;
  duration : float;
}

val run : ?env_for:(int -> env) -> config -> result
(** Run every shard (fanned out on [Exec.Pool]) and merge.  [env_for g]
    is evaluated inside the worker task — on the domain that runs shard
    [g] — so arena-style per-domain pools resolve correctly. *)
