(* Fixed-width SoA per-flow state table.

   One unboxed float column per counter (packets, bytes, dummies,
   last-activity time) plus one byte per flow for the rate class — the
   fastnetmon map_element_t idiom: a flat fixed-width record per flow,
   zeroed in place, never reallocated.  Counters are integer-valued
   floats, exact up to 2^53, so per-index merge addition is associative
   and commutative and merged tables are independent of merge order.

   A table covers a contiguous global flow-id window [lo, lo + width):
   mux shards each own a disjoint window, allocate only their slice, and
   the windows are united by [merge]. *)

type t = {
  lo : int;
  n : int;
  packets : floatarray;
  bytes : floatarray;
  dummies : floatarray;
  last_activity : floatarray;
  classes : Bytes.t;
}

type snapshot = t

let create ?(lo = 0) ~flows () =
  if flows < 1 then invalid_arg "Flow_table.create: flows < 1";
  if lo < 0 then invalid_arg "Flow_table.create: lo < 0";
  {
    lo;
    n = flows;
    packets = Float.Array.make flows 0.0;
    bytes = Float.Array.make flows 0.0;
    dummies = Float.Array.make flows 0.0;
    last_activity = Float.Array.make flows neg_infinity;
    classes = Bytes.make flows '\000';
  }

let lo t = t.lo
let width t = t.n
let hi t = t.lo + t.n

let idx t ~flow =
  let i = flow - t.lo in
  if i < 0 || i >= t.n then
    invalid_arg
      (Printf.sprintf "Flow_table: flow %d outside [%d, %d)" flow t.lo
         (t.lo + t.n));
  i

let record t ~flow ~bytes ~now =
  let i = idx t ~flow in
  Float.Array.unsafe_set t.packets i
    (Float.Array.unsafe_get t.packets i +. 1.0);
  Float.Array.unsafe_set t.bytes i
    (Float.Array.unsafe_get t.bytes i +. float_of_int bytes);
  Float.Array.unsafe_set t.last_activity i now

let record_dummy t ~flow =
  let i = idx t ~flow in
  Float.Array.unsafe_set t.dummies i
    (Float.Array.unsafe_get t.dummies i +. 1.0)

let spread_dummies t ~count =
  if count < 0 then invalid_arg "Flow_table.spread_dummies: count < 0";
  let q = count / t.n and r = count mod t.n in
  for i = 0 to t.n - 1 do
    let share = q + if i < r then 1 else 0 in
    if share > 0 then
      Float.Array.unsafe_set t.dummies i
        (Float.Array.unsafe_get t.dummies i +. float_of_int share)
  done

let set_class t ~flow cls =
  if cls < 0 || cls > 255 then
    invalid_arg "Flow_table.set_class: class outside [0, 255]";
  Bytes.unsafe_set t.classes (idx t ~flow) (Char.unsafe_chr cls)

let rate_class t ~flow = Char.code (Bytes.unsafe_get t.classes (idx t ~flow))
let packets t ~flow = Float.Array.unsafe_get t.packets (idx t ~flow)
let bytes t ~flow = Float.Array.unsafe_get t.bytes (idx t ~flow)
let dummies t ~flow = Float.Array.unsafe_get t.dummies (idx t ~flow)

let last_activity t ~flow =
  Float.Array.unsafe_get t.last_activity (idx t ~flow)

let clear t =
  Float.Array.fill t.packets 0 t.n 0.0;
  Float.Array.fill t.bytes 0 t.n 0.0;
  Float.Array.fill t.dummies 0 t.n 0.0;
  Float.Array.fill t.last_activity 0 t.n neg_infinity;
  Bytes.fill t.classes 0 t.n '\000'

let sum col n =
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. Float.Array.unsafe_get col i
  done;
  !acc

let total_packets t = sum t.packets t.n
let total_bytes t = sum t.bytes t.n
let total_dummies t = sum t.dummies t.n

let active t ~since =
  let acc = ref 0 in
  for i = 0 to t.n - 1 do
    if Float.Array.unsafe_get t.last_activity i >= since then incr acc
  done;
  !acc

let snapshot t =
  {
    lo = t.lo;
    n = t.n;
    packets = Float.Array.copy t.packets;
    bytes = Float.Array.copy t.bytes;
    dummies = Float.Array.copy t.dummies;
    last_activity = Float.Array.copy t.last_activity;
    classes = Bytes.copy t.classes;
  }

(* Union of the two windows; per-flow counters add (exact: integer-valued
   floats), last-activity and class merge by max.  Flows covered by
   neither input stay at their created-empty state, so merging
   non-adjacent windows materializes the gap consistently. *)
let merge a b =
  let lo = Stdlib.min a.lo b.lo in
  let hi = Stdlib.max (a.lo + a.n) (b.lo + b.n) in
  let t = create ~lo ~flows:(hi - lo) () in
  let add (s : snapshot) =
    let off = s.lo - lo in
    for i = 0 to s.n - 1 do
      let j = off + i in
      Float.Array.unsafe_set t.packets j
        (Float.Array.unsafe_get t.packets j
        +. Float.Array.unsafe_get s.packets i);
      Float.Array.unsafe_set t.bytes j
        (Float.Array.unsafe_get t.bytes j +. Float.Array.unsafe_get s.bytes i);
      Float.Array.unsafe_set t.dummies j
        (Float.Array.unsafe_get t.dummies j
        +. Float.Array.unsafe_get s.dummies i);
      Float.Array.unsafe_set t.last_activity j
        (Float.max
           (Float.Array.unsafe_get t.last_activity j)
           (Float.Array.unsafe_get s.last_activity i));
      Bytes.unsafe_set t.classes j
        (Char.unsafe_chr
           (Stdlib.max
              (Char.code (Bytes.unsafe_get t.classes j))
              (Char.code (Bytes.unsafe_get s.classes i))))
    done
  in
  add a;
  add b;
  t
