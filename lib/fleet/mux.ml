(* Fleet mux: one superposed arrival process per gateway shard,
   demultiplexed onto per-flow state.

   Simulating 10^4..10^6 independent per-flow Poisson sources would cost
   one pending event per flow.  The superposition theorem says the union
   of independent Poisson flows is a Poisson process at the summed rate
   whose arrivals belong to flow f with probability rate_f / rate_total —
   so each shard runs ONE arrival train at its aggregate rate
   (Lewis–Shedler thinning when a diurnal modulation is installed) and
   attributes every accepted arrival to a flow drawn class-proportionally.
   That is statistically identical to per-flow sources at O(1) event cost
   per arrival and zero per-flow allocation: the only per-flow storage is
   the Flow_table's flat columns.

   Shards are gateways: each owns a contiguous balanced slice of the
   global flow-id space and an independent padded gateway + receiver pair,
   so shard simulations share no state and fan out on Exec.Pool with
   index-derived seeds — results are bit-identical at any --jobs. *)

type rate_class = { label : string; rate_pps : float; fraction : float }

type config = {
  seed : int;
  flows : int;
  gateways : int;
  classes : rate_class array;
  timer : Padding.Timer.law;
  jitter : Padding.Jitter.t;
  packet_size : int;
  duration : float;
  modulation : (float -> float) option;
}

(* The calibration mix: half the fleet at the paper's low rate, half at
   the high rate (Calibration.rate_low_pps / rate_high_pps). *)
let default_classes =
  (* talint: allow R001 — read-only default mixture, never written *)
  [|
    { label = "10pps"; rate_pps = 10.0; fraction = 0.5 };
    { label = "40pps"; rate_pps = 40.0; fraction = 0.5 };
  |]

let default_config =
  {
    seed = 42;
    flows = 10_000;
    gateways = 8;
    classes = default_classes;
    timer = Padding.Timer.Constant 0.010;
    jitter = Padding.Jitter.mechanistic ();
    packet_size = 500;
    duration = 2.0;
    modulation = None;
  }

let validate cfg =
  Padding.Timer.validate cfg.timer;
  if cfg.flows < 1 then invalid_arg "Fleet.Mux: flows < 1";
  if cfg.gateways < 1 || cfg.gateways > cfg.flows then
    invalid_arg "Fleet.Mux: gateways outside [1, flows]";
  if cfg.packet_size <= 0 then invalid_arg "Fleet.Mux: packet_size <= 0";
  if Float.is_nan cfg.duration || cfg.duration <= 0.0 then
    invalid_arg "Fleet.Mux: duration <= 0";
  if Array.length cfg.classes = 0 then
    invalid_arg "Fleet.Mux: empty class mixture";
  if Array.length cfg.classes > 256 then
    invalid_arg "Fleet.Mux: more than 256 rate classes";
  Array.iter
    (fun c ->
      if Float.is_nan c.rate_pps || c.rate_pps <= 0.0 then
        invalid_arg "Fleet.Mux: class rate_pps <= 0";
      if Float.is_nan c.fraction || c.fraction < 0.0 then
        invalid_arg "Fleet.Mux: class fraction < 0")
    cfg.classes;
  let total = Array.fold_left (fun a c -> a +. c.fraction) 0.0 cfg.classes in
  if Float.abs (total -. 1.0) > 1e-9 then
    invalid_arg "Fleet.Mux: class fractions must sum to 1"

(* Contiguous class ranges over global flow ids: class c covers
   [bounds.(c), bounds.(c + 1)).  A pure function of the config, so a
   flow's class never depends on sharding. *)
let class_bounds cfg =
  let k = Array.length cfg.classes in
  let bounds = Array.make (k + 1) 0 in
  let cum = ref 0.0 in
  for c = 0 to k - 1 do
    cum := !cum +. cfg.classes.(c).fraction;
    bounds.(c + 1) <-
      int_of_float (Float.round (!cum *. float_of_int cfg.flows))
  done;
  bounds.(k) <- cfg.flows;
  for c = 1 to k do
    if bounds.(c) < bounds.(c - 1) then bounds.(c) <- bounds.(c - 1)
  done;
  bounds

let class_of_flow cfg flow =
  if flow < 0 || flow >= cfg.flows then
    invalid_arg "Fleet.Mux.class_of_flow: flow out of range";
  let bounds = class_bounds cfg in
  let k = Array.length cfg.classes in
  let rec find c = if c = k - 1 || flow < bounds.(c + 1) then c else find (c + 1) in
  find 0

(* Balanced contiguous split: shard g covers [flows*g/G, flows*(g+1)/G) —
   never empty when gateways <= flows, sizes differ by at most one. *)
let shard_range cfg ~gateway =
  if gateway < 0 || gateway >= cfg.gateways then
    invalid_arg "Fleet.Mux.shard_range: gateway out of range";
  (cfg.flows * gateway / cfg.gateways, cfg.flows * (gateway + 1) / cfg.gateways)

type env = {
  sim : Desim.Sim.t;
  gw_buffers : Padding.Gateway.Buffers.t option;
}

type shard_result = {
  table : Flow_table.t;
  arrivals : int;
  payload_sent : int;
  dummy_sent : int;
  payload_dropped : int;
  payload_delivered : int;
  mean_payload_latency : float;
  events_processed : int;
  sim_time : float;
}

(* Mirror of System.arm_event_budget: honour the sweep supervisor's
   per-point watchdog when one is installed. *)
let arm_event_budget sim =
  match Exec.Supervise.current_event_budget () with
  | Some max_events -> Desim.Sim.set_event_budget sim ~max_events
  | None -> ()

let arrivals_c = Obs.Metrics.counter "fleet.mux.arrivals"
let dummies_c = Obs.Metrics.counter "fleet.mux.dummies"
let flows_hwm = Obs.Metrics.gauge "fleet.mux.flows"

(* The per-arrival fast path, hoisted to module level so the A001
   hot-path manifest (lint/hot_paths.txt) can name it and verify it
   allocation-free.  Everything the handler needs is threaded through
   one context record built once per shard; the only allocation on the
   path is the packet record itself, inside [Netsim.Packet.make_gen]
   (waived in lint/BASELINE.json — packet identity needs it). *)
type arrival_ctx = {
  ac_table : Flow_table.t;
  ac_c_lo : int array;        (* per-class first flow of this shard *)
  ac_counts : int array;      (* per-class flow count of this shard *)
  ac_cum : float array;       (* cumulative class rates *)
  ac_k : int;
  ac_rate_base : float;
  ac_rng_pick : Prng.Rng.t;
  ac_class_hits : int array;
  ac_packet_size : int;
  ac_idgen : Netsim.Packet.Id_gen.gen;
  ac_input : Netsim.Link.port;
}

let rec last_nonempty counts c =
  if counts.(c) > 0 then c else last_nonempty counts (c - 1)

(* First class with u < cum.(c); empty classes have zero-width cum
   intervals and are never picked.  Fall back to the last non-empty
   class against FP rounding at the top edge. *)
let rec pick_scan counts cum k u c =
  if c = k then last_nonempty counts (k - 1)
  else if counts.(c) > 0 && u < cum.(c) then c
  else pick_scan counts cum k u (c + 1)

let pick_class ctx u = pick_scan ctx.ac_counts ctx.ac_cum ctx.ac_k u 0

let handle_arrival ctx now =
  let c = pick_class ctx (Prng.Rng.float ctx.ac_rng_pick *. ctx.ac_rate_base) in
  let flow =
    ctx.ac_c_lo.(c) + Prng.Rng.int ctx.ac_rng_pick ~bound:ctx.ac_counts.(c)
  in
  Flow_table.record ctx.ac_table ~flow ~bytes:ctx.ac_packet_size ~now;
  ctx.ac_class_hits.(c) <- ctx.ac_class_hits.(c) + 1;
  ctx.ac_input
    (Netsim.Packet.make_gen ctx.ac_idgen ~kind:Netsim.Packet.Payload
       ~size_bytes:ctx.ac_packet_size ~created:now)

let run_shard ?env cfg ~gateway =
  validate cfg;
  let lo, hi = shard_range cfg ~gateway in
  let n = hi - lo in
  let sim, gw_buffers =
    match env with
    | Some e -> (e.sim, e.gw_buffers)
    | None -> (Desim.Sim.create (), None)
  in
  arm_event_budget sim;
  let k = Array.length cfg.classes in
  let bounds = class_bounds cfg in
  let table = Flow_table.create ~lo ~flows:n () in
  (* This shard's slice of each class range, and the per-class aggregate
     rates driving the class pick. *)
  let c_lo = Array.init k (fun c -> Stdlib.max lo bounds.(c)) in
  let counts =
    Array.init k (fun c ->
        Stdlib.max 0 (Stdlib.min hi bounds.(c + 1) - c_lo.(c)))
  in
  for c = 0 to k - 1 do
    for f = c_lo.(c) to c_lo.(c) + counts.(c) - 1 do
      Flow_table.set_class table ~flow:f c
    done
  done;
  let cum = Array.make k 0.0 in
  let total = ref 0.0 in
  for c = 0 to k - 1 do
    total := !total +. (float_of_int counts.(c) *. cfg.classes.(c).rate_pps);
    cum.(c) <- !total
  done;
  let rate_base = !total in
  let root = Prng.Rng.create ~seed:(Prng.Rng.mix_seed cfg.seed gateway) in
  let rng_arrivals = Prng.Rng.split root in
  let rng_pick = Prng.Rng.split root in
  let rng_gateway = Prng.Rng.split root in
  let receiver = Padding.Receiver.create sim () in
  let gw =
    Padding.Gateway.create sim ~rng:rng_gateway ~timer:cfg.timer
      ~jitter:cfg.jitter ~packet_size:cfg.packet_size ?buffers:gw_buffers
      ~dest:(Padding.Receiver.port receiver) ()
  in
  let input = Padding.Gateway.input gw in
  let idgen = Netsim.Packet.Id_gen.create () in
  let class_hits = Array.make k 0 in
  let rate_fn =
    match cfg.modulation with
    | None -> fun _ -> rate_base
    | Some m ->
        fun t ->
          let x = m t in
          if Float.is_nan x || x < 0.0 || x > 1.0 then
            invalid_arg "Fleet.Mux: modulation outside [0, 1]";
          rate_base *. x
  in
  let ctx =
    {
      ac_table = table;
      ac_c_lo = c_lo;
      ac_counts = counts;
      ac_cum = cum;
      ac_k = k;
      ac_rate_base = rate_base;
      ac_rng_pick = rng_pick;
      ac_class_hits = class_hits;
      ac_packet_size = cfg.packet_size;
      ac_idgen = idgen;
      ac_input = input;
    }
  in
  let source =
    Netsim.Traffic_gen.modulated_arrivals sim ~rng:rng_arrivals ~rate_fn
      ~rate_max:rate_base
      ~f:(handle_arrival ctx)
      ()
  in
  Desim.Sim.run_until sim ~time:cfg.duration;
  Netsim.Traffic_gen.stop source;
  Padding.Gateway.stop gw;
  let events = Desim.Sim.events_processed sim in
  Desim.Sim.publish_metrics sim;
  let dummy_sent = Padding.Gateway.dummy_sent gw in
  Flow_table.spread_dummies table ~count:dummy_sent;
  let arrivals = Netsim.Traffic_gen.generated source in
  Obs.Metrics.add arrivals_c arrivals;
  Obs.Metrics.add dummies_c dummy_sent;
  Obs.Metrics.observe_hwm flows_hwm (float_of_int cfg.flows);
  for c = 0 to k - 1 do
    Obs.Metrics.add
      (Obs.Metrics.counter_labeled "fleet.mux.class_arrivals"
         ~label:("class", cfg.classes.(c).label))
      class_hits.(c)
  done;
  {
    table;
    arrivals;
    payload_sent = Padding.Gateway.payload_sent gw;
    dummy_sent;
    payload_dropped = Padding.Gateway.payload_dropped gw;
    payload_delivered = Padding.Receiver.payload_received receiver;
    mean_payload_latency = Padding.Receiver.mean_payload_latency receiver;
    events_processed = events;
    sim_time = Desim.Sim.now sim;
  }

type result = {
  table : Flow_table.t;
  arrivals : int;
  payload_sent : int;
  dummy_sent : int;
  payload_dropped : int;
  payload_delivered : int;
  mean_payload_latency : float;
  overhead : float;
  events_processed : int;
  duration : float;
}

let run ?env_for cfg =
  validate cfg;
  let shards =
    Exec.Pool.parallel_init cfg.gateways (fun g ->
        let env = Option.map (fun f -> f g) env_for in
        run_shard ?env cfg ~gateway:g)
  in
  let table =
    match
      Array.fold_left
        (fun acc (s : shard_result) ->
          match acc with
          | None -> Some s.table
          | Some t -> Some (Flow_table.merge t s.table))
        None shards
    with
    | Some t -> t
    | None -> assert false (* gateways >= 1 *)
  in
  let sum f = Array.fold_left (fun a (s : shard_result) -> a + f s) 0 shards in
  let arrivals = sum (fun s -> s.arrivals) in
  let payload_sent = sum (fun s -> s.payload_sent) in
  let dummy_sent = sum (fun s -> s.dummy_sent) in
  let payload_delivered = sum (fun s -> s.payload_delivered) in
  let emitted = payload_sent + dummy_sent in
  let mean_payload_latency =
    if payload_delivered = 0 then 0.0
    else
      Array.fold_left
        (fun a (s : shard_result) ->
          a +. (s.mean_payload_latency *. float_of_int s.payload_delivered))
        0.0 shards
      /. float_of_int payload_delivered
  in
  {
    table;
    arrivals;
    payload_sent;
    dummy_sent;
    payload_dropped = sum (fun s -> s.payload_dropped);
    payload_delivered;
    mean_payload_latency;
    overhead =
      (if emitted = 0 then 0.0
       else float_of_int dummy_sent /. float_of_int emitted);
    events_processed = sum (fun s -> s.events_processed);
    duration = cfg.duration;
  }
