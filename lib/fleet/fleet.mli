(** Fleet-scale multi-flow workloads.

    {!Flow_table} is the fixed-width SoA per-flow state table;
    {!Mux} multiplexes heterogeneous per-flow traffic over shared padded
    gateways.  The library is unwrapped; this module is the
    [Fleet.Flow_table] / [Fleet.Mux] namespace for external users. *)

module Flow_table = Flow_table
module Mux = Mux
