(** Fixed-width SoA per-flow state table.

    One row per user flow, stored column-wise: unboxed [floatarray]
    columns for the packet / byte / dummy counters and the last-activity
    time, one byte per flow for the rate class — the flat fixed-width
    counter-record idiom of fastnetmon's [map_element_t].  Lookup and
    update are O(1) and allocation-free in steady state; a table for
    10^6 flows is five flat arrays, allocated once in {!create}.

    Counters are integer-valued floats (exact up to 2^53), so the
    per-index additions performed by {!merge} are associative and
    commutative: merging per-shard tables produces the same result in
    any order — the property the fleet sweep's determinism rests on. *)

type t

type snapshot = t
(** A snapshot is just a table the producer no longer mutates; {!snapshot}
    deep-copies a live table into one. *)

val create : ?lo:int -> flows:int -> unit -> t
(** A zeroed table covering the global flow-id window
    [\[lo, lo + flows)] ([lo] defaults to 0).  Shards allocate only their
    own slice.  Raises [Invalid_argument] when [flows < 1] or [lo < 0]. *)

val lo : t -> int
(** First global flow id covered. *)

val width : t -> int
(** Number of flows covered. *)

val hi : t -> int
(** One past the last covered flow id ([lo + width]). *)

val record : t -> flow:int -> bytes:int -> now:float -> unit
(** Count one payload packet on [flow]: packets + 1, bytes + [bytes],
    last-activity set to [now].  Raises [Invalid_argument] when [flow]
    is outside the table's window. *)

val record_dummy : t -> flow:int -> unit
(** Count one cover dummy against [flow] without touching its
    last-activity time (dummies cover silence; they are not activity). *)

val spread_dummies : t -> count:int -> unit
(** Amortize [count] link-level dummies evenly across every flow in the
    window (the remainder goes to the lowest ids) — the accounting for a
    shared padded link whose dummies protect all flows behind it at
    once.  Deterministic.  Raises [Invalid_argument] when negative. *)

val set_class : t -> flow:int -> int -> unit
(** Set the flow's rate-class index (0..255). *)

val rate_class : t -> flow:int -> int

val packets : t -> flow:int -> float
val bytes : t -> flow:int -> float
val dummies : t -> flow:int -> float

val last_activity : t -> flow:int -> float
(** [neg_infinity] until the first {!record}. *)

val clear : t -> unit
(** Zero every column in place, keeping the storage. *)

val total_packets : t -> float
val total_bytes : t -> float
val total_dummies : t -> float

val active : t -> since:float -> int
(** Flows whose last activity is at or after [since]. *)

val snapshot : t -> snapshot
(** Deep copy, so the live table can keep mutating. *)

val merge : snapshot -> snapshot -> snapshot
(** Fresh table over the union of the two windows; counters add,
    last-activity and rate class merge by max.  Associative and
    commutative (the additions are exact while counters stay below
    2^53), so any merge tree over per-shard snapshots yields the same
    table. *)
