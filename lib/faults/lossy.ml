type loss_model =
  | No_loss
  | Bernoulli of float
  | Gilbert_elliott of {
      p_good_to_bad : float;
      p_bad_to_good : float;
      loss_good : float;
      loss_bad : float;
    }

let check_prob ~name ?(closed = false) p =
  let ok = p >= 0.0 && (if closed then p <= 1.0 else p < 1.0) in
  if not (ok && not (Float.is_nan p)) then
    invalid_arg (Printf.sprintf "Lossy: %s out of range" name)

let validate_loss = function
  | No_loss -> ()
  | Bernoulli p -> check_prob ~name:"Bernoulli loss probability" p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      check_prob ~name:"p_good_to_bad" ~closed:true p_good_to_bad;
      check_prob ~name:"p_bad_to_good" ~closed:true p_bad_to_good;
      check_prob ~name:"loss_good" loss_good;
      check_prob ~name:"loss_bad" loss_bad

let expected_loss_rate = function
  | No_loss -> 0.0
  | Bernoulli p -> p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      let denom = p_good_to_bad +. p_bad_to_good in
      if denom = 0.0 then loss_good (* never leaves the initial good state *)
      else
        let pi_bad = p_good_to_bad /. denom in
        ((1.0 -. pi_bad) *. loss_good) +. (pi_bad *. loss_bad)

type t = {
  sim : Desim.Sim.t;
  rng : Prng.Rng.t;
  loss : loss_model;
  dup_prob : float;
  reorder_prob : float;
  reorder_delay : float;
  dest : Netsim.Link.port;
  mutable bad_state : bool;
  mutable offered : int;
  mutable passed : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable reordered : int;
}

let create sim ~rng ?(loss = No_loss) ?(dup_prob = 0.0) ?(reorder_prob = 0.0)
    ?(reorder_delay = 0.005) ~dest () =
  validate_loss loss;
  check_prob ~name:"dup_prob" dup_prob;
  check_prob ~name:"reorder_prob" reorder_prob;
  if not (reorder_delay > 0.0) then
    invalid_arg "Lossy: reorder_delay must be positive";
  {
    sim;
    rng;
    loss;
    dup_prob;
    reorder_prob;
    reorder_delay;
    dest;
    bad_state = false;
    offered = 0;
    passed = 0;
    lost = 0;
    duplicated = 0;
    reordered = 0;
  }

let drops t =
  match t.loss with
  | No_loss -> false
  | Bernoulli p -> Prng.Rng.float t.rng < p
  | Gilbert_elliott { p_good_to_bad; p_bad_to_good; loss_good; loss_bad } ->
      (* Transition first, then draw loss in the new state: a burst starts
         with the packet that finds the channel already bad. *)
      let flip =
        Prng.Rng.float t.rng
        < if t.bad_state then p_bad_to_good else p_good_to_bad
      in
      if flip then t.bad_state <- not t.bad_state;
      Prng.Rng.float t.rng < if t.bad_state then loss_bad else loss_good

let m_lost = Obs.Metrics.counter "faults.lossy.lost"
let m_duplicated = Obs.Metrics.counter "faults.lossy.duplicated"
let m_reordered = Obs.Metrics.counter "faults.lossy.reordered"

let trace_pkt t name extra pkt =
  if Obs.Trace.enabled () then
    Obs.Trace.event ~name ~t:(Desim.Sim.now t.sim)
      (extra
      @ [ ("kind", Obs.Trace.S (Netsim.Packet.kind_to_string pkt.Netsim.Packet.kind)) ])

let deliver t pkt =
  t.passed <- t.passed + 1;
  t.dest pkt

let send t pkt =
  t.offered <- t.offered + 1;
  if drops t then begin
    t.lost <- t.lost + 1;
    Obs.Metrics.incr m_lost;
    trace_pkt t "packet.dropped" [ ("cause", Obs.Trace.S "loss") ] pkt
  end
  else begin
    (if t.reorder_prob > 0.0 && Prng.Rng.float t.rng < t.reorder_prob then begin
       t.reordered <- t.reordered + 1;
       Obs.Metrics.incr m_reordered;
       trace_pkt t "packet.reordered" [] pkt;
       let hold =
         Prng.Rng.float_range t.rng ~lo:0.0 ~hi:t.reorder_delay
         +. (t.reorder_delay *. 1e-9)
       in
       ignore (Desim.Sim.after t.sim ~delay:hold (fun () -> deliver t pkt)
               : Desim.Sim.handle)
     end
     else deliver t pkt);
    if t.dup_prob > 0.0 && Prng.Rng.float t.rng < t.dup_prob then begin
      t.duplicated <- t.duplicated + 1;
      Obs.Metrics.incr m_duplicated;
      trace_pkt t "packet.dup" [] pkt;
      deliver t pkt
    end
  end

let port t = send t
let offered t = t.offered
let passed t = t.passed
let lost t = t.lost
let duplicated t = t.duplicated
let reordered t = t.reordered

let loss_rate t =
  if t.offered = 0 then 0.0 else float_of_int t.lost /. float_of_int t.offered
