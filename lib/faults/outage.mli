(** Link outages and flapping, driven by {!Desim.Sim} events.

    An outage injector wraps a {!Netsim.Link.port}: while the link is up,
    packets flow through untouched; while it is down, they are dropped and
    counted.  Downtime windows come either from an explicit schedule
    ({!schedule}) or from a random flapping process ({!flap}) with
    exponential up/down holding times.

    Overlapping windows nest: the link is down while {e any} window is
    open.  Every hole the injector punches in the cover stream is visible
    to the tap downstream — that visibility is the point. *)

type t

val create : Desim.Sim.t -> dest:Netsim.Link.port -> unit -> t

val port : t -> Netsim.Link.port
val is_up : t -> bool

val schedule : t -> at:float -> duration:float -> unit
(** Open a downtime window \[[at], [at + duration]) at an absolute
    simulation time.  Raises [Invalid_argument] if [at] is in the past or
    [duration <= 0]. *)

val flap :
  t -> rng:Prng.Rng.t -> mean_up:float -> mean_down:float -> unit
(** Start a random up/down process: exponential up times with mean
    [mean_up], then exponential down times with mean [mean_down]
    (both > 0).  The link starts (and stays) up for the first draw.
    At most one flapping process per injector; calling twice raises. *)

val stop_flapping : t -> unit
(** Cancel the flapping process (scheduled windows still apply). *)

val forwarded : t -> int
val dropped : t -> int
(** Packets discarded while down. *)

val outages : t -> int
(** Number of down transitions so far. *)

val downtime : t -> float
(** Accumulated seconds down, up to the current simulation instant. *)
