type t = {
  sim : Desim.Sim.t;
  rng : Prng.Rng.t;
  failure_rng : Prng.Rng.t;
  timer : Padding.Timer.law;
  jitter : Padding.Jitter.t;
  packet_size : int option;
  queue_limit : int option;
  interval : (unit -> float) option;
  mtbf : float;
  restart_delay : float;
  dest : Netsim.Link.port;
  mutable current : Padding.Gateway.t option;
  mutable pending : Desim.Sim.handle option;  (* next crash or restart *)
  mutable stopped : bool;
  mutable crashes : int;
  mutable went_down : float;
  mutable downtime_acc : float;
  mutable payload_lost : int;
  (* Counters of incarnations already dead: *)
  mutable payload_sent_acc : int;
  mutable dummy_sent_acc : int;
  mutable payload_dropped_acc : int;
  mutable fires_acc : int;
}

let spawn_gateway t =
  Padding.Gateway.create t.sim ~rng:t.rng ~timer:t.timer ~jitter:t.jitter
    ?packet_size:t.packet_size ?queue_limit:t.queue_limit ?interval:t.interval
    ~dest:t.dest ()

let exp_draw t = -.t.mtbf *. log (Prng.Rng.float_pos t.failure_rng)

let m_crashes = Obs.Metrics.counter "faults.crash.crashes"
let m_payload_lost = Obs.Metrics.counter "faults.crash.payload_lost"

let rec arm_crash t =
  if (not t.stopped) && t.mtbf < infinity then
    t.pending <-
      Some (Desim.Sim.after t.sim ~delay:(exp_draw t) (fun () -> crash t))

and crash t =
  match t.current with
  | None -> ()
  | Some gw ->
      t.payload_lost <- t.payload_lost + Padding.Gateway.queue_length gw;
      Obs.Metrics.incr m_crashes;
      Obs.Metrics.add m_payload_lost (Padding.Gateway.queue_length gw);
      if Obs.Trace.enabled () then
        Obs.Trace.event ~name:"gateway.crash" ~t:(Desim.Sim.now t.sim)
          [ ("queued", Obs.Trace.I (Padding.Gateway.queue_length gw)) ];
      t.payload_sent_acc <- t.payload_sent_acc + Padding.Gateway.payload_sent gw;
      t.dummy_sent_acc <- t.dummy_sent_acc + Padding.Gateway.dummy_sent gw;
      t.payload_dropped_acc <-
        t.payload_dropped_acc + Padding.Gateway.payload_dropped gw;
      t.fires_acc <- t.fires_acc + Padding.Gateway.fires gw;
      Padding.Gateway.stop gw;
      t.current <- None;
      t.crashes <- t.crashes + 1;
      t.went_down <- Desim.Sim.now t.sim;
      t.pending <-
        Some (Desim.Sim.after t.sim ~delay:t.restart_delay (fun () -> restart t))

and restart t =
  if not t.stopped then begin
    t.downtime_acc <- t.downtime_acc +. (Desim.Sim.now t.sim -. t.went_down);
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"gateway.restart" ~t:(Desim.Sim.now t.sim) [];
    t.current <- Some (spawn_gateway t);
    arm_crash t
  end

let create sim ~rng ~failure_rng ~timer ~jitter ?packet_size ?queue_limit
    ?interval ~mtbf ~restart_delay ~dest () =
  if not (mtbf > 0.0) then invalid_arg "Crash.create: mtbf <= 0";
  if not (restart_delay > 0.0) then
    invalid_arg "Crash.create: restart_delay <= 0";
  let t =
    {
      sim;
      rng;
      failure_rng;
      timer;
      jitter;
      packet_size;
      queue_limit;
      interval;
      mtbf;
      restart_delay;
      dest;
      current = None;
      pending = None;
      stopped = false;
      crashes = 0;
      went_down = 0.0;
      downtime_acc = 0.0;
      payload_lost = 0;
      payload_sent_acc = 0;
      dummy_sent_acc = 0;
      payload_dropped_acc = 0;
      fires_acc = 0;
    }
  in
  t.current <- Some (spawn_gateway t);
  arm_crash t;
  t

let input t pkt =
  if pkt.Netsim.Packet.kind <> Netsim.Packet.Payload then
    invalid_arg "Crash.input: only payload packets enter the sender gateway";
  match t.current with
  | Some gw -> Padding.Gateway.input gw pkt
  | None ->
      t.payload_lost <- t.payload_lost + 1;
      Obs.Metrics.incr m_payload_lost;
      if Obs.Trace.enabled () then
        Obs.Trace.event ~name:"packet.dropped" ~t:(Desim.Sim.now t.sim)
          [ ("cause", Obs.Trace.S "gw_down"); ("kind", Obs.Trace.S "payload") ]

let stop t =
  t.stopped <- true;
  (match t.pending with Some h -> Desim.Sim.cancel h | None -> ());
  t.pending <- None;
  match t.current with Some gw -> Padding.Gateway.stop gw | None -> ()

let is_up t = t.current <> None
let crashes t = t.crashes

let downtime t =
  t.downtime_acc
  +. if t.current = None then Desim.Sim.now t.sim -. t.went_down else 0.0

let payload_lost t = t.payload_lost

let with_current t acc f =
  acc + match t.current with Some gw -> f gw | None -> 0

let payload_sent t = with_current t t.payload_sent_acc Padding.Gateway.payload_sent
let dummy_sent t = with_current t t.dummy_sent_acc Padding.Gateway.dummy_sent

let payload_dropped t =
  with_current t t.payload_dropped_acc Padding.Gateway.payload_dropped

let fires t = with_current t t.fires_acc Padding.Gateway.fires
let queue_length t = with_current t 0 Padding.Gateway.queue_length

let overhead t =
  let total = payload_sent t + dummy_sent t in
  if total = 0 then 0.0 else float_of_int (dummy_sent t) /. float_of_int total
