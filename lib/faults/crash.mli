(** Gateway crash–restart: a {!Padding.Gateway} that dies and comes back.

    A crash kills the running gateway instance: its timer stops (the cover
    stream goes silent — a hole every tap can see), its payload queue is
    lost, and payload arriving during the downtime is lost too.  After
    [restart_delay] a fresh gateway instance starts with an empty queue.
    Counters aggregate across incarnations, so the wrapper reads exactly
    like a single long-lived gateway plus fault accounting.

    Crash instants are exponential with mean [mtbf] (drawn from the
    dedicated [failure_rng], so the fault schedule never perturbs the
    traffic randomness); [mtbf = infinity] never crashes. *)

type t

val create :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  failure_rng:Prng.Rng.t ->
  timer:Padding.Timer.law ->
  jitter:Padding.Jitter.t ->
  ?packet_size:int ->
  ?queue_limit:int ->
  ?interval:(unit -> float) ->
  mtbf:float ->
  restart_delay:float ->
  dest:Netsim.Link.port ->
  unit ->
  t
(** [rng], [timer], [jitter], [packet_size], [queue_limit], [interval] and
    [dest] are passed to each {!Padding.Gateway} incarnation.  [mtbf > 0]
    ([infinity] allowed); [restart_delay > 0]. *)

val input : t -> Netsim.Link.port
(** Payload port.  While down, payload packets are counted lost.  Raises
    [Invalid_argument] on non-payload packets, like the gateway itself. *)

val stop : t -> unit
(** Stop the current incarnation and cancel all pending crash/restart
    events. *)

val is_up : t -> bool
val crashes : t -> int

val downtime : t -> float
(** Accumulated seconds with no gateway running, up to now. *)

val payload_lost : t -> int
(** Queue contents discarded at crash instants plus arrivals while down. *)

(** Aggregates across all incarnations (current one included): *)

val payload_sent : t -> int
val dummy_sent : t -> int
val payload_dropped : t -> int
(** Queue-overflow drops, as in {!Padding.Gateway.payload_dropped} —
    distinct from {!payload_lost}. *)

val fires : t -> int
val queue_length : t -> int
(** Of the current incarnation; 0 while down. *)

val overhead : t -> float
(** Dummy fraction of all packets emitted across incarnations. *)
