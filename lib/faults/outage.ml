type t = {
  sim : Desim.Sim.t;
  dest : Netsim.Link.port;
  mutable down_depth : int;         (* > 0 means down; windows may overlap *)
  mutable went_down : float;
  mutable downtime_acc : float;
  mutable outages : int;
  mutable forwarded : int;
  mutable dropped : int;
  mutable flap_handle : Desim.Sim.handle option;
}

let create sim ~dest () =
  {
    sim;
    dest;
    down_depth = 0;
    went_down = 0.0;
    downtime_acc = 0.0;
    outages = 0;
    forwarded = 0;
    dropped = 0;
    flap_handle = None;
  }

let is_up t = t.down_depth = 0

let m_outages = Obs.Metrics.counter "faults.outage.outages"
let m_dropped = Obs.Metrics.counter "faults.outage.dropped"

let go_down t =
  if t.down_depth = 0 then begin
    t.went_down <- Desim.Sim.now t.sim;
    t.outages <- t.outages + 1;
    Obs.Metrics.incr m_outages;
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"outage.start" ~t:(Desim.Sim.now t.sim) []
  end;
  t.down_depth <- t.down_depth + 1

let go_up t =
  if t.down_depth <= 0 then invalid_arg "Outage: up without matching down";
  t.down_depth <- t.down_depth - 1;
  if t.down_depth = 0 then begin
    t.downtime_acc <- t.downtime_acc +. (Desim.Sim.now t.sim -. t.went_down);
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"outage.end" ~t:(Desim.Sim.now t.sim) []
  end

let schedule t ~at ~duration =
  if duration <= 0.0 || Float.is_nan duration then
    invalid_arg "Outage.schedule: duration <= 0";
  ignore (Desim.Sim.at t.sim ~time:at (fun () -> go_down t) : Desim.Sim.handle);
  ignore
    (Desim.Sim.at t.sim ~time:(at +. duration) (fun () -> go_up t)
      : Desim.Sim.handle)

let flap t ~rng ~mean_up ~mean_down =
  if mean_up <= 0.0 || mean_down <= 0.0 then
    invalid_arg "Outage.flap: means must be positive";
  if t.flap_handle <> None then
    invalid_arg "Outage.flap: already flapping";
  let exp_draw mean = -.mean *. log (Prng.Rng.float_pos rng) in
  (* A chain of self-rescheduling events; the master handle gates every
     link so stop_flapping takes effect at the next transition. *)
  let master = ref None in
  let alive () =
    match !master with Some h -> not (Desim.Sim.cancelled h) | None -> true
  in
  let rec up_phase () =
    if alive () then
      ignore
        (Desim.Sim.after t.sim ~delay:(exp_draw mean_up) (fun () ->
             if alive () then begin
               go_down t;
               down_phase ()
             end)
          : Desim.Sim.handle)
  and down_phase () =
    ignore
      (Desim.Sim.after t.sim ~delay:(exp_draw mean_down) (fun () ->
           (* Always come back up — cancelling flapping must not leave the
              link down forever. *)
           go_up t;
           if alive () then up_phase ())
        : Desim.Sim.handle)
  in
  (* Reuse a cancellable sim event as the master switch. *)
  let h = Desim.Sim.after t.sim ~delay:0.0 (fun () -> ()) in
  master := Some h;
  t.flap_handle <- Some h;
  up_phase ()

let stop_flapping t =
  match t.flap_handle with
  | Some h ->
      Desim.Sim.cancel h;
      t.flap_handle <- None
  | None -> ()

let send t pkt =
  if t.down_depth > 0 then begin
    t.dropped <- t.dropped + 1;
    Obs.Metrics.incr m_dropped;
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"packet.dropped" ~t:(Desim.Sim.now t.sim)
        [
          ("cause", Obs.Trace.S "outage");
          ("kind", Obs.Trace.S (Netsim.Packet.kind_to_string pkt.Netsim.Packet.kind));
        ]
  end
  else begin
    t.forwarded <- t.forwarded + 1;
    t.dest pkt
  end

let port t = send t
let forwarded t = t.forwarded
let dropped t = t.dropped
let outages t = t.outages

let downtime t =
  t.downtime_acc
  +. if t.down_depth > 0 then Desim.Sim.now t.sim -. t.went_down else 0.0
