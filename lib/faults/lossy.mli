(** Lossy-wire combinator: wraps any {!Netsim.Link.port} with packet loss,
    duplication, and bounded reordering.

    The paper's channel is fault-free; a real wire is not.  Every fault
    here punctures or perturbs the constant-rate cover stream and therefore
    hands the adversary side information the closed-form theorems never see
    — the degradation scenario quantifies exactly how much.

    The combinator is transparent to both endpoints: upstream keeps pushing
    into {!port}, downstream receives surviving packets at their original
    (or boundedly delayed) instants.  All randomness comes from the
    caller-supplied {!Prng.Rng.t}, so faulty runs stay reproducible. *)

type loss_model =
  | No_loss
  | Bernoulli of float
      (** i.i.d. loss with the given probability in \[0, 1). *)
  | Gilbert_elliott of {
      p_good_to_bad : float;  (** per-packet transition probability *)
      p_bad_to_good : float;
      loss_good : float;      (** loss probability in the good state *)
      loss_bad : float;       (** ... in the bad (bursty) state *)
    }
      (** Two-state Markov (bursty) loss; starts in the good state. *)

val validate_loss : loss_model -> unit
(** Raises [Invalid_argument] on probabilities outside \[0, 1) (loss) or
    \[0, 1\] (transitions). *)

val expected_loss_rate : loss_model -> float
(** Stationary loss probability of the model (exact for Bernoulli, the
    Markov-chain stationary mix for Gilbert–Elliott). *)

type t

val create :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  ?loss:loss_model ->
  ?dup_prob:float ->
  ?reorder_prob:float ->
  ?reorder_delay:float ->
  dest:Netsim.Link.port ->
  unit ->
  t
(** [loss] defaults to [No_loss]; [dup_prob] (default 0) duplicates a
    surviving packet immediately; [reorder_prob] (default 0) holds a
    surviving packet back by a uniform delay in (0, [reorder_delay]]
    (default 5 ms), letting later packets overtake it — bounded
    reordering.  Probabilities must lie in \[0, 1); [reorder_delay > 0]. *)

val port : t -> Netsim.Link.port

val offered : t -> int
(** Packets pushed into the combinator. *)

val passed : t -> int
(** Packets delivered downstream (duplicates included). *)

val lost : t -> int
val duplicated : t -> int
val reordered : t -> int

val loss_rate : t -> float
(** [lost / offered] so far; 0 before any traffic. *)
