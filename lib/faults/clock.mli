(** Gateway clock faults: systematic drift, missed timer fires, and fire
    coalescing after overruns.

    The paper's timer is ideal — every period T produces exactly one fire.
    Real timers drift (oscillator rate error), miss fires (the interrupt is
    masked through a whole period), and handle overruns in one of two ways:
    {e coalescing} (the missed expirations collapse into the next fire,
    leaving a k·T hole in the cover stream) or {e catch-up} (the kernel
    replays the missed fires back-to-back, producing a burst).  Both
    signatures are visible to a tap and neither appears in the closed-form
    theorems.

    The faults are expressed as a stateful interval generator layered onto
    an unmodified {!Padding.Timer.law}; plug the result into
    [Padding.Gateway.create ~interval] (or any {!Desim.Sim.every} train).
    One generator serves one timer train; it survives gateway restarts. *)

type spec = {
  drift : float;
      (** Fractional clock-rate error: intervals are scaled by
          [1. +. drift].  Must be > -1 (a clock cannot run backwards). *)
  miss_prob : float;
      (** Probability, per scheduled fire, that the fire is silently
          missed; in \[0, 1). *)
  coalesce : bool;
      (** [true]: missed fires are absorbed — the wire sees one interval
          of (k+1) periods.  [false]: after the overrun, the k missed
          fires are replayed back-to-back at {!catchup_spacing}. *)
  max_consecutive_misses : int;
      (** Cap on k, >= 1; bounds the hole/burst length. *)
}

val ideal : spec
(** No drift, no misses — the identity layer. *)

val validate : spec -> unit

val catchup_spacing : float
(** Spacing of replayed catch-up fires (1 µs): effectively back-to-back
    relative to a millisecond-scale period, but strictly positive as
    {!Desim.Sim.every} requires. *)

val intervals :
  ?sim:Desim.Sim.t ->
  spec -> law:Padding.Timer.law -> rng:Prng.Rng.t -> unit -> float
(** [intervals spec ~law ~rng] is a generator of successive faulty
    intervals; with [spec = ideal] it is distributionally identical to
    drawing from [law] directly.  Pass [?sim] to timestamp the
    [timer.miss] / [timer.catchup] events in the [Obs.Trace] stream;
    the generator itself never reads the clock. *)
