type spec = {
  drift : float;
  miss_prob : float;
  coalesce : bool;
  max_consecutive_misses : int;
}

let ideal =
  { drift = 0.0; miss_prob = 0.0; coalesce = true; max_consecutive_misses = 1 }

let validate spec =
  if Float.is_nan spec.drift || spec.drift <= -1.0 then
    invalid_arg "Clock: drift must be > -1";
  if
    Float.is_nan spec.miss_prob || spec.miss_prob < 0.0
    || spec.miss_prob >= 1.0
  then invalid_arg "Clock: miss_prob must be in [0, 1)";
  if spec.max_consecutive_misses < 1 then
    invalid_arg "Clock: max_consecutive_misses < 1"

let catchup_spacing = 1e-6

let m_missed = Obs.Metrics.counter "faults.clock.missed_fires"

let trace ?sim name =
  match sim with
  | Some s when Obs.Trace.enabled () ->
      Obs.Trace.event ~name ~t:(Desim.Sim.now s) []
  | Some _ | None -> ()

let intervals ?sim spec ~law ~rng =
  validate spec;
  Padding.Timer.validate law;
  let pending_catchup = ref 0 in
  let draw () = Padding.Timer.draw law rng *. (1.0 +. spec.drift) in
  fun () ->
    if !pending_catchup > 0 then begin
      decr pending_catchup;
      trace ?sim "timer.catchup";
      catchup_spacing
    end
    else begin
      let span = ref (draw ()) in
      let missed = ref 0 in
      while
        !missed < spec.max_consecutive_misses
        && spec.miss_prob > 0.0
        && Prng.Rng.float rng < spec.miss_prob
      do
        (* This period's fire is masked; the train only reaches the wire
           one (drifted) period later. *)
        incr missed;
        Obs.Metrics.incr m_missed;
        trace ?sim "timer.miss";
        span := !span +. draw ()
      done;
      if (not spec.coalesce) && !missed > 0 then pending_catchup := !missed;
      !span
    end
