(** Priority queue of timestamped events.

    Binary min-heap ordered by (time, sequence number): ties in time are
    broken by insertion order, which makes simulations deterministic — a
    hard requirement for reproducible figures.

    The heap is stored structure-of-arrays (unboxed float times, int
    seq/slot arrays, payload slots recycled through a free-list), so the
    steady-state push/pop cycle performs no heap allocation beyond the
    caller's own boxing.  Popped payload slots retain their old value
    until reused; the retention is bounded by the queue's high-water
    mark. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val capacity : 'a t -> int
(** Allocated slots (>= {!size}); grows geometrically, never shrinks. *)

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on NaN time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, [None] when empty.  Allocates
    the option and pair; the hot simulation loop uses {!min_time} +
    {!pop_exn} instead. *)

val min_time : 'a t -> float
(** Earliest timestamp.  Raises [Invalid_argument] when empty. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest event and return its payload without allocating.
    Read {!min_time} first if the timestamp is needed.  Raises
    [Invalid_argument] when empty. *)

val peek_time : 'a t -> float option
(** Earliest timestamp without removing it. *)

val clear : 'a t -> unit
(** Empty the queue and reset the tie-break counter, keeping the
    allocated capacity — the arena-reuse hook for sweep harnesses.  A
    cleared queue behaves exactly like a fresh one. *)
