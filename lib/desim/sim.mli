(** Discrete-event simulator.

    A simulation is a clock plus a queue of [unit -> unit] callbacks.
    Components schedule future work with {!at} or {!after}; {!run_until}
    drains events in timestamp order (insertion order on ties), advancing
    the clock monotonically.

    Events can be cancelled through the handle returned by the schedulers;
    cancellation is O(1) (the event is skipped when popped).  A periodic
    helper covers the timer-driven padding gateways. *)

type t

type handle
(** Cancellation handle for a scheduled event. *)

val create : ?start_time:float -> unit -> t

val reset : ?start_time:float -> t -> unit
(** Return the simulator to its just-created state while keeping the
    event queue's allocated capacity: pending events are discarded, the
    clock rewinds to [start_time] (default 0) and the local tallies are
    zeroed.  A reset simulator behaves exactly like a fresh one — the
    arena-reuse hook that lets sweep harnesses run thousands of
    simulations without re-growing the queue each time.  Unpublished
    tallies are dropped; call {!publish_metrics} first if they matter. *)

val now : t -> float
(** Current simulation time (seconds). *)

val pending : t -> int
(** Number of scheduled (possibly cancelled) events still queued. *)

val events_processed : t -> int
(** Events popped since creation or the last {!publish_metrics}. *)

val queue_hwm : t -> int
(** Queue-depth high-water mark since creation or the last
    {!publish_metrics}. *)

val publish_metrics : t -> unit
(** Flush the local tallies into the [Obs] registry
    ([desim.events_processed] counter, [desim.queue_hwm] gauge) and reset
    them.  Call once per finished simulation run; keeping tallies local
    until then keeps the event loop free of shared-state traffic. *)

val at : t -> time:float -> (unit -> unit) -> handle
(** Schedule a callback at an absolute time.  Raises [Invalid_argument] if
    [time] is in the past (< now). *)

val after : t -> delay:float -> (unit -> unit) -> handle
(** Schedule after a non-negative delay from now. *)

val cancel : handle -> unit
(** Idempotent; a cancelled event's callback never runs. *)

val cancelled : handle -> bool

val rearm : t -> handle -> delay:float -> unit
(** Schedule one more occurrence of an existing handle's callback,
    [delay] from now, without allocating a new handle — the
    self-rescheduling idiom for hot periodic processes.  Each pending
    occurrence runs once: re-arming a handle that is already pending
    queues an additional run (the gateway uses this to drive a FIFO of
    in-flight emissions off a single event record).  Cancelling the
    handle suppresses all of its pending occurrences at once.  Raises
    [Invalid_argument] on negative or NaN delay. *)

val every :
  t -> ?start:float -> interval:(unit -> float) -> (unit -> unit) -> handle
(** [every t ~interval f] runs [f] repeatedly; after each run the next
    occurrence is scheduled [interval ()] later (so random intervals are
    re-drawn each period — exactly a VIT timer).  Intervals must be
    positive.  The returned handle cancels the whole train.  [start]
    defaults to now + interval ().  The whole train reuses one event
    record, so a steady-state period performs no allocation beyond the
    interval function's own. *)

val account_external : t -> events:int -> queue_hwm:int -> unit
(** Fold work performed outside the event queue into the simulator's
    local tallies, as if [events] events had been popped and the queue
    had reached depth [queue_hwm].  The fused scenario kernels use this
    to stay comparable with the event-loop path: per processed chunk
    they account the events the loop {e would} have dispatched, then
    call {!run_until} on the (empty) queue so the clock advances and the
    event budget is enforced with the same chunk granularity and the
    same totals as a real drain.  Raises [Invalid_argument] on negative
    arguments. *)

val run_until : t -> time:float -> unit
(** Execute all events with timestamp <= [time]; afterwards [now] = [time].
    Callbacks may schedule more events, including at the current instant.
    If an event budget is armed (see {!set_event_budget}) and
    [events_processed] has exceeded it, raises {!Event_budget_exceeded} —
    checked on entry and after the drain, never per event, so the watchdog
    has chunk granularity and zero hot-path cost. *)

exception Event_budget_exceeded of { max_events : int }
(** Raised by {!run_all} and by {!run_until} (when armed via
    {!set_event_budget}) once the event budget is exhausted — the
    runaway-self-scheduling / poison-sweep-point guard. *)

val set_event_budget : t -> max_events:int -> unit
(** Arm the per-run watchdog: subsequent {!run_until} calls raise
    {!Event_budget_exceeded} once [events_processed] exceeds
    [max_events].  The budget is cleared by {!reset} (simulators are
    arena-reused across runs, so budgets never leak between runs) and is
    measured against events since creation, the last {!reset} or the last
    {!publish_metrics}.  Raises [Invalid_argument] if [max_events < 1]. *)

val run_all : ?max_events:int -> t -> unit
(** Drain the queue completely; [max_events] (default 100 million) guards
    against runaway self-scheduling loops by raising
    {!Event_budget_exceeded}. *)
