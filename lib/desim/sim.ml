type event = { mutable cancelled : bool; mutable run : unit -> unit }
type handle = event

type t = {
  mutable clock : float;
  queue : event Event_queue.t;
  (* Local tallies, flushed to Obs by [publish_metrics]: the event loop is
     the hottest path in the repo and must not touch domain-local storage
     per event. *)
  mutable events_processed : int;
  mutable queue_hwm : int;
  (* Watchdog limit on events_processed; [max_int] = unarmed.  Checked at
     chunk granularity (entry/exit of [run_until]), never per event, so
     arming it costs nothing on the hot path. *)
  mutable budget_limit : int;
}

let create ?(start_time = 0.0) () =
  {
    clock = start_time;
    queue = Event_queue.create ();
    events_processed = 0;
    queue_hwm = 0;
    budget_limit = max_int;
  }

let reset ?(start_time = 0.0) t =
  Event_queue.clear t.queue;
  t.clock <- start_time;
  t.events_processed <- 0;
  t.queue_hwm <- 0;
  (* Budgets are per-run: arena reuse resets the simulator on acquire, so
     a leaked budget could otherwise abort an unrelated run. *)
  t.budget_limit <- max_int

let now t = t.clock
let pending t = Event_queue.size t.queue
let events_processed t = t.events_processed
let queue_hwm t = t.queue_hwm

let m_events = Obs.Metrics.counter "desim.events_processed"
let m_hwm = Obs.Metrics.gauge "desim.queue_hwm"

let publish_metrics t =
  Obs.Metrics.add m_events t.events_processed;
  Obs.Metrics.observe_hwm m_hwm (float_of_int t.queue_hwm);
  t.events_processed <- 0;
  t.queue_hwm <- 0

(* Shared by every scheduler: one queue push plus the depth tally. *)
let enqueue t ~time ev =
  Event_queue.push t.queue ~time ev;
  let depth = Event_queue.size t.queue in
  if depth > t.queue_hwm then t.queue_hwm <- depth

let at t ~time run =
  if Float.is_nan time then invalid_arg "Sim.at: NaN time";
  if time < t.clock then invalid_arg "Sim.at: time in the past";
  let ev = { cancelled = false; run } in
  enqueue t ~time ev;
  ev

let after t ~delay run =
  if Float.is_nan delay || delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t ~time:(t.clock +. delay) run

let cancel ev = ev.cancelled <- true
let cancelled ev = ev.cancelled

let rearm t h ~delay =
  if Float.is_nan delay || delay < 0.0 then invalid_arg "Sim.rearm: negative delay";
  enqueue t ~time:(t.clock +. delay) h

let every t ?start ~interval f =
  (* One event record serves the whole periodic train: each tick runs the
     body and re-pushes the same record, so a steady-state period costs a
     queue push and nothing else.  The record doubles as the handle; a
     cancelled record is skipped when popped, which both suppresses the
     tick and breaks the re-arm chain. *)
  let rec ev =
    {
      cancelled = false;
      run =
        (fun () ->
          f ();
          let dt = interval () in
          if Float.is_nan dt || dt <= 0.0 then
            invalid_arg "Sim.every: non-positive interval";
          enqueue t ~time:(t.clock +. dt) ev);
    }
  in
  let first =
    match start with
    | Some s -> s
    | None ->
        let dt = interval () in
        if Float.is_nan dt || dt <= 0.0 then
          invalid_arg "Sim.every: non-positive interval";
        t.clock +. dt
  in
  if Float.is_nan first then invalid_arg "Sim.at: NaN time";
  if first < t.clock then invalid_arg "Sim.at: time in the past";
  enqueue t ~time:first ev;
  ev

let step t =
  let q = t.queue in
  if Event_queue.is_empty q then false
  else begin
    let time = Event_queue.min_time q in
    let ev = Event_queue.pop_exn q in
    t.clock <- time;
    t.events_processed <- t.events_processed + 1;
    if not ev.cancelled then ev.run ();
    true
  end

exception Event_budget_exceeded of { max_events : int }

let set_event_budget t ~max_events =
  if max_events < 1 then invalid_arg "Sim.set_event_budget: max_events < 1";
  t.budget_limit <- max_events

let check_budget t =
  if t.events_processed > t.budget_limit then
    raise (Event_budget_exceeded { max_events = t.budget_limit })

let account_external t ~events ~queue_hwm =
  if events < 0 then invalid_arg "Sim.account_external: negative events";
  if queue_hwm < 0 then invalid_arg "Sim.account_external: negative queue_hwm";
  t.events_processed <- t.events_processed + events;
  if queue_hwm > t.queue_hwm then t.queue_hwm <- queue_hwm

let run_until t ~time =
  if Float.is_nan time then invalid_arg "Sim.run_until: NaN time";
  check_budget t;
  let q = t.queue in
  (* Open-coded [step] on the allocation-free queue primitives: per event
     the loop performs one min_time read, one pop and the callback — no
     options, no tuples. *)
  let continue = ref true in
  while !continue do
    if Event_queue.is_empty q then continue := false
    else begin
      let next = Event_queue.min_time q in
      if next > time then continue := false
      else begin
        let ev = Event_queue.pop_exn q in
        t.clock <- next;
        t.events_processed <- t.events_processed + 1;
        if not ev.cancelled then ev.run ()
      end
    end
  done;
  if time > t.clock then t.clock <- time;
  check_budget t

let run_all ?(max_events = 100_000_000) t =
  let count = ref 0 in
  while step t do
    incr count;
    if !count > max_events then raise (Event_budget_exceeded { max_events })
  done
