type event = { mutable cancelled : bool; mutable run : unit -> unit }
type handle = event

type t = {
  mutable clock : float;
  queue : event Event_queue.t;
  (* Local tallies, flushed to Obs by [publish_metrics]: the event loop is
     the hottest path in the repo and must not touch domain-local storage
     per event. *)
  mutable events_processed : int;
  mutable queue_hwm : int;
}

let create ?(start_time = 0.0) () =
  {
    clock = start_time;
    queue = Event_queue.create ();
    events_processed = 0;
    queue_hwm = 0;
  }

let now t = t.clock
let pending t = Event_queue.size t.queue
let events_processed t = t.events_processed
let queue_hwm t = t.queue_hwm

let m_events = Obs.Metrics.counter "desim.events_processed"
let m_hwm = Obs.Metrics.gauge "desim.queue_hwm"

let publish_metrics t =
  Obs.Metrics.add m_events t.events_processed;
  Obs.Metrics.observe_hwm m_hwm (float_of_int t.queue_hwm);
  t.events_processed <- 0;
  t.queue_hwm <- 0

let at t ~time run =
  if Float.is_nan time then invalid_arg "Sim.at: NaN time";
  if time < t.clock then invalid_arg "Sim.at: time in the past";
  let ev = { cancelled = false; run } in
  Event_queue.push t.queue ~time ev;
  let depth = Event_queue.size t.queue in
  if depth > t.queue_hwm then t.queue_hwm <- depth;
  ev

let after t ~delay run =
  if Float.is_nan delay || delay < 0.0 then invalid_arg "Sim.after: negative delay";
  at t ~time:(t.clock +. delay) run

let cancel ev = ev.cancelled <- true
let cancelled ev = ev.cancelled

let every t ?start ~interval f =
  (* One master handle controls the whole periodic train; each tick
     re-checks it so cancellation takes effect at the next occurrence. *)
  let master = { cancelled = false; run = (fun () -> ()) } in
  let rec tick () =
    if not master.cancelled then begin
      f ();
      let dt = interval () in
      if dt <= 0.0 then invalid_arg "Sim.every: non-positive interval";
      ignore (at t ~time:(t.clock +. dt) tick : handle)
    end
  in
  let first =
    match start with
    | Some s -> s
    | None ->
        let dt = interval () in
        if dt <= 0.0 then invalid_arg "Sim.every: non-positive interval";
        t.clock +. dt
  in
  ignore (at t ~time:first tick : handle);
  master

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, ev) ->
      t.clock <- time;
      t.events_processed <- t.events_processed + 1;
      if not ev.cancelled then ev.run ();
      true

let run_until t ~time =
  if Float.is_nan time then invalid_arg "Sim.run_until: NaN time";
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | Some next when next <= time -> ignore (step t : bool)
    | Some _ | None -> continue := false
  done;
  if time > t.clock then t.clock <- time

exception Event_budget_exceeded of { max_events : int }

let run_all ?(max_events = 100_000_000) t =
  let count = ref 0 in
  while step t do
    incr count;
    if !count > max_events then raise (Event_budget_exceeded { max_events })
  done
