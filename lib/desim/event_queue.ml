(* Structure-of-arrays binary min-heap.

   The heap itself lives in three parallel unboxed arrays — [times]
   (floatarray), [seqs] and [slots] (int arrays) — so sift operations
   touch no OCaml block pointers and never trip the write barrier.
   Payloads sit in a side [payloads] array indexed through [slots]; a
   payload is written exactly once per push and read exactly once per
   pop, and the slot indices are recycled through an explicit free-list
   stack ([free], [free_len]).

   The payload store is created lazily from the first pushed value, so
   no [Obj.magic] dummy is ever manufactured; popped slots keep their
   stale payload until the slot is reused, which pins at most one
   queue-capacity's worth of dead values — bounded by the high-water
   mark, and recycled on the next push.

   Invariant: the [len] heap slots plus the [free_len] free slots
   partition [0, capacity).  Ordering is (time, seq): seq is a per-queue
   push counter, so ties in time pop in insertion order.  The heap
   layout is an implementation detail — pop order is the total (time,
   seq) order regardless of sift strategy — which is what makes this
   rewrite byte-identical to the boxed-entry heap it replaces. *)

type 'a t = {
  mutable times : floatarray;
  mutable seqs : int array;
  mutable slots : int array;
  mutable payloads : 'a array; (* empty until the first push *)
  mutable free : int array;
  mutable free_len : int;
  mutable len : int;
  mutable next_seq : int;
}

let create () =
  {
    times = Float.Array.create 0;
    seqs = [||];
    slots = [||];
    payloads = [||];
    free = [||];
    free_len = 0;
    len = 0;
    next_seq = 0;
  }

let is_empty t = t.len = 0
let size t = t.len

let capacity t = Array.length t.slots

(* Only called with [t.len = capacity] (so the free stack is empty) and
   with the payload about to be pushed, which seeds the lazily-created
   payload store. *)
let grow t seed_payload =
  let cap = capacity t in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let times = Float.Array.create new_cap in
  Float.Array.blit t.times 0 times 0 t.len;
  let seqs = Array.make new_cap 0 in
  Array.blit t.seqs 0 seqs 0 t.len;
  let slots = Array.make new_cap 0 in
  Array.blit t.slots 0 slots 0 t.len;
  let payloads = Array.make new_cap seed_payload in
  Array.blit t.payloads 0 payloads 0 cap;
  let free = Array.make new_cap 0 in
  (* The slots cap .. new_cap-1 are brand new and all free. *)
  for i = 0 to new_cap - cap - 1 do
    free.(i) <- cap + i
  done;
  t.times <- times;
  t.seqs <- seqs;
  t.slots <- slots;
  t.payloads <- payloads;
  t.free <- free;
  t.free_len <- new_cap - cap

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  if t.len = capacity t then grow t payload;
  let slot = t.free.(t.free_len - 1) in
  t.free_len <- t.free_len - 1;
  t.payloads.(slot) <- payload;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  (* Sift up with a hole: move later parents down, then drop the new
     entry in place.  Same comparisons as a swap loop, fewer writes. *)
  let times = t.times and seqs = t.seqs and slots = t.slots in
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pt = Float.Array.get times parent in
    if time < pt || (time = pt && seq < seqs.(parent)) then begin
      Float.Array.set times !i pt;
      seqs.(!i) <- seqs.(parent);
      slots.(!i) <- slots.(parent);
      i := parent
    end
    else continue := false
  done;
  Float.Array.set times !i time;
  seqs.(!i) <- seq;
  slots.(!i) <- slot

let min_time t =
  if t.len = 0 then invalid_arg "Event_queue.min_time: empty queue";
  Float.Array.get t.times 0

(* Remove the root entry; the caller has already read it out. *)
let remove_root t =
  t.len <- t.len - 1;
  if t.len > 0 then begin
    let times = t.times and seqs = t.seqs and slots = t.slots in
    let last = t.len in
    let lt = Float.Array.get times last in
    let ls = seqs.(last) in
    let lslot = slots.(last) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      if l >= t.len then continue := false
      else begin
        (* Pick the earlier child. *)
        let c =
          if r >= t.len then l
          else begin
            let ltime = Float.Array.get times l and rtime = Float.Array.get times r in
            if rtime < ltime || (rtime = ltime && seqs.(r) < seqs.(l)) then r
            else l
          end
        in
        let ct = Float.Array.get times c in
        if ct < lt || (ct = lt && seqs.(c) < ls) then begin
          Float.Array.set times !i ct;
          seqs.(!i) <- seqs.(c);
          slots.(!i) <- slots.(c);
          i := c
        end
        else continue := false
      end
    done;
    Float.Array.set times !i lt;
    seqs.(!i) <- ls;
    slots.(!i) <- lslot
  end

let pop_exn t =
  if t.len = 0 then invalid_arg "Event_queue.pop_exn: empty queue";
  let slot = t.slots.(0) in
  let payload = t.payloads.(slot) in
  t.free.(t.free_len) <- slot;
  t.free_len <- t.free_len + 1;
  remove_root t;
  payload

let pop t =
  if t.len = 0 then None
  else begin
    let time = Float.Array.get t.times 0 in
    let payload = pop_exn t in
    Some (time, payload)
  end

let peek_time t = if t.len = 0 then None else Some (Float.Array.get t.times 0)

let clear t =
  t.len <- 0;
  t.next_seq <- 0;
  let cap = capacity t in
  for i = 0 to cap - 1 do
    t.free.(i) <- i
  done;
  t.free_len <- cap
