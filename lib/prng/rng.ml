type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64 step: used to expand the seed into the four xoshiro words and
   to derive split children.  Constants from Steele, Lea & Flood (2014). *)
let splitmix_next state =
  let open Int64 in
  let z = add !state 0x9E3779B97F4A7C15L in
  state := z;
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_sm64 state =
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  (* xoshiro must not be seeded with the all-zero state; SplitMix64 cannot
     produce four zero outputs in a row, so this is safe by construction. *)
  { s0; s1; s2; s3 }

let create ~seed =
  let state = ref (Int64.of_int seed) in
  of_sm64 state

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  of_sm64 state

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let rec float_pos t =
  let u = float t in
  if u > 0.0 then u else float_pos t

let float_range t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

(* Rejection sampling on the top bits to avoid modulo bias.  Top-level
   (rather than an inner [let rec] closing over the locals) so the
   per-arrival hot path pays no closure allocation — [Rng.int] sits in
   the A001 closure of [Mux.handle_arrival]. *)
let rec reject_draw t ~limit ~bound64 =
  let v = Int64.shift_right_logical (bits64 t) 1 in
  if v >= limit then reject_draw t ~limit ~bound64
  else Int64.to_int (Int64.rem v bound64)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let bound64 = Int64.of_int bound in
  let max64 = Int64.max_int in
  let limit = Int64.sub max64 (Int64.rem max64 bound64) in
  reject_draw t ~limit ~bound64

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

let mix_seed root index =
  (* Two SplitMix64 steps with the index folded in between: a pure,
     order-independent derivation of per-task seeds for parallel work.
     The golden-ratio multiply decorrelates adjacent indices before the
     second finalizer, and the final shift keeps the result a positive
     63-bit OCaml int. *)
  let state = ref (Int64.of_int root) in
  let h = splitmix_next state in
  state := Int64.logxor h (Int64.mul (Int64.of_int index) 0x9E3779B97F4A7C15L);
  Int64.to_int (Int64.shift_right_logical (splitmix_next state) 2)

let seed_of_string s =
  (* FNV-1a, folded to 62 bits to stay positive in an OCaml int. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.shift_right_logical !h 2)
