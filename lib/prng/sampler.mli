(** Random-variate samplers built on {!Rng}.

    Each sampler documents its algorithm and parameter constraints; all
    raise [Invalid_argument] on parameter violations.  Time quantities in
    the simulator are seconds, so these are plain float samplers. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via Marsaglia's polar method. [sigma >= 0]. *)

val truncated_normal_pos : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian conditioned on being strictly positive, by rejection.  Used for
    VIT timer intervals, which must be positive.  Requires [mu > 0]; for the
    regimes used here (mu >> sigma or mu ~ sigma) rejection is cheap. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with rate [rate] (mean 1/rate) by inversion. [rate > 0]. *)

val exponential_fill : Rng.t -> rate:float -> floatarray -> n:int -> unit
(** Fill [buf.(0) .. buf.(n-1)] with draws bit-identical to [n]
    successive {!exponential} calls on the same generator — the batched
    prefill behind the fused scenario kernels.  The generator advances
    exactly as the scalar loop would, so on a split-off stream it is safe
    to fill more draws than a consumer ends up using.  Raises
    [Invalid_argument] unless [rate > 0] and [1 <= n <= length buf]
    (zero-length buffers are rejected). *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto type-I: support [scale, inf), P(X > x) = (scale/x)^shape.
    [shape > 0], [scale > 0].  Heavy-tailed on/off periods. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson counts.  Knuth multiplication for small means, normal
    approximation with continuity correction for [mean > 60]. [mean >= 0]. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before first success, [0 < p <= 1]. *)

val bernoulli : Rng.t -> p:float -> bool
(** True with probability [p], [0 <= p <= 1]. *)

val categorical : Rng.t -> weights:float array -> int
(** Index drawn proportionally to non-negative [weights] (need not sum
    to 1; at least one must be positive). *)

val shuffle : Rng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
