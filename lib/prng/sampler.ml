let uniform rng ~lo ~hi = Rng.float_range rng ~lo ~hi

(* Marsaglia polar method.  We deliberately do not cache the second variate:
   the cache would make output order depend on call history, which breaks
   reproducibility when generators are split mid-stream. *)
let rec standard_normal rng =
  let u = Rng.float_range rng ~lo:(-1.0) ~hi:1.0 in
  let v = Rng.float_range rng ~lo:(-1.0) ~hi:1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then standard_normal rng
  else u *. sqrt (-2.0 *. log s /. s)

let normal rng ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Sampler.normal: sigma < 0";
  if sigma = 0.0 then mu else mu +. (sigma *. standard_normal rng)

(* For mu/sigma >= ~1e-2 plain rejection terminates fast; the fuse guards
   against pathological parameterizations.  Top-level (not an inner [let
   rec] closing over the locals) so the VIT timer draw stays on the
   allocation-free A001 path of the fused scenario kernels. *)
let rec truncated_draw rng ~mu ~sigma attempts =
  if attempts > 10_000 then mu
  else
    let x = normal rng ~mu ~sigma in
    if x > 0.0 then x else truncated_draw rng ~mu ~sigma (attempts + 1)

let truncated_normal_pos rng ~mu ~sigma =
  if mu <= 0.0 then invalid_arg "Sampler.truncated_normal_pos: mu <= 0";
  if sigma < 0.0 then invalid_arg "Sampler.truncated_normal_pos: sigma < 0";
  if sigma = 0.0 then mu else truncated_draw rng ~mu ~sigma 0

let exponential rng ~rate =
  (* [not (rate > 0)] rather than [rate <= 0]: NaN must not slip through. *)
  if not (rate > 0.0) then invalid_arg "Sampler.exponential: rate <= 0";
  -.log (Rng.float_pos rng) /. rate

let exponential_fill rng ~rate buf ~n =
  if not (rate > 0.0) then invalid_arg "Sampler.exponential_fill: rate <= 0";
  if Float.Array.length buf = 0 then
    invalid_arg "Sampler.exponential_fill: zero-length buffer";
  if n < 1 || n > Float.Array.length buf then
    invalid_arg "Sampler.exponential_fill: n out of [1, length buf]";
  (* Same expression as [exponential], minus the per-draw validation: the
     filled buffer is bit-identical to n scalar calls on the same rng. *)
  for i = 0 to n - 1 do
    Float.Array.unsafe_set buf i (-.log (Rng.float_pos rng) /. rate)
  done

let pareto rng ~shape ~scale =
  if shape <= 0.0 then invalid_arg "Sampler.pareto: shape <= 0";
  if scale <= 0.0 then invalid_arg "Sampler.pareto: scale <= 0";
  scale /. (Rng.float_pos rng ** (1.0 /. shape))

let poisson rng ~mean =
  if mean < 0.0 then invalid_arg "Sampler.poisson: mean < 0";
  if mean = 0.0 then 0
  else if mean > 60.0 then
    (* Normal approximation; adequate for the cross-traffic batch sizes
       used in the scenarios and avoids O(mean) work. *)
    let x = normal rng ~mu:mean ~sigma:(sqrt mean) in
    Stdlib.max 0 (int_of_float (Float.round x))
  else
    let limit = exp (-.mean) in
    let rec count k prod =
      let prod = prod *. Rng.float rng in
      if prod <= limit then k else count (k + 1) prod
    in
    count 0 1.0

let geometric rng ~p =
  (* NaN slips through both range comparisons (every NaN compare is
     false), and the p = 1.0 boundary must short-circuit before the log
     path — log (1.0 -. 1.0) = -inf would otherwise poison the divide. *)
  if Float.is_nan p || p <= 0.0 || p > 1.0 then
    invalid_arg "Sampler.geometric: p out of (0,1]";
  if p = 1.0 then 0
  else
    let u = Rng.float_pos rng in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let bernoulli rng ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Sampler.bernoulli: p out of [0,1]";
  Rng.float rng < p

let categorical rng ~weights =
  let total = Array.fold_left (fun acc w ->
      if w < 0.0 then invalid_arg "Sampler.categorical: negative weight";
      acc +. w) 0.0 weights
  in
  if total <= 0.0 then invalid_arg "Sampler.categorical: no positive weight";
  let x = Rng.float rng *. total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let shuffle rng arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = Rng.int rng ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
