(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256++ seeded through SplitMix64, which gives
    high-quality 64-bit streams from any integer seed.  All experiments in
    this repository draw exclusively from this module so that every figure
    is reproducible from a seed printed in its header.

    Generators are mutable; use {!split} to derive statistically independent
    child generators for parallel or per-component streams (e.g. one stream
    per traffic source) without sharing state. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent clone with identical current state. *)

val split : t -> t
(** [split t] advances [t] and returns a child generator whose stream is
    statistically independent of the parent's subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1) with 53-bit resolution. *)

val float_pos : t -> float
(** Uniform float in (0, 1): never returns 0, safe for [log]. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). Requires [lo <= hi]. *)

val int : t -> bound:int -> int
(** Uniform integer in [0, bound). Requires [bound > 0]. Unbiased. *)

val bool : t -> bool
(** Fair coin. *)

val mix_seed : int -> int -> int
(** [mix_seed root index] derives a per-task seed from a root seed and a
    task index through two SplitMix64 finalizer steps.  Pure and
    order-independent: the seed for task [i] does not depend on when (or
    whether) any other task's seed is derived, which is what makes
    parallel fan-out bit-reproducible.  Result is a non-negative 62-bit
    int suitable for {!create}. *)

val seed_of_string : string -> int
(** Stable non-cryptographic hash of a label into a seed, used to derive
    per-component seeds from experiment names. *)
