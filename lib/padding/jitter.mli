(** Gateway disturbance models (the paper's δ_gw).

    The paper traces δ_gw to two OS-level effects on the TimeSys Linux
    gateway (§4.1.2): (1) random context-switch latency before the timer
    interrupt routine runs, and (2) the timer interrupt being blocked by
    NIC interrupts raised by incoming payload packets.  Both make the
    *actual* send instant lag the scheduled fire time by a small random
    amount whose variance grows with the payload rate — the information
    leak the whole paper is about.

    Two models are provided:

    - {!mechanistic}: reproduces the causal chain.  Every send pays a base
      context-switch latency; sends that transmit a *payload* packet pay an
      extra dequeue-path cost; payload arrivals landing within the
      interrupt window before the fire each add an exponential blocking
      delay.  Nothing here is told the payload rate — the rate dependence
      emerges from the packet process itself.

    - {!parametric}: directly N(mu, sigma²)-distributed latency with a
      caller-chosen sigma, clipped at 0.  Used to validate the closed-form
      theory under its exact assumptions, and for ablations.

    The model is consulted once per timer fire. *)

type t

type context = {
  fire_time : float;            (** scheduled timer fire instant *)
  sends_payload : bool;         (** this fire transmits payload, not dummy *)
  arrivals_in_window : int;     (** payload arrivals within the interrupt
                                    window before the fire *)
}

val latency : t -> Prng.Rng.t -> context -> float
(** Random send latency (>= 0) for one timer fire. *)

val latency_at :
  t -> Prng.Rng.t -> sends_payload:bool -> arrivals_in_window:int -> float
(** Same draw sequence and arithmetic as {!latency}, taking the two
    context fields the models actually consult as plain arguments — the
    allocation-free entry point used by the fused gateway kernel
    ({!latency} is a thin wrapper over this). *)

val none : t
(** Zero latency — an ideal gateway (perfect secrecy baseline). *)

val parametric : mu:float -> sigma:float -> t
(** Normal latency clipped at 0; [mu >= 0], [sigma >= 0]. *)

val mechanistic :
  ?context_switch_mu:float ->
  ?context_switch_sigma:float ->
  ?payload_extra_mu:float ->
  ?payload_extra_sigma:float ->
  ?irq_delay_mean:float ->
  unit ->
  t
(** Defaults are the repository's calibration (seconds): context switch
    3e-6 ± 1.0e-6, payload path extra 4e-6 ± 1.2e-6, IRQ blocking mean
    2e-6 per arrival in window.  See {!Calibration} notes in
    [lib/scenarios] for how these map to the paper's Fig. 4(a) spread. *)

val irq_window : float
(** Width of the pre-fire window in which a payload arrival's NIC interrupt
    blocks the timer interrupt (50 µs). *)
