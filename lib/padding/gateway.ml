type t = {
  sim : Desim.Sim.t;
  rng : Prng.Rng.t;
  timer : Timer.law;
  jitter : Jitter.t;
  packet_size : int;
  queue_limit : int option;
  dest : Netsim.Link.port;
  queue : Netsim.Packet.t Queue.t;
  recent_arrivals : float Queue.t;
  mutable last_emit : float;
  mutable payload_sent : int;
  mutable dummy_sent : int;
  mutable payload_dropped : int;
  mutable fires : int;
  mutable timer_handle : Desim.Sim.handle option;
}

let m_fires = Obs.Metrics.counter "padding.gateway.fires"
let m_payload_sent = Obs.Metrics.counter "padding.gateway.payload_sent"
let m_dummy_sent = Obs.Metrics.counter "padding.gateway.dummy_sent"
let m_payload_dropped = Obs.Metrics.counter "padding.gateway.payload_dropped"
let h_occupancy = Obs.Metrics.histogram "padding.gateway.queue_occupancy"

let on_fire t () =
  let now = Desim.Sim.now t.sim in
  t.fires <- t.fires + 1;
  Obs.Metrics.incr m_fires;
  Obs.Metrics.observe h_occupancy (float_of_int (Queue.length t.queue));
  (* Count payload NIC interrupts landing in the blocking window before
     this fire; prune older entries (they can no longer block anything). *)
  let window_start = now -. Jitter.irq_window in
  while
    (not (Queue.is_empty t.recent_arrivals))
    && Queue.peek t.recent_arrivals < window_start
  do
    ignore (Queue.pop t.recent_arrivals : float)
  done;
  let arrivals_in_window = Queue.length t.recent_arrivals in
  let sends_payload = not (Queue.is_empty t.queue) in
  let ctx = { Jitter.fire_time = now; sends_payload; arrivals_in_window } in
  let latency = Jitter.latency t.jitter t.rng ctx in
  (* The interrupt routine runs after [latency]; emissions never reorder
     because the timer period is orders of magnitude above the latency, but
     we enforce monotonicity anyway so a pathological parameterization
     cannot produce negative PIATs. *)
  let emit_time = Float.max (now +. latency) (t.last_emit +. 1e-12) in
  t.last_emit <- emit_time;
  let pkt =
    if sends_payload then begin
      t.payload_sent <- t.payload_sent + 1;
      Obs.Metrics.incr m_payload_sent;
      Queue.pop t.queue
    end
    else begin
      t.dummy_sent <- t.dummy_sent + 1;
      Obs.Metrics.incr m_dummy_sent;
      Netsim.Packet.make ~kind:Netsim.Packet.Dummy ~size_bytes:t.packet_size
        ~created:now
    end
  in
  if Obs.Trace.enabled () then begin
    Obs.Trace.event ~name:"timer.fire" ~t:now
      [ ("q", Obs.Trace.I (Queue.length t.queue)) ];
    Obs.Trace.event ~name:"packet.sent" ~t:emit_time
      [
        ("kind", Obs.Trace.S (Netsim.Packet.kind_to_string pkt.Netsim.Packet.kind));
        ("size", Obs.Trace.I pkt.Netsim.Packet.size_bytes);
      ]
  end;
  ignore (Desim.Sim.at t.sim ~time:emit_time (fun () -> t.dest pkt) : Desim.Sim.handle)

let create sim ~rng ~timer ~jitter ?(packet_size = 500) ?queue_limit ?interval
    ~dest () =
  Timer.validate timer;
  if packet_size <= 0 then invalid_arg "Gateway.create: packet_size <= 0";
  (match queue_limit with
  | Some l when l < 1 -> invalid_arg "Gateway.create: queue_limit < 1"
  | _ -> ());
  let t =
    {
      sim;
      rng;
      timer;
      jitter;
      packet_size;
      queue_limit;
      dest;
      queue = Queue.create ();
      recent_arrivals = Queue.create ();
      last_emit = Desim.Sim.now sim;
      payload_sent = 0;
      dummy_sent = 0;
      payload_dropped = 0;
      fires = 0;
      timer_handle = None;
    }
  in
  let interval =
    match interval with
    | Some f -> f
    | None -> fun () -> Timer.draw timer rng
  in
  let handle = Desim.Sim.every sim ~interval (on_fire t) in
  t.timer_handle <- Some handle;
  t

let input t pkt =
  if pkt.Netsim.Packet.kind <> Netsim.Packet.Payload then
    invalid_arg "Gateway.input: only payload packets enter the sender gateway";
  let over =
    match t.queue_limit with
    | Some l -> Queue.length t.queue >= l
    | None -> false
  in
  (* The NIC interrupt fires for every arriving packet, even one the queue
     then drops — record it before the capacity check. *)
  Queue.push (Desim.Sim.now t.sim) t.recent_arrivals;
  if over then begin
    t.payload_dropped <- t.payload_dropped + 1;
    Obs.Metrics.incr m_payload_dropped;
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"packet.dropped" ~t:(Desim.Sim.now t.sim)
        [ ("cause", Obs.Trace.S "gw_queue"); ("kind", Obs.Trace.S "payload") ]
  end
  else Queue.push pkt t.queue

let stop t =
  match t.timer_handle with
  | Some h -> Desim.Sim.cancel h
  | None -> ()

let payload_sent t = t.payload_sent
let dummy_sent t = t.dummy_sent
let payload_dropped t = t.payload_dropped
let queue_length t = Queue.length t.queue
let fires t = t.fires

let overhead t =
  let total = t.payload_sent + t.dummy_sent in
  if total = 0 then 0.0 else float_of_int t.dummy_sent /. float_of_int total
