(* Per-instance reusable state, exposed so sweep harnesses can hand the
   same (already grown) buffers to gateway after gateway. *)
module Buffers = struct
  type t = {
    queue : Netsim.Packet.t Netsim.Ring.t;
    arrivals : Netsim.Fring.t;
    pending : Netsim.Packet.t Netsim.Ring.t;
  }

  let create () =
    {
      queue = Netsim.Ring.create ();
      arrivals = Netsim.Fring.create ();
      pending = Netsim.Ring.create ();
    }

  let clear b =
    Netsim.Ring.clear b.queue;
    Netsim.Fring.clear b.arrivals;
    Netsim.Ring.clear b.pending
end

type t = {
  sim : Desim.Sim.t;
  rng : Prng.Rng.t;
  timer : Timer.law;
  jitter : Jitter.t;
  packet_size : int;
  queue_limit : int option;
  dest : Netsim.Link.port;
  queue : Netsim.Packet.t Netsim.Ring.t;
  recent_arrivals : Netsim.Fring.t;
  (* Emitted packets waiting out their interrupt latency.  Emission times
     are strictly monotone (enforced below), so one FIFO ring plus one
     reusable event record replaces a fresh closure+event per packet. *)
  pending : Netsim.Packet.t Netsim.Ring.t;
  mutable emit_ev : Desim.Sim.handle option;
  (* Dummies are indistinguishable on the wire and nothing downstream of
     the sender may branch on their identity, so one cached packet serves
     every dummy fire. *)
  mutable dummy : Netsim.Packet.t option;
  mutable last_emit : float;
  mutable payload_sent : int;
  mutable dummy_sent : int;
  mutable payload_dropped : int;
  mutable fires : int;
  mutable timer_handle : Desim.Sim.handle option;
}

let m_fires = Obs.Metrics.counter "padding.gateway.fires"
let m_payload_sent = Obs.Metrics.counter "padding.gateway.payload_sent"
let m_dummy_sent = Obs.Metrics.counter "padding.gateway.dummy_sent"
let m_payload_dropped = Obs.Metrics.counter "padding.gateway.payload_dropped"
let h_occupancy = Obs.Metrics.histogram "padding.gateway.queue_occupancy"

let dummy_packet t now =
  match t.dummy with
  | Some p -> p
  | None ->
      let p =
        Netsim.Packet.make ~kind:Netsim.Packet.Dummy ~size_bytes:t.packet_size
          ~created:now
      in
      t.dummy <- Some p;
      p

let emit_run t () = t.dest (Netsim.Ring.pop t.pending)

let on_fire t () =
  let now = Desim.Sim.now t.sim in
  t.fires <- t.fires + 1;
  Obs.Metrics.incr m_fires;
  Obs.Metrics.observe h_occupancy (float_of_int (Netsim.Ring.length t.queue));
  (* Count payload NIC interrupts landing in the blocking window before
     this fire; prune older entries (they can no longer block anything). *)
  let window_start = now -. Jitter.irq_window in
  while
    (not (Netsim.Fring.is_empty t.recent_arrivals))
    && Netsim.Fring.peek t.recent_arrivals < window_start
  do
    ignore (Netsim.Fring.pop t.recent_arrivals : float)
  done;
  let arrivals_in_window = Netsim.Fring.length t.recent_arrivals in
  let sends_payload = not (Netsim.Ring.is_empty t.queue) in
  let ctx = { Jitter.fire_time = now; sends_payload; arrivals_in_window } in
  let latency = Jitter.latency t.jitter t.rng ctx in
  (* The interrupt routine runs after [latency]; emissions never reorder
     because the timer period is orders of magnitude above the latency, but
     we enforce monotonicity anyway so a pathological parameterization
     cannot produce negative PIATs. *)
  let emit_time = Float.max (now +. latency) (t.last_emit +. 1e-12) in
  t.last_emit <- emit_time;
  let pkt =
    if sends_payload then begin
      t.payload_sent <- t.payload_sent + 1;
      Obs.Metrics.incr m_payload_sent;
      Netsim.Ring.pop t.queue
    end
    else begin
      t.dummy_sent <- t.dummy_sent + 1;
      Obs.Metrics.incr m_dummy_sent;
      dummy_packet t now
    end
  in
  if Obs.Trace.enabled () then begin
    Obs.Trace.event ~name:"timer.fire" ~t:now
      [ ("q", Obs.Trace.I (Netsim.Ring.length t.queue)) ];
    Obs.Trace.event ~name:"packet.sent" ~t:emit_time
      [
        ("kind", Obs.Trace.S (Netsim.Packet.kind_to_string pkt.Netsim.Packet.kind));
        ("size", Obs.Trace.I pkt.Netsim.Packet.size_bytes);
      ]
  end;
  (* Strictly increasing emit times keep the multiply-armed event and the
     pending ring in lockstep: pops happen in push order. *)
  Netsim.Ring.push t.pending pkt;
  match t.emit_ev with
  | Some h -> Desim.Sim.rearm t.sim h ~delay:(emit_time -. now)
  | None ->
      t.emit_ev <- Some (Desim.Sim.at t.sim ~time:emit_time (emit_run t))

let create sim ~rng ~timer ~jitter ?(packet_size = 500) ?queue_limit ?interval
    ?buffers ~dest () =
  Timer.validate timer;
  if packet_size <= 0 then invalid_arg "Gateway.create: packet_size <= 0";
  (match queue_limit with
  | Some l when l < 1 -> invalid_arg "Gateway.create: queue_limit < 1"
  | _ -> ());
  let bufs =
    match buffers with
    | Some b ->
        Buffers.clear b;
        b
    | None -> Buffers.create ()
  in
  let t =
    {
      sim;
      rng;
      timer;
      jitter;
      packet_size;
      queue_limit;
      dest;
      queue = bufs.Buffers.queue;
      recent_arrivals = bufs.Buffers.arrivals;
      pending = bufs.Buffers.pending;
      emit_ev = None;
      dummy = None;
      last_emit = Desim.Sim.now sim;
      payload_sent = 0;
      dummy_sent = 0;
      payload_dropped = 0;
      fires = 0;
      timer_handle = None;
    }
  in
  let interval =
    match interval with
    | Some f -> f
    | None -> fun () -> Timer.draw timer rng
  in
  let handle = Desim.Sim.every sim ~interval (on_fire t) in
  t.timer_handle <- Some handle;
  t

let input t pkt =
  if pkt.Netsim.Packet.kind <> Netsim.Packet.Payload then
    invalid_arg "Gateway.input: only payload packets enter the sender gateway";
  let over =
    match t.queue_limit with
    | Some l -> Netsim.Ring.length t.queue >= l
    | None -> false
  in
  (* The NIC interrupt fires for every arriving packet, even one the queue
     then drops — record it before the capacity check. *)
  Netsim.Fring.push t.recent_arrivals (Desim.Sim.now t.sim);
  if over then begin
    t.payload_dropped <- t.payload_dropped + 1;
    Obs.Metrics.incr m_payload_dropped;
    if Obs.Trace.enabled () then
      Obs.Trace.event ~name:"packet.dropped" ~t:(Desim.Sim.now t.sim)
        [ ("cause", Obs.Trace.S "gw_queue"); ("kind", Obs.Trace.S "payload") ]
  end
  else Netsim.Ring.push t.queue pkt

let stop t =
  match t.timer_handle with
  | Some h -> Desim.Sim.cancel h
  | None -> ()

let payload_sent t = t.payload_sent
let dummy_sent t = t.dummy_sent
let payload_dropped t = t.payload_dropped
let queue_length t = Netsim.Ring.length t.queue
let fires t = t.fires

let overhead t =
  let total = t.payload_sent + t.dummy_sent in
  if total = 0 then 0.0 else float_of_int t.dummy_sent /. float_of_int total
