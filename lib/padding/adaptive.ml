type t = {
  sim : Desim.Sim.t;
  rng : Prng.Rng.t;
  min_period : float;
  max_period : float;
  window : float;
  target_queue : float;
  jitter : Jitter.t;
  packet_size : int;
  dest : Netsim.Link.port;
  queue : Netsim.Packet.t Netsim.Ring.t;
  arrivals : Netsim.Fring.t;  (* payload arrival times within the window *)
  pending : Netsim.Packet.t Netsim.Ring.t;
  mutable emit_ev : Desim.Sim.handle option;
  mutable dummy : Netsim.Packet.t option;
  mutable period : float;
  mutable last_emit : float;
  mutable payload_sent : int;
  mutable dummy_sent : int;
  mutable stopped : bool;
  mutable timer_handle : Desim.Sim.handle option;
}

let estimate_rate t =
  let now = Desim.Sim.now t.sim in
  while
    (not (Netsim.Fring.is_empty t.arrivals))
    && Netsim.Fring.peek t.arrivals < now -. t.window
  do
    ignore (Netsim.Fring.pop t.arrivals : float)
  done;
  float_of_int (Netsim.Fring.length t.arrivals) /. t.window

let adapt t =
  (* Aim the send rate slightly above the estimated payload rate so the
     queue stays near target_queue; clamp to the configured band. *)
  let rate = estimate_rate t in
  let backlog = float_of_int (Netsim.Ring.length t.queue) in
  let pressure = 1.0 +. (0.5 *. (backlog -. t.target_queue)) in
  let desired_rate = Float.max 1.0 (rate *. Float.max pressure 0.1) in
  let p = 1.0 /. desired_rate in
  t.period <- Float.min t.max_period (Float.max t.min_period p)

let dummy_packet t now =
  match t.dummy with
  | Some p -> p
  | None ->
      let p =
        Netsim.Packet.make ~kind:Netsim.Packet.Dummy ~size_bytes:t.packet_size
          ~created:now
      in
      t.dummy <- Some p;
      p

let emit_run t () = t.dest (Netsim.Ring.pop t.pending)

let fire t () =
  if not t.stopped then begin
    let now = Desim.Sim.now t.sim in
    let sends_payload = not (Netsim.Ring.is_empty t.queue) in
    let ctx =
      {
        Jitter.fire_time = now;
        sends_payload;
        arrivals_in_window = 0;
      }
    in
    let latency = Jitter.latency t.jitter t.rng ctx in
    let emit_time = Float.max (now +. latency) (t.last_emit +. 1e-12) in
    t.last_emit <- emit_time;
    let pkt =
      if sends_payload then begin
        t.payload_sent <- t.payload_sent + 1;
        Netsim.Ring.pop t.queue
      end
      else begin
        t.dummy_sent <- t.dummy_sent + 1;
        dummy_packet t now
      end
    in
    Netsim.Ring.push t.pending pkt;
    (match t.emit_ev with
    | Some h -> Desim.Sim.rearm t.sim h ~delay:(emit_time -. now)
    | None ->
        t.emit_ev <- Some (Desim.Sim.at t.sim ~time:emit_time (emit_run t)));
    adapt t
  end

let create sim ~rng ?(min_period = 0.010) ?(max_period = 0.040)
    ?(window = 1.0) ?(target_queue = 0.5) ~jitter ?(packet_size = 500)
    ?buffers ~dest () =
  if min_period <= 0.0 || max_period < min_period then
    invalid_arg "Adaptive.create: bad period band";
  if window <= 0.0 then invalid_arg "Adaptive.create: window <= 0";
  let bufs =
    match buffers with
    | Some b ->
        Gateway.Buffers.clear b;
        b
    | None -> Gateway.Buffers.create ()
  in
  let t =
    {
      sim;
      rng;
      min_period;
      max_period;
      window;
      target_queue;
      jitter;
      packet_size;
      dest;
      queue = bufs.Gateway.Buffers.queue;
      arrivals = bufs.Gateway.Buffers.arrivals;
      pending = bufs.Gateway.Buffers.pending;
      emit_ev = None;
      dummy = None;
      period = max_period;
      last_emit = Desim.Sim.now sim;
      payload_sent = 0;
      dummy_sent = 0;
      stopped = false;
      timer_handle = None;
    }
  in
  (* One event record drives the whole timer train; the interval closure
     reads the freshly adapted period each tick. *)
  t.timer_handle <- Some (Desim.Sim.every sim ~interval:(fun () -> t.period) (fire t));
  t

let input t pkt =
  if pkt.Netsim.Packet.kind <> Netsim.Packet.Payload then
    invalid_arg "Adaptive.input: only payload packets";
  Netsim.Ring.push t.queue pkt;
  Netsim.Fring.push t.arrivals (Desim.Sim.now t.sim)

let stop t =
  t.stopped <- true;
  match t.timer_handle with
  | Some h -> Desim.Sim.cancel h
  | None -> ()

let payload_sent t = t.payload_sent
let dummy_sent t = t.dummy_sent
let current_period t = t.period

let overhead t =
  let total = t.payload_sent + t.dummy_sent in
  if total = 0 then 0.0 else float_of_int t.dummy_sent /. float_of_int total
