(** Adaptive traffic masking à la Timmerman (paper §2, ref [23]) — the
    bandwidth-saving alternative the paper argues against.

    The gateway monitors the recent payload rate and stretches the timer
    period toward [max_period] when payload is light, shrinking back to
    [min_period] under load.  This saves dummy bandwidth but lets
    large-scale rate variations through: the padded stream's *mean* PIAT
    now tracks the payload rate, so even the weak sample-mean feature
    detects it.  Provided to quantify that trade-off (see the
    [adaptive_tradeoff] example and the ablation bench). *)

type t

val create :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  ?min_period:float ->
  ?max_period:float ->
  ?window:float ->
  ?target_queue:float ->
  jitter:Jitter.t ->
  ?packet_size:int ->
  ?buffers:Gateway.Buffers.t ->
  dest:Netsim.Link.port ->
  unit ->
  t
(** Periods default to 10 ms / 40 ms; [window] (default 1 s) is the rate
    estimation horizon; [target_queue] (default 0.5) is the backlog the
    controller aims to keep, in packets.  The controller sets the period to
    min(max_period, max(min_period, 1/(estimated rate + margin))) after
    each fire.  [buffers] supplies recycled internal buffers, as for
    {!Gateway.create}. *)

val input : t -> Netsim.Link.port
val stop : t -> unit
val payload_sent : t -> int
val dummy_sent : t -> int
val overhead : t -> float
val current_period : t -> float
