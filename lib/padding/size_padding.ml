(* A cross-run accumulator read only between runs; Atomic keeps the
   count exact when simulations run on Exec.Pool domains. *)
let total_padding = Atomic.make 0

let pad_port ~target ~dest =
  if target <= 0 then invalid_arg "Size_padding.pad_port: target <= 0";
  fun pkt ->
    let size = pkt.Netsim.Packet.size_bytes in
    if size > target then
      invalid_arg "Size_padding: packet exceeds the padding target";
    if size = target then dest pkt
    else begin
      ignore (Atomic.fetch_and_add total_padding (target - size) : int);
      dest
        (Netsim.Packet.make ~kind:pkt.Netsim.Packet.kind ~size_bytes:target
           ~created:pkt.Netsim.Packet.created)
    end

let padded_bytes () = Atomic.get total_padding
let reset_padded_bytes () = Atomic.set total_padding 0
