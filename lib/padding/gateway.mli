(** Sender security gateway (the paper's GW1, §3.2).

    Incoming payload packets from the protected subnet are queued.  A timer
    fires at intervals drawn from a {!Timer.law}; the interrupt routine then
    sends the head-of-queue payload packet if one is waiting, otherwise a
    dummy packet, after a {!Jitter}-distributed processing latency.  Every
    emitted packet has the same constant size, so the wire carries one
    indistinguishable, (nominally) constant-rate stream regardless of the
    payload behind it. *)

type t

module Buffers : sig
  type t = {
    queue : Netsim.Packet.t Netsim.Ring.t;
    arrivals : Netsim.Fring.t;
    pending : Netsim.Packet.t Netsim.Ring.t;
  }
  (** The gateway's growable per-instance state (payload queue, arrival
      window, pending-emission ring).  Sweep harnesses keep one [Buffers.t]
      per worker and pass it to successive gateways so steady-state storage
      is allocated once, not once per run.  {!Adaptive} reuses the same
      triple. *)

  val create : unit -> t

  val clear : t -> unit
  (** Empty all three buffers, keeping their capacity. *)
end

val create :
  Desim.Sim.t ->
  rng:Prng.Rng.t ->
  timer:Timer.law ->
  jitter:Jitter.t ->
  ?packet_size:int ->
  ?queue_limit:int ->
  ?interval:(unit -> float) ->
  ?buffers:Buffers.t ->
  dest:Netsim.Link.port ->
  unit ->
  t
(** [packet_size] defaults to 500 bytes; [queue_limit] bounds the payload
    queue (default unbounded; overflow drops payload packets and counts
    them).  The timer starts at creation.  [interval] overrides the
    interval sequence (default: draws from [timer]); the fault-injection
    library uses it to layer clock drift, missed fires, and coalescing on
    top of an unmodified gateway.  [buffers] supplies recycled internal
    buffers (cleared on create); at most one live gateway may use a given
    [Buffers.t] at a time. *)

val input : t -> Netsim.Link.port
(** Port on which payload traffic from the protected subnet arrives.
    Raises [Invalid_argument] if fed a non-payload packet. *)

val stop : t -> unit
(** Stop the timer permanently. *)

val payload_sent : t -> int
val dummy_sent : t -> int
val payload_dropped : t -> int
val queue_length : t -> int

val overhead : t -> float
(** Fraction of emitted packets that are dummies — the bandwidth price of
    the countermeasure. *)

val fires : t -> int
(** Timer fires so far (= packets emitted). *)
