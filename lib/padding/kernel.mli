(** Fused padding-gateway kernel.

    Executes the {!Gateway} CIT/VIT state machine as a batch loop over
    merged time-ordered trains (pre-generated Poisson payload arrivals,
    timer fires, pending emissions) instead of per-event dispatch.  The
    contract is exact equivalence with the event-loop gateway: same RNG
    draws in the same order, bit-identical emission times, occupancy
    observations and counters.  Scratch state is reusable across runs
    (arena-backed via [Scenarios.Arena]); the steady-state batch loop
    performs no allocation.

    Stream encoding shared with [Netsim.Linkstage]: an emission is a
    (time, tag) float pair where a payload's tag is its creation time
    and a dummy's tag is NaN. *)

exception Tie
(** An exact time tie between a pending payload arrival and a pending
    timer fire — ordered by queue sequence in the event loop, not
    reproducible here.  The orchestrator catches this and falls back to
    the event-loop path for the whole run. *)

type t

val create : unit -> t
(** Allocate reusable scratch storage (rings, stream buffers, trace
    buffer).  One per arena; reconfigured per run. *)

val configure :
  t ->
  rng_payload:Prng.Rng.t ->
  rng_gateway:Prng.Rng.t ->
  timer:Timer.law ->
  jitter:Jitter.t ->
  packet_size:int ->
  payload_rate:float ->
  unit
(** Reset the scratch for a new run starting at simulated time 0.
    Pre-fills the first block of payload inter-arrival draws from
    [rng_payload] (a dedicated split-off stream, so over-drawing is
    unobservable) and draws the first timer interval from
    [rng_gateway] — exactly the draws the event-loop path makes at
    source/gateway creation. *)

val advance : t -> until:float -> unit
(** Process every arrival, fire and emission event with timestamp <=
    [until], in time order, replaying [Gateway.on_fire]'s arithmetic
    exactly.  Emissions of the chunk are appended to {!out_times} /
    {!out_tags} (cleared on entry).  Raises {!Tie} on an
    arrival-vs-fire time tie. *)

val out_times : t -> Netsim.Fvec.t
val out_tags : t -> Netsim.Fvec.t
(** This chunk's emissions, time-ordered.  Valid until the next
    {!advance}. *)

val trace : t -> Netsim.Tracebuf.t
(** Whole-run deferred [timer.fire] / [packet.sent] trace records. *)

val occupancy : t -> Netsim.Fvec.t
(** Whole-run queue-occupancy observations (one per fire, pre-pop), for
    the [padding.gateway.queue_occupancy] histogram flush. *)

val chunk_events : t -> int
(** Events the event loop would have dispatched for the last {!advance}
    chunk (arrivals + fires + emissions). *)

val fires : t -> int
val payload_sent : t -> int
val dummy_sent : t -> int

val generated : t -> int
(** Payload arrival events processed — [Traffic_gen.generated]. *)

val max_pending : t -> int
(** High-water mark of the pending-emission ring (run scope), an input
    to the orchestrator's event-queue-depth surrogate. *)

val overhead : t -> float
(** [Gateway.overhead]: dummy fraction of all sent packets. *)
