type context = {
  fire_time : float;
  sends_payload : bool;
  arrivals_in_window : int;
}

type t =
  | None_
  | Parametric of { mu : float; sigma : float }
  | Mechanistic of {
      context_switch_mu : float;
      context_switch_sigma : float;
      payload_extra_mu : float;
      payload_extra_sigma : float;
      irq_delay_mean : float;
    }

let irq_window = 50e-6

let none = None_

let parametric ~mu ~sigma =
  if mu < 0.0 then invalid_arg "Jitter.parametric: mu < 0";
  if sigma < 0.0 then invalid_arg "Jitter.parametric: sigma < 0";
  Parametric { mu; sigma }

let mechanistic ?(context_switch_mu = 3e-6) ?(context_switch_sigma = 1.0e-6)
    ?(payload_extra_mu = 4e-6) ?(payload_extra_sigma = 1.2e-6)
    ?(irq_delay_mean = 2e-6) () =
  if
    context_switch_mu < 0.0 || context_switch_sigma < 0.0
    || payload_extra_mu < 0.0 || payload_extra_sigma < 0.0
    || irq_delay_mean < 0.0
  then invalid_arg "Jitter.mechanistic: negative parameter";
  Mechanistic
    {
      context_switch_mu;
      context_switch_sigma;
      payload_extra_mu;
      payload_extra_sigma;
      irq_delay_mean;
    }

(* Left-to-right accumulation, same association as the historical [ref]
   loop: ((0 + d1) + d2) + ...  Top-level and tail-recursive so the fused
   gateway kernel reaches an allocation-free draw path. *)
let rec irq_sum rng ~rate k acc =
  if k <= 0 then acc
  else irq_sum rng ~rate (k - 1) (acc +. Prng.Sampler.exponential rng ~rate)

let latency_at t rng ~sends_payload ~arrivals_in_window =
  match t with
  | None_ -> 0.0
  | Parametric { mu; sigma } ->
      Float.max 0.0 (Prng.Sampler.normal rng ~mu ~sigma)
  | Mechanistic m ->
      let base =
        Prng.Sampler.normal rng ~mu:m.context_switch_mu
          ~sigma:m.context_switch_sigma
      in
      let path =
        if sends_payload then
          Prng.Sampler.normal rng ~mu:m.payload_extra_mu
            ~sigma:m.payload_extra_sigma
        else 0.0
      in
      let blocking =
        if m.irq_delay_mean > 0.0 then
          irq_sum rng ~rate:(1.0 /. m.irq_delay_mean) arrivals_in_window 0.0
        else 0.0
      in
      Float.max 0.0 (base +. path +. blocking)

let latency t rng ctx =
  latency_at t rng ~sends_payload:ctx.sends_payload
    ~arrivals_in_window:ctx.arrivals_in_window
