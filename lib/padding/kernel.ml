(* Fused padding-gateway stage: the CIT/VIT gateway of [Gateway]
   executed as a batch loop over three merged trains — pre-generated
   Poisson payload arrivals, the timer-fire train, and the pending
   emission train — instead of per-event dispatch.

   Exactness contract: the stage consumes the same RNG draws in the same
   order and evaluates the same float expressions as [Gateway.on_fire]
   driven by [Sim.every], so every emission time, occupancy observation
   and counter is bit-identical to the event-loop path.  Payload
   arrivals come from a dedicated split-off stream, so pre-filling a
   block of inter-arrival draws cannot perturb any other stream; timer
   and jitter draws are data-dependent (queue state decides whether the
   payload-extra normal is drawn) and are therefore made scalar, in fire
   order, exactly as the event loop makes them.

   An exact time tie between a pending payload arrival and a pending
   timer fire is ordered by queue seq in the event loop, unreproducible
   here — {!Tie} makes the orchestrator fall back.  Emission events need
   no tie handling: an emission at the same instant as a fire was pushed
   before that fire's queue record (emit before fire), and relative
   order against an arrival is unobservable (disjoint state, no trace
   record on either side). *)

exception Tie

type t = {
  regs : floatarray; (* 0 next_arrival, 1 next_fire, 2 last_emit *)
  arr_buf : floatarray; (* pre-generated payload inter-arrival block *)
  queue : Netsim.Fring.t; (* queued payload creation times *)
  window : Netsim.Fring.t; (* arrivals in the IRQ blocking window *)
  pend_t : Netsim.Fring.t; (* pending emissions awaiting their latency *)
  pend_tag : Netsim.Fring.t;
  occ : Netsim.Fvec.t; (* queue-occupancy histogram observations *)
  out_t : Netsim.Fvec.t; (* this chunk's emissions *)
  out_tag : Netsim.Fvec.t;
  trace : Netsim.Tracebuf.t;
  mutable rng_payload : Prng.Rng.t;
  mutable rng_gateway : Prng.Rng.t;
  mutable timer : Timer.law;
  mutable jitter : Jitter.t;
  mutable packet_size : int;
  mutable payload_rate : float;
  mutable arr_idx : int;
  mutable fires : int;
  mutable payload_sent : int;
  mutable dummy_sent : int;
  mutable generated : int; (* payload arrival events = source emissions *)
  mutable max_pend : int;
  mutable events : int; (* events this chunk *)
}

let arrival_block = 4096

let create () =
  let dummy_rng = Prng.Rng.create ~seed:0 in
  {
    regs = Float.Array.make 3 0.0;
    arr_buf = Float.Array.create arrival_block;
    queue = Netsim.Fring.create ~capacity:64 ();
    window = Netsim.Fring.create ~capacity:64 ();
    pend_t = Netsim.Fring.create ~capacity:64 ();
    pend_tag = Netsim.Fring.create ~capacity:64 ();
    occ = Netsim.Fvec.create ~capacity:1024 ();
    out_t = Netsim.Fvec.create ~capacity:1024 ();
    out_tag = Netsim.Fvec.create ~capacity:1024 ();
    trace = Netsim.Tracebuf.create ();
    rng_payload = dummy_rng;
    rng_gateway = dummy_rng;
    timer = Timer.Constant 0.010;
    jitter = Jitter.none;
    packet_size = 500;
    payload_rate = 1.0;
    arr_idx = 0;
    fires = 0;
    payload_sent = 0;
    dummy_sent = 0;
    generated = 0;
    max_pend = 0;
    events = 0;
  }

let refill t =
  Prng.Sampler.exponential_fill t.rng_payload ~rate:t.payload_rate t.arr_buf
    ~n:arrival_block;
  t.arr_idx <- 0

(* next = prev +. dt: the accumulation Sim.every performs when the
   arrival event re-schedules itself at clock +. interval (). *)
let arrival_next t =
  if t.arr_idx >= arrival_block then refill t;
  Float.Array.set t.regs 0
    (Float.Array.get t.regs 0 +. Float.Array.unsafe_get t.arr_buf t.arr_idx);
  t.arr_idx <- t.arr_idx + 1

let configure t ~rng_payload ~rng_gateway ~timer ~jitter ~packet_size
    ~payload_rate =
  Netsim.Fring.clear t.queue;
  Netsim.Fring.clear t.window;
  Netsim.Fring.clear t.pend_t;
  Netsim.Fring.clear t.pend_tag;
  Netsim.Fvec.clear t.occ;
  Netsim.Fvec.clear t.out_t;
  Netsim.Fvec.clear t.out_tag;
  Netsim.Tracebuf.clear t.trace;
  t.rng_payload <- rng_payload;
  t.rng_gateway <- rng_gateway;
  t.timer <- timer;
  t.jitter <- jitter;
  t.packet_size <- packet_size;
  t.payload_rate <- payload_rate;
  t.fires <- 0;
  t.payload_sent <- 0;
  t.dummy_sent <- 0;
  t.generated <- 0;
  t.max_pend <- 0;
  t.events <- 0;
  (* First payload arrival and first fire are both scheduled at creation
     time (simulated 0.0) as clock +. first draw. *)
  refill t;
  Float.Array.set t.regs 0 0.0;
  arrival_next t;
  Float.Array.set t.regs 1 (0.0 +. Timer.draw timer rng_gateway);
  Float.Array.set t.regs 2 0.0 (* last_emit <- Sim.now at create *)

let note_pend t =
  let pend = Netsim.Fring.length t.pend_t in
  if pend > t.max_pend then t.max_pend <- pend

(* Replays [Gateway.on_fire] at fire time [now]. *)
let on_fire t ~now =
  t.fires <- t.fires + 1;
  Netsim.Fvec.push t.occ (float_of_int (Netsim.Fring.length t.queue));
  let window_start = now -. Jitter.irq_window in
  while
    (not (Netsim.Fring.is_empty t.window))
    && Netsim.Fring.peek t.window < window_start
  do
    ignore (Netsim.Fring.pop t.window : float)
  done;
  let arrivals_in_window = Netsim.Fring.length t.window in
  let sends_payload = not (Netsim.Fring.is_empty t.queue) in
  let latency =
    Jitter.latency_at t.jitter t.rng_gateway ~sends_payload ~arrivals_in_window
  in
  let emit_time =
    Float.max (now +. latency) (Float.Array.get t.regs 2 +. 1e-12)
  in
  Float.Array.set t.regs 2 emit_time;
  let tag =
    if sends_payload then begin
      t.payload_sent <- t.payload_sent + 1;
      Netsim.Fring.pop t.queue
    end
    else begin
      t.dummy_sent <- t.dummy_sent + 1;
      Float.nan
    end
  in
  if Obs.Trace.enabled () then begin
    Netsim.Tracebuf.push t.trace ~key:now ~code:Netsim.Tracebuf.timer_fire
      ~x:(float_of_int (Netsim.Fring.length t.queue))
      ~y:0.0;
    Netsim.Tracebuf.push t.trace ~key:now
      ~code:
        (if sends_payload then Netsim.Tracebuf.sent_payload
         else Netsim.Tracebuf.sent_dummy)
      ~x:(float_of_int t.packet_size) ~y:emit_time
  end;
  Netsim.Fring.push t.pend_t emit_time;
  Netsim.Fring.push t.pend_tag tag;
  note_pend t;
  (* Sim.every: the fire body runs before the next interval is drawn. *)
  Float.Array.set t.regs 1 (now +. Timer.draw t.timer t.rng_gateway)

let advance t ~until =
  t.events <- 0;
  Netsim.Fvec.clear t.out_t;
  Netsim.Fvec.clear t.out_tag;
  let continue = ref true in
  while !continue do
    let ta = Float.Array.get t.regs 0 in
    let tf = Float.Array.get t.regs 1 in
    let te =
      if Netsim.Fring.is_empty t.pend_t then infinity
      else Netsim.Fring.peek t.pend_t
    in
    let m = Float.min (Float.min ta tf) te in
    if m > until then continue := false
    else if ta = m && ta = tf then raise Tie
    else if te = m then begin
      (* emission event: the packet leaves for the first hop *)
      ignore (Netsim.Fring.pop t.pend_t : float);
      let tag = Netsim.Fring.pop t.pend_tag in
      t.events <- t.events + 1;
      Netsim.Fvec.push t.out_t te;
      Netsim.Fvec.push t.out_tag tag
    end
    else if ta < tf then begin
      (* payload arrival event: source emit + Gateway.input *)
      t.events <- t.events + 1;
      t.generated <- t.generated + 1;
      Netsim.Fring.push t.window ta;
      Netsim.Fring.push t.queue ta;
      arrival_next t
    end
    else begin
      t.events <- t.events + 1;
      on_fire t ~now:tf
    end
  done

let out_times t = t.out_t
let out_tags t = t.out_tag
let trace t = t.trace
let occupancy t = t.occ
let chunk_events t = t.events
let fires t = t.fires
let payload_sent t = t.payload_sent
let dummy_sent t = t.dummy_sent
let generated t = t.generated
let max_pending t = t.max_pend

(* Same expression as [Gateway.overhead]. *)
let overhead t =
  let total = t.payload_sent + t.dummy_sent in
  if total = 0 then 0.0 else float_of_int t.dummy_sent /. float_of_int total
