(** Process-wide metrics registry: named counters, high-water gauges and
    log-linear-bucket histograms.

    Recording is sharded per domain: each metric lazily allocates one
    private cell per recording domain (via [Domain.DLS]), so pool workers
    record without taking any lock and without cache-line contention.
    {!snapshot} merges the shards — counter and bucket merges are integer
    sums and gauge merges are maxima, both associative and commutative, so
    the merged totals are independent of how work was sharded: a run at
    [--jobs 1] and [--jobs n] produce byte-identical snapshots for every
    metric whose underlying events are deterministic.

    Metric creation is idempotent: requesting an existing name returns the
    existing metric.  Requesting a name already registered under a
    different metric type raises [Invalid_argument]. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter

val counter_labeled : ?help:string -> string -> label:string * string -> counter
(** [counter_labeled base ~label:(k, v)] is the counter named
    ["base{k=v}"] — a small per-label family sharing one base name (the
    fleet mux keys arrival counts by rate class this way).  Labels are
    part of the metric name, so they sort, snapshot and merge exactly
    like any other counter.  Raises [Invalid_argument] if any component
    is empty or contains ['{'], ['}'] or ['=']. *)

val incr : counter -> unit
val add : counter -> int -> unit

val counter_value : counter -> int
(** Merged total across all shards (test/introspection helper). *)

val gauge : ?help:string -> string -> gauge

val observe_hwm : gauge -> float -> unit
(** Record a level; the gauge keeps the high-water mark (max merge). *)

val histogram : ?help:string -> string -> histogram

val observe : histogram -> float -> unit
(** Record a value into its log-linear bucket.  NaN and values [<= 0] land
    in the dedicated underflow bucket (bucket 0). *)

(** Bucket geometry of the log-linear histograms, exposed for property
    tests: [sub] linear sub-buckets per power of two across a fixed
    exponent range, plus one underflow and one overflow bucket. *)
module Buckets : sig
  val n : int
  (** Total bucket count, including underflow (index 0) and overflow
      (index [n - 1]). *)

  val index_of : float -> int
  (** Bucket index a value lands in; total function. *)

  val bounds : int -> float * float
  (** [(lo, hi)] of a bucket: a finite positive value [v] lands in the
      bucket with [lo <= v < hi].  Bucket 0 ([(neg_infinity, 0.)]) holds
      NaN and non-positive values; bucket [n - 1] is the overflow bucket
      with [hi = infinity]. *)
end

module Snapshot : sig
  type hist = {
    count : int;
    mean : float;  (** bucket-midpoint approximation; 0 when empty *)
    p50 : float;
    p90 : float;
    p99 : float;
    max : float;  (** upper bound of the highest occupied bucket *)
    buckets : (int * int) list;  (** (bucket index, count), occupied only *)
  }

  type value = Counter of int | Gauge of float | Histogram of hist
  type t = (string * value) list  (** sorted by metric name *)

  val find : t -> string -> value option
  val counter_value : t -> string -> int
  (** 0 when absent or not a counter. *)

  val filter_prefix : string -> t -> t
  val drop_prefix : string -> t -> t

  val pp : Format.formatter -> t -> unit
  (** Stable human table, one metric per line, e.g.
      [counter desim.events_processed 123456]. *)
end

val snapshot : unit -> Snapshot.t
(** Merge every shard of every registered metric.  Read-only: calling it
    twice in a row (with no recording in between) returns equal values. *)

val reset : unit -> unit
(** Zero every shard of every registered metric (the metrics stay
    registered).  Must not race with recording domains. *)
