(** Umbrella for the observability layer: metrics registry, spans,
    JSONL event traces, and the minimal JSON codec they share. *)

module Metrics = Metrics
module Span = Span
module Trace = Trace
module Json = Json

val span : string -> (unit -> 'a) -> 'a
(** Alias of {!Span.run}: time [f] under a named span. *)
