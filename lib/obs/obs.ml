(** Umbrella for the observability layer: metrics registry, spans,
    JSONL event traces, and the minimal JSON codec they share. *)

module Metrics = Metrics
module Span = Span
module Trace = Trace
module Json = Json

let span = Span.run
