(** JSONL event-trace sink, schema [ta-trace/1].

    Off by default: until {!enable} is called every {!event} is a cheap
    no-op (one atomic load).  When enabled, events are buffered {e per
    simulation run} ({!with_run} scopes a run to the calling domain) and
    {!flush} writes the file with the run buffers sorted by run label —
    so the bytes on disk are independent of which pool worker ran which
    simulation, and a [--jobs 1] and [--jobs n] run of the same workload
    produce byte-identical traces.

    File layout: the first line is the header [{"schema":"ta-trace/1"}];
    every other line is one event object with at least
    - ["run"] (string): label of the simulation run that emitted it,
    - ["t"] (number, >= 0): simulated seconds,
    - ["ev"] (string): event name from {!known_events},
    plus event-specific scalar fields (e.g. ["kind"], ["cause"], ["q"]).

    Events emitted outside any {!with_run} scope are dropped: tooling
    (micro-benchmarks, calibration probes) does not pollute a trace. *)

type field = S of string | I of int | F of float | B of bool

val enable : path:string -> unit
(** Start buffering events; {!flush} will write them to [path].  Discards
    anything buffered under a previous [enable]. *)

val disable : unit -> unit
(** Stop tracing and discard any unflushed buffers. *)

val enabled : unit -> bool

val with_run : string -> (unit -> 'a) -> 'a
(** Scope a simulation run: events emitted by the calling domain inside
    [f] are buffered under the given label.  The buffer is committed even
    if [f] raises (a partial trace is exactly what a post-mortem needs).
    No-op wrapper when tracing is disabled. *)

val event : name:string -> t:float -> (string * field) list -> unit
(** Emit one event at simulated time [t] into the current run buffer.
    Dropped when tracing is disabled or no run is in scope. *)

val flush : unit -> unit
(** Write header plus all buffered runs (sorted by label, then content)
    to the enabled path, then clear the buffers.  No-op when disabled. *)

val known_events : string list
(** The [ta-trace/1] event vocabulary. *)

type summary = { events : int; runs : int }

val validate_file : string -> (summary, string) result
(** Check that a file is a well-formed [ta-trace/1] trace: header first,
    every line parses as JSON, required fields present and typed, [t]
    finite and non-negative, event names in {!known_events}. *)
