type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let fail pos msg = raise (Bad (Printf.sprintf "offset %d: %s" pos msg))

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st.pos (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "expected %s" word)

let utf8_of_code buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st.pos "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' -> (
        if st.pos >= String.length st.s then fail st.pos "dangling escape";
        let e = st.s.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if st.pos + 4 > String.length st.s then fail st.pos "short \\u";
            let hex = String.sub st.s st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              match int_of_string_opt ("0x" ^ hex) with
              | Some c -> c
              | None -> fail st.pos "bad \\u digits"
            in
            if code >= 0xD800 && code <= 0xDFFF then
              fail st.pos "surrogate \\u escapes unsupported";
            utf8_of_code buf code
        | _ -> fail st.pos "bad escape");
        go ())
    | c when Char.code c < 0x20 -> fail st.pos "raw control char in string"
    | c ->
        Buffer.add_char buf c;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let slice = String.sub st.s start (st.pos - start) in
  match float_of_string_opt slice with
  | Some f when Float.is_finite f -> Num f
  | Some _ | None -> fail start (Printf.sprintf "bad number %S" slice)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected %C" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    st.pos <- st.pos + 1;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      fields := (key, v) :: !fields;
      skip_ws st;
      match peek st with
      | Some ',' ->
          st.pos <- st.pos + 1;
          go ()
      | Some '}' -> st.pos <- st.pos + 1
      | _ -> fail st.pos "expected , or } in object"
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_arr st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    st.pos <- st.pos + 1;
    Arr []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let v = parse_value st in
      items := v :: !items;
      skip_ws st;
      match peek st with
      | Some ',' ->
          st.pos <- st.pos + 1;
          go ()
      | Some ']' -> st.pos <- st.pos + 1
      | _ -> fail st.pos "expected , or ] in array"
    in
    go ();
    Arr (List.rev !items)
  end

let of_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "offset %d: trailing garbage" st.pos)
      else Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | Arr _ -> None

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf
