(* Each metric owns one cell per recording domain, handed out lazily
   through a [Domain.DLS] key whose initializer registers the fresh cell
   in the metric's shard list (the only locked step, once per domain per
   metric).  The record hot path is a DLS lookup plus a plain mutable
   update — no atomics, no sharing.  Merges are integer sums (counters,
   buckets) and maxima (gauges): associative and commutative, so snapshot
   totals cannot depend on how the recording work was sharded. *)

type 'a shards = {
  mutex : Mutex.t;
  mutable cells : 'a list;
  key : 'a Domain.DLS.key;
}

(* The DLS initializer must append to the list the record exposes; tie
   the knot through a mutable holder. *)
let make_shards (fresh : unit -> 'a) : 'a shards =
  let mutex = Mutex.create () in
  let holder = ref None in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = fresh () in
        (match !holder with
        | Some t -> Mutex.protect t.mutex (fun () -> t.cells <- c :: t.cells)
        | None -> ());
        c)
  in
  let t = { mutex; cells = []; key } in
  holder := Some t;
  t

let fold_shards t ~init ~f =
  Mutex.protect t.mutex (fun () -> List.fold_left f init t.cells)

let iter_shards t ~f =
  Mutex.protect t.mutex (fun () -> List.iter f t.cells)

module Buckets = struct
  let sub = 8
  let min_exp = -40
  let max_exp = 40
  let regular = (max_exp - min_exp + 1) * sub
  let n = regular + 2

  let index_of v =
    if Float.is_nan v || v <= 0.0 then 0
    else if v = Float.infinity then n - 1
    else
      let m, e = Float.frexp v in
      if e < min_exp then 1
      else if e > max_exp then n - 1
      else
        let s = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub) in
        let s = if s >= sub then sub - 1 else if s < 0 then 0 else s in
        1 + ((e - min_exp) * sub) + s

  let bounds b =
    if b <= 0 then (neg_infinity, 0.0)
    else if b >= n - 1 then (Float.ldexp 1.0 max_exp, Float.infinity)
    else
      let rb = b - 1 in
      let e = min_exp + (rb / sub) and s = rb mod sub in
      let scale = Float.ldexp 1.0 (e - 1) in
      let lo =
        if b = 1 then 0.0
        else scale *. (1.0 +. (float_of_int s /. float_of_int sub))
      in
      let hi = scale *. (1.0 +. (float_of_int (s + 1) /. float_of_int sub)) in
      (lo, hi)

  let midpoint b =
    if b = 0 then 0.0
    else if b >= n - 1 then fst (bounds b)
    else
      let lo, hi = bounds b in
      0.5 *. (lo +. hi)
end

type counter = { c_name : string; c_shards : int ref shards }
type gauge = { g_name : string; g_shards : float ref shards }
type histogram = { h_name : string; h_shards : int array shards }

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_mutex = Mutex.create ()

let register name make view =
  Mutex.protect reg_mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match view m with
          | Some x -> x
          | None ->
              invalid_arg
                (Printf.sprintf "Obs.Metrics: %S already registered as a %s"
                   name
                   (match m with
                   | C _ -> "counter"
                   | G _ -> "gauge"
                   | H _ -> "histogram")))
      | None ->
          let x, m = make () in
          Hashtbl.replace registry name m;
          x)

let counter ?(help = "") name =
  ignore help;
  register name
    (fun () ->
      let c = { c_name = name; c_shards = make_shards (fun () -> ref 0) } in
      (c, C c))
    (function C c -> Some c | G _ | H _ -> None)

(* Labeled counters compose "base{key=value}" names so a small family of
   per-class series (e.g. the fleet mux's per-rate-class arrival counts)
   shares one base name.  The brace syntax is reserved for this
   constructor, keeping plain and labeled names unambiguous. *)
let counter_labeled ?help name ~label:(k, v) =
  let bad s = String.exists (fun c -> c = '{' || c = '}' || c = '=') s in
  if bad name || bad k || bad v || k = "" || v = "" then
    invalid_arg
      (Printf.sprintf
         "Obs.Metrics.counter_labeled: %S{%S=%S} — names and labels must be \
          non-empty and brace/equals-free"
         name k v);
  counter ?help (Printf.sprintf "%s{%s=%s}" name k v)

let incr c = Stdlib.incr (Domain.DLS.get c.c_shards.key)
let add c n = if n <> 0 then
    let r = Domain.DLS.get c.c_shards.key in
    r := !r + n

let counter_value c =
  fold_shards c.c_shards ~init:0 ~f:(fun acc r -> acc + !r)

let gauge ?(help = "") name =
  ignore help;
  register name
    (fun () ->
      let g =
        { g_name = name; g_shards = make_shards (fun () -> ref neg_infinity) }
      in
      (g, G g))
    (function G g -> Some g | C _ | H _ -> None)

let observe_hwm g v =
  let r = Domain.DLS.get g.g_shards.key in
  if v > !r then r := v

let gauge_value g =
  let m =
    fold_shards g.g_shards ~init:neg_infinity ~f:(fun acc r -> Float.max acc !r)
  in
  if m = neg_infinity then 0.0 else m

let histogram ?(help = "") name =
  ignore help;
  register name
    (fun () ->
      let h =
        { h_name = name; h_shards = make_shards (fun () -> Array.make Buckets.n 0) }
      in
      (h, H h))
    (function H h -> Some h | C _ | G _ -> None)

let observe h v =
  let a = Domain.DLS.get h.h_shards.key in
  let i = Buckets.index_of v in
  a.(i) <- a.(i) + 1

module Snapshot = struct
  type hist = {
    count : int;
    mean : float;
    p50 : float;
    p90 : float;
    p99 : float;
    max : float;
    buckets : (int * int) list;
  }

  type value = Counter of int | Gauge of float | Histogram of hist
  type t = (string * value) list

  let find t name = List.assoc_opt name t

  let counter_value t name =
    match find t name with Some (Counter n) -> n | _ -> 0

  let filter_prefix p t =
    List.filter (fun (name, _) -> String.starts_with ~prefix:p name) t

  let drop_prefix p t =
    List.filter (fun (name, _) -> not (String.starts_with ~prefix:p name)) t

  let quantile merged ~count q =
    if count = 0 then 0.0
    else begin
      let target =
        Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int count)))
      in
      let cum = ref 0 and found = ref 0.0 and seen = ref false in
      Array.iteri
        (fun i c ->
          if c > 0 && not !seen then begin
            cum := !cum + c;
            if !cum >= target then begin
              seen := true;
              found := snd (Buckets.bounds i)
            end
          end)
        merged;
      !found
    end

  let pp_value ppf = function
    | Counter n -> Format.fprintf ppf "%d" n
    | Gauge v -> Format.fprintf ppf "%g" v
    | Histogram h ->
        Format.fprintf ppf "n=%d mean=%g p50=%g p90=%g p99=%g max=%g" h.count
          h.mean h.p50 h.p90 h.p99 h.max

  let pp ppf t =
    List.iter
      (fun (name, v) ->
        let kind =
          match v with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        Format.fprintf ppf "%-9s %-44s %a@." kind name pp_value v)
      t
end

let hist_snapshot h : Snapshot.hist =
  let merged = Array.make Buckets.n 0 in
  iter_shards h.h_shards ~f:(fun a ->
      Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) a);
  let count = Array.fold_left ( + ) 0 merged in
  let mean =
    if count = 0 then 0.0
    else begin
      (* Fixed iteration order: the float accumulation is deterministic
         whenever the merged integer counts are. *)
      let acc = ref 0.0 in
      Array.iteri
        (fun i c ->
          if c > 0 then
            acc := !acc +. (float_of_int c *. Buckets.midpoint i))
        merged;
      !acc /. float_of_int count
    end
  in
  let max =
    let m = ref 0.0 in
    Array.iteri (fun i c -> if c > 0 then m := snd (Buckets.bounds i)) merged;
    !m
  in
  let buckets = ref [] in
  for i = Buckets.n - 1 downto 0 do
    if merged.(i) > 0 then buckets := (i, merged.(i)) :: !buckets
  done;
  {
    count;
    mean;
    p50 = Snapshot.quantile merged ~count 0.50;
    p90 = Snapshot.quantile merged ~count 0.90;
    p99 = Snapshot.quantile merged ~count 0.99;
    max;
    buckets = !buckets;
  }

let name_of = function C c -> c.c_name | G g -> g.g_name | H h -> h.h_name

let metrics () =
  Mutex.protect reg_mutex (fun () ->
      Hashtbl.fold (fun _ m acc -> m :: acc) registry [])

let snapshot () : Snapshot.t =
  metrics ()
  |> List.map (fun m ->
         let v =
           match m with
           | C c -> Snapshot.Counter (counter_value c)
           | G g -> Snapshot.Gauge (gauge_value g)
           | H h -> Snapshot.Histogram (hist_snapshot h)
         in
         (name_of m, v))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  List.iter
    (function
      | C c -> iter_shards c.c_shards ~f:(fun r -> r := 0)
      | G g -> iter_shards g.g_shards ~f:(fun r -> r := neg_infinity)
      | H h -> iter_shards h.h_shards ~f:(fun a -> Array.fill a 0 Buckets.n 0))
    (metrics ())
