type field = S of string | I of int | F of float | B of bool

let schema_line = {|{"schema":"ta-trace/1"}|}

let on = Atomic.make false
let mutex = Mutex.create ()
let path = ref None

(* Completed run buffers: (label, jsonl chunk).  Flush sorts these, so
   the on-disk order is a function of the workload, not the scheduler. *)
let pending : (string * string) list ref = ref []

(* Current run of the calling domain: simulations are single-threaded, so
   a domain-local slot is all the scoping we need. *)
let current : (string * Buffer.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let enable ~path:p =
  Mutex.protect mutex (fun () ->
      path := Some p;
      pending := []);
  Atomic.set on true

let disable () =
  Atomic.set on false;
  Mutex.protect mutex (fun () ->
      path := None;
      pending := [])

let enabled () = Atomic.get on

let with_run label f =
  if not (Atomic.get on) then f ()
  else begin
    let slot = Domain.DLS.get current in
    let saved = !slot in
    let buf = Buffer.create 4096 in
    slot := Some (label, buf);
    Fun.protect
      ~finally:(fun () ->
        slot := saved;
        if Atomic.get on then
          Mutex.protect mutex (fun () ->
              pending := (label, Buffer.contents buf) :: !pending))
      f
  end

let add_field buf (key, v) =
  Buffer.add_string buf ",\"";
  Buffer.add_string buf (Json.escape key);
  Buffer.add_string buf "\":";
  match v with
  | S s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Json.escape s);
      Buffer.add_char buf '"'
  | I i -> Buffer.add_string buf (string_of_int i)
  | F f ->
      Buffer.add_string buf
        (if Float.is_finite f then Printf.sprintf "%.12g" f else "null")
  | B b -> Buffer.add_string buf (if b then "true" else "false")

let event ~name ~t fields =
  if Atomic.get on then
    match !(Domain.DLS.get current) with
    | None -> ()
    | Some (label, buf) ->
        Buffer.add_string buf "{\"run\":\"";
        Buffer.add_string buf (Json.escape label);
        Buffer.add_string buf "\",\"t\":";
        Buffer.add_string buf (Printf.sprintf "%.12g" t);
        Buffer.add_string buf ",\"ev\":\"";
        Buffer.add_string buf (Json.escape name);
        Buffer.add_char buf '"';
        List.iter (add_field buf) fields;
        Buffer.add_string buf "}\n"

let flush () =
  if Atomic.get on then
    Mutex.protect mutex (fun () ->
        match !path with
        | None -> ()
        | Some p ->
            let runs =
              List.sort
                (fun (l1, c1) (l2, c2) ->
                  match String.compare l1 l2 with
                  | 0 -> String.compare c1 c2
                  | d -> d)
                !pending
            in
            pending := [];
            let oc = open_out p in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc schema_line;
                output_char oc '\n';
                List.iter (fun (_, chunk) -> output_string oc chunk) runs))

let known_events =
  [
    "tap.observe";
    "packet.sent";
    "packet.dropped";
    "packet.dup";
    "packet.reordered";
    "timer.fire";
    "timer.miss";
    "timer.catchup";
    "outage.start";
    "outage.end";
    "gateway.crash";
    "gateway.restart";
  ]

type summary = { events : int; runs : int }

let validate_line ~lineno line =
  match Json.of_string line with
  | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
  | Ok json -> (
      match
        (Json.member "run" json, Json.member "t" json, Json.member "ev" json)
      with
      | Some (Json.Str run), Some (Json.Num t), Some (Json.Str ev) ->
          if run = "" then Error (Printf.sprintf "line %d: empty run" lineno)
          else if not (Float.is_finite t) || t < 0.0 then
            Error (Printf.sprintf "line %d: bad time %g" lineno t)
          else if not (List.mem ev known_events) then
            Error (Printf.sprintf "line %d: unknown event %S" lineno ev)
          else Ok run
      | _ ->
          Error
            (Printf.sprintf
               "line %d: missing or mistyped run/t/ev field" lineno))

let validate_file p =
  match open_in p with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match In_channel.input_line ic with
          | None -> Error "empty file (missing schema header)"
          | Some header -> (
              match Json.of_string header with
              | Ok json when Json.member "schema" json = Some (Json.Str "ta-trace/1")
                ->
                  let events = ref 0 in
                  let labels = Hashtbl.create 8 in
                  let rec go lineno =
                    match In_channel.input_line ic with
                    | None -> Ok { events = !events; runs = Hashtbl.length labels }
                    | Some "" -> Error (Printf.sprintf "line %d: blank line" lineno)
                    | Some line -> (
                        match validate_line ~lineno line with
                        | Error _ as e -> e
                        | Ok run ->
                            incr events;
                            Hashtbl.replace labels run ();
                            go (lineno + 1))
                  in
                  go 2
              | Ok _ -> Error "line 1: header is not ta-trace/1"
              | Error msg -> Error (Printf.sprintf "line 1: %s" msg)))
