(** Lightweight wall-clock spans feeding a per-stage profile.

    [run "fig4b.score" f] times [f] and accumulates the elapsed seconds
    under the span name.  Spans nest: each domain keeps its own active
    stack, a child's elapsed time is charged to the parent's child-time,
    and the parent's {e self} time is its total minus its children — so
    self-times are never negative and a stage's exclusive cost can be read
    directly.  Timing values are wall-clock and therefore vary run to run;
    they are surfaced by [ta_lab --metrics] and [bench --json] but are
    never part of any published table. *)

val run : string -> (unit -> 'a) -> 'a
(** Time [f] under [name]; exception-safe (the span closes either way). *)

type stat = {
  name : string;
  count : int;  (** completed spans under this name *)
  total_s : float;  (** inclusive wall-clock seconds *)
  self_s : float;  (** exclusive: total minus time spent in child spans *)
}

val snapshot : unit -> stat list
(** Completed-span stats, sorted by name. *)

val reset : unit -> unit
(** Drop all accumulated stats (active spans are unaffected). *)
