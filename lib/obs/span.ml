type frame = { name : string; start : float; mutable child_s : float }

(* Active spans nest within one domain; each domain gets its own stack. *)
let stack_key : frame Stack.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Stack.create ())

type stat = { name : string; count : int; total_s : float; self_s : float }

let table : (string, stat) Hashtbl.t = Hashtbl.create 32
let mutex = Mutex.create ()

let record ~name ~elapsed ~self =
  Mutex.protect mutex (fun () ->
      let prev =
        match Hashtbl.find_opt table name with
        | Some s -> s
        | None -> { name; count = 0; total_s = 0.0; self_s = 0.0 }
      in
      Hashtbl.replace table name
        {
          prev with
          count = prev.count + 1;
          total_s = prev.total_s +. elapsed;
          self_s = prev.self_s +. self;
        })

let run name f =
  let stack = Domain.DLS.get stack_key in
  let fr = { name; start = Unix.gettimeofday (); child_s = 0.0 } in
  Stack.push fr stack;
  Fun.protect
    ~finally:(fun () ->
      ignore (Stack.pop stack : frame);
      (* Clamp: gettimeofday is not strictly monotonic, and a child's
         rounded-up elapsed must never drive the parent's self negative. *)
      let elapsed = Float.max 0.0 (Unix.gettimeofday () -. fr.start) in
      (match Stack.top_opt stack with
      | Some parent -> parent.child_s <- parent.child_s +. elapsed
      | None -> ());
      let self = Float.max 0.0 (elapsed -. fr.child_s) in
      record ~name ~elapsed ~self)
    f

let snapshot () =
  Mutex.protect mutex (fun () ->
      Hashtbl.fold (fun _ s acc -> s :: acc) table [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let reset () = Mutex.protect mutex (fun () -> Hashtbl.reset table)
