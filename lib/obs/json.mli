(** Minimal JSON support for the observability layer: enough to emit
    (escape) and re-parse (validate) the [ta-trace/1] JSONL lines and the
    [ta-bench/2] report without an external dependency.  Not a general
    JSON library: numbers are floats, duplicate object keys keep the first
    occurrence, and astral-plane [\u] escapes are rejected. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** [member key (Obj _)] — [None] on missing key or non-object. *)

val escape : string -> string
(** Escape for inclusion between double quotes in a JSON string. *)
