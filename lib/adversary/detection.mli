(** End-to-end detection-rate estimation: the paper's off-line training +
    run-time classification loop (§3.3), producing the empirical detection
    rate v̂ (eq. 7) for one feature at one sample size. *)

type result = {
  feature : Feature.kind;
  sample_size : int;
  detection_rate : float;
  n_train_per_class : int array;
  n_test_per_class : int array;
  n_correct_per_class : int array;
      (** exact held-out success counts per class — the integers behind
          [detection_rate], carried so confidence intervals never have to
          reconstruct them by rounding [rate × n] (lossy when per-class
          test counts differ) *)
  threshold : float option;  (** binary decision threshold d, when found *)
}

val estimate :
  ?priors:float array ->
  feature:Feature.kind ->
  reference:float ->
  sample_size:int ->
  classes:(string * float array) array ->
  unit ->
  result
(** [estimate ~feature ~reference ~sample_size ~classes ()] where
    [classes.(i) = (name, PIAT trace)].  Each trace is sliced into
    [sample_size]-windows, features extracted, then split into interleaved
    train/test halves; a KDE-Bayes classifier is trained and its
    prior-weighted accuracy on the held-out halves is the detection rate.
    Raises if any class yields fewer than 4 feature values (2 train,
    2 test). *)

val estimate_on_features :
  ?priors:float array ->
  ?backend:[ `Kde | `Gaussian ] ->
  feature:Feature.kind ->
  sample_size:int ->
  named_features:(string * float array) array ->
  unit ->
  result
(** Lower-level entry point taking already-extracted feature values per
    class (used by {!Counting}, {!Spectral}, and ablations that
    pre-process features); performs the interleaved split, training, and
    scoring.  [backend] selects the density model the adversary trains:
    the paper's Gaussian-kernel estimator ([`Kde], default) or a plain
    per-class Gaussian fit ([`Gaussian], no threshold reported). *)

val estimate_features :
  ?priors:float array ->
  features:Feature.kind list ->
  reference:float ->
  sample_size:int ->
  classes:(string * float array) array ->
  unit ->
  result list
(** {!estimate} for several features over the same traces (slicing reuse). *)
