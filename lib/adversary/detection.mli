(** End-to-end detection-rate estimation: the paper's off-line training +
    run-time classification loop (§3.3), producing the empirical detection
    rate v̂ (eq. 7) for one feature at one sample size. *)

type result = {
  feature : Feature.kind;
  sample_size : int;
  detection_rate : float;
  n_train_per_class : int array;
  n_test_per_class : int array;
  n_correct_per_class : int array;
      (** exact held-out success counts per class — the integers behind
          [detection_rate], carried so confidence intervals never have to
          reconstruct them by rounding [rate × n] (lossy when per-class
          test counts differ) *)
  threshold : float option;  (** binary decision threshold d, when found *)
}

val estimate :
  ?priors:float array ->
  feature:Feature.kind ->
  reference:float ->
  sample_size:int ->
  classes:(string * float array) array ->
  unit ->
  result
(** [estimate ~feature ~reference ~sample_size ~classes ()] where
    [classes.(i) = (name, PIAT trace)].  Each trace is sliced into
    [sample_size]-windows, features extracted, then split into interleaved
    train/test halves; a KDE-Bayes classifier is trained and its
    prior-weighted accuracy on the held-out halves is the detection rate.
    Raises if any class yields fewer than 4 feature values (2 train,
    2 test). *)

val estimate_on_features :
  ?priors:float array ->
  ?backend:[ `Kde | `Gaussian ] ->
  feature:Feature.kind ->
  sample_size:int ->
  named_features:(string * float array) array ->
  unit ->
  result
(** Lower-level entry point taking already-extracted feature values per
    class (used by {!Counting}, {!Spectral}, and ablations that
    pre-process features); performs the interleaved split, training, and
    scoring.  [backend] selects the density model the adversary trains:
    the paper's Gaussian-kernel estimator ([`Kde], default) or a plain
    per-class Gaussian fit ([`Gaussian], no threshold reported). *)

val estimate_features :
  ?priors:float array ->
  features:Feature.kind list ->
  reference:float ->
  sample_size:int ->
  classes:(string * float array) array ->
  unit ->
  result list
(** {!estimate} for several features over the same traces.  Windows are
    read through index-based views of each trace ({!Feature.extract_in}),
    so scoring allocates one feature array per class and nothing per
    window. *)

val entropy_bin_widths : Feature.kind list -> float list
(** Distinct entropy bin widths requested by a feature list, sorted —
    what a sliding pass must collect to serve all of them. *)

val estimate_windowed :
  ?priors:float array ->
  ?backend:[ `Kde | `Gaussian ] ->
  features:Feature.kind list ->
  sample_size:int ->
  named_windows:(string * Dataset.windowed) array ->
  unit ->
  result list
(** Score already-extracted window-feature series (the streaming
    collectors' accumulation format, see {!Dataset.sliding_features} and
    {!Dataset.append_windowed}): per feature, the series is split
    alternating into train/test halves and scored exactly as
    {!estimate_on_features}. *)

val estimate_features_sliding :
  ?priors:float array ->
  ?backend:[ `Kde | `Gaussian ] ->
  ?stride:int ->
  features:Feature.kind list ->
  reference:float ->
  sample_size:int ->
  classes:(string * float array) array ->
  unit ->
  result list
(** Sliding-window variant of {!estimate_features}: windows start every
    [stride] PIATs (default [sample_size], i.e. the classic disjoint
    slicing) and features are extracted incrementally by
    {!Stats.Stream.Window} — one long trace yields
    [1 + (len - sample_size) / stride] overlapping sample windows.
    Overlapping windows are correlated, which leaves the detection-rate
    estimate unbiased but makes its nominal confidence interval slightly
    optimistic; see EXPERIMENTS.md. *)
