type kind =
  | Sample_mean
  | Sample_variance
  | Sample_entropy of { bin_width : float }

let name = function
  | Sample_mean -> "mean"
  | Sample_variance -> "variance"
  | Sample_entropy _ -> "entropy"

let min_sample_size = function
  | Sample_mean -> 1
  | Sample_variance -> 2
  | Sample_entropy _ -> 2

let extract_in kind ~reference sample ~pos ~len =
  if len < min_sample_size kind then
    invalid_arg "Feature.extract: sample too small";
  match kind with
  | Sample_mean -> Stats.Descriptive.mean_in sample ~pos ~len
  | Sample_variance -> Stats.Descriptive.variance_in sample ~pos ~len
  | Sample_entropy { bin_width } ->
      Stats.Entropy.of_sample_in ~bin_width ~reference sample ~pos ~len

let extract kind ~reference sample =
  extract_in kind ~reference sample ~pos:0 ~len:(Array.length sample)

let default_entropy_bin_width = 1e-6

let standard_set =
  [
    Sample_mean;
    Sample_variance;
    Sample_entropy { bin_width = default_entropy_bin_width };
  ]
