type cls = { name : string; prior : float; mu : float; sigma : float }

type t = { classes : cls array }

let train ?priors ~classes () =
  let m = Array.length classes in
  if m < 2 then invalid_arg "Parametric.train: need >= 2 classes";
  let priors =
    match priors with
    | None -> Array.make m (1.0 /. float_of_int m)
    | Some p ->
        if Array.length p <> m then
          invalid_arg "Parametric.train: priors length mismatch";
        let total = Array.fold_left ( +. ) 0.0 p in
        if total <= 0.0 || Array.exists (fun x -> x <= 0.0) p then
          invalid_arg "Parametric.train: priors must be positive";
        Array.map (fun x -> x /. total) p
  in
  let classes =
    Array.mapi
      (fun i (name, xs) ->
        if Array.length xs = 0 then
          invalid_arg "Parametric.train: empty training set";
        let mu = Stats.Descriptive.mean xs in
        let sd = if Array.length xs >= 2 then Stats.Descriptive.std xs else 0.0 in
        (* Floor relative to the feature magnitude keeps the density proper
           on degenerate training sets. *)
        let sigma = Float.max sd (1e-9 *. Float.max (Float.abs mu) 1e-12) in
        { name; prior = priors.(i); mu; sigma })
      classes
  in
  { classes }

let num_classes t = Array.length t.classes
let class_name t i = t.classes.(i).name
let class_mu t i = t.classes.(i).mu
let class_sigma t i = t.classes.(i).sigma

let log_score c x =
  log c.prior +. Stats.Special.log_normal_pdf ~mu:c.mu ~sigma:c.sigma x

let classify t x =
  let best = ref 0 in
  let best_score = ref (log_score t.classes.(0) x) in
  for i = 1 to Array.length t.classes - 1 do
    let s = log_score t.classes.(i) x in
    if s > !best_score then begin
      best := i;
      best_score := s
    end
  done;
  !best

let correct_counts t cases =
  let m = num_classes t in
  let correct = Array.make m 0 and total = Array.make m 0 in
  Array.iter
    (fun (label, xs) ->
      if label < 0 || label >= m then invalid_arg "Parametric.accuracy: bad label";
      Array.iter
        (fun x ->
          total.(label) <- total.(label) + 1;
          if classify t x = label then correct.(label) <- correct.(label) + 1)
        xs)
    cases;
  (correct, total)

let weighted_accuracy t ~correct ~total =
  let m = num_classes t in
  if Array.length correct <> m || Array.length total <> m then
    invalid_arg "Parametric.weighted_accuracy: counts length mismatch";
  let acc = ref 0.0 in
  for i = 0 to m - 1 do
    if total.(i) = 0 then invalid_arg "Parametric.accuracy: class without test data";
    acc :=
      !acc
      +. (t.classes.(i).prior *. float_of_int correct.(i) /. float_of_int total.(i))
  done;
  !acc

let accuracy t cases =
  let correct, total = correct_counts t cases in
  weighted_accuracy t ~correct ~total
