type result = {
  feature : Feature.kind;
  sample_size : int;
  detection_rate : float;
  n_train_per_class : int array;
  n_test_per_class : int array;
  n_correct_per_class : int array;
  threshold : float option;
}

let estimate_on_features ?priors ?(backend = `Kde) ~feature ~sample_size
    ~named_features () =
  let split = Array.map (fun (_, fs) -> Dataset.split_alternating fs) named_features in
  Array.iter
    (fun (train, test) ->
      if Array.length train < 2 || Array.length test < 2 then
        invalid_arg "Detection.estimate: fewer than 4 feature values in a class")
    split;
  let classes =
    Array.map2
      (fun (name, _) (train, _) -> (name, train))
      named_features split
  in
  let cases = Array.mapi (fun i (_, test) -> (i, test)) split in
  let detection_rate, n_correct_per_class, threshold =
    match backend with
    | `Kde ->
        let clf = Classifier.train ?priors ~classes () in
        let threshold =
          if Array.length named_features = 2 then
            Classifier.threshold_two_class clf
          else None
        in
        let correct, total = Classifier.correct_counts clf cases in
        (Classifier.weighted_accuracy clf ~correct ~total, correct, threshold)
    | `Gaussian ->
        let clf = Parametric.train ?priors ~classes () in
        let correct, total = Parametric.correct_counts clf cases in
        (Parametric.weighted_accuracy clf ~correct ~total, correct, None)
  in
  {
    feature;
    sample_size;
    detection_rate;
    n_train_per_class = Array.map (fun (train, _) -> Array.length train) split;
    n_test_per_class = Array.map (fun (_, test) -> Array.length test) split;
    n_correct_per_class;
    threshold;
  }

let estimate ?priors ~feature ~reference ~sample_size ~classes () =
  let named_features =
    Array.map
      (fun (name, trace) ->
        (name, Dataset.features_of_trace feature ~reference ~sample_size trace))
      classes
  in
  estimate_on_features ?priors ~feature ~sample_size ~named_features ()

let estimate_features ?priors ~features ~reference ~sample_size ~classes () =
  (* Every feature reads the same windows, as index-based views over the
     trace: the scoring loop allocates one feature array per class and
     nothing per window. *)
  List.map
    (fun feature ->
      let named_features =
        Array.map
          (fun (name, trace) ->
            let n = Array.length trace / sample_size in
            ( name,
              Array.init n (fun i ->
                  Feature.extract_in feature ~reference trace
                    ~pos:(i * sample_size) ~len:sample_size) ))
          classes
      in
      estimate_on_features ?priors ~feature ~sample_size ~named_features ())
    features

let entropy_bin_widths features =
  List.sort_uniq Float.compare
    (List.filter_map
       (function
         | Feature.Sample_entropy { bin_width } -> Some bin_width
         | Feature.Sample_mean | Feature.Sample_variance -> None)
       features)

let estimate_windowed ?priors ?backend ~features ~sample_size
    ~named_windows () =
  List.map
    (fun feature ->
      let named_features =
        Array.map
          (fun (name, w) -> (name, Dataset.feature_values w feature))
          named_windows
      in
      estimate_on_features ?priors ?backend ~feature ~sample_size
        ~named_features ())
    features

let estimate_features_sliding ?priors ?backend ?stride ~features ~reference
    ~sample_size ~classes () =
  let stride = Option.value stride ~default:sample_size in
  let entropy_bin_widths = entropy_bin_widths features in
  let named_windows =
    Array.map
      (fun (name, trace) ->
        ( name,
          Dataset.sliding_features ~reference ~sample_size ~stride
            ~entropy_bin_widths trace ))
      classes
  in
  estimate_windowed ?priors ?backend ~features ~sample_size ~named_windows ()
