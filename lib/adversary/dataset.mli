(** Turning raw PIAT traces into labeled feature datasets. *)

val slice : float array -> sample_size:int -> float array array
(** Non-overlapping consecutive windows of [sample_size] PIATs; the
    trailing remainder is discarded.  [sample_size >= 1]. *)

val features_of_trace :
  Feature.kind -> reference:float -> sample_size:int -> float array -> float array
(** One feature value per {!slice} window, computed through index-based
    views over the trace (no per-window copy).  Raises if the trace
    yields no complete window. *)

type windowed = {
  w_count : int;  (** number of windows *)
  w_means : float array;  (** per-window sample mean *)
  w_variances : float array;  (** per-window sample variance *)
  w_entropies : (float * float array) list;
      (** per-window plug-in entropy, one series per requested bin width *)
}
(** Feature series from one sliding pass: every requested feature of every
    window, extracted incrementally by {!Stats.Stream.Window}. *)

val empty_windowed : entropy_bin_widths:float list -> windowed
(** Zero windows, with the given entropy series declared (so shards can
    fold into it with {!append_windowed}). *)

val append_windowed : windowed -> windowed -> windowed
(** Concatenate two window series (e.g. successive shards of one logical
    collection) in order.  Raises [Invalid_argument] when the entropy
    bin-width sets differ. *)

val sliding_features :
  reference:float ->
  sample_size:int ->
  stride:int ->
  entropy_bin_widths:float list ->
  float array ->
  windowed
(** Slide a [sample_size]-window along the trace by [stride] and extract
    mean, variance and (per bin width) entropy of every full window
    through {!Stats.Stream} — O(stride) incremental work per window, no
    window copies.  Windows start at offsets [0, stride, 2·stride, ...];
    a trace shorter than one window yields [w_count = 0].  With
    [stride = sample_size] the windows are exactly {!slice}'s (values
    equal to the batch extractors up to floating rounding; the
    equivalence is pinned to 1e-9 by the test suite).  Raises on
    [sample_size < 2] or [stride < 1]. *)

val feature_values : windowed -> Feature.kind -> float array
(** Select one feature's series.  Raises [Invalid_argument] for an
    entropy bin width the pass did not collect. *)

val split_alternating : float array -> float array * float array
(** Even-indexed elements and odd-indexed elements — an interleaved
    train/test split that keeps both halves exposed to the same slow
    drifts (time-of-day, queue warm-up) instead of training on the first
    half-hour and testing on the second. *)
