let slice trace ~sample_size =
  if sample_size < 1 then invalid_arg "Dataset.slice: sample_size < 1";
  let n = Array.length trace / sample_size in
  Array.init n (fun i -> Array.sub trace (i * sample_size) sample_size)

let features_of_trace kind ~reference ~sample_size trace =
  if sample_size < 1 then
    invalid_arg "Dataset.features_of_trace: sample_size < 1";
  (* Index-based views over the trace: same windows as {!slice}, no
     per-window copy. *)
  let n = Array.length trace / sample_size in
  if n = 0 then
    invalid_arg "Dataset.features_of_trace: trace shorter than one window";
  Array.init n (fun i ->
      Feature.extract_in kind ~reference trace ~pos:(i * sample_size)
        ~len:sample_size)

type windowed = {
  w_count : int;
  w_means : float array;
  w_variances : float array;
  w_entropies : (float * float array) list;
}

let empty_windowed ~entropy_bin_widths =
  {
    w_count = 0;
    w_means = [||];
    w_variances = [||];
    w_entropies = List.map (fun bw -> (bw, [||])) entropy_bin_widths;
  }

let append_windowed a b =
  if
    List.map fst a.w_entropies <> List.map fst b.w_entropies
  then invalid_arg "Dataset.append_windowed: mismatched entropy bin widths";
  {
    w_count = a.w_count + b.w_count;
    w_means = Array.append a.w_means b.w_means;
    w_variances = Array.append a.w_variances b.w_variances;
    w_entropies =
      List.map2
        (fun (bw, xs) (_, ys) -> (bw, Array.append xs ys))
        a.w_entropies b.w_entropies;
  }

let sliding_features ~reference ~sample_size ~stride ~entropy_bin_widths trace
    =
  if sample_size < 2 then
    invalid_arg "Dataset.sliding_features: sample_size < 2";
  if stride < 1 then invalid_arg "Dataset.sliding_features: stride < 1";
  let len = Array.length trace in
  let count = Stats.Stream.sliding_count ~length:len ~sample_size ~stride in
  let means = Array.make count 0.0 in
  let variances = Array.make count 0.0 in
  let entropies =
    List.map (fun bw -> (bw, Array.make count 0.0)) entropy_bin_widths
  in
  (* One streaming pass per entropy bin width (one total when there is at
     most one width, the common case): the window slides by [stride] and
     every aggregate updates incrementally — no window is ever copied. *)
  (match entropy_bin_widths with
  | [] ->
      let w =
        Stats.Stream.Window.create ~capacity:sample_size ~bin_width:1.0
          ~reference ()
      in
      let next = ref 0 in
      for i = 0 to len - 1 do
        Stats.Stream.Window.push w trace.(i);
        if
          Stats.Stream.Window.is_full w
          && (i + 1 - sample_size) mod stride = 0
          && !next < count
        then begin
          means.(!next) <- Stats.Stream.Window.mean w;
          variances.(!next) <- Stats.Stream.Window.variance w;
          incr next
        end
      done
  | _ ->
      List.iteri
        (fun pass (bw, out) ->
          let w =
            Stats.Stream.Window.create ~capacity:sample_size ~bin_width:bw
              ~reference ()
          in
          let next = ref 0 in
          for i = 0 to len - 1 do
            Stats.Stream.Window.push w trace.(i);
            if
              Stats.Stream.Window.is_full w
              && (i + 1 - sample_size) mod stride = 0
              && !next < count
            then begin
              if pass = 0 then begin
                means.(!next) <- Stats.Stream.Window.mean w;
                variances.(!next) <- Stats.Stream.Window.variance w
              end;
              out.(!next) <- Stats.Stream.Window.entropy w;
              incr next
            end
          done)
        entropies);
  { w_count = count; w_means = means; w_variances = variances;
    w_entropies = entropies }

let feature_values w kind =
  match kind with
  | Feature.Sample_mean -> w.w_means
  | Feature.Sample_variance -> w.w_variances
  | Feature.Sample_entropy { bin_width } -> (
      match List.assoc_opt bin_width w.w_entropies with
      | Some xs -> xs
      | None ->
          invalid_arg
            "Dataset.feature_values: entropy bin width not collected")

let split_alternating xs =
  let n = Array.length xs in
  let even = Array.make ((n + 1) / 2) 0.0 in
  let odd = Array.make (n / 2) 0.0 in
  Array.iteri
    (fun i x -> if i mod 2 = 0 then even.(i / 2) <- x else odd.(i / 2) <- x)
    xs;
  (even, odd)
