(** Parametric (Gaussian maximum-likelihood) Bayes classifier.

    The paper's adversary estimates class-conditional feature PDFs with a
    Gaussian *kernel* estimator because histograms are too coarse (§3.3).
    A cheaper adversary simply fits one Gaussian per class — exactly right
    when the feature is the sample mean (normal) and asymptotically right
    for variance and entropy.  This backend quantifies how much the KDE's
    flexibility actually buys (see the classifier-backend ablation). *)

type t

val train :
  ?priors:float array -> classes:(string * float array) array -> unit -> t
(** Same contract as {!Classifier.train}; each class is summarized by its
    sample mean and standard deviation (floored to stay proper when the
    training feature collapses to a point). *)

val num_classes : t -> int
val class_name : t -> int -> string
val class_mu : t -> int -> float
val class_sigma : t -> int -> float

val classify : t -> float -> int
(** Maximum posterior under the fitted normals (ties to lower index). *)

val accuracy : t -> (int * float array) array -> float
(** Prior-weighted detection rate on labeled test data (paper eq. 7). *)

val correct_counts : t -> (int * float array) array -> int array * int array
(** [(correct, total)] per true class — see {!Classifier.correct_counts}. *)

val weighted_accuracy : t -> correct:int array -> total:int array -> float
(** Eq. (7) rate from pre-computed counts — see
    {!Classifier.weighted_accuracy}. *)
