(** The adversary's feature statistics over a PIAT sample (paper §3.3):
    sample mean, sample variance, and the robust histogram-based sample
    entropy of eq. (25). *)

type kind =
  | Sample_mean
  | Sample_variance
  | Sample_entropy of { bin_width : float }
      (** Bin width must be held constant across an experiment so the
          [ln Δh] offset cancels between classes (paper §4.4). *)

val name : kind -> string
(** "mean" | "variance" | "entropy". *)

val extract : kind -> reference:float -> float array -> float
(** [extract kind ~reference sample] computes the feature of one PIAT
    sample.  [reference] anchors the entropy histogram grid (use the
    nominal timer period τ); it is ignored by mean and variance.
    Raises on samples too small for the feature (mean: n >= 1,
    variance/entropy: n >= 2). *)

val extract_in :
  kind -> reference:float -> float array -> pos:int -> len:int -> float
(** {!extract} over the window [\[pos, pos + len)] of a long trace
    without copying it — bit-identical to [extract] on the equivalent
    subarray.  This is the allocation-free form the window scoring loop
    uses. *)

val min_sample_size : kind -> int

val default_entropy_bin_width : float
(** 1 µs — comfortably below the µs-scale gateway jitter the calibration
    produces, giving the estimator enough resolution to see the variance
    difference while keeping dozens of populated bins at n = 1000. *)

val standard_set : kind list
(** The paper's three features, entropy at the default bin width. *)
