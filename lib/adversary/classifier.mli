(** Bayes classifier over one scalar feature (paper §3.3).

    Off-line training fits a Gaussian KDE per class (per payload rate) to
    the class-conditional feature PDF; run-time classification picks the
    class maximizing prior × density, eq. (2).  The classifier is m-ary —
    the paper's two-rate experiments and the §6 multi-rate extension use
    the same code. *)

type t

val train :
  ?priors:float array -> classes:(string * float array) array -> unit -> t
(** [train ~classes ()] with [classes.(i) = (name, feature values)].
    [priors] default to equal; must be positive and are normalized.
    Raises on fewer than 2 classes, empty training sets, or a priors/
    classes length mismatch. *)

val num_classes : t -> int
val class_name : t -> int -> string
val prior : t -> int -> float
val kde : t -> int -> Stats.Kde.t

val classify : t -> float -> int
(** Index of the maximum-posterior class (ties go to the lower index). *)

val posteriors : t -> float -> float array
(** Normalized posterior P(class | feature); uniform if all densities
    underflow. *)

val accuracy : t -> (int * float array) array -> float
(** [accuracy t cases] with [cases.(i) = (true class index, feature
    values)]: prior-weighted probability of correct classification — the
    paper's detection rate, eq. (7) — computed as
    Σ_i prior(i) · (correct_i / total_i).  Raises if any class has no
    test data. *)

val correct_counts : t -> (int * float array) array -> int array * int array
(** [(correct, total)] per true class on the same labeled test data as
    {!accuracy} — the exact integer success counts behind the rate, for
    confidence intervals that must not reconstruct them by rounding. *)

val weighted_accuracy : t -> correct:int array -> total:int array -> float
(** The eq. (7) prior-weighted rate from pre-computed {!correct_counts}
    (so one classification pass yields both the rate and the counts).
    Raises if any class has no test data or on a length mismatch. *)

val threshold_two_class : t -> float option
(** For a 2-class classifier: the decision threshold d solving
    prior₀·f₀(d) = prior₁·f₁(d) between the two class means (paper eq. 3,
    Fig. 2), found by bisection on the posterior difference.  [None] if
    the densities do not cross between the class means (degenerate
    training data).  Raises if the classifier is not binary. *)
