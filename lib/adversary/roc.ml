type point = { threshold : float; false_alarm : float; hit_rate : float }

let check negatives positives =
  if Array.length negatives = 0 || Array.length positives = 0 then
    invalid_arg "Roc: empty class"

let curve ~negatives ~positives =
  check negatives positives;
  let neg = Array.copy negatives and pos = Array.copy positives in
  Array.sort Float.compare neg;
  Array.sort Float.compare pos;
  let n_neg = float_of_int (Array.length neg) in
  let n_pos = float_of_int (Array.length pos) in
  (* P(score > t | class) via binary search over the sorted samples. *)
  let frac_above sorted t =
    let n = Array.length sorted in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) <= t then lo := mid + 1 else hi := mid
    done;
    float_of_int (n - !lo)
  in
  let thresholds =
    Array.append neg pos |> Array.to_list |> List.sort_uniq Float.compare
  in
  let interior =
    List.rev_map
      (fun t ->
        {
          threshold = t;
          false_alarm = frac_above neg t /. n_neg;
          hit_rate = frac_above pos t /. n_pos;
        })
      thresholds
  in
  (* Decreasing threshold order: start below everything (all flagged). *)
  let lowest = List.fold_left Float.min neg.(0) (Array.to_list pos) in
  interior
  @ [ { threshold = lowest -. 1.0; false_alarm = 1.0; hit_rate = 1.0 } ]
  |> fun pts ->
  { threshold = Float.infinity; false_alarm = 0.0; hit_rate = 0.0 } :: pts

let auc ~negatives ~positives =
  check negatives positives;
  (* Mann-Whitney U: count positive>negative pairs (+0.5 per tie). *)
  let neg = Array.copy negatives in
  Array.sort Float.compare neg;
  let n = Array.length neg in
  let count_below_and_ties x =
    (* (#neg < x, #neg = x) *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if neg.(mid) < x then lo := mid + 1 else hi := mid
    done;
    let first_ge = !lo in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if neg.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    (first_ge, !lo - first_ge)
  in
  let u = ref 0.0 in
  Array.iter
    (fun x ->
      let below, ties = count_below_and_ties x in
      u := !u +. float_of_int below +. (0.5 *. float_of_int ties))
    positives;
  !u /. (float_of_int n *. float_of_int (Array.length positives))

let best_accuracy ~negatives ~positives =
  let pts = curve ~negatives ~positives in
  List.fold_left
    (fun (best_t, best_acc) p ->
      let acc = (p.hit_rate +. (1.0 -. p.false_alarm)) /. 2.0 in
      if acc > best_acc then (p.threshold, acc) else (best_t, best_acc))
    (Float.infinity, 0.5) pts
