type cls = { name : string; prior : float; kde : Stats.Kde.t; mean : float }

type t = { classes : cls array }

let train ?priors ~classes () =
  let m = Array.length classes in
  if m < 2 then invalid_arg "Classifier.train: need >= 2 classes";
  let priors =
    match priors with
    | None -> Array.make m (1.0 /. float_of_int m)
    | Some p ->
        if Array.length p <> m then
          invalid_arg "Classifier.train: priors length mismatch";
        let total = Array.fold_left ( +. ) 0.0 p in
        if total <= 0.0 || Array.exists (fun x -> x <= 0.0) p then
          invalid_arg "Classifier.train: priors must be positive";
        Array.map (fun x -> x /. total) p
  in
  let classes =
    Array.mapi
      (fun i (name, xs) ->
        if Array.length xs = 0 then
          invalid_arg "Classifier.train: empty training set";
        {
          name;
          prior = priors.(i);
          kde = Stats.Kde.fit xs;
          mean = Stats.Descriptive.mean xs;
        })
      classes
  in
  { classes }

let num_classes t = Array.length t.classes
let class_name t i = t.classes.(i).name
let prior t i = t.classes.(i).prior
let kde t i = t.classes.(i).kde

let log_score cls x = log cls.prior +. Stats.Kde.log_pdf cls.kde x

let classify t x =
  let best = ref 0 in
  let best_score = ref (log_score t.classes.(0) x) in
  for i = 1 to Array.length t.classes - 1 do
    let s = log_score t.classes.(i) x in
    if s > !best_score then begin
      best := i;
      best_score := s
    end
  done;
  !best

let posteriors t x =
  let scores = Array.map (fun c -> log_score c x) t.classes in
  let max_s = Array.fold_left Float.max Float.neg_infinity scores in
  if Float.is_finite max_s then begin
    let weights = Array.map (fun s -> exp (s -. max_s)) scores in
    let total = Array.fold_left ( +. ) 0.0 weights in
    Array.map (fun w -> w /. total) weights
  end
  else Array.make (Array.length t.classes) (1.0 /. float_of_int (Array.length t.classes))

let correct_counts t cases =
  let m = num_classes t in
  let correct = Array.make m 0 and total = Array.make m 0 in
  Array.iter
    (fun (label, xs) ->
      if label < 0 || label >= m then invalid_arg "Classifier.accuracy: bad label";
      Array.iter
        (fun x ->
          total.(label) <- total.(label) + 1;
          if classify t x = label then correct.(label) <- correct.(label) + 1)
        xs)
    cases;
  (correct, total)

let weighted_accuracy t ~correct ~total =
  let m = num_classes t in
  if Array.length correct <> m || Array.length total <> m then
    invalid_arg "Classifier.weighted_accuracy: counts length mismatch";
  let acc = ref 0.0 in
  for i = 0 to m - 1 do
    if total.(i) = 0 then invalid_arg "Classifier.accuracy: class without test data";
    acc :=
      !acc +. (t.classes.(i).prior *. float_of_int correct.(i) /. float_of_int total.(i))
  done;
  !acc

let accuracy t cases =
  let correct, total = correct_counts t cases in
  weighted_accuracy t ~correct ~total

let threshold_two_class t =
  if num_classes t <> 2 then
    invalid_arg "Classifier.threshold_two_class: not a binary classifier";
  let c0 = t.classes.(0) and c1 = t.classes.(1) in
  let f x = log_score c0 x -. log_score c1 x in
  let lo = Float.min c0.mean c1.mean and hi = Float.max c0.mean c1.mean in
  if lo = hi then None
  else
    let flo = f lo and fhi = f hi in
    if (flo > 0.0 && fhi > 0.0) || (flo < 0.0 && fhi < 0.0) then None
    else Some (Stats.Rootfind.bisect f ~lo ~hi)
