(** Gap-aware adversary features for a faulty padded channel.

    On a fault-free constant-rate cover stream every PIAT is ≈ τ and the
    leak lives entirely in the µs-scale jitter.  Once the channel loses
    packets (wire loss, outages, crashed gateways, coalesced timer fires),
    two things happen at the tap:

    - plain moment features drown: a single τ-scale gap contributes ~τ² to
      the sample variance, orders of magnitude above the jitter variance
      the classifier feeds on, so the naive adversary degrades toward 0.5;
    - the gaps themselves are trivially visible, and a gap of k periods
      still carries the timing jitter of its two surviving endpoints.

    A gap-aware adversary therefore {e folds} each PIAT back by the whole
    number of missing periods and classifies on the folded variance,
    recovering (most of) the fault-free leak.  Faults are not a
    countermeasure — this module is the proof. *)

val fold : tau:float -> float array -> float array
(** [fold ~tau piats] maps each PIAT [x] to [x -. (k - 1) *. tau] with
    [k = Float.round (x /. tau)]: a gap spanning [k] nominal periods
    collapses back to one period plus its endpoint jitter.  PIATs with
    [k = 0] (duplicates, back-to-back catch-up bursts) are discarded.
    [tau > 0]. *)

val gap_fraction : tau:float -> float array -> float
(** Fraction of PIATs with [k <> 1] — a direct fault-intensity estimate
    the adversary gets for free; 0.0 on an empty array. *)

val folded_variance : tau:float -> float array -> float
(** Sample variance of {!fold}; 0.0 when fewer than 2 PIATs survive the
    fold (a degenerate window carries no usable leak). *)

val windowed_features :
  tau:float -> sample_size:int -> float array -> float array
(** Slice a PIAT trace into consecutive [sample_size]-windows (tail
    remainder discarded) and return {!folded_variance} of each — the
    per-window feature values to hand to
    {!Detection.estimate_on_features}.  [sample_size >= 2]. *)
