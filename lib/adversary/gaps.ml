let fold ~tau piats =
  if not (tau > 0.0) then invalid_arg "Gaps.fold: tau <= 0";
  let out = ref [] in
  let n = ref 0 in
  Array.iter
    (fun x ->
      let k = Float.round (x /. tau) in
      if k >= 1.0 then begin
        out := (x -. ((k -. 1.0) *. tau)) :: !out;
        incr n
      end)
    piats;
  let arr = Array.make !n 0.0 in
  List.iteri (fun i v -> arr.(!n - 1 - i) <- v) !out;
  arr

let gap_fraction ~tau piats =
  if not (tau > 0.0) then invalid_arg "Gaps.gap_fraction: tau <= 0";
  let n = Array.length piats in
  if n = 0 then 0.0
  else begin
    let gaps = ref 0 in
    Array.iter
      (fun x -> if Float.round (x /. tau) <> 1.0 then incr gaps)
      piats;
    float_of_int !gaps /. float_of_int n
  end

let folded_variance ~tau piats =
  let folded = fold ~tau piats in
  if Array.length folded < 2 then 0.0
  else Feature.extract Feature.Sample_variance ~reference:tau folded

let windowed_features ~tau ~sample_size piats =
  if sample_size < 2 then invalid_arg "Gaps.windowed_features: sample_size < 2";
  let windows = Array.length piats / sample_size in
  Array.init windows (fun w ->
      folded_variance ~tau (Array.sub piats (w * sample_size) sample_size))
