(** Entropy estimators.

    The adversary's "sample entropy" feature is the histogram plug-in
    estimator of the paper's eq. (25): H ≈ - Σ (k_i/n) ln (k_i/n), computed
    with a bin width held constant across the experiment so the discarded
    [ln Δh] offset cancels between classes.  Natural logarithms throughout. *)

val of_probabilities : float array -> float
(** Shannon entropy (nats) of a probability vector; zero-mass entries are
    skipped.  Raises if any entry is negative. *)

val histogram_plugin : Histogram.t -> float
(** Paper eq. (25): plug-in entropy of the bin masses, without the
    [ln Δh] term. *)

val histogram_differential : Histogram.t -> float
(** Paper eq. (24): plug-in entropy plus [ln Δh] — a differential-entropy
    estimate comparable across bin widths (Moddemeijer 1989). *)

val of_sample_in :
  bin_width:float -> reference:float -> float array -> pos:int -> len:int ->
  float
(** {!of_sample} over the view [\[pos, pos + len)] of the array, without
    copying it — bit-identical to [of_sample] on the equivalent subarray.
    Raises [Invalid_argument] on an empty or out-of-bounds view. *)

val of_sample : bin_width:float -> reference:float -> float array -> float
(** [of_sample ~bin_width ~reference xs] is the adversary's feature
    extractor: bins [xs] on a grid anchored at [reference] (grid edges at
    reference + k*bin_width, wide enough for the data) and returns the
    eq. (25) plug-in entropy.  Anchoring the grid makes the feature depend
    only on the sample's dispersion, not on where the grid happens to fall.
    Raises on empty input or non-positive bin width. *)

val normal_differential : sigma:float -> float
(** Closed-form differential entropy of N(mu, sigma^2): ½ ln(2πe σ²).
    Requires [sigma > 0]. *)
