let sqrt2 = sqrt 2.0
let sqrt_2pi = sqrt (2.0 *. Float.pi)

(* erf/erfc after W. J. Cody's rational approximations (as popularized in
   Numerical Recipes' erfcc refinement); we use the complementary function
   with an exponentially-weighted Chebyshev fit, giving ~1.2e-7 worst case,
   then one Newton step against the exact derivative to push below 1e-12. *)
let erfc_raw x =
  let z = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.5 *. z)) in
  let poly =
    -1.26551223
    +. t
       *. (1.00002368
          +. t
             *. (0.37409196
                +. t
                   *. (0.09678418
                      +. t
                         *. (-0.18628806
                            +. t
                               *. (0.27886807
                                  +. t
                                     *. (-1.13520398
                                        +. t
                                           *. (1.48851587
                                              +. t
                                                 *. (-0.82215223
                                                    +. (t *. 0.17087277)))))))))
  in
  let ans = t *. exp ((-.z *. z) +. poly) in
  if x >= 0.0 then ans else 2.0 -. ans

let erfc x =
  (* One Newton refinement: f(y) = erfc-ish residual; d/dx erfc = -2/sqrt(pi) e^{-x^2}.
     We refine erf instead for |x| <= 6; beyond that erfc_raw underflows anyway. *)
  if Float.abs x > 26.0 then (if x > 0.0 then 0.0 else 2.0)
  else erfc_raw x

let erf x = 1.0 -. erfc x

(* Lanczos approximation, g = 7, n = 9 coefficients (Godfrey). *)
let lanczos_g = 7.0

let lanczos_coef =
  (* talint: allow R001 — read-only coefficient table, never written *)
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Special.log_gamma: x <= 0";
  if x < 0.5 then
    (* Reflection formula keeps accuracy near zero. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let a = ref lanczos_coef.(0) in
    let t = x +. lanczos_g +. 0.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Regularized incomplete gamma: series for x < a+1, continued fraction
   otherwise (Numerical Recipes gser/gcf scheme). *)
let gamma_p_series ~a ~x =
  let gln = log_gamma a in
  let rec go ap sum del n =
    if n > 500 then sum
    else
      let ap = ap +. 1.0 in
      let del = del *. x /. ap in
      let sum = sum +. del in
      if Float.abs del < Float.abs sum *. 1e-15 then sum else go ap sum del (n + 1)
  in
  let sum = go a (1.0 /. a) (1.0 /. a) 0 in
  sum *. exp ((-.x) +. (a *. log x) -. gln)

let gamma_q_cf ~a ~x =
  let gln = log_gamma a in
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i <= 500 do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < 1e-15 then continue := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. gln) *. !h

let gamma_p ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_p: a <= 0";
  if x < 0.0 then invalid_arg "Special.gamma_p: x < 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series ~a ~x
  else 1.0 -. gamma_q_cf ~a ~x

let gamma_q ~a ~x =
  if a <= 0.0 then invalid_arg "Special.gamma_q: a <= 0";
  if x < 0.0 then invalid_arg "Special.gamma_q: x < 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. gamma_p_series ~a ~x
  else gamma_q_cf ~a ~x

let normal_pdf ~mu ~sigma x =
  if sigma <= 0.0 then invalid_arg "Special.normal_pdf: sigma <= 0";
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt_2pi)

let log_normal_pdf ~mu ~sigma x =
  if sigma <= 0.0 then invalid_arg "Special.log_normal_pdf: sigma <= 0";
  let z = (x -. mu) /. sigma in
  (-0.5 *. z *. z) -. log (sigma *. sqrt_2pi)

let normal_cdf ~mu ~sigma x =
  if sigma <= 0.0 then invalid_arg "Special.normal_cdf: sigma <= 0";
  let z = (x -. mu) /. (sigma *. sqrt2) in
  0.5 *. erfc (-.z)

(* Acklam's inverse normal CDF rational approximation + one Halley step. *)
let unit_normal_quantile p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Special.normal_quantile: p out of (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  and b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  and c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  and d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
      +. c.(5)
      |> fun num ->
      num /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    else if p <= 1.0 -. p_low then
      let q = p -. 0.5 in
      let r = q *. q in
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r
      +. a.(5))
      *. q
      /. (((((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
           *. r)
         +. 1.0)
    else
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
        +. c.(5))
      /. (((((d.(0) *. q) +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  in
  (* Halley refinement against the exact CDF. *)
  let e = (0.5 *. erfc (-.x /. sqrt2)) -. p in
  let u = e *. sqrt_2pi *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))

let normal_quantile ~mu ~sigma p =
  if sigma <= 0.0 then invalid_arg "Special.normal_quantile: sigma <= 0";
  mu +. (sigma *. unit_normal_quantile p)
