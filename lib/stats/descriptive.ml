module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable m3 : float;
    mutable m4 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; m3 = 0.0; m4 = 0.0;
      min = Float.infinity; max = Float.neg_infinity }

  (* Welford / Pébay one-pass central-moment update. *)
  let add t x =
    let n1 = float_of_int t.n in
    t.n <- t.n + 1;
    let n = float_of_int t.n in
    let delta = x -. t.mean in
    let delta_n = delta /. n in
    let delta_n2 = delta_n *. delta_n in
    let term1 = delta *. delta_n *. n1 in
    t.mean <- t.mean +. delta_n;
    t.m4 <-
      t.m4
      +. (term1 *. delta_n2 *. ((n *. n) -. (3.0 *. n) +. 3.0))
      +. (6.0 *. delta_n2 *. t.m2)
      -. (4.0 *. delta_n *. t.m3);
    t.m3 <- t.m3 +. (term1 *. delta_n *. (n -. 2.0)) -. (3.0 *. delta_n *. t.m2);
    t.m2 <- t.m2 +. term1;
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let na = float_of_int a.n and nb = float_of_int b.n in
      let n = na +. nb in
      let delta = b.mean -. a.mean in
      let delta2 = delta *. delta in
      let delta3 = delta2 *. delta in
      let delta4 = delta3 *. delta in
      let mean = a.mean +. (delta *. nb /. n) in
      let m2 = a.m2 +. b.m2 +. (delta2 *. na *. nb /. n) in
      let m3 =
        a.m3 +. b.m3
        +. (delta3 *. na *. nb *. (na -. nb) /. (n *. n))
        +. (3.0 *. delta *. ((na *. b.m2) -. (nb *. a.m2)) /. n)
      in
      let m4 =
        a.m4 +. b.m4
        +. (delta4 *. na *. nb *. ((na *. na) -. (na *. nb) +. (nb *. nb))
            /. (n *. n *. n))
        +. (6.0 *. delta2 *. ((na *. na *. b.m2) +. (nb *. nb *. a.m2)) /. (n *. n))
        +. (4.0 *. delta *. ((na *. b.m3) -. (nb *. a.m3)) /. n)
      in
      { n = a.n + b.n; mean; m2; m3; m4;
        min = Float.min a.min b.min; max = Float.max a.max b.max }
    end

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let population_variance t = if t.n < 1 then 0.0 else t.m2 /. float_of_int t.n
  let std t = sqrt (variance t)

  let skewness t =
    if t.n < 3 || t.m2 = 0.0 then 0.0
    else
      let n = float_of_int t.n in
      sqrt n *. t.m3 /. (t.m2 ** 1.5)

  let kurtosis_excess t =
    if t.n < 4 || t.m2 = 0.0 then 0.0
    else
      let n = float_of_int t.n in
      (n *. t.m4 /. (t.m2 *. t.m2)) -. 3.0

  let min t =
    if t.n = 0 then invalid_arg "Descriptive.Acc.min: empty";
    t.min

  let max t =
    if t.n = 0 then invalid_arg "Descriptive.Acc.max: empty";
    t.max
end

(* The [_in] variants compute over the subarray [pos, pos + len) without
   copying it, in the exact iteration order of the whole-array versions,
   so [f_in xs ~pos:0 ~len:(Array.length xs)] is bit-identical to [f xs].
   They are what lets the adversary's window scoring stay allocation-free
   (no Array.sub per window). *)

let check_view name xs ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length xs then
    invalid_arg ("Descriptive." ^ name ^ ": view out of bounds")

let mean_in xs ~pos ~len =
  check_view "mean_in" xs ~pos ~len;
  if len = 0 then invalid_arg "Descriptive.mean_in: empty";
  let acc = ref 0.0 in
  for i = pos to pos + len - 1 do
    acc := !acc +. Array.unsafe_get xs i
  done;
  !acc /. float_of_int len

let mean xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.mean: empty";
  mean_in xs ~pos:0 ~len:(Array.length xs)

let variance_in xs ~pos ~len =
  check_view "variance_in" xs ~pos ~len;
  if len < 2 then invalid_arg "Descriptive.variance_in: need n >= 2";
  let m = mean_in xs ~pos ~len in
  let acc = ref 0.0 in
  for i = pos to pos + len - 1 do
    let d = Array.unsafe_get xs i -. m in
    acc := !acc +. (d *. d)
  done;
  !acc /. float_of_int (len - 1)

let variance xs =
  if Array.length xs < 2 then invalid_arg "Descriptive.variance: need n >= 2";
  variance_in xs ~pos:0 ~len:(Array.length xs)

let std xs = sqrt (variance xs)

let quantile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Descriptive.quantile: empty";
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Stdlib.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = quantile xs 0.5

let minimum_in xs ~pos ~len =
  check_view "minimum_in" xs ~pos ~len;
  if len = 0 then invalid_arg "Descriptive.minimum_in: empty";
  let acc = ref xs.(pos) in
  for i = pos to pos + len - 1 do
    acc := Float.min !acc (Array.unsafe_get xs i)
  done;
  !acc

let minimum xs = minimum_in xs ~pos:0 ~len:(Array.length xs)

let maximum_in xs ~pos ~len =
  check_view "maximum_in" xs ~pos ~len;
  if len = 0 then invalid_arg "Descriptive.maximum_in: empty";
  let acc = ref xs.(pos) in
  for i = pos to pos + len - 1 do
    acc := Float.max !acc (Array.unsafe_get xs i)
  done;
  !acc

let maximum xs = maximum_in xs ~pos:0 ~len:(Array.length xs)

let autocorrelation xs ~lag =
  let n = Array.length xs in
  if lag < 0 then invalid_arg "Descriptive.autocorrelation: lag < 0";
  if lag >= n then invalid_arg "Descriptive.autocorrelation: lag >= length";
  let m = mean xs in
  let denom = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  if denom = 0.0 then 0.0
  else begin
    let num = ref 0.0 in
    for i = 0 to n - 1 - lag do
      num := !num +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
    done;
    !num /. denom
  end

let summary_to_string xs =
  let n = Array.length xs in
  if n = 0 then "n=0"
  else if n = 1 then Printf.sprintf "n=1 value=%.6g" xs.(0)
  else
    Printf.sprintf "n=%d mean=%.6g std=%.6g min=%.6g med=%.6g max=%.6g" n
      (mean xs) (std xs) (minimum xs) (median xs) (maximum xs)
