(** Descriptive statistics over float samples.

    Two interfaces: a streaming accumulator ({!Acc}) implementing Welford's
    numerically stable one-pass moments (used inside the simulator, where
    traces can be long), and array-based helpers for the adversary's
    fixed-size samples. *)

module Acc : sig
  type t
  (** Streaming moment accumulator (count, mean, M2..M4, min, max). *)

  val create : unit -> t
  val add : t -> float -> unit
  val merge : t -> t -> t
  (** [merge a b] is a fresh accumulator equivalent to feeding both streams
      (Chan et al. parallel update). *)

  val count : t -> int
  val mean : t -> float
  (** 0 on an empty accumulator. *)

  val variance : t -> float
  (** Unbiased sample variance (n-1 denominator); 0 for n < 2. *)

  val population_variance : t -> float
  (** n-denominator variance; 0 for n < 1. *)

  val std : t -> float
  val skewness : t -> float
  (** Population skewness g1; 0 when undefined. *)

  val kurtosis_excess : t -> float
  (** Population excess kurtosis g2; 0 when undefined. *)

  val min : t -> float
  val max : t -> float
  (** [min]/[max] raise [Invalid_argument] on an empty accumulator. *)
end

val mean : float array -> float
(** Arithmetic mean; raises on empty input. *)

val variance : float array -> float
(** Unbiased (n-1) sample variance; raises for n < 2.  Two-pass, stable. *)

val std : float array -> float

(** The [_in] variants compute the same statistic over the subarray
    [\[pos, pos + len)] without copying it, in the exact iteration order
    of the whole-array versions — [f_in xs ~pos:0 ~len] is bit-identical
    to [f xs].  They back the adversary's allocation-free window scoring.
    All raise [Invalid_argument] on an out-of-bounds view. *)

val mean_in : float array -> pos:int -> len:int -> float
val variance_in : float array -> pos:int -> len:int -> float
val minimum_in : float array -> pos:int -> len:int -> float
val maximum_in : float array -> pos:int -> len:int -> float

val median : float array -> float
(** Median without mutating the input; raises on empty. *)

val quantile : float array -> float -> float
(** [quantile xs p] for p in [0,1], linear interpolation between order
    statistics (type-7); raises on empty input or p outside [0,1]. *)

val minimum : float array -> float
val maximum : float array -> float
(** [minimum]/[maximum] raise on empty input. *)

val autocorrelation : float array -> lag:int -> float
(** Sample autocorrelation at [lag] (biased normalization); 0 when the
    series is constant.  Raises if [lag < 0] or [lag >= length]. *)

val summary_to_string : float array -> string
(** Human-readable one-line summary (n, mean, std, min, median, max). *)
