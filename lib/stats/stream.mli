(** Streaming windowed statistics for sliding-window feature extraction.

    One long observation is scored through many overlapping sample windows
    (the timing-only attack framing): a {!Window} of capacity [n] slides
    along the trace by a stride, and each slide updates the window's mean,
    variance and binned entropy incrementally — O(stride) work per window
    against O(n) for a recompute, with no per-window copy.

    All state here is per-value, caller-owned and single-domain; parallel
    collectors keep one accumulator per shard and combine results with
    {!Moments.merge} (associative and commutative), which is what keeps
    sharded runs bit-identical at any worker count. *)

module Moments : sig
  type t
  (** First-two-moment Welford accumulator supporting exact removal — the
      windowed generalization of [Descriptive.Acc] (which tracks four
      moments but only grows). *)

  val create : unit -> t
  val clear : t -> unit

  val add : t -> float -> unit
  (** Welford forward update. *)

  val remove : t -> float -> unit
  (** Inverse update: deletes one previously-added value from the
      aggregate (the value itself, not an index — callers keep the window
      contents, e.g. in {!Window}'s ring).  M2 is clamped at 0 against
      accumulated rounding.  Raises [Invalid_argument] when empty. *)

  val merge : t -> t -> t
  (** Chan et al. combine: order-insensitive, so per-shard accumulators
      merged in index order give one deterministic answer. *)

  val count : t -> int

  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Unbiased (n-1) sample variance; 0 for n < 2. *)

  val std : t -> float
end

module Hist : sig
  type t
  (** Incremental plug-in entropy over binned values: bins of width
      [bin_width] anchored at [reference] (the partition
      [Entropy.of_sample] builds), with Σ c·ln c maintained across
      insertions and evictions so entropy reads are O(1). *)

  val create : bin_width:float -> reference:float -> unit -> t
  (** Raises [Invalid_argument] unless [bin_width] is positive and
      finite. *)

  val clear : t -> unit
  val add : t -> float -> unit

  val remove : t -> float -> unit
  (** Raises [Invalid_argument] if no value in [x]'s bin is present. *)

  val count : t -> int

  val entropy : t -> float
  (** Plug-in (histogram) entropy ln n − (Σ c·ln c)/n in nats; 0 when
      empty.  Matches [Entropy.of_sample] on the same values to floating
      rounding. *)
end

module Window : sig
  type t
  (** Fixed-capacity sliding window: a ring of the last [capacity] values
      with a {!Moments} and a {!Hist} kept in lockstep.  Pushing into a
      full window evicts the oldest value from all aggregates. *)

  val create :
    capacity:int -> bin_width:float -> reference:float -> unit -> t
  (** Raises [Invalid_argument] if [capacity < 1] or [bin_width <= 0]. *)

  val clear : t -> unit
  val push : t -> float -> unit
  val count : t -> int
  val is_full : t -> bool
  val capacity : t -> int
  val mean : t -> float
  val variance : t -> float

  val entropy : t -> float
  (** Plug-in entropy of the current window contents. *)
end

val sliding_count : length:int -> sample_size:int -> stride:int -> int
(** Number of full windows a sliding pass yields:
    [1 + (length - sample_size) / stride] when [length >= sample_size],
    0 otherwise.  Raises [Invalid_argument] on a non-positive
    [sample_size] or [stride]. *)
