type result = { statistic : float; p_value : float }

let kolmogorov_sf lambda =
  if lambda <= 0.0 then 1.0
  else begin
    let acc = ref 0.0 in
    let k = ref 1 in
    let continue = ref true in
    while !continue && !k <= 100 do
      let fk = float_of_int !k in
      let term =
        (if !k mod 2 = 1 then 1.0 else -1.0)
        *. exp (-2.0 *. fk *. fk *. lambda *. lambda)
      in
      acc := !acc +. term;
      if Float.abs term < 1e-12 then continue := false;
      incr k
    done;
    Float.max 0.0 (Float.min 1.0 (2.0 *. !acc))
  end

let ks_test xs ~cdf =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Hypothesis.ks_test: empty";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let fn = float_of_int n in
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let d_plus = (float_of_int (i + 1) /. fn) -. f in
      let d_minus = f -. (float_of_int i /. fn) in
      d := Float.max !d (Float.max d_plus d_minus))
    sorted;
  let sqrt_n = sqrt fn in
  (* Stephens' finite-n correction before evaluating the asymptotic law. *)
  let lambda = (sqrt_n +. 0.12 +. (0.11 /. sqrt_n)) *. !d in
  { statistic = !d; p_value = kolmogorov_sf lambda }

let jarque_bera xs =
  let n = Array.length xs in
  if n < 8 then invalid_arg "Hypothesis.jarque_bera: need n >= 8";
  let acc = Descriptive.Acc.create () in
  Array.iter (Descriptive.Acc.add acc) xs;
  let s = Descriptive.Acc.skewness acc in
  let k = Descriptive.Acc.kurtosis_excess acc in
  let fn = float_of_int n in
  let jb = fn /. 6.0 *. ((s *. s) +. (k *. k /. 4.0)) in
  (* JB ~ chi2(2): survival = exp(-jb/2). *)
  { statistic = jb; p_value = exp (-.jb /. 2.0) }

let chi_square_gof ~observed ~expected =
  let bins = Array.length observed in
  if bins = 0 then invalid_arg "Hypothesis.chi_square_gof: empty";
  if Array.length expected <> bins then
    invalid_arg "Hypothesis.chi_square_gof: length mismatch";
  let stat = ref 0.0 in
  Array.iteri
    (fun i o ->
      let e = expected.(i) in
      if e <= 0.0 then invalid_arg "Hypothesis.chi_square_gof: expected <= 0";
      let diff = float_of_int o -. e in
      stat := !stat +. (diff *. diff /. e))
    observed;
  let dof = bins - 1 in
  let p_value =
    if dof = 0 then 1.0
    else Special.gamma_q ~a:(float_of_int dof /. 2.0) ~x:(!stat /. 2.0)
  in
  { statistic = !stat; p_value }
