(* Streaming windowed statistics: the feature-extraction kernels behind the
   sliding-window scoring path.  One long PIAT trace yields many overlapping
   sample windows; each slide updates the window aggregates in O(stride)
   instead of recomputing O(sample_size), and never copies the window. *)

module Moments = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.0; m2 = 0.0 }

  let clear t =
    t.n <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0

  (* Welford forward update — the same recurrence as [Descriptive.Acc],
     restricted to the first two moments so it admits an exact inverse. *)
  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  (* Inverse Welford: removing a value the window has outgrown.  Solving
     the forward update for the (n-1)-element state gives
       mean' = mean - (x - mean) / (n - 1)
       m2'   = m2 - (x - mean') * (x - mean)
     M2 is clamped at 0 so accumulated rounding can never produce a
     negative variance. *)
  let remove t x =
    if t.n < 1 then invalid_arg "Stream.Moments.remove: empty";
    if t.n = 1 then clear t
    else begin
      let n1 = float_of_int (t.n - 1) in
      let mean' = t.mean -. ((x -. t.mean) /. n1) in
      t.m2 <- Float.max 0.0 (t.m2 -. ((x -. mean') *. (x -. t.mean)));
      t.mean <- mean';
      t.n <- t.n - 1
    end

  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let na = float_of_int a.n and nb = float_of_int b.n in
      let n = na +. nb in
      let delta = b.mean -. a.mean in
      {
        n = a.n + b.n;
        mean = a.mean +. (delta *. nb /. n);
        m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      }
    end

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let std t = sqrt (variance t)
end

module Hist = struct
  (* Incremental plug-in entropy over a binned sliding window.  Bins are
     anchored at [reference] on a grid of [bin_width] (the same partition
     [Entropy.of_sample] builds), keyed by their integer grid index, and
     the sum S = sum_bins c*ln(c) is maintained incrementally so entropy
     updates cost O(1) per inserted or evicted value:
       H = ln n - S / n. *)
  type t = {
    bin_width : float;
    reference : float;
    bins : (int, int) Hashtbl.t;
    mutable n : int;
    mutable s : float; (* sum over bins of c * ln c *)
  }

  let create ~bin_width ~reference () =
    if bin_width <= 0.0 || not (Float.is_finite bin_width) then
      invalid_arg "Stream.Hist.create: bin_width <= 0";
    { bin_width; reference; bins = Hashtbl.create 64; n = 0; s = 0.0 }

  let clear t =
    Hashtbl.reset t.bins;
    t.n <- 0;
    t.s <- 0.0

  let index t x =
    int_of_float (Float.floor ((x -. t.reference) /. t.bin_width))

  let xlnx c = if c <= 0 then 0.0 else float_of_int c *. log (float_of_int c)

  let add t x =
    let k = index t x in
    let c = Option.value (Hashtbl.find_opt t.bins k) ~default:0 in
    Hashtbl.replace t.bins k (c + 1);
    t.s <- t.s -. xlnx c +. xlnx (c + 1);
    t.n <- t.n + 1

  let remove t x =
    let k = index t x in
    match Hashtbl.find_opt t.bins k with
    | None | Some 0 -> invalid_arg "Stream.Hist.remove: value not present"
    | Some c ->
        if c = 1 then Hashtbl.remove t.bins k
        else Hashtbl.replace t.bins k (c - 1);
        t.s <- t.s -. xlnx c +. xlnx (c - 1);
        t.n <- t.n - 1

  let count t = t.n

  let entropy t =
    if t.n = 0 then 0.0
    else
      let n = float_of_int t.n in
      log n -. (t.s /. n)
end

module Window = struct
  type t = {
    cap : int;
    buf : float array;
    mutable head : int; (* next write slot *)
    mutable n : int;
    mom : Moments.t;
    hist : Hist.t;
  }

  let create ~capacity ~bin_width ~reference () =
    if capacity < 1 then invalid_arg "Stream.Window.create: capacity < 1";
    {
      cap = capacity;
      buf = Array.make capacity 0.0;
      head = 0;
      n = 0;
      mom = Moments.create ();
      hist = Hist.create ~bin_width ~reference ();
    }

  let clear t =
    t.head <- 0;
    t.n <- 0;
    Moments.clear t.mom;
    Hist.clear t.hist

  let push t x =
    if t.n = t.cap then begin
      let old = t.buf.(t.head) in
      Moments.remove t.mom old;
      Hist.remove t.hist old
    end
    else t.n <- t.n + 1;
    t.buf.(t.head) <- x;
    t.head <- (t.head + 1) mod t.cap;
    Moments.add t.mom x;
    Hist.add t.hist x

  let count t = t.n
  let is_full t = t.n = t.cap
  let capacity t = t.cap
  let mean t = Moments.mean t.mom
  let variance t = Moments.variance t.mom
  let entropy t = Hist.entropy t.hist
end

let sliding_count ~length ~sample_size ~stride =
  if sample_size < 1 then invalid_arg "Stream.sliding_count: sample_size < 1";
  if stride < 1 then invalid_arg "Stream.sliding_count: stride < 1";
  if length < sample_size then 0 else 1 + ((length - sample_size) / stride)
