let of_probabilities ps =
  Array.fold_left
    (fun acc p ->
      if p < 0.0 then invalid_arg "Entropy.of_probabilities: negative mass";
      if p = 0.0 then acc else acc -. (p *. log p))
    0.0 ps

let histogram_plugin h = of_probabilities (Histogram.probabilities h)

let histogram_differential h =
  histogram_plugin h +. log (Histogram.bin_width h)

let of_sample_in ~bin_width ~reference xs ~pos ~len =
  if len = 0 then invalid_arg "Entropy.of_sample: empty";
  if bin_width <= 0.0 then invalid_arg "Entropy.of_sample: bin_width <= 0";
  let min_x = Descriptive.minimum_in xs ~pos ~len
  and max_x = Descriptive.maximum_in xs ~pos ~len in
  (* Snap the grid origin to multiples of bin_width below the data, anchored
     at [reference], so two samples from the same system share bin edges. *)
  let k_lo = Float.floor ((min_x -. reference) /. bin_width) in
  let lo = reference +. (k_lo *. bin_width) in
  let span = max_x -. lo in
  let bins = Stdlib.max 1 (1 + int_of_float (Float.floor (span /. bin_width))) in
  let h = Histogram.create ~lo ~bin_width ~bins in
  for i = pos to pos + len - 1 do
    Histogram.add h xs.(i)
  done;
  histogram_plugin h

let of_sample ~bin_width ~reference xs =
  of_sample_in ~bin_width ~reference xs ~pos:0 ~len:(Array.length xs)

let normal_differential ~sigma =
  if sigma <= 0.0 then invalid_arg "Entropy.normal_differential: sigma <= 0";
  0.5 *. log (2.0 *. Float.pi *. Float.exp 1.0 *. sigma *. sigma)
