(* Fault injectors and the graceful-degradation scenario: loss models,
   outage scheduling, clock faults, crash-restart, the gap-aware adversary,
   and the two headline regressions (zero faults = baseline; loss > 0 is a
   leak, not a countermeasure). *)

let mk_payload sim =
  Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500
    ~created:(Desim.Sim.now sim)

(* --- Lossy wire --- *)

let test_lossy_validation () =
  Alcotest.check_raises "loss >= 1"
    (Invalid_argument "Lossy: Bernoulli loss probability out of range")
    (fun () -> Faults.Lossy.validate_loss (Faults.Lossy.Bernoulli 1.0));
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:1 in
  Alcotest.check_raises "bad reorder delay"
    (Invalid_argument "Lossy: reorder_delay must be positive") (fun () ->
      ignore
        (Faults.Lossy.create sim ~rng ~reorder_delay:0.0 ~dest:(fun _ -> ()) ()))

let test_lossy_bernoulli_rate () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:2 in
  let delivered = ref 0 in
  let lossy =
    Faults.Lossy.create sim ~rng ~loss:(Faults.Lossy.Bernoulli 0.3)
      ~dest:(fun _ -> incr delivered)
      ()
  in
  let n = 20_000 in
  for _ = 1 to n do
    Faults.Lossy.port lossy (mk_payload sim)
  done;
  Alcotest.(check int) "offered" n (Faults.Lossy.offered lossy);
  Alcotest.(check int) "conservation" n
    (Faults.Lossy.lost lossy + Faults.Lossy.passed lossy);
  Alcotest.(check int) "dest saw passed" (Faults.Lossy.passed lossy) !delivered;
  let rate = Faults.Lossy.loss_rate lossy in
  if Float.abs (rate -. 0.3) > 0.02 then
    Alcotest.failf "Bernoulli loss rate %.4f far from 0.3" rate

let test_lossy_gilbert_elliott_bursty () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:3 in
  let model =
    Faults.Lossy.Gilbert_elliott
      { p_good_to_bad = 0.05; p_bad_to_good = 0.2; loss_good = 0.01; loss_bad = 0.8 }
  in
  let got = Hashtbl.create 1024 in
  let lossy =
    Faults.Lossy.create sim ~rng ~loss:model
      ~dest:(fun pkt -> Hashtbl.replace got pkt.Netsim.Packet.id ())
      ()
  in
  let n = 30_000 in
  let ids =
    Array.init n (fun _ ->
        let pkt = mk_payload sim in
        Faults.Lossy.port lossy pkt;
        pkt.Netsim.Packet.id)
  in
  let lost_flag = Array.map (fun id -> not (Hashtbl.mem got id)) ids in
  let marginal = Faults.Lossy.loss_rate lossy in
  let expected = Faults.Lossy.expected_loss_rate model in
  if Float.abs (marginal -. expected) > 0.05 then
    Alcotest.failf "GE loss rate %.4f far from stationary %.4f" marginal expected;
  (* Burstiness: a loss is much more likely right after a loss. *)
  let after_loss = ref 0 and after_loss_lost = ref 0 in
  for i = 1 to n - 1 do
    if lost_flag.(i - 1) then begin
      incr after_loss;
      if lost_flag.(i) then incr after_loss_lost
    end
  done;
  let conditional = float_of_int !after_loss_lost /. float_of_int !after_loss in
  if conditional < 2.0 *. marginal then
    Alcotest.failf "GE not bursty: P(loss|loss) %.3f vs marginal %.3f"
      conditional marginal

let test_lossy_duplication () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:4 in
  let delivered = ref 0 in
  let lossy =
    Faults.Lossy.create sim ~rng ~dup_prob:0.2
      ~dest:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 5_000 do
    Faults.Lossy.port lossy (mk_payload sim)
  done;
  let dup = Faults.Lossy.duplicated lossy in
  Alcotest.(check bool) "some duplicates" true (dup > 800 && dup < 1_200);
  Alcotest.(check int) "each duplicate delivered twice" (5_000 + dup) !delivered

let test_lossy_bounded_reordering () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:5 in
  let order = ref [] in
  let lossy =
    Faults.Lossy.create sim ~rng ~reorder_prob:0.3 ~reorder_delay:0.005
      ~dest:(fun pkt ->
        order := (pkt.Netsim.Packet.id, Desim.Sim.now sim) :: !order)
      ()
  in
  let sent = ref [] in
  for i = 0 to 199 do
    let t = float_of_int i *. 0.001 in
    ignore
      (Desim.Sim.at sim ~time:t (fun () ->
           let pkt = mk_payload sim in
           sent := (pkt.Netsim.Packet.id, t) :: !sent;
           Faults.Lossy.port lossy pkt)
        : Desim.Sim.handle)
  done;
  Desim.Sim.run_until sim ~time:1.0;
  let arrivals = List.rev !order in
  Alcotest.(check int) "all delivered" 200 (List.length arrivals);
  Alcotest.(check bool) "some reordered" true (Faults.Lossy.reordered lossy > 20);
  let sent_tbl = Hashtbl.create 256 in
  List.iter (fun (id, t) -> Hashtbl.replace sent_tbl id t) !sent;
  List.iter
    (fun (id, at) ->
      let st = Hashtbl.find sent_tbl id in
      if at -. st > 0.005 +. 1e-6 then
        Alcotest.failf "packet %d held %.4f s > bound" id (at -. st))
    arrivals;
  let ids_in_arrival_order = List.map fst arrivals in
  let ids_in_send_order = List.rev_map fst !sent in
  Alcotest.(check bool) "order actually perturbed" true
    (ids_in_arrival_order <> ids_in_send_order)

(* --- Outages --- *)

let test_outage_scheduled_window () =
  let sim = Desim.Sim.create () in
  let delivered = ref 0 in
  let out = Faults.Outage.create sim ~dest:(fun _ -> incr delivered) () in
  Faults.Outage.schedule out ~at:1.0 ~duration:2.0;
  List.iter
    (fun t ->
      ignore
        (Desim.Sim.at sim ~time:t (fun () ->
             Faults.Outage.port out (mk_payload sim))
          : Desim.Sim.handle))
    [ 0.5; 1.5; 2.5; 3.5 ];
  Desim.Sim.run_until sim ~time:5.0;
  Alcotest.(check int) "two pass" 2 !delivered;
  Alcotest.(check int) "two dropped" 2 (Faults.Outage.dropped out);
  Alcotest.(check int) "one outage" 1 (Faults.Outage.outages out);
  Alcotest.(check (float 1e-9)) "downtime" 2.0 (Faults.Outage.downtime out);
  Alcotest.(check bool) "back up" true (Faults.Outage.is_up out)

let test_outage_flapping_fraction () =
  let sim = Desim.Sim.create () in
  let out = Faults.Outage.create sim ~dest:(fun _ -> ()) () in
  let rng = Prng.Rng.create ~seed:6 in
  Faults.Outage.flap out ~rng ~mean_up:1.0 ~mean_down:1.0;
  Alcotest.check_raises "double flap"
    (Invalid_argument "Outage.flap: already flapping") (fun () ->
      Faults.Outage.flap out ~rng ~mean_up:1.0 ~mean_down:1.0);
  Desim.Sim.run_until sim ~time:400.0;
  let frac = Faults.Outage.downtime out /. 400.0 in
  if frac < 0.35 || frac > 0.65 then
    Alcotest.failf "flap downtime fraction %.3f far from 0.5" frac;
  Alcotest.(check bool) "many outages" true (Faults.Outage.outages out > 50);
  Faults.Outage.stop_flapping out;
  let dt = Faults.Outage.downtime out in
  Desim.Sim.run_until sim ~time:800.0;
  (* Once flapping stops, the link settles up and downtime freezes. *)
  Alcotest.(check bool) "up after stop" true (Faults.Outage.is_up out);
  Alcotest.(check bool) "downtime frozen" true
    (Faults.Outage.downtime out -. dt < 2.0)

(* --- Clock faults --- *)

let test_clock_ideal_identity () =
  let law = Padding.Timer.Normal { mean = 0.01; sigma = 2e-3 } in
  let rng_direct = Prng.Rng.create ~seed:7 in
  let rng_gen = Prng.Rng.create ~seed:7 in
  let gen = Faults.Clock.intervals Faults.Clock.ideal ~law ~rng:rng_gen in
  for i = 1 to 2_000 do
    let a = Padding.Timer.draw law rng_direct and b = gen () in
    if a <> b then Alcotest.failf "ideal clock diverged at draw %d" i
  done

let test_clock_drift_scales_mean () =
  let law = Padding.Timer.Constant 0.01 in
  let spec = { Faults.Clock.ideal with Faults.Clock.drift = 0.05 } in
  let gen = Faults.Clock.intervals spec ~law ~rng:(Prng.Rng.create ~seed:8) in
  for _ = 1 to 100 do
    Alcotest.(check (float 1e-12)) "drifted interval" 0.0105 (gen ())
  done

let test_clock_missed_fires_coalesce () =
  let law = Padding.Timer.Constant 0.01 in
  let spec =
    {
      Faults.Clock.drift = 0.0;
      miss_prob = 0.4;
      coalesce = true;
      max_consecutive_misses = 4;
    }
  in
  let gen = Faults.Clock.intervals spec ~law ~rng:(Prng.Rng.create ~seed:9) in
  let long = ref 0 in
  for _ = 1 to 5_000 do
    let dt = gen () in
    let k = Float.round (dt /. 0.01) in
    if Float.abs (dt -. (k *. 0.01)) > 1e-9 then
      Alcotest.failf "coalesced interval %.6f not a whole number of periods" dt;
    if k < 1.0 || k > 5.0 then Alcotest.failf "span %f periods out of range" k;
    if k >= 2.0 then incr long
  done;
  Alcotest.(check bool) "holes appear" true (!long > 1_000)

let test_clock_catchup_bursts () =
  let law = Padding.Timer.Constant 0.01 in
  let spec =
    {
      Faults.Clock.drift = 0.0;
      miss_prob = 0.5;
      coalesce = false;
      max_consecutive_misses = 3;
    }
  in
  let gen = Faults.Clock.intervals spec ~law ~rng:(Prng.Rng.create ~seed:10) in
  let bursts = ref 0 and holes = ref 0 in
  for _ = 1 to 5_000 do
    let dt = gen () in
    if dt = Faults.Clock.catchup_spacing then incr bursts
    else if dt > 0.015 then incr holes
  done;
  Alcotest.(check bool) "catch-up fires replayed" true (!bursts > 500);
  Alcotest.(check bool) "overrun holes precede them" true (!holes > 500)

let test_clock_validation () =
  Alcotest.check_raises "drift" (Invalid_argument "Clock: drift must be > -1")
    (fun () ->
      Faults.Clock.validate { Faults.Clock.ideal with Faults.Clock.drift = -1.0 });
  Alcotest.check_raises "miss_prob"
    (Invalid_argument "Clock: miss_prob must be in [0, 1)") (fun () ->
      Faults.Clock.validate
        { Faults.Clock.ideal with Faults.Clock.miss_prob = 1.0 })

(* --- Crash-restart --- *)

let crash_gateway ~mtbf ~restart_delay ~rate_pps ~horizon ~seed =
  let sim = Desim.Sim.create () in
  let root = Prng.Rng.create ~seed in
  let rng = Prng.Rng.split root in
  let failure_rng = Prng.Rng.split root in
  let rng_src = Prng.Rng.split root in
  let emissions = ref [] in
  let crash =
    Faults.Crash.create sim ~rng ~failure_rng
      ~timer:(Padding.Timer.Constant 0.01) ~jitter:Padding.Jitter.none ~mtbf
      ~restart_delay
      ~dest:(fun _ -> emissions := Desim.Sim.now sim :: !emissions)
      ()
  in
  let src =
    Netsim.Traffic_gen.poisson sim ~rng:rng_src ~rate_pps ~size_bytes:500
      ~kind:Netsim.Packet.Payload ~dest:(Faults.Crash.input crash) ()
  in
  Desim.Sim.run_until sim ~time:horizon;
  Netsim.Traffic_gen.stop src;
  (crash, src, List.rev !emissions)

let test_crash_punches_holes_and_recovers () =
  let crash, _, emissions =
    crash_gateway ~mtbf:2.0 ~restart_delay:1.0 ~rate_pps:20.0 ~horizon:60.0
      ~seed:11
  in
  let crashes = Faults.Crash.crashes crash in
  Alcotest.(check bool) "crashed several times" true (crashes >= 5);
  let max_gap = ref 0.0 in
  List.iteri
    (fun i t ->
      if i > 0 then
        max_gap := Float.max !max_gap (t -. List.nth emissions (i - 1)))
    emissions;
  Alcotest.(check bool) "restart hole visible on the wire" true
    (!max_gap >= 0.99);
  let dt = Faults.Crash.downtime crash in
  Alcotest.(check bool) "downtime bounded by crash count" true
    (dt >= float_of_int (crashes - 1) *. 1.0 -. 1e-6
    && dt <= (float_of_int crashes *. 1.0) +. 1e-6);
  Alcotest.(check bool) "still emitting after recovery" true
    (List.exists (fun t -> t > 55.0) emissions)

let test_crash_payload_conservation () =
  let crash, src, _ =
    crash_gateway ~mtbf:1.0 ~restart_delay:0.5 ~rate_pps:200.0 ~horizon:30.0
      ~seed:12
  in
  let offered = Netsim.Traffic_gen.generated src in
  let accounted =
    Faults.Crash.payload_sent crash
    + Faults.Crash.payload_dropped crash
    + Faults.Crash.payload_lost crash
    + Faults.Crash.queue_length crash
  in
  Alcotest.(check int) "offered fully accounted" offered accounted;
  Alcotest.(check bool) "crash losses observed" true
    (Faults.Crash.payload_lost crash > 0)

let test_crash_never_with_infinite_mtbf () =
  (* With mtbf = infinity the wrapper must be byte-identical to a plain
     gateway driven by the same RNG. *)
  let run_wrapped wrap =
    let sim = Desim.Sim.create () in
    let rng = Prng.Rng.create ~seed:13 in
    let emissions = ref [] in
    let dest _ = emissions := Desim.Sim.now sim :: !emissions in
    let timer = Padding.Timer.Normal { mean = 0.01; sigma = 1e-3 } in
    let jitter = Padding.Jitter.mechanistic () in
    let stop =
      if wrap then begin
        let c =
          Faults.Crash.create sim ~rng
            ~failure_rng:(Prng.Rng.create ~seed:999) ~timer ~jitter
            ~mtbf:infinity ~restart_delay:1.0 ~dest ()
        in
        fun () -> Faults.Crash.stop c
      end
      else begin
        let g = Padding.Gateway.create sim ~rng ~timer ~jitter ~dest () in
        fun () -> Padding.Gateway.stop g
      end
    in
    Desim.Sim.run_until sim ~time:5.0;
    stop ();
    List.rev !emissions
  in
  let a = run_wrapped true and b = run_wrapped false in
  Alcotest.(check int) "same emission count" (List.length b) (List.length a);
  List.iter2 (fun x y -> Alcotest.(check (float 0.0)) "same instant" y x) a b

let test_crash_stop_silences () =
  let crash, _, _ =
    crash_gateway ~mtbf:2.0 ~restart_delay:1.0 ~rate_pps:20.0 ~horizon:10.0
      ~seed:14
  in
  let fires_before = Faults.Crash.fires crash in
  Faults.Crash.stop crash;
  Alcotest.(check int) "fires frozen after stop" fires_before
    (Faults.Crash.fires crash)

(* --- Gap-aware adversary --- *)

let test_gaps_fold_collapses_holes () =
  let tau = 0.01 in
  let piats = [| 0.0101; 0.0202; 0.0099; 0.0298; 0.0404; 0.0001 |] in
  let folded = Adversary.Gaps.fold ~tau piats in
  (* The 0.0001 duplicate echo (k = 0) is discarded. *)
  Alcotest.(check int) "k=0 dropped" 5 (Array.length folded);
  Array.iter
    (fun x ->
      if x < 0.009 || x > 0.011 then
        Alcotest.failf "folded PIAT %.5f not near one period" x)
    folded;
  Alcotest.(check (float 1e-9)) "gap fraction" (4.0 /. 6.0)
    (Adversary.Gaps.gap_fraction ~tau piats)

let test_gaps_windowed_features () =
  let tau = 0.01 in
  let rng = Prng.Rng.create ~seed:15 in
  let piats =
    Array.init 1_000 (fun _ ->
        let base = Prng.Sampler.normal rng ~mu:tau ~sigma:1e-5 in
        if Prng.Rng.float rng < 0.1 then base +. tau else base)
  in
  let feats = Adversary.Gaps.windowed_features ~tau ~sample_size:250 piats in
  Alcotest.(check int) "window count" 4 (Array.length feats);
  Array.iter
    (fun v ->
      (* Folding removes the tau^2-scale gap contribution entirely. *)
      if v > 1e-8 then Alcotest.failf "folded variance %.3e still gap-ridden" v)
    feats

(* --- Degradation scenario: the two headline regressions --- *)

let baseline_scores ~seed ~piats ~sample_size =
  let base = { Scenarios.System.default_config with Scenarios.System.seed } in
  let low =
    Scenarios.System.run
      { base with Scenarios.System.seed = (seed * 2) + 1 }
      ~piats
  in
  let high =
    Scenarios.System.run
      {
        base with
        Scenarios.System.seed = (seed * 2) + 2;
        Scenarios.System.payload_rate_pps = 40.0;
      }
      ~piats
  in
  let classes =
    [| ("low", low.Scenarios.System.piats); ("high", high.Scenarios.System.piats) |]
  in
  let results =
    Adversary.Detection.estimate_features
      ~features:Adversary.Feature.standard_set ~reference:0.01 ~sample_size
      ~classes ()
  in
  let overhead =
    (low.Scenarios.System.overhead +. high.Scenarios.System.overhead) /. 2.0
  in
  (overhead, results)

let test_degradation_zero_faults_matches_baseline () =
  let piats = 4_000 and sample_size = 200 in
  let seed = 4_240 in
  let point =
    Scenarios.Degradation.evaluate ~piats ~sample_size ~seed
      ~profile:Scenarios.Degradation.fault_free ~intensity:0.0 ()
  in
  (* No fault ever fired... *)
  Alcotest.(check int) "no wire loss" 0 point.Scenarios.Degradation.lost_wire;
  Alcotest.(check int) "no downtime loss" 0 point.Scenarios.Degradation.lost_down;
  Alcotest.(check int) "no crashes" 0 point.Scenarios.Degradation.crashes;
  Alcotest.(check (float 1e-9)) "no downtime" 0.0
    point.Scenarios.Degradation.downtime;
  Alcotest.(check bool) "everything delivered" true
    (point.Scenarios.Degradation.delivered_frac > 0.99);
  (* ...and security matches the fault-free system within noise. *)
  let sys_overhead, sys_results = baseline_scores ~seed ~piats ~sample_size in
  let sys_var =
    match
      List.find_opt
        (fun r ->
          r.Adversary.Detection.feature = Adversary.Feature.Sample_variance)
        sys_results
    with
    | Some r -> r.Adversary.Detection.detection_rate
    | None -> Alcotest.fail "no variance result"
  in
  let dv = point.Scenarios.Degradation.v_variance in
  if Float.abs (dv -. sys_var) > 0.2 then
    Alcotest.failf "zero-fault variance detection %.3f vs baseline %.3f" dv
      sys_var;
  Alcotest.(check bool) "variance adversary strong in both" true
    (dv >= 0.75 && sys_var >= 0.75);
  Alcotest.(check bool) "gap-aware = naive when there are no gaps" true
    (Float.abs
       (point.Scenarios.Degradation.v_gap
       -. Float.max dv
            (Float.max point.Scenarios.Degradation.v_mean
               point.Scenarios.Degradation.v_entropy))
    <= 0.2);
  let ovh = point.Scenarios.Degradation.overhead in
  if Float.abs (ovh -. sys_overhead) > 0.1 then
    Alcotest.failf "overhead %.3f far from baseline %.3f" ovh sys_overhead

let test_degradation_loss_leaks_to_gap_aware_adversary () =
  let piats = 6_000 and sample_size = 200 in
  let profile =
    {
      Scenarios.Degradation.fault_free with
      Scenarios.Degradation.loss = Faults.Lossy.Bernoulli 0.12;
    }
  in
  let p =
    Scenarios.Degradation.evaluate ~piats ~sample_size ~seed:4_242 ~profile
      ~intensity:0.12 ()
  in
  Alcotest.(check bool) "wire actually lossy" true
    (p.Scenarios.Degradation.lost_wire > 500);
  Alcotest.(check bool) "gaps observed at the tap" true
    (p.Scenarios.Degradation.gap_fraction > 0.05);
  (* The naive classifiers degrade; the gap-aware adversary does not. *)
  let v_gap = p.Scenarios.Degradation.v_gap in
  Alcotest.(check bool) "gap-aware adversary still detects" true (v_gap >= 0.8);
  List.iter
    (fun (name, v) ->
      if not (v_gap > v) then
        Alcotest.failf "gap-aware %.3f does not exceed %s baseline %.3f" v_gap
          name v)
    [
      ("mean", p.Scenarios.Degradation.v_mean);
      ("variance", p.Scenarios.Degradation.v_variance);
      ("entropy", p.Scenarios.Degradation.v_entropy);
    ]

let test_degradation_profile_validation () =
  Alcotest.check_raises "intensity > 1"
    (Invalid_argument
       "Degradation.profile_of_intensity: intensity outside [0, 1]")
    (fun () -> ignore (Scenarios.Degradation.profile_of_intensity 1.5));
  Alcotest.(check bool) "zero intensity is the fault-free profile" true
    (Scenarios.Degradation.profile_of_intensity 0.0
    = Scenarios.Degradation.fault_free)

let suite =
  [
    Alcotest.test_case "lossy validation" `Quick test_lossy_validation;
    Alcotest.test_case "bernoulli loss rate" `Quick test_lossy_bernoulli_rate;
    Alcotest.test_case "gilbert-elliott bursty" `Quick
      test_lossy_gilbert_elliott_bursty;
    Alcotest.test_case "duplication" `Quick test_lossy_duplication;
    Alcotest.test_case "bounded reordering" `Quick test_lossy_bounded_reordering;
    Alcotest.test_case "outage window" `Quick test_outage_scheduled_window;
    Alcotest.test_case "outage flapping" `Quick test_outage_flapping_fraction;
    Alcotest.test_case "clock ideal identity" `Quick test_clock_ideal_identity;
    Alcotest.test_case "clock drift" `Quick test_clock_drift_scales_mean;
    Alcotest.test_case "clock miss+coalesce" `Quick
      test_clock_missed_fires_coalesce;
    Alcotest.test_case "clock catch-up bursts" `Quick test_clock_catchup_bursts;
    Alcotest.test_case "clock validation" `Quick test_clock_validation;
    Alcotest.test_case "crash holes + recovery" `Quick
      test_crash_punches_holes_and_recovers;
    Alcotest.test_case "crash payload conservation" `Quick
      test_crash_payload_conservation;
    Alcotest.test_case "crash mtbf=inf inert" `Quick
      test_crash_never_with_infinite_mtbf;
    Alcotest.test_case "crash stop" `Quick test_crash_stop_silences;
    Alcotest.test_case "gaps fold" `Quick test_gaps_fold_collapses_holes;
    Alcotest.test_case "gaps windowed features" `Quick
      test_gaps_windowed_features;
    Alcotest.test_case "degradation: zero faults = baseline" `Quick
      test_degradation_zero_faults_matches_baseline;
    Alcotest.test_case "degradation: loss leaks via gaps" `Quick
      test_degradation_loss_leaks_to_gap_aware_adversary;
    Alcotest.test_case "degradation: profile validation" `Quick
      test_degradation_profile_validation;
  ]
