(* Golden test for the ta-trace/1 JSONL sink plus cross-checks tying the
   Obs counters to the numbers the scenarios publish themselves.

   The golden run is a tiny fixed-seed Fig 4(b): with tracing enabled it
   must produce a file where every line parses against the ta-trace/1
   schema, where the tap events reconcile exactly with the tap counters,
   and whose bytes are identical at [--jobs 1] and [--jobs 2]. *)

let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let with_jobs jobs f =
  Exec.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_default_jobs 1) f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

(* The golden run must start from a clean slate: stale metrics would
   break the event/counter reconciliation. *)
let fresh_state () =
  Obs.Metrics.reset ();
  Obs.Span.reset ()

let traced_fig4b ~jobs path =
  fresh_state ();
  with_jobs jobs (fun () ->
      Obs.Trace.enable ~path;
      Fun.protect
        ~finally:(fun () -> Obs.Trace.disable ())
        (fun () ->
          ignore
            (Scenarios.Fig4b.run ~scale:0.05 ~seed:7 ~sample_sizes:[ 10; 20 ]
               null_fmt
              : Scenarios.Fig4b.t);
          Obs.Trace.flush ()));
  Obs.Metrics.snapshot ()

let parse_line line =
  match Obs.Json.of_string line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable trace line %S: %s" line e

let test_trace_golden () =
  let path1 = Filename.temp_file "ta_trace_j1" ".jsonl" in
  let path2 = Filename.temp_file "ta_trace_j2" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path1;
      Sys.remove path2)
    (fun () ->
      let snap = traced_fig4b ~jobs:1 path1 in
      ignore (traced_fig4b ~jobs:2 path2 : Obs.Metrics.Snapshot.t);
      (* Byte identity across worker counts. *)
      Alcotest.(check bool)
        "trace bytes identical at --jobs 1 and --jobs 2" true
        (read_file path1 = read_file path2);
      (* The sink's own validator accepts the file. *)
      (match Obs.Trace.validate_file path1 with
      | Ok { events; runs } ->
          Alcotest.(check bool) "trace has events" true (events > 0);
          (* One simulated run per payload-rate class. *)
          Alcotest.(check int) "one run per class" 2 runs
      | Error e -> Alcotest.failf "validate_file rejected golden trace: %s" e);
      (* Independent per-line check of the schema, not trusting the
         validator: header first, then run/t/ev typed on every event. *)
      let lines =
        String.split_on_char '\n' (read_file path1)
        |> List.filter (fun l -> l <> "")
      in
      (match lines with
      | header :: _ ->
          (match parse_line header with
          | Obs.Json.Obj [ ("schema", Obs.Json.Str "ta-trace/1") ] -> ()
          | _ -> Alcotest.failf "bad header line %S" header)
      | [] -> Alcotest.fail "empty trace file");
      let payload_evs = ref 0 and dummy_evs = ref 0 and tap_evs = ref 0 in
      List.iteri
        (fun i line ->
          if i > 0 then begin
            let v = parse_line line in
            (match Obs.Json.member "run" v with
            | Some (Obs.Json.Str _) -> ()
            | _ -> Alcotest.failf "line %d: missing/untyped \"run\"" i);
            (match Obs.Json.member "t" v with
            | Some (Obs.Json.Num t) when Float.is_finite t && t >= 0.0 -> ()
            | _ -> Alcotest.failf "line %d: bad \"t\"" i);
            match Obs.Json.member "ev" v with
            | Some (Obs.Json.Str ev) ->
                if not (List.mem ev Obs.Trace.known_events) then
                  Alcotest.failf "line %d: unknown event %S" i ev;
                if ev = "tap.observe" then begin
                  incr tap_evs;
                  match Obs.Json.member "kind" v with
                  | Some (Obs.Json.Str "payload") -> incr payload_evs
                  | Some (Obs.Json.Str "dummy") -> incr dummy_evs
                  | _ -> Alcotest.failf "line %d: tap.observe without kind" i
                end
            | _ -> Alcotest.failf "line %d: missing/untyped \"ev\"" i
          end)
        lines;
      (* Reconcile events against the counters from the same run: every
         tap observation emitted exactly one event, so dummy + payload
         event counts equal the tap packet counters. *)
      let c name = Obs.Metrics.Snapshot.counter_value snap name in
      Alcotest.(check int)
        "tap.observe events == netsim.tap.observed"
        (c "netsim.tap.observed") !tap_evs;
      Alcotest.(check int)
        "payload events == netsim.tap.payload"
        (c "netsim.tap.payload") !payload_evs;
      Alcotest.(check int)
        "dummy events == netsim.tap.dummy"
        (c "netsim.tap.dummy") !dummy_evs;
      Alcotest.(check int)
        "payload + dummy == observed"
        !tap_evs (!payload_evs + !dummy_evs))

(* Cross-check: the Obs gateway counters must reproduce the overhead the
   scenario reports (same increment sites), and both must sit close to
   the analytic 1 - rho of Padding.Qos. *)
let test_counters_vs_system_overhead () =
  fresh_state ();
  let cfg = Scenarios.System.default_config in
  let res = Scenarios.System.run cfg ~piats:800 in
  let snap = Obs.Metrics.snapshot () in
  let payload =
    Obs.Metrics.Snapshot.counter_value snap "padding.gateway.payload_sent"
  in
  let dummy =
    Obs.Metrics.Snapshot.counter_value snap "padding.gateway.dummy_sent"
  in
  Alcotest.(check bool) "gateway sent packets" true (payload + dummy > 0);
  let counter_overhead =
    float_of_int dummy /. float_of_int (payload + dummy)
  in
  Alcotest.(check (float 1e-12))
    "counter-derived overhead == scenario overhead" res.overhead
    counter_overhead;
  let timer_mean = Padding.Timer.mean cfg.timer in
  let analytic =
    Padding.Qos.overhead ~payload_rate_pps:cfg.payload_rate_pps ~timer_mean
  in
  Alcotest.(check bool)
    (Printf.sprintf "counter overhead %.4f within 0.03 of analytic %.4f"
       counter_overhead analytic)
    true
    (Float.abs (counter_overhead -. analytic) <= 0.03);
  (* The tap sits right at the gateway output: it can only miss packets
     still in flight when the run stops. *)
  let observed = Obs.Metrics.Snapshot.counter_value snap "netsim.tap.observed" in
  Alcotest.(check bool)
    "tap observed at most what the gateway sent" true
    (observed <= payload + dummy);
  Alcotest.(check bool)
    (Printf.sprintf "in-flight gap small (sent %d, observed %d)"
       (payload + dummy) observed)
    true
    (payload + dummy - observed <= 64)

(* Cross-check: the tap counters account for every PIAT the adversary
   scores — Detection.result's per-class sample counts derive from the
   same packet stream the Obs layer counted. *)
let test_counters_vs_detection_counts () =
  fresh_state ();
  let cfg = Scenarios.System.default_config in
  let low = Scenarios.System.run { cfg with payload_rate_pps = 5.0 } ~piats:400 in
  let high =
    Scenarios.System.run
      { cfg with payload_rate_pps = 15.0; seed = cfg.seed + 1 }
      ~piats:400
  in
  let snap = Obs.Metrics.snapshot () in
  let observed = Obs.Metrics.Snapshot.counter_value snap "netsim.tap.observed" in
  (* Each run observes warmup + piats + 1 packets to yield piats
     inter-arrival gaps past the warm-up; the counter covers both runs. *)
  let piats_total = Array.length low.piats + Array.length high.piats in
  Alcotest.(check bool)
    (Printf.sprintf "tap counter %d covers the %d scored PIATs" observed
       piats_total)
    true
    (observed >= piats_total + (2 * cfg.warmup_piats));
  let sample_size = 40 in
  let r =
    Adversary.Detection.estimate ~feature:Adversary.Feature.Sample_variance
      ~reference:(Padding.Timer.mean cfg.timer) ~sample_size
      ~classes:[| ("low", low.piats); ("high", high.piats) |]
      ()
  in
  Array.iteri
    (fun i trace ->
      let windows = Array.length trace / sample_size in
      Alcotest.(check int)
        (Printf.sprintf "class %d: train + test halves cover every window" i)
        windows
        (r.Adversary.Detection.n_train_per_class.(i)
        + r.Adversary.Detection.n_test_per_class.(i)))
    [| low.piats; high.piats |]

(* Satellite bugfix lock-down: a blacked-out channel raises Tap_starved
   (carrying the metrics snapshot) instead of a bare failwith. *)
let test_tap_starved_exception () =
  fresh_state ();
  let cfg =
    {
      Scenarios.Degradation.default_config with
      seed = 5;
      profile = Scenarios.Degradation.profile_of_intensity 1.0;
    }
  in
  match Scenarios.Degradation.run_faulty cfg ~piats:200 with
  | (_ : Scenarios.Degradation.run_result) ->
      Alcotest.fail "blackout run should starve the tap"
  | exception
      Scenarios.Starvation.Tap_starved { scenario; target; observed; metrics; _ }
    ->
      Alcotest.(check string) "scenario label" "degradation.run" scenario;
      Alcotest.(check bool) "observed short of target" true (observed < target);
      Alcotest.(check bool)
        "snapshot shows the gateway was alive" true
        (Obs.Metrics.Snapshot.counter_value metrics "padding.gateway.fires" > 0);
      (* The report printer accepts the exception... *)
      let buf = Buffer.create 256 in
      let ppf = Format.formatter_of_buffer buf in
      Alcotest.(check bool)
        "pp_starved handles Tap_starved" true
        (Scenarios.Starvation.pp_starved ppf
           (Scenarios.Starvation.Tap_starved
              { scenario; target; observed; sim_time = 0.0; metrics }));
      Format.pp_print_flush ppf ();
      Alcotest.(check bool)
        "report names the starved scenario" true
        (contains (Buffer.contents buf) "tap starved in degradation.run");
      (* ... and rejects anything else. *)
      Alcotest.(check bool)
        "pp_starved ignores other exceptions" false
        (Scenarios.Starvation.pp_starved ppf Not_found)

(* End-to-end CLI behaviour of the same failure.  Under the supervised
   default the starved point becomes an annotated partial result (exit
   4); --strict restores the historical abort with the starvation report
   (exit 3).  Neither path may leak a raw backtrace. *)
let test_cli_starvation_exit () =
  (* cwd is _build/default/test under [dune runtest] but the project root
     under [dune exec test/test_main.exe]; accept either. *)
  let candidates = [ "../bin/ta_lab.exe"; "_build/default/bin/ta_lab.exe" ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.skip ()
  | Some exe ->
      let out = Filename.temp_file "ta_lab_starved" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out)
        (fun () ->
          let code =
            Sys.command
              (Printf.sprintf "%s faults --scale 0.05 --intensities 1 >%s 2>&1"
                 (Filename.quote exe) (Filename.quote out))
          in
          Alcotest.(check int) "starved run exits 4 (partial results)" 4 code;
          let report = read_file out in
          Alcotest.(check bool)
            "output explains the starvation" true
            (contains report "tap starved");
          Alcotest.(check bool)
            "partial-results notice on stderr" true
            (contains report "partial results");
          Alcotest.(check bool)
            "no raw backtrace" false
            (contains report "Raised at" || contains report "Fatal error");
          let code_strict =
            Sys.command
              (Printf.sprintf
                 "%s faults --scale 0.05 --intensities 1 --strict >%s 2>&1"
                 (Filename.quote exe) (Filename.quote out))
          in
          Alcotest.(check int) "--strict keeps the exit-3 contract" 3
            code_strict;
          let report = read_file out in
          Alcotest.(check bool)
            "strict stderr explains the starvation" true
            (contains report "tap starved");
          Alcotest.(check bool)
            "metrics snapshot included" true
            (contains report "padding.gateway.fires");
          Alcotest.(check bool)
            "strict: no raw backtrace" false
            (contains report "Raised at" || contains report "Fatal error"))

let suite =
  [
    Alcotest.test_case "fig4b trace: schema + jobs byte-identity" `Quick
      test_trace_golden;
    Alcotest.test_case "counters reconcile with system overhead" `Quick
      test_counters_vs_system_overhead;
    Alcotest.test_case "counters reconcile with detection counts" `Quick
      test_counters_vs_detection_counts;
    Alcotest.test_case "blackout raises Tap_starved with snapshot" `Quick
      test_tap_starved_exception;
    Alcotest.test_case "ta_lab starvation: exit 4 contained, 3 strict" `Quick
      test_cli_starvation_exit;
  ]
