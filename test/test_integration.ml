(* End-to-end integration: the assembled system, trace collection,
   scenario runners at tiny scale, and the Linkpad facade.  Shape
   assertions mirror the paper's qualitative claims. *)

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- System --- *)

let test_system_run_counts () =
  let res = Scenarios.System.run Scenarios.System.default_config ~piats:500 in
  Alcotest.(check int) "exactly requested piats" 500
    (Array.length res.Scenarios.System.piats);
  Alcotest.(check bool) "positive piats" true
    (Array.for_all (fun x -> x > 0.0) res.Scenarios.System.piats);
  Alcotest.(check bool) "sim time sensible (~7s)" true
    (res.Scenarios.System.sim_time > 5.0 && res.Scenarios.System.sim_time < 60.0)

let test_system_deterministic_in_seed () =
  let a = Scenarios.System.run Scenarios.System.default_config ~piats:300 in
  let b = Scenarios.System.run Scenarios.System.default_config ~piats:300 in
  Alcotest.(check (array (float 0.0))) "same seed same trace"
    a.Scenarios.System.piats b.Scenarios.System.piats;
  let c =
    Scenarios.System.run
      { Scenarios.System.default_config with Scenarios.System.seed = 43 }
      ~piats:300
  in
  Alcotest.(check bool) "different seed differs" true
    (a.Scenarios.System.piats <> c.Scenarios.System.piats)

let test_system_piat_mean_is_tau () =
  let res = Scenarios.System.run Scenarios.System.default_config ~piats:5000 in
  close ~tol:1e-3 "mean PIAT = 10ms" 0.010
    (Stats.Descriptive.mean res.Scenarios.System.piats)

let test_system_overhead_tracks_rate () =
  let run rate =
    Scenarios.System.run
      { Scenarios.System.default_config with Scenarios.System.payload_rate_pps = rate }
      ~piats:3000
  in
  let low = run 10.0 and high = run 40.0 in
  close ~tol:0.05 "low-rate overhead ~0.9" 0.9 low.Scenarios.System.overhead;
  close ~tol:0.05 "high-rate overhead ~0.6" 0.6 high.Scenarios.System.overhead

let test_system_payload_delivery () =
  let res = Scenarios.System.run Scenarios.System.default_config ~piats:3000 in
  (* Nearly all offered payload should reach the receiver (queue drains). *)
  Alcotest.(check bool) "delivery" true
    (res.Scenarios.System.payload_delivered
     > (res.Scenarios.System.payload_offered * 9 / 10));
  Alcotest.(check bool) "latency positive and bounded" true
    (res.Scenarios.System.mean_payload_latency > 0.0
    && res.Scenarios.System.mean_payload_latency < 1.0)

let test_system_unpadded_rate () =
  let res =
    Scenarios.System.run_unpadded Scenarios.System.default_config ~packets:2000
  in
  (* Unpadded: PIAT mean ~ 1/rate = 0.1 s. *)
  close ~tol:0.05 "unpadded mean PIAT" 0.1
    (Stats.Descriptive.mean res.Scenarios.System.piats)

let test_system_adaptive_runs () =
  let res =
    Scenarios.System.run_adaptive Scenarios.System.default_config ~piats:1000
  in
  Alcotest.(check int) "piats collected" 1000
    (Array.length res.Scenarios.System.piats);
  Alcotest.(check bool) "overhead below CIT's 0.9" true
    (res.Scenarios.System.overhead < 0.85)

let test_system_invalid () =
  Alcotest.check_raises "piats < 1" (Invalid_argument "System.run: piats < 1")
    (fun () ->
      ignore (Scenarios.System.run Scenarios.System.default_config ~piats:0))

(* --- Workload --- *)

let test_workload_pair_r_hat () =
  let traces =
    Scenarios.Workload.collect_pair ~base:Scenarios.System.default_config
      ~piats:8000
  in
  Alcotest.(check bool) "r_hat in the calibrated band" true
    (traces.Scenarios.Workload.r_hat > 1.3 && traces.Scenarios.Workload.r_hat < 2.8)

let test_workload_score_sanity () =
  let traces =
    Scenarios.Workload.collect_pair ~base:Scenarios.System.default_config
      ~piats:(200 * 40)
  in
  let scores =
    Scenarios.Workload.score traces ~features:Adversary.Feature.standard_set
      ~sample_size:200
  in
  Alcotest.(check int) "three features" 3 (List.length scores);
  List.iter
    (fun (s : Scenarios.Workload.scored) ->
      Alcotest.(check bool) "empirical in [0,1]" true
        (s.Scenarios.Workload.empirical >= 0.0 && s.Scenarios.Workload.empirical <= 1.0);
      Alcotest.(check bool) "theory in [0.5,1]" true
        (s.Scenarios.Workload.theory >= 0.5 && s.Scenarios.Workload.theory <= 1.0))
    scores

(* --- The paper's central claims at reduced scale --- *)

let test_cit_leaks_through_variance_and_entropy () =
  let traces =
    Scenarios.Workload.collect_pair ~base:Scenarios.System.default_config
      ~piats:(500 * 40)
  in
  let scores =
    Scenarios.Workload.score traces ~features:Adversary.Feature.standard_set
      ~sample_size:500
  in
  List.iter
    (fun (s : Scenarios.Workload.scored) ->
      match s.Scenarios.Workload.feature with
      | Adversary.Feature.Sample_mean ->
          Alcotest.(check bool) "mean weak" true (s.Scenarios.Workload.empirical < 0.8)
      | Adversary.Feature.Sample_variance | Adversary.Feature.Sample_entropy _ ->
          Alcotest.(check bool)
            (Adversary.Feature.name s.Scenarios.Workload.feature ^ " strong")
            true
            (s.Scenarios.Workload.empirical > 0.9))
    scores

let test_vit_restores_secrecy () =
  let base =
    {
      Scenarios.System.default_config with
      Scenarios.System.timer =
        Padding.Timer.Normal { mean = Scenarios.Calibration.timer_mean; sigma = 50e-6 };
    }
  in
  let traces = Scenarios.Workload.collect_pair ~base ~piats:(500 * 40) in
  let scores =
    Scenarios.Workload.score traces ~features:Adversary.Feature.standard_set
      ~sample_size:500
  in
  List.iter
    (fun (s : Scenarios.Workload.scored) ->
      Alcotest.(check bool)
        (Adversary.Feature.name s.Scenarios.Workload.feature ^ " near floor")
        true
        (s.Scenarios.Workload.empirical < 0.75))
    scores

let test_detection_grows_with_sample_size () =
  let traces =
    Scenarios.Workload.collect_pair ~base:Scenarios.System.default_config
      ~piats:(800 * 40)
  in
  let v n =
    match
      Scenarios.Workload.score traces
        ~features:[ Adversary.Feature.Sample_variance ] ~sample_size:n
    with
    | [ s ] -> s.Scenarios.Workload.empirical
    | _ -> assert false
  in
  Alcotest.(check bool) "v(800) > v(50) - slack" true (v 800 > v 50 -. 0.05);
  Alcotest.(check bool) "v(800) nearly 1" true (v 800 > 0.85)

let test_cross_traffic_lowers_r () =
  let with_util utilization =
    let hops =
      if utilization = 0.0 then [||]
      else [| Scenarios.Fig6.hop_for_utilization ~utilization ~burst:`Poisson |]
    in
    let base =
      {
        Scenarios.System.default_config with
        Scenarios.System.hops;
        tap_position = Array.length hops;
      }
    in
    (Scenarios.Workload.collect_pair ~base ~piats:6000).Scenarios.Workload.r_hat
  in
  let r0 = with_util 0.0 and r3 = with_util 0.3 in
  Alcotest.(check bool) "cross traffic drives r down" true (r3 < r0 -. 0.2)

(* --- Figure runners at tiny scale (smoke + shape) --- *)

let test_fig4a_shape () =
  let t = Scenarios.Fig4a.run ~scale:0.08 ~seed:91_001 null_fmt in
  close ~tol:2e-4 "means equal (low)" Scenarios.Calibration.timer_mean
    t.Scenarios.Fig4a.low.Scenarios.Fig4a.mean;
  close ~tol:2e-4 "means equal (high)" Scenarios.Calibration.timer_mean
    t.Scenarios.Fig4a.high.Scenarios.Fig4a.mean;
  Alcotest.(check bool) "sigma_h > sigma_l" true
    (t.Scenarios.Fig4a.high.Scenarios.Fig4a.std
    > t.Scenarios.Fig4a.low.Scenarios.Fig4a.std);
  Alcotest.(check bool) "r > 1" true (t.Scenarios.Fig4a.r_hat > 1.0);
  Alcotest.(check bool) "density grid populated" true
    (Array.length t.Scenarios.Fig4a.density_grid > 0)

let test_fig4b_shape () =
  let t =
    Scenarios.Fig4b.run ~scale:0.15 ~seed:91_002 ~sample_sizes:[ 50; 400 ]
      null_fmt
  in
  let find n feature =
    List.find
      (fun (s : Scenarios.Workload.scored) ->
        s.Scenarios.Workload.sample_size = n
        && Adversary.Feature.name s.Scenarios.Workload.feature = feature)
      t.Scenarios.Fig4b.rows
  in
  let v400 = (find 400 "variance").Scenarios.Workload.empirical in
  Alcotest.(check bool) "variance strong at n=400" true (v400 > 0.8);
  let m400 = (find 400 "mean").Scenarios.Workload.empirical in
  Alcotest.(check bool) "mean weak" true (m400 < 0.85)

let test_fig5b_monotone () =
  let t = Scenarios.Fig5b.run ~seed:91_003 null_fmt in
  let ns =
    List.map (fun p -> p.Scenarios.Fig5b.n_variance) t.Scenarios.Fig5b.points
  in
  let rec is_increasing = function
    | a :: (b :: _ as rest) -> a <= b && is_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "n(99%) increasing in sigma_T" true (is_increasing ns);
  let last = List.nth t.Scenarios.Fig5b.points (List.length t.Scenarios.Fig5b.points - 1) in
  Alcotest.(check bool) "headline: n > 1e11 at 1ms" true
    (last.Scenarios.Fig5b.n_variance > 1e11)

let test_multirate_shape () =
  let t = Scenarios.Multirate.run ~scale:0.2 ~seed:91_004 ~sample_size:400 null_fmt in
  let var_rate =
    List.assoc Adversary.Feature.Sample_variance t.Scenarios.Multirate.results
  in
  Alcotest.(check bool) "better than 4-ary chance" true (var_rate > 0.3);
  let m = Array.length t.Scenarios.Multirate.confusion in
  Alcotest.(check int) "confusion is m x m" 4 m;
  (* Diagonal should dominate off-diagonal on average for variance. *)
  let diag = ref 0 and total = ref 0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j c ->
          total := !total + c;
          if i = j then diag := !diag + c)
        row)
    t.Scenarios.Multirate.confusion;
  Alcotest.(check bool) "diagonal mass above chance" true
    (float_of_int !diag /. float_of_int !total > 0.3)

(* --- Ablation runners (cheap paths; the heavy ones run in bench) --- *)

let test_bounds_table_runs () =
  (* Pure analytics; also re-checks the sandwich property via its rows. *)
  Scenarios.Ablations_ext.run_bounds_table null_fmt

let test_qos_table_close_to_theory () =
  let rows = Scenarios.Ablations_ext.run_qos_table ~seed:92_001 null_fmt in
  Alcotest.(check int) "five sweep points" 5 (List.length rows);
  List.iter
    (fun (rate, analytic, simulated) ->
      let ratio = simulated /. analytic in
      if ratio < 0.8 || ratio > 1.2 then
        Alcotest.failf "timer %.0f pps: simulated/analytic = %.3f" rate ratio)
    rows

let test_size_padding_ablation_shape () =
  let rows = Scenarios.Ablations_ext.run_size_padding ~seed:92_002 null_fmt in
  List.iter
    (fun (config, feature, v) ->
      match config with
      | "unpadded sizes" ->
          Alcotest.(check bool) (feature ^ " leaks") true (v > 0.9)
      | _ -> Alcotest.(check bool) (feature ^ " sealed") true (v < 0.8))
    rows

(* --- Table --- *)

let test_table_rendering_and_csv () =
  let t = Scenarios.Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Scenarios.Table.add_row t [ "1"; "x,y" ];
  Scenarios.Table.add_row t [ "2"; "z\"q" ];
  let csv = Scenarios.Table.to_csv t in
  Alcotest.(check bool) "quotes comma cell" true
    (String.length csv > 0
    &&
    let lines = String.split_on_char '\n' csv in
    List.exists (fun l -> l = "1,\"x,y\"") lines
    && List.exists (fun l -> l = "2,\"z\"\"q\"") lines);
  Alcotest.check_raises "width" (Invalid_argument "Table.add_row: width mismatch")
    (fun () -> Scenarios.Table.add_row t [ "only one" ])

let test_diurnal_profile () =
  close "activity min at 4am" 0.0 (Scenarios.Diurnal.activity ~hour:4.0);
  close "activity max at 16h" 1.0 (Scenarios.Diurnal.activity ~hour:16.0);
  close "wraps" (Scenarios.Diurnal.activity ~hour:1.0)
    (Scenarios.Diurnal.activity ~hour:25.0);
  Alcotest.(check bool) "wan heavier than campus" true
    (Scenarios.Diurnal.wan_congested_utilization ~hour:12.0
    > Scenarios.Diurnal.campus_utilization ~hour:12.0);
  Alcotest.(check bool) "utilizations in (0,1)" true
    (List.for_all
       (fun h ->
         let u = Scenarios.Diurnal.wan_congested_utilization ~hour:h in
         u > 0.0 && u < 1.0)
       [ 0.; 4.; 8.; 12.; 16.; 20. ])

(* --- Linkpad facade --- *)

let test_linkpad_cit_report () =
  let report =
    Linkpad.evaluate
      {
        Linkpad.default_spec with
        Linkpad.sample_size = 400;
        windows_per_class = 12;
        seed = 91_005;
      }
  in
  Alcotest.(check int) "three features" 3 (List.length report.Linkpad.features);
  Alcotest.(check bool) "CIT leaks" true (report.Linkpad.worst_detection > 0.8);
  Alcotest.(check bool) "r_hat > 1" true (report.Linkpad.r_hat > 1.0);
  close ~tol:0.05 "overhead" 0.9 report.Linkpad.overhead;
  (* pp_report doesn't raise *)
  Linkpad.pp_report null_fmt report

let test_linkpad_vit_report () =
  let report =
    Linkpad.evaluate
      {
        Linkpad.default_spec with
        Linkpad.padding = Linkpad.Vit { sigma_t = 100e-6 };
        sample_size = 400;
        windows_per_class = 12;
        seed = 91_006;
      }
  in
  Alcotest.(check bool) "VIT protects" true (report.Linkpad.worst_detection < 0.85);
  Alcotest.(check bool) "r_hat ~ 1" true (report.Linkpad.r_hat < 1.05)

let test_linkpad_invalid () =
  Alcotest.check_raises "vit sigma" (Invalid_argument "Linkpad: Vit sigma_t <= 0")
    (fun () ->
      ignore
        (Linkpad.evaluate
           {
             Linkpad.default_spec with
             Linkpad.padding = Linkpad.Vit { sigma_t = 0.0 };
             windows_per_class = 8;
           }))

let test_linkpad_recommend () =
  let sigma = Linkpad.recommend_sigma_t ~seed:91_007 ~v_max:0.55 ~n_max:10_000 () in
  Alcotest.(check bool) "positive recommendation" true (sigma > 0.0);
  let sigma_strict =
    Linkpad.recommend_sigma_t ~seed:91_007 ~v_max:0.51 ~n_max:10_000 ()
  in
  Alcotest.(check bool) "stricter budget -> larger sigma" true (sigma_strict > sigma)

(* --- fleet end-to-end --- *)

let test_fleet_median_matches_single_flow () =
  (* The fleet sweep's per-flow detection distribution and a plain
     single-flow windowed estimate measure the same underlying quantity
     (CIT at the calibration rates): the fleet median must sit near the
     single-flow detection rate at matched parameters, far above the 0.5
     guessing floor. *)
  let plan = Scenarios.Workload.window_plan ~sample_size:100 ~max_windows:16 () in
  let _pair, scored =
    Scenarios.Workload.collect_windowed ~base:Scenarios.System.default_config
      ~plan
      ~features:[ Adversary.Feature.Sample_variance ]
  in
  let single =
    match scored with
    | s :: _ -> s.Scenarios.Workload.empirical
    | [] -> Alcotest.fail "no scored feature"
  in
  let p =
    Scenarios.Fleet.evaluate ~sample_size:100 ~max_windows:16 ~seed:48_000
      ~flows:50 ~gateways:4 ~probes:5 ~duration:0.5 ()
  in
  Alcotest.(check int) "all probes ran" 5 (Array.length p.Scenarios.Fleet.vs);
  Alcotest.(check bool) "fleet median above the guessing floor" true
    (p.Scenarios.Fleet.v_p50 > 0.5);
  Alcotest.(check bool) "single-flow detection above the floor" true
    (single > 0.5);
  let gap = Float.abs (p.Scenarios.Fleet.v_p50 -. single) in
  if gap > 0.15 then
    Alcotest.failf
      "fleet median %.3f vs single-flow %.3f: gap %.3f exceeds 0.15"
      p.Scenarios.Fleet.v_p50 single gap;
  (* The pooled Wilson interval is a real interval containing the mean. *)
  Alcotest.(check bool) "wilson brackets the pooled mean" true
    (p.Scenarios.Fleet.wilson.Stats.Confidence.lo
     <= p.Scenarios.Fleet.wilson.Stats.Confidence.hi
    && p.Scenarios.Fleet.trials > 0)

let suite =
  [
    Alcotest.test_case "system run counts" `Quick test_system_run_counts;
    Alcotest.test_case "system deterministic" `Quick test_system_deterministic_in_seed;
    Alcotest.test_case "PIAT mean = tau" `Quick test_system_piat_mean_is_tau;
    Alcotest.test_case "overhead tracks rate" `Quick test_system_overhead_tracks_rate;
    Alcotest.test_case "payload delivery + QoS" `Quick test_system_payload_delivery;
    Alcotest.test_case "unpadded baseline rate" `Quick test_system_unpadded_rate;
    Alcotest.test_case "adaptive system runs" `Quick test_system_adaptive_runs;
    Alcotest.test_case "system invalid" `Quick test_system_invalid;
    Alcotest.test_case "workload r_hat band" `Quick test_workload_pair_r_hat;
    Alcotest.test_case "workload score sanity" `Quick test_workload_score_sanity;
    Alcotest.test_case "CLAIM: CIT leaks (var/entropy)" `Slow test_cit_leaks_through_variance_and_entropy;
    Alcotest.test_case "CLAIM: VIT restores secrecy" `Slow test_vit_restores_secrecy;
    Alcotest.test_case "CLAIM: detection grows with n" `Slow test_detection_grows_with_sample_size;
    Alcotest.test_case "CLAIM: cross traffic lowers r" `Slow test_cross_traffic_lowers_r;
    Alcotest.test_case "fig4a shape" `Slow test_fig4a_shape;
    Alcotest.test_case "fig4b shape" `Slow test_fig4b_shape;
    Alcotest.test_case "fig5b monotone + headline" `Quick test_fig5b_monotone;
    Alcotest.test_case "multirate shape" `Slow test_multirate_shape;
    Alcotest.test_case "fleet median = single-flow detection" `Slow
      test_fleet_median_matches_single_flow;
    Alcotest.test_case "bounds table runs" `Quick test_bounds_table_runs;
    Alcotest.test_case "qos table near theory" `Slow test_qos_table_close_to_theory;
    Alcotest.test_case "size-padding ablation shape" `Slow test_size_padding_ablation_shape;
    Alcotest.test_case "table render + csv" `Quick test_table_rendering_and_csv;
    Alcotest.test_case "diurnal profile" `Quick test_diurnal_profile;
    Alcotest.test_case "linkpad CIT report" `Slow test_linkpad_cit_report;
    Alcotest.test_case "linkpad VIT report" `Slow test_linkpad_vit_report;
    Alcotest.test_case "linkpad invalid" `Quick test_linkpad_invalid;
    Alcotest.test_case "linkpad recommend" `Quick test_linkpad_recommend;
  ]
