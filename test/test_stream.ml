(* Streaming windowed statistics and intra-run sharding: streaming-vs-batch
   equivalence at 1e-9, Wilson-CI early-stop determinism, and bit-identity
   of sharded collection at any worker count — including a checkpointed
   figure run killed mid-sweep and resumed at a different --jobs. *)

module Stream = Stats.Stream

let close ?(tol = 1e-9) name expected actual =
  let scale = Float.max 1.0 (Float.abs expected) in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.17g, got %.17g" name expected actual

let trace ~n ~seed =
  let rng = Prng.Rng.create ~seed in
  Array.init n (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma:3e-6)

let bin_width = Adversary.Feature.default_entropy_bin_width
let reference = 0.01

(* --- Moments: forward, inverse, merge vs the batch estimators --- *)

let test_moments_matches_descriptive () =
  let xs = trace ~n:777 ~seed:11 in
  let m = Stream.Moments.create () in
  Array.iter (Stream.Moments.add m) xs;
  Alcotest.(check int) "count" 777 (Stream.Moments.count m);
  close "mean" (Stats.Descriptive.mean xs) (Stream.Moments.mean m);
  close "variance" (Stats.Descriptive.variance xs) (Stream.Moments.variance m);
  close "std" (Stats.Descriptive.std xs) (Stream.Moments.std m)

let test_moments_remove () =
  (* Add 300, remove the first 100: aggregates must match a fresh pass
     over the surviving suffix. *)
  let xs = trace ~n:300 ~seed:12 in
  let m = Stream.Moments.create () in
  Array.iter (Stream.Moments.add m) xs;
  for i = 0 to 99 do
    Stream.Moments.remove m xs.(i)
  done;
  let tail = Array.sub xs 100 200 in
  Alcotest.(check int) "count after removal" 200 (Stream.Moments.count m);
  close "mean after removal" (Stats.Descriptive.mean tail)
    (Stream.Moments.mean m);
  close "variance after removal"
    (Stats.Descriptive.variance tail)
    (Stream.Moments.variance m);
  let empty = Stream.Moments.create () in
  Alcotest.check_raises "remove from empty raises"
    (Invalid_argument "Stream.Moments.remove: empty") (fun () ->
      Stream.Moments.remove empty 1.0)

let test_moments_merge () =
  let xs = trace ~n:500 ~seed:13 in
  let whole = Stream.Moments.create () in
  Array.iter (Stream.Moments.add whole) xs;
  (* Split into uneven shards, merge in order: same aggregate. *)
  let parts = [ (0, 123); (123, 77); (200, 300) ] in
  let merged =
    List.fold_left
      (fun acc (pos, len) ->
        let m = Stream.Moments.create () in
        for i = pos to pos + len - 1 do
          Stream.Moments.add m xs.(i)
        done;
        Stream.Moments.merge acc m)
      (Stream.Moments.create ()) parts
  in
  Alcotest.(check int) "merged count" (Stream.Moments.count whole)
    (Stream.Moments.count merged);
  close "merged mean" (Stream.Moments.mean whole) (Stream.Moments.mean merged);
  close "merged variance" (Stream.Moments.variance whole)
    (Stream.Moments.variance merged)

(* --- Hist: incremental entropy vs Entropy.of_sample --- *)

let test_hist_matches_entropy () =
  let xs = trace ~n:400 ~seed:14 in
  let h = Stream.Hist.create ~bin_width ~reference () in
  Array.iter (Stream.Hist.add h) xs;
  close "entropy after adds"
    (Stats.Entropy.of_sample ~bin_width ~reference xs)
    (Stream.Hist.entropy h);
  (* Evict a prefix: entropy must equal a fresh pass over the suffix. *)
  for i = 0 to 149 do
    Stream.Hist.remove h xs.(i)
  done;
  close "entropy after removals"
    (Stats.Entropy.of_sample ~bin_width ~reference (Array.sub xs 150 250))
    (Stream.Hist.entropy h)

(* --- Window: every slide position vs the batch extractors --- *)

let test_window_matches_batch () =
  let xs = trace ~n:600 ~seed:15 in
  let sample_size = 64 and stride = 7 in
  let w = Stream.Window.create ~capacity:sample_size ~bin_width ~reference () in
  let checked = ref 0 in
  Array.iteri
    (fun i x ->
      Stream.Window.push w x;
      if
        Stream.Window.is_full w
        && (i + 1 - sample_size) mod stride = 0
      then begin
        let pos = i + 1 - sample_size in
        incr checked;
        close
          (Printf.sprintf "mean@%d" pos)
          (Stats.Descriptive.mean_in xs ~pos ~len:sample_size)
          (Stream.Window.mean w);
        close
          (Printf.sprintf "variance@%d" pos)
          (Stats.Descriptive.variance_in xs ~pos ~len:sample_size)
          (Stream.Window.variance w);
        close
          (Printf.sprintf "entropy@%d" pos)
          (Stats.Entropy.of_sample_in ~bin_width ~reference xs ~pos
             ~len:sample_size)
          (Stream.Window.entropy w)
      end)
    xs;
  Alcotest.(check int) "every slide position checked"
    (Stream.sliding_count ~length:600 ~sample_size ~stride)
    !checked

let test_sliding_count () =
  Alcotest.(check int) "exact fit"
    1
    (Stream.sliding_count ~length:64 ~sample_size:64 ~stride:7);
  Alcotest.(check int) "too short" 0
    (Stream.sliding_count ~length:63 ~sample_size:64 ~stride:7);
  Alcotest.(check int) "disjoint slicing"
    5
    (Stream.sliding_count ~length:549 ~sample_size:100 ~stride:100)

(* --- Dataset.sliding_features vs the per-window batch extraction --- *)

let test_sliding_features_matches_batch () =
  let xs = trace ~n:512 ~seed:16 in
  let sample_size = 100 and stride = 25 in
  let w =
    Adversary.Dataset.sliding_features ~reference ~sample_size ~stride
      ~entropy_bin_widths:[ bin_width ] xs
  in
  let expected_count =
    Stream.sliding_count ~length:512 ~sample_size ~stride
  in
  Alcotest.(check int) "window count" expected_count w.Adversary.Dataset.w_count;
  for k = 0 to expected_count - 1 do
    let pos = k * stride in
    close
      (Printf.sprintf "w_means.(%d)" k)
      (Stats.Descriptive.mean_in xs ~pos ~len:sample_size)
      w.Adversary.Dataset.w_means.(k);
    close
      (Printf.sprintf "w_variances.(%d)" k)
      (Stats.Descriptive.variance_in xs ~pos ~len:sample_size)
      w.Adversary.Dataset.w_variances.(k);
    let entropies = List.assoc bin_width w.Adversary.Dataset.w_entropies in
    close
      (Printf.sprintf "w_entropies.(%d)" k)
      (Stats.Entropy.of_sample_in ~bin_width ~reference xs ~pos
         ~len:sample_size)
      entropies.(k)
  done;
  (* stride = sample_size degenerates to the classic disjoint slicing. *)
  let disjoint =
    Adversary.Dataset.sliding_features ~reference ~sample_size
      ~stride:sample_size ~entropy_bin_widths:[] xs
  in
  let batch =
    Adversary.Dataset.features_of_trace Adversary.Feature.Sample_variance
      ~reference ~sample_size xs
  in
  Alcotest.(check int) "disjoint count" (Array.length batch)
    disjoint.Adversary.Dataset.w_count;
  Array.iteri
    (fun k v -> close (Printf.sprintf "disjoint var %d" k) v
        disjoint.Adversary.Dataset.w_variances.(k))
    batch

(* --- System.run_sharded: delegation, merge accounting, jobs identity --- *)

let cfg ~seed =
  { Scenarios.System.default_config with Scenarios.System.seed;
    warmup_piats = 20 }

let test_run_sharded_delegates () =
  let r1 = Scenarios.System.run (cfg ~seed:21) ~piats:150 in
  let r2 = Scenarios.System.run_sharded ~shards:1 (cfg ~seed:21) ~piats:150 in
  Alcotest.(check bool) "shards=1 is exactly run" true (r1 = r2)

let test_run_sharded_merge () =
  let sharded =
    Scenarios.System.run_sharded ~shards:4 (cfg ~seed:22) ~piats:150
  in
  Alcotest.(check int) "all piats collected" 150
    (Array.length sharded.Scenarios.System.piats);
  Alcotest.(check (array (float 0.0))) "no merged timestamps" [||]
    sharded.Scenarios.System.timestamps;
  (* Counters are sums of the per-shard runs (chunks of 38,38,38,36). *)
  let manual =
    List.init 4 (fun i ->
        Scenarios.System.run
          { (cfg ~seed:22) with
            Scenarios.System.seed = Prng.Rng.mix_seed 22 i }
          ~piats:(if i = 3 then 150 - (3 * 38) else 38))
  in
  Alcotest.(check int) "payload_offered sums"
    (List.fold_left
       (fun acc r -> acc + r.Scenarios.System.payload_offered)
       0 manual)
    sharded.Scenarios.System.payload_offered;
  close "sim_time sums"
    (List.fold_left (fun acc r -> acc +. r.Scenarios.System.sim_time) 0.0 manual)
    sharded.Scenarios.System.sim_time;
  (* Shard piats appear concatenated in shard order. *)
  let concat =
    Array.concat (List.map (fun r -> r.Scenarios.System.piats) manual)
  in
  Alcotest.(check bool) "piats concatenated in shard order" true
    (concat = sharded.Scenarios.System.piats);
  Alcotest.check_raises "piats < shards rejected"
    (Invalid_argument "System.run_sharded: piats < shards") (fun () ->
      ignore (Scenarios.System.run_sharded ~shards:8 (cfg ~seed:22) ~piats:4))

let test_run_sharded_jobs_identity () =
  let at jobs =
    Exec.Pool.with_jobs jobs (fun () ->
        Scenarios.System.run_sharded ~shards:4 (cfg ~seed:23) ~piats:200)
  in
  let r1 = at 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-identical to jobs=1" jobs)
        true
        (at jobs = r1))
    [ 2; 8 ]

(* --- Workload.collect_windowed: determinism and early stop --- *)

let features = Adversary.Feature.standard_set

let observable (pair, scores) =
  ( pair.Scenarios.Workload.low_windows,
    pair.Scenarios.Workload.high_windows,
    pair.Scenarios.Workload.piat_var_low,
    pair.Scenarios.Workload.piat_var_high,
    pair.Scenarios.Workload.ratio_hat,
    pair.Scenarios.Workload.shards_run,
    pair.Scenarios.Workload.stopped_early,
    scores )

let collect ~jobs ~half_width =
  Exec.Pool.with_jobs jobs (fun () ->
      let plan =
        Scenarios.Workload.window_plan ~sample_size:100 ~windows_per_shard:4
          ~min_windows:4 ?half_width ~max_windows:12 ()
      in
      Scenarios.Workload.collect_windowed
        ~base:(cfg ~seed:31) ~plan ~features)

let test_collect_windowed_jobs_identity () =
  let full = collect ~jobs:1 ~half_width:None in
  let pair, _ = full in
  Alcotest.(check int) "runs to the window cap" 3
    pair.Scenarios.Workload.shards_run;
  Alcotest.(check bool) "no early stop without a target" false
    pair.Scenarios.Workload.stopped_early;
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        true
        (observable (collect ~jobs ~half_width:None) = observable full))
    [ 2; 8 ]

let test_collect_windowed_early_stop () =
  (* A half-width of 0.49 is satisfiable at the very first scoring, so
     the loop must stop after the minimum round. *)
  let stopped = collect ~jobs:1 ~half_width:(Some 0.49) in
  let pair, scores = stopped in
  Alcotest.(check int) "stopped after the first round" 1
    pair.Scenarios.Workload.shards_run;
  Alcotest.(check bool) "flagged as early" true
    pair.Scenarios.Workload.stopped_early;
  Alcotest.(check int) "one score per feature" (List.length features)
    (List.length scores);
  (* The stopping decision is data-driven, hence reproducible at any
     worker count and across repeated runs. *)
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "early stop at jobs=%d bit-identical" jobs)
        true
        (observable (collect ~jobs ~half_width:(Some 0.49))
        = observable stopped))
    [ 1; 2; 8 ]

(* --- figure-level: checkpointed sharded run killed mid-sweep --- *)

let with_temp_dir f =
  let dir = Filename.temp_file "ta_stream" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

let null_fmt =
  Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* Small fig6: 3 utilizations, sample size 120, scale 0.25 -> a 10-window
   cap over 4-window shards, so every cell's collection really is
   sharded. *)
let fig6_csv ~jobs ~csv_dir ~checkpoint =
  Scenarios.Sweep.set_checkpoint_dir checkpoint;
  Fun.protect
    ~finally:(fun () -> Scenarios.Sweep.set_checkpoint_dir None)
    (fun () ->
      Exec.Pool.with_jobs jobs (fun () ->
          ignore
            (Scenarios.Fig6.run ~scale:0.25 ~seed:6_100 ~sample_size:120
               ~utilizations:[ 0.05; 0.2; 0.4 ] ~csv_dir null_fmt
              : Scenarios.Fig6.t)))

let test_fig6_resume_mid_sweep_bit_identity () =
  with_temp_dir @@ fun clean_dir ->
  with_temp_dir @@ fun ckpt_dir ->
  with_temp_dir @@ fun resumed_dir ->
  (* Ground truth: uninterrupted, unjournaled, sequential. *)
  fig6_csv ~jobs:1 ~csv_dir:clean_dir ~checkpoint:None;
  let clean = read_file (Filename.concat clean_dir "fig6.csv") in
  (* Checkpointed full run, then chop the journal back to the header plus
     one record — the state a SIGKILL leaves after the first point (the
     second point's shards died mid-collection). *)
  fig6_csv ~jobs:1 ~csv_dir:ckpt_dir ~checkpoint:(Some ckpt_dir);
  Alcotest.(check string) "checkpointed run matches the bare run" clean
    (read_file (Filename.concat ckpt_dir "fig6.csv"));
  let journal = Filename.concat ckpt_dir "fig6.ckpt" in
  (match String.split_on_char '\n' (read_file journal) with
  | header :: records ->
      let kept = List.filteri (fun i _ -> i < 1) records in
      write_file journal (String.concat "\n" (header :: kept) ^ "\n")
  | [] -> Alcotest.fail "journal should not be empty");
  (* Resume at a different worker count: replays point 0, recomputes the
     rest, and must reproduce the uninterrupted CSV byte for byte. *)
  Sys.rename journal (Filename.concat resumed_dir "fig6.ckpt");
  fig6_csv ~jobs:2 ~csv_dir:resumed_dir ~checkpoint:(Some resumed_dir);
  Alcotest.(check string) "resumed at jobs=2 is byte-identical" clean
    (read_file (Filename.concat resumed_dir "fig6.csv"))

let suite =
  [
    Alcotest.test_case "moments vs descriptive" `Quick
      test_moments_matches_descriptive;
    Alcotest.test_case "moments removal" `Quick test_moments_remove;
    Alcotest.test_case "moments merge" `Quick test_moments_merge;
    Alcotest.test_case "hist vs entropy" `Quick test_hist_matches_entropy;
    Alcotest.test_case "window vs batch extractors" `Quick
      test_window_matches_batch;
    Alcotest.test_case "sliding_count" `Quick test_sliding_count;
    Alcotest.test_case "sliding_features vs batch" `Quick
      test_sliding_features_matches_batch;
    Alcotest.test_case "run_sharded shards=1 = run" `Quick
      test_run_sharded_delegates;
    Alcotest.test_case "run_sharded merge accounting" `Quick
      test_run_sharded_merge;
    Alcotest.test_case "run_sharded jobs identity" `Quick
      test_run_sharded_jobs_identity;
    Alcotest.test_case "collect_windowed jobs identity" `Quick
      test_collect_windowed_jobs_identity;
    Alcotest.test_case "collect_windowed early stop" `Quick
      test_collect_windowed_early_stop;
    Alcotest.test_case "fig6 resume mid-sweep bit-identity" `Slow
      test_fig6_resume_mid_sweep_bit_identity;
  ]
