(* Discrete-event core: event queue ordering, clock semantics,
   cancellation, periodic trains. *)

let test_queue_orders_by_time () =
  let q = Desim.Event_queue.create () in
  List.iter (fun (t, v) -> Desim.Event_queue.push q ~time:t v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pop () = match Desim.Event_queue.pop q with
    | Some (_, v) -> v
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Desim.Event_queue.is_empty q)

let test_queue_fifo_on_ties () =
  let q = Desim.Event_queue.create () in
  for i = 0 to 9 do
    Desim.Event_queue.push q ~time:5.0 i
  done;
  for i = 0 to 9 do
    match Desim.Event_queue.pop q with
    | Some (_, v) -> Alcotest.(check int) "insertion order" i v
    | None -> Alcotest.fail "empty"
  done

let test_queue_peek () =
  let q = Desim.Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None
    (Desim.Event_queue.peek_time q);
  Desim.Event_queue.push q ~time:7.0 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 7.0)
    (Desim.Event_queue.peek_time q);
  Alcotest.(check int) "size" 1 (Desim.Event_queue.size q)

let test_queue_nan_rejected () =
  let q = Desim.Event_queue.create () in
  Alcotest.check_raises "NaN" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Desim.Event_queue.push q ~time:Float.nan ())

let test_queue_heap_property_random () =
  let rng = Prng.Rng.create ~seed:91 in
  let q = Desim.Event_queue.create () in
  for _ = 1 to 10_000 do
    Desim.Event_queue.push q ~time:(Prng.Rng.float rng) ()
  done;
  let prev = ref Float.neg_infinity in
  let rec drain () =
    match Desim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < !prev then Alcotest.failf "out of order: %f after %f" t !prev;
        prev := t;
        drain ()
  in
  drain ()

let test_sim_clock_advances () =
  let sim = Desim.Sim.create () in
  let seen = ref [] in
  ignore (Desim.Sim.at sim ~time:2.0 (fun () -> seen := 2 :: !seen));
  ignore (Desim.Sim.at sim ~time:1.0 (fun () -> seen := 1 :: !seen));
  Desim.Sim.run_until sim ~time:1.5;
  Alcotest.(check (list int)) "only first ran" [ 1 ] !seen;
  Alcotest.(check (float 0.0)) "clock at horizon" 1.5 (Desim.Sim.now sim);
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check (list int)) "both ran" [ 2; 1 ] !seen

let test_sim_past_scheduling_rejected () =
  let sim = Desim.Sim.create () in
  Desim.Sim.run_until sim ~time:5.0;
  Alcotest.check_raises "past" (Invalid_argument "Sim.at: time in the past")
    (fun () -> ignore (Desim.Sim.at sim ~time:4.0 (fun () -> ())));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.after: negative delay") (fun () ->
      ignore (Desim.Sim.after sim ~delay:(-1.0) (fun () -> ())))

let test_sim_cancellation () =
  let sim = Desim.Sim.create () in
  let ran = ref false in
  let h = Desim.Sim.at sim ~time:1.0 (fun () -> ran := true) in
  Desim.Sim.cancel h;
  Alcotest.(check bool) "marked" true (Desim.Sim.cancelled h);
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check bool) "never ran" false !ran

let test_sim_cancellation_under_churn () =
  (* Heavy schedule/cancel churn, including cancellations issued from
     inside callbacks: exactly the uncancelled events run, each once. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:77 in
  let n = 2_000 in
  let runs = Array.make n 0 in
  let handles =
    Array.init n (fun i ->
        Desim.Sim.at sim
          ~time:(1.0 +. Prng.Rng.float rng)
          (fun () -> runs.(i) <- runs.(i) + 1))
  in
  (* Cancel a third up front... *)
  let expect = Array.make n true in
  for i = 0 to n - 1 do
    if i mod 3 = 0 then begin
      Desim.Sim.cancel handles.(i);
      expect.(i) <- false
    end
  done;
  (* ...and another slice from inside a callback that fires mid-run. *)
  ignore
    (Desim.Sim.at sim ~time:1.5 (fun () ->
         for i = 0 to n - 1 do
           if i mod 3 = 1 && Desim.Sim.cancelled handles.(i) = false then
             if i mod 6 = 1 then begin
               Desim.Sim.cancel handles.(i);
               (* Events at time <= 1.5 have already fired; only the
                  still-pending ones are suppressed. *)
               if runs.(i) = 0 then expect.(i) <- false
             end
         done)
      : Desim.Sim.handle);
  Desim.Sim.run_until sim ~time:3.0;
  Array.iteri
    (fun i r ->
      let want = if expect.(i) then 1 else 0 in
      if r <> want then Alcotest.failf "event %d ran %d times, wanted %d" i r want)
    runs;
  (* Double-cancel stays idempotent. *)
  Array.iter Desim.Sim.cancel handles

let test_every_rearms_under_churn () =
  (* A periodic train must keep its period exactly even while thousands of
     one-shot events are scheduled and cancelled around it. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:78 in
  let fires = ref [] in
  let train =
    Desim.Sim.every sim
      ~interval:(fun () -> 0.01)
      (fun () -> fires := Desim.Sim.now sim :: !fires)
  in
  let noise () =
    let h =
      Desim.Sim.after sim
        ~delay:(Prng.Sampler.exponential rng ~rate:2_000.0)
        (fun () -> ())
    in
    if Prng.Rng.float rng < 0.5 then Desim.Sim.cancel h
  in
  for _ = 1 to 200 do
    for _ = 1 to 25 do
      noise ()
    done;
    Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 0.005)
  done;
  let arr = Array.of_list (List.rev !fires) in
  Alcotest.(check int) "exactly one fire per period" 100 (Array.length arr);
  Array.iteri
    (fun i t ->
      let expected = 0.01 *. float_of_int (i + 1) in
      if Float.abs (t -. expected) > 1e-9 then
        Alcotest.failf "fire %d at %.6f, expected %.6f" i t expected)
    arr;
  Desim.Sim.cancel train;
  Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 1.0);
  Alcotest.(check int) "train cancelled" 100 (List.length !fires)

let test_sim_callbacks_can_schedule () =
  let sim = Desim.Sim.create () in
  let log = ref [] in
  ignore
    (Desim.Sim.at sim ~time:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Desim.Sim.after sim ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (list string)) "nested ran in order" [ "inner"; "outer" ] !log

let test_sim_same_time_cascade () =
  (* An event scheduling another at the *same* instant must run within the
     same run_until. *)
  let sim = Desim.Sim.create () in
  let count = ref 0 in
  ignore
    (Desim.Sim.at sim ~time:1.0 (fun () ->
         incr count;
         ignore (Desim.Sim.at sim ~time:1.0 (fun () -> incr count))));
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "both ran" 2 !count

let test_every_fixed_interval () =
  let sim = Desim.Sim.create () in
  let times = ref [] in
  let h =
    Desim.Sim.every sim ~interval:(fun () -> 1.0) (fun () ->
        times := Desim.Sim.now sim :: !times)
  in
  Desim.Sim.run_until sim ~time:5.5;
  Alcotest.(check (list (float 1e-12))) "ticked at 1..5"
    [ 5.0; 4.0; 3.0; 2.0; 1.0 ] !times;
  Desim.Sim.cancel h;
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check int) "no ticks after cancel" 5 (List.length !times)

let test_every_random_interval_redrawn () =
  (* With a strictly increasing interval function, gaps must increase:
     proves the interval is re-drawn each period, which is what makes a
     VIT timer variable. *)
  let sim = Desim.Sim.create () in
  let step = ref 0.0 in
  let times = ref [] in
  ignore
    (Desim.Sim.every sim
       ~interval:(fun () ->
         step := !step +. 1.0;
         !step)
       (fun () -> times := Desim.Sim.now sim :: !times));
  Desim.Sim.run_until sim ~time:11.0;
  (* fires at 1, 3, 6, 10 *)
  Alcotest.(check (list (float 1e-12))) "growing gaps" [ 10.0; 6.0; 3.0; 1.0 ] !times

let test_every_start_override () =
  let sim = Desim.Sim.create () in
  let first = ref None in
  ignore
    (Desim.Sim.every sim ~start:0.25
       ~interval:(fun () -> 1.0)
       (fun () -> if !first = None then first := Some (Desim.Sim.now sim)));
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (option (float 1e-12))) "first at start" (Some 0.25) !first

let test_run_all_budget () =
  let sim = Desim.Sim.create () in
  let rec loop () = ignore (Desim.Sim.after sim ~delay:1.0 loop) in
  loop ();
  Alcotest.check_raises "budget"
    (Desim.Sim.Event_budget_exceeded { max_events = 100 })
    (fun () -> Desim.Sim.run_all ~max_events:100 sim)

let test_pending_count () =
  let sim = Desim.Sim.create () in
  ignore (Desim.Sim.at sim ~time:1.0 (fun () -> ()));
  ignore (Desim.Sim.at sim ~time:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Desim.Sim.pending sim);
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check int) "drained" 0 (Desim.Sim.pending sim)

let prop_queue_is_sort =
  QCheck.Test.make ~name:"event queue drains as a stable sort" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_exclusive 100.0))
    (fun times ->
      let q = Desim.Event_queue.create () in
      List.iteri (fun i t -> Desim.Event_queue.push q ~time:t i) times;
      let rec drain acc =
        match Desim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, i) -> drain ((t, i) :: acc)
      in
      let drained = drain [] in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
      in
      drained = expected)

let suite =
  [
    Alcotest.test_case "queue time order" `Quick test_queue_orders_by_time;
    Alcotest.test_case "queue FIFO ties" `Quick test_queue_fifo_on_ties;
    Alcotest.test_case "queue peek/size" `Quick test_queue_peek;
    Alcotest.test_case "queue rejects NaN" `Quick test_queue_nan_rejected;
    Alcotest.test_case "queue random heap property" `Quick test_queue_heap_property_random;
    Alcotest.test_case "clock advances" `Quick test_sim_clock_advances;
    Alcotest.test_case "no scheduling in the past" `Quick test_sim_past_scheduling_rejected;
    Alcotest.test_case "cancellation" `Quick test_sim_cancellation;
    Alcotest.test_case "cancellation under churn" `Quick
      test_sim_cancellation_under_churn;
    Alcotest.test_case "every: re-arms under churn" `Quick
      test_every_rearms_under_churn;
    Alcotest.test_case "nested scheduling" `Quick test_sim_callbacks_can_schedule;
    Alcotest.test_case "same-instant cascade" `Quick test_sim_same_time_cascade;
    Alcotest.test_case "every: fixed interval" `Quick test_every_fixed_interval;
    Alcotest.test_case "every: interval re-drawn" `Quick test_every_random_interval_redrawn;
    Alcotest.test_case "every: start override" `Quick test_every_start_override;
    Alcotest.test_case "run_all event budget" `Quick test_run_all_budget;
    Alcotest.test_case "pending count" `Quick test_pending_count;
    QCheck_alcotest.to_alcotest prop_queue_is_sort;
  ]
