(* Discrete-event core: event queue ordering, clock semantics,
   cancellation, periodic trains. *)

let test_queue_orders_by_time () =
  let q = Desim.Event_queue.create () in
  List.iter (fun (t, v) -> Desim.Event_queue.push q ~time:t v)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  let pop () = match Desim.Event_queue.pop q with
    | Some (_, v) -> v
    | None -> Alcotest.fail "unexpected empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "drained" true (Desim.Event_queue.is_empty q)

let test_queue_fifo_on_ties () =
  let q = Desim.Event_queue.create () in
  for i = 0 to 9 do
    Desim.Event_queue.push q ~time:5.0 i
  done;
  for i = 0 to 9 do
    match Desim.Event_queue.pop q with
    | Some (_, v) -> Alcotest.(check int) "insertion order" i v
    | None -> Alcotest.fail "empty"
  done

let test_queue_peek () =
  let q = Desim.Event_queue.create () in
  Alcotest.(check (option (float 0.0))) "empty peek" None
    (Desim.Event_queue.peek_time q);
  Desim.Event_queue.push q ~time:7.0 ();
  Alcotest.(check (option (float 0.0))) "peek" (Some 7.0)
    (Desim.Event_queue.peek_time q);
  Alcotest.(check int) "size" 1 (Desim.Event_queue.size q)

let test_queue_nan_rejected () =
  let q = Desim.Event_queue.create () in
  Alcotest.check_raises "NaN" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Desim.Event_queue.push q ~time:Float.nan ())

let test_queue_heap_property_random () =
  let rng = Prng.Rng.create ~seed:91 in
  let q = Desim.Event_queue.create () in
  for _ = 1 to 10_000 do
    Desim.Event_queue.push q ~time:(Prng.Rng.float rng) ()
  done;
  let prev = ref Float.neg_infinity in
  let rec drain () =
    match Desim.Event_queue.pop q with
    | None -> ()
    | Some (t, ()) ->
        if t < !prev then Alcotest.failf "out of order: %f after %f" t !prev;
        prev := t;
        drain ()
  in
  drain ()

let test_sim_clock_advances () =
  let sim = Desim.Sim.create () in
  let seen = ref [] in
  ignore (Desim.Sim.at sim ~time:2.0 (fun () -> seen := 2 :: !seen));
  ignore (Desim.Sim.at sim ~time:1.0 (fun () -> seen := 1 :: !seen));
  Desim.Sim.run_until sim ~time:1.5;
  Alcotest.(check (list int)) "only first ran" [ 1 ] !seen;
  Alcotest.(check (float 0.0)) "clock at horizon" 1.5 (Desim.Sim.now sim);
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check (list int)) "both ran" [ 2; 1 ] !seen

let test_sim_past_scheduling_rejected () =
  let sim = Desim.Sim.create () in
  Desim.Sim.run_until sim ~time:5.0;
  Alcotest.check_raises "past" (Invalid_argument "Sim.at: time in the past")
    (fun () -> ignore (Desim.Sim.at sim ~time:4.0 (fun () -> ())));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.after: negative delay") (fun () ->
      ignore (Desim.Sim.after sim ~delay:(-1.0) (fun () -> ())))

let test_sim_cancellation () =
  let sim = Desim.Sim.create () in
  let ran = ref false in
  let h = Desim.Sim.at sim ~time:1.0 (fun () -> ran := true) in
  Desim.Sim.cancel h;
  Alcotest.(check bool) "marked" true (Desim.Sim.cancelled h);
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check bool) "never ran" false !ran

let test_sim_cancellation_under_churn () =
  (* Heavy schedule/cancel churn, including cancellations issued from
     inside callbacks: exactly the uncancelled events run, each once. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:77 in
  let n = 2_000 in
  let runs = Array.make n 0 in
  let handles =
    Array.init n (fun i ->
        Desim.Sim.at sim
          ~time:(1.0 +. Prng.Rng.float rng)
          (fun () -> runs.(i) <- runs.(i) + 1))
  in
  (* Cancel a third up front... *)
  let expect = Array.make n true in
  for i = 0 to n - 1 do
    if i mod 3 = 0 then begin
      Desim.Sim.cancel handles.(i);
      expect.(i) <- false
    end
  done;
  (* ...and another slice from inside a callback that fires mid-run. *)
  ignore
    (Desim.Sim.at sim ~time:1.5 (fun () ->
         for i = 0 to n - 1 do
           if i mod 3 = 1 && Desim.Sim.cancelled handles.(i) = false then
             if i mod 6 = 1 then begin
               Desim.Sim.cancel handles.(i);
               (* Events at time <= 1.5 have already fired; only the
                  still-pending ones are suppressed. *)
               if runs.(i) = 0 then expect.(i) <- false
             end
         done)
      : Desim.Sim.handle);
  Desim.Sim.run_until sim ~time:3.0;
  Array.iteri
    (fun i r ->
      let want = if expect.(i) then 1 else 0 in
      if r <> want then Alcotest.failf "event %d ran %d times, wanted %d" i r want)
    runs;
  (* Double-cancel stays idempotent. *)
  Array.iter Desim.Sim.cancel handles

let test_every_rearms_under_churn () =
  (* A periodic train must keep its period exactly even while thousands of
     one-shot events are scheduled and cancelled around it. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:78 in
  let fires = ref [] in
  let train =
    Desim.Sim.every sim
      ~interval:(fun () -> 0.01)
      (fun () -> fires := Desim.Sim.now sim :: !fires)
  in
  let noise () =
    let h =
      Desim.Sim.after sim
        ~delay:(Prng.Sampler.exponential rng ~rate:2_000.0)
        (fun () -> ())
    in
    if Prng.Rng.float rng < 0.5 then Desim.Sim.cancel h
  in
  for _ = 1 to 200 do
    for _ = 1 to 25 do
      noise ()
    done;
    Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 0.005)
  done;
  let arr = Array.of_list (List.rev !fires) in
  Alcotest.(check int) "exactly one fire per period" 100 (Array.length arr);
  Array.iteri
    (fun i t ->
      let expected = 0.01 *. float_of_int (i + 1) in
      if Float.abs (t -. expected) > 1e-9 then
        Alcotest.failf "fire %d at %.6f, expected %.6f" i t expected)
    arr;
  Desim.Sim.cancel train;
  Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 1.0);
  Alcotest.(check int) "train cancelled" 100 (List.length !fires)

let test_sim_callbacks_can_schedule () =
  let sim = Desim.Sim.create () in
  let log = ref [] in
  ignore
    (Desim.Sim.at sim ~time:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Desim.Sim.after sim ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (list string)) "nested ran in order" [ "inner"; "outer" ] !log

let test_sim_same_time_cascade () =
  (* An event scheduling another at the *same* instant must run within the
     same run_until. *)
  let sim = Desim.Sim.create () in
  let count = ref 0 in
  ignore
    (Desim.Sim.at sim ~time:1.0 (fun () ->
         incr count;
         ignore (Desim.Sim.at sim ~time:1.0 (fun () -> incr count))));
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "both ran" 2 !count

let test_every_fixed_interval () =
  let sim = Desim.Sim.create () in
  let times = ref [] in
  let h =
    Desim.Sim.every sim ~interval:(fun () -> 1.0) (fun () ->
        times := Desim.Sim.now sim :: !times)
  in
  Desim.Sim.run_until sim ~time:5.5;
  Alcotest.(check (list (float 1e-12))) "ticked at 1..5"
    [ 5.0; 4.0; 3.0; 2.0; 1.0 ] !times;
  Desim.Sim.cancel h;
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check int) "no ticks after cancel" 5 (List.length !times)

let test_every_random_interval_redrawn () =
  (* With a strictly increasing interval function, gaps must increase:
     proves the interval is re-drawn each period, which is what makes a
     VIT timer variable. *)
  let sim = Desim.Sim.create () in
  let step = ref 0.0 in
  let times = ref [] in
  ignore
    (Desim.Sim.every sim
       ~interval:(fun () ->
         step := !step +. 1.0;
         !step)
       (fun () -> times := Desim.Sim.now sim :: !times));
  Desim.Sim.run_until sim ~time:11.0;
  (* fires at 1, 3, 6, 10 *)
  Alcotest.(check (list (float 1e-12))) "growing gaps" [ 10.0; 6.0; 3.0; 1.0 ] !times

let test_every_start_override () =
  let sim = Desim.Sim.create () in
  let first = ref None in
  ignore
    (Desim.Sim.every sim ~start:0.25
       ~interval:(fun () -> 1.0)
       (fun () -> if !first = None then first := Some (Desim.Sim.now sim)));
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (option (float 1e-12))) "first at start" (Some 0.25) !first

let test_run_all_budget () =
  let sim = Desim.Sim.create () in
  let rec loop () = ignore (Desim.Sim.after sim ~delay:1.0 loop) in
  loop ();
  Alcotest.check_raises "budget"
    (Desim.Sim.Event_budget_exceeded { max_events = 100 })
    (fun () -> Desim.Sim.run_all ~max_events:100 sim)

let test_pending_count () =
  let sim = Desim.Sim.create () in
  ignore (Desim.Sim.at sim ~time:1.0 (fun () -> ()));
  ignore (Desim.Sim.at sim ~time:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Desim.Sim.pending sim);
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check int) "drained" 0 (Desim.Sim.pending sim)

let prop_queue_is_sort =
  QCheck.Test.make ~name:"event queue drains as a stable sort" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_exclusive 100.0))
    (fun times ->
      let q = Desim.Event_queue.create () in
      List.iteri (fun i t -> Desim.Event_queue.push q ~time:t i) times;
      let rec drain acc =
        match Desim.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, i) -> drain ((t, i) :: acc)
      in
      let drained = drain [] in
      let expected =
        List.mapi (fun i t -> (t, i)) times
        |> List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
      in
      drained = expected)

(* --- SoA queue internals: free-list reuse, growth, payload storage --- *)

(* Reference model: a list kept sorted by (time, push order).  Stable
   insertion after all entries with time <= t reproduces the FIFO
   tie-break contract. *)
let ref_insert reference t seq =
  let rec ins = function
    | [] -> [ (t, seq) ]
    | (t', s') :: tl when t' <= t -> (t', s') :: ins tl
    | rest -> (t, seq) :: rest
  in
  ins reference

let prop_queue_interleaved_matches_reference =
  QCheck.Test.make
    ~name:"interleaved push/pop matches a sorted-list reference" ~count:300
    QCheck.(list (pair bool (float_bound_exclusive 100.0)))
    (fun ops ->
      let q = Desim.Event_queue.create () in
      let reference = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      let pop_and_check () =
        match (Desim.Event_queue.pop q, !reference) with
        | None, [] -> ()
        | Some (t, v), (rt, rv) :: tl when t = rt && v = rv -> reference := tl
        | _ -> ok := false
      in
      List.iter
        (fun (is_push, t) ->
          if is_push then begin
            Desim.Event_queue.push q ~time:t !seq;
            reference := ref_insert !reference t !seq;
            incr seq
          end
          else pop_and_check ())
        ops;
      while not (Desim.Event_queue.is_empty q && !reference = []) && !ok do
        pop_and_check ()
      done;
      !ok)

let test_queue_growth_across_free_list () =
  (* Fill the initial 16-slot storage, free half the slots, then push far
     past capacity: growth must carry live entries and the free list
     without losing or reordering anything. *)
  let q = Desim.Event_queue.create () in
  let reference = ref [] in
  let seq = ref 0 in
  let push t =
    Desim.Event_queue.push q ~time:t !seq;
    reference := ref_insert !reference t !seq;
    incr seq
  in
  for i = 0 to 15 do
    push (float_of_int ((i * 11) mod 16))
  done;
  for _ = 0 to 7 do
    match (Desim.Event_queue.pop q, !reference) with
    | Some (t, v), (rt, rv) :: tl when t = rt && v = rv -> reference := tl
    | _ -> Alcotest.fail "mismatch before growth"
  done;
  for i = 0 to 39 do
    push (float_of_int ((i * 7) mod 20))
  done;
  Alcotest.(check bool) "grew past initial capacity" true
    (Desim.Event_queue.capacity q > 16);
  let rec drain () =
    match (Desim.Event_queue.pop q, !reference) with
    | None, [] -> ()
    | Some (t, v), (rt, rv) :: tl when t = rt && v = rv ->
        reference := tl;
        drain ()
    | _ -> Alcotest.fail "mismatch after growth"
  in
  drain ()

let test_queue_float_payload_roundtrip () =
  (* Float payloads exercise the specialised-array storage path the old
     Obj.magic seeding used to corrupt in theory; every value must come
     back bit-exact through min_time/pop_exn. *)
  let q = Desim.Event_queue.create () in
  for i = 0 to 99 do
    Desim.Event_queue.push q ~time:(float_of_int (99 - i)) (float_of_int i *. 1.5)
  done;
  for k = 0 to 99 do
    let t = Desim.Event_queue.min_time q in
    let v = Desim.Event_queue.pop_exn q in
    Alcotest.(check (float 0.0)) "time order" (float_of_int k) t;
    Alcotest.(check (float 0.0)) "payload" ((99.0 -. t) *. 1.5) v
  done;
  Alcotest.check_raises "min_time empty"
    (Invalid_argument "Event_queue.min_time: empty queue") (fun () ->
      ignore (Desim.Event_queue.min_time q : float));
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Event_queue.pop_exn: empty queue") (fun () ->
      ignore (Desim.Event_queue.pop_exn q : float))

let test_queue_clear_reuse_deterministic () =
  (* After clear, a reused queue must behave exactly like a fresh one —
     including the FIFO tie-break, i.e. the push counter restarts. *)
  let drive q =
    List.iter
      (fun (t, v) -> Desim.Event_queue.push q ~time:t v)
      [ (2.0, 0); (1.0, 1); (2.0, 2); (1.0, 3); (2.0, 4) ];
    let rec drain acc =
      match Desim.Event_queue.pop q with
      | None -> List.rev acc
      | Some (_, v) -> drain (v :: acc)
    in
    drain []
  in
  let fresh = drive (Desim.Event_queue.create ()) in
  let q = Desim.Event_queue.create () in
  for i = 0 to 40 do
    Desim.Event_queue.push q ~time:(float_of_int i) i
  done;
  let cap_before = Desim.Event_queue.capacity q in
  Desim.Event_queue.clear q;
  Alcotest.(check int) "empty after clear" 0 (Desim.Event_queue.size q);
  Alcotest.(check int) "capacity kept" cap_before (Desim.Event_queue.capacity q);
  Alcotest.(check (list int)) "reused = fresh" fresh (drive q)

let test_queue_steady_state_allocs () =
  (* Canary against reintroducing per-event heap records: in steady state a
     push/pop cycle must stay within a few words (float boxing at the call
     boundary), far below the old entry-record + option + tuple cost. *)
  match Sys.backend_type with
  | Sys.Native ->
      let q = Desim.Event_queue.create () in
      let iter () =
        Desim.Event_queue.clear q;
        for i = 0 to 999 do
          Desim.Event_queue.push q ~time:(float_of_int ((i * 7919) mod 1000)) ()
        done;
        while not (Desim.Event_queue.is_empty q) do
          ignore (Desim.Event_queue.min_time q : float);
          Desim.Event_queue.pop_exn q
        done
      in
      iter ();
      let w0 = Gc.minor_words () in
      for _ = 1 to 10 do
        iter ()
      done;
      let per_op = (Gc.minor_words () -. w0) /. 20_000.0 in
      if per_op > 4.0 then
        Alcotest.failf "steady-state allocation %.2f words/op (want <= 4)" per_op
  | _ -> ()

let test_rearm () =
  let sim = Desim.Sim.create () in
  let fired = ref [] in
  let h =
    Desim.Sim.at sim ~time:1.0 (fun () -> fired := Desim.Sim.now sim :: !fired)
  in
  Desim.Sim.run_until sim ~time:1.0;
  (* Re-arming the same handle twice queues two distinct occurrences. *)
  Desim.Sim.rearm sim h ~delay:0.5;
  Desim.Sim.rearm sim h ~delay:0.75;
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check (list (float 1e-12))) "original + both re-arms"
    [ 1.75; 1.5; 1.0 ] !fired;
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.rearm: negative delay") (fun () ->
      Desim.Sim.rearm sim h ~delay:(-0.1));
  (* A cancelled handle stays cancelled through a re-arm. *)
  Desim.Sim.cancel h;
  Desim.Sim.rearm sim h ~delay:0.1;
  Desim.Sim.run_until sim ~time:3.0;
  Alcotest.(check int) "cancelled re-arm suppressed" 3 (List.length !fired)

let test_reset_restores_determinism () =
  (* A reset simulator must replay a schedule bit-identically to a fresh
     one — same clock, same FIFO tie-breaks (push counter restarts). *)
  let record sim =
    let log = ref [] in
    ignore
      (Desim.Sim.every sim
         ~interval:(fun () -> 0.25)
         (fun () -> log := (Desim.Sim.now sim, 0) :: !log)
        : Desim.Sim.handle);
    (* Two same-time events: their order is decided by the push counter. *)
    ignore (Desim.Sim.at sim ~time:0.5 (fun () -> log := (0.5, 1) :: !log)
             : Desim.Sim.handle);
    ignore (Desim.Sim.at sim ~time:0.5 (fun () -> log := (0.5, 2) :: !log)
             : Desim.Sim.handle);
    Desim.Sim.run_until sim ~time:1.0;
    List.rev !log
  in
  let fresh = record (Desim.Sim.create ()) in
  let sim = Desim.Sim.create () in
  ignore (Desim.Sim.at sim ~time:0.1 (fun () -> ()) : Desim.Sim.handle);
  ignore (Desim.Sim.at sim ~time:9.0 (fun () -> ()) : Desim.Sim.handle);
  Desim.Sim.run_until sim ~time:0.35;
  Desim.Sim.reset sim;
  Alcotest.(check int) "pending cleared" 0 (Desim.Sim.pending sim);
  Alcotest.(check (float 0.0)) "clock reset" 0.0 (Desim.Sim.now sim);
  Alcotest.(check (list (pair (float 1e-12) int))) "reset = fresh" fresh
    (record sim)

let suite =
  [
    Alcotest.test_case "queue time order" `Quick test_queue_orders_by_time;
    Alcotest.test_case "queue FIFO ties" `Quick test_queue_fifo_on_ties;
    Alcotest.test_case "queue peek/size" `Quick test_queue_peek;
    Alcotest.test_case "queue rejects NaN" `Quick test_queue_nan_rejected;
    Alcotest.test_case "queue random heap property" `Quick test_queue_heap_property_random;
    Alcotest.test_case "clock advances" `Quick test_sim_clock_advances;
    Alcotest.test_case "no scheduling in the past" `Quick test_sim_past_scheduling_rejected;
    Alcotest.test_case "cancellation" `Quick test_sim_cancellation;
    Alcotest.test_case "cancellation under churn" `Quick
      test_sim_cancellation_under_churn;
    Alcotest.test_case "every: re-arms under churn" `Quick
      test_every_rearms_under_churn;
    Alcotest.test_case "nested scheduling" `Quick test_sim_callbacks_can_schedule;
    Alcotest.test_case "same-instant cascade" `Quick test_sim_same_time_cascade;
    Alcotest.test_case "every: fixed interval" `Quick test_every_fixed_interval;
    Alcotest.test_case "every: interval re-drawn" `Quick test_every_random_interval_redrawn;
    Alcotest.test_case "every: start override" `Quick test_every_start_override;
    Alcotest.test_case "run_all event budget" `Quick test_run_all_budget;
    Alcotest.test_case "pending count" `Quick test_pending_count;
    QCheck_alcotest.to_alcotest prop_queue_is_sort;
    QCheck_alcotest.to_alcotest prop_queue_interleaved_matches_reference;
    Alcotest.test_case "queue growth across free list" `Quick
      test_queue_growth_across_free_list;
    Alcotest.test_case "queue float payload roundtrip" `Quick
      test_queue_float_payload_roundtrip;
    Alcotest.test_case "queue clear-reuse determinism" `Quick
      test_queue_clear_reuse_deterministic;
    Alcotest.test_case "queue steady-state allocations" `Quick
      test_queue_steady_state_allocs;
    Alcotest.test_case "rearm" `Quick test_rearm;
    Alcotest.test_case "reset restores determinism" `Quick
      test_reset_restores_determinism;
  ]
