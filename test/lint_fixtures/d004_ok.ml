let med xs i j = Float.compare (Float.Array.get xs i) (Float.Array.get xs j)
let near a = a < 0.5
