let bump xs = List.map (fun x -> x + 1) xs
