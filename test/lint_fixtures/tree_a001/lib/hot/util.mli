val bump : int list -> int list
(** Callee reached from the hot path; its closure is the seeded A001. *)
