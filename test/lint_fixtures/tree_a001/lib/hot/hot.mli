val step : int list -> int list
(** The manifest-listed hot entry point (allocation-free by contract). *)
