let step xs = Util.bump xs
