let entry n = Mid.relay (2 * n)

let safe n = try Mid.relay n with Deep.Boom -> 0
