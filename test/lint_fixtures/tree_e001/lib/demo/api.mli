val entry : int -> int
(** Doubles then relays the input. *)

val safe : int -> int
(** Like [entry] but returns 0 on the threshold error. *)
