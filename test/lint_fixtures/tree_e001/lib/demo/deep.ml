exception Boom

let boom_if n = if n > 3 then raise Boom else n
