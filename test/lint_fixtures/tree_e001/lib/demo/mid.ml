let relay n = Deep.boom_if (n + 1)
