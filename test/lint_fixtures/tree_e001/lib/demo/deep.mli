exception Boom

val boom_if : int -> int
(** Identity below the threshold.  Raises [Boom] past it. *)
