val relay : int -> int
(** Bumps then forwards.  Raises [Boom] via {!Deep.boom_if}. *)
