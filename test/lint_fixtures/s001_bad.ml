(* S001 positive: a library module with no .mli sibling. *)
let answer = 42
