val answer : int
