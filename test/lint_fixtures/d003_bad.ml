(* D003 positive: a library writing to stdout. *)
let report n = Printf.printf "count=%d\n" n
