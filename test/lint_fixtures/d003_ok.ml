(* D003 negative: the caller chooses the sink via a formatter. *)
let report ppf n = Format.fprintf ppf "count=%d@." n
