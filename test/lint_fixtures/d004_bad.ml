let med xs i j = Float.Array.get xs i < Float.Array.get xs j
let worst a = compare a 1.0
