val parallel_map : ('a -> 'b) -> 'a list -> 'b list
(** Fixture stand-in for the real Exec.Pool fan-out. *)
