let parallel_map f xs = List.map f xs
