(* talint: allow D002 — fixture helper; T001 must still see the sink *)
let read () = Unix.gettimeofday ()
