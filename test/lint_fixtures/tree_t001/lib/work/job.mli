val run : float list -> float list
(** Fixture parallel map whose task body reads the clock via a helper. *)
