val read : unit -> float
(** Fixture wall-clock read; the interprocedural sink. *)
