let run xs = Exec.Pool.parallel_map (fun x -> x +. Clockish.read ()) xs
