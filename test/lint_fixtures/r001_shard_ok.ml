(* R001 negative: the sharded-accumulator pattern.  Every accumulator is
   allocated inside the collecting function — one per shard, merged in
   index order after the fan-out — so no mutable state lives at module
   level and nothing races under Exec.Pool. *)
let collect ~shards ~run_shard =
  let accs = Array.init shards (fun i -> run_shard i (Hashtbl.create 16)) in
  Array.to_list accs

let merge_in_order merge zero parts = Array.fold_left merge zero parts
