(* P001 positive: ad-hoc Marshal outside lib/exec. *)
let save v = Marshal.to_string v []
