(* R001 positive: the naive global fleet accumulator — module-level
   mutable columns and a shared counter race under Exec.Pool. *)
let packet_counts = Array.make 4096 0.0
let arrivals_total = ref 0
let record flow = packet_counts.(flow) <- packet_counts.(flow) +. 1.0
let bump () = incr arrivals_total
