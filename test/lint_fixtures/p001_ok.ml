(* P001 negative: checkpoint payloads go through the journal codec. *)
let save v = Exec.Journal.encode v
