(* R001 negative: allocation happens inside the run, per call. *)
let make_cache () = Hashtbl.create 16
let m_runs = Obs.Metrics.counter "fixture.runs"
