(* R001 positive: module-level mutable state, racy under Exec.Pool. *)
let cache = Hashtbl.create 16
