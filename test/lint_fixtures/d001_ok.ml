(* D001 negative: randomness flows through lib/prng with an explicit seed. *)
let roll rng = Prng.Rng.int rng 6
