(* Suppression fixture: same violation as r001_bad.ml, but justified. *)
(* talint: allow R001 — fixture: mutex-guarded shared cache *)
let cache = Hashtbl.create 16

let tally = ref 0 (* talint: allow R001, S002 — fixture: same-line directive *)
