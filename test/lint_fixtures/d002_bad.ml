(* D002 positive: wall-clock read inside simulation logic. *)
let stamp () = Unix.gettimeofday ()
