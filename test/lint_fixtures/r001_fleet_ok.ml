(* R001 negative: the fleet-shard idiom.  Module level holds only
   coordination primitives — an Atomic progress counter, a registry
   mutex, a per-domain DLS scratch slot (its allocator runs per domain,
   inside the closure) — while the mutable flow columns themselves are
   allocated per shard inside the fan-out and merged in index order. *)
let shards_done = Atomic.make 0
let registry_lock = Mutex.create ()
let scratch = Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let run_shard ~width f =
  let columns = Array.make width 0.0 in
  f columns (Domain.DLS.get scratch);
  Atomic.incr shards_done;
  columns

let merge_in_order parts = Array.concat (Array.to_list parts)

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f
