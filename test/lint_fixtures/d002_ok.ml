(* D002 negative: time comes from the simulator clock. *)
let stamp sim = Desim.Sim.now sim
