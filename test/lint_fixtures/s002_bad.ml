(* S002 positive: an undeclared failure mode. *)
let drain () = failwith "tap starved"
