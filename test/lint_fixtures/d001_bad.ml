(* D001 positive: ambient randomness in a library. *)
let roll () = Random.int 6
let reseed () = Random.self_init ()
