(* S002 negative: a declared exception callers can match. *)
exception Tap_starved of { target : int; observed : int }

let drain ~target ~observed =
  if observed < target then raise (Tap_starved { target; observed })
