(* S001 negative: the interface lives in s001_ok.mli next door. *)
let answer = 42
