(* Resilience layer: ta-ckpt/1 journal recovery, supervised retry and
   quarantine, checkpoint/resume bit-identity at any worker count, and
   partial-result table rendering.  These are the invariants behind the
   exit-4 contract: a crash or a poisoned point must never change the
   bytes of what a completed run would have produced. *)

module Sweep = Scenarios.Sweep
module Journal = Exec.Journal

(* Sweep knobs are process-wide; reset them on both sides of every test
   so suites stay independent. *)
let with_defaults f =
  let reset () =
    Sweep.set_checkpoint_dir None;
    Sweep.set_retries 2;
    Sweep.set_strict false;
    Sweep.set_event_budget None;
    Sweep.clear_injections ();
    Sweep.clear_failures ()
  in
  reset ();
  Fun.protect ~finally:reset f

let with_jobs jobs f =
  Exec.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_default_jobs 1) f

let with_temp_dir f =
  let dir = Filename.temp_file "ta_ckpt" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

(* --- CRC-32 --- *)

let test_crc_known_answers () =
  (* IEEE 802.3 check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check string)
    "standard check value" "cbf43926"
    (Exec.Crc.hex_of_string "123456789");
  Alcotest.(check string) "empty string" "00000000" (Exec.Crc.hex_of_string "");
  (* Streaming update over a split input equals the one-shot digest. *)
  Alcotest.(check int)
    "update is streamable"
    (Exec.Crc.string "123456789")
    (Exec.Crc.update (Exec.Crc.string "1234") "56789");
  Alcotest.(check bool)
    "distinct inputs, distinct digests" false
    (Exec.Crc.string "ta-ckpt/1" = Exec.Crc.string "ta-ckpt/2")

(* --- injection-spec parsing --- *)

let test_parse_injection () =
  (match Sweep.parse_injection "fig4b:0" with
  | Ok [ { Sweep.inj_sweep = "fig4b"; inj_index = 0; first_ok = None } ] -> ()
  | _ -> Alcotest.fail "simple SWEEP:INDEX spec");
  (match Sweep.parse_injection "a:1@2,b:3" with
  | Ok
      [
        { Sweep.inj_sweep = "a"; inj_index = 1; first_ok = Some 2 };
        { Sweep.inj_sweep = "b"; inj_index = 3; first_ok = None };
      ] ->
      ()
  | _ -> Alcotest.fail "comma-separated list with @ATTEMPTS");
  List.iter
    (fun bad ->
      match Sweep.parse_injection bad with
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error names the token" bad)
            true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" bad))
    [ "bad"; ":3"; "a:"; "a:x"; "a:-1"; "a:1@x" ]

(* --- journal: roundtrip, corrupt tail, digest reset --- *)

let ok_entry ~index ~seed v =
  {
    Journal.index;
    seed;
    attempts = 1;
    status = Journal.Point_ok;
    payload = Journal.encode v;
    error = "";
  }

let failed_entry ~index ~seed ~attempts ~status error =
  { Journal.index; seed; attempts; status; payload = ""; error }

let test_journal_roundtrip () =
  with_temp_dir @@ fun dir ->
  let j = Journal.open_ ~dir ~sweep:"t" ~digest:"d1" in
  Alcotest.(check bool)
    "fresh journal: nothing recovered" true
    (Journal.recovery j = { Journal.replayed = 0; dropped = 0; reset = false });
  Journal.append j (ok_entry ~index:0 ~seed:42 (3.5, "x"));
  Journal.append j
    (failed_entry ~index:1 ~seed:42 ~attempts:2 ~status:Journal.Point_failed
       "tap starved in faults (0 of 7 after 1.000 sim-s)");
  Journal.close j;
  let j2 = Journal.open_ ~dir ~sweep:"t" ~digest:"d1" in
  Alcotest.(check bool)
    "reopen replays both records" true
    (Journal.recovery j2 = { Journal.replayed = 2; dropped = 0; reset = false });
  Alcotest.(check int) "count" 2 (Journal.count j2);
  (match Journal.find j2 0 with
  | Some e ->
      Alcotest.(check bool) "ok status survives" true (e.status = Journal.Point_ok);
      Alcotest.(check int) "seed survives" 42 e.seed;
      (match Journal.decode e.payload with
      | Some (f, s) ->
          Alcotest.(check (float 0.0)) "payload float" 3.5 f;
          Alcotest.(check string) "payload string" "x" s
      | None -> Alcotest.fail "payload must decode")
  | None -> Alcotest.fail "point 0 must be journaled");
  (match Journal.find j2 1 with
  | Some e ->
      Alcotest.(check bool)
        "failed status survives" true
        (e.status = Journal.Point_failed);
      Alcotest.(check int) "attempts survive" 2 e.attempts;
      Alcotest.(check string) "diagnostic survives"
        "tap starved in faults (0 of 7 after 1.000 sim-s)" e.error
  | None -> Alcotest.fail "point 1 must be journaled");
  Alcotest.(check bool) "absent point" true (Journal.find j2 2 = None);
  Journal.close j2

let test_journal_corrupt_tail () =
  with_temp_dir @@ fun dir ->
  let j = Journal.open_ ~dir ~sweep:"t" ~digest:"d1" in
  Journal.append j (ok_entry ~index:0 ~seed:7 1.0);
  Journal.append j (ok_entry ~index:1 ~seed:7 2.0);
  Journal.append j (ok_entry ~index:2 ~seed:7 3.0);
  let path = Journal.path j in
  Journal.close j;
  (* Flip one byte inside the second record and append a torn line — the
     shape a SIGKILL mid-append leaves behind. *)
  (match String.split_on_char '\n' (read_file path) with
  | header :: r0 :: r1 :: rest ->
      let r1 = Bytes.of_string r1 in
      Bytes.set r1 4 (if Bytes.get r1 4 = 'a' then 'b' else 'a');
      write_file path
        (String.concat "\n"
           ((header :: r0 :: Bytes.to_string r1 :: rest)
           @ [ {|{"point":9,"seed":"7","att|} ]))
  | _ -> Alcotest.fail "journal should hold a header plus three records");
  let j2 = Journal.open_ ~dir ~sweep:"t" ~digest:"d1" in
  let r = Journal.recovery j2 in
  Alcotest.(check int) "valid prefix replayed" 1 r.Journal.replayed;
  (* Corrupt line + the (valid but untrusted) record after it + torn tail. *)
  Alcotest.(check int) "tail truncated from first corruption" 3
    r.Journal.dropped;
  Alcotest.(check bool) "no reset" false r.Journal.reset;
  Alcotest.(check bool) "point 0 survives" true (Journal.find j2 0 <> None);
  Alcotest.(check bool) "point 1 gone" true (Journal.find j2 1 = None);
  Journal.close j2;
  (* The rewrite dropped the corrupt tail on disk too: a third open is
     clean. *)
  let j3 = Journal.open_ ~dir ~sweep:"t" ~digest:"d1" in
  Alcotest.(check bool)
    "rewritten journal is clean" true
    (Journal.recovery j3 = { Journal.replayed = 1; dropped = 0; reset = false });
  Journal.close j3

let test_journal_digest_reset () =
  with_temp_dir @@ fun dir ->
  let j = Journal.open_ ~dir ~sweep:"t" ~digest:"d1" in
  Journal.append j (ok_entry ~index:0 ~seed:7 1.0);
  Journal.close j;
  (* Same sweep, different config digest: the journaled points answer a
     different question and must be discarded wholesale. *)
  let j2 = Journal.open_ ~dir ~sweep:"t" ~digest:"d2" in
  let r = Journal.recovery j2 in
  Alcotest.(check bool) "journal reset" true r.Journal.reset;
  Alcotest.(check int) "nothing replayed" 0 (Journal.count j2);
  Journal.close j2

(* --- supervised sweep: retry seeds, quarantine, event budget --- *)

(* A task whose value captures exactly which attempt (and hence which
   derived seed) produced it. *)
let seed_probe ~seed = fun ~attempt i x ->
  (i, x, attempt, Sweep.attempt_seed ~seed:(seed + i) ~attempt)

let test_retry_seed_determinism () =
  with_defaults @@ fun () ->
  Alcotest.(check int)
    "attempt 0 is the unsupervised baseline" 1234
    (Sweep.attempt_seed ~seed:1234 ~attempt:0);
  Alcotest.(check bool)
    "retry attempts derive a fresh stream" true
    (Sweep.attempt_seed ~seed:1234 ~attempt:1 <> 1234);
  (match Sweep.parse_injection "t.retry:1@1" with
  | Ok injs -> Sweep.set_injections injs
  | Error e -> Alcotest.fail e);
  let run () =
    Sweep.mapi ~sweep:"t.retry" ~digest:"d" ~seed:1000
      ~task:(seed_probe ~seed:1000) [ 10; 20; 30 ]
  in
  let check_cells (cells : _ Sweep.cell list) =
    match cells with
    | [ c0; c1; c2 ] ->
        Alcotest.(check int) "point 0 clean" 1 c0.Sweep.attempts;
        Alcotest.(check bool)
          "point 0 value from attempt 0" true
          (c0.Sweep.value = Some (0, 10, 0, 1000));
        Alcotest.(check bool) "point 1 recovered" true
          (c1.Sweep.status = Sweep.Point_ok);
        Alcotest.(check int) "point 1 took two attempts" 2 c1.Sweep.attempts;
        Alcotest.(check bool)
          "point 1 value carries the attempt-1 seed" true
          (c1.Sweep.value
          = Some (1, 20, 1, Sweep.attempt_seed ~seed:1001 ~attempt:1));
        Alcotest.(check bool)
          "point 2 untouched" true
          (c2.Sweep.value = Some (2, 30, 0, 1002))
    | _ -> Alcotest.fail "three cells expected"
  in
  let first = run () in
  check_cells first;
  (* A recovered point is not a failure: the sweep is not partial. *)
  Alcotest.(check bool) "retried point leaves no failure" false
    (Sweep.partial ());
  (* Identical at every worker count, injection included. *)
  List.iter
    (fun jobs ->
      let again = with_jobs jobs run in
      check_cells again;
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical at jobs=%d" jobs)
        true (first = again))
    [ 2; 8 ]

let test_quarantine_threshold () =
  with_defaults @@ fun () ->
  Sweep.set_retries 1;
  (match Sweep.parse_injection "t.quar:0" with
  | Ok injs -> Sweep.set_injections injs
  | Error e -> Alcotest.fail e);
  let cells =
    Sweep.mapi ~sweep:"t.quar" ~digest:"d" ~seed:5
      ~task:(fun ~attempt:_ i x -> i + x)
      [ 100; 200 ]
  in
  (match cells with
  | [ c0; c1 ] ->
      Alcotest.(check bool)
        "point 0 quarantined" true
        (c0.Sweep.status = Sweep.Point_quarantined);
      (* retries = 1 means at most 1 + 1 attempts before quarantine. *)
      Alcotest.(check int) "retries exhausted" 2 c0.Sweep.attempts;
      Alcotest.(check bool) "no value" true (c0.Sweep.value = None);
      Alcotest.(check bool) "diagnostic present" true
        (String.length c0.Sweep.error > 0);
      Alcotest.(check bool)
        "point 1 unaffected" true
        (c1.Sweep.value = Some 201)
  | _ -> Alcotest.fail "two cells expected");
  Alcotest.(check (list int))
    "ok_values skips the quarantined point" [ 201 ]
    (Sweep.ok_values cells);
  (* The failure registry drives exit 4 and the ta-fail/1 manifest. *)
  Alcotest.(check bool) "sweep is partial" true (Sweep.partial ());
  (match Sweep.failures () with
  | [ f ] ->
      Alcotest.(check string) "failure names the sweep" "t.quar" f.Sweep.sweep;
      Alcotest.(check int) "failure names the point" 0 f.Sweep.index;
      Alcotest.(check int) "failure records attempts" 2 f.Sweep.attempts;
      Alcotest.(check bool)
        "failure is quarantined" true
        (f.Sweep.f_status = Sweep.Point_quarantined)
  | fs ->
      Alcotest.fail
        (Printf.sprintf "exactly one failure expected, got %d" (List.length fs)));
  let manifest = Sweep.manifest_json () in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "manifest mentions %S" needle)
        true
        (let lh = String.length manifest and ln = String.length needle in
         let rec go i =
           i + ln <= lh && (String.sub manifest i ln = needle || go (i + 1))
         in
         go 0))
    [ Sweep.manifest_schema; "t.quar"; "quarantined" ];
  Sweep.clear_failures ();
  Alcotest.(check bool) "cleared registry" false (Sweep.partial ())

let test_event_budget_fails_fast () =
  with_defaults @@ fun () ->
  (* A declared deterministic failure must not be retried: one attempt,
     Point_failed, and the rest of the sweep survives. *)
  let attempts_seen = Atomic.make 0 in
  let cells =
    Sweep.mapi ~sweep:"t.budget" ~digest:"d" ~seed:5
      ~task:(fun ~attempt:_ i x ->
        if i = 0 then begin
          Atomic.incr attempts_seen;
          raise (Desim.Sim.Event_budget_exceeded { max_events = 5 })
        end;
        x)
      [ 100; 200 ]
  in
  (match cells with
  | [ c0; c1 ] ->
      Alcotest.(check bool)
        "budget breach is Point_failed" true
        (c0.Sweep.status = Sweep.Point_failed);
      Alcotest.(check int) "single attempt, no retry" 1 c0.Sweep.attempts;
      Alcotest.(check string)
        "deterministic diagnostic" "event budget exceeded (> 5 events)"
        c0.Sweep.error;
      Alcotest.(check bool) "sibling point ok" true (c1.Sweep.value = Some 200)
  | _ -> Alcotest.fail "two cells expected");
  Alcotest.(check int) "task ran exactly once" 1 (Atomic.get attempts_seen);
  (* End to end through the DLS handoff: a real simulation under a tiny
     budget trips the watchdog instead of running to completion. *)
  Sweep.set_event_budget (Some 10);
  let cells =
    Sweep.mapi ~sweep:"t.budget2" ~digest:"d" ~seed:5
      ~task:(fun ~attempt:_ _ seed ->
        (Scenarios.System.run
           { Scenarios.System.default_config with Scenarios.System.seed }
           ~piats:50)
          .Scenarios.System.payload_delivered)
      [ 4_242 ]
  in
  (match cells with
  | [ c ] ->
      Alcotest.(check bool)
        "simulation contained by the watchdog" true
        (c.Sweep.status = Sweep.Point_failed);
      Alcotest.(check string)
        "watchdog diagnostic" "event budget exceeded (> 10 events)"
        c.Sweep.error
  | _ -> Alcotest.fail "one cell expected");
  Sweep.clear_failures ()

let test_prepare_failure_marks_all_points () =
  with_defaults @@ fun () ->
  Sweep.set_retries 0;
  let cells =
    Sweep.mapi ~sweep:"t.prep" ~digest:"d" ~seed:5
      ~prepare:(fun () -> raise (Sweep.Sweep_internal_error "no traces"))
      ~task:(fun ~attempt:_ i _ -> i)
      [ (); (); () ]
  in
  Alcotest.(check int) "every point gets a cell" 3 (List.length cells);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "prepare failure quarantines the point" true
        (c.Sweep.status = Sweep.Point_quarantined);
      Alcotest.(check string)
        "diagnostic names prepare" "prepare: internal error: no traces"
        c.Sweep.error)
    cells;
  Alcotest.(check (list int)) "no ok values" [] (Sweep.ok_values cells);
  Sweep.clear_failures ()

(* --- checkpoint/resume: bit-identity at any jobs --- *)

let observable (c : _ Sweep.cell) =
  (* Everything that feeds tables and manifests; [resumed] is telemetry. *)
  (c.Sweep.index, c.Sweep.status, c.Sweep.attempts, c.Sweep.value, c.Sweep.error)

let resume_sweep ~dir ~jobs =
  with_defaults @@ fun () ->
  Sweep.set_checkpoint_dir (Some dir);
  with_jobs jobs (fun () ->
      Sweep.mapi ~sweep:"t.resume" ~digest:"cfg" ~seed:9_000
        ~task:(seed_probe ~seed:9_000)
        (List.init 8 (fun i -> 10 * i)))

let test_resume_bit_identity () =
  (* Ground truth: the same sweep with no checkpointing at all. *)
  let bare =
    with_defaults (fun () ->
        Sweep.mapi ~sweep:"t.resume" ~digest:"cfg" ~seed:9_000
          ~task:(seed_probe ~seed:9_000)
          (List.init 8 (fun i -> 10 * i)))
  in
  List.iter
    (fun resume_jobs ->
      with_temp_dir @@ fun dir ->
      (* Full checkpointed run, then chop the journal back to the header
         plus three records — the state a SIGKILL after three completed
         points leaves behind. *)
      let full = resume_sweep ~dir ~jobs:1 in
      Alcotest.(check (list (testable (Fmt.any "cell") ( = ))))
        "checkpointed run matches the bare run"
        (List.map observable bare) (List.map observable full);
      let path = Filename.concat dir "t.resume.ckpt" in
      Alcotest.(check bool) "journal exists" true (Sys.file_exists path);
      (match String.split_on_char '\n' (read_file path) with
      | header :: records ->
          let kept = List.filteri (fun i _ -> i < 3) records in
          write_file path (String.concat "\n" (header :: kept) ^ "\n")
      | [] -> Alcotest.fail "journal should not be empty");
      let resumed = resume_sweep ~dir ~jobs:resume_jobs in
      Alcotest.(check (list (testable (Fmt.any "cell") ( = ))))
        (Printf.sprintf "resumed at jobs=%d is bit-identical" resume_jobs)
        (List.map observable full)
        (List.map observable resumed);
      Alcotest.(check bool)
        "some points replayed from the journal" true
        (List.exists (fun c -> c.Sweep.resumed) resumed);
      Alcotest.(check bool)
        "some points recomputed" true
        (List.exists (fun c -> not c.Sweep.resumed) resumed);
      (* A third run finds every point journaled and replays them all
         without computing anything. *)
      let replayed = resume_sweep ~dir ~jobs:1 in
      Alcotest.(check bool)
        "fully journaled run is pure replay" true
        (List.for_all (fun c -> c.Sweep.resumed) replayed);
      Alcotest.(check (list (testable (Fmt.any "cell") ( = ))))
        "pure replay is bit-identical"
        (List.map observable full)
        (List.map observable replayed))
    [ 1; 2; 8 ]

let test_resume_replays_failures () =
  (* Terminal failures are journaled and must replay as-is: a resumed
     partial table is byte-identical to an uninterrupted one, and the
     failure registry is repopulated for the exit-4 path. *)
  with_temp_dir @@ fun dir ->
  let run () =
    with_defaults @@ fun () ->
    Sweep.set_checkpoint_dir (Some dir);
    Sweep.set_retries 1;
    (match Sweep.parse_injection "t.replay:1" with
    | Ok injs -> Sweep.set_injections injs
    | Error e -> Alcotest.fail e);
    let cells =
      Sweep.mapi ~sweep:"t.replay" ~digest:"cfg" ~seed:77
        ~task:(fun ~attempt:_ i x -> i + x)
        [ 100; 200; 300 ]
    in
    (cells, Sweep.failures ())
  in
  let first, first_failures = run () in
  let second, second_failures = run () in
  Alcotest.(check (list (testable (Fmt.any "cell") ( = ))))
    "replayed cells identical"
    (List.map observable first)
    (List.map observable second);
  Alcotest.(check bool)
    "quarantined point replayed, not recomputed" true
    (List.exists
       (fun c -> c.Sweep.status = Sweep.Point_quarantined && c.Sweep.resumed)
       second);
  Alcotest.(check bool)
    "failure registry repopulated on replay" true
    (first_failures = second_failures && second_failures <> [])

(* --- partial tables --- *)

let test_table_status_column () =
  let clean = Scenarios.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Scenarios.Table.add_row clean [ "1"; "2" ];
  Alcotest.(check bool) "clean table has no failures" false
    (Scenarios.Table.has_failures clean);
  let csv = Scenarios.Table.to_csv clean in
  Alcotest.(check bool)
    "clean CSV has no status column" false
    (String.length csv >= 10 && String.sub csv 0 10 = "a,b,status");
  let partial = Scenarios.Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Scenarios.Table.add_row partial [ "1"; "2" ];
  Scenarios.Table.add_row partial
    ~status:(Scenarios.Table.Row_failed "tap starved")
    [ "3"; "-" ];
  Scenarios.Table.add_row partial
    ~status:(Scenarios.Table.Row_quarantined "boom")
    [ "5"; "-" ];
  Alcotest.(check bool) "partial table reports failures" true
    (Scenarios.Table.has_failures partial);
  let csv = Scenarios.Table.to_csv partial in
  let contains needle =
    let lh = String.length csv and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub csv i ln = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "partial CSV mentions %S" needle)
        true (contains needle))
    [ "status"; "ok"; "failed: tap starved"; "quarantined: boom" ]

let suite =
  [
    Alcotest.test_case "CRC-32 known answers" `Quick test_crc_known_answers;
    Alcotest.test_case "injection spec parsing" `Quick test_parse_injection;
    Alcotest.test_case "journal roundtrip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal corrupt-tail recovery" `Quick
      test_journal_corrupt_tail;
    Alcotest.test_case "journal digest-mismatch reset" `Quick
      test_journal_digest_reset;
    Alcotest.test_case "retry seeds deterministic at any jobs" `Quick
      test_retry_seed_determinism;
    Alcotest.test_case "quarantine after retries exhausted" `Quick
      test_quarantine_threshold;
    Alcotest.test_case "event budget fails fast" `Slow
      test_event_budget_fails_fast;
    Alcotest.test_case "prepare failure marks all points" `Quick
      test_prepare_failure_marks_all_points;
    Alcotest.test_case "resume bit-identity at jobs 1/2/8" `Slow
      test_resume_bit_identity;
    Alcotest.test_case "resume replays journaled failures" `Quick
      test_resume_replays_failures;
    Alcotest.test_case "table status column" `Quick test_table_status_column;
  ]
