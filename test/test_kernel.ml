(* Fused-kernel fast path: the differential contract.

   [System.run]'s kernel path must be observably indistinguishable from
   the event loop — same RNG draws in the same order, bit-identical
   result fields, metric totals and ta-trace/1 bytes, at any worker
   count, through checkpoint/resume.  These tests run every eligible
   configuration shape both ways and compare everything; plus property
   tests for the batched variate generator and the geometric boundary
   the kernel work surfaced. *)

module System = Scenarios.System
module Fastpath = Scenarios.Fastpath

let with_jobs jobs f =
  Exec.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_default_jobs 1) f

let with_kernel on f =
  let was = Fastpath.enabled () in
  Fastpath.set_enabled on;
  Fun.protect ~finally:(fun () -> Fastpath.set_enabled was) f

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- Sampler.exponential_fill: bit-equality and validation --- *)

let test_exponential_fill_bit_equality () =
  List.iter
    (fun (seed, rate) ->
      let n = 100_000 in
      let scalar_rng = Prng.Rng.create ~seed in
      let fill_rng = Prng.Rng.create ~seed in
      let buf = Float.Array.create n in
      Prng.Sampler.exponential_fill fill_rng ~rate buf ~n;
      for i = 0 to n - 1 do
        let s = Prng.Sampler.exponential scalar_rng ~rate in
        if
          Int64.bits_of_float s
          <> Int64.bits_of_float (Float.Array.get buf i)
        then
          Alcotest.failf "seed=%d rate=%g draw %d: scalar %h <> fill %h" seed
            rate i s (Float.Array.get buf i)
      done)
    [ (1, 10.0); (7, 0.5); (42, 1e4); (12345, 1.0) ]

let test_exponential_fill_partial () =
  (* Filling a prefix must consume exactly n draws and leave the tail
     untouched. *)
  let rng_a = Prng.Rng.create ~seed:9 in
  let rng_b = Prng.Rng.create ~seed:9 in
  let buf = Float.Array.make 64 (-1.0) in
  Prng.Sampler.exponential_fill rng_a ~rate:2.0 buf ~n:10;
  for i = 10 to 63 do
    Alcotest.(check (float 0.0))
      "tail untouched" (-1.0)
      (Float.Array.get buf i)
  done;
  Alcotest.(check (float 0.0))
    "stream position = 10 scalar draws"
    (let rec skip k = if k = 0 then () else (ignore (Prng.Sampler.exponential rng_b ~rate:2.0); skip (k - 1)) in
     skip 10;
     Prng.Sampler.exponential rng_b ~rate:2.0)
    (Prng.Sampler.exponential rng_a ~rate:2.0)

let expect_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_exponential_fill_invalid () =
  let rng = Prng.Rng.create ~seed:1 in
  let buf = Float.Array.create 8 in
  expect_invalid (fun () ->
      Prng.Sampler.exponential_fill rng ~rate:0.0 buf ~n:8);
  expect_invalid (fun () ->
      Prng.Sampler.exponential_fill rng ~rate:(-1.0) buf ~n:8);
  expect_invalid (fun () ->
      Prng.Sampler.exponential_fill rng ~rate:Float.nan buf ~n:8);
  expect_invalid (fun () ->
      Prng.Sampler.exponential_fill rng ~rate:1.0 buf ~n:0);
  expect_invalid (fun () ->
      Prng.Sampler.exponential_fill rng ~rate:1.0 buf ~n:9);
  expect_invalid (fun () ->
      Prng.Sampler.exponential_fill rng ~rate:1.0 (Float.Array.create 0) ~n:0)

(* --- geometric boundary: p = 1 and NaN (regression) --- *)

let test_geometric_boundary () =
  let rng = Prng.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    Alcotest.(check int)
      "p = 1 always succeeds immediately" 0
      (Prng.Sampler.geometric rng ~p:1.0)
  done;
  (* p just below 1 still almost always returns 0 and never negative. *)
  for _ = 1 to 1000 do
    let k = Prng.Sampler.geometric rng ~p:0.999999 in
    if k < 0 then Alcotest.failf "negative geometric draw %d" k
  done;
  expect_invalid (fun () -> Prng.Sampler.geometric rng ~p:Float.nan);
  expect_invalid (fun () -> Prng.Sampler.geometric rng ~p:0.0);
  expect_invalid (fun () -> Prng.Sampler.geometric rng ~p:1.0000001)

(* --- the differential suite --- *)

let hop ?(bw = 1_000_000.0) ?(prop = 0.0) ?qlimit ?cross () =
  {
    Netsim.Topology.bandwidth_bps = bw;
    propagation = prop;
    queue_limit = qlimit;
    cross;
  }

let poisson_cross rate_pps =
  { Netsim.Topology.rate_pps; size_bytes = 400; burst = `Poisson }

let onoff_cross =
  {
    Netsim.Topology.rate_pps = 100.0;
    size_bytes = 400;
    burst = `On_off (0.1, 0.4, None);
  }

(* Every eligible configuration shape: CIT and all VIT laws, all jitter
   models, no hops / loaded chain / mid-chain tap / propagation /
   queue-limit drops. *)
let eligible_configs =
  let base = System.default_config in
  [
    ("cit_nohops", base);
    ( "cit_fast_jitterless",
      {
        base with
        timer = Padding.Timer.Constant 0.002;
        jitter = Padding.Jitter.none;
        payload_rate_pps = 300.0;
      } );
    ( "vit_normal",
      {
        base with
        timer = Padding.Timer.Normal { mean = 0.010; sigma = 0.002 };
        jitter = Padding.Jitter.parametric ~mu:5e-5 ~sigma:8e-6;
      } );
    ( "vit_uniform",
      {
        base with
        timer = Padding.Timer.Uniform { mean = 0.010; half_width = 0.004 };
      } );
    ( "vit_exponential",
      { base with timer = Padding.Timer.Exponential { mean = 0.012 } } );
    ( "chain_loaded",
      {
        base with
        hops =
          [|
            hop ();
            hop ~prop:0.002 ~cross:(poisson_cross 150.0) ();
            hop ~bw:400_000.0 ~qlimit:3 ~cross:(poisson_cross 200.0) ();
          |];
        tap_position = 3;
      } );
    ( "chain_midtap",
      {
        base with
        hops = [| hop ~cross:(poisson_cross 120.0) (); hop (); hop () |];
        tap_position = 1;
      } );
  ]

let filtered_snapshot () =
  (* The event-queue-depth gauge has a documented deterministic surrogate
     on the kernel path, and the kernel.* counters record which path ran
     — everything else must match exactly. *)
  Obs.Metrics.snapshot ()
  |> List.filter (fun (name, _) ->
         name <> "desim.queue_hwm"
         && not
              (String.length name >= 12
              && String.sub name 0 12 = "desim.kernel"))

let snapshot_str () =
  Format.asprintf "%a" Obs.Metrics.Snapshot.pp (filtered_snapshot ())

let kernel_runs () =
  Obs.Metrics.Snapshot.counter_value (Obs.Metrics.snapshot ())
    "desim.kernel.runs"

let fallbacks reason =
  Obs.Metrics.Snapshot.counter_value (Obs.Metrics.snapshot ())
    ("desim.kernel.fallbacks{reason=" ^ reason ^ "}")

let run_both ?(piats = 400) cfg =
  Obs.Metrics.reset ();
  let rk = with_kernel true (fun () -> System.run ~fresh_arena:true cfg ~piats) in
  let sk = snapshot_str () in
  let kruns = kernel_runs () + fallbacks "tie" in
  Obs.Metrics.reset ();
  let re =
    with_kernel false (fun () -> System.run ~fresh_arena:true cfg ~piats)
  in
  let se = snapshot_str () in
  (rk, sk, kruns, re, se)

let check_results_equal name (rk : System.result) (re : System.result) =
  (* compare, not (=): mean latency can legitimately be computed from
     zero samples in degenerate configs, and nan <> nan under (=). *)
  if Stdlib.compare rk re <> 0 then
    Alcotest.failf "%s: kernel and event-loop results differ" name

let test_differential_results () =
  List.iter
    (fun (name, cfg) ->
      let rk, sk, kruns, re, se = run_both cfg in
      check_results_equal name rk re;
      Alcotest.(check string) (name ^ ": metric totals") se sk;
      (* Whether the kernel actually ran (vs tie-fallback) is config
         dependent, but it must have either run or counted the tie. *)
      Alcotest.(check int) (name ^ ": kernel attempted") 1 kruns)
    eligible_configs

let test_differential_trace () =
  (* ta-trace/1 bytes must be identical: same events, same order, same
     timestamps, for a config that exercises gateway + links + drops +
     cross diversion. *)
  let cfg = List.assoc "chain_loaded" eligible_configs in
  let capture kernel =
    let path = Filename.temp_file "kernel_trace" ".jsonl" in
    Obs.Metrics.reset ();
    Obs.Trace.enable ~path;
    Fun.protect
      ~finally:(fun () -> Obs.Trace.disable ())
      (fun () ->
        ignore
          (with_kernel kernel (fun () ->
               System.run ~fresh_arena:true cfg ~piats:400)
            : System.result);
        Obs.Trace.flush ());
    let body = read_file path in
    Sys.remove path;
    body
  in
  let tk = capture true in
  let te = capture false in
  Alcotest.(check bool) "trace non-trivial" true (String.length tk > 10_000);
  Alcotest.(check string) "identical trace bytes" te tk

let test_differential_sharded_jobs () =
  (* One logical collection split across 8 shards: byte-identical between
     paths at jobs 1, 2 and 8 (shards mix kernel-eligible seeds with
     tie-fallback seeds, so this also covers mixed execution). *)
  let cfg = List.assoc "chain_loaded" eligible_configs in
  let run kernel jobs =
    Obs.Metrics.reset ();
    with_kernel kernel (fun () ->
        with_jobs jobs (fun () -> System.run_sharded ~shards:8 cfg ~piats:320))
  in
  let reference = run false 1 in
  List.iter
    (fun jobs ->
      List.iter
        (fun kernel ->
          let r = run kernel jobs in
          if Stdlib.compare reference r <> 0 then
            Alcotest.failf "kernel=%b jobs=%d differs from evloop jobs=1"
              kernel jobs)
        [ true; false ])
    [ 1; 2; 8 ]

let test_fallback_reasons () =
  (* Ineligible shapes must take the event loop and say why. *)
  Obs.Metrics.reset ();
  let cbr = { System.default_config with payload_model = System.Cbr_payload } in
  ignore (with_kernel true (fun () -> System.run cbr ~piats:50) : System.result);
  Alcotest.(check int) "cbr fallback" 1 (fallbacks "cbr_payload");
  Obs.Metrics.reset ();
  let onoff =
    {
      System.default_config with
      hops = [| hop ~cross:onoff_cross () |];
      tap_position = 1;
    }
  in
  ignore
    (with_kernel true (fun () -> System.run onoff ~piats:50) : System.result);
  Alcotest.(check int) "on/off fallback" 1 (fallbacks "onoff_cross");
  Obs.Metrics.reset ();
  ignore
    (with_kernel false (fun () -> System.run System.default_config ~piats:50)
      : System.result);
  Alcotest.(check int) "disabled fallback" 1 (fallbacks "disabled");
  Alcotest.(check int) "no kernel runs" 0 (kernel_runs ())

let test_checkpoint_resume_mixed_paths () =
  (* Kill-resume through Sweep.mapi: half the points journaled by a
     kernel-path run, the rest computed after resume by an event-loop
     process (and vice versa) must reproduce the uninterrupted tables. *)
  let module Sweep = Scenarios.Sweep in
  let points = [ 0; 1; 2; 3 ] in
  let task ~attempt:_ i x =
    let cfg =
      {
        (List.assoc "chain_loaded" eligible_configs) with
        seed = 100 + (7 * x);
      }
    in
    let r = System.run cfg ~piats:200 in
    (i, r.System.piats, r.System.overhead, r.System.mean_payload_latency)
  in
  let with_temp_dir f =
    let dir = Filename.temp_file "ta_kernel_ckpt" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o700;
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists dir then begin
          Array.iter
            (fun name -> Sys.remove (Filename.concat dir name))
            (Sys.readdir dir);
          Sys.rmdir dir
        end)
      (fun () -> f dir)
  in
  let reset_sweep () =
    Sweep.set_checkpoint_dir None;
    Sweep.clear_failures ()
  in
  Fun.protect ~finally:reset_sweep @@ fun () ->
  let uninterrupted =
    reset_sweep ();
    with_kernel true (fun () ->
        Sweep.ok_values
          (Sweep.mapi ~sweep:"kernel.ckpt" ~digest:"d" ~seed:1 ~task points))
  in
  List.iter
    (fun (first_kernel, resume_kernel) ->
      with_temp_dir (fun dir ->
          reset_sweep ();
          Sweep.set_checkpoint_dir (Some dir);
          (* First process journals only the first two points ("killed"
             after a partial run). *)
          let _partial =
            with_kernel first_kernel (fun () ->
                Sweep.mapi ~sweep:"kernel.ckpt" ~digest:"d" ~seed:1 ~task
                  [ 0; 1 ])
          in
          (* Second process resumes the full sweep on the other path:
             journaled points replay, missing ones compute fresh. *)
          let resumed =
            with_kernel resume_kernel (fun () ->
                Sweep.ok_values
                  (Sweep.mapi ~sweep:"kernel.ckpt" ~digest:"d" ~seed:1 ~task
                     points))
          in
          if Stdlib.compare uninterrupted resumed <> 0 then
            Alcotest.failf
              "resume (first=%b resume=%b) differs from uninterrupted run"
              first_kernel resume_kernel))
    [ (true, false); (false, true) ]

let suite =
  [
    Alcotest.test_case "exponential_fill bit-equality" `Quick
      test_exponential_fill_bit_equality;
    Alcotest.test_case "exponential_fill partial fill" `Quick
      test_exponential_fill_partial;
    Alcotest.test_case "exponential_fill invalid args" `Quick
      test_exponential_fill_invalid;
    Alcotest.test_case "geometric p=1/NaN boundary" `Quick
      test_geometric_boundary;
    Alcotest.test_case "differential: results + metrics" `Quick
      test_differential_results;
    Alcotest.test_case "differential: trace bytes" `Quick
      test_differential_trace;
    Alcotest.test_case "differential: sharded at jobs 1/2/8" `Quick
      test_differential_sharded_jobs;
    Alcotest.test_case "fallback reasons counted" `Quick test_fallback_reasons;
    Alcotest.test_case "checkpoint resume across paths" `Quick
      test_checkpoint_resume_mixed_paths;
  ]
