(* Golden suite for the talint static-analysis pass: one positive and one
   negative fixture per rule under lint_fixtures/, suppression-comment
   behaviour, role exemptions, the talint/1 JSON schema, and a run over
   the real tree asserting the gate is green. *)

let fixture_dir () =
  (* cwd is _build/default/test under [dune runtest] but the project root
     under [dune exec test/test_main.exe]; accept either. *)
  List.find_opt Sys.file_exists [ "lint_fixtures"; "test/lint_fixtures" ]

let read_fixture name =
  match fixture_dir () with
  | None -> Alcotest.fail "lint_fixtures directory not found"
  | Some dir ->
      In_channel.with_open_bin (Filename.concat dir name) In_channel.input_all

let check_fixture ?(role = Lint.Rules.Lib "fixture") ?(mli_exists = true) name =
  Lint.Rules.check
    { Lint.Rules.role; file = name; source = read_fixture name; mli_exists }

let check_source ?(role = Lint.Rules.Lib "fixture") ?(mli_exists = true) source =
  Lint.Rules.check { Lint.Rules.role; file = "inline.ml"; source; mli_exists }

let rules fs = List.map (fun f -> f.Lint.Finding.rule) fs

let pos f =
  (f.Lint.Finding.rule, f.Lint.Finding.line, f.Lint.Finding.col)

let rules_t = Alcotest.(list string)

(* --- positive fixtures: rule id AND location must be exact --- *)

let test_positive_fixtures () =
  Alcotest.(check (list (triple string int int)))
    "d001_bad: both Random uses, exact spans"
    [ ("D001", 2, 14); ("D001", 3, 16) ]
    (List.map pos (check_fixture "d001_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "d002_bad: wall-clock read" [ ("D002", 2, 15) ]
    (List.map pos (check_fixture "d002_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "d003_bad: stdout print" [ ("D003", 2, 15) ]
    (List.map pos (check_fixture "d003_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "r001_bad: toplevel mutable" [ ("R001", 2, 12) ]
    (List.map pos (check_fixture "r001_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "r001_fleet_bad: naive global fleet accumulators"
    [ ("R001", 3, 20); ("R001", 4, 21) ]
    (List.map pos (check_fixture "r001_fleet_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "p001_bad: ad-hoc Marshal" [ ("P001", 2, 13) ]
    (List.map pos (check_fixture "p001_bad.ml"));
  Alcotest.check rules_t "s001_bad: missing .mli" [ "S001" ]
    (rules (check_fixture ~mli_exists:false "s001_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "s002_bad: failwith" [ ("S002", 2, 15) ]
    (List.map pos (check_fixture "s002_bad.ml"))

let test_negative_fixtures () =
  List.iter
    (fun name ->
      Alcotest.check rules_t (name ^ " is clean") []
        (rules (check_fixture name)))
    [ "d001_ok.ml"; "d002_ok.ml"; "d003_ok.ml"; "p001_ok.ml"; "r001_ok.ml";
      "r001_shard_ok.ml"; "r001_fleet_ok.ml"; "s001_ok.ml"; "s002_ok.ml" ]

(* --- suppression comments --- *)

let test_suppression () =
  Alcotest.check rules_t "directives silence both violations" []
    (rules (check_fixture "suppressed.ml"));
  (* The directive is load-bearing: strip the word "allow" and the same
     source reports both toplevel refs. *)
  let stripped =
    Str.global_replace (Str.regexp_string "talint: allow") "x"
      (read_fixture "suppressed.ml")
  in
  Alcotest.check rules_t "stripped directives expose the findings"
    [ "R001"; "R001" ]
    (rules (check_source stripped));
  (* S001 is file-scope: a directive anywhere in the file counts. *)
  Alcotest.check rules_t "S001 suppressed from the file body" []
    (rules
       (check_source ~mli_exists:false
          "let x = 1\n\n(* talint: allow S001 — generated module *)\nlet y = 2\n"));
  (* A directive two lines above the offender does NOT reach it. *)
  Alcotest.check rules_t "directive out of range" [ "R001" ]
    (rules
       (check_source
          "(* talint: allow R001 — too far away *)\n\nlet cache = Hashtbl.create 4\n"))

(* --- role exemptions --- *)

let test_role_exemptions () =
  let clock = "let t0 = Unix.gettimeofday ()\n" in
  Alcotest.check rules_t "bench may read the wall clock" []
    (rules (check_source ~role:Lint.Rules.Bench clock));
  Alcotest.check rules_t "lib/obs may read the wall clock" []
    (rules (check_source ~role:(Lint.Rules.Lib "obs") clock));
  Alcotest.check rules_t "other lib dirs may not" [ "D002" ]
    (rules (check_source ~role:(Lint.Rules.Lib "desim") clock));
  Alcotest.check rules_t "bin owns stdout and failwith" []
    (rules
       (check_source ~role:Lint.Rules.Bin
          "let () = print_endline \"hi\"\nlet f () = failwith \"cli\"\n"));
  Alcotest.check rules_t "lib/prng may wrap Random" []
    (rules (check_source ~role:(Lint.Rules.Lib "prng") "let r = Random.bits\n"));
  Alcotest.check rules_t "but self_init is banned even there" [ "D001" ]
    (rules
       (check_source ~role:(Lint.Rules.Lib "prng")
          "let f () = Random.self_init ()\n"));
  Alcotest.check rules_t "lib/obs owns its registries" []
    (rules
       (check_source ~role:(Lint.Rules.Lib "obs")
          "let registry = Hashtbl.create 8\n"));
  let marshal = "let f v = Marshal.to_string v []\n" in
  Alcotest.check rules_t "lib/exec owns Marshal" []
    (rules (check_source ~role:(Lint.Rules.Lib "exec") marshal));
  Alcotest.check rules_t "bin may not Marshal" [ "P001" ]
    (rules (check_source ~role:Lint.Rules.Bin marshal));
  Alcotest.check rules_t "bench may not Marshal" [ "P001" ]
    (rules (check_source ~role:Lint.Rules.Bench marshal))

let test_parse_error () =
  Alcotest.check rules_t "unparseable file reports E000" [ "E000" ]
    (rules (check_source "let = ) ="))

(* --- the talint/1 JSON report --- *)

let test_json_schema () =
  let summary =
    {
      Lint.Driver.root = "/tmp/x";
      files = 2;
      findings =
        [
          Lint.Finding.v ~rule:"D003" ~file:"lib/a/b.ml" ~line:3 ~col:7
            "printing \"with quotes\"\nand a newline";
        ];
    }
  in
  match Obs.Json.of_string (Lint.Driver.to_json summary) with
  | Error msg -> Alcotest.fail ("talint/1 report is not valid JSON: " ^ msg)
  | Ok json ->
      let member k = Obs.Json.member k json in
      Alcotest.(check bool)
        "schema is talint/1" true
        (member "schema" = Some (Obs.Json.Str "talint/1"));
      Alcotest.(check bool)
        "files_scanned" true
        (member "files_scanned" = Some (Obs.Json.Num 2.0));
      Alcotest.(check bool)
        "count" true
        (member "count" = Some (Obs.Json.Num 1.0));
      (match member "findings" with
      | Some (Obs.Json.Arr [ f ]) ->
          Alcotest.(check bool)
            "rule" true
            (Obs.Json.member "rule" f = Some (Obs.Json.Str "D003"));
          Alcotest.(check bool)
            "file" true
            (Obs.Json.member "file" f = Some (Obs.Json.Str "lib/a/b.ml"));
          Alcotest.(check bool)
            "line" true
            (Obs.Json.member "line" f = Some (Obs.Json.Num 3.0));
          Alcotest.(check bool)
            "col" true
            (Obs.Json.member "col" f = Some (Obs.Json.Num 7.0));
          Alcotest.(check bool)
            "message survives escaping" true
            (match Obs.Json.member "message" f with
            | Some (Obs.Json.Str s) ->
                String.length s > 0
                && String.contains s '"' && String.contains s '\n'
            | _ -> false)
      | _ -> Alcotest.fail "findings is not a one-element array")

(* --- the real tree must be clean --- *)

let test_real_tree_clean () =
  match Lint.Driver.find_root () with
  | None -> Alcotest.fail "cannot locate the project root from the test cwd"
  | Some root ->
      let report = Lint.Driver.run ~root in
      Alcotest.(check bool)
        "scanned a real tree (>= 80 files)" true
        (report.Lint.Driver.files >= 80);
      Alcotest.(check (list string))
        "zero findings on the shipped tree" []
        (List.map Lint.Finding.to_string report.Lint.Driver.findings)

(* --- CLI end-to-end: exit codes and JSON on a violating tree --- *)

let talint_exe () =
  List.find_opt Sys.file_exists
    [ "../bin/talint.exe"; "_build/default/bin/talint.exe" ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_cli_roundtrip () =
  match talint_exe () with
  | None -> Alcotest.skip ()
  | Some exe ->
      let dir = Filename.temp_file "talint_tree" "" in
      Sys.remove dir;
      ignore
        (Sys.command (Printf.sprintf "mkdir -p %s/lib/demo" (Filename.quote dir))
          : int);
      Fun.protect
        ~finally:(fun () ->
          ignore
            (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) : int))
        (fun () ->
          Out_channel.with_open_bin (dir ^ "/dune-project") (fun oc ->
              output_string oc "(lang dune 3.0)\n");
          Out_channel.with_open_bin (dir ^ "/lib/demo/bad.ml") (fun oc ->
              output_string oc "let roll () = Random.int 6\n");
          let out = Filename.temp_file "talint_out" ".json" in
          Fun.protect
            ~finally:(fun () -> Sys.remove out)
            (fun () ->
              let code =
                Sys.command
                  (Printf.sprintf "%s --root %s --format json >%s 2>&1"
                     (Filename.quote exe) (Filename.quote dir)
                     (Filename.quote out))
              in
              Alcotest.(check int) "findings exit 1" 1 code;
              let json = read_file out in
              (match Obs.Json.of_string json with
              | Error msg -> Alcotest.fail ("not JSON: " ^ msg)
              | Ok j ->
                  Alcotest.(check bool)
                    "schema" true
                    (Obs.Json.member "schema" j = Some (Obs.Json.Str "talint/1"));
                  Alcotest.(check bool)
                    "two findings (D001 + S001)" true
                    (Obs.Json.member "count" j = Some (Obs.Json.Num 2.0)));
              let code2 =
                Sys.command
                  (Printf.sprintf "%s --format yaml >/dev/null 2>&1"
                     (Filename.quote exe))
              in
              Alcotest.(check int) "bad --format exits 2" 2 code2))

let suite =
  [
    Alcotest.test_case "positive fixtures: exact rule + span" `Quick
      test_positive_fixtures;
    Alcotest.test_case "negative fixtures are clean" `Quick
      test_negative_fixtures;
    Alcotest.test_case "allow-comments suppress and expire" `Quick
      test_suppression;
    Alcotest.test_case "role exemptions (obs/prng/bin/bench)" `Quick
      test_role_exemptions;
    Alcotest.test_case "parse error reports E000" `Quick test_parse_error;
    Alcotest.test_case "talint/1 JSON schema" `Quick test_json_schema;
    Alcotest.test_case "real tree has zero findings" `Quick
      test_real_tree_clean;
    Alcotest.test_case "CLI: exit 1 + JSON on violations, 2 on bad flags"
      `Quick test_cli_roundtrip;
  ]
