(* Golden suite for the talint static-analysis pass: per-file rule
   fixtures (positive and negative) under lint_fixtures/, suppression
   comments, role exemptions, and the whole-program layer — fixture
   TREES for the interprocedural passes (E001 exception escape through
   two call hops, T001 clock taint via a helper module, A001 closure
   allocation in a hot-path callee), the lint/BASELINE.json waiver
   workflow, the incremental summary cache, the talint/2 JSON schema,
   and a run over the real tree asserting the gate is green. *)

let fixture_dir () =
  (* cwd is _build/default/test under [dune runtest] but the project root
     under [dune exec test/test_main.exe]; accept either. *)
  List.find_opt Sys.file_exists [ "lint_fixtures"; "test/lint_fixtures" ]

let fixture_path name =
  match fixture_dir () with
  | None -> Alcotest.fail "lint_fixtures directory not found"
  | Some dir -> Filename.concat dir name

let read_fixture name =
  In_channel.with_open_bin (fixture_path name) In_channel.input_all

let check_fixture ?(role = Lint.Rules.Lib "fixture") ?(mli_exists = true) name =
  Lint.Rules.check
    { Lint.Rules.role; file = name; source = read_fixture name; mli_exists }

let check_source ?(role = Lint.Rules.Lib "fixture") ?(mli_exists = true) source =
  Lint.Rules.check { Lint.Rules.role; file = "inline.ml"; source; mli_exists }

let rules fs = List.map (fun f -> f.Lint.Finding.rule) fs

let pos f =
  (f.Lint.Finding.rule, f.Lint.Finding.line, f.Lint.Finding.col)

let span f =
  (f.Lint.Finding.rule, f.Lint.Finding.file, f.Lint.Finding.line,
   f.Lint.Finding.col)

let rules_t = Alcotest.(list string)
let span_t = Alcotest.(list (pair (pair string string) (pair int int)))
let spans fs = List.map (fun f -> let r, fi, l, c = span f in ((r, fi), (l, c))) fs

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go k = k + m <= n && (String.sub hay k m = needle || go (k + 1)) in
  m = 0 || go 0

(* --- positive fixtures: rule id AND location must be exact --- *)

let test_positive_fixtures () =
  Alcotest.(check (list (triple string int int)))
    "d001_bad: both Random uses, exact spans"
    [ ("D001", 2, 14); ("D001", 3, 16) ]
    (List.map pos (check_fixture "d001_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "d002_bad: wall-clock read" [ ("D002", 2, 15) ]
    (List.map pos (check_fixture "d002_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "d003_bad: stdout print" [ ("D003", 2, 15) ]
    (List.map pos (check_fixture "d003_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "d004_bad: floatarray ordered compare + polymorphic compare"
    [ ("D004", 1, 17); ("D004", 2, 14) ]
    (List.map pos (check_fixture ~role:(Lint.Rules.Lib "stats") "d004_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "r001_bad: toplevel mutable" [ ("R001", 2, 12) ]
    (List.map pos (check_fixture "r001_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "r001_fleet_bad: naive global fleet accumulators"
    [ ("R001", 3, 20); ("R001", 4, 21) ]
    (List.map pos (check_fixture "r001_fleet_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "p001_bad: ad-hoc Marshal" [ ("P001", 2, 13) ]
    (List.map pos (check_fixture "p001_bad.ml"));
  Alcotest.check rules_t "s001_bad: missing .mli" [ "S001" ]
    (rules (check_fixture ~mli_exists:false "s001_bad.ml"));
  Alcotest.(check (list (triple string int int)))
    "s002_bad: failwith" [ ("S002", 2, 15) ]
    (List.map pos (check_fixture "s002_bad.ml"))

let test_negative_fixtures () =
  List.iter
    (fun name ->
      Alcotest.check rules_t (name ^ " is clean") []
        (rules (check_fixture name)))
    [ "d001_ok.ml"; "d002_ok.ml"; "d003_ok.ml"; "p001_ok.ml"; "r001_ok.ml";
      "r001_shard_ok.ml"; "r001_fleet_ok.ml"; "s001_ok.ml"; "s002_ok.ml" ];
  (* D004 negatives: Float.compare is the fix; ordered ops on a float
     literal compile to specialised code and stay silent; the rule is
     scoped to lib/stats and lib/adversary. *)
  Alcotest.check rules_t "d004_ok is clean in lib/stats" []
    (rules (check_fixture ~role:(Lint.Rules.Lib "stats") "d004_ok.ml"));
  Alcotest.check rules_t "d004_bad is out of scope in lib/desim" []
    (rules (check_fixture ~role:(Lint.Rules.Lib "desim") "d004_bad.ml"))

(* --- suppression comments --- *)

let test_suppression () =
  Alcotest.check rules_t "directives silence both violations" []
    (rules (check_fixture "suppressed.ml"));
  (* The directive is load-bearing: strip the word "allow" and the same
     source reports both toplevel refs. *)
  let stripped =
    Str.global_replace (Str.regexp_string "talint: allow") "x"
      (read_fixture "suppressed.ml")
  in
  Alcotest.check rules_t "stripped directives expose the findings"
    [ "R001"; "R001" ]
    (rules (check_source stripped));
  (* S001 is file-scope: a directive anywhere in the file counts. *)
  Alcotest.check rules_t "S001 suppressed from the file body" []
    (rules
       (check_source ~mli_exists:false
          "let x = 1\n\n(* talint: allow S001 — generated module *)\nlet y = 2\n"));
  (* A directive two lines above the offender does NOT reach it. *)
  Alcotest.check rules_t "directive out of range" [ "R001" ]
    (rules
       (check_source
          "(* talint: allow R001 — too far away *)\n\nlet cache = Hashtbl.create 4\n"))

(* --- role exemptions --- *)

let test_role_exemptions () =
  let clock = "let t0 = Unix.gettimeofday ()\n" in
  Alcotest.check rules_t "bench may read the wall clock" []
    (rules (check_source ~role:Lint.Rules.Bench clock));
  Alcotest.check rules_t "lib/obs may read the wall clock" []
    (rules (check_source ~role:(Lint.Rules.Lib "obs") clock));
  Alcotest.check rules_t "other lib dirs may not" [ "D002" ]
    (rules (check_source ~role:(Lint.Rules.Lib "desim") clock));
  Alcotest.check rules_t "bin owns stdout and failwith" []
    (rules
       (check_source ~role:Lint.Rules.Bin
          "let () = print_endline \"hi\"\nlet f () = failwith \"cli\"\n"));
  Alcotest.check rules_t "lib/prng may wrap Random" []
    (rules (check_source ~role:(Lint.Rules.Lib "prng") "let r = Random.bits\n"));
  Alcotest.check rules_t "but self_init is banned even there" [ "D001" ]
    (rules
       (check_source ~role:(Lint.Rules.Lib "prng")
          "let f () = Random.self_init ()\n"));
  Alcotest.check rules_t "lib/obs owns its registries" []
    (rules
       (check_source ~role:(Lint.Rules.Lib "obs")
          "let registry = Hashtbl.create 8\n"));
  let marshal = "let f v = Marshal.to_string v []\n" in
  Alcotest.check rules_t "lib/exec owns Marshal" []
    (rules (check_source ~role:(Lint.Rules.Lib "exec") marshal));
  Alcotest.check rules_t "bin may not Marshal" [ "P001" ]
    (rules (check_source ~role:Lint.Rules.Bin marshal));
  Alcotest.check rules_t "bench may not Marshal" [ "P001" ]
    (rules (check_source ~role:Lint.Rules.Bench marshal))

let test_parse_error () =
  Alcotest.check rules_t "unparseable file reports E000" [ "E000" ]
    (rules (check_source "let = ) ="))

(* --- the fixture trees: one seeded violation per whole-program pass --- *)

let run_tree ?cache_path name =
  Lint.Driver.run ?cache_path ~root:(fixture_path name) ()

let test_tree_e001 () =
  let r = run_tree "tree_e001" in
  Alcotest.check span_t "one E001 at the exported entry point"
    [ (("E001", "lib/demo/api.ml"), (1, 0)) ]
    (spans r.Lint.Driver.findings);
  let msg = (List.hd r.Lint.Driver.findings).Lint.Finding.message in
  Alcotest.(check bool)
    "message names the exception" true (contains msg "may raise Boom");
  Alcotest.(check bool)
    "witness chain crosses both hops" true
    (contains msg "Api.entry -> Mid.relay -> Deep.boom_if")
(* [Api.safe] catches Boom and [Mid]/[Deep] declare it in their doc
   contracts, so the only finding is the undocumented [Api.entry]. *)

let test_tree_t001 () =
  let r = run_tree "tree_t001" in
  Alcotest.check span_t "one T001 at the fan-out call site"
    [ (("T001", "lib/work/job.ml"), (1, 13)) ]
    (spans r.Lint.Driver.findings);
  let msg = (List.hd r.Lint.Driver.findings).Lint.Finding.message in
  Alcotest.(check bool)
    "sink is the helper's clock read" true
    (contains msg "wall-clock read (Unix.gettimeofday) at lib/work/clockish.ml:2");
  Alcotest.(check bool)
    "call chain goes through the helper" true
    (contains msg "Job.run -> Clockish.read")

let test_tree_a001 () =
  let r = run_tree "tree_a001" in
  Alcotest.check span_t "one A001 in the hot-path callee"
    [ (("A001", "lib/hot/util.ml"), (1, 23)) ]
    (spans r.Lint.Driver.findings);
  let msg = (List.hd r.Lint.Driver.findings).Lint.Finding.message in
  Alcotest.(check bool)
    "closure attributed to the manifest root" true
    (contains msg "closure allocates in Util.bump (reached from hot path Hot.step)")

let test_deterministic_order () =
  let a = run_tree "tree_t001" and b = run_tree "tree_t001" in
  Alcotest.(check (list string))
    "two runs render identically"
    (List.map Lint.Finding.to_string a.Lint.Driver.findings)
    (List.map Lint.Finding.to_string b.Lint.Driver.findings);
  let r = run_tree "tree_e001" in
  Alcotest.(check bool)
    "findings come out sorted" true
    (let fs = r.Lint.Driver.findings in
     List.sort Lint.Finding.compare fs = fs)

(* --- the baseline waiver workflow --- *)

let with_tree_copy name f =
  let dir = Filename.temp_file "talint_tree" "" in
  Sys.remove dir;
  ignore
    (Sys.command
       (Printf.sprintf "cp -r %s %s"
          (Filename.quote (fixture_path name))
          (Filename.quote dir))
      : int);
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) : int))
    (fun () -> f dir)

let write_file path text =
  Out_channel.with_open_bin path (fun oc -> output_string oc text)

let test_baseline_waivers () =
  (* tree_a001's copy already carries lint/hot_paths.txt, so dropping a
     BASELINE.json next to it exercises the full driver wiring. *)
  with_tree_copy "tree_a001" (fun dir ->
      let baseline = Filename.concat dir "lint/BASELINE.json" in
      (* 1. a matching waiver demotes the finding to baselined *)
      write_file baseline
        {|{"schema":"talint-baseline/1","waivers":[
           {"rule":"A001","file":"lib/hot/util.ml",
            "contains":"closure allocates","reason":"fixture waiver"}]}|};
      let r = Lint.Driver.run ~root:dir () in
      Alcotest.check span_t "no live findings" [] (spans r.Lint.Driver.findings);
      Alcotest.check span_t "the A001 is baselined, still reported"
        [ (("A001", "lib/hot/util.ml"), (1, 23)) ]
        (spans r.Lint.Driver.baselined);
      (* 2. a stale waiver is itself a live B001 at its array index *)
      write_file baseline
        {|{"schema":"talint-baseline/1","waivers":[
           {"rule":"A001","file":"lib/hot/util.ml",
            "contains":"closure allocates","reason":"fixture waiver"},
           {"rule":"T001","file":"lib/hot/hot.ml",
            "contains":"never matches","reason":"stale"}]}|};
      let r = Lint.Driver.run ~root:dir () in
      Alcotest.check span_t "stale waiver surfaces as B001"
        [ (("B001", "lint/BASELINE.json"), (2, 0)) ]
        (spans r.Lint.Driver.findings);
      (* 3. a waiver without a reason is malformed *)
      write_file baseline
        {|{"schema":"talint-baseline/1","waivers":[
           {"rule":"A001","file":"lib/hot/util.ml",
            "contains":"closure allocates"}]}|};
      let r = Lint.Driver.run ~root:dir () in
      Alcotest.(check bool)
        "malformed waiver surfaces as B001" true
        (List.exists
           (fun f ->
             f.Lint.Finding.rule = "B001"
             && contains f.Lint.Finding.message "malformed")
           r.Lint.Driver.findings))

(* --- the incremental summary cache --- *)

let test_incremental_cache () =
  with_tree_copy "tree_e001" (fun dir ->
      let cache = Filename.temp_file "talint_cache" ".json" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists cache then Sys.remove cache)
        (fun () ->
          let r1 = Lint.Driver.run ~cache_path:cache ~root:dir () in
          Alcotest.(check (pair int int))
            "cold run parses everything" (0, 3)
            (r1.Lint.Driver.cache_hits, r1.Lint.Driver.cache_misses);
          let r2 = Lint.Driver.run ~cache_path:cache ~root:dir () in
          Alcotest.(check (pair int int))
            "warm run parses nothing" (3, 0)
            (r2.Lint.Driver.cache_hits, r2.Lint.Driver.cache_misses);
          Alcotest.check span_t "warm findings identical"
            (spans r1.Lint.Driver.findings)
            (spans r2.Lint.Driver.findings);
          (* editing the .mli must invalidate the .ml's summary: the doc
             contract feeds E001 *)
          let mli = Filename.concat dir "lib/demo/api.mli" in
          let old = In_channel.with_open_bin mli In_channel.input_all in
          write_file mli (old ^ "\n(* touched *)\n");
          let r3 = Lint.Driver.run ~cache_path:cache ~root:dir () in
          Alcotest.(check (pair int int))
            "mli edit re-parses exactly that file" (2, 1)
            (r3.Lint.Driver.cache_hits, r3.Lint.Driver.cache_misses);
          Alcotest.check span_t "findings unchanged by a comment edit"
            (spans r1.Lint.Driver.findings)
            (spans r3.Lint.Driver.findings)))

(* --- the talint/2 JSON report --- *)

let test_json_schema () =
  let summary = run_tree "tree_e001" in
  match Obs.Json.of_string (Lint.Driver.to_json summary) with
  | Error msg -> Alcotest.fail ("talint/2 report is not valid JSON: " ^ msg)
  | Ok json ->
      let member k = Obs.Json.member k json in
      Alcotest.(check bool)
        "schema is talint/2" true
        (member "schema" = Some (Obs.Json.Str "talint/2"));
      Alcotest.(check bool)
        "files_scanned" true
        (member "files_scanned" = Some (Obs.Json.Num 3.0));
      Alcotest.(check bool)
        "count" true
        (member "count" = Some (Obs.Json.Num 1.0));
      Alcotest.(check bool)
        "baselined count" true
        (member "baselined" = Some (Obs.Json.Num 0.0));
      (match member "cache" with
      | Some c ->
          Alcotest.(check bool)
            "cold cache stats" true
            (Obs.Json.member "hits" c = Some (Obs.Json.Num 0.0)
            && Obs.Json.member "misses" c = Some (Obs.Json.Num 3.0))
      | None -> Alcotest.fail "no cache object");
      (match member "callgraph" with
      | Some cg ->
          Alcotest.(check bool)
            "callgraph stats" true
            (Obs.Json.member "modules" cg = Some (Obs.Json.Num 3.0)
            && Obs.Json.member "unresolved" cg = Some (Obs.Json.Num 0.0))
      | None -> Alcotest.fail "no callgraph object");
      (match member "passes" with
      | Some (Obs.Json.Arr ps) ->
          let count id =
            List.find_map
              (fun p ->
                if Obs.Json.member "id" p = Some (Obs.Json.Str id) then
                  Obs.Json.member "count" p
                else None)
              ps
          in
          Alcotest.(check bool)
            "E001 pass counted" true (count "E001" = Some (Obs.Json.Num 1.0));
          Alcotest.(check bool)
            "T001/A001/B001 passes listed" true
            (count "T001" <> None && count "A001" <> None
            && count "B001" <> None)
      | _ -> Alcotest.fail "passes is not an array");
      (match member "findings" with
      | Some (Obs.Json.Arr [ f ]) ->
          Alcotest.(check bool)
            "rule" true
            (Obs.Json.member "rule" f = Some (Obs.Json.Str "E001"));
          Alcotest.(check bool)
            "file" true
            (Obs.Json.member "file" f
            = Some (Obs.Json.Str "lib/demo/api.ml"));
          Alcotest.(check bool)
            "live finding carries baselined:false" true
            (Obs.Json.member "baselined" f = Some (Obs.Json.Bool false))
      | _ -> Alcotest.fail "findings is not a one-element array")

(* --- the real tree must be clean --- *)

let test_real_tree_clean () =
  match Lint.Driver.find_root () with
  | None -> Alcotest.fail "cannot locate the project root from the test cwd"
  | Some root ->
      let report = Lint.Driver.run ~root () in
      Alcotest.(check bool)
        "scanned a real tree (>= 80 files)" true
        (report.Lint.Driver.files >= 80);
      Alcotest.(check (list string))
        "zero unbaselined findings on the shipped tree" []
        (List.map Lint.Finding.to_string report.Lint.Driver.findings);
      let cg = report.Lint.Driver.cg in
      Alcotest.(check bool)
        "the call graph actually linked (>= 500 functions, >= 1000 edges)"
        true
        (cg.Lint.Callgraph.cg_functions >= 500
        && cg.Lint.Callgraph.cg_edges >= 1000);
      Alcotest.(check int)
        "every project-module call resolves" 0
        cg.Lint.Callgraph.cg_unresolved

(* --- CLI end-to-end: exit codes, talint/2 JSON, --rules --- *)

let talint_exe () =
  List.find_opt Sys.file_exists
    [ "../bin/talint.exe"; "_build/default/bin/talint.exe" ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_cli_roundtrip () =
  match talint_exe () with
  | None -> Alcotest.skip ()
  | Some exe ->
      let dir = Filename.temp_file "talint_tree" "" in
      Sys.remove dir;
      ignore
        (Sys.command (Printf.sprintf "mkdir -p %s/lib/demo" (Filename.quote dir))
          : int);
      Fun.protect
        ~finally:(fun () ->
          ignore
            (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) : int))
        (fun () ->
          Out_channel.with_open_bin (dir ^ "/dune-project") (fun oc ->
              output_string oc "(lang dune 3.0)\n");
          Out_channel.with_open_bin (dir ^ "/lib/demo/bad.ml") (fun oc ->
              output_string oc "let roll () = Random.int 6\n");
          let out = Filename.temp_file "talint_out" ".json" in
          Fun.protect
            ~finally:(fun () -> Sys.remove out)
            (fun () ->
              let code =
                Sys.command
                  (Printf.sprintf "%s --root %s --format json >%s 2>&1"
                     (Filename.quote exe) (Filename.quote dir)
                     (Filename.quote out))
              in
              Alcotest.(check int) "findings exit 1" 1 code;
              let json = read_file out in
              (match Obs.Json.of_string json with
              | Error msg -> Alcotest.fail ("not JSON: " ^ msg)
              | Ok j ->
                  Alcotest.(check bool)
                    "schema" true
                    (Obs.Json.member "schema" j = Some (Obs.Json.Str "talint/2"));
                  Alcotest.(check bool)
                    "two findings (D001 + S001)" true
                    (Obs.Json.member "count" j = Some (Obs.Json.Num 2.0)));
              let code2 =
                Sys.command
                  (Printf.sprintf "%s --format yaml >/dev/null 2>&1"
                     (Filename.quote exe))
              in
              Alcotest.(check int) "bad --format exits 2" 2 code2))

let test_cli_rules () =
  match talint_exe () with
  | None -> Alcotest.skip ()
  | Some exe ->
      let out = Filename.temp_file "talint_rules" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove out)
        (fun () ->
          let code =
            Sys.command
              (Printf.sprintf "%s --rules >%s 2>&1" (Filename.quote exe)
                 (Filename.quote out))
          in
          Alcotest.(check int) "--rules exits 0" 0 code;
          let text = read_file out in
          List.iter
            (fun id ->
              Alcotest.(check bool)
                (id ^ " listed") true (contains text id))
            [ "D001"; "D004"; "E001"; "T001"; "A001"; "B001" ];
          let code =
            Sys.command
              (Printf.sprintf "%s --rules --format json >%s 2>&1"
                 (Filename.quote exe) (Filename.quote out))
          in
          Alcotest.(check int) "--rules --format json exits 0" 0 code;
          match Obs.Json.of_string (read_file out) with
          | Error msg -> Alcotest.fail ("rules JSON invalid: " ^ msg)
          | Ok j ->
              Alcotest.(check bool)
                "talint-rules/1 schema" true
                (Obs.Json.member "schema" j
                = Some (Obs.Json.Str "talint-rules/1"));
              (match Obs.Json.member "rules" j with
              | Some (Obs.Json.Arr rs) ->
                  Alcotest.(check bool)
                    "all rule ids have summaries" true
                    (List.for_all
                       (fun r ->
                         match
                           (Obs.Json.member "id" r, Obs.Json.member "summary" r)
                         with
                         | Some (Obs.Json.Str _), Some (Obs.Json.Str s) ->
                             String.length s > 0
                         | _ -> false)
                       rs)
              | _ -> Alcotest.fail "rules is not an array"))

let suite =
  [
    Alcotest.test_case "positive fixtures: exact rule + span" `Quick
      test_positive_fixtures;
    Alcotest.test_case "negative fixtures are clean" `Quick
      test_negative_fixtures;
    Alcotest.test_case "allow-comments suppress and expire" `Quick
      test_suppression;
    Alcotest.test_case "role exemptions (obs/prng/bin/bench)" `Quick
      test_role_exemptions;
    Alcotest.test_case "parse error reports E000" `Quick test_parse_error;
    Alcotest.test_case "E001: undeclared escape through two hops" `Quick
      test_tree_e001;
    Alcotest.test_case "T001: clock taint via a helper module" `Quick
      test_tree_t001;
    Alcotest.test_case "A001: closure alloc in a hot-path callee" `Quick
      test_tree_a001;
    Alcotest.test_case "finding order is deterministic" `Quick
      test_deterministic_order;
    Alcotest.test_case "baseline waivers: match, stale, malformed" `Quick
      test_baseline_waivers;
    Alcotest.test_case "incremental cache: warm hits, mli invalidates" `Quick
      test_incremental_cache;
    Alcotest.test_case "talint/2 JSON schema" `Quick test_json_schema;
    Alcotest.test_case "real tree has zero unbaselined findings" `Quick
      test_real_tree_clean;
    Alcotest.test_case "CLI: exit 1 + JSON on violations, 2 on bad flags"
      `Quick test_cli_roundtrip;
    Alcotest.test_case "CLI: --rules in text and JSON" `Quick test_cli_rules;
  ]
