(* Extension modules: confidence intervals, Bhattacharyya bounds,
   parametric/joint/spectral adversaries, mix gateway, QoS model,
   trace I/O. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Confidence --- *)

let test_wilson_basic () =
  let iv = Stats.Confidence.wilson ~successes:50 ~trials:100 ~confidence:0.95 in
  Alcotest.(check bool) "contains p-hat" true (Stats.Confidence.contains iv 0.5);
  Alcotest.(check bool) "nontrivial" true (Stats.Confidence.width iv > 0.05);
  Alcotest.(check bool) "bounded" true (iv.Stats.Confidence.lo >= 0.0 && iv.Stats.Confidence.hi <= 1.0)

let test_wilson_extremes () =
  let all = Stats.Confidence.wilson ~successes:20 ~trials:20 ~confidence:0.95 in
  Alcotest.(check bool) "hi = 1 at p=1" true (all.Stats.Confidence.hi >= 1.0 -. 1e-9);
  Alcotest.(check bool) "lo < 1 (Wilson shrinks)" true (all.Stats.Confidence.lo < 1.0);
  let none = Stats.Confidence.wilson ~successes:0 ~trials:20 ~confidence:0.95 in
  Alcotest.(check bool) "lo = 0 at p=0" true (none.Stats.Confidence.lo <= 1e-9)

let test_wilson_narrows_with_n () =
  let w n = Stats.Confidence.width (Stats.Confidence.wilson ~successes:(n / 2) ~trials:n ~confidence:0.95) in
  Alcotest.(check bool) "narrower at larger n" true (w 1000 < w 50)

let test_wilson_coverage () =
  (* Monte-Carlo coverage of the 90% interval at p = 0.3, n = 40. *)
  let rng = Prng.Rng.create ~seed:211 in
  let p = 0.3 and n = 40 and trials = 2000 in
  let covered = ref 0 in
  for _ = 1 to trials do
    let successes = ref 0 in
    for _ = 1 to n do
      if Prng.Sampler.bernoulli rng ~p then incr successes
    done;
    let iv = Stats.Confidence.wilson ~successes:!successes ~trials:n ~confidence:0.90 in
    if Stats.Confidence.contains iv p then incr covered
  done;
  let coverage = float_of_int !covered /. float_of_int trials in
  Alcotest.(check bool) "coverage ~ 0.90" true (coverage > 0.85 && coverage < 0.96)

let test_wald_vs_wilson () =
  (* At p-hat = 0 the Wald interval degenerates to a point, Wilson doesn't. *)
  let wald = Stats.Confidence.wald ~successes:0 ~trials:30 ~confidence:0.95 in
  let wilson = Stats.Confidence.wilson ~successes:0 ~trials:30 ~confidence:0.95 in
  close "wald degenerate" 0.0 (Stats.Confidence.width wald);
  Alcotest.(check bool) "wilson proper" true (Stats.Confidence.width wilson > 0.05)

let test_mean_t () =
  let rng = Prng.Rng.create ~seed:212 in
  let xs = Array.init 400 (fun _ -> Prng.Sampler.normal rng ~mu:7.0 ~sigma:2.0) in
  let iv = Stats.Confidence.mean_t xs ~confidence:0.99 in
  Alcotest.(check bool) "contains true mean" true (Stats.Confidence.contains iv 7.0)

let test_confidence_invalid () =
  Alcotest.check_raises "trials" (Invalid_argument "Confidence: trials < 1")
    (fun () -> ignore (Stats.Confidence.wilson ~successes:0 ~trials:0 ~confidence:0.9))

(* --- Bounds --- *)

let test_bhattacharyya_identical () =
  close "rho = 1 identical" 1.0
    (Analytical.Bounds.bhattacharyya_normal ~mu0:1.0 ~s0:2.0 ~mu1:1.0 ~s1:2.0);
  close "gamma rho = 1" 1.0
    (Analytical.Bounds.bhattacharyya_gamma_same_shape ~shape:3.0 ~scale0:2.0 ~scale1:2.0)

let test_bhattacharyya_separation () =
  let rho_near = Analytical.Bounds.bhattacharyya_normal ~mu0:0.0 ~s0:1.0 ~mu1:1.0 ~s1:1.0 in
  let rho_far = Analytical.Bounds.bhattacharyya_normal ~mu0:0.0 ~s0:1.0 ~mu1:5.0 ~s1:1.0 in
  Alcotest.(check bool) "rho decreases with separation" true (rho_far < rho_near);
  (* closed form: exp(-d^2/8) for equal sigmas *)
  close ~tol:1e-9 "equal-sigma closed form" (exp (-1.0 /. 8.0)) rho_near

let test_bracket_sandwiches_exact_mean () =
  List.iter
    (fun r ->
      let exact = Analytical.Theorems.v_mean ~r in
      let b = Analytical.Bounds.sample_mean_bracket ~sigma_l:1.0 ~sigma_h:(sqrt r) in
      if not (exact >= b.Analytical.Bounds.lower -. 1e-9
              && exact <= b.Analytical.Bounds.upper +. 1e-9) then
        Alcotest.failf "r=%.2f: exact %.4f outside [%.4f, %.4f]" r exact
          b.Analytical.Bounds.lower b.Analytical.Bounds.upper)
    [ 1.1; 1.5; 2.0; 5.0; 20.0 ]

let test_bracket_sandwiches_exact_variance () =
  List.iter
    (fun (r, n) ->
      let exact = Analytical.Bayes_numeric.sample_variance_exact ~sigma2_l:1.0 ~sigma2_h:r ~n in
      let b = Analytical.Bounds.sample_variance_bracket ~sigma2_l:1.0 ~sigma2_h:r ~n in
      if not (exact >= b.Analytical.Bounds.lower -. 1e-9
              && exact <= b.Analytical.Bounds.upper +. 1e-9) then
        Alcotest.failf "r=%.2f n=%d: exact %.4f outside [%.4f, %.4f]" r n exact
          b.Analytical.Bounds.lower b.Analytical.Bounds.upper)
    [ (1.2, 50); (1.5, 100); (2.0, 200); (3.0, 1000) ]

let test_kl_normal () =
  close "KL of identical" 0.0 (Analytical.Bounds.kl_normal ~mu0:0.0 ~s0:1.0 ~mu1:0.0 ~s1:1.0);
  (* KL(N(0,1) || N(1,1)) = 1/2 *)
  close "mean shift" 0.5 (Analytical.Bounds.kl_normal ~mu0:0.0 ~s0:1.0 ~mu1:1.0 ~s1:1.0);
  Alcotest.(check bool) "positive" true
    (Analytical.Bounds.kl_normal ~mu0:0.0 ~s0:1.0 ~mu1:0.0 ~s1:2.0 > 0.0)

let test_bracket_of_rho_edges () =
  let b1 = Analytical.Bounds.detection_bracket_of_rho 1.0 in
  close "rho=1 lower" 0.5 b1.Analytical.Bounds.lower;
  close "rho=1 upper" 0.5 b1.Analytical.Bounds.upper;
  let b0 = Analytical.Bounds.detection_bracket_of_rho 0.0 in
  close "rho=0 both 1" 1.0 b0.Analytical.Bounds.lower;
  close "rho=0 both 1b" 1.0 b0.Analytical.Bounds.upper

(* --- Parametric classifier --- *)

let gaussian n mu sigma seed =
  let rng = Prng.Rng.create ~seed in
  Array.init n (fun _ -> Prng.Sampler.normal rng ~mu ~sigma)

let test_parametric_separable () =
  let clf =
    Adversary.Parametric.train
      ~classes:[| ("a", gaussian 200 0.0 1.0 221); ("b", gaussian 200 8.0 1.0 222) |] ()
  in
  Alcotest.(check int) "low" 0 (Adversary.Parametric.classify clf 0.5);
  Alcotest.(check int) "high" 1 (Adversary.Parametric.classify clf 7.0);
  close ~tol:0.1 "fitted mu" 0.0 (Adversary.Parametric.class_mu clf 0);
  close ~tol:0.1 "fitted sigma" 1.0 (Adversary.Parametric.class_sigma clf 0);
  let acc =
    Adversary.Parametric.accuracy clf
      [| (0, gaussian 100 0.0 1.0 223); (1, gaussian 100 8.0 1.0 224) |]
  in
  Alcotest.(check bool) "near perfect" true (acc > 0.98)

let test_parametric_matches_kde_on_gaussian_data () =
  (* On genuinely Gaussian features the two backends should agree. *)
  let tr0 = gaussian 300 0.0 1.0 225 and tr1 = gaussian 300 2.0 1.0 226 in
  let te0 = gaussian 300 0.0 1.0 227 and te1 = gaussian 300 2.0 1.0 228 in
  let kde = Adversary.Classifier.train ~classes:[| ("a", tr0); ("b", tr1) |] () in
  let par = Adversary.Parametric.train ~classes:[| ("a", tr0); ("b", tr1) |] () in
  let cases = [| (0, te0); (1, te1) |] in
  let a_kde = Adversary.Classifier.accuracy kde cases in
  let a_par = Adversary.Parametric.accuracy par cases in
  Alcotest.(check bool) "within 5 points" true (Float.abs (a_kde -. a_par) < 0.05)

let test_parametric_degenerate_training () =
  let clf =
    Adversary.Parametric.train
      ~classes:[| ("a", Array.make 10 1.0); ("b", Array.make 10 2.0) |] ()
  in
  Alcotest.(check int) "still classifies" 0 (Adversary.Parametric.classify clf 1.0);
  Alcotest.(check int) "other side" 1 (Adversary.Parametric.classify clf 2.0)

let test_detection_gaussian_backend () =
  let rng = Prng.Rng.create ~seed:229 in
  let trace sigma = Array.init 3000 (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma) in
  let res =
    Adversary.Detection.estimate_on_features ~backend:`Gaussian
      ~feature:Adversary.Feature.Sample_variance ~sample_size:100
      ~named_features:
        [|
          ("low",
           Adversary.Dataset.features_of_trace Adversary.Feature.Sample_variance
             ~reference:0.01 ~sample_size:100 (trace 1e-5));
          ("high",
           Adversary.Dataset.features_of_trace Adversary.Feature.Sample_variance
             ~reference:0.01 ~sample_size:100 (trace 4e-5));
        |]
      ()
  in
  Alcotest.(check bool) "gaussian backend detects" true
    (res.Adversary.Detection.detection_rate > 0.9);
  Alcotest.(check bool) "no threshold reported" true
    (res.Adversary.Detection.threshold = None)

(* --- Joint classifier --- *)

let test_joint_better_than_either_weak_feature () =
  (* Two weakly informative, independent features; jointly stronger. *)
  let rng = Prng.Rng.create ~seed:230 in
  let make_class mu n =
    Array.init n (fun _ ->
        [| Prng.Sampler.normal rng ~mu ~sigma:1.0;
           Prng.Sampler.normal rng ~mu ~sigma:1.0 |])
  in
  let tr0 = make_class 0.0 400 and tr1 = make_class 1.2 400 in
  let te0 = make_class 0.0 400 and te1 = make_class 1.2 400 in
  let joint = Adversary.Joint.train ~classes:[| ("a", tr0); ("b", tr1) |] () in
  let acc_joint = Adversary.Joint.accuracy joint [| (0, te0); (1, te1) |] in
  (* Single-feature accuracy on feature 0 alone. *)
  let single =
    Adversary.Classifier.train
      ~classes:
        [| ("a", Array.map (fun v -> v.(0)) tr0); ("b", Array.map (fun v -> v.(0)) tr1) |] ()
  in
  let acc_single =
    Adversary.Classifier.accuracy single
      [| (0, Array.map (fun v -> v.(0)) te0); (1, Array.map (fun v -> v.(0)) te1) |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "joint (%.3f) > single (%.3f)" acc_joint acc_single)
    true
    (acc_joint > acc_single +. 0.02)

let test_joint_validation () =
  Alcotest.check_raises "ragged" (Invalid_argument "Joint.train: ragged vectors")
    (fun () ->
      ignore
        (Adversary.Joint.train
           ~classes:[| ("a", [| [| 1.0 |]; [| 1.0; 2.0 |] |]); ("b", [| [| 1.0 |] |]) |]
           ()));
  let clf =
    Adversary.Joint.train
      ~classes:[| ("a", [| [| 0.0; 0.0 |] |]); ("b", [| [| 5.0; 5.0 |] |]) |] ()
  in
  Alcotest.(check int) "features" 2 (Adversary.Joint.num_features clf);
  Alcotest.check_raises "width" (Invalid_argument "Joint.classify: wrong vector width")
    (fun () -> ignore (Adversary.Joint.classify clf [| 1.0 |]))

let test_joint_feature_vectors () =
  let vs =
    Adversary.Joint.feature_vectors
      ~features:[ Adversary.Feature.Sample_mean; Adversary.Feature.Sample_variance ]
      ~reference:0.0 ~sample_size:3
      [| 1.0; 2.0; 3.0; 10.0; 10.0; 10.0 |]
  in
  Alcotest.(check int) "two windows" 2 (Array.length vs);
  close "window 0 mean" 2.0 vs.(0).(0);
  close "window 0 var" 1.0 vs.(0).(1);
  close "window 1 var" 0.0 vs.(1).(1)

(* --- Spectral --- *)

let test_spectral_features_distinguish_variance () =
  let rng = Prng.Rng.create ~seed:231 in
  let trace sigma = Array.init 6400 (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma) in
  let res =
    Adversary.Spectral.estimate ~kind:Adversary.Spectral.Spectral_power
      ~sample_size:128
      ~classes:[| ("low", trace 1e-5); ("high", trace 2e-5) |]
      ()
  in
  (* Spectral power is the variance in disguise: should detect well. *)
  Alcotest.(check bool) "spectral power detects" true
    (res.Adversary.Detection.detection_rate > 0.9)

let test_spectral_extract_bounds () =
  let rng = Prng.Rng.create ~seed:232 in
  let w = Array.init 64 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  Alcotest.(check bool) "entropy >= 0" true
    (Adversary.Spectral.extract Adversary.Spectral.Spectral_entropy w >= 0.0);
  Alcotest.(check bool) "power > 0" true
    (Adversary.Spectral.extract Adversary.Spectral.Spectral_power w > 0.0);
  Alcotest.check_raises "short window"
    (Invalid_argument "Spectral.extract: need n >= 4") (fun () ->
      ignore (Adversary.Spectral.extract Adversary.Spectral.Spectral_entropy [| 1.0 |]))

(* --- Mix --- *)

let test_mix_threshold_flush () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:233 in
  let out = ref 0 in
  let mix =
    Padding.Mix.create sim ~rng ~threshold:4 ~timeout:10.0
      ~dest:(fun _ -> incr out) ()
  in
  for _ = 1 to 4 do
    Padding.Mix.input mix
      (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500
         ~created:(Desim.Sim.now sim))
  done;
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "one flush" 1 (Padding.Mix.flushes mix);
  Alcotest.(check int) "exactly K out" 4 !out;
  Alcotest.(check int) "all payload" 4 (Padding.Mix.payload_sent mix);
  Alcotest.(check int) "no dummies" 0 (Padding.Mix.dummy_sent mix)

let test_mix_timeout_flush_pads_with_dummies () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:234 in
  let kinds = ref [] in
  let mix =
    Padding.Mix.create sim ~rng ~threshold:5 ~timeout:0.2
      ~dest:(fun p -> kinds := p.Netsim.Packet.kind :: !kinds) ()
  in
  Padding.Mix.input mix
    (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500 ~created:0.0);
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "flushed by timeout" 1 (Padding.Mix.flushes mix);
  Alcotest.(check int) "threshold-sized batch" 5 (List.length !kinds);
  Alcotest.(check int) "4 dummies" 4 (Padding.Mix.dummy_sent mix);
  close "overhead 0.8" 0.8 (Padding.Mix.overhead mix)

let test_mix_flush_epochs_leak_rate () =
  (* The point of the baseline: inter-flush time scales with 1/rate. *)
  let run rate seed =
    let res =
      Scenarios.System.run_mix
        { Scenarios.System.default_config with Scenarios.System.seed;
          payload_rate_pps = rate }
        ~piats:2000
    in
    Stats.Descriptive.mean res.Scenarios.System.piats
  in
  let slow = run 10.0 235 and fast = run 40.0 236 in
  Alcotest.(check bool) "mean PIAT tracks the rate" true (slow > fast *. 1.5)

let test_mix_rejects_cross () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:237 in
  let mix = Padding.Mix.create sim ~rng ~dest:(fun _ -> ()) () in
  Alcotest.check_raises "cross"
    (Invalid_argument "Mix.input: only payload packets enter the mix") (fun () ->
      Padding.Mix.input mix
        (Netsim.Packet.make ~kind:Netsim.Packet.Cross ~size_bytes:500 ~created:0.0))

(* --- QoS --- *)

let test_qos_utilization_and_stability () =
  close "rho" 0.4 (Padding.Qos.utilization ~payload_rate_pps:40.0 ~timer_mean:0.01);
  Alcotest.(check bool) "stable" true
    (Padding.Qos.is_stable ~payload_rate_pps:40.0 ~timer_mean:0.01);
  Alcotest.(check bool) "unstable" false
    (Padding.Qos.is_stable ~payload_rate_pps:200.0 ~timer_mean:0.01)

let test_qos_mean_delay_formula () =
  (* rho = 0.4: D = tau/2 + tau*0.4/(2*0.6) *)
  close "closed form"
    (0.005 +. (0.01 *. 0.4 /. 1.2))
    (Padding.Qos.mean_delay ~payload_rate_pps:40.0 ~timer_mean:0.01);
  Alcotest.check_raises "unstable"
    (Invalid_argument "Qos.mean_delay: unstable (payload faster than the timer)")
    (fun () -> ignore (Padding.Qos.mean_delay ~payload_rate_pps:200.0 ~timer_mean:0.01))

let test_qos_matches_simulation () =
  (* The simulated receiver latency should be near the analytic M/D/1
     value (within ~15%: the simulator adds link transmission ~ 10 us). *)
  let res =
    Scenarios.System.run
      { Scenarios.System.default_config with Scenarios.System.seed = 238;
        payload_rate_pps = 40.0 }
      ~piats:20_000
  in
  let analytic = Padding.Qos.mean_delay ~payload_rate_pps:40.0 ~timer_mean:0.01 in
  let ratio = res.Scenarios.System.mean_payload_latency /. analytic in
  Alcotest.(check bool)
    (Printf.sprintf "simulated/analytic = %.3f in [0.85, 1.15]" ratio)
    true (ratio > 0.85 && ratio < 1.15)

let test_qos_quantile_monotone () =
  let q p = Padding.Qos.delay_quantile ~payload_rate_pps:40.0 ~timer_mean:0.01 ~p in
  Alcotest.(check bool) "monotone in p" true (q 0.99 > q 0.5);
  Alcotest.(check bool) "above mean at high p" true
    (q 0.99 > Padding.Qos.mean_delay ~payload_rate_pps:40.0 ~timer_mean:0.01)

let test_qos_min_timer_rate () =
  let rate = Padding.Qos.min_timer_rate ~payload_rate_pps:40.0 ~max_mean_delay:0.008 in
  Alcotest.(check bool) "above payload rate" true (rate > 40.0);
  let d = Padding.Qos.mean_delay ~payload_rate_pps:40.0 ~timer_mean:(1.0 /. rate) in
  Alcotest.(check bool) "meets the bound" true (d <= 0.008 +. 1e-9);
  (* and is tight: 10% slower timer violates it *)
  let d_slow = Padding.Qos.mean_delay ~payload_rate_pps:40.0 ~timer_mean:(1.1 /. rate) in
  Alcotest.(check bool) "tight" true (d_slow > 0.008)

(* --- Trace I/O --- *)

let test_trace_roundtrip () =
  let path = Filename.temp_file "linkpad_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let ts = [| 0.1; 0.2; 0.30000000001; 12345.6789 |] in
      Netsim.Trace.save ~path
        ~meta:{ Netsim.Trace.label = "40pps lab"; created_unix = 1_700_000_000.0 }
        ts;
      let meta, loaded = Netsim.Trace.load ~path in
      Alcotest.(check string) "label" "40pps lab" meta.Netsim.Trace.label;
      close "created" 1_700_000_000.0 meta.Netsim.Trace.created_unix;
      Alcotest.(check int) "count" 4 (Array.length loaded);
      Array.iteri (fun i x -> close ~tol:1e-15 "value" ts.(i) x) loaded)

let test_trace_piats () =
  Alcotest.(check (array (float 1e-12))) "diffs" [| 0.1; 0.2 |]
    (Netsim.Trace.piats [| 1.0; 1.1; 1.3 |]);
  Alcotest.(check (array (float 0.0))) "short" [||] (Netsim.Trace.piats [| 1.0 |])

let test_trace_malformed () =
  let path = Filename.temp_file "linkpad_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "0.5\nnot-a-number\n";
      close_out oc;
      match Netsim.Trace.load ~path with
      | exception Netsim.Trace.Parse_error { line; msg; _ } ->
          Alcotest.(check int) "line number reported" 2 line;
          Alcotest.(check bool) "message present" true (String.length msg > 0)
      | _ -> Alcotest.fail "expected Parse_error")

let suite =
  [
    Alcotest.test_case "wilson basic" `Quick test_wilson_basic;
    Alcotest.test_case "wilson extremes" `Quick test_wilson_extremes;
    Alcotest.test_case "wilson narrows with n" `Quick test_wilson_narrows_with_n;
    Alcotest.test_case "wilson coverage" `Quick test_wilson_coverage;
    Alcotest.test_case "wald vs wilson at 0" `Quick test_wald_vs_wilson;
    Alcotest.test_case "mean interval" `Quick test_mean_t;
    Alcotest.test_case "confidence invalid" `Quick test_confidence_invalid;
    Alcotest.test_case "bhattacharyya identical" `Quick test_bhattacharyya_identical;
    Alcotest.test_case "bhattacharyya separation" `Quick test_bhattacharyya_separation;
    Alcotest.test_case "bracket sandwiches mean" `Quick test_bracket_sandwiches_exact_mean;
    Alcotest.test_case "bracket sandwiches variance" `Quick test_bracket_sandwiches_exact_variance;
    Alcotest.test_case "KL normal" `Quick test_kl_normal;
    Alcotest.test_case "bracket edge cases" `Quick test_bracket_of_rho_edges;
    Alcotest.test_case "parametric separable" `Quick test_parametric_separable;
    Alcotest.test_case "parametric = kde on gaussian" `Quick test_parametric_matches_kde_on_gaussian_data;
    Alcotest.test_case "parametric degenerate" `Quick test_parametric_degenerate_training;
    Alcotest.test_case "gaussian detection backend" `Quick test_detection_gaussian_backend;
    Alcotest.test_case "joint beats single" `Quick test_joint_better_than_either_weak_feature;
    Alcotest.test_case "joint validation" `Quick test_joint_validation;
    Alcotest.test_case "joint feature vectors" `Quick test_joint_feature_vectors;
    Alcotest.test_case "spectral power detects" `Quick test_spectral_features_distinguish_variance;
    Alcotest.test_case "spectral extract bounds" `Quick test_spectral_extract_bounds;
    Alcotest.test_case "mix threshold flush" `Quick test_mix_threshold_flush;
    Alcotest.test_case "mix timeout + dummies" `Quick test_mix_timeout_flush_pads_with_dummies;
    Alcotest.test_case "mix leaks rate" `Quick test_mix_flush_epochs_leak_rate;
    Alcotest.test_case "mix rejects cross" `Quick test_mix_rejects_cross;
    Alcotest.test_case "qos utilization" `Quick test_qos_utilization_and_stability;
    Alcotest.test_case "qos mean delay" `Quick test_qos_mean_delay_formula;
    Alcotest.test_case "qos matches simulation" `Quick test_qos_matches_simulation;
    Alcotest.test_case "qos quantile" `Quick test_qos_quantile_monotone;
    Alcotest.test_case "qos min timer rate" `Quick test_qos_min_timer_rate;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace piats" `Quick test_trace_piats;
    Alcotest.test_case "trace malformed" `Quick test_trace_malformed;
  ]
