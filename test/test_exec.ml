(* Determinism and robustness tests for the Exec domain pool: the whole
   point of the execution layer is that worker count is a pure
   performance knob — every observable result must be bit-identical to
   the sequential run. *)

(* Run [f] with the global pool set to [jobs] workers, restoring the
   single-worker default afterwards so tests stay independent. *)
let with_jobs jobs f =
  Exec.Pool.set_default_jobs jobs;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_default_jobs 1) f

(* --- (a) sequential path: parallel_map at jobs=1 is List.map --- *)

let test_sequential_equals_list_map () =
  let xs = List.init 200 (fun i -> i) in
  let f x = (x * x) + 7 in
  with_jobs 1 (fun () ->
      Alcotest.(check (list int))
        "jobs=1 equals List.map" (List.map f xs)
        (Exec.Pool.parallel_map f xs));
  Alcotest.(check int) "no spare tokens at jobs=1" 0 (Exec.Pool.spare_tokens ())

let test_combinators_match_sequential () =
  (* Variable per-task work so a racy implementation would reorder. *)
  let work i =
    let rng = Prng.Rng.create ~seed:(Exec.Seed.derive ~root:77 ~index:i) in
    let acc = ref 0.0 in
    for _ = 1 to 1000 + (997 * i mod 5000) do
      acc := !acc +. Prng.Rng.float rng
    done;
    (i, !acc)
  in
  let expected = Array.init 32 work in
  List.iter
    (fun jobs ->
      let got =
        with_jobs jobs (fun () -> Exec.Pool.parallel_init 32 work)
      in
      Alcotest.(check bool)
        (Printf.sprintf "parallel_init identical at jobs=%d" jobs)
        true (expected = got))
    [ 1; 2; 8 ];
  let xs = List.init 20 (fun i -> 3 * i) in
  let fi i x = float_of_int (i + x) *. 1.5 in
  let expected = List.mapi fi xs in
  List.iter
    (fun jobs ->
      let got = with_jobs jobs (fun () -> Exec.Pool.parallel_mapi fi xs) in
      Alcotest.(check (list (float 0.0)))
        (Printf.sprintf "parallel_mapi identical at jobs=%d" jobs)
        expected got)
    [ 1; 2; 8 ]

(* --- (b) a real scenario slice is bit-identical at any worker count --- *)

let fig4b_output jobs =
  with_jobs jobs (fun () ->
      let buf = Buffer.create 4096 in
      let fmt = Format.formatter_of_buffer buf in
      let t =
        Scenarios.Fig4b.run ~scale:0.05 ~seed:9_901
          ~sample_sizes:[ 10; 20; 50 ] fmt
      in
      Format.pp_print_flush fmt ();
      (Buffer.contents buf, t.Scenarios.Fig4b.r_hat))

let test_fig4b_bit_identical_across_jobs () =
  let out1, r1 = fig4b_output 1 in
  let out2, r2 = fig4b_output 2 in
  let out8, r8 = fig4b_output 8 in
  Alcotest.(check string) "jobs=2 table identical to jobs=1" out1 out2;
  Alcotest.(check string) "jobs=8 table identical to jobs=1" out1 out8;
  Alcotest.(check (float 0.0)) "r_hat identical (jobs=2)" r1 r2;
  Alcotest.(check (float 0.0)) "r_hat identical (jobs=8)" r1 r8;
  Alcotest.(check bool) "output non-empty" true (String.length out1 > 0)

(* --- (b') arena reuse is bit-identical to fresh simulators --- *)

let test_arena_reuse_bit_identical () =
  (* System.run recycles a per-domain arena (simulator, tap vectors,
     gateway buffers) by default; forcing brand-new state for every run
     must change nothing, at any worker count.  Prime the arena with an
     unrelated differently-shaped run first so reuse starts from dirty,
     already-grown storage. *)
  let cfg =
    { Scenarios.System.default_config with Scenarios.System.seed = 31_337 }
  in
  ignore
    (Scenarios.System.run
       { cfg with Scenarios.System.seed = 1; payload_rate_pps = 55.0 }
       ~piats:120
      : Scenarios.System.result);
  let reused = Scenarios.System.run cfg ~piats:400 in
  let fresh = Scenarios.System.run ~fresh_arena:true cfg ~piats:400 in
  Alcotest.(check bool) "piats bit-identical" true
    (reused.Scenarios.System.piats = fresh.Scenarios.System.piats);
  Alcotest.(check bool) "timestamps bit-identical" true
    (reused.Scenarios.System.timestamps = fresh.Scenarios.System.timestamps);
  Alcotest.(check (float 0.0)) "overhead identical"
    fresh.Scenarios.System.overhead reused.Scenarios.System.overhead;
  Alcotest.(check int) "delivered identical"
    fresh.Scenarios.System.payload_delivered
    reused.Scenarios.System.payload_delivered;
  (* And the full fig4b pipeline stays bit-identical across jobs while
     every worker recycles its own arena (fig4b_output already runs with
     the reusing default). *)
  let out1, _ = fig4b_output 1 in
  let out2, _ = fig4b_output 2 in
  let out8, _ = fig4b_output 8 in
  Alcotest.(check string) "fig4b reused-arena jobs=2 = jobs=1" out1 out2;
  Alcotest.(check string) "fig4b reused-arena jobs=8 = jobs=1" out1 out8

(* --- (c) exception handling: pool survives a raising task --- *)

let test_reraises_first_failure () =
  with_jobs 4 (fun () ->
      let before = Exec.Pool.spare_tokens () in
      Alcotest.(check int) "tokens available" 3 before;
      (match
         Exec.Pool.parallel_map
           (fun i -> if i mod 5 = 3 then failwith (Printf.sprintf "boom %d" i) else i)
           (List.init 20 (fun i -> i))
       with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          (* Lowest-index failure wins, independent of scheduling. *)
          Alcotest.(check string) "deterministic first failure" "boom 3" msg);
      Alcotest.(check int) "tokens restored after failure" before
        (Exec.Pool.spare_tokens ());
      (* The pool still works after a failed fan-out. *)
      Alcotest.(check (list int))
        "pool usable after failure" [ 0; 2; 4 ]
        (Exec.Pool.parallel_map (fun x -> 2 * x) [ 0; 1; 2 ]))

let test_both_propagates_and_orders () =
  with_jobs 2 (fun () ->
      let a, b = Exec.Pool.both (fun () -> 41 + 1) (fun () -> "ok") in
      Alcotest.(check int) "both: left" 42 a;
      Alcotest.(check string) "both: right" "ok" b;
      match
        Exec.Pool.both
          (fun () -> failwith "left")
          (fun () -> failwith "right")
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure msg ->
          Alcotest.(check string) "left (lower index) wins" "left" msg)

(* --- (d) split-seed derivation is order- and schedule-independent --- *)

let test_seed_derivation_order_independent () =
  let root = 424_242 in
  let forward = List.init 64 (fun i -> Exec.Seed.derive ~root ~index:i) in
  let backward =
    List.rev (List.init 64 (fun i -> Exec.Seed.derive ~root ~index:(63 - i)))
  in
  Alcotest.(check (list int)) "derivation is a pure function of (root, index)"
    forward backward;
  (* Derived under parallel scheduling: still the same seeds. *)
  let parallel =
    with_jobs 8 (fun () ->
        Array.to_list
          (Exec.Pool.parallel_init 64 (fun i -> Exec.Seed.derive ~root ~index:i)))
  in
  Alcotest.(check (list int)) "identical when derived by a pool" forward parallel;
  let distinct = List.sort_uniq compare forward in
  Alcotest.(check int) "64 distinct seeds" 64 (List.length distinct);
  List.iter
    (fun s -> Alcotest.(check bool) "seed non-negative" true (s >= 0))
    forward;
  (match forward with
  | s0 :: _ ->
      Alcotest.(check bool) "different roots give different seeds" true
        (Exec.Seed.derive ~root:(root + 1) ~index:0 <> s0)
  | [] -> assert false);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Exec.Seed.derive: index < 0") (fun () ->
      ignore (Exec.Seed.derive ~root ~index:(-1)))

(* --- repeated identical collections recompute identically --- *)

let test_collect_pair_repeatable () =
  let base = { Scenarios.System.default_config with Scenarios.System.seed = 5_551 } in
  let t1 = Scenarios.Workload.collect_pair ~base ~piats:600 in
  let t2 = Scenarios.Workload.collect_pair ~base ~piats:600 in
  Alcotest.(check (float 0.0)) "identical r_hat" t1.Scenarios.Workload.r_hat
    t2.Scenarios.Workload.r_hat;
  Alcotest.(check bool) "identical low piats" true
    (t1.Scenarios.Workload.low.Scenarios.System.piats
    = t2.Scenarios.Workload.low.Scenarios.System.piats)

let test_set_default_jobs_validates () =
  Alcotest.check_raises "jobs < 1 rejected"
    (Invalid_argument "Exec.Pool.set_default_jobs: jobs < 1") (fun () ->
      Exec.Pool.set_default_jobs 0)

let suite =
  [
    Alcotest.test_case "jobs=1 equals List.map" `Quick
      test_sequential_equals_list_map;
    Alcotest.test_case "combinators match sequential at any jobs" `Quick
      test_combinators_match_sequential;
    Alcotest.test_case "fig4b bit-identical at jobs 1/2/8" `Slow
      test_fig4b_bit_identical_across_jobs;
    Alcotest.test_case "arena reuse bit-identical to fresh" `Slow
      test_arena_reuse_bit_identical;
    Alcotest.test_case "re-raises lowest-index failure; pool survives" `Quick
      test_reraises_first_failure;
    Alcotest.test_case "both: results and error ordering" `Quick
      test_both_propagates_and_orders;
    Alcotest.test_case "seed derivation order-independent" `Quick
      test_seed_derivation_order_independent;
    Alcotest.test_case "collect_pair recomputes identically" `Slow
      test_collect_pair_repeatable;
    Alcotest.test_case "set_default_jobs validates" `Quick
      test_set_default_jobs_validates;
  ]
