(* Exit-code contract, end to end:

     0   success
     2   invalid CLI (both the Cmdliner-based ta_lab and the Arg-based
         bench/talint)
     3   Tap_starved — a diagnosed starvation report, never a backtrace

   Locked down here because ta_lab once exited with Cmdliner's default
   124 on bad flags while bench exited 2, and bench let Tap_starved
   escape as an uncaught exception (which the OCaml runtime reports with
   exit code 2 — colliding with the invalid-CLI code). *)

let find_exe candidates = List.find_opt Sys.file_exists candidates

let ta_lab () = find_exe [ "../bin/ta_lab.exe"; "_build/default/bin/ta_lab.exe" ]

let bench () =
  find_exe [ "../bench/main.exe"; "_build/default/bench/main.exe" ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Run [exe args], returning (exit code, combined output). *)
let run exe args =
  let out = Filename.temp_file "exit_code" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s %s >%s 2>&1" (Filename.quote exe) args
             (Filename.quote out))
      in
      (code, read_file out))

let check_code exe args expected =
  let code, output = run exe args in
  Alcotest.(check int)
    (Printf.sprintf "'%s' exits %d" args expected)
    expected code;
  output

let test_ta_lab_invalid_cli () =
  match ta_lab () with
  | None -> Alcotest.skip ()
  | Some exe ->
      ignore (check_code exe "no-such-subcommand" 2 : string);
      ignore (check_code exe "fig4b --no-such-flag" 2 : string);
      ignore (check_code exe "fig4b --scale 0" 2 : string);
      ignore (check_code exe "fig4b --scale nan" 2 : string);
      ignore (check_code exe "fig4b --seed -3" 2 : string);
      ignore (check_code exe "faults --intensities 1.5" 2 : string);
      ignore (check_code exe "fig4b --jobs 0" 2 : string)

let test_bench_invalid_cli () =
  match bench () with
  | None -> Alcotest.skip ()
  | Some exe ->
      ignore (check_code exe "--only fig4x" 2 : string);
      ignore (check_code exe "--scale -1 --no-micro" 2 : string);
      ignore (check_code exe "--seed -1 --no-micro" 2 : string);
      ignore (check_code exe "--intensities 1.5 --no-micro" 2 : string);
      ignore (check_code exe "--check-trace --no-micro" 2 : string);
      ignore (check_code exe "--no-such-flag" 2 : string)

let test_bench_starved_exit_3 () =
  match bench () with
  | None -> Alcotest.skip ()
  | Some exe ->
      let output =
        check_code exe "--only faults --scale 0.05 --intensities 1 --no-micro"
          3
      in
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool)
        "report names the starvation" true
        (contains output "tap starved");
      Alcotest.(check bool)
        "no raw backtrace" false
        (contains output "Raised at" || contains output "Fatal error")

let suite =
  [
    Alcotest.test_case "ta_lab: invalid CLI exits 2" `Quick
      test_ta_lab_invalid_cli;
    Alcotest.test_case "bench: invalid CLI exits 2" `Quick
      test_bench_invalid_cli;
    Alcotest.test_case "bench: Tap_starved exits 3 with a report" `Quick
      test_bench_starved_exit_3;
  ]
