(* Exit-code contract, end to end:

     0   success
     1   tabench_diff found a performance regression
     2   invalid CLI (both the Cmdliner-based ta_lab and the Arg-based
         bench/talint/tabench_diff), or an unreadable/invalid report
     3   --strict: Tap_starved / event-budget — a diagnosed report,
         never a backtrace
     4   partial results — the supervisor contained per-point failures
         and emitted annotated tables plus a ta-fail/1 manifest

   Locked down here because ta_lab once exited with Cmdliner's default
   124 on bad flags while bench exited 2, and bench let Tap_starved
   escape as an uncaught exception (which the OCaml runtime reports with
   exit code 2 — colliding with the invalid-CLI code). *)

let find_exe candidates = List.find_opt Sys.file_exists candidates

let ta_lab () = find_exe [ "../bin/ta_lab.exe"; "_build/default/bin/ta_lab.exe" ]

let bench () =
  find_exe [ "../bench/main.exe"; "_build/default/bench/main.exe" ]

let tabench_diff () =
  find_exe
    [ "../bin/tabench_diff.exe"; "_build/default/bin/tabench_diff.exe" ]

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Run [exe args], returning (exit code, combined output). *)
let run exe args =
  let out = Filename.temp_file "exit_code" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove out)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s %s >%s 2>&1" (Filename.quote exe) args
             (Filename.quote out))
      in
      (code, read_file out))

let check_code exe args expected =
  let code, output = run exe args in
  Alcotest.(check int)
    (Printf.sprintf "'%s' exits %d" args expected)
    expected code;
  output

let test_ta_lab_invalid_cli () =
  match ta_lab () with
  | None -> Alcotest.skip ()
  | Some exe ->
      ignore (check_code exe "no-such-subcommand" 2 : string);
      ignore (check_code exe "fig4b --no-such-flag" 2 : string);
      ignore (check_code exe "fig4b --scale 0" 2 : string);
      ignore (check_code exe "fig4b --scale nan" 2 : string);
      ignore (check_code exe "fig4b --seed -3" 2 : string);
      ignore (check_code exe "faults --intensities 1.5" 2 : string);
      ignore (check_code exe "faults --intensities ''" 2 : string);
      ignore (check_code exe "fleet --flows 0,100" 2 : string);
      ignore (check_code exe "fleet --flows ''" 2 : string);
      ignore (check_code exe "fleet --gateways 0" 2 : string);
      ignore (check_code exe "fleet --probes -1" 2 : string);
      ignore (check_code exe "fleet --duration 0" 2 : string);
      ignore (check_code exe "fleet --load sinusoidal" 2 : string);
      ignore (check_code exe "fig4b --jobs 0" 2 : string)

let test_bench_invalid_cli () =
  match bench () with
  | None -> Alcotest.skip ()
  | Some exe ->
      ignore (check_code exe "--only fig4x" 2 : string);
      ignore (check_code exe "--scale -1 --no-micro" 2 : string);
      ignore (check_code exe "--seed -1 --no-micro" 2 : string);
      ignore (check_code exe "--intensities 1.5 --no-micro" 2 : string);
      ignore (check_code exe "--check-trace --no-micro" 2 : string);
      ignore (check_code exe "--no-such-flag" 2 : string)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_bench_starved_exits () =
  match bench () with
  | None -> Alcotest.skip ()
  | Some exe ->
      (* Default supervised run: the blackout point fails, the rest of
         the table survives, and bench reports partial results. *)
      let output =
        check_code exe "--only faults --scale 0.05 --intensities 1 --no-micro"
          4
      in
      Alcotest.(check bool)
        "report names the starvation" true
        (contains output "tap starved");
      Alcotest.(check bool)
        "partial-results notice printed" true
        (contains output "partial results");
      Alcotest.(check bool)
        "no raw backtrace" false
        (contains output "Raised at" || contains output "Fatal error");
      (* --strict restores the historical fail-fast contract: exit 3
         with a diagnosed report, still no backtrace. *)
      let strict =
        check_code exe
          "--only faults --scale 0.05 --intensities 1 --no-micro --strict" 3
      in
      Alcotest.(check bool)
        "strict report names the starvation" true
        (contains strict "tap starved");
      Alcotest.(check bool)
        "strict: no raw backtrace" false
        (contains strict "Raised at" || contains strict "Fatal error")

let test_ta_lab_injected_failure_exit_4 () =
  match ta_lab () with
  | None -> Alcotest.skip ()
  | Some exe ->
      (* Deterministic fault injection: point 0 of the fig4b sweep fails
         on every attempt, so after retries it is quarantined and ta_lab
         reports partial results. *)
      let output =
        check_code exe
          "fig4b --scale 0.05 --inject-fail fig4b:0 --retries 1" 4
      in
      Alcotest.(check bool)
        "partial-results notice printed" true
        (contains output "partial results");
      Alcotest.(check bool)
        "quarantined point is named" true
        (contains output "fig4b");
      Alcotest.(check bool)
        "no raw backtrace" false
        (contains output "Raised at" || contains output "Fatal error")

(* Write a minimal but valid ta-bench/2 report; [wall_s] and [ns] let a
   test dial in a regression on one side. *)
let write_report ~wall_s ~ns =
  let path = Filename.temp_file "tabench" ".json" in
  Out_channel.with_open_bin path (fun oc ->
      Printf.fprintf oc
        {|{"schema": "ta-bench/2", "scale": 0.05, "seed": 42, "jobs": 1,
 "stages": [{"id": "fig4b", "wall_s": %g}],
 "micro": [{"name": "event_queue.push_pop_1k", "ns_per_run": %g}]}|}
        wall_s ns);
  path

let with_reports f =
  let base = write_report ~wall_s:1.0 ~ns:100.0 in
  let slow = write_report ~wall_s:1.0 ~ns:200.0 in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove base;
      Sys.remove slow)
    (fun () -> f ~base ~slow)

let test_tabench_diff_invalid_cli () =
  match tabench_diff () with
  | None -> Alcotest.skip ()
  | Some exe ->
      with_reports (fun ~base ~slow:_ ->
          ignore (check_code exe (Filename.quote base) 2 : string);
          ignore (check_code exe "--no-such-flag a.json b.json" 2 : string);
          ignore
            (check_code exe
               (Printf.sprintf "--format yaml %s %s" (Filename.quote base)
                  (Filename.quote base))
               2
              : string);
          ignore
            (check_code exe
               (Printf.sprintf "--tolerance -0.5 %s %s" (Filename.quote base)
                  (Filename.quote base))
               2
              : string);
          ignore
            (check_code exe
               (Printf.sprintf "/nonexistent/base.json %s" (Filename.quote base))
               2
              : string))

let test_tabench_diff_rejects_bad_report () =
  match tabench_diff () with
  | None -> Alcotest.skip ()
  | Some exe ->
      let bad = Filename.temp_file "tabench" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove bad)
        (fun () ->
          let check contents expected_msg =
            Out_channel.with_open_bin bad (fun oc ->
                Out_channel.output_string oc contents);
            let output =
              check_code exe
                (Printf.sprintf "%s %s" (Filename.quote bad)
                   (Filename.quote bad))
                2
            in
            Alcotest.(check bool)
              (Printf.sprintf "error mentions %S" expected_msg)
              true
              (let lh = String.length output
               and ln = String.length expected_msg in
               let rec go i =
                 i + ln <= lh
                 && (String.sub output i ln = expected_msg || go (i + 1))
               in
               go 0)
          in
          check "{not json" "tabench_diff:";
          check {|{"schema": "ta-bench/1"}|} "unsupported schema";
          check {|{"stages": []}|} "missing \"schema\" key")

let test_tabench_diff_verdicts () =
  match tabench_diff () with
  | None -> Alcotest.skip ()
  | Some exe ->
      with_reports (fun ~base ~slow ->
          let q = Filename.quote in
          (* Identical reports: clean exit 0. *)
          let out = check_code exe (Printf.sprintf "%s %s" (q base) (q base)) 0 in
          let contains hay needle =
            let lh = String.length hay and ln = String.length needle in
            let rec go i =
              i + ln <= lh && (String.sub hay i ln = needle || go (i + 1))
            in
            go 0
          in
          Alcotest.(check bool) "self-diff reports OK" true (contains out "OK:");
          (* 2x slower micro breaches the default 25% tolerance: exit 1. *)
          ignore
            (check_code exe (Printf.sprintf "%s %s" (q base) (q slow)) 1
              : string);
          (* ...but a widened tolerance lets the same pair pass. *)
          ignore
            (check_code exe
               (Printf.sprintf "--tolerance 1.5 %s %s" (q base) (q slow))
               0
              : string);
          (* Improvements never fail, whatever the magnitude. *)
          ignore
            (check_code exe (Printf.sprintf "%s %s" (q slow) (q base)) 0
              : string))

let suite =
  [
    Alcotest.test_case "ta_lab: invalid CLI exits 2" `Quick
      test_ta_lab_invalid_cli;
    Alcotest.test_case "bench: invalid CLI exits 2" `Quick
      test_bench_invalid_cli;
    Alcotest.test_case "bench starvation: exit 4 contained, 3 strict" `Quick
      test_bench_starved_exits;
    Alcotest.test_case "ta_lab: injected failure exits 4" `Quick
      test_ta_lab_injected_failure_exit_4;
    Alcotest.test_case "tabench_diff: invalid CLI exits 2" `Quick
      test_tabench_diff_invalid_cli;
    Alcotest.test_case "tabench_diff: bad report exits 2" `Quick
      test_tabench_diff_rejects_bad_report;
    Alcotest.test_case "tabench_diff: verdict exit codes 0/1" `Quick
      test_tabench_diff_verdicts;
  ]
