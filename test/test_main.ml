let () =
  Alcotest.run "traffic-analysis-repro"
    [
      ("prng.rng", Test_rng.suite);
      ("prng.sampler", Test_sampler.suite);
      ("stats.special", Test_special.suite);
      ("stats.descriptive", Test_descriptive.suite);
      ("stats.histogram", Test_histogram.suite);
      ("stats.entropy", Test_entropy.suite);
      ("stats.kde", Test_kde.suite);
      ("stats.distribution", Test_distribution.suite);
      ("stats.numerics", Test_numerics.suite);
      ("stats.stream", Test_stream.suite);
      ("stats.fourier", Test_fourier.suite);
      ("desim", Test_desim.suite);
      ("desim.proc", Test_proc.suite);
      ("netsim", Test_netsim.suite);
      ("netsim.shaper", Test_shaper.suite);
      ("padding", Test_padding.suite);
      ("padding.kernel", Test_kernel.suite);
      ("adversary", Test_adversary.suite);
      ("analytical", Test_analytical.suite);
      ("extensions", Test_extensions.suite);
      ("multirate+roc", Test_multirate_roc.suite);
      ("sizes", Test_sizes.suite);
      ("faults", Test_faults.suite);
      ("fleet", Test_fleet.suite);
      ("exec", Test_exec.suite);
      ("resilience", Test_resilience.suite);
      ("obs", Test_obs.suite);
      ("obs.trace", Test_trace_schema.suite);
      ("integration", Test_integration.suite);
      ("stress", Test_stress.suite);
      ("lint", Test_lint.suite);
      ("exit-codes", Test_exit_codes.suite);
    ]
