(* Fleet layer: the SoA flow table's merge algebra, the mux's
   conservation laws (every accepted arrival lands in exactly one flow
   row; the Obs counters agree with the returned totals), bit-identity
   of the fleet sweep at any worker count — including a kill-resume
   through the ta-ckpt/1 journal — and a 10^6-flow smoke test with a
   steady-state allocation ceiling on the table's hot path. *)

module FT = Flow_table
module Sweep = Scenarios.Sweep

let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* --- Flow_table basics --- *)

let test_table_create_and_bounds () =
  let t = FT.create ~lo:10 ~flows:5 () in
  Alcotest.(check int) "lo" 10 (FT.lo t);
  Alcotest.(check int) "width" 5 (FT.width t);
  Alcotest.(check int) "hi" 15 (FT.hi t);
  Alcotest.check_raises "flows < 1"
    (Invalid_argument "Flow_table.create: flows < 1") (fun () ->
      ignore (FT.create ~flows:0 ()));
  Alcotest.check_raises "lo < 0" (Invalid_argument "Flow_table.create: lo < 0")
    (fun () -> ignore (FT.create ~lo:(-1) ~flows:1 ()));
  Alcotest.check_raises "flow below window"
    (Invalid_argument "Flow_table: flow 9 outside [10, 15)") (fun () ->
      FT.record t ~flow:9 ~bytes:1 ~now:0.0);
  Alcotest.check_raises "flow above window"
    (Invalid_argument "Flow_table: flow 15 outside [10, 15)") (fun () ->
      ignore (FT.packets t ~flow:15))

let test_table_record () =
  let t = FT.create ~flows:4 () in
  Alcotest.(check (float 0.0)) "virgin last_activity" Float.neg_infinity
    (FT.last_activity t ~flow:2);
  FT.record t ~flow:2 ~bytes:500 ~now:1.5;
  FT.record t ~flow:2 ~bytes:300 ~now:2.5;
  FT.record_dummy t ~flow:2;
  Alcotest.(check (float 0.0)) "packets" 2.0 (FT.packets t ~flow:2);
  Alcotest.(check (float 0.0)) "bytes" 800.0 (FT.bytes t ~flow:2);
  Alcotest.(check (float 0.0)) "dummies" 1.0 (FT.dummies t ~flow:2);
  Alcotest.(check (float 0.0)) "last_activity tracks records" 2.5
    (FT.last_activity t ~flow:2);
  FT.record_dummy t ~flow:3;
  Alcotest.(check (float 0.0)) "dummies do not touch last_activity"
    Float.neg_infinity
    (FT.last_activity t ~flow:3);
  Alcotest.(check int) "active since 2.0" 1 (FT.active t ~since:2.0);
  Alcotest.(check int) "active since 3.0" 0 (FT.active t ~since:3.0);
  FT.clear t;
  Alcotest.(check (float 0.0)) "clear zeroes counters" 0.0 (FT.total_packets t);
  Alcotest.(check (float 0.0)) "clear resets last_activity"
    Float.neg_infinity
    (FT.last_activity t ~flow:2)

let test_table_spread_dummies () =
  let t = FT.create ~lo:3 ~flows:5 () in
  (* 12 = 2 * 5 + 2: every flow gets 2, the remainder lands on the two
     lowest ids. *)
  FT.spread_dummies t ~count:12;
  Alcotest.(check (list (float 0.0)))
    "quotient everywhere, remainder on the lowest ids"
    [ 3.0; 3.0; 2.0; 2.0; 2.0 ]
    (List.init 5 (fun i -> FT.dummies t ~flow:(3 + i)));
  Alcotest.(check (float 0.0)) "total conserved" 12.0 (FT.total_dummies t);
  Alcotest.check_raises "negative count"
    (Invalid_argument "Flow_table.spread_dummies: count < 0") (fun () ->
      FT.spread_dummies t ~count:(-1))

let test_table_snapshot_isolated () =
  let t = FT.create ~flows:2 () in
  FT.record t ~flow:0 ~bytes:100 ~now:1.0;
  let s = FT.snapshot t in
  FT.record t ~flow:0 ~bytes:100 ~now:2.0;
  Alcotest.(check (float 0.0)) "snapshot frozen" 1.0 (FT.packets s ~flow:0);
  Alcotest.(check (float 0.0)) "live table moved on" 2.0 (FT.packets t ~flow:0)

(* --- merge algebra --- *)

(* A random table over a random window inside [0, 40), as a QCheck
   generator: (lo, width, ops) where each op touches one flow. *)
let table_of_spec (lo, width, ops) =
  let t = FT.create ~lo ~flows:width () in
  List.iter
    (fun (off, kind, v) ->
      let flow = lo + (off mod width) in
      match kind mod 3 with
      | 0 -> FT.record t ~flow ~bytes:(1 + (v mod 1000)) ~now:(float_of_int v)
      | 1 -> FT.record_dummy t ~flow
      | _ -> FT.set_class t ~flow (v mod 256))
    ops;
  t

let spec_gen =
  QCheck.Gen.(
    triple (int_range 0 20) (int_range 1 20)
      (list_size (int_range 0 30)
         (triple (int_range 0 19) (int_range 0 2) (int_range 0 5000))))

let spec_arb = QCheck.make ~print:(fun _ -> "<table spec>") spec_gen

let tables_equal a b =
  FT.lo a = FT.lo b
  && FT.width a = FT.width b
  && List.for_all
       (fun flow ->
         FT.packets a ~flow = FT.packets b ~flow
         && FT.bytes a ~flow = FT.bytes b ~flow
         && FT.dummies a ~flow = FT.dummies b ~flow
         && FT.last_activity a ~flow = FT.last_activity b ~flow
         && FT.rate_class a ~flow = FT.rate_class b ~flow)
       (List.init (FT.width a) (fun i -> FT.lo a + i))

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:200
    (QCheck.pair spec_arb spec_arb)
    (fun (sa, sb) ->
      let a = table_of_spec sa and b = table_of_spec sb in
      tables_equal (FT.merge a b) (FT.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:200
    (QCheck.triple spec_arb spec_arb spec_arb)
    (fun (sa, sb, sc) ->
      let a = table_of_spec sa
      and b = table_of_spec sb
      and c = table_of_spec sc in
      tables_equal
        (FT.merge (FT.merge a b) c)
        (FT.merge a (FT.merge b c)))

let prop_merge_order_independent =
  (* Any permutation folded left gives the same table — the exact
     property Mux.run's shard fold relies on. *)
  QCheck.Test.make ~name:"merge order-independent" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 1 5) spec_arb)
    (fun specs ->
      let fold ts =
        match List.map table_of_spec ts with
        | [] -> assert false
        | t :: rest -> List.fold_left FT.merge t rest
      in
      tables_equal (fold specs) (fold (List.rev specs)))

let test_merge_disjoint_windows () =
  let a = FT.create ~lo:0 ~flows:2 () in
  let b = FT.create ~lo:5 ~flows:2 () in
  FT.record a ~flow:1 ~bytes:10 ~now:1.0;
  FT.record b ~flow:6 ~bytes:20 ~now:2.0;
  let m = FT.merge a b in
  Alcotest.(check (pair int int)) "union window" (0, 7) (FT.lo m, FT.hi m);
  Alcotest.(check (float 0.0)) "left counts kept" 1.0 (FT.packets m ~flow:1);
  Alcotest.(check (float 0.0)) "right counts kept" 1.0 (FT.packets m ~flow:6);
  Alcotest.(check (float 0.0)) "gap flows zero" 0.0 (FT.packets m ~flow:3);
  Alcotest.(check (float 0.0)) "gap flows inactive" Float.neg_infinity
    (FT.last_activity m ~flow:3)

(* --- Mux conservation --- *)

let small_cfg =
  { Mux.default_config with flows = 120; gateways = 4; duration = 1.0 }

let test_mux_conservation () =
  let r = Mux.run small_cfg in
  Alcotest.(check int) "merged table covers the whole fleet" 120
    (FT.width r.Mux.table);
  (* Every accepted arrival was demuxed into exactly one flow row. *)
  Alcotest.(check (float 0.0)) "arrivals == table packet total"
    (float_of_int r.Mux.arrivals)
    (FT.total_packets r.Mux.table);
  Alcotest.(check (float 0.0)) "bytes = packets * packet_size"
    (float_of_int (r.Mux.arrivals * small_cfg.Mux.packet_size))
    (FT.total_bytes r.Mux.table);
  Alcotest.(check (float 0.0)) "link dummies amortized exactly"
    (float_of_int r.Mux.dummy_sent)
    (FT.total_dummies r.Mux.table);
  (* The gateway can only send or drop what arrived (plus dummies). *)
  Alcotest.(check bool) "sent + dropped <= arrivals" true
    (r.Mux.payload_sent + r.Mux.payload_dropped <= r.Mux.arrivals);
  Alcotest.(check bool) "delivered <= sent" true
    (r.Mux.payload_delivered <= r.Mux.payload_sent);
  Alcotest.(check bool) "some traffic flowed" true (r.Mux.arrivals > 0)

let test_mux_obs_counters_reconcile () =
  (* The process-global Obs counters are cumulative; the run's
     contribution is the delta, and it must equal the returned totals —
     including the per-class label family summing to the whole. *)
  let read name =
    Obs.Metrics.counter_value (Obs.Metrics.counter name)
  in
  let read_class label =
    Obs.Metrics.counter_value
      (Obs.Metrics.counter_labeled "fleet.mux.class_arrivals"
         ~label:("class", label))
  in
  let a0 = read "fleet.mux.arrivals" and d0 = read "fleet.mux.dummies" in
  let c0 = read_class "10pps" and c1 = read_class "40pps" in
  let r = Mux.run small_cfg in
  Alcotest.(check int) "arrivals counter delta"
    r.Mux.arrivals
    (read "fleet.mux.arrivals" - a0);
  Alcotest.(check int) "dummies counter delta"
    r.Mux.dummy_sent
    (read "fleet.mux.dummies" - d0);
  Alcotest.(check int) "class family sums to the whole"
    r.Mux.arrivals
    (read_class "10pps" - c0 + (read_class "40pps" - c1))

let test_mux_deterministic_any_jobs () =
  let fingerprint (r : Mux.result) =
    ( r.Mux.arrivals,
      r.Mux.payload_sent,
      r.Mux.dummy_sent,
      r.Mux.payload_delivered,
      r.Mux.mean_payload_latency,
      List.init 120 (fun flow ->
          ( FT.packets r.Mux.table ~flow,
            FT.dummies r.Mux.table ~flow,
            FT.last_activity r.Mux.table ~flow )) )
  in
  let at jobs = Exec.Pool.with_jobs jobs (fun () -> Mux.run small_cfg) in
  let base = fingerprint (at 1) in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        true
        (fingerprint (at jobs) = base))
    [ 2; 8 ]

let test_mux_class_partition () =
  (* Class ranges partition the fleet and shard slices respect them:
     every flow's recorded class matches class_of_flow. *)
  let cfg = { small_cfg with Mux.flows = 97; gateways = 5 } in
  let r = Mux.run cfg in
  for flow = 0 to 96 do
    Alcotest.(check int)
      (Printf.sprintf "class of flow %d" flow)
      (Mux.class_of_flow cfg flow)
      (FT.rate_class r.Mux.table ~flow)
  done;
  (* Shard ranges tile [0, flows) without gaps or overlap. *)
  let covered = Array.make 97 0 in
  for g = 0 to 4 do
    let lo, hi = Mux.shard_range cfg ~gateway:g in
    for f = lo to hi - 1 do
      covered.(f) <- covered.(f) + 1
    done
  done;
  Alcotest.(check bool) "shards tile the fleet exactly once" true
    (Array.for_all (fun c -> c = 1) covered)

let test_mux_validate () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "flows < 1" true
    (bad (fun () -> Mux.validate { small_cfg with Mux.flows = 0 }));
  Alcotest.(check bool) "gateways > flows" true
    (bad (fun () -> Mux.validate { small_cfg with Mux.gateways = 121 }));
  Alcotest.(check bool) "fractions must sum to 1" true
    (bad (fun () ->
         Mux.validate
           {
             small_cfg with
             Mux.classes =
               [| { Mux.label = "x"; rate_pps = 1.0; fraction = 0.7 } |];
           }));
  Alcotest.(check bool) "negative duration" true
    (bad (fun () -> Mux.validate { small_cfg with Mux.duration = -1.0 }))

(* --- fleet sweep: bit-identity at any jobs, incl. kill-resume --- *)

let with_defaults f =
  let reset () =
    Sweep.set_checkpoint_dir None;
    Sweep.set_retries 2;
    Sweep.set_strict false;
    Sweep.set_event_budget None;
    Sweep.clear_injections ();
    Sweep.clear_failures ()
  in
  reset ();
  Fun.protect ~finally:reset f

let with_temp_dir f =
  let dir = Filename.temp_file "ta_fleet" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path contents =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc contents)

(* The sweep at toy size; the rendered table (printed through a string
   formatter) is the byte-level observable the CI gate compares. *)
let render_sweep ~jobs ~csv_dir =
  Exec.Pool.with_jobs jobs (fun () ->
      let buf = Buffer.create 1024 in
      let fmt = Format.formatter_of_buffer buf in
      let points =
        Scenarios.Fleet.run ~scale:0.1 ~seed:77 ?csv_dir
          ~flow_counts:[ 300; 900 ] ~gateways:3 ~probes:3 ~duration:0.4 fmt
      in
      Format.pp_print_flush fmt ();
      (Buffer.contents buf, points))

let test_sweep_bit_identity_jobs () =
  with_defaults @@ fun () ->
  let base, points = render_sweep ~jobs:1 ~csv_dir:None in
  Alcotest.(check int) "both points ok" 2 (List.length points);
  List.iter
    (fun jobs ->
      let out, _ = render_sweep ~jobs ~csv_dir:None in
      Alcotest.(check string)
        (Printf.sprintf "table bytes identical at jobs=%d" jobs)
        base out)
    [ 2; 8 ]

let test_sweep_kill_resume () =
  with_defaults @@ fun () ->
  with_temp_dir @@ fun dir ->
  (* Uninterrupted checkpointed run: the ground truth bytes. *)
  Sweep.set_checkpoint_dir (Some dir);
  let full, _ = render_sweep ~jobs:1 ~csv_dir:None in
  let journal = Filename.concat dir "fleet.ckpt" in
  Alcotest.(check bool) "journal written" true (Sys.file_exists journal);
  (* Chop the journal to header + 1 record — the state a SIGKILL after
     one completed point leaves behind — and resume at other worker
     counts. *)
  (match String.split_on_char '\n' (read_file journal) with
  | header :: records ->
      let kept = List.filteri (fun i _ -> i < 1) records in
      write_file journal (String.concat "\n" (header :: kept) ^ "\n")
  | [] -> Alcotest.fail "journal should not be empty");
  List.iter
    (fun jobs ->
      (* Rewind to the truncated journal before each resume. *)
      let truncated = read_file journal in
      let out, _ = render_sweep ~jobs ~csv_dir:None in
      Alcotest.(check string)
        (Printf.sprintf "kill-resume at jobs=%d is byte-identical" jobs)
        full out;
      write_file journal truncated)
    [ 1; 2; 8 ]

(* --- million-flow smoke --- *)

let test_million_flow_smoke () =
  (* A 10^6-flow mux completes in one small table allocation per shard
     and conserves arrivals; kept cheap with a short simulated window. *)
  let cfg =
    { Mux.default_config with Mux.flows = 1_000_000; duration = 0.01 }
  in
  let r = Mux.run cfg in
  Alcotest.(check int) "covers the whole fleet" 1_000_000
    (FT.width r.Mux.table);
  Alcotest.(check (float 0.0)) "conservation at 1M flows"
    (float_of_int r.Mux.arrivals)
    (FT.total_packets r.Mux.table);
  Alcotest.(check bool) "traffic flowed" true (r.Mux.arrivals > 0);
  (* Steady-state allocation ceiling on the hot path: recording into a
     1M-row table allocates nothing per operation (unboxed floatarray
     columns; the budget tolerates boxing at the call boundary). *)
  let t = r.Mux.table in
  let iters = 100_000 in
  let tick i =
    FT.record t ~flow:(i * 7919 mod 1_000_000) ~bytes:500 ~now:1.0
  in
  tick 0;
  (* warm the minor heap path *)
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    tick i
  done;
  let per_op = (Gc.minor_words () -. w0) /. float_of_int iters in
  if per_op > 8.0 then
    Alcotest.failf "steady-state allocation %.2f words/record (want <= 8)"
      per_op

let test_probe_flows_cover_classes () =
  let ids = Scenarios.Fleet.probe_flows ~flows:1000 ~probes:10 in
  Alcotest.(check int) "requested probes" 10 (Array.length ids);
  Alcotest.(check bool) "strictly increasing in-range" true
    (Array.for_all (fun f -> f >= 0 && f < 1000) ids
    && Array.for_all
         (fun i -> ids.(i) < ids.(i + 1))
         (Array.init 9 (fun i -> i)));
  (* Half the probes land in each half of the id space — the two
     calibration classes get proportional coverage. *)
  Alcotest.(check int) "low-class probes" 5
    (Array.length (Array.of_list (List.filter (fun f -> f < 500) (Array.to_list ids))));
  (* Probes clamp to the fleet when it is tiny. *)
  Alcotest.(check int) "clamped to flows" 3
    (Array.length (Scenarios.Fleet.probe_flows ~flows:3 ~probes:10))

let test_sweep_rejects_bad_params () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "zero flow count" true
    (bad (fun () ->
         Scenarios.Fleet.run ~flow_counts:[ 0 ] null_fmt));
  Alcotest.(check bool) "zero gateways" true
    (bad (fun () -> Scenarios.Fleet.run ~gateways:0 null_fmt));
  Alcotest.(check bool) "zero probes" true
    (bad (fun () -> Scenarios.Fleet.run ~probes:0 null_fmt))

let suite =
  [
    Alcotest.test_case "table create/bounds" `Quick test_table_create_and_bounds;
    Alcotest.test_case "table record" `Quick test_table_record;
    Alcotest.test_case "table spread_dummies" `Quick test_table_spread_dummies;
    Alcotest.test_case "table snapshot isolated" `Quick
      test_table_snapshot_isolated;
    Alcotest.test_case "merge disjoint windows" `Quick
      test_merge_disjoint_windows;
    QCheck_alcotest.to_alcotest prop_merge_commutative;
    QCheck_alcotest.to_alcotest prop_merge_associative;
    QCheck_alcotest.to_alcotest prop_merge_order_independent;
    Alcotest.test_case "mux conservation" `Quick test_mux_conservation;
    Alcotest.test_case "mux obs counters reconcile" `Quick
      test_mux_obs_counters_reconcile;
    Alcotest.test_case "mux deterministic at any jobs" `Quick
      test_mux_deterministic_any_jobs;
    Alcotest.test_case "mux class partition" `Quick test_mux_class_partition;
    Alcotest.test_case "mux validate" `Quick test_mux_validate;
    Alcotest.test_case "sweep bit-identity jobs 1/2/8" `Quick
      test_sweep_bit_identity_jobs;
    Alcotest.test_case "sweep kill-resume" `Quick test_sweep_kill_resume;
    Alcotest.test_case "million-flow smoke" `Slow test_million_flow_smoke;
    Alcotest.test_case "probe flows cover classes" `Quick
      test_probe_flows_cover_classes;
    Alcotest.test_case "sweep rejects bad params" `Quick
      test_sweep_rejects_bad_params;
  ]
