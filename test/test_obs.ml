(* Property tests for the observability layer (lib/obs).

   The determinism contract of the whole repo leans on these: metric
   recording is sharded per domain and merged on snapshot, so the merge
   must be associative and commutative — any partition of the same event
   multiset over any number of domains must produce the identical
   snapshot. *)

let reset_all () =
  Obs.Metrics.reset ();
  Obs.Span.reset ()

(* Spawn [k] domains, give domain [d] the work items [d, d+k, d+2k, ...],
   wait for all.  With k = 1 this is the sequential baseline. *)
let record_partitioned ~domains:k ~n record =
  let worker d () =
    let i = ref d in
    while !i < n do
      record !i;
      i := !i + k
    done
  in
  if k <= 1 then worker 0 ()
  else begin
    let others = List.init (k - 1) (fun d -> Domain.spawn (worker (d + 1))) in
    worker 0 ();
    List.iter Domain.join others
  end

let test_counter_merge_partitions () =
  let c = Obs.Metrics.counter "test.obs.merge_counter" in
  let n = 10_000 in
  List.iter
    (fun k ->
      reset_all ();
      record_partitioned ~domains:k ~n (fun i ->
          if i mod 3 = 0 then Obs.Metrics.add c 2 else Obs.Metrics.incr c);
      let expected = (2 * ((n + 2) / 3)) + (n - ((n + 2) / 3)) in
      Alcotest.(check int)
        (Printf.sprintf "counter total identical at %d domains" k)
        expected
        (Obs.Metrics.counter_value c))
    [ 1; 2; 4; 7 ]

let test_histogram_merge_partitions () =
  let h = Obs.Metrics.histogram "test.obs.merge_hist" in
  let g = Obs.Metrics.gauge "test.obs.merge_gauge" in
  let n = 10_000 in
  (* Deterministic value stream independent of the partition. *)
  let value i =
    let rng = Prng.Rng.create ~seed:(1000 + i) in
    Prng.Rng.float_range rng ~lo:1e-7 ~hi:1e6
  in
  let snap_for k =
    reset_all ();
    record_partitioned ~domains:k ~n (fun i ->
        let v = value i in
        Obs.Metrics.observe h v;
        Obs.Metrics.observe_hwm g v);
    Obs.Metrics.Snapshot.filter_prefix "test.obs." (Obs.Metrics.snapshot ())
  in
  let baseline = snap_for 1 in
  (match Obs.Metrics.Snapshot.find baseline "test.obs.merge_hist" with
  | Some (Obs.Metrics.Snapshot.Histogram hist) ->
      Alcotest.(check int) "histogram saw every value" n hist.count
  | _ -> Alcotest.fail "histogram missing from snapshot");
  List.iter
    (fun k ->
      let merged = snap_for k in
      Alcotest.(check bool)
        (Printf.sprintf "snapshot identical at %d domains" k)
        true (baseline = merged))
    [ 2; 4; 7 ]

let test_bucket_invariants () =
  let module B = Obs.Metrics.Buckets in
  (* Special values pin the underflow/overflow conventions. *)
  Alcotest.(check int) "nan -> underflow" 0 (B.index_of Float.nan);
  Alcotest.(check int) "zero -> underflow" 0 (B.index_of 0.0);
  Alcotest.(check int) "negative -> underflow" 0 (B.index_of (-3.5));
  Alcotest.(check int) "+inf -> overflow" (B.n - 1) (B.index_of infinity);
  (* Contiguity: each bucket's upper bound is the next bucket's lower. *)
  for i = 1 to B.n - 3 do
    let _, hi = B.bounds i in
    let lo', _ = B.bounds (i + 1) in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "bucket %d contiguous" i)
      hi lo'
  done;
  (* 10k pseudo-random values spanning the whole dynamic range. *)
  let rng = Prng.Rng.create ~seed:77 in
  let prev = ref (0, 0.0) in
  for trial = 1 to 10_000 do
    let exponent = Prng.Rng.float_range rng ~lo:(-14.0) ~hi:10.0 in
    let v = 10.0 ** exponent in
    let i = B.index_of v in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: index in range" trial)
      true
      (i >= 0 && i < B.n);
    let lo, hi = B.bounds i in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: %g in [%g, %g)" trial v lo hi)
      true
      (lo <= v && v < hi);
    (* Monotonicity versus the previous trial. *)
    let pi, pv = !prev in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: index monotone in value" trial)
      true
      (if v > pv then i >= pi else if v < pv then i <= pi else i = pi);
    prev := (i, v)
  done

let spin () =
  (* A little deterministic work so spans have a chance at nonzero time;
     the assertions below hold even if the clock does not tick. *)
  let acc = ref 0.0 in
  for i = 1 to 10_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

let find_span name =
  match
    List.find_opt
      (fun (s : Obs.Span.stat) -> s.Obs.Span.name = name)
      (Obs.Span.snapshot ())
  with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let test_span_nesting () =
  reset_all ();
  Obs.span "test.span.outer" (fun () ->
      spin ();
      Obs.span "test.span.inner" (fun () -> spin ());
      Obs.span "test.span.inner" (fun () -> spin ()));
  let outer = find_span "test.span.outer" in
  let inner = find_span "test.span.inner" in
  Alcotest.(check int) "outer ran once" 1 outer.Obs.Span.count;
  Alcotest.(check int) "inner ran twice" 2 inner.Obs.Span.count;
  List.iter
    (fun (s : Obs.Span.stat) ->
      Alcotest.(check bool)
        (s.Obs.Span.name ^ ": self >= 0")
        true (s.self_s >= 0.0);
      Alcotest.(check bool)
        (s.Obs.Span.name ^ ": self <= total")
        true
        (s.self_s <= s.total_s +. 1e-9))
    [ outer; inner ];
  (* Children never overlap the parent's self time: the parent's total
     covers its self plus all nested child time. *)
  Alcotest.(check bool)
    "outer total covers inner total" true
    (outer.Obs.Span.total_s +. 1e-9
    >= inner.Obs.Span.total_s +. outer.Obs.Span.self_s)

let test_span_exception_safe () =
  reset_all ();
  (try
     Obs.span "test.span.raises" (fun () ->
         spin ();
         failwith "boom")
   with Failure _ -> ());
  let s = find_span "test.span.raises" in
  Alcotest.(check int) "raising span still recorded" 1 s.Obs.Span.count

let test_snapshot_then_reset () =
  reset_all ();
  let c = Obs.Metrics.counter "test.obs.reset_counter" in
  let h = Obs.Metrics.histogram "test.obs.reset_hist" in
  for i = 1 to 500 do
    Obs.Metrics.incr c;
    Obs.Metrics.observe h (float_of_int i)
  done;
  let s1 = Obs.Metrics.snapshot () in
  let s2 = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "snapshot is read-only (idempotent)" true (s1 = s2);
  Obs.Metrics.reset ();
  Alcotest.(check int)
    "counter zero after reset" 0
    (Obs.Metrics.Snapshot.counter_value
       (Obs.Metrics.snapshot ())
       "test.obs.reset_counter");
  (match
     Obs.Metrics.Snapshot.find (Obs.Metrics.snapshot ()) "test.obs.reset_hist"
   with
  | Some (Obs.Metrics.Snapshot.Histogram hist) ->
      Alcotest.(check int) "histogram empty after reset" 0 hist.count
  | _ -> Alcotest.fail "histogram should stay registered across reset");
  (* Recording still works after a reset. *)
  Obs.Metrics.incr c;
  Alcotest.(check int) "recording resumes" 1 (Obs.Metrics.counter_value c)

let test_name_type_clash () =
  ignore (Obs.Metrics.counter "test.obs.clash");
  Alcotest.check_raises "same name, different type"
    (Invalid_argument
       "Obs.Metrics: \"test.obs.clash\" already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge "test.obs.clash"))

let test_json_roundtrip () =
  let cases =
    [
      ({|{"a": 1, "b": [true, null, "x\ny"], "c": -2.5e3}|}, true);
      ({|"tab\there"|}, true);
      ({|{"dangling": }|}, false);
      ({|{"a": 1} trailing|}, false);
      ({|{"nan": NaN}|}, false);
    ]
  in
  List.iter
    (fun (s, ok) ->
      match Obs.Json.of_string s with
      | Ok _ ->
          Alcotest.(check bool) (Printf.sprintf "parse %S" s) ok true
      | Error _ ->
          Alcotest.(check bool) (Printf.sprintf "parse %S" s) ok false)
    cases;
  (* escape really escapes: the parser must invert it. *)
  let tricky = "a\"b\\c\nd\te\001f" in
  match Obs.Json.of_string ("\"" ^ Obs.Json.escape tricky ^ "\"") with
  | Ok (Obs.Json.Str s) ->
      Alcotest.(check string) "escape/parse roundtrip" tricky s
  | _ -> Alcotest.fail "escaped string did not parse back"

let suite =
  [
    Alcotest.test_case "counter merge: any domain partition" `Quick
      test_counter_merge_partitions;
    Alcotest.test_case "histogram+gauge merge: any domain partition" `Quick
      test_histogram_merge_partitions;
    Alcotest.test_case "histogram bucket invariants (10k values)" `Quick
      test_bucket_invariants;
    Alcotest.test_case "span nesting: self times consistent" `Quick
      test_span_nesting;
    Alcotest.test_case "span records across exceptions" `Quick
      test_span_exception_safe;
    Alcotest.test_case "snapshot idempotent; reset zeroes" `Quick
      test_snapshot_then_reset;
    Alcotest.test_case "metric name/type clash rejected" `Quick
      test_name_type_clash;
    Alcotest.test_case "json codec roundtrip" `Quick test_json_roundtrip;
  ]
