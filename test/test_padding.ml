(* Padding layer: timer laws, jitter models, the sender gateway's padding
   invariants, the receiver, and the adaptive masker. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Timer --- *)

let test_timer_means_and_sigmas () =
  close "constant mean" 0.01 (Padding.Timer.mean (Padding.Timer.Constant 0.01));
  close "constant sigma" 0.0 (Padding.Timer.sigma (Padding.Timer.Constant 0.01));
  close "normal sigma" 2e-5
    (Padding.Timer.sigma (Padding.Timer.Normal { mean = 0.01; sigma = 2e-5 }));
  close "uniform sigma = hw/sqrt3" (1e-3 /. sqrt 3.0)
    (Padding.Timer.sigma (Padding.Timer.Uniform { mean = 0.01; half_width = 1e-3 }));
  close "exponential sigma = mean" 0.01
    (Padding.Timer.sigma (Padding.Timer.Exponential { mean = 0.01 }))

let test_timer_draw_statistics () =
  let rng = Prng.Rng.create ~seed:111 in
  let check law =
    let acc = Stats.Descriptive.Acc.create () in
    for _ = 1 to 100_000 do
      let x = Padding.Timer.draw law rng in
      if x <= 0.0 then Alcotest.fail "non-positive interval";
      Stats.Descriptive.Acc.add acc x
    done;
    close ~tol:0.02 "mean matches" (Padding.Timer.mean law)
      (Stats.Descriptive.Acc.mean acc);
    close ~tol:0.05 "sigma matches" (Padding.Timer.sigma law)
      (Stats.Descriptive.Acc.std acc)
  in
  check (Padding.Timer.Normal { mean = 0.01; sigma = 1e-3 });
  check (Padding.Timer.Uniform { mean = 0.01; half_width = 5e-3 });
  check (Padding.Timer.Exponential { mean = 0.01 })

let test_timer_cit_draw_exact () =
  let rng = Prng.Rng.create ~seed:112 in
  for _ = 1 to 10 do
    close "CIT exact" 0.01 (Padding.Timer.draw (Padding.Timer.Constant 0.01) rng)
  done

let test_timer_validation () =
  Alcotest.check_raises "constant <= 0"
    (Invalid_argument "Timer: constant period <= 0") (fun () ->
      Padding.Timer.validate (Padding.Timer.Constant 0.0));
  Alcotest.check_raises "uniform hw"
    (Invalid_argument "Timer: uniform half_width out of (0, mean)") (fun () ->
      Padding.Timer.validate
        (Padding.Timer.Uniform { mean = 0.01; half_width = 0.02 }))

let test_timer_is_cit () =
  Alcotest.(check bool) "cit" true (Padding.Timer.is_cit (Padding.Timer.Constant 1.0));
  Alcotest.(check bool) "vit" false
    (Padding.Timer.is_cit (Padding.Timer.Normal { mean = 1.0; sigma = 0.1 }))

(* --- Jitter --- *)

let ctx ?(sends_payload = false) ?(arrivals = 0) () =
  { Padding.Jitter.fire_time = 0.0; sends_payload; arrivals_in_window = arrivals }

let test_jitter_none () =
  let rng = Prng.Rng.create ~seed:113 in
  close "zero" 0.0 (Padding.Jitter.latency Padding.Jitter.none rng (ctx ()))

let test_jitter_nonnegative () =
  let rng = Prng.Rng.create ~seed:114 in
  let models =
    [
      Padding.Jitter.parametric ~mu:1e-6 ~sigma:5e-6;
      Padding.Jitter.mechanistic ();
    ]
  in
  List.iter
    (fun m ->
      for _ = 1 to 10_000 do
        let l =
          Padding.Jitter.latency m rng (ctx ~sends_payload:true ~arrivals:1 ())
        in
        if l < 0.0 then Alcotest.fail "negative latency"
      done)
    models

let test_mechanistic_payload_path_adds_variance () =
  (* The paper's leak: fires that send payload have higher-variance latency. *)
  let rng = Prng.Rng.create ~seed:115 in
  let m = Padding.Jitter.mechanistic () in
  let acc_of sends_payload =
    let acc = Stats.Descriptive.Acc.create () in
    for _ = 1 to 50_000 do
      Stats.Descriptive.Acc.add acc
        (Padding.Jitter.latency m rng (ctx ~sends_payload ()))
    done;
    acc
  in
  let dummy = acc_of false and payload = acc_of true in
  Alcotest.(check bool) "payload path slower on average" true
    (Stats.Descriptive.Acc.mean payload > Stats.Descriptive.Acc.mean dummy);
  Alcotest.(check bool) "payload path noisier" true
    (Stats.Descriptive.Acc.variance payload > Stats.Descriptive.Acc.variance dummy)

let test_mechanistic_irq_blocking_adds_delay () =
  let rng = Prng.Rng.create ~seed:116 in
  let m = Padding.Jitter.mechanistic () in
  let mean_of arrivals =
    let acc = Stats.Descriptive.Acc.create () in
    for _ = 1 to 30_000 do
      Stats.Descriptive.Acc.add acc (Padding.Jitter.latency m rng (ctx ~arrivals ()))
    done;
    Stats.Descriptive.Acc.mean acc
  in
  Alcotest.(check bool) "blocking grows with arrivals" true
    (mean_of 3 > mean_of 0 +. 4e-6)

let test_parametric_moments () =
  let rng = Prng.Rng.create ~seed:117 in
  let m = Padding.Jitter.parametric ~mu:1e-4 ~sigma:1e-5 in
  let acc = Stats.Descriptive.Acc.create () in
  for _ = 1 to 50_000 do
    Stats.Descriptive.Acc.add acc (Padding.Jitter.latency m rng (ctx ()))
  done;
  (* mu >> sigma so clipping is negligible *)
  close ~tol:0.01 "mean" 1e-4 (Stats.Descriptive.Acc.mean acc);
  close ~tol:0.05 "sigma" 1e-5 (Stats.Descriptive.Acc.std acc)

let test_jitter_invalid () =
  Alcotest.check_raises "negative mu" (Invalid_argument "Jitter.parametric: mu < 0")
    (fun () -> ignore (Padding.Jitter.parametric ~mu:(-1.0) ~sigma:1.0))

(* --- Gateway --- *)

let make_system ?(timer = Padding.Timer.Constant 0.01)
    ?(jitter = Padding.Jitter.none) ?(payload_rate = 10.0) ~seed () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed in
  let tap = Netsim.Tap.create sim ~dest:(fun _ -> ()) () in
  let gw =
    Padding.Gateway.create sim ~rng:(Prng.Rng.split rng) ~timer ~jitter
      ~dest:(Netsim.Tap.port tap) ()
  in
  let src =
    Netsim.Traffic_gen.poisson sim ~rng:(Prng.Rng.split rng)
      ~rate_pps:payload_rate ~size_bytes:500 ~kind:Netsim.Packet.Payload
      ~dest:(Padding.Gateway.input gw) ()
  in
  (sim, tap, gw, src)

let test_gateway_constant_output_rate () =
  let sim, tap, gw, _ = make_system ~seed:118 () in
  Desim.Sim.run_until sim ~time:50.0;
  (* 100 fires/s for 50 s = 5000 packets regardless of payload *)
  Alcotest.(check int) "output count" 5000 (Netsim.Tap.count tap);
  Alcotest.(check int) "fires" 5000 (Padding.Gateway.fires gw)

let test_gateway_output_rate_independent_of_payload () =
  let count rate seed =
    let sim, tap, _, _ = make_system ~payload_rate:rate ~seed () in
    Desim.Sim.run_until sim ~time:50.0;
    Netsim.Tap.count tap
  in
  Alcotest.(check int) "10pps = 40pps on the wire" (count 10.0 119) (count 40.0 120)

let test_gateway_payload_conservation () =
  let sim, _, gw, src = make_system ~seed:121 () in
  Desim.Sim.run_until sim ~time:100.0;
  let offered = Netsim.Traffic_gen.generated src in
  Alcotest.(check int) "offered = sent + queued + dropped" offered
    (Padding.Gateway.payload_sent gw
    + Padding.Gateway.queue_length gw
    + Padding.Gateway.payload_dropped gw)

let test_gateway_dummy_fill () =
  let sim, _, gw, src = make_system ~payload_rate:10.0 ~seed:122 () in
  Desim.Sim.run_until sim ~time:100.0;
  (* 10k fires, ~1k payload: overhead ~ 0.9 *)
  close ~tol:0.03 "overhead" 0.9 (Padding.Gateway.overhead gw);
  Netsim.Traffic_gen.stop src;
  Alcotest.(check int) "fires = payload + dummy"
    (Padding.Gateway.fires gw)
    (Padding.Gateway.payload_sent gw + Padding.Gateway.dummy_sent gw)

let test_gateway_piat_near_period_without_jitter () =
  let sim, tap, _, _ = make_system ~seed:123 () in
  Desim.Sim.run_until sim ~time:20.0;
  let piats = Netsim.Tap.piats tap in
  Array.iter (fun x -> close ~tol:1e-9 "exact period" 0.01 x) piats

let test_gateway_fifo_payload_order () =
  (* Payload packets must exit in arrival order. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:124 in
  let out = ref [] in
  let gw =
    Padding.Gateway.create sim ~rng ~timer:(Padding.Timer.Constant 0.01)
      ~jitter:Padding.Jitter.none
      ~dest:(fun p ->
        if p.Netsim.Packet.kind = Netsim.Packet.Payload then
          out := p.Netsim.Packet.id :: !out)
      ()
  in
  let ids = ref [] in
  for _ = 1 to 20 do
    let p = Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500
        ~created:(Desim.Sim.now sim)
    in
    ids := p.Netsim.Packet.id :: !ids;
    Padding.Gateway.input gw p
  done;
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check (list int)) "FIFO order" (List.rev !ids) (List.rev !out)

let test_gateway_queue_limit () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:125 in
  let gw =
    Padding.Gateway.create sim ~rng ~timer:(Padding.Timer.Constant 0.01)
      ~jitter:Padding.Jitter.none ~queue_limit:5 ~dest:(fun _ -> ()) ()
  in
  for _ = 1 to 12 do
    Padding.Gateway.input gw
      (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500 ~created:0.0)
  done;
  Alcotest.(check int) "queue capped" 5 (Padding.Gateway.queue_length gw);
  Alcotest.(check int) "drops counted" 7 (Padding.Gateway.payload_dropped gw)

let test_gateway_overflow_then_drain () =
  (* Overflow, then let the timer drain the queue: survivors exit in FIFO
     order and every offered packet ends up sent or dropped. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:135 in
  let out = ref [] in
  let gw =
    Padding.Gateway.create sim ~rng ~timer:(Padding.Timer.Constant 0.01)
      ~jitter:Padding.Jitter.none ~queue_limit:8
      ~dest:(fun pkt ->
        if pkt.Netsim.Packet.kind = Netsim.Packet.Payload then
          out := pkt.Netsim.Packet.id :: !out)
      ()
  in
  let offered =
    List.init 20 (fun _ ->
        let pkt =
          Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500
            ~created:0.0
        in
        Padding.Gateway.input gw pkt;
        pkt.Netsim.Packet.id)
  in
  Alcotest.(check int) "overflow drops" 12 (Padding.Gateway.payload_dropped gw);
  Desim.Sim.run_until sim ~time:1.0;
  Padding.Gateway.stop gw;
  Alcotest.(check int) "queue drained" 0 (Padding.Gateway.queue_length gw);
  Alcotest.(check int) "conservation" 20
    (Padding.Gateway.payload_sent gw + Padding.Gateway.payload_dropped gw);
  (* The 8 survivors are exactly the first 8 offered, in order. *)
  let survivors = List.filteri (fun i _ -> i < 8) offered in
  Alcotest.(check (list int)) "FIFO survivors" survivors (List.rev !out)

let test_gateway_rejects_non_payload () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:126 in
  let gw =
    Padding.Gateway.create sim ~rng ~timer:(Padding.Timer.Constant 0.01)
      ~jitter:Padding.Jitter.none ~dest:(fun _ -> ()) ()
  in
  Alcotest.check_raises "cross rejected"
    (Invalid_argument "Gateway.input: only payload packets enter the sender gateway")
    (fun () ->
      Padding.Gateway.input gw
        (Netsim.Packet.make ~kind:Netsim.Packet.Cross ~size_bytes:500 ~created:0.0))

let test_gateway_stop () =
  let sim, tap, gw, _ = make_system ~seed:127 () in
  Desim.Sim.run_until sim ~time:1.0;
  Padding.Gateway.stop gw;
  let frozen = Netsim.Tap.count tap in
  Desim.Sim.run_until sim ~time:5.0;
  Alcotest.(check int) "no more output" frozen (Netsim.Tap.count tap)

let test_gateway_vit_piat_sigma () =
  let sigma_t = 2e-4 in
  let sim, tap, _, _ =
    make_system
      ~timer:(Padding.Timer.Normal { mean = 0.01; sigma = sigma_t })
      ~seed:128 ()
  in
  Desim.Sim.run_until sim ~time:200.0;
  let piats = Netsim.Tap.piats tap in
  close ~tol:0.05 "PIAT sigma = sigma_T" sigma_t (Stats.Descriptive.std piats);
  close ~tol:0.01 "PIAT mean = tau" 0.01 (Stats.Descriptive.mean piats)

let test_gateway_monotone_emissions () =
  (* Even with violent jitter, emissions never go backwards in time. *)
  let sim, tap, _, _ =
    make_system ~jitter:(Padding.Jitter.parametric ~mu:0.0 ~sigma:5e-3)
      ~seed:129 ()
  in
  Desim.Sim.run_until sim ~time:50.0;
  Array.iter
    (fun x -> if x < 0.0 then Alcotest.fail "negative PIAT")
    (Netsim.Tap.piats tap)

(* --- Receiver --- *)

let test_receiver_strips_dummies () =
  let sim = Desim.Sim.create () in
  let delivered = ref 0 in
  let recv = Padding.Receiver.create sim ~dest:(fun _ -> incr delivered) () in
  Padding.Receiver.port recv
    (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500 ~created:0.0);
  Padding.Receiver.port recv
    (Netsim.Packet.make ~kind:Netsim.Packet.Dummy ~size_bytes:500 ~created:0.0);
  Alcotest.(check int) "payload forwarded" 1 !delivered;
  Alcotest.(check int) "payload counted" 1 (Padding.Receiver.payload_received recv);
  Alcotest.(check int) "dummy counted" 1 (Padding.Receiver.dummy_received recv)

let test_receiver_latency_accounting () =
  let sim = Desim.Sim.create () in
  let recv = Padding.Receiver.create sim () in
  ignore
    (Desim.Sim.at sim ~time:3.0 (fun () ->
         Padding.Receiver.port recv
           (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:500
              ~created:1.0)));
  Desim.Sim.run_until sim ~time:4.0;
  close "latency" 2.0 (Padding.Receiver.mean_payload_latency recv);
  close "max latency" 2.0 (Padding.Receiver.max_payload_latency recv)

let test_receiver_rejects_cross () =
  let sim = Desim.Sim.create () in
  let recv = Padding.Receiver.create sim () in
  Alcotest.check_raises "cross"
    (Invalid_argument "Receiver.port: cross packet reached the receiver gateway")
    (fun () ->
      Padding.Receiver.port recv
        (Netsim.Packet.make ~kind:Netsim.Packet.Cross ~size_bytes:500 ~created:0.0))

(* --- Adaptive --- *)

let test_adaptive_saves_bandwidth_at_low_rate () =
  let run rate seed =
    let sim = Desim.Sim.create () in
    let rng = Prng.Rng.create ~seed in
    let gw =
      Padding.Adaptive.create sim ~rng:(Prng.Rng.split rng)
        ~jitter:Padding.Jitter.none ~dest:(fun _ -> ()) ()
    in
    let _src =
      Netsim.Traffic_gen.poisson sim ~rng:(Prng.Rng.split rng) ~rate_pps:rate
        ~size_bytes:500 ~kind:Netsim.Packet.Payload
        ~dest:(Padding.Adaptive.input gw) ()
    in
    Desim.Sim.run_until sim ~time:120.0;
    gw
  in
  let low = run 10.0 130 and high = run 40.0 131 in
  Alcotest.(check bool) "lower overhead than CIT's 0.9 at 10pps" true
    (Padding.Adaptive.overhead low < 0.8);
  Alcotest.(check bool) "rate-dependent overhead (the leak)" true
    (Padding.Adaptive.overhead low > Padding.Adaptive.overhead high +. 0.1);
  Alcotest.(check bool) "period stays in band" true
    (Padding.Adaptive.current_period low >= 0.01
    && Padding.Adaptive.current_period low <= 0.04)

let test_adaptive_delivers_payload () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:132 in
  let delivered = ref 0 in
  let gw =
    Padding.Adaptive.create sim ~rng:(Prng.Rng.split rng)
      ~jitter:Padding.Jitter.none
      ~dest:(fun p ->
        if p.Netsim.Packet.kind = Netsim.Packet.Payload then incr delivered)
      ()
  in
  let src =
    Netsim.Traffic_gen.poisson sim ~rng:(Prng.Rng.split rng) ~rate_pps:20.0
      ~size_bytes:500 ~kind:Netsim.Packet.Payload
      ~dest:(Padding.Adaptive.input gw) ()
  in
  Desim.Sim.run_until sim ~time:60.0;
  Netsim.Traffic_gen.stop src;
  Desim.Sim.run_until sim ~time:70.0;
  let offered = Netsim.Traffic_gen.generated src in
  Alcotest.(check bool) "almost all delivered" true
    (!delivered >= offered - 5 && !delivered <= offered)

let test_adaptive_invalid () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:133 in
  Alcotest.check_raises "band" (Invalid_argument "Adaptive.create: bad period band")
    (fun () ->
      ignore
        (Padding.Adaptive.create sim ~rng ~min_period:0.05 ~max_period:0.01
           ~jitter:Padding.Jitter.none ~dest:(fun _ -> ()) ()))

let suite =
  [
    Alcotest.test_case "timer means/sigmas" `Quick test_timer_means_and_sigmas;
    Alcotest.test_case "timer draw statistics" `Quick test_timer_draw_statistics;
    Alcotest.test_case "CIT draw exact" `Quick test_timer_cit_draw_exact;
    Alcotest.test_case "timer validation" `Quick test_timer_validation;
    Alcotest.test_case "is_cit" `Quick test_timer_is_cit;
    Alcotest.test_case "jitter none" `Quick test_jitter_none;
    Alcotest.test_case "jitter nonnegative" `Quick test_jitter_nonnegative;
    Alcotest.test_case "payload path variance" `Quick test_mechanistic_payload_path_adds_variance;
    Alcotest.test_case "irq blocking" `Quick test_mechanistic_irq_blocking_adds_delay;
    Alcotest.test_case "parametric moments" `Quick test_parametric_moments;
    Alcotest.test_case "jitter invalid" `Quick test_jitter_invalid;
    Alcotest.test_case "gateway constant output" `Quick test_gateway_constant_output_rate;
    Alcotest.test_case "wire rate independent of payload" `Quick test_gateway_output_rate_independent_of_payload;
    Alcotest.test_case "payload conservation" `Quick test_gateway_payload_conservation;
    Alcotest.test_case "dummy fill" `Quick test_gateway_dummy_fill;
    Alcotest.test_case "exact PIAT without jitter" `Quick test_gateway_piat_near_period_without_jitter;
    Alcotest.test_case "payload FIFO" `Quick test_gateway_fifo_payload_order;
    Alcotest.test_case "gateway queue limit" `Quick test_gateway_queue_limit;
    Alcotest.test_case "gateway overflow drain" `Quick
      test_gateway_overflow_then_drain;
    Alcotest.test_case "gateway rejects non-payload" `Quick test_gateway_rejects_non_payload;
    Alcotest.test_case "gateway stop" `Quick test_gateway_stop;
    Alcotest.test_case "VIT PIAT sigma" `Quick test_gateway_vit_piat_sigma;
    Alcotest.test_case "monotone emissions" `Quick test_gateway_monotone_emissions;
    Alcotest.test_case "receiver strips dummies" `Quick test_receiver_strips_dummies;
    Alcotest.test_case "receiver latency" `Quick test_receiver_latency_accounting;
    Alcotest.test_case "receiver rejects cross" `Quick test_receiver_rejects_cross;
    Alcotest.test_case "adaptive saves bandwidth" `Quick test_adaptive_saves_bandwidth_at_low_rate;
    Alcotest.test_case "adaptive delivers payload" `Quick test_adaptive_delivers_payload;
    Alcotest.test_case "adaptive invalid band" `Quick test_adaptive_invalid;
  ]
