(* Network simulator: link serialization & queueing, router diversion,
   taps, traffic generators, topology wiring, conservation laws. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let mk_packet ?(kind = Netsim.Packet.Payload) ?(size = 1000) sim =
  Netsim.Packet.make ~kind ~size_bytes:size ~created:(Desim.Sim.now sim)

(* --- Fvec --- *)

let test_fvec () =
  let v = Netsim.Fvec.create ~capacity:2 () in
  Alcotest.(check int) "empty" 0 (Netsim.Fvec.length v);
  for i = 1 to 100 do
    Netsim.Fvec.push v (float_of_int i)
  done;
  Alcotest.(check int) "grown" 100 (Netsim.Fvec.length v);
  close "get" 37.0 (Netsim.Fvec.get v 36);
  Alcotest.(check (option (float 0.0))) "last" (Some 100.0) (Netsim.Fvec.last v);
  Alcotest.(check int) "to_array" 100 (Array.length (Netsim.Fvec.to_array v));
  Alcotest.check_raises "bounds" (Invalid_argument "Fvec.get: index out of range")
    (fun () -> ignore (Netsim.Fvec.get v 100));
  Netsim.Fvec.clear v;
  Alcotest.(check int) "cleared" 0 (Netsim.Fvec.length v)

(* --- Packet --- *)

let test_packet_ids_unique () =
  let sim = Desim.Sim.create () in
  let a = mk_packet sim and b = mk_packet sim in
  Alcotest.(check bool) "distinct ids" true (a.Netsim.Packet.id <> b.Netsim.Packet.id)

let test_packet_kind_predicates () =
  let sim = Desim.Sim.create () in
  Alcotest.(check bool) "payload padded" true
    (Netsim.Packet.is_padded (mk_packet ~kind:Netsim.Packet.Payload sim));
  Alcotest.(check bool) "dummy padded" true
    (Netsim.Packet.is_padded (mk_packet ~kind:Netsim.Packet.Dummy sim));
  Alcotest.(check bool) "cross not padded" false
    (Netsim.Packet.is_padded (mk_packet ~kind:Netsim.Packet.Cross sim));
  Alcotest.(check string) "name" "dummy"
    (Netsim.Packet.kind_to_string Netsim.Packet.Dummy)

let test_packet_invalid_size () =
  Alcotest.check_raises "size" (Invalid_argument "Packet.make: size_bytes <= 0")
    (fun () ->
      ignore (Netsim.Packet.make ~kind:Netsim.Packet.Payload ~size_bytes:0 ~created:0.0))

(* --- Link --- *)

let test_link_serialization_delay () =
  let sim = Desim.Sim.create () in
  let arrivals = ref [] in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:8000.0
      ~dest:(fun _ -> arrivals := Desim.Sim.now sim :: !arrivals)
      ()
  in
  (* 1000 bytes at 8000 bps = 1 s of transmission. *)
  Netsim.Link.send link (mk_packet sim);
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check (list (float 1e-9))) "one packet after 1s" [ 1.0 ] !arrivals

let test_link_fifo_backlog () =
  let sim = Desim.Sim.create () in
  let arrivals = ref [] in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:8000.0
      ~dest:(fun _ -> arrivals := Desim.Sim.now sim :: !arrivals)
      ()
  in
  (* Two back-to-back packets: second waits for the first. *)
  Netsim.Link.send link (mk_packet sim);
  Netsim.Link.send link (mk_packet sim);
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check (list (float 1e-9))) "serialized" [ 2.0; 1.0 ] !arrivals;
  Alcotest.(check int) "sent count" 2 (Netsim.Link.sent link)

let test_link_propagation () =
  let sim = Desim.Sim.create () in
  let arrived = ref 0.0 in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:8000.0 ~propagation:0.5
      ~dest:(fun _ -> arrived := Desim.Sim.now sim)
      ()
  in
  Netsim.Link.send link (mk_packet sim);
  Desim.Sim.run_until sim ~time:10.0;
  close "tx + prop" 1.5 !arrived

let test_link_idle_resets () =
  let sim = Desim.Sim.create () in
  let arrivals = ref [] in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:8000.0
      ~dest:(fun _ -> arrivals := Desim.Sim.now sim :: !arrivals)
      ()
  in
  Netsim.Link.send link (mk_packet sim);
  Desim.Sim.run_until sim ~time:5.0;
  Netsim.Link.send link (mk_packet sim);
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check (list (float 1e-9))) "no carryover backlog" [ 6.0; 1.0 ] !arrivals

let test_link_queue_limit_drops () =
  let sim = Desim.Sim.create () in
  let delivered = ref 0 in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:8000.0 ~queue_limit:2
      ~dest:(fun _ -> incr delivered)
      ()
  in
  for _ = 1 to 5 do
    Netsim.Link.send link (mk_packet sim)
  done;
  Alcotest.(check int) "drops counted" 3 (Netsim.Link.dropped link);
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check int) "survivors delivered" 2 !delivered

let test_link_conservation () =
  (* sent + dropped + in-flight = offered, and after draining in-flight = 0 *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:101 in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:1e6 ~queue_limit:10
      ~dest:(fun _ -> ())
      ()
  in
  let offered = 500 in
  for _ = 1 to offered do
    Desim.Sim.run_until sim
      ~time:(Desim.Sim.now sim +. Prng.Sampler.exponential rng ~rate:100.0);
    Netsim.Link.send link (mk_packet ~size:500 sim)
  done;
  Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 10.0);
  Alcotest.(check int) "drained" 0 (Netsim.Link.queue_depth link);
  Alcotest.(check int) "conservation" offered
    (Netsim.Link.sent link + Netsim.Link.dropped link)

let test_link_sustained_overload_conserves () =
  (* Offer ~4x the line rate in bursts for a while: at every instant
     offered = sent + dropped + queued, and the backlog drains to zero
     once the bursts stop. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:107 in
  let delivered = ref 0 in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:400_000.0 ~queue_limit:16
      ~dest:(fun _ -> incr delivered)
      ()
  in
  let offered = ref 0 in
  for _ = 1 to 2_000 do
    Desim.Sim.run_until sim
      ~time:(Desim.Sim.now sim +. Prng.Sampler.exponential rng ~rate:400.0);
    let burst = 1 + Prng.Rng.int rng ~bound:3 in
    for _ = 1 to burst do
      incr offered;
      Netsim.Link.send link (mk_packet ~size:500 sim)
    done;
    Alcotest.(check int) "conserved mid-overload" !offered
      (Netsim.Link.sent link + Netsim.Link.dropped link
     + Netsim.Link.queue_depth link)
  done;
  Alcotest.(check bool) "overload actually dropped" true
    (Netsim.Link.dropped link > 0);
  Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 5.0);
  Alcotest.(check int) "backlog drains" 0 (Netsim.Link.queue_depth link);
  Alcotest.(check int) "all survivors delivered" (Netsim.Link.sent link)
    !delivered;
  Alcotest.(check int) "final conservation" !offered
    (Netsim.Link.sent link + Netsim.Link.dropped link)

let test_link_utilization () =
  let sim = Desim.Sim.create () in
  let link = Netsim.Link.create sim ~bandwidth_bps:8000.0 ~dest:(fun _ -> ()) () in
  Netsim.Link.send link (mk_packet sim);
  (* 1s busy out of 4s elapsed -> 25% *)
  Desim.Sim.run_until sim ~time:4.0;
  close ~tol:0.01 "utilization" 0.25 (Netsim.Link.utilization link)

let test_link_invalid () =
  let sim = Desim.Sim.create () in
  Alcotest.check_raises "bandwidth" (Invalid_argument "Link.create: bandwidth <= 0")
    (fun () ->
      ignore (Netsim.Link.create sim ~bandwidth_bps:0.0 ~dest:(fun _ -> ()) ()))

(* --- Router --- *)

let test_router_diverts_cross () =
  let sim = Desim.Sim.create () in
  let forwarded = ref [] in
  let router =
    Netsim.Router.create sim ~bandwidth_bps:1e9
      ~dest:(fun p -> forwarded := p.Netsim.Packet.kind :: !forwarded)
      ()
  in
  Netsim.Router.port router (mk_packet ~kind:Netsim.Packet.Payload sim);
  Netsim.Router.port router (mk_packet ~kind:Netsim.Packet.Cross sim);
  Netsim.Router.port router (mk_packet ~kind:Netsim.Packet.Dummy sim);
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "padded forwarded" 2 (Netsim.Router.forwarded router);
  Alcotest.(check int) "cross diverted" 1 (Netsim.Router.diverted router);
  Alcotest.(check bool) "no cross in output" true
    (List.for_all (fun k -> k <> Netsim.Packet.Cross) !forwarded)

let test_router_keep_cross_when_disabled () =
  let sim = Desim.Sim.create () in
  let kinds = ref [] in
  let router =
    Netsim.Router.create sim ~bandwidth_bps:1e9 ~divert_cross:false
      ~dest:(fun p -> kinds := p.Netsim.Packet.kind :: !kinds)
      ()
  in
  Netsim.Router.port router (mk_packet ~kind:Netsim.Packet.Cross sim);
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "cross forwarded" 1 (List.length !kinds)

let test_router_cross_delays_padded () =
  (* The core mechanism of Fig. 6: cross traffic in front of a padded
     packet delays it by the cross packet's transmission time. *)
  let sim = Desim.Sim.create () in
  let arrival = ref 0.0 in
  let router =
    Netsim.Router.create sim ~bandwidth_bps:8000.0
      ~dest:(fun _ -> arrival := Desim.Sim.now sim)
      ()
  in
  Netsim.Router.port router (mk_packet ~kind:Netsim.Packet.Cross sim);
  Netsim.Router.port router (mk_packet ~kind:Netsim.Packet.Payload sim);
  Desim.Sim.run_until sim ~time:10.0;
  close "padded waits behind cross" 2.0 !arrival

(* --- Tap --- *)

let test_tap_records_padded_only () =
  let sim = Desim.Sim.create () in
  let passed = ref 0 in
  let tap = Netsim.Tap.create sim ~dest:(fun _ -> incr passed) () in
  Netsim.Tap.port tap (mk_packet ~kind:Netsim.Packet.Payload sim);
  Netsim.Tap.port tap (mk_packet ~kind:Netsim.Packet.Cross sim);
  Netsim.Tap.port tap (mk_packet ~kind:Netsim.Packet.Dummy sim);
  Alcotest.(check int) "records padded" 2 (Netsim.Tap.count tap);
  Alcotest.(check int) "forwards everything" 3 !passed

let test_tap_piats () =
  let sim = Desim.Sim.create () in
  let tap = Netsim.Tap.create sim ~dest:(fun _ -> ()) () in
  List.iter
    (fun t ->
      ignore
        (Desim.Sim.at sim ~time:t (fun () -> Netsim.Tap.port tap (mk_packet sim))))
    [ 1.0; 2.5; 3.0 ];
  Desim.Sim.run_until sim ~time:5.0;
  Alcotest.(check (array (float 1e-9))) "diffs" [| 1.5; 0.5 |] (Netsim.Tap.piats tap);
  Netsim.Tap.clear tap;
  Alcotest.(check int) "cleared" 0 (Netsim.Tap.count tap);
  Alcotest.(check (array (float 0.0))) "piats empty after clear" [||]
    (Netsim.Tap.piats tap)

(* --- Traffic generators --- *)

let test_cbr_rate () =
  let sim = Desim.Sim.create () in
  let count = ref 0 in
  let gen =
    Netsim.Traffic_gen.cbr sim ~rate_pps:10.0 ~size_bytes:100
      ~kind:Netsim.Packet.Payload ~dest:(fun _ -> incr count) ()
  in
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check int) "100 packets in 10s" 100 !count;
  Alcotest.(check int) "generated counter" 100 (Netsim.Traffic_gen.generated gen);
  Netsim.Traffic_gen.stop gen;
  Desim.Sim.run_until sim ~time:20.0;
  Alcotest.(check int) "stopped" 100 !count

let test_poisson_rate_and_iid () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:102 in
  let times = ref [] in
  let _gen =
    Netsim.Traffic_gen.poisson sim ~rng ~rate_pps:50.0 ~size_bytes:100
      ~kind:Netsim.Packet.Cross
      ~dest:(fun _ -> times := Desim.Sim.now sim :: !times)
      ()
  in
  Desim.Sim.run_until sim ~time:100.0;
  let n = List.length !times in
  Alcotest.(check bool) "rate ~ 50pps" true (n > 4500 && n < 5500);
  (* Interarrivals should pass a KS test against Exp(50). *)
  let ts = Array.of_list (List.rev !times) in
  let piats = Array.init (Array.length ts - 1) (fun i -> ts.(i + 1) -. ts.(i)) in
  let cdf x = if x <= 0.0 then 0.0 else 1.0 -. exp (-50.0 *. x) in
  let res = Stats.Hypothesis.ks_test piats ~cdf in
  Alcotest.(check bool) "exponential interarrivals" true
    (res.Stats.Hypothesis.p_value > 0.001)

let test_on_off_average_rate () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:103 in
  let count = ref 0 in
  let _gen =
    Netsim.Traffic_gen.on_off sim ~rng ~rate_on_pps:100.0 ~mean_on:0.5
      ~mean_off:0.5 ~size_bytes:100 ~kind:Netsim.Packet.Cross
      ~dest:(fun _ -> incr count)
      ()
  in
  Desim.Sim.run_until sim ~time:200.0;
  (* duty 0.5 -> ~50 pps average *)
  let rate = float_of_int !count /. 200.0 in
  Alcotest.(check bool) "average rate ~ 50" true (rate > 40.0 && rate < 60.0)

let test_on_off_burstier_than_poisson () =
  let piat_cv source_seed on_off =
    let sim = Desim.Sim.create () in
    let rng = Prng.Rng.create ~seed:source_seed in
    let times = Netsim.Fvec.create () in
    let dest _ = Netsim.Fvec.push times (Desim.Sim.now sim) in
    let _gen =
      if on_off then
        Netsim.Traffic_gen.on_off sim ~rng ~rate_on_pps:200.0 ~mean_on:0.2
          ~mean_off:0.8 ~size_bytes:100 ~kind:Netsim.Packet.Cross ~dest ()
      else
        Netsim.Traffic_gen.poisson sim ~rng ~rate_pps:40.0 ~size_bytes:100
          ~kind:Netsim.Packet.Cross ~dest ()
    in
    Desim.Sim.run_until sim ~time:300.0;
    let ts = Netsim.Fvec.to_array times in
    let piats = Array.init (Array.length ts - 1) (fun i -> ts.(i + 1) -. ts.(i)) in
    Stats.Descriptive.std piats /. Stats.Descriptive.mean piats
  in
  let cv_poisson = piat_cv 104 false and cv_onoff = piat_cv 105 true in
  Alcotest.(check bool) "on/off has higher CV" true (cv_onoff > cv_poisson *. 1.2)

let test_modulated_poisson_tracks_rate () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:106 in
  let early = ref 0 and late = ref 0 in
  let _gen =
    Netsim.Traffic_gen.modulated_poisson sim ~rng
      ~rate_fn:(fun t -> if t < 100.0 then 10.0 else 100.0)
      ~rate_max:100.0 ~size_bytes:100 ~kind:Netsim.Packet.Cross
      ~dest:(fun _ ->
        if Desim.Sim.now sim < 100.0 then incr early else incr late)
      ()
  in
  Desim.Sim.run_until sim ~time:200.0;
  Alcotest.(check bool) "early ~ 1000" true (!early > 700 && !early < 1300);
  Alcotest.(check bool) "late ~ 10000" true (!late > 9000 && !late < 11000)

(* --- Topology --- *)

let lab_hop ?(cross_rate = 0.0) () =
  {
    Netsim.Topology.bandwidth_bps = 1e8;
    propagation = 0.0;
    queue_limit = None;
    cross =
      (if cross_rate > 0.0 then
         Some
           {
             Netsim.Topology.rate_pps = cross_rate;
             size_bytes = 500;
             burst = `Poisson;
           }
       else None);
  }

let test_chain_delivery_and_tap () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:107 in
  let topo =
    Netsim.Topology.chain sim ~rng
      ~hops:[| lab_hop (); lab_hop () |]
      ~tap_position:1 ()
  in
  for _ = 1 to 10 do
    topo.Netsim.Topology.entry (mk_packet ~size:500 sim);
    Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 0.01)
  done;
  Desim.Sim.run_until sim ~time:(Desim.Sim.now sim +. 1.0);
  Alcotest.(check int) "tap saw all" 10 (Netsim.Tap.count topo.Netsim.Topology.tap);
  Alcotest.(check int) "sink got all" 10 (topo.Netsim.Topology.sink_count ())

let test_chain_cross_does_not_reach_sink () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:108 in
  let cross_seen_at_dest = ref 0 in
  let topo =
    Netsim.Topology.chain sim ~rng
      ~hops:[| lab_hop ~cross_rate:1000.0 () |]
      ~tap_position:1
      ~dest:(fun p ->
        if p.Netsim.Packet.kind = Netsim.Packet.Cross then incr cross_seen_at_dest)
      ()
  in
  topo.Netsim.Topology.entry (mk_packet ~size:500 sim);
  Desim.Sim.run_until sim ~time:2.0;
  Alcotest.(check int) "cross diverted before dest" 0 !cross_seen_at_dest;
  Alcotest.(check bool) "cross flowed" true
    (List.exists
       (fun g -> Netsim.Traffic_gen.generated g > 0)
       topo.Netsim.Topology.cross_sources);
  Netsim.Topology.stop_cross topo

let test_chain_tap_positions_valid () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:109 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology.chain: tap_position out of range") (fun () ->
      ignore
        (Netsim.Topology.chain sim ~rng ~hops:[| lab_hop () |] ~tap_position:2 ()));
  (* position 0 and hops=[||] is the gateway-tap degenerate chain *)
  let topo = Netsim.Topology.chain sim ~rng ~hops:[||] ~tap_position:0 () in
  topo.Netsim.Topology.entry (mk_packet sim);
  Desim.Sim.run_until sim ~time:1.0;
  Alcotest.(check int) "tap at entry" 1 (Netsim.Tap.count topo.Netsim.Topology.tap)

let suite =
  [
    Alcotest.test_case "fvec" `Quick test_fvec;
    Alcotest.test_case "packet ids unique" `Quick test_packet_ids_unique;
    Alcotest.test_case "packet kinds" `Quick test_packet_kind_predicates;
    Alcotest.test_case "packet invalid size" `Quick test_packet_invalid_size;
    Alcotest.test_case "link serialization" `Quick test_link_serialization_delay;
    Alcotest.test_case "link FIFO backlog" `Quick test_link_fifo_backlog;
    Alcotest.test_case "link propagation" `Quick test_link_propagation;
    Alcotest.test_case "link idles" `Quick test_link_idle_resets;
    Alcotest.test_case "link queue limit" `Quick test_link_queue_limit_drops;
    Alcotest.test_case "link conservation" `Quick test_link_conservation;
    Alcotest.test_case "link sustained overload" `Quick
      test_link_sustained_overload_conserves;
    Alcotest.test_case "link utilization" `Quick test_link_utilization;
    Alcotest.test_case "link invalid" `Quick test_link_invalid;
    Alcotest.test_case "router diverts cross" `Quick test_router_diverts_cross;
    Alcotest.test_case "router keeps cross if asked" `Quick test_router_keep_cross_when_disabled;
    Alcotest.test_case "cross delays padded" `Quick test_router_cross_delays_padded;
    Alcotest.test_case "tap records padded only" `Quick test_tap_records_padded_only;
    Alcotest.test_case "tap piats" `Quick test_tap_piats;
    Alcotest.test_case "cbr rate" `Quick test_cbr_rate;
    Alcotest.test_case "poisson rate + iid" `Quick test_poisson_rate_and_iid;
    Alcotest.test_case "on/off average rate" `Quick test_on_off_average_rate;
    Alcotest.test_case "on/off burstier" `Quick test_on_off_burstier_than_poisson;
    Alcotest.test_case "modulated poisson" `Quick test_modulated_poisson_tracks_rate;
    Alcotest.test_case "chain delivery + tap" `Quick test_chain_delivery_and_tap;
    Alcotest.test_case "chain diverts cross" `Quick test_chain_cross_does_not_reach_sink;
    Alcotest.test_case "chain tap positions" `Quick test_chain_tap_positions_valid;
  ]
