(* Token-bucket shaper: spacing, burst absorption, conservation. *)

let mk sim = Netsim.Packet.make ~kind:Netsim.Packet.Cross ~size_bytes:100
    ~created:(Desim.Sim.now sim)

let test_spacing_pure () =
  (* burst 1: back-to-back input leaves at exactly 1/rate spacing. *)
  let sim = Desim.Sim.create () in
  let times = ref [] in
  let sh =
    Netsim.Shaper.create sim ~rate_pps:10.0
      ~dest:(fun _ -> times := Desim.Sim.now sim :: !times)
      ()
  in
  for _ = 1 to 4 do
    Netsim.Shaper.send sh (mk sim)
  done;
  Desim.Sim.run_until sim ~time:10.0;
  (* First leaves immediately (full bucket), the rest each 0.1 s apart. *)
  Alcotest.(check (list (float 1e-9))) "spaced departures"
    [ 0.3; 0.2; 0.1; 0.0 ] !times;
  Alcotest.(check int) "all forwarded" 4 (Netsim.Shaper.forwarded sh)

let test_burst_absorption () =
  let sim = Desim.Sim.create () in
  let immediate = ref 0 in
  let sh =
    Netsim.Shaper.create sim ~rate_pps:1.0 ~burst:3
      ~dest:(fun _ -> if Desim.Sim.now sim = 0.0 then incr immediate)
      ()
  in
  for _ = 1 to 5 do
    Netsim.Shaper.send sh (mk sim)
  done;
  Desim.Sim.run_until sim ~time:0.0;
  Alcotest.(check int) "burst-size passes instantly" 3 !immediate;
  Alcotest.(check int) "rest queued" 2 (Netsim.Shaper.queue_depth sh);
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check int) "drained eventually" 5 (Netsim.Shaper.forwarded sh);
  Alcotest.(check int) "queue empty" 0 (Netsim.Shaper.queue_depth sh)

let test_long_run_rate () =
  (* Overloaded shaper emits at exactly its configured rate. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:241 in
  let count = ref 0 in
  let sh =
    Netsim.Shaper.create sim ~rate_pps:50.0 ~burst:5
      ~dest:(fun _ -> incr count) ()
  in
  let _src =
    Netsim.Traffic_gen.poisson sim ~rng ~rate_pps:200.0 ~size_bytes:100
      ~kind:Netsim.Packet.Cross ~dest:(Netsim.Shaper.port sh) ()
  in
  Desim.Sim.run_until sim ~time:100.0;
  let rate = float_of_int !count /. 100.0 in
  Alcotest.(check bool)
    (Printf.sprintf "output rate %.1f ~ 50" rate)
    true
    (rate > 48.0 && rate < 52.0)

let test_idle_refill_capped () =
  let sim = Desim.Sim.create () in
  let immediate = ref 0 in
  let sh =
    Netsim.Shaper.create sim ~rate_pps:1.0 ~burst:2
      ~dest:(fun _ -> incr immediate) ()
  in
  (* Long idle: bucket caps at burst, not at elapsed * rate. *)
  Desim.Sim.run_until sim ~time:100.0;
  for _ = 1 to 4 do
    Netsim.Shaper.send sh (mk sim)
  done;
  Desim.Sim.run_until sim ~time:100.0;
  Alcotest.(check int) "only burst passes" 2 !immediate

let test_invalid () =
  let sim = Desim.Sim.create () in
  Alcotest.check_raises "rate" (Invalid_argument "Shaper.create: rate <= 0")
    (fun () ->
      ignore (Netsim.Shaper.create sim ~rate_pps:0.0 ~dest:(fun _ -> ()) ()))

let suite =
  [
    Alcotest.test_case "pure spacing" `Quick test_spacing_pure;
    Alcotest.test_case "burst absorption" `Quick test_burst_absorption;
    Alcotest.test_case "long-run rate" `Quick test_long_run_rate;
    Alcotest.test_case "idle refill capped" `Quick test_idle_refill_capped;
    Alcotest.test_case "invalid params" `Quick test_invalid;
  ]
