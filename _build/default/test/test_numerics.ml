(* Quadrature, root finding, and hypothesis tests. *)

let close ?(tol = 1e-8) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Integrate --- *)

let test_simpson_polynomial () =
  (* Simpson is exact on cubics. *)
  close "x^3 on [0,2]" 4.0
    (Stats.Integrate.simpson (fun x -> x *. x *. x) ~lo:0.0 ~hi:2.0)

let test_simpson_transcendental () =
  close "sin on [0,pi]" 2.0 (Stats.Integrate.simpson sin ~lo:0.0 ~hi:Float.pi);
  close "e^x on [0,1]" (Float.exp 1.0 -. 1.0)
    (Stats.Integrate.simpson exp ~lo:0.0 ~hi:1.0)

let test_simpson_gaussian_mass () =
  close ~tol:1e-8 "normal pdf over 8 sigma" 1.0
    (Stats.Integrate.simpson
       (Stats.Special.normal_pdf ~mu:0.0 ~sigma:1.0)
       ~lo:(-8.0) ~hi:8.0)

let test_simpson_reversed_limits () =
  close "sign flip" (-2.0) (Stats.Integrate.simpson sin ~lo:Float.pi ~hi:0.0)

let test_simpson_empty_interval () =
  close "zero width" 0.0 (Stats.Integrate.simpson exp ~lo:1.0 ~hi:1.0)

let test_trapezoid () =
  close ~tol:1e-4 "trapezoid sin" 2.0
    (Stats.Integrate.trapezoid sin ~lo:0.0 ~hi:Float.pi ~n:1000);
  Alcotest.check_raises "n < 1" (Invalid_argument "Integrate.trapezoid: n < 1")
    (fun () -> ignore (Stats.Integrate.trapezoid sin ~lo:0.0 ~hi:1.0 ~n:0))

(* --- Rootfind --- *)

let test_bisect_sqrt2 () =
  close ~tol:1e-9 "sqrt 2"
    (sqrt 2.0)
    (Stats.Rootfind.bisect (fun x -> (x *. x) -. 2.0) ~lo:0.0 ~hi:2.0)

let test_bisect_endpoint_root () =
  close "root at endpoint" 1.0
    (Stats.Rootfind.bisect (fun x -> x -. 1.0) ~lo:1.0 ~hi:3.0)

let test_bisect_no_bracket () =
  Alcotest.check_raises "same sign"
    (Invalid_argument "Rootfind.bisect: no sign change on bracket") (fun () ->
      ignore (Stats.Rootfind.bisect (fun x -> (x *. x) +. 1.0) ~lo:0.0 ~hi:1.0))

let test_brent_transcendental () =
  (* root of cos x - x ~ 0.7390851332151607 *)
  close ~tol:1e-10 "dottie number" 0.7390851332151607
    (Stats.Rootfind.brent (fun x -> cos x -. x) ~lo:0.0 ~hi:1.0)

let test_brent_matches_bisect () =
  let f x = exp x -. 3.0 in
  close ~tol:1e-9 "agree"
    (Stats.Rootfind.bisect f ~lo:0.0 ~hi:2.0)
    (Stats.Rootfind.brent f ~lo:0.0 ~hi:2.0)

let test_find_bracket () =
  match Stats.Rootfind.find_bracket (fun x -> x -. 5.0) ~center:0.0 ~step:1.0 () with
  | Some (lo, hi) ->
      Alcotest.(check bool) "brackets the root" true (lo <= 5.0 && 5.0 <= hi)
  | None -> Alcotest.fail "no bracket found"

let test_find_bracket_none () =
  match
    Stats.Rootfind.find_bracket
      (fun x -> (x *. x) +. 1.0)
      ~center:0.0 ~step:1.0 ~max_expand:5 ()
  with
  | None -> ()
  | Some _ -> Alcotest.fail "found a bracket for a rootless function"

(* --- Hypothesis --- *)

let test_ks_accepts_true_null () =
  let rng = Prng.Rng.create ~seed:81 in
  let xs = Array.init 2000 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let res =
    Stats.Hypothesis.ks_test xs ~cdf:(Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0)
  in
  Alcotest.(check bool) "p not tiny under H0" true
    (res.Stats.Hypothesis.p_value > 0.005)

let test_ks_rejects_wrong_null () =
  let rng = Prng.Rng.create ~seed:82 in
  let xs = Array.init 2000 (fun _ -> Prng.Sampler.exponential rng ~rate:1.0) in
  let res =
    Stats.Hypothesis.ks_test xs ~cdf:(Stats.Special.normal_cdf ~mu:1.0 ~sigma:1.0)
  in
  Alcotest.(check bool) "p tiny under wrong H0" true
    (res.Stats.Hypothesis.p_value < 1e-6)

let test_kolmogorov_sf_values () =
  (* Q(0.828) ~ 0.50 is the median of the Kolmogorov law *)
  close ~tol:0.01 "median" 0.5 (Stats.Hypothesis.kolmogorov_sf 0.8276);
  close "Q(0) = 1" 1.0 (Stats.Hypothesis.kolmogorov_sf 0.0);
  Alcotest.(check bool) "Q decreasing" true
    (Stats.Hypothesis.kolmogorov_sf 1.5 < Stats.Hypothesis.kolmogorov_sf 0.5)

let test_jarque_bera_normal_vs_exponential () =
  let rng = Prng.Rng.create ~seed:83 in
  let normal = Array.init 3000 (fun _ -> Prng.Sampler.normal rng ~mu:0.0 ~sigma:1.0) in
  let expo = Array.init 3000 (fun _ -> Prng.Sampler.exponential rng ~rate:1.0) in
  let jn = Stats.Hypothesis.jarque_bera normal in
  let je = Stats.Hypothesis.jarque_bera expo in
  Alcotest.(check bool) "normal passes" true (jn.Stats.Hypothesis.p_value > 0.005);
  Alcotest.(check bool) "exponential fails" true
    (je.Stats.Hypothesis.p_value < 1e-10)

let test_jarque_bera_small_sample_raises () =
  Alcotest.check_raises "n < 8"
    (Invalid_argument "Hypothesis.jarque_bera: need n >= 8") (fun () ->
      ignore (Stats.Hypothesis.jarque_bera [| 1.0; 2.0; 3.0 |]))

let test_chi_square_gof_exact_fit () =
  let res =
    Stats.Hypothesis.chi_square_gof ~observed:[| 10; 10; 10 |]
      ~expected:[| 10.0; 10.0; 10.0 |]
  in
  close "stat 0" 0.0 res.Stats.Hypothesis.statistic;
  close "p 1" 1.0 res.Stats.Hypothesis.p_value

let test_chi_square_gof_bad_fit () =
  let res =
    Stats.Hypothesis.chi_square_gof ~observed:[| 100; 0; 0 |]
      ~expected:[| 33.3; 33.3; 33.4 |]
  in
  Alcotest.(check bool) "p tiny" true (res.Stats.Hypothesis.p_value < 1e-10)

let test_chi_square_gof_invalid () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Hypothesis.chi_square_gof: length mismatch") (fun () ->
      ignore
        (Stats.Hypothesis.chi_square_gof ~observed:[| 1 |] ~expected:[| 1.0; 2.0 |]))

let prop_simpson_linearity =
  QCheck.Test.make ~name:"simpson linear in integrand" ~count:60
    QCheck.(pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let i1 = Stats.Integrate.simpson (fun x -> 2.0 *. sin x) ~lo ~hi in
      let i2 = Stats.Integrate.simpson sin ~lo ~hi in
      Float.abs (i1 -. (2.0 *. i2)) < 1e-7)

let suite =
  [
    Alcotest.test_case "simpson exact on cubic" `Quick test_simpson_polynomial;
    Alcotest.test_case "simpson transcendental" `Quick test_simpson_transcendental;
    Alcotest.test_case "simpson gaussian mass" `Quick test_simpson_gaussian_mass;
    Alcotest.test_case "simpson reversed limits" `Quick test_simpson_reversed_limits;
    Alcotest.test_case "simpson empty interval" `Quick test_simpson_empty_interval;
    Alcotest.test_case "trapezoid" `Quick test_trapezoid;
    Alcotest.test_case "bisect sqrt2" `Quick test_bisect_sqrt2;
    Alcotest.test_case "bisect endpoint root" `Quick test_bisect_endpoint_root;
    Alcotest.test_case "bisect needs bracket" `Quick test_bisect_no_bracket;
    Alcotest.test_case "brent dottie" `Quick test_brent_transcendental;
    Alcotest.test_case "brent = bisect" `Quick test_brent_matches_bisect;
    Alcotest.test_case "find_bracket" `Quick test_find_bracket;
    Alcotest.test_case "find_bracket none" `Quick test_find_bracket_none;
    Alcotest.test_case "KS accepts H0" `Quick test_ks_accepts_true_null;
    Alcotest.test_case "KS rejects wrong H0" `Quick test_ks_rejects_wrong_null;
    Alcotest.test_case "kolmogorov SF" `Quick test_kolmogorov_sf_values;
    Alcotest.test_case "JB normal vs exponential" `Quick test_jarque_bera_normal_vs_exponential;
    Alcotest.test_case "JB small sample" `Quick test_jarque_bera_small_sample_raises;
    Alcotest.test_case "chi2 GoF exact" `Quick test_chi_square_gof_exact_fit;
    Alcotest.test_case "chi2 GoF bad" `Quick test_chi_square_gof_bad_fit;
    Alcotest.test_case "chi2 GoF invalid" `Quick test_chi_square_gof_invalid;
    QCheck_alcotest.to_alcotest prop_simpson_linearity;
  ]
