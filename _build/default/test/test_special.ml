(* Special functions against reference values (Abramowitz & Stegun /
   scipy-computed constants) and identities. *)

let close ?(tol = 1e-6) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_erf_reference () =
  close "erf(0)" 0.0 (Stats.Special.erf 0.0);
  close "erf(0.5)" 0.5204998778 (Stats.Special.erf 0.5);
  close "erf(1)" 0.8427007929 (Stats.Special.erf 1.0);
  close "erf(2)" 0.9953222650 (Stats.Special.erf 2.0);
  close "erf(-1)" (-0.8427007929) (Stats.Special.erf (-1.0))

let test_erfc_identity () =
  List.iter
    (fun x ->
      close "erf + erfc = 1"
        1.0
        (Stats.Special.erf x +. Stats.Special.erfc x))
    [ -3.0; -0.7; 0.0; 0.4; 1.3; 2.8; 5.0 ]

let test_erfc_symmetry () =
  List.iter
    (fun x ->
      close "erfc(-x) = 2 - erfc(x)" (2.0 -. Stats.Special.erfc x)
        (Stats.Special.erfc (-.x)))
    [ 0.3; 1.0; 2.5 ]

let test_erfc_tail () =
  (* erfc(3) = 2.20904970e-05 *)
  close ~tol:1e-4 "erfc(3)" 2.209049699858544e-05 (Stats.Special.erfc 3.0)

let test_log_gamma_reference () =
  close "lgamma(1)" 0.0 (Stats.Special.log_gamma 1.0);
  close "lgamma(2)" 0.0 (Stats.Special.log_gamma 2.0);
  close "lgamma(5) = ln 24" (log 24.0) (Stats.Special.log_gamma 5.0);
  close "lgamma(0.5) = ln sqrt(pi)" (0.5 *. log Float.pi)
    (Stats.Special.log_gamma 0.5);
  (* Stirling with first correction term: (10.3-0.5)ln(10.3) - 10.3
     + 0.5 ln(2 pi) + 1/(12*10.3) = 13.48203678... *)
  close "lgamma(10.3)" 13.482036786 (Stats.Special.log_gamma 10.3)

let test_log_gamma_recurrence () =
  (* Gamma(x+1) = x Gamma(x) *)
  List.iter
    (fun x ->
      close "recurrence"
        (Stats.Special.log_gamma x +. log x)
        (Stats.Special.log_gamma (x +. 1.0)))
    [ 0.3; 1.7; 4.2; 11.5 ]

let test_log_gamma_invalid () =
  Alcotest.check_raises "x <= 0" (Invalid_argument "Special.log_gamma: x <= 0")
    (fun () -> ignore (Stats.Special.log_gamma 0.0))

let test_gamma_p_q_complement () =
  List.iter
    (fun (a, x) ->
      close "P + Q = 1" 1.0
        (Stats.Special.gamma_p ~a ~x +. Stats.Special.gamma_q ~a ~x))
    [ (0.5, 0.2); (1.0, 1.0); (3.0, 2.0); (10.0, 15.0); (50.0, 40.0) ]

let test_gamma_p_exponential_case () =
  (* P(1, x) = 1 - e^-x *)
  List.iter
    (fun x -> close "P(1,x)" (1.0 -. exp (-.x)) (Stats.Special.gamma_p ~a:1.0 ~x))
    [ 0.1; 0.5; 1.0; 3.0; 8.0 ]

let test_gamma_p_chi2_reference () =
  (* chi2 CDF with k=2 dof at x=2: P(1,1) = 1 - e^-1 *)
  close "chi2(2) cdf" (1.0 -. exp (-1.0)) (Stats.Special.gamma_p ~a:1.0 ~x:1.0);
  (* chi2(1) at x=1: erf(1/sqrt2) *)
  close "chi2(1) cdf at 1"
    (Stats.Special.erf (1.0 /. sqrt 2.0))
    (Stats.Special.gamma_p ~a:0.5 ~x:0.5)

let test_gamma_p_bounds () =
  Alcotest.(check (float 0.0)) "P(a,0)=0" 0.0 (Stats.Special.gamma_p ~a:2.0 ~x:0.0);
  Alcotest.(check bool) "monotone" true
    (Stats.Special.gamma_p ~a:2.0 ~x:1.0 < Stats.Special.gamma_p ~a:2.0 ~x:2.0)

let test_normal_pdf_reference () =
  close "phi(0)" 0.3989422804 (Stats.Special.normal_pdf ~mu:0.0 ~sigma:1.0 0.0);
  close "phi(1)" 0.2419707245 (Stats.Special.normal_pdf ~mu:0.0 ~sigma:1.0 1.0);
  close "scaled" (0.3989422804 /. 2.0)
    (Stats.Special.normal_pdf ~mu:3.0 ~sigma:2.0 3.0)

let test_normal_cdf_reference () =
  close "Phi(0)" 0.5 (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 0.0);
  close "Phi(1)" 0.8413447461 (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 1.0);
  close "Phi(-1.96)" 0.0249978951 (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 (-1.96));
  close "Phi(1.644854)" 0.95 (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 1.6448536269514722)

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      let x = Stats.Special.normal_quantile ~mu:0.0 ~sigma:1.0 p in
      close ~tol:1e-9 "cdf(quantile(p)) = p" p
        (Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0 x))
    [ 1e-6; 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 -. 1e-6 ]

let test_normal_quantile_reference () =
  close "z(0.975)" 1.959963985 (Stats.Special.normal_quantile ~mu:0.0 ~sigma:1.0 0.975);
  close "median with location/scale" 7.0
    (Stats.Special.normal_quantile ~mu:7.0 ~sigma:3.0 0.5)

let test_normal_quantile_invalid () =
  Alcotest.check_raises "p=0"
    (Invalid_argument "Special.normal_quantile: p out of (0,1)") (fun () ->
      ignore (Stats.Special.normal_quantile ~mu:0.0 ~sigma:1.0 0.0))

let test_log_normal_pdf_matches () =
  List.iter
    (fun x ->
      close "log pdf consistent"
        (log (Stats.Special.normal_pdf ~mu:1.0 ~sigma:0.5 x))
        (Stats.Special.log_normal_pdf ~mu:1.0 ~sigma:0.5 x))
    [ 0.0; 0.5; 1.0; 2.0 ];
  (* And stays finite far in the tail where pdf underflows. *)
  Alcotest.(check bool) "finite in deep tail" true
    (Float.is_finite (Stats.Special.log_normal_pdf ~mu:0.0 ~sigma:1.0 60.0))

let suite =
  [
    Alcotest.test_case "erf reference values" `Quick test_erf_reference;
    Alcotest.test_case "erf/erfc complement" `Quick test_erfc_identity;
    Alcotest.test_case "erfc symmetry" `Quick test_erfc_symmetry;
    Alcotest.test_case "erfc tail" `Quick test_erfc_tail;
    Alcotest.test_case "log_gamma reference" `Quick test_log_gamma_reference;
    Alcotest.test_case "log_gamma recurrence" `Quick test_log_gamma_recurrence;
    Alcotest.test_case "log_gamma invalid" `Quick test_log_gamma_invalid;
    Alcotest.test_case "gamma P+Q=1" `Quick test_gamma_p_q_complement;
    Alcotest.test_case "gamma P(1,x)" `Quick test_gamma_p_exponential_case;
    Alcotest.test_case "gamma chi2 reference" `Quick test_gamma_p_chi2_reference;
    Alcotest.test_case "gamma bounds/monotonicity" `Quick test_gamma_p_bounds;
    Alcotest.test_case "normal pdf reference" `Quick test_normal_pdf_reference;
    Alcotest.test_case "normal cdf reference" `Quick test_normal_cdf_reference;
    Alcotest.test_case "quantile roundtrip" `Quick test_normal_quantile_roundtrip;
    Alcotest.test_case "quantile reference" `Quick test_normal_quantile_reference;
    Alcotest.test_case "quantile invalid" `Quick test_normal_quantile_invalid;
    Alcotest.test_case "log_normal_pdf" `Quick test_log_normal_pdf_matches;
  ]
