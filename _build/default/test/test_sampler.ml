(* Distributional tests for the variate samplers: moments and KS checks
   against the target laws, plus domain validation. *)

let rng () = Prng.Rng.create ~seed:2024

let moments n f =
  let acc = Stats.Descriptive.Acc.create () in
  for _ = 1 to n do
    Stats.Descriptive.Acc.add acc (f ())
  done;
  acc

let close ?(tol = 0.05) msg expected actual =
  let scale = Float.max (Float.abs expected) 1.0 in
  if Float.abs (expected -. actual) > tol *. scale then
    Alcotest.failf "%s: expected %.5g, got %.5g" msg expected actual

let test_normal_moments () =
  let r = rng () in
  let acc = moments 200_000 (fun () -> Prng.Sampler.normal r ~mu:3.0 ~sigma:2.0) in
  close "mean" 3.0 (Stats.Descriptive.Acc.mean acc);
  close "std" 2.0 (Stats.Descriptive.Acc.std acc);
  close ~tol:0.08 "skewness ~ 0" 0.0 (Stats.Descriptive.Acc.skewness acc);
  close ~tol:0.12 "excess kurtosis ~ 0" 0.0
    (Stats.Descriptive.Acc.kurtosis_excess acc)

let test_normal_ks () =
  let r = rng () in
  let xs = Array.init 3000 (fun _ -> Prng.Sampler.normal r ~mu:0.0 ~sigma:1.0) in
  let res =
    Stats.Hypothesis.ks_test xs ~cdf:(Stats.Special.normal_cdf ~mu:0.0 ~sigma:1.0)
  in
  Alcotest.(check bool) "KS p > 0.01" true (res.Stats.Hypothesis.p_value > 0.01)

let test_normal_sigma_zero () =
  let r = rng () in
  Alcotest.(check (float 0.0)) "degenerate normal" 5.0
    (Prng.Sampler.normal r ~mu:5.0 ~sigma:0.0)

let test_normal_invalid () =
  let r = rng () in
  Alcotest.check_raises "negative sigma"
    (Invalid_argument "Sampler.normal: sigma < 0") (fun () ->
      ignore (Prng.Sampler.normal r ~mu:0.0 ~sigma:(-1.0)))

let test_truncated_normal_positive () =
  let r = rng () in
  for _ = 1 to 20_000 do
    let x = Prng.Sampler.truncated_normal_pos r ~mu:1e-3 ~sigma:2e-3 in
    Alcotest.(check bool) "strictly positive" true (x > 0.0)
  done

let test_truncated_normal_mean_negligible_truncation () =
  (* With mu >> sigma truncation is negligible: mean ~ mu. *)
  let r = rng () in
  let acc =
    moments 100_000 (fun () ->
        Prng.Sampler.truncated_normal_pos r ~mu:0.010 ~sigma:1e-4)
  in
  close ~tol:0.001 "mean ~ mu" 0.010 (Stats.Descriptive.Acc.mean acc)

let test_exponential_moments () =
  let r = rng () in
  let acc = moments 200_000 (fun () -> Prng.Sampler.exponential r ~rate:4.0) in
  close "mean 1/rate" 0.25 (Stats.Descriptive.Acc.mean acc);
  close ~tol:0.08 "std 1/rate" 0.25 (Stats.Descriptive.Acc.std acc)

let test_exponential_ks () =
  let r = rng () in
  let xs = Array.init 3000 (fun _ -> Prng.Sampler.exponential r ~rate:2.0) in
  let cdf x = if x <= 0.0 then 0.0 else 1.0 -. exp (-2.0 *. x) in
  let res = Stats.Hypothesis.ks_test xs ~cdf in
  Alcotest.(check bool) "KS p > 0.01" true (res.Stats.Hypothesis.p_value > 0.01)

let test_exponential_invalid () =
  let r = rng () in
  Alcotest.check_raises "rate 0" (Invalid_argument "Sampler.exponential: rate <= 0")
    (fun () -> ignore (Prng.Sampler.exponential r ~rate:0.0))

let test_pareto_support_and_mean () =
  let r = rng () in
  let shape = 3.0 and scale = 2.0 in
  let acc =
    moments 200_000 (fun () -> Prng.Sampler.pareto r ~shape ~scale)
  in
  Alcotest.(check bool) "support >= scale" true
    (Stats.Descriptive.Acc.min acc >= scale);
  close ~tol:0.03 "mean = shape*scale/(shape-1)" 3.0
    (Stats.Descriptive.Acc.mean acc)

let test_poisson_small_mean () =
  let r = rng () in
  let acc =
    moments 100_000 (fun () -> float_of_int (Prng.Sampler.poisson r ~mean:3.5))
  in
  close ~tol:0.03 "mean" 3.5 (Stats.Descriptive.Acc.mean acc);
  close ~tol:0.03 "variance = mean" 3.5
    (Stats.Descriptive.Acc.population_variance acc)

let test_poisson_large_mean () =
  let r = rng () in
  let acc =
    moments 50_000 (fun () -> float_of_int (Prng.Sampler.poisson r ~mean:200.0))
  in
  close ~tol:0.02 "mean" 200.0 (Stats.Descriptive.Acc.mean acc);
  close ~tol:0.08 "variance" 200.0
    (Stats.Descriptive.Acc.population_variance acc)

let test_poisson_zero () =
  let r = rng () in
  Alcotest.(check int) "mean 0 -> 0" 0 (Prng.Sampler.poisson r ~mean:0.0)

let test_geometric_moments () =
  let r = rng () in
  let p = 0.3 in
  let acc =
    moments 100_000 (fun () -> float_of_int (Prng.Sampler.geometric r ~p))
  in
  close ~tol:0.03 "mean (1-p)/p" ((1.0 -. p) /. p) (Stats.Descriptive.Acc.mean acc)

let test_bernoulli_frequency () =
  let r = rng () in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.Sampler.bernoulli r ~p:0.2 then incr hits
  done;
  close ~tol:0.03 "P(true)" 0.2 (float_of_int !hits /. float_of_int n)

let test_categorical_weights () =
  let r = rng () in
  let weights = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let k = Prng.Sampler.categorical r ~weights in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check int) "zero-weight never drawn" 0 counts.(1);
  close ~tol:0.05 "weight ratio" 3.0
    (float_of_int counts.(2) /. float_of_int counts.(0))

let test_categorical_invalid () =
  let r = rng () in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Sampler.categorical: no positive weight") (fun () ->
      ignore (Prng.Sampler.categorical r ~weights:[| 0.0; 0.0 |]))

let test_shuffle_permutation () =
  let r = rng () in
  let arr = Array.init 50 Fun.id in
  Prng.Sampler.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_shuffle_uniform_first_element () =
  let r = rng () in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let arr = [| 0; 1; 2; 3 |] in
    Prng.Sampler.shuffle r arr;
    counts.(arr.(0)) <- counts.(arr.(0)) + 1
  done;
  let expected = Array.make 4 (float_of_int n /. 4.0) in
  let res = Stats.Hypothesis.chi_square_gof ~observed:counts ~expected in
  Alcotest.(check bool) "first slot uniform" true
    (res.Stats.Hypothesis.p_value > 0.001)

let suite =
  [
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "normal KS" `Quick test_normal_ks;
    Alcotest.test_case "normal sigma=0" `Quick test_normal_sigma_zero;
    Alcotest.test_case "normal invalid sigma" `Quick test_normal_invalid;
    Alcotest.test_case "truncated normal positive" `Quick test_truncated_normal_positive;
    Alcotest.test_case "truncated normal mean" `Quick test_truncated_normal_mean_negligible_truncation;
    Alcotest.test_case "exponential moments" `Quick test_exponential_moments;
    Alcotest.test_case "exponential KS" `Quick test_exponential_ks;
    Alcotest.test_case "exponential invalid" `Quick test_exponential_invalid;
    Alcotest.test_case "pareto support+mean" `Quick test_pareto_support_and_mean;
    Alcotest.test_case "poisson small mean" `Quick test_poisson_small_mean;
    Alcotest.test_case "poisson large mean" `Quick test_poisson_large_mean;
    Alcotest.test_case "poisson zero mean" `Quick test_poisson_zero;
    Alcotest.test_case "geometric moments" `Quick test_geometric_moments;
    Alcotest.test_case "bernoulli frequency" `Quick test_bernoulli_frequency;
    Alcotest.test_case "categorical weights" `Quick test_categorical_weights;
    Alcotest.test_case "categorical invalid" `Quick test_categorical_invalid;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "shuffle uniform" `Quick test_shuffle_uniform_first_element;
  ]
