(* Stress and failure-injection: overload, saturation, starvation, and
   robustness of the pipeline under off-nominal configurations. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol *. Float.max 1.0 (Float.abs expected)
  then Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_gateway_overload_queue_growth () =
  (* Payload at 200 pps against a 100 fires/s timer: the queue must grow
     roughly at the 100 pps surplus while the wire rate stays fixed. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:281 in
  let sent = ref 0 in
  let gw =
    Padding.Gateway.create sim ~rng:(Prng.Rng.split rng)
      ~timer:(Padding.Timer.Constant 0.01) ~jitter:Padding.Jitter.none
      ~dest:(fun _ -> incr sent) ()
  in
  let _src =
    Netsim.Traffic_gen.poisson sim ~rng:(Prng.Rng.split rng) ~rate_pps:200.0
      ~size_bytes:500 ~kind:Netsim.Packet.Payload
      ~dest:(Padding.Gateway.input gw) ()
  in
  Desim.Sim.run_until sim ~time:30.0;
  (* The final fire's emission lands an epsilon after the horizon, so
     allow the boundary packet either way. *)
  Alcotest.(check bool)
    (Printf.sprintf "wire rate pinned (got %d)" !sent)
    true
    (!sent >= 2999 && !sent <= 3000);
  let backlog = Padding.Gateway.queue_length gw in
  Alcotest.(check bool)
    (Printf.sprintf "backlog ~ 3000 (got %d)" backlog)
    true
    (backlog > 2500 && backlog < 3500);
  Alcotest.(check int) "every fire sent payload, no dummies" 0
    (Padding.Gateway.dummy_sent gw)

let test_gateway_overload_with_limit_drops () =
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:282 in
  let gw =
    Padding.Gateway.create sim ~rng:(Prng.Rng.split rng)
      ~timer:(Padding.Timer.Constant 0.01) ~jitter:Padding.Jitter.none
      ~queue_limit:50 ~dest:(fun _ -> ()) ()
  in
  let src =
    Netsim.Traffic_gen.poisson sim ~rng:(Prng.Rng.split rng) ~rate_pps:200.0
      ~size_bytes:500 ~kind:Netsim.Packet.Payload
      ~dest:(Padding.Gateway.input gw) ()
  in
  Desim.Sim.run_until sim ~time:30.0;
  Alcotest.(check bool) "queue capped" true (Padding.Gateway.queue_length gw <= 50);
  let offered = Netsim.Traffic_gen.generated src in
  Alcotest.(check int) "conservation under drops" offered
    (Padding.Gateway.payload_sent gw
    + Padding.Gateway.queue_length gw
    + Padding.Gateway.payload_dropped gw);
  Alcotest.(check bool) "substantial drops" true
    (Padding.Gateway.payload_dropped gw > 2000)

let test_saturated_link_still_conserves () =
  (* Offered load 2x the link rate with a bounded queue: heavy drops, but
     sent + dropped = offered and the queue stays bounded. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:283 in
  let delivered = ref 0 in
  let link =
    Netsim.Link.create sim ~bandwidth_bps:400_000.0 ~queue_limit:20
      ~dest:(fun _ -> incr delivered)
      ()
  in
  let src =
    Netsim.Traffic_gen.poisson sim ~rng ~rate_pps:200.0 ~size_bytes:500
      ~kind:Netsim.Packet.Cross ~dest:(Netsim.Link.port link) ()
  in
  Desim.Sim.run_until sim ~time:60.0;
  Netsim.Traffic_gen.stop src;
  Desim.Sim.run_until sim ~time:62.0;
  let offered = Netsim.Traffic_gen.generated src in
  Alcotest.(check int) "conservation" offered
    (Netsim.Link.sent link + Netsim.Link.dropped link);
  Alcotest.(check int) "delivered = sent" (Netsim.Link.sent link) !delivered;
  Alcotest.(check bool) "queue bounded" true (Netsim.Link.queue_depth link <= 20);
  (* 100 pps of 4000-bit packets on a 400 kb/s link: ~full utilization. *)
  Alcotest.(check bool) "link saturated" true (Netsim.Link.utilization link > 0.95)

let test_detection_collapses_on_saturated_path () =
  (* A crushed bottleneck destroys the timing signal: r -> 1.  The
     adversary behind it should be near-blind. *)
  let hop =
    {
      Netsim.Topology.bandwidth_bps = 1e6;
      (* padded stream alone is 0.4 Mb/s; cross adds 0.5 Mb/s -> ~90% *)
      propagation = 0.0;
      queue_limit = Some 200;
      cross =
        Some
          {
            Netsim.Topology.rate_pps = 125.0;
            size_bytes = 500;
            burst = `Poisson;
          };
    }
  in
  let base =
    {
      Scenarios.System.default_config with
      Scenarios.System.seed = 284;
      hops = [| hop |];
      tap_position = 1;
    }
  in
  let traces = Scenarios.Workload.collect_pair ~base ~piats:(300 * 30) in
  let scores =
    Scenarios.Workload.score traces ~features:Adversary.Feature.standard_set
      ~sample_size:300
  in
  List.iter
    (fun (s : Scenarios.Workload.scored) ->
      Alcotest.(check bool)
        (Adversary.Feature.name s.Scenarios.Workload.feature ^ " blinded")
        true
        (s.Scenarios.Workload.empirical < 0.8))
    scores

let test_cbr_payload_still_leaks () =
  (* The leak does not depend on Poisson payload: CBR payload classes are
     detected just as well under CIT. *)
  let base =
    {
      Scenarios.System.default_config with
      Scenarios.System.seed = 285;
      payload_model = Scenarios.System.Cbr_payload;
    }
  in
  let traces = Scenarios.Workload.collect_pair ~base ~piats:(400 * 30) in
  let scores =
    Scenarios.Workload.score traces
      ~features:[ Adversary.Feature.Sample_variance ] ~sample_size:400
  in
  match scores with
  | [ s ] ->
      Alcotest.(check bool) "CBR payload leaks too" true
        (s.Scenarios.Workload.empirical > 0.9)
  | _ -> Alcotest.fail "one feature expected"

let test_unbalanced_priors_accuracy () =
  (* With a 9:1 prior, always answering the heavy class scores 0.9; the
     classifier must not do worse. *)
  let rng = Prng.Rng.create ~seed:286 in
  let gauss mu = Array.init 300 (fun _ -> Prng.Sampler.normal rng ~mu ~sigma:1.0) in
  let clf =
    Adversary.Classifier.train ~priors:[| 0.9; 0.1 |]
      ~classes:[| ("a", gauss 0.0); ("b", gauss 0.5) |]
      ()
  in
  let acc =
    Adversary.Classifier.accuracy clf [| (0, gauss 0.0); (1, gauss 0.5) |]
  in
  Alcotest.(check bool)
    (Printf.sprintf "acc %.3f >= 0.85" acc)
    true (acc >= 0.85)

let test_exponential_vit_is_maximally_safe () =
  (* sigma_T = tau = 10 ms dwarfs every other noise source by 3 orders of
     magnitude: detection must sit at the floor even for huge n. *)
  let base =
    {
      Scenarios.System.default_config with
      Scenarios.System.seed = 287;
      timer =
        Padding.Timer.Exponential { mean = Scenarios.Calibration.timer_mean };
    }
  in
  let traces = Scenarios.Workload.collect_pair ~base ~piats:(500 * 24) in
  Alcotest.(check bool) "r pinned at 1" true (traces.Scenarios.Workload.r_hat < 1.01);
  let scores =
    Scenarios.Workload.score traces ~features:Adversary.Feature.standard_set
      ~sample_size:500
  in
  List.iter
    (fun (s : Scenarios.Workload.scored) ->
      Alcotest.(check bool) "floor" true (s.Scenarios.Workload.empirical < 0.8))
    scores

let test_tiny_sample_sizes_do_not_crash () =
  let rng = Prng.Rng.create ~seed:288 in
  let trace = Array.init 400 (fun _ -> Prng.Sampler.normal rng ~mu:0.01 ~sigma:1e-5) in
  List.iter
    (fun feature ->
      let r =
        Adversary.Detection.estimate ~feature ~reference:0.01 ~sample_size:2
          ~classes:[| ("a", trace); ("b", Array.map (fun x -> x *. 1.01) trace) |]
          ()
      in
      Alcotest.(check bool) "rate in [0,1]" true
        (r.Adversary.Detection.detection_rate >= 0.0
        && r.Adversary.Detection.detection_rate <= 1.0))
    Adversary.Feature.standard_set

let test_mix_overload_flushes_by_threshold () =
  (* Payload far above threshold/timeout capacity: every flush is a full
     threshold batch with no dummies. *)
  let sim = Desim.Sim.create () in
  let rng = Prng.Rng.create ~seed:289 in
  let mix =
    Padding.Mix.create sim ~rng:(Prng.Rng.split rng) ~threshold:4 ~timeout:1.0
      ~dest:(fun _ -> ()) ()
  in
  let _src =
    Netsim.Traffic_gen.poisson sim ~rng:(Prng.Rng.split rng) ~rate_pps:400.0
      ~size_bytes:500 ~kind:Netsim.Packet.Payload ~dest:(Padding.Mix.input mix)
      ()
  in
  Desim.Sim.run_until sim ~time:10.0;
  Alcotest.(check bool) "many flushes" true (Padding.Mix.flushes mix > 500);
  close ~tol:0.01 "no dummy padding under load" 0.0 (Padding.Mix.overhead mix)

let suite =
  [
    Alcotest.test_case "gateway overload: queue grows" `Quick test_gateway_overload_queue_growth;
    Alcotest.test_case "gateway overload: bounded drops" `Quick test_gateway_overload_with_limit_drops;
    Alcotest.test_case "saturated link conserves" `Quick test_saturated_link_still_conserves;
    Alcotest.test_case "saturated path blinds adversary" `Slow test_detection_collapses_on_saturated_path;
    Alcotest.test_case "CBR payload still leaks" `Slow test_cbr_payload_still_leaks;
    Alcotest.test_case "unbalanced priors" `Quick test_unbalanced_priors_accuracy;
    Alcotest.test_case "exponential VIT at floor" `Slow test_exponential_vit_is_maximally_safe;
    Alcotest.test_case "tiny sample sizes robust" `Quick test_tiny_sample_sizes_do_not_crash;
    Alcotest.test_case "mix overload" `Quick test_mix_overload_flushes_by_threshold;
  ]
